package adhocga

// BenchmarkEventFanout measures the streaming hub's producer hot path
// with live viewers attached: ns/op is the cost of one emit with N
// DropResync subscribers on the hub — the tentpole claim is that this
// stays flat in N, because live viewers never gate an append. The pumps
// are deliberately parked (buffers full, no draining) while the producer
// is timed; that keeps the measurement single-threaded and stable on a
// one-core CI runner instead of bimodal on scheduler luck. bytes/sub is
// the marginal heap footprint of one attached subscriber and events/sub
// the post-run delivery (snapshot resync + ring tail per viewer).
// BENCH_stream.json in CI tracks the series; the benchgate holds the
// ns/op trajectory against ci/bench_baseline.txt at 10%.

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func BenchmarkEventFanout(b *testing.B) {
	for _, subs := range []int{16, 256, 2048} {
		b.Run(fmt.Sprintf("subs=%d", subs), func(b *testing.B) {
			j := testJobBench(HubConfig{})
			heapBefore := heapAlloc()
			viewers := make([]*Subscription, subs)
			for i := range viewers {
				viewers[i] = j.Subscribe(context.Background(), SubscribeOptions{
					Live: true, Policy: DropResync, Buffer: 16,
				})
			}
			perSub := float64(heapAlloc()-heapBefore) / float64(subs)

			// Park every pump: emit enough to fill the 16-slot buffers,
			// then yield the core until they are all blocked on their send
			// channels. From here on the producer runs alone.
			for i := 0; i < 64; i++ {
				j.emit(Event{Kind: KindGeneration, Generation: &GenerationEvent{Gen: i}})
			}
			time.Sleep(100 * time.Millisecond)

			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				j.emit(Event{Kind: KindGeneration, Generation: &GenerationEvent{Gen: i}})
			}
			b.StopTimer()

			j.finish(nil, nil)
			var wg sync.WaitGroup
			var delivered atomic.Int64
			for _, sub := range viewers {
				wg.Add(1)
				go func(sub *Subscription) {
					defer wg.Done()
					n := 0
					for range sub.C {
						n++
					}
					delivered.Add(int64(n))
				}(sub)
			}
			wg.Wait()
			b.ReportMetric(perSub, "bytes/sub")
			b.ReportMetric(float64(delivered.Load())/float64(subs), "events/sub")
		})
	}
}

// BenchmarkFrameFanout measures the per-subscriber cost of encoding one
// event for delivery, the unit of work every streaming endpoint (WS, SSE,
// NDJSON) pays once per event per subscriber. mode=marshal is the
// pre-cache behavior — each subscriber runs json.Marshal itself; mode=
// cached goes through the hub's shared frame cache, where the first
// subscriber marshals and the rest reuse the bytes. The delta between the
// two modes at the same subscriber count is the frame cache's win.
func BenchmarkFrameFanout(b *testing.B) {
	const ringEvents = 64
	for _, mode := range []string{"marshal", "cached"} {
		for _, subs := range []int{16, 256} {
			b.Run(fmt.Sprintf("mode=%s/subs=%d", mode, subs), func(b *testing.B) {
				j := testJobBench(HubConfig{RingSize: 2 * ringEvents})
				for i := 0; i < ringEvents; i++ {
					j.emit(Event{Kind: KindGeneration, Generation: &GenerationEvent{Gen: i}})
				}
				events := j.Snapshot()
				var sink []byte
				b.ReportAllocs()
				b.ResetTimer()
				// One iteration = one event fanned out to all subscribers.
				for i := 0; i < b.N; i++ {
					e := events[i%len(events)]
					for s := 0; s < subs; s++ {
						var err error
						if mode == "marshal" {
							sink, err = json.Marshal(e)
						} else {
							sink, err = j.Frame(e)
						}
						if err != nil {
							b.Fatal(err)
						}
					}
				}
				b.StopTimer()
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(int64(b.N)*int64(subs)), "ns/frame")
				_ = sink
			})
		}
	}
}

// testJobBench mirrors hub_test.go's testJob for the benchmark file.
func testJobBench(cfg HubConfig) *Job {
	j := newJob("job-b", "bench", cfg, nil)
	j.cancel = func() {}
	return j
}

func heapAlloc() uint64 {
	runtime.GC()
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return m.HeapAlloc
}
