package adhocga

import (
	"context"
	"fmt"

	"adhocga/internal/baselines"
	"adhocga/internal/core"
	"adhocga/internal/experiment"
	"adhocga/internal/ga"
	"adhocga/internal/ipdrp"
	"adhocga/internal/island"
	"adhocga/internal/runner"
)

// JobSpec describes one workload to Submit to a Session. The concrete spec
// types cover every long-running entry point of the facade: EvolveSpec,
// IslandsSpec, CaseSpec, ScenariosSpec, SweepSpec, MixSpec, and IPDRPSpec.
// The set is closed (the run method is unexported): the Session owns
// scheduling, event emission, and cancellation for all of them.
type JobSpec interface {
	// Kind returns the spec's job-kind tag, carried in the Job handle and
	// the adhocd service's responses.
	Kind() string

	// run executes the workload. It must honor ctx at generation
	// barriers, stream progress through emit, and return the typed
	// result. On cancellation it returns the partial result (nil when
	// none is meaningful) and an error wrapping ctx.Err().
	run(ctx context.Context, s *Session, emit func(Event)) (any, error)
}

// runPooled executes fn on one shared session pool slot, so engine-level
// jobs (a single serial engine, an island engine, a mix, an IPDRP run)
// count against the same capacity their batch siblings' replicates do —
// flooding a session with Submit calls cannot run more engines at once
// than the pool has slots. The island engine's per-generation evaluation
// workers inside that slot are the one documented exception (transient,
// wall-clock-only oversubscription — same tradeoff as island replicates
// in a batch). fn's partial result and original error are preserved on
// cancellation.
func runPooled(ctx context.Context, s *Session, fn func() (any, error)) (any, error) {
	var res any
	var ferr error
	err := s.pool.Run(ctx, 1, func(int) error {
		res, ferr = fn()
		return ferr
	}, runner.Options{})
	if ferr != nil {
		return res, ferr
	}
	return res, err // non-nil only when cancelled before the slot was won
}

// generationEvent adapts a core snapshot to the unified event shape.
func generationEvent(scen, rep int, gs core.GenerationStats) Event {
	return Event{Kind: KindGeneration, Generation: &GenerationEvent{
		Scenario:    scen,
		Rep:         rep,
		Gen:         gs.Generation,
		Coop:        gs.Cooperation,
		MeanEnvCoop: gs.MeanEnvCooperation,
		BestFit:     gs.Fitness.BestFitness,
		MeanFit:     gs.Fitness.MeanFitness,
		Diversity:   gs.Fitness.Diversity,
	}}
}

// islandsEvent adapts an island snapshot to the unified event shape.
func islandsEvent(scen, rep int, gs island.GenerationStats) Event {
	per := make([]IslandPoint, len(gs.Islands))
	for i, st := range gs.Islands {
		per[i] = IslandPoint{BestFit: st.BestFitness, MeanFit: st.MeanFitness, Diversity: st.Diversity}
	}
	return Event{Kind: KindIslands, Islands: &IslandsEvent{
		Scenario:    scen,
		Rep:         rep,
		Gen:         gs.Generation,
		Coop:        gs.Cooperation,
		MeanEnvCoop: gs.MeanEnvCooperation,
		PerIsland:   per,
	}}
}

// checkpointEvent adapts a champion checkpoint to the unified event shape.
func checkpointEvent(scen, rep int, seed uint64, cp core.Checkpoint) Event {
	return Event{Kind: KindCheckpoint, Checkpoint: &CheckpointEvent{
		Scenario: scen,
		Rep:      rep,
		Gen:      cp.Generation,
		Seed:     seed,
		Genome:   cp.Best.Key(),
		Fitness:  cp.Fitness,
		MeanFit:  cp.MeanFitness,
		Coop:     cp.Cooperation,
	}}
}

// eventOptions returns a copy of opts with the session's pool and seed
// policy installed and the observation hooks chained into event emission
// (user-supplied hooks, if any, still fire first). Every batch spec's run
// goes through here, so WithDefaultSeed applies uniformly whether the job
// arrives via Submit, a Session convenience method, or the HTTP service.
func eventOptions(opts RunOptions, s *Session, emit func(Event)) RunOptions {
	if opts.Pool == nil {
		opts.Pool = s.pool
	}
	if opts.Seed == 0 {
		opts.Seed = s.seed
	}
	userRep := opts.OnReplicate
	opts.OnReplicate = func(done, total int) {
		if userRep != nil {
			userRep(done, total)
		}
		emit(Event{Kind: KindReplicate, Replicate: &ReplicateEvent{Done: done, Total: total}})
	}
	userGen := opts.OnGeneration
	opts.OnGeneration = func(scen, rep int, gs core.GenerationStats) {
		if userGen != nil {
			userGen(scen, rep, gs)
		}
		emit(generationEvent(scen, rep, gs))
	}
	userIsl := opts.OnIslandGeneration
	opts.OnIslandGeneration = func(scen, rep int, gs island.GenerationStats) {
		if userIsl != nil {
			userIsl(scen, rep, gs)
		}
		emit(islandsEvent(scen, rep, gs))
	}
	userChurn := opts.OnChurn
	opts.OnChurn = func(scen, rep, gen int) {
		if userChurn != nil {
			userChurn(scen, rep, gen)
		}
		emit(Event{Kind: KindChurn, Churn: &ChurnEvent{Scenario: scen, Rep: rep, Gen: gen}})
	}
	userCp := opts.OnCheckpoint
	opts.OnCheckpoint = func(scen, rep int, seed uint64, cp core.Checkpoint) {
		if userCp != nil {
			userCp(scen, rep, seed, cp)
		}
		emit(checkpointEvent(scen, rep, seed, cp))
	}
	return opts
}

// EvolveSpec runs one serial evolutionary experiment (the Evolve entry
// point). Result type: *EvolutionResult — partial on cancellation.
// Events: KindGeneration per generation, KindChurn at dynamics barriers.
type EvolveSpec struct {
	Config EvolutionConfig
}

// Kind returns "evolve".
func (EvolveSpec) Kind() string { return "evolve" }

func (sp EvolveSpec) run(ctx context.Context, s *Session, emit func(Event)) (any, error) {
	cfg := sp.Config
	userGen := cfg.OnGeneration
	cfg.OnGeneration = func(gs GenerationStats) {
		if userGen != nil {
			userGen(gs)
		}
		emit(generationEvent(0, 0, gs))
	}
	userChurn := cfg.OnChurn
	cfg.OnChurn = func(gen int) {
		if userChurn != nil {
			userChurn(gen)
		}
		emit(Event{Kind: KindChurn, Churn: &ChurnEvent{Gen: gen}})
	}
	userCp := cfg.OnCheckpoint
	cfg.OnCheckpoint = func(cp core.Checkpoint) {
		if userCp != nil {
			userCp(cp)
		}
		emit(checkpointEvent(0, 0, cfg.Seed, cp))
	}
	return runPooled(ctx, s, func() (any, error) {
		engine, err := s.acquireEngine(cfg)
		if err != nil {
			return nil, err
		}
		res, err := engine.RunContext(ctx)
		// Park the engine for the next submission even after cancellation:
		// Reinit resets it completely. The result shares nothing with the
		// engine's arena (series are per-run, snapshots deep-copied).
		s.releaseEngine(engine)
		return res, err
	})
}

// IslandsSpec runs one island-model evolutionary experiment (the
// EvolveIslands entry point). Result type: *IslandResult — partial on
// cancellation. Events: KindIslands per generation, KindChurn at dynamics
// barriers.
type IslandsSpec struct {
	Config IslandConfig
}

// Kind returns "islands".
func (IslandsSpec) Kind() string { return "islands" }

func (sp IslandsSpec) run(ctx context.Context, s *Session, emit func(Event)) (any, error) {
	cfg := sp.Config
	userGen := cfg.OnGeneration
	cfg.OnGeneration = func(gs IslandGenerationStats) {
		if userGen != nil {
			userGen(gs)
		}
		emit(islandsEvent(0, 0, gs))
	}
	userChurn := cfg.Core.OnChurn
	cfg.Core.OnChurn = func(gen int) {
		if userChurn != nil {
			userChurn(gen)
		}
		emit(Event{Kind: KindChurn, Churn: &ChurnEvent{Gen: gen}})
	}
	userCp := cfg.OnCheckpoint
	cfg.OnCheckpoint = func(cp core.Checkpoint) {
		if userCp != nil {
			userCp(cp)
		}
		emit(checkpointEvent(0, 0, cfg.Core.Seed, cp))
	}
	return runPooled(ctx, s, func() (any, error) {
		engine, err := island.New(cfg)
		if err != nil {
			return nil, err
		}
		return engine.RunContext(ctx)
	})
}

// CaseSpec reproduces one Table 4 evaluation case at a scale (the RunCase
// entry point). A zero Scale falls back to the session default. Result
// type: *CaseResult. Events: KindGeneration per replicate generation,
// KindReplicate per finished replicate.
type CaseSpec struct {
	Case  Case
	Scale Scale
	Opts  RunOptions
}

// Kind returns "case".
func (CaseSpec) Kind() string { return "case" }

func (sp CaseSpec) run(ctx context.Context, s *Session, emit func(Event)) (any, error) {
	return experiment.RunCaseContext(ctx, sp.Case, s.scaleOr(sp.Scale), eventOptions(sp.Opts, s, emit))
}

// ScenariosSpec runs a batch of declarative scenarios (the RunScenarios
// entry point). Zero Defaults falls back to the session default scale.
// Result type: []*CaseResult, in input order. Events: KindGeneration /
// KindIslands per replicate generation, KindChurn at dynamics barriers,
// KindReplicate per finished replicate.
type ScenariosSpec struct {
	Runs     []ScenarioRun
	Defaults Scale
	Opts     RunOptions
}

// Kind returns "scenarios".
func (ScenariosSpec) Kind() string { return "scenarios" }

func (sp ScenariosSpec) run(ctx context.Context, s *Session, emit func(Event)) (any, error) {
	if len(sp.Runs) == 0 {
		return nil, fmt.Errorf("adhocga: scenarios job has no scenarios")
	}
	return experiment.RunScenariosContext(ctx, sp.Runs, s.scaleOr(sp.Defaults), eventOptions(sp.Opts, s, emit))
}

// SweepSpec traces evolved cooperation against the CSN count (the
// CSNSweep entry point). Result type: []SweepPoint. Events: like
// CaseSpec, with Scenario indexing the sweep point.
type SweepSpec struct {
	CSNCounts []int
	Mode      PathMode
	Scale     Scale
	Opts      RunOptions
}

// Kind returns "sweep".
func (SweepSpec) Kind() string { return "sweep" }

func (sp SweepSpec) run(ctx context.Context, s *Session, emit func(Event)) (any, error) {
	return experiment.CSNSweepContext(ctx, sp.CSNCounts, sp.Mode, s.scaleOr(sp.Scale), eventOptions(sp.Opts, s, emit))
}

// MixSpec plays one fixed-population baseline tournament (the RunMix
// entry point). Result type: *MixResult. A mix is a single bounded
// tournament, far below generation granularity, so it runs to completion
// once started; cancellation only prevents a queued mix from starting.
// Events: the terminal KindDone only.
type MixSpec struct {
	Config MixConfig
}

// Kind returns "mix".
func (MixSpec) Kind() string { return "mix" }

func (sp MixSpec) run(ctx context.Context, s *Session, _ func(Event)) (any, error) {
	return runPooled(ctx, s, func() (any, error) {
		return baselines.RunMix(sp.Config)
	})
}

// IPDRPSpec evolves the IPDRP substrate (the RunIPDRP entry point).
// Result type: *IPDRPResult — partial on cancellation. Events:
// KindGeneration per generation (fitness moments from the GA population;
// MeanEnvCoop mirrors Coop, IPDRP having a single environment).
type IPDRPSpec struct {
	Config IPDRPConfig
}

// Kind returns "ipdrp".
func (IPDRPSpec) Kind() string { return "ipdrp" }

func (sp IPDRPSpec) run(ctx context.Context, s *Session, emit func(Event)) (any, error) {
	cfg := sp.Config
	userGen := cfg.OnGeneration
	cfg.OnGeneration = func(gen int, coopRate float64, stats ga.PopulationStats) {
		if userGen != nil {
			userGen(gen, coopRate, stats)
		}
		emit(Event{Kind: KindGeneration, Generation: &GenerationEvent{
			Gen:         gen,
			Coop:        coopRate,
			MeanEnvCoop: coopRate,
			BestFit:     stats.BestFitness,
			MeanFit:     stats.MeanFitness,
			Diversity:   stats.Diversity,
		}})
	}
	return runPooled(ctx, s, func() (any, error) {
		return ipdrp.RunContext(ctx, cfg)
	})
}
