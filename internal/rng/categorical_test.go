package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewCategoricalErrors(t *testing.T) {
	cases := []struct {
		name    string
		weights []float64
	}{
		{"empty", nil},
		{"negative", []float64{0.5, -0.1}},
		{"nan", []float64{math.NaN()}},
		{"all zero", []float64{0, 0, 0}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewCategorical(tc.weights); err == nil {
				t.Fatalf("NewCategorical(%v) succeeded, want error", tc.weights)
			}
		})
	}
}

func TestMustCategoricalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustCategorical did not panic on bad weights")
		}
	}()
	MustCategorical(nil)
}

func TestCategoricalProb(t *testing.T) {
	c := MustCategorical([]float64{1, 3, 0, 4})
	want := []float64{0.125, 0.375, 0, 0.5}
	for i, w := range want {
		if got := c.Prob(i); math.Abs(got-w) > 1e-12 {
			t.Errorf("Prob(%d) = %v, want %v", i, got, w)
		}
	}
	if c.Len() != 4 {
		t.Errorf("Len() = %d, want 4", c.Len())
	}
}

func TestCategoricalSampleFrequencies(t *testing.T) {
	c := MustCategorical([]float64{0.2, 0.3, 0.05, 0.45})
	s := New(6)
	const draws = 200000
	counts := make([]int, c.Len())
	for i := 0; i < draws; i++ {
		counts[c.Sample(s)]++
	}
	for i := 0; i < c.Len(); i++ {
		got := float64(counts[i]) / draws
		want := c.Prob(i)
		if math.Abs(got-want) > 0.005 {
			t.Errorf("outcome %d frequency %v, want %v", i, got, want)
		}
	}
}

func TestCategoricalNeverSamplesZeroWeight(t *testing.T) {
	c := MustCategorical([]float64{0, 1, 0, 2, 0})
	s := New(9)
	for i := 0; i < 100000; i++ {
		v := c.Sample(s)
		if v == 0 || v == 2 || v == 4 {
			t.Fatalf("sampled zero-weight outcome %d", v)
		}
	}
}

func TestCategoricalSingleOutcome(t *testing.T) {
	c := MustCategorical([]float64{7})
	s := New(2)
	for i := 0; i < 100; i++ {
		if got := c.Sample(s); got != 0 {
			t.Fatalf("Sample = %d, want 0", got)
		}
	}
}

// Property: Sample always returns a valid index with positive weight.
func TestCategoricalSampleProperty(t *testing.T) {
	s := New(55)
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		weights := make([]float64, len(raw))
		total := 0.0
		for i, r := range raw {
			weights[i] = float64(r)
			total += weights[i]
		}
		if total == 0 {
			weights[0] = 1
		}
		c := MustCategorical(weights)
		for i := 0; i < 32; i++ {
			v := c.Sample(s)
			if v < 0 || v >= len(weights) || weights[v] == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkCategoricalSample(b *testing.B) {
	c := MustCategorical([]float64{0.2, 0.3, 0.3, 0.05, 0.05, 0.05, 0.05})
	s := New(1)
	var sink int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = c.Sample(s)
	}
	_ = sink
}
