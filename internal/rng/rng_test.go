package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverged at step %d: %d != %d", i, av, bv)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 produced %d identical outputs of 64", same)
	}
}

func TestReseedRestartsStream(t *testing.T) {
	s := New(7)
	first := make([]uint64, 16)
	for i := range first {
		first[i] = s.Uint64()
	}
	s.Reseed(7)
	for i := range first {
		if got := s.Uint64(); got != first[i] {
			t.Fatalf("after Reseed, output %d = %d, want %d", i, got, first[i])
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(99)
	child := parent.Split()
	// The child stream should not be a shifted copy of the parent stream.
	parentOut := make(map[uint64]bool)
	p2 := New(99)
	for i := 0; i < 256; i++ {
		parentOut[p2.Uint64()] = true
	}
	collisions := 0
	for i := 0; i < 256; i++ {
		if parentOut[child.Uint64()] {
			collisions++
		}
	}
	if collisions > 2 {
		t.Fatalf("child stream shares %d of 256 outputs with parent prefix", collisions)
	}
}

func TestSplitDeterministic(t *testing.T) {
	a := New(5)
	b := New(5)
	ca := a.Split()
	cb := b.Split()
	for i := 0; i < 100; i++ {
		if ca.Uint64() != cb.Uint64() {
			t.Fatalf("Split is not deterministic at step %d", i)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(3)
	for n := 1; n <= 40; n++ {
		for i := 0; i < 200; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniform(t *testing.T) {
	s := New(11)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[s.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: count %d deviates more than 5 sigma from %g", i, c, want)
		}
	}
}

func TestIntRange(t *testing.T) {
	s := New(4)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := s.IntRange(3, 7)
		if v < 3 || v > 7 {
			t.Fatalf("IntRange(3,7) = %d", v)
		}
		seen[v] = true
	}
	for v := 3; v <= 7; v++ {
		if !seen[v] {
			t.Errorf("IntRange(3,7) never produced %d in 1000 draws", v)
		}
	}
	if got := s.IntRange(5, 5); got != 5 {
		t.Errorf("IntRange(5,5) = %d, want 5", got)
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(8)
	sum := 0.0
	const draws = 100000
	for i := 0; i < draws; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
		sum += f
	}
	mean := sum / draws
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean = %v, want approximately 0.5", mean)
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(13)
	const draws = 100000
	for _, p := range []float64{0.0, 0.1, 0.5, 0.9, 1.0} {
		hits := 0
		for i := 0; i < draws; i++ {
			if s.Bool(p) {
				hits++
			}
		}
		got := float64(hits) / draws
		if math.Abs(got-p) > 0.01 {
			t.Errorf("Bool(%v) frequency = %v", p, got)
		}
	}
	if s.Bool(-1) {
		t.Error("Bool(-1) returned true")
	}
	if !s.Bool(2) {
		t.Error("Bool(2) returned false")
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(21)
	for n := 0; n <= 30; n++ {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleUniformFirstElement(t *testing.T) {
	s := New(30)
	const n, draws = 5, 50000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		a := []int{0, 1, 2, 3, 4}
		s.Shuffle(n, func(i, j int) { a[i], a[j] = a[j], a[i] })
		counts[a[0]]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("value %d landed first %d times, want about %g", i, c, want)
		}
	}
}

func TestSampleWithoutReplacement(t *testing.T) {
	s := New(17)
	candidates := []int{10, 20, 30, 40, 50, 60}
	dst := make([]int, 4)
	var scratch []int
	for iter := 0; iter < 500; iter++ {
		scratch = s.SampleWithoutReplacement(dst, candidates, scratch)
		seen := make(map[int]bool)
		for _, v := range dst {
			found := false
			for _, c := range candidates {
				if c == v {
					found = true
				}
			}
			if !found {
				t.Fatalf("sampled %d not in candidate set", v)
			}
			if seen[v] {
				t.Fatalf("duplicate %d in sample %v", v, dst)
			}
			seen[v] = true
		}
	}
}

func TestSampleWithoutReplacementFull(t *testing.T) {
	s := New(18)
	candidates := []int{1, 2, 3}
	dst := make([]int, 3)
	s.SampleWithoutReplacement(dst, candidates, nil)
	sum := dst[0] + dst[1] + dst[2]
	if sum != 6 {
		t.Fatalf("full sample %v is not a permutation of candidates", dst)
	}
}

func TestSampleWithoutReplacementPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("oversized sample did not panic")
		}
	}()
	New(1).SampleWithoutReplacement(make([]int, 4), []int{1, 2, 3}, nil)
}

// Property: Uint64n(n) < n for all n > 0.
func TestUint64nProperty(t *testing.T) {
	s := New(77)
	f := func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		return s.Uint64n(n) < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: two sources with the same seed agree on arbitrary-length prefixes.
func TestSeedPrefixProperty(t *testing.T) {
	f := func(seed uint64, steps uint8) bool {
		a, b := New(seed), New(seed)
		for i := 0; i < int(steps); i++ {
			if a.Uint64() != b.Uint64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = s.Uint64()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	s := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink = s.Intn(50)
	}
	_ = sink
}

func BenchmarkSampleWithoutReplacement(b *testing.B) {
	s := New(1)
	candidates := make([]int, 50)
	for i := range candidates {
		candidates[i] = i
	}
	dst := make([]int, 9)
	var scratch []int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scratch = s.SampleWithoutReplacement(dst, candidates, scratch)
	}
}

// BitMask must replay exactly the Bool(p) sequence with
// threshold = ceil(p·2⁵³): same decisions, same stream advancement, for
// every width and a spread of probabilities including extremes.
func TestBitMaskMatchesBoolSequence(t *testing.T) {
	for _, p := range []float64{1e-9, 0.001, 0.1, 0.5, 0.9375, 0.999999} {
		threshold := uint64(math.Ceil(p * (1 << 53)))
		for width := 1; width <= 64; width++ {
			seed := uint64(width)*1000 + uint64(p*1e6)
			a, b := New(seed), New(seed)
			mask := a.BitMask(width, threshold)
			for j := 0; j < width; j++ {
				if want := b.Bool(p); want != (mask>>uint(j)&1 == 1) {
					t.Fatalf("p=%v width=%d: bit %d diverges from Bool sequence", p, width, j)
				}
			}
			if a.Uint64() != b.Uint64() {
				t.Fatalf("p=%v width=%d: stream advancement differs", p, width)
			}
		}
	}
}
