// Package rng provides a small, deterministic, splittable pseudo-random
// number generator and the discrete distributions used by the ad hoc
// network simulator.
//
// Determinism matters here: the paper's experiments are averages over 60
// independent repetitions, and reproducing a table requires replaying the
// exact stream of random path lengths, destinations and mutations for a
// given seed. The standard library's math/rand/v2 is deterministic too,
// but offers no principled way to derive independent child streams for
// parallel replications; Source.Split fills that gap.
//
// The core generator is xoshiro256** seeded through SplitMix64, the
// combination recommended by Blackman and Vigna. It is not
// cryptographically secure and must never be used for security purposes.
package rng

import "math/bits"

// Source is a deterministic pseudo-random number generator. It is NOT safe
// for concurrent use; give each goroutine its own Source via Split.
//
// The zero value is invalid; use New.
type Source struct {
	s [4]uint64
}

// splitmix64 advances the given state and returns the next output. It is
// used to expand seeds and to derive child streams.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source seeded from the given seed. Two Sources built from
// the same seed produce identical streams.
func New(seed uint64) *Source {
	var s Source
	s.Reseed(seed)
	return &s
}

// Reseed resets the Source to the state it would have immediately after
// New(seed).
func (s *Source) Reseed(seed uint64) {
	sm := seed
	for i := range s.s {
		s.s[i] = splitmix64(&sm)
	}
	// xoshiro must not start at the all-zero state; SplitMix64 expansion
	// cannot produce it for any seed, but guard anyway.
	if s.s[0]|s.s[1]|s.s[2]|s.s[3] == 0 {
		s.s[0] = 0x9e3779b97f4a7c15
	}
}

// Uint64 returns the next 64 uniformly distributed bits.
func (s *Source) Uint64() uint64 {
	result := bits.RotateLeft64(s.s[1]*5, 7) * 9
	t := s.s[1] << 17
	s.s[2] ^= s.s[0]
	s.s[3] ^= s.s[1]
	s.s[1] ^= s.s[2]
	s.s[0] ^= s.s[3]
	s.s[2] ^= t
	s.s[3] = bits.RotateLeft64(s.s[3], 45)
	return result
}

// Split derives a new Source whose future stream is statistically
// independent from the parent's. Splitting advances the parent. It is the
// supported way to hand generators to parallel replications: split once in
// the coordinating goroutine, then move each child to its worker.
func (s *Source) Split() *Source {
	// Mix two parent outputs through SplitMix64 so that child streams do
	// not share the parent's linear engine trajectory.
	seed := s.Uint64()
	mix := seed ^ bits.RotateLeft64(s.Uint64(), 31)
	return New(splitmix64(&mix))
}

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	return int(s.Uint64n(uint64(n)))
}

// Uint64n returns a uniformly distributed uint64 in [0, n) using Lemire's
// nearly-divisionless method. It panics if n == 0.
//
// The xoshiro step is written out inline rather than calling Uint64: the
// engine update costs one node more than the compiler's inline budget, so
// a Uint64 call never inlines and every bounded draw would pay two call
// levels from hot loops (Intn inlines into its caller but this function
// does not). The state update is identical to Uint64's, so interleaving
// Uint64n with any other draw replays the same stream.
func (s *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n called with n == 0")
	}
	result := bits.RotateLeft64(s.s[1]*5, 7) * 9
	t := s.s[1] << 17
	s.s[2] ^= s.s[0]
	s.s[3] ^= s.s[1]
	s.s[1] ^= s.s[2]
	s.s[0] ^= s.s[3]
	s.s[2] ^= t
	s.s[3] = bits.RotateLeft64(s.s[3], 45)
	hi, lo := bits.Mul64(result, n)
	if lo < n {
		threshold := -n % n
		for lo < threshold {
			hi, lo = bits.Mul64(s.Uint64(), n)
		}
	}
	return hi
}

// IntRange returns a uniformly distributed int in [lo, hi] inclusive.
// It panics if hi < lo.
func (s *Source) IntRange(lo, hi int) int {
	if hi < lo {
		panic("rng: IntRange called with hi < lo")
	}
	return lo + s.Intn(hi-lo+1)
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (s *Source) Float64() float64 {
	// 53 high bits give the standard dyadic uniform on [0,1).
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p. Values of p outside [0,1] clamp to
// always-false / always-true.
func (s *Source) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// BitMask draws width (1–64) consecutive Uint64 values and returns a mask
// whose bit j is set iff draw j satisfies draw>>11 < threshold. With
// threshold = ceil(p·2⁵³) for 0 < p < 1 this is exactly width consecutive
// Bool(p) draws — float64(u>>11)·2⁻⁵³ < p and u>>11 < ceil(p·2⁵³) decide
// identically because both sides of each comparison are exact — packed
// into one call so the generator state stays in registers instead of
// round-tripping through memory on every draw. The stream advances exactly
// width steps; interleaving BitMask and Uint64 calls replays the same
// sequence as Uint64 alone.
func (s *Source) BitMask(width int, threshold uint64) uint64 {
	s0, s1, s2, s3 := s.s[0], s.s[1], s.s[2], s.s[3]
	var mask uint64
	for j := 0; j < width; j++ {
		result := bits.RotateLeft64(s1*5, 7) * 9
		t := s1 << 17
		s2 ^= s0
		s3 ^= s1
		s1 ^= s2
		s0 ^= s3
		s2 ^= t
		s3 = bits.RotateLeft64(s3, 45)
		// Branchless decision: both operands are < 2⁵³, so the uint64
		// subtraction borrows — sign bit set — exactly when draw < threshold.
		// The engine's serial update chain is the latency floor here; a
		// manual two-step unroll measured no faster.
		mask |= (result>>11 - threshold) >> 63 << uint(j)
	}
	s.s[0], s.s[1], s.s[2], s.s[3] = s0, s1, s2, s3
	return mask
}

// Shuffle randomizes the order of n elements using the Fisher-Yates
// algorithm; swap exchanges elements i and j.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// Perm returns a uniformly random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	s.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// SampleWithoutReplacement fills dst with k distinct values drawn uniformly
// from the candidate set candidates, using a partial Fisher-Yates over a
// scratch copy. It panics if k exceeds len(candidates).
//
// The scratch slice is reused if it has sufficient capacity, so callers in
// hot loops can avoid per-call allocation by passing the previous scratch
// back in. The returned scratch must be treated as opaque.
func (s *Source) SampleWithoutReplacement(dst []int, candidates []int, scratch []int) []int {
	k := len(dst)
	n := len(candidates)
	if k > n {
		panic("rng: sample size exceeds candidate set")
	}
	if cap(scratch) < n {
		scratch = make([]int, n)
	}
	scratch = scratch[:n]
	copy(scratch, candidates)
	for i := 0; i < k; i++ {
		j := i + s.Intn(n-i)
		scratch[i], scratch[j] = scratch[j], scratch[i]
		dst[i] = scratch[i]
	}
	return scratch
}
