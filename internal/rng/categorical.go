package rng

import "fmt"

// Categorical is a fixed discrete distribution over the outcomes
// 0..len(weights)-1. Construction validates and normalizes the weights
// once; sampling scans the (short) cumulative table linearly.
//
// A Categorical is immutable after construction and therefore safe to
// share across goroutines (each goroutine still needs its own Source).
type Categorical struct {
	cum []float64 // strictly increasing, cum[len-1] == total
}

// NewCategorical builds a categorical distribution from non-negative
// weights. At least one weight must be positive.
func NewCategorical(weights []float64) (*Categorical, error) {
	if len(weights) == 0 {
		return nil, fmt.Errorf("rng: categorical needs at least one weight")
	}
	cum := make([]float64, len(weights))
	total := 0.0
	for i, w := range weights {
		if w < 0 || w != w { // negative or NaN
			return nil, fmt.Errorf("rng: categorical weight %d is invalid (%v)", i, w)
		}
		total += w
		cum[i] = total
	}
	if total <= 0 {
		return nil, fmt.Errorf("rng: categorical weights sum to zero")
	}
	return &Categorical{cum: cum}, nil
}

// MustCategorical is NewCategorical that panics on invalid weights. Use it
// for static tables known to be correct.
func MustCategorical(weights []float64) *Categorical {
	c, err := NewCategorical(weights)
	if err != nil {
		panic(err)
	}
	return c
}

// Len returns the number of outcomes.
func (c *Categorical) Len() int { return len(c.cum) }

// Prob returns the probability of outcome i.
func (c *Categorical) Prob(i int) float64 {
	total := c.cum[len(c.cum)-1]
	if i == 0 {
		return c.cum[0] / total
	}
	return (c.cum[i] - c.cum[i-1]) / total
}

// Sample draws one outcome index according to the weights.
func (c *Categorical) Sample(s *Source) int {
	total := c.cum[len(c.cum)-1]
	u := s.Float64() * total
	// First index whose cumulative weight strictly exceeds u. Zero-weight
	// outcomes have cum[i] == cum[i-1] and can never be selected (not even
	// at u == 0, which Float64 can return). A linear scan beats binary
	// search at the handful of outcomes these tables have (and sits on a
	// hot path: two draws per generated game).
	i := 0
	for i < len(c.cum) && c.cum[i] <= u {
		i++
	}
	if i == len(c.cum) { // u landed exactly on the total; take the last positive-weight outcome
		i--
		for i > 0 && c.cum[i] == c.cum[i-1] {
			i--
		}
	}
	return i
}
