package rng

import (
	"fmt"
	"math/bits"
)

// Categorical is a fixed discrete distribution over the outcomes
// 0..len(weights)-1. Construction validates and normalizes the weights
// once; sampling scans the (short) cumulative table linearly.
//
// A Categorical is immutable after construction and therefore safe to
// share across goroutines (each goroutine still needs its own Source).
type Categorical struct {
	cum []float64 // non-decreasing, cum[len-1] == total

	// lut is a 256-bucket guess table over [0, total): bucket b holds the
	// outcome the linear scan would pick for u near total·b/256. Sample
	// verifies the guess against cum before trusting it (two compares
	// that restate the scan's invariant), so a boundary bucket or a
	// rounding slip in the bucket index can never change an outcome —
	// only send it down the scan fallback. Flat tables hit the guess on
	// nearly every draw, turning the sample into a multiply, a byte load
	// and two predictable compares.
	lut   [256]uint8
	scale float64 // 256 / total
}

// NewCategorical builds a categorical distribution from non-negative
// weights. At least one weight must be positive.
func NewCategorical(weights []float64) (*Categorical, error) {
	if len(weights) == 0 {
		return nil, fmt.Errorf("rng: categorical needs at least one weight")
	}
	cum := make([]float64, len(weights))
	total := 0.0
	for i, w := range weights {
		if w < 0 || w != w { // negative or NaN
			return nil, fmt.Errorf("rng: categorical weight %d is invalid (%v)", i, w)
		}
		total += w
		cum[i] = total
	}
	if total <= 0 {
		return nil, fmt.Errorf("rng: categorical weights sum to zero")
	}
	c := &Categorical{cum: cum, scale: 256 / total}
	for b := range c.lut {
		// Seed each bucket with the scan's answer for the bucket's
		// midpoint. An outcome index beyond uint8 stays 0; Sample's
		// verification rejects any wrong guess, so this is purely a hint.
		if idx := c.scan(total * (float64(b) + 0.5) / 256); idx < 256 {
			c.lut[b] = uint8(idx)
		}
	}
	return c, nil
}

// MustCategorical is NewCategorical that panics on invalid weights. Use it
// for static tables known to be correct.
func MustCategorical(weights []float64) *Categorical {
	c, err := NewCategorical(weights)
	if err != nil {
		panic(err)
	}
	return c
}

// Len returns the number of outcomes.
func (c *Categorical) Len() int { return len(c.cum) }

// Prob returns the probability of outcome i.
func (c *Categorical) Prob(i int) float64 {
	total := c.cum[len(c.cum)-1]
	if i == 0 {
		return c.cum[0] / total
	}
	return (c.cum[i] - c.cum[i-1]) / total
}

// Sample draws one outcome index according to the weights. The draw
// consumes exactly one engine step and decides identically to
// s.Float64()*total fed to the linear scan.
func (c *Categorical) Sample(s *Source) int {
	// The xoshiro step is written out rather than calling Float64: Sample
	// is itself too large to inline, so the engine call inside Float64
	// would be a second call level on a two-draws-per-game hot path. The
	// state update is identical to Uint64's (see Uint64n for the same
	// pattern), so interleaving Sample with other draws replays the same
	// stream.
	result := bits.RotateLeft64(s.s[1]*5, 7) * 9
	t := s.s[1] << 17
	s.s[2] ^= s.s[0]
	s.s[3] ^= s.s[1]
	s.s[1] ^= s.s[2]
	s.s[0] ^= s.s[3]
	s.s[2] ^= t
	s.s[3] = bits.RotateLeft64(s.s[3], 45)
	cum := c.cum
	total := cum[len(cum)-1]
	u := float64(result>>11) / (1 << 53) * total
	// Guess the outcome from the bucket table, then verify it restates
	// the scan's invariant — cum[o-1] ≤ u < cum[o], i.e. exactly "o is
	// the first index whose cumulative weight strictly exceeds u". A
	// verified guess is therefore bit-identical to the scan below; a miss
	// (boundary bucket, u ≥ total edge case, outcome beyond the uint8
	// hint) falls back to it. This sits on a hot path — two draws per
	// generated game — and the guess replaces the scan's unpredictable
	// exit branch with two compares that almost always pass.
	b := int(u * c.scale)
	if b > 255 {
		b = 255
	}
	if o := int(c.lut[b]); o < len(cum) && u < cum[o] && (o == 0 || cum[o-1] <= u) {
		return o
	}
	return c.scan(u)
}

// scan is the reference linear scan Sample's guess table is verified
// against: the first index whose cumulative weight strictly exceeds u.
// Zero-weight outcomes have cum[i] == cum[i-1] and can never be selected
// (not even at u == 0, which Float64 can return).
func (c *Categorical) scan(u float64) int {
	cum := c.cum
	for i, ci := range cum {
		if u < ci {
			return i
		}
	}
	// u landed exactly on the total; take the last positive-weight outcome.
	i := len(cum) - 1
	for i > 0 && cum[i] == cum[i-1] {
		i--
	}
	return i
}
