// Package service is the HTTP face of the Session/Job API — the layer the
// adhocd daemon (cmd/adhocd) serves. It accepts the repo's declarative
// scenario-spec JSON (internal/scenario, the same documents the CLIs'
// -scenario flag loads), runs each submission as a job on one shared
// Session, and streams the job's unified event stream back as NDJSON or
// SSE. Jobs sharing the session share its execution pool and its
// concurrent-job bound, so a burst of submissions queues instead of
// oversubscribing the machine.
//
// # API
//
//	POST   /v1/jobs             submit a scenario batch; returns the job handle
//	GET    /v1/jobs             list jobs in submission order (?state= filters)
//	GET    /v1/jobs/{id}        job status (+ per-scenario results when done)
//	GET    /v1/jobs/{id}/events stream events as NDJSON (or SSE via Accept)
//	GET    /v1/jobs/{id}/ws     stream events over WebSocket (live fan-out)
//	POST   /v1/jobs/{id}/verify replay a finished job and compare (see verify.go)
//	DELETE /v1/jobs/{id}        cancel the job cooperatively
//	GET    /v1/champions        list the hall of fame (?category=, ?job= filter)
//	GET    /v1/champions/{id}   one champion record
//	POST   /v1/league           run a league over selected champions (league.go)
//	GET    /healthz             liveness + build/store/recovery report
//
// # Durability
//
// Every submission is persisted to a jobstore.Store (Options.Store; the
// in-memory backend by default, the WAL-backed file backend under adhocd
// -store file) as a record of (id, spec JSON, seed, state, progress
// watermark) — and, once finished, the result summary, its SHA-256
// digest, and (for parallelism-1 jobs whose full history the streaming
// hub still retained) the complete NDJSON event replay. Recover, called
// once at startup, re-submits every unfinished record from its recorded
// (seed, spec) — the determinism contract makes the re-run bit-identical
// to the lost one — and leaves finished records to serve status, results,
// and archived event replays without recompute. See persist.go.
//
// The submit body is either bare scenario-spec JSON (one object or an
// array — exactly what LoadScenarios accepts) or a wrapper object
// {"scenarios": …, "scale": "smoke", "seed": 1, "parallelism": 2} pinning
// the run parameters. Event streams are deterministic for a fixed seed at
// parallelism 1: no timestamps, stable field order, sequential job IDs —
// the NDJSON golden test byte-compares a whole stream.
//
// # Streaming policies
//
// All three stream endpoints fan out from the job's hub (ring buffer +
// compacted snapshot) instead of a per-client replay log:
//
//   - NDJSON is the archival path: full replay from the oldest retained
//     event under the BlockWithDeadline policy, so an actively-draining
//     consumer sees every event gap-free; one that stops draining past the
//     hub's deadline is disconnected.
//   - SSE is a live-viewer path: every frame carries `id: <seq>`, a
//     reconnecting client resumes via the standard Last-Event-ID header
//     (from the ring, or the compacted snapshot of anything older), and a
//     lapped client is resynced from the snapshot instead of stalling the
//     producer. Idle streams get `: ping` comment frames on
//     Options.KeepaliveInterval so reverse proxies keep them open.
//   - WebSocket is the fan-out path for many concurrent viewers: by
//     default a subscriber joins live (current snapshot, then new events
//     as text frames); ?after=N resumes after sequence N and ?replay=full
//     replays like NDJSON. The server pings idle connections on the
//     keepalive interval and closes with code 1000 after the terminal
//     event, or 4001 if the client stops draining.
package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"adhocga"
	"adhocga/internal/experiment"
	"adhocga/internal/jobstore"
	"adhocga/internal/league"
	"adhocga/internal/obs"
	"adhocga/internal/scenario"
	"adhocga/internal/ws"
)

// CloseSlowSubscriber is the application WebSocket close code for a
// backpressure eviction: the client stopped reading and its subscription
// was dropped. Reconnect with ?after= to resume.
const CloseSlowSubscriber uint16 = 4001

// Options tune a Server.
type Options struct {
	// DefaultScale is the scale for submissions that do not pin one;
	// empty Name falls back to the session's default scale.
	DefaultScale adhocga.Scale
	// MaxBodyBytes caps the submit body size; ≤0 means 1 MiB.
	MaxBodyBytes int64
	// KeepaliveInterval is how often idle SSE streams emit a `: ping`
	// comment frame and idle WebSocket connections a ping frame, so
	// reverse proxies don't sever quiet streams. ≤0 means 15s; set it
	// very large to effectively disable keepalives.
	KeepaliveInterval time.Duration
	// Store persists job records across restarts. nil means a fresh
	// in-memory store — the pre-durability behavior, with verify still
	// available for jobs finished in this process.
	Store jobstore.Store
	// Version is the build identifier /healthz reports ("" means "dev").
	Version string
	// MaxStoredLogBytes caps how large an event log a finished job's
	// record may embed; bigger logs keep only their digest. ≤0 means
	// 4 MiB.
	MaxStoredLogBytes int64
	// Logger receives the service's structured logs: submissions,
	// recovery and resume notes, persistence failures — each tagged with
	// the job ID it concerns. nil discards everything.
	Logger *slog.Logger
	// Metrics is the registry GET /metrics serves; the server registers
	// its own collectors on it at construction. nil means a fresh private
	// registry. A registry must not be shared between two Servers
	// (collector names would collide).
	Metrics *obs.Registry
	// EnablePprof mounts the net/http/pprof handlers under
	// /debug/pprof/ — opt-in because profiles expose internals and cost
	// CPU while running.
	EnablePprof bool
	// Champions is the hall-of-fame archive behind /v1/champions and
	// /v1/league. It should be the same archive the session was built
	// with (WithChampionArchive) so checkpointed champions become
	// queryable. nil disables the league endpoints (503).
	Champions *league.Archive
}

// Server routes the v1 API onto a Session. Create with New; it implements
// http.Handler. The server does not own the session — closing the session
// (after draining the server) is the caller's shutdown step.
type Server struct {
	session *adhocga.Session
	opts    Options
	mux     *http.ServeMux
	store   jobstore.Store

	// metrics is the registry behind GET /metrics; requests and verifies
	// are its push-style instruments (everything else is polled — see
	// metrics.go).
	metrics  *obs.Registry
	requests *obs.CounterVec
	verifies *obs.CounterVec
	// League instruments: runs counts accepted POST /v1/league
	// submissions, matches the matches of finished league jobs.
	leagueRuns    *obs.Counter
	leagueMatches *obs.Counter

	// baseCtx outlives every request and is cancelled by Shutdown; the
	// streaming handlers derive their subscription contexts from both it
	// and the request, so long-lived streams (including hijacked
	// WebSockets, which http.Server.Shutdown cannot drain) wind down on
	// service shutdown.
	baseCtx    context.Context
	cancelBase context.CancelFunc

	// newTicker is the keepalive clock, swappable by tests: it returns a
	// tick channel firing every d plus a stop function.
	newTicker func(d time.Duration) (<-chan time.Time, func())

	// mu guards the durable-tier bookkeeping: the external job-ID
	// sequence (seeded from the store so IDs stay unique across
	// restarts), the per-job persistence watchers, and the recovery
	// counters /healthz reports.
	mu        sync.Mutex
	nextID    int
	watchers  map[string]chan struct{}
	recovered int
	resumed   int
}

// New builds a Server over the given session.
func New(session *adhocga.Session, opts Options) *Server {
	if opts.MaxBodyBytes <= 0 {
		opts.MaxBodyBytes = 1 << 20
	}
	if opts.KeepaliveInterval <= 0 {
		opts.KeepaliveInterval = 15 * time.Second
	}
	if opts.MaxStoredLogBytes <= 0 {
		opts.MaxStoredLogBytes = 4 << 20
	}
	if opts.Version == "" {
		opts.Version = "dev"
	}
	if opts.Logger == nil {
		opts.Logger = slog.New(slog.DiscardHandler)
	}
	if opts.Metrics == nil {
		opts.Metrics = obs.NewRegistry()
	}
	if opts.Store == nil {
		opts.Store = jobstore.NewMem()
	}
	s := &Server{
		session:  session,
		opts:     opts,
		mux:      http.NewServeMux(),
		store:    opts.Store,
		metrics:  opts.Metrics,
		watchers: map[string]chan struct{}{},
	}
	s.baseCtx, s.cancelBase = context.WithCancel(context.Background())
	s.nextID = s.maxStoredID()
	s.newTicker = func(d time.Duration) (<-chan time.Time, func()) {
		t := time.NewTicker(d)
		return t.C, t.Stop
	}
	s.registerMetrics()
	s.handle("POST /v1/jobs", s.handleSubmit)
	s.handle("GET /v1/jobs", s.handleList)
	s.handle("GET /v1/jobs/{id}", s.handleStatus)
	s.handle("GET /v1/jobs/{id}/events", s.handleEvents)
	s.handle("GET /v1/jobs/{id}/ws", s.handleWS)
	s.handle("POST /v1/jobs/{id}/verify", s.handleVerify)
	s.handle("DELETE /v1/jobs/{id}", s.handleCancel)
	s.handle("GET /v1/champions", s.handleChampions)
	s.handle("GET /v1/champions/{id...}", s.handleChampion)
	s.handle("POST /v1/league", s.handleLeague)
	s.handle("GET /healthz", s.handleHealthz)
	s.handle("GET /metrics", s.metrics.Handler().ServeHTTP)
	if opts.EnablePprof {
		s.registerPprof()
	}
	return s
}

// Shutdown cancels every live stream — WebSocket, SSE, NDJSON — so their
// handlers return promptly. Call it before http.Server.Shutdown: the
// drain only waits for plain requests, and hijacked WebSocket connections
// would otherwise never see a close frame. Safe to call more than once;
// the server keeps serving non-streaming requests afterwards.
func (s *Server) Shutdown() { s.cancelBase() }

// streamContext derives a stream's lifetime from both the request (client
// went away) and the server (Shutdown called). The returned stop releases
// the shutdown hook; callers must defer both.
func (s *Server) streamContext(r *http.Request) (context.Context, context.CancelFunc, func() bool) {
	ctx, cancel := context.WithCancel(r.Context())
	stop := context.AfterFunc(s.baseCtx, cancel)
	return ctx, cancel, stop
}

// handleHealthz reports liveness plus the durable tier's identity: the
// build version, which store backend is configured, and how many jobs the
// startup Recover pass loaded and resumed.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	recovered, resumed := s.recovered, s.resumed
	s.mu.Unlock()
	// The metrics self-check renders the whole exposition: a collector
	// panicking or emitting garbage turns the liveness probe red before a
	// scraper ever trips over it.
	metricsOK := s.metrics.Healthy() == nil
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"version":        s.opts.Version,
		"store":          s.store.Backend(),
		"recovered_jobs": recovered,
		"resumed_jobs":   resumed,
		"metrics_ok":     metricsOK,
	})
}

// maxStoredID scans the store for the highest job-N suffix so freshly
// allocated IDs never collide with persisted ones.
func (s *Server) maxStoredID() int {
	recs, err := s.store.List()
	if err != nil {
		s.opts.Logger.Warn("list store for id seed failed", "error", err)
		return 0
	}
	max := 0
	for _, rec := range recs {
		var n int
		if _, err := fmt.Sscanf(rec.ID, "job-%d", &n); err == nil && n > max {
			max = n
		}
	}
	return max
}

// allocID returns the next external job ID.
func (s *Server) allocID() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	return fmt.Sprintf("job-%d", s.nextID)
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// SubmitRequest is the wrapper form of the submit body. Scenarios holds
// scenario-spec JSON exactly as LoadScenarios accepts it (one spec object
// or an array).
type SubmitRequest struct {
	Scenarios   json.RawMessage `json:"scenarios"`
	Scale       string          `json:"scale,omitempty"`
	Seed        uint64          `json:"seed,omitempty"`
	Parallelism int             `json:"parallelism,omitempty"`
}

// JobInfo is the JSON shape of a job handle in submit/status/list
// responses.
type JobInfo struct {
	ID     string `json:"id"`
	Kind   string `json:"kind"`
	State  string `json:"state"`
	Events int    `json:"events"`
	Error  string `json:"error,omitempty"`
	// Results summarizes each scenario's outcome once the job is done.
	Results []ScenarioResult `json:"results,omitempty"`
	// League is a finished league job's table (kind "league" only).
	League *adhocga.LeagueTable `json:"league,omitempty"`

	StatusURL string `json:"status_url"`
	EventsURL string `json:"events_url"`
	WSURL     string `json:"ws_url"`
	VerifyURL string `json:"verify_url"`
}

// ScenarioResult is one scenario's headline numbers in a finished job.
type ScenarioResult struct {
	Name          string  `json:"name"`
	FinalCoopMean float64 `json:"final_coop_mean"`
	FinalCoopStd  float64 `json:"final_coop_std"`
	FinalEnvCoop  float64 `json:"final_env_coop_mean"`
	Generations   int     `json:"generations"`
	Repetitions   int     `json:"repetitions"`
}

func (s *Server) info(j *adhocga.Job) JobInfo {
	info := JobInfo{
		ID:        j.ID(),
		Kind:      j.Kind(),
		State:     string(j.State()),
		Events:    j.EventCount(),
		StatusURL: "/v1/jobs/" + j.ID(),
		EventsURL: "/v1/jobs/" + j.ID() + "/events",
		WSURL:     "/v1/jobs/" + j.ID() + "/ws",
		VerifyURL: "/v1/jobs/" + j.ID() + "/verify",
	}
	if err := j.Err(); err != nil {
		info.Error = err.Error()
	}
	info.Results = resultsOf(j)
	info.League = leagueOf(j)
	return info
}

// resultsOf summarizes a finished job's per-scenario results (nil while
// running or for failed jobs). The summary — not the raw result — is what
// the durable record digests, so verify verdicts are about the numbers a
// client actually received.
func resultsOf(j *adhocga.Job) []ScenarioResult {
	results, ok := j.Result().([]*experiment.CaseResult)
	if !ok {
		return nil
	}
	out := make([]ScenarioResult, 0, len(results))
	for _, res := range results {
		out = append(out, ScenarioResult{
			Name:          res.Case.Name,
			FinalCoopMean: res.FinalCoop.Mean,
			FinalCoopStd:  res.FinalCoop.StdDev,
			FinalEnvCoop:  res.FinalMeanEnvCoop.Mean,
			Generations:   res.Scale.Generations,
			Repetitions:   res.Scale.Repetitions,
		})
	}
	return out
}

// infoFromRecord is info for a job that lives only in the store — one
// recovered from a previous process. Terminal, by construction: running
// jobs are always in the session.
func infoFromRecord(rec jobstore.Record) JobInfo {
	info := JobInfo{
		ID:        rec.ID,
		Kind:      rec.Kind,
		State:     rec.State,
		Events:    rec.Events,
		Error:     rec.Error,
		StatusURL: "/v1/jobs/" + rec.ID,
		EventsURL: "/v1/jobs/" + rec.ID + "/events",
		WSURL:     "/v1/jobs/" + rec.ID + "/ws",
		VerifyURL: "/v1/jobs/" + rec.ID + "/verify",
	}
	if len(rec.Result) > 0 {
		if rec.Kind == "league" {
			_ = json.Unmarshal(rec.Result, &info.League)
		} else {
			_ = json.Unmarshal(rec.Result, &info.Results)
		}
	}
	return info
}

// handleSubmit accepts scenario-spec JSON and starts a scenarios job. The
// job's lifetime is bound to the session, not the request: the response
// returns immediately with the handle.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, s.opts.MaxBodyBytes+1))
	if err != nil {
		httpError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	if int64(len(body)) > s.opts.MaxBodyBytes {
		httpError(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", s.opts.MaxBodyBytes)
		return
	}
	req, err := parseSubmit(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	sp, err := s.resolveSubmit(req)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	jobSpec, err := sp.jobSpec()
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Durability before acceptance: the queued record (with the full
	// resolved spec — everything a later process needs to re-run the job
	// bit-identically) must be on disk before the 202 goes out, so a
	// crash at any later point can always recover the job.
	rec, err := newRecord(s.allocID(), sp)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if err := s.store.Put(rec); err != nil {
		httpError(w, http.StatusInternalServerError, "persist job: %v", err)
		return
	}
	// The job must outlive this request, so it derives from the
	// background context; its true lifetime bound is the session (Close
	// cancels it) and DELETE /v1/jobs/{id}.
	job, err := s.session.SubmitNamed(context.WithoutCancel(r.Context()), rec.ID, jobSpec)
	if err != nil {
		rec.State = jobstore.StateFailed
		rec.Error = err.Error()
		if perr := s.store.Put(rec); perr != nil {
			s.opts.Logger.Warn("persist failed submit", "job", rec.ID, "error", perr)
		}
		httpError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	s.watch(rec, job)
	s.opts.Logger.Info("job accepted", "job", rec.ID, "seed", rec.Seed, "deterministic", rec.Deterministic)
	writeJSON(w, http.StatusAccepted, s.info(job))
}

// resolvedSubmit is a submission with every server-side default folded
// in: the scale resolved to a concrete struct, seed and parallelism
// pinned. Its JSON form is the record's spec — a later process replays
// the job from this document alone, regardless of how that process's own
// defaults are configured.
type resolvedSubmit struct {
	Scenarios   json.RawMessage `json:"scenarios"`
	Scale       adhocga.Scale   `json:"scale"`
	Seed        uint64          `json:"seed,omitempty"`
	Parallelism int             `json:"parallelism,omitempty"`
}

// resolveSubmit validates the request and folds in the server defaults.
func (s *Server) resolveSubmit(req SubmitRequest) (resolvedSubmit, error) {
	if _, err := scenario.Load(bytes.NewReader(req.Scenarios)); err != nil {
		return resolvedSubmit{}, fmt.Errorf("scenarios: %w", err)
	}
	defaults := s.opts.DefaultScale
	if req.Scale != "" {
		var err error
		defaults, err = experiment.ScaleByName(req.Scale)
		if err != nil {
			return resolvedSubmit{}, err
		}
	}
	if defaults == (adhocga.Scale{}) {
		defaults = s.session.DefaultScale()
	}
	return resolvedSubmit{
		Scenarios:   req.Scenarios,
		Scale:       defaults,
		Seed:        req.Seed,
		Parallelism: req.Parallelism,
	}, nil
}

// jobSpec builds the session workload from a resolved submission.
func (sp resolvedSubmit) jobSpec() (adhocga.ScenariosSpec, error) {
	specs, err := scenario.Load(bytes.NewReader(sp.Scenarios))
	if err != nil {
		return adhocga.ScenariosSpec{}, fmt.Errorf("scenarios: %w", err)
	}
	// Load has already validated every spec's structure; interaction
	// errors (tournament size vs population, island divisibility) surface
	// as a failed job, exactly like a bad batch in the CLIs.
	runs := make([]experiment.ScenarioRun, len(specs))
	for i, spec := range specs {
		runs[i] = experiment.ScenarioRun{Spec: spec}
	}
	return adhocga.ScenariosSpec{
		Runs:     runs,
		Defaults: sp.Scale,
		Opts:     experiment.Options{Seed: sp.Seed, Parallelism: sp.Parallelism},
	}, nil
}

// parseSubmit accepts both body shapes: the wrapper object (detected by a
// "scenarios" key) and bare scenario-spec JSON.
func parseSubmit(body []byte) (SubmitRequest, error) {
	trimmed := bytes.TrimSpace(body)
	if len(trimmed) == 0 {
		return SubmitRequest{}, fmt.Errorf("empty body")
	}
	if trimmed[0] == '{' {
		var probe map[string]json.RawMessage
		if err := json.Unmarshal(trimmed, &probe); err != nil {
			return SubmitRequest{}, fmt.Errorf("body: %w", err)
		}
		if _, ok := probe["scenarios"]; ok {
			var req SubmitRequest
			if err := json.Unmarshal(trimmed, &req); err != nil {
				return SubmitRequest{}, fmt.Errorf("body: %w", err)
			}
			if s := bytes.TrimSpace(req.Scenarios); len(s) == 0 || bytes.Equal(s, []byte("null")) {
				return SubmitRequest{}, fmt.Errorf(`"scenarios" is empty`)
			}
			return req, nil
		}
	}
	// Bare spec object or array.
	return SubmitRequest{Scenarios: trimmed}, nil
}

// handleList merges the store's view (the spine: submission order across
// the store's whole lifetime, including jobs finished by an earlier
// process) with live session handles, which win while a job runs.
// ?state=queued|running|done|failed|cancelled narrows the list to one
// lifecycle state; the filter applies after the merge, so it sees each
// job's freshest state.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	state := r.URL.Query().Get("state")
	switch state {
	case "", jobstore.StateQueued, jobstore.StateRunning, jobstore.StateDone,
		jobstore.StateFailed, jobstore.StateCancelled:
	default:
		httpError(w, http.StatusBadRequest,
			"unknown state %q (want queued, running, done, failed, or cancelled)", state)
		return
	}
	out := []JobInfo{}
	add := func(info JobInfo) {
		if state == "" || info.State == state {
			out = append(out, info)
		}
	}
	seen := map[string]bool{}
	if recs, err := s.store.List(); err == nil {
		for _, rec := range recs {
			seen[rec.ID] = true
			if j, ok := s.session.Job(rec.ID); ok {
				add(s.info(j))
			} else {
				add(infoFromRecord(rec))
			}
		}
	}
	// Jobs the session knows but the store doesn't (submitted around the
	// service, or evicted records) still list.
	for _, j := range s.session.Jobs() {
		if !seen[j.ID()] {
			add(s.info(j))
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
}

// lookup resolves a job id to its live handle (preferred) or its stored
// record. A 404 has already been written when both come back empty.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) (*adhocga.Job, jobstore.Record, bool) {
	id := r.PathValue("id")
	if j, ok := s.session.Job(id); ok {
		return j, jobstore.Record{}, true
	}
	if rec, ok, err := s.store.Get(id); err == nil && ok {
		return nil, rec, true
	}
	httpError(w, http.StatusNotFound, "no job %q", id)
	return nil, jobstore.Record{}, false
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, rec, ok := s.lookup(w, r)
	if !ok {
		return
	}
	if j != nil {
		writeJSON(w, http.StatusOK, s.info(j))
		return
	}
	writeJSON(w, http.StatusOK, infoFromRecord(rec))
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, rec, ok := s.lookup(w, r)
	if !ok {
		return
	}
	if j == nil {
		// Store-only jobs are terminal; cancelling one is the same no-op
		// as cancelling a finished live job.
		writeJSON(w, http.StatusAccepted, infoFromRecord(rec))
		return
	}
	j.Cancel()
	writeJSON(w, http.StatusAccepted, s.info(j))
}

// handleEvents streams the job's events as NDJSON (archival: full replay
// from the oldest retained event, BlockWithDeadline backpressure) or SSE
// when the client asks for text/event-stream (live viewer: `id:` framed,
// Last-Event-ID resume, drop-to-snapshot resync, `: ping` keepalives).
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, rec, ok := s.lookup(w, r)
	if !ok {
		return
	}
	if j == nil {
		// Recovered finished job: serve the archived NDJSON replay from
		// the record — byte-identical to what the original process
		// streamed. Jobs that outgrew log retention keep only digests;
		// verify can still re-derive and check the replay.
		if len(rec.EventLog) == 0 {
			httpError(w, http.StatusGone, "job %s: event log not retained; POST %s to re-derive and check the replay",
				rec.ID, "/v1/jobs/"+rec.ID+"/verify")
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(rec.EventLog)
		return
	}
	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	opts := adhocga.SubscribeOptions{Policy: adhocga.BlockWithDeadline}
	if sse {
		opts.Policy = adhocga.DropResync
		if lei := r.Header.Get("Last-Event-ID"); lei != "" {
			last, err := strconv.Atoi(lei)
			if err != nil || last < 0 {
				httpError(w, http.StatusBadRequest, "bad Last-Event-ID %q", lei)
				return
			}
			opts.From = last + 1
		}
	}
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	// Push the response headers out now: an SSE client on an idle stream
	// must see the connection established before the first event or ping.
	flush()
	// The stream detaches when the client goes away or the service shuts
	// down; the job itself is unaffected either way.
	ctx, cancel, stopAfter := s.streamContext(r)
	defer cancel()
	defer stopAfter()
	sub := j.Subscribe(ctx, opts)
	var keepalive <-chan time.Time
	if sse {
		tick, stop := s.newTicker(s.opts.KeepaliveInterval)
		defer stop()
		keepalive = tick
	}
	for {
		select {
		case e, open := <-sub.C:
			if !open {
				return
			}
			// The hub's frame cache marshals each event once, no matter
			// how many streams fan it out. Frame + "\n" is byte-identical
			// to json.Encoder.Encode (the goldens pin this).
			b, err := j.Frame(e)
			if err != nil {
				return
			}
			if sse {
				if _, err := fmt.Fprintf(w, "id: %d\ndata: ", e.Seq); err != nil {
					return
				}
			}
			if _, err := w.Write(b); err != nil {
				return
			}
			if _, err := io.WriteString(w, "\n"); err != nil {
				return
			}
			if sse {
				if _, err := io.WriteString(w, "\n"); err != nil {
					return
				}
			}
			flush()
		case <-keepalive:
			// SSE comment frame: ignored by clients, resets proxy idle
			// timers.
			if _, err := io.WriteString(w, ": ping\n\n"); err != nil {
				return
			}
			flush()
		}
	}
}

// handleWS upgrades to WebSocket and streams the job's events as one JSON
// text frame per event — the fan-out path for many concurrent viewers.
// Default is a live subscription (current snapshot, then follow);
// ?after=N resumes after sequence N; ?replay=full replays like the
// archival NDJSON path. The connection closes with code 1000 after the
// terminal event and code 4001 (CloseSlowSubscriber) on a backpressure
// eviction. Client data frames are ignored; pings are answered.
func (s *Server) handleWS(w http.ResponseWriter, r *http.Request) {
	j, rec, ok := s.lookup(w, r)
	if !ok {
		return
	}
	if j == nil {
		httpError(w, http.StatusConflict,
			"job %s was recovered from the store and has no live stream; GET its events instead", rec.ID)
		return
	}
	opts := adhocga.SubscribeOptions{Live: true, Policy: adhocga.DropResync}
	q := r.URL.Query()
	if a := q.Get("after"); a != "" {
		last, err := strconv.Atoi(a)
		if err != nil || last < 0 {
			httpError(w, http.StatusBadRequest, "bad after %q", a)
			return
		}
		opts = adhocga.SubscribeOptions{From: last + 1, Policy: adhocga.DropResync}
	}
	if q.Get("replay") == "full" {
		// Mutate, don't replace: ?after=N combined with ?replay=full must
		// keep the resume point — the client wants a gap-free archival
		// replay starting after the last event it saw.
		opts.Live = false
		opts.Policy = adhocga.BlockWithDeadline
	}
	conn, err := ws.Upgrade(w, r)
	if err != nil {
		if errors.Is(err, ws.ErrNotWebSocket) {
			httpError(w, http.StatusBadRequest, "%v", err)
		}
		return
	}
	defer conn.Close()
	ctx, cancel, stopAfter := s.streamContext(r)
	defer cancel()
	defer stopAfter()
	sub := j.Subscribe(ctx, opts)
	// Reader goroutine: answers pings, detects the client going away (or
	// sending a close), and detaches the subscription either way.
	go func() {
		defer cancel()
		for {
			if _, _, err := conn.NextMessage(); err != nil {
				return
			}
		}
	}()
	tick, stop := s.newTicker(s.opts.KeepaliveInterval)
	defer stop()
	for {
		select {
		case e, open := <-sub.C:
			if !open {
				switch sub.Err() {
				case nil: // terminal event delivered
					conn.WriteClose(ws.CloseNormal, "job stream complete")
				case adhocga.ErrSlowSubscriber:
					conn.WriteClose(CloseSlowSubscriber, "not draining; reconnect with ?after=")
				default:
					// Subscription torn down without a terminal event —
					// service shutdown, typically. A close frame lets the
					// client tell "server going away" from a network fault.
					conn.WriteClose(ws.CloseGoingAway, "going away")
				}
				return
			}
			b, err := j.Frame(e)
			if err != nil {
				return
			}
			if err := conn.WriteText(b); err != nil {
				return
			}
		case <-tick:
			if err := conn.WritePing(nil); err != nil {
				return
			}
		case <-ctx.Done():
			// Both exit paths race on shutdown (the cancelled subscription
			// closes sub.C as ctx fires); send the same close frame here so
			// the client-visible behavior doesn't depend on select order.
			conn.WriteClose(ws.CloseGoingAway, "going away")
			return
		}
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}
