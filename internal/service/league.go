package service

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"adhocga"
	"adhocga/internal/jobstore"
	"adhocga/internal/league"
)

// The league surface: the champion archive's read endpoints and the
// league-job submit endpoint. Champions get into the archive when jobs
// run with checkpoints enabled (the scenario "checkpoints" field); a
// league job re-seats selected champions — optionally with the scripted
// baselines — in a round-robin of tournament matches and reports the
// table. League jobs ride the same durable-record machinery as scenario
// jobs: queued-before-202, watched to terminal, recovered by Kind.

// handleChampions lists the hall of fame in archival order, optionally
// filtered by classification category (?category=reciprocal) or source
// job (?job=job-1).
func (s *Server) handleChampions(w http.ResponseWriter, r *http.Request) {
	if s.opts.Champions == nil {
		httpError(w, http.StatusServiceUnavailable, "no champion archive configured (run adhocd with -champions)")
		return
	}
	q := r.URL.Query()
	category, job := q.Get("category"), q.Get("job")
	champs := s.opts.Champions.List()
	out := make([]league.Champion, 0, len(champs))
	for _, c := range champs {
		if category != "" && c.Category != category {
			continue
		}
		if job != "" && c.Job != job {
			continue
		}
		out = append(out, c)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"champions": out,
		"count":     len(out),
		"archive":   s.opts.Champions.Backend(),
	})
}

// handleChampion serves one champion by ID. Champion IDs contain slashes
// (job/scenario/rep/generation), so the route binds the path remainder.
func (s *Server) handleChampion(w http.ResponseWriter, r *http.Request) {
	if s.opts.Champions == nil {
		httpError(w, http.StatusServiceUnavailable, "no champion archive configured (run adhocd with -champions)")
		return
	}
	id := r.PathValue("id")
	c, ok := s.opts.Champions.Get(id)
	if !ok {
		httpError(w, http.StatusNotFound, "no champion %q", id)
		return
	}
	writeJSON(w, http.StatusOK, c)
}

// handleLeague submits a league job over selected champions. The body is
// a LeagueJobSpec JSON document ({"champions": [...], "baselines": true,
// "seed": 7, ...}); an empty champions list seats the whole archive. The
// job runs on the session like any other: 202 with the handle, results
// on GET /v1/jobs/{id} once done.
func (s *Server) handleLeague(w http.ResponseWriter, r *http.Request) {
	if s.opts.Champions == nil {
		httpError(w, http.StatusServiceUnavailable, "no champion archive configured (run adhocd with -champions)")
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, s.opts.MaxBodyBytes+1))
	if err != nil {
		httpError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	if int64(len(body)) > s.opts.MaxBodyBytes {
		httpError(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", s.opts.MaxBodyBytes)
		return
	}
	var spec adhocga.LeagueJobSpec
	if len(body) > 0 {
		if err := json.Unmarshal(body, &spec); err != nil {
			httpError(w, http.StatusBadRequest, "body: %v", err)
			return
		}
	}
	// Fail the obvious emptiness up front (no champions and no baselines
	// can never seat a league) so the client gets a 400, not a failed job.
	if len(spec.ChampionIDs) == 0 && s.opts.Champions.Len() == 0 && !spec.IncludeBaselines {
		httpError(w, http.StatusBadRequest, "champion archive is empty and baselines are off — nothing to seat")
		return
	}
	rec, err := newLeagueRecord(s.allocID(), spec)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if err := s.store.Put(rec); err != nil {
		httpError(w, http.StatusInternalServerError, "persist job: %v", err)
		return
	}
	job, err := s.session.SubmitNamed(context.WithoutCancel(r.Context()), rec.ID, spec)
	if err != nil {
		rec.State = jobstore.StateFailed
		rec.Error = err.Error()
		if perr := s.store.Put(rec); perr != nil {
			s.opts.Logger.Warn("persist failed submit", "job", rec.ID, "error", perr)
		}
		httpError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	s.watch(rec, job)
	s.leagueRuns.Inc()
	s.opts.Logger.Info("league job accepted", "job", rec.ID, "champions", len(spec.ChampionIDs), "baselines", spec.IncludeBaselines)
	writeJSON(w, http.StatusAccepted, s.info(job))
}

// newLeagueRecord builds the durable identity of a league submission. The
// spec document alone re-runs the job: the seats resolve from the champion
// archive, which is itself durable.
func newLeagueRecord(id string, spec adhocga.LeagueJobSpec) (jobstore.Record, error) {
	raw, err := json.Marshal(spec)
	if err != nil {
		return jobstore.Record{}, fmt.Errorf("encode spec: %w", err)
	}
	return jobstore.Record{
		ID:    id,
		Kind:  "league",
		Spec:  raw,
		Seed:  spec.Seed,
		State: jobstore.StateQueued,
		// A league emits no mid-flight events, so its (trivial) event log
		// is reproducible at any parallelism; the table itself is always
		// bit-identical.
		Deterministic: true,
	}, nil
}

// leagueOf extracts a finished league job's table (nil for every other
// job kind or while running).
func leagueOf(j *adhocga.Job) *adhocga.LeagueTable {
	t, _ := j.Result().(*adhocga.LeagueTable)
	return t
}
