package service

// Tests for the hub-backed streaming surface: SSE resume via
// Last-Event-ID, SSE keepalive comment frames under a fake clock, and the
// WebSocket endpoint (live snapshot join, resume, full replay, close
// semantics).

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"adhocga"
	"adhocga/internal/ws"
)

// finishedSmokeJob submits the smoke scenario and waits for completion,
// returning its JobInfo.
func finishedSmokeJob(t *testing.T, srv *httptest.Server) JobInfo {
	t.Helper()
	code, body := doJSON(t, http.MethodPost, srv.URL+"/v1/jobs",
		fmt.Sprintf(`{"scenarios": %s, "parallelism": 1, "scale": "smoke"}`, smokeSpec))
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, body)
	}
	var info JobInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	return waitState(t, srv.URL, info.ID)
}

func TestSSEResumeFromLastEventID(t *testing.T) {
	srv, _ := newTestServer(t)
	info := finishedSmokeJob(t, srv)

	// A reconnecting client that saw events up to seq 3 resumes at 4.
	req, _ := http.NewRequest(http.MethodGet, srv.URL+info.EventsURL, nil)
	req.Header.Set("Accept", "text/event-stream")
	req.Header.Set("Last-Event-ID", "3")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var events []adhocga.Event
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if data, ok := strings.CutPrefix(sc.Text(), "data: "); ok {
			var e adhocga.Event
			if err := json.Unmarshal([]byte(data), &e); err != nil {
				t.Fatal(err)
			}
			events = append(events, e)
		}
	}
	if len(events) == 0 || events[0].Seq != 4 {
		t.Fatalf("resume from Last-Event-ID 3 delivered %+v", events)
	}
	if last := events[len(events)-1]; last.Kind != adhocga.KindDone {
		t.Errorf("resumed stream not terminated by done: %+v", last)
	}

	// Malformed ids are rejected before streaming starts.
	req, _ = http.NewRequest(http.MethodGet, srv.URL+info.EventsURL, nil)
	req.Header.Set("Accept", "text/event-stream")
	req.Header.Set("Last-Event-ID", "banana")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad Last-Event-ID accepted: %d", resp.StatusCode)
	}
}

func TestSSEKeepaliveWithFakeClock(t *testing.T) {
	// One job slot, held by a long-running hog: the second submission
	// stays queued and emits nothing, so its SSE stream is idle from the
	// moment it opens — any frame that arrives must be a keepalive.
	session := adhocga.NewSession(adhocga.WithMaxConcurrentJobs(1))
	defer session.Close()
	// Fake clock: the test controls exactly when keepalive ticks fire.
	tick := make(chan time.Time)
	server := New(session, Options{})
	server.newTicker = func(time.Duration) (<-chan time.Time, func()) {
		return tick, func() {}
	}
	srv := httptest.NewServer(server)
	defer srv.Close()

	longCfg := adhocga.DefaultEvolutionConfig(adhocga.PaperEnvironments()[:1], adhocga.ShorterPaths(), 7)
	longCfg.PopulationSize = 20
	longCfg.Eval.TournamentSize = 10
	longCfg.Eval.Tournament.Rounds = 10
	longCfg.Generations = 1 << 30 // never finishes; cancelled at a generation barrier on cleanup
	hog, err := session.Submit(t.Context(), adhocga.EvolveSpec{Config: longCfg})
	if err != nil {
		t.Fatal(err)
	}
	defer hog.Cancel()
	// Job-slot acquisition happens in a per-job goroutine, so two quick
	// submissions race for the single slot. Wait until the hog actually
	// holds it — otherwise the "queued" job can win, run its generation,
	// and emit real events into the stream this test needs idle.
	for hog.State() == adhocga.JobQueued {
		time.Sleep(time.Millisecond)
	}
	if got := hog.State(); got != adhocga.JobRunning {
		t.Fatalf("hog job reached %s (err %v) instead of holding the slot", got, hog.Err())
	}
	queuedCfg := longCfg
	queuedCfg.Generations = 1
	job, err := session.Submit(t.Context(), adhocga.EvolveSpec{Config: queuedCfg})
	if err != nil {
		t.Fatal(err)
	}
	defer job.Cancel()

	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/v1/jobs/"+job.ID()+"/events", nil)
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	go func() {
		for i := 0; i < 3; i++ {
			select {
			case tick <- time.Time{}:
			case <-t.Context().Done():
				return
			}
		}
	}()
	sc := bufio.NewScanner(resp.Body)
	pings := 0
	for sc.Scan() && pings < 3 {
		switch line := sc.Text(); {
		case line == ": ping":
			pings++
		case line == "":
		default:
			t.Fatalf("idle stream produced a non-keepalive frame: %q (hog %s err %v, queued job %s)",
				line, hog.State(), hog.Err(), job.State())
		}
	}
	if pings != 3 {
		t.Fatalf("saw %d keepalive pings, want 3 (scan err %v; hog %s err %v)",
			pings, sc.Err(), hog.State(), hog.Err())
	}
}

// wsURL rewrites an httptest http:// URL into the ws endpoint of a job.
func wsURL(srvURL string, info JobInfo, query string) string {
	return "ws" + strings.TrimPrefix(srvURL, "http") + info.WSURL + query
}

// readEventsUntilClose drains WS text frames until the server's close
// frame, returning the events and the close code.
func readEventsUntilClose(t *testing.T, conn *ws.Conn) ([]adhocga.Event, uint16) {
	t.Helper()
	var events []adhocga.Event
	conn.SetReadDeadline(time.Now().Add(60 * time.Second))
	for {
		op, payload, err := conn.NextMessage()
		if err != nil {
			var ce *ws.CloseError
			if errors.As(err, &ce) {
				return events, ce.Code
			}
			t.Fatalf("ws read: %v", err)
		}
		if op != ws.OpText {
			t.Fatalf("unexpected frame op %d", op)
		}
		var e adhocga.Event
		if err := json.Unmarshal(payload, &e); err != nil {
			t.Fatalf("frame %q: %v", payload, err)
		}
		events = append(events, e)
	}
}

func TestWebSocketFullReplayMatchesNDJSON(t *testing.T) {
	srv, _ := newTestServer(t)
	info := finishedSmokeJob(t, srv)

	conn, err := ws.Dial(wsURL(srv.URL, info, "?replay=full"))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	events, code := readEventsUntilClose(t, conn)
	if code != ws.CloseNormal {
		t.Errorf("close code %d, want %d", code, ws.CloseNormal)
	}

	_, ndjson := doJSON(t, http.MethodGet, srv.URL+info.EventsURL, "")
	lines := strings.Split(strings.TrimSpace(string(ndjson)), "\n")
	if len(events) != len(lines) {
		t.Fatalf("ws replay has %d events, NDJSON %d", len(events), len(lines))
	}
	for i, line := range lines {
		b, err := json.Marshal(events[i])
		if err != nil {
			t.Fatal(err)
		}
		if string(b) != line {
			t.Errorf("event %d differs:\nws:     %s\nndjson: %s", i, b, line)
		}
	}
}

func TestWebSocketLiveJoinOnFinishedJobGetsSnapshot(t *testing.T) {
	srv, _ := newTestServer(t)
	info := finishedSmokeJob(t, srv)

	// A live join after completion sees the compacted snapshot — the
	// latest event per stream — and then the close. The terminal done
	// event is always part of it.
	conn, err := ws.Dial(wsURL(srv.URL, info, ""))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	events, code := readEventsUntilClose(t, conn)
	if code != ws.CloseNormal {
		t.Errorf("close code %d", code)
	}
	if len(events) == 0 {
		t.Fatal("live join delivered no snapshot")
	}
	for i := 1; i < len(events); i++ {
		if events[i].Seq <= events[i-1].Seq {
			t.Errorf("snapshot not in sequence order: %d after %d", events[i].Seq, events[i-1].Seq)
		}
	}
	last := events[len(events)-1]
	if last.Kind != adhocga.KindDone {
		t.Errorf("snapshot not terminated by done event: %+v", last)
	}
	// Compaction: the snapshot must be smaller than the full history
	// (the smoke job emits 2 gens × 2 reps; only the latest per stream
	// survives).
	if len(events) >= info.Events {
		t.Errorf("live snapshot has %d events, full history only %d", len(events), info.Events)
	}
}

func TestWebSocketResumeAfter(t *testing.T) {
	srv, _ := newTestServer(t)
	info := finishedSmokeJob(t, srv)

	conn, err := ws.Dial(wsURL(srv.URL, info, "?after=4"))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	events, code := readEventsUntilClose(t, conn)
	if code != ws.CloseNormal {
		t.Errorf("close code %d", code)
	}
	if len(events) == 0 || events[0].Seq != 5 {
		t.Fatalf("resume ?after=4 delivered %+v", events)
	}
}

func TestWebSocketStreamsLiveJob(t *testing.T) {
	srv, _ := newTestServer(t)
	code, body := doJSON(t, http.MethodPost, srv.URL+"/v1/jobs",
		fmt.Sprintf(`{"scenarios": %s, "parallelism": 1, "scale": "smoke"}`, longSpec))
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, body)
	}
	var info JobInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}

	conn, err := ws.Dial(wsURL(srv.URL, info, ""))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Follow the live stream for a few generation events, then cancel
	// the job and expect the stream to end with done + close 1000.
	seen := 0
	conn.SetReadDeadline(time.Now().Add(60 * time.Second))
	for {
		_, payload, err := conn.NextMessage()
		if err != nil {
			t.Fatalf("live read: %v", err)
		}
		var e adhocga.Event
		if err := json.Unmarshal(payload, &e); err != nil {
			t.Fatal(err)
		}
		if e.Kind == adhocga.KindGeneration {
			if seen++; seen == 3 {
				break
			}
		}
	}
	if code, _ := doJSON(t, http.MethodDelete, srv.URL+"/v1/jobs/"+info.ID, ""); code != http.StatusAccepted {
		t.Fatalf("cancel: %d", code)
	}
	events, closeCode := readEventsUntilClose(t, conn)
	if closeCode != ws.CloseNormal {
		t.Errorf("close code %d", closeCode)
	}
	if len(events) == 0 {
		t.Fatal("no events after cancel")
	}
	last := events[len(events)-1]
	if last.Kind != adhocga.KindDone || last.Done.State != adhocga.JobCancelled {
		t.Errorf("terminal event %+v, want cancelled done", last)
	}
}

// Regression: ?after=N combined with ?replay=full used to discard the
// resume point (the replay branch overwrote the whole options struct) and
// silently replay from the start. The combination must honor both — a
// gap-free archival replay beginning right after the last seen event.
func TestWebSocketAfterWithFullReplay(t *testing.T) {
	srv, _ := newTestServer(t)
	info := finishedSmokeJob(t, srv)

	conn, err := ws.Dial(wsURL(srv.URL, info, "?after=4&replay=full"))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	events, code := readEventsUntilClose(t, conn)
	if code != ws.CloseNormal {
		t.Errorf("close code %d, want %d", code, ws.CloseNormal)
	}
	if len(events) == 0 {
		t.Fatal("no events delivered")
	}
	if events[0].Seq != 5 {
		t.Fatalf("first event Seq = %d, want 5 (?after=4 was discarded)", events[0].Seq)
	}
	// BlockWithDeadline replay of a fully retained history is gap-free.
	for i := 1; i < len(events); i++ {
		if events[i].Seq != events[i-1].Seq+1 {
			t.Errorf("gap in archival replay: %d after %d", events[i].Seq, events[i-1].Seq)
		}
	}
	if last := events[len(events)-1]; last.Kind != adhocga.KindDone {
		t.Errorf("replay not terminated by done event: %+v", last)
	}
}

// Regression: tearing a WebSocket stream down mid-job (service shutdown)
// used to drop the TCP connection with no close frame, so clients could
// not tell a shutdown from a network fault. The server now sends close
// 1011 "going away".
func TestWebSocketShutdownSendsGoingAway(t *testing.T) {
	session := adhocga.NewSession()
	defer session.Close()
	server := New(session, Options{})
	srv := httptest.NewServer(server)
	defer srv.Close()

	code, body := doJSON(t, http.MethodPost, srv.URL+"/v1/jobs",
		fmt.Sprintf(`{"scenarios": %s, "parallelism": 1, "scale": "smoke"}`, longSpec))
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, body)
	}
	var info JobInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	conn, err := ws.Dial(wsURL(srv.URL, info, ""))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Make sure the stream is really flowing before pulling the plug.
	conn.SetReadDeadline(time.Now().Add(60 * time.Second))
	if _, _, err := conn.NextMessage(); err != nil {
		t.Fatalf("first live event: %v", err)
	}
	server.Shutdown()
	_, closeCode := readEventsUntilClose(t, conn)
	if closeCode != ws.CloseGoingAway {
		t.Fatalf("close code %d, want %d (server shutdown must send a close frame)",
			closeCode, ws.CloseGoingAway)
	}
}

func TestWebSocketBadRequests(t *testing.T) {
	srv, _ := newTestServer(t)
	info := finishedSmokeJob(t, srv)

	if _, err := ws.Dial(wsURL(srv.URL, info, "?after=nope")); err == nil {
		t.Error("bad ?after accepted")
	}
	if _, err := ws.Dial("ws" + strings.TrimPrefix(srv.URL, "http") + "/v1/jobs/job-99/ws"); err == nil {
		t.Error("missing job upgraded")
	}
	// A plain GET (no upgrade headers) must come back as a normal HTTP
	// error, not a hijacked socket.
	resp, err := http.Get(srv.URL + info.WSURL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("plain GET on /ws: %d", resp.StatusCode)
	}
}
