package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"adhocga"
	"adhocga/internal/jobstore"
)

// POST /v1/jobs/{id}/verify — provable reproducibility as an endpoint.
//
// Every job in this codebase is a pure function of (seed, spec), so a
// finished job's stored record is also a falsifiable claim: "running this
// spec under this seed produces exactly these bytes". Verify tests the
// claim. It replays the job from its recorded spec in a sandboxed,
// throwaway Session (its own pool — a verify pass never competes for the
// serving session's job slots or reuses its engine arenas), re-derives
// the result summary and the NDJSON event log, and compares:
//
//   - result digest: hex SHA-256 of the result summary JSON, checked for
//     every job — including ones whose event log outgrew retention, where
//     it is the only check (mode "digest").
//   - event log: when the record embeds the full NDJSON replay
//     (deterministic parallelism-1 jobs within retention), the replayed
//     log is byte-compared against it and a mismatch reports the first
//     divergent offset with a snippet of both sides (mode
//     "byte-compare"). A record that kept only the log digest (log too
//     large to embed) digest-compares the replayed log instead.
//
// The verdict is "match" only when every applicable comparison holds.
// Tampering with a stored digest, result, spec byte, or event log — or
// any nondeterminism bug in the engine — turns it "mismatch".

// VerifyReport is the verify endpoint's response.
type VerifyReport struct {
	ID      string `json:"id"`
	Verdict string `json:"verdict"` // "match" | "mismatch"
	Mode    string `json:"mode"`    // "byte-compare" | "digest"

	// Result-summary digest comparison (always performed).
	ResultDigestStored   string `json:"result_digest_stored"`
	ResultDigestReplayed string `json:"result_digest_replayed"`
	ResultMatch          bool   `json:"result_match"`

	// Event-log comparison (mode "byte-compare" only).
	EventLog *VerifyLogReport `json:"event_log,omitempty"`
}

// VerifyLogReport details the event-log byte comparison.
type VerifyLogReport struct {
	StoredBytes   int  `json:"stored_bytes"`
	ReplayedBytes int  `json:"replayed_bytes"`
	Match         bool `json:"match"`
	// DivergenceOffset is the first byte offset where the logs differ
	// (-1 on match). When one log is a strict prefix of the other it is
	// the shorter length.
	DivergenceOffset int `json:"divergence_offset"`
	// StoredAt / ReplayedAt quote up to 32 bytes of each log starting at
	// the divergence, for a human reading the verdict.
	StoredAt   string `json:"stored_at,omitempty"`
	ReplayedAt string `json:"replayed_at,omitempty"`
}

func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, ok, err := s.store.Get(id)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "load record: %v", err)
		return
	}
	if !ok {
		httpError(w, http.StatusNotFound, "no job %q", id)
		return
	}
	// A job that just finished may be ahead of its record (the watcher
	// persists the terminal state asynchronously); give the watcher a
	// moment to catch up before judging the state.
	if !jobstore.TerminalState(rec.State) {
		if j, live := s.session.Job(id); live && j.State().Terminal() {
			if done := s.watcherDone(id); done != nil {
				select {
				case <-done:
				case <-time.After(30 * time.Second):
				case <-r.Context().Done():
					return
				}
			}
			rec, ok, err = s.store.Get(id)
			if err != nil || !ok {
				httpError(w, http.StatusInternalServerError, "reload record: %v", err)
				return
			}
		}
	}
	if rec.State != jobstore.StateDone {
		httpError(w, http.StatusConflict, "job %s is %s; only done jobs can be verified", id, rec.State)
		return
	}
	report, err := s.verifyRecord(r.Context(), rec)
	if err != nil {
		s.verifies.With("error").Inc()
		httpError(w, http.StatusInternalServerError, "verify %s: %v", id, err)
		return
	}
	s.verifies.With(report.Verdict).Inc()
	s.opts.Logger.Info("verify finished", "job", id, "verdict", report.Verdict, "mode", report.Mode)
	writeJSON(w, http.StatusOK, report)
}

// verifyRecord replays rec in a sandbox and compares the outcome against
// the stored artifacts.
func (s *Server) verifyRecord(ctx context.Context, rec jobstore.Record) (VerifyReport, error) {
	replayLog, replayResults, err := s.replayRecord(ctx, rec)
	if err != nil {
		return VerifyReport{}, err
	}
	report := VerifyReport{
		ID:                   rec.ID,
		Mode:                 "digest",
		ResultDigestStored:   rec.ResultDigest,
		ResultDigestReplayed: digest(replayResults),
	}
	report.ResultMatch = report.ResultDigestStored == report.ResultDigestReplayed
	match := report.ResultMatch
	switch {
	case len(rec.EventLog) > 0:
		report.Mode = "byte-compare"
		report.EventLog = compareLogs(rec.EventLog, replayLog)
		match = match && report.EventLog.Match
	case rec.LogDigest != "":
		// The full log was eligible but too large to embed: check the
		// replayed log against its stored digest, still byte-exact in
		// effect but without an offset to point at.
		report.Mode = "byte-compare"
		logMatch := digest(replayLog) == rec.LogDigest
		report.EventLog = &VerifyLogReport{
			StoredBytes:      -1,
			ReplayedBytes:    len(replayLog),
			Match:            logMatch,
			DivergenceOffset: -1,
		}
		match = match && logMatch
	}
	report.Verdict = "mismatch"
	if match {
		report.Verdict = "match"
	}
	return report, nil
}

// replayRecord re-runs the record's (seed, spec) in a sandboxed session
// and returns the replayed NDJSON event log and result-summary JSON.
func (s *Server) replayRecord(ctx context.Context, rec jobstore.Record) ([]byte, []byte, error) {
	spec, err := specFromRecord(rec)
	if err != nil {
		return nil, nil, err
	}
	// Size the sandbox hub to retain the whole replay whenever the
	// original run's history was retained, so the byte comparison sees
	// complete logs on both sides.
	hub := adhocga.HubConfig{}
	if rec.Events > 0 {
		hub.RingSize = rec.Events
	}
	sessOpts := []adhocga.SessionOption{adhocga.WithHubConfig(hub)}
	if rec.Kind == "league" && s.opts.Champions != nil {
		// League seats resolve from the champion archive; sharing it is
		// safe — replays archive nothing (the sandbox runs no checkpoints)
		// and Select only reads.
		sessOpts = append(sessOpts, adhocga.WithChampionArchive(s.opts.Champions))
	}
	sandbox := adhocga.NewSession(sessOpts...)
	defer sandbox.Close()
	// The original ID matters: events embed it, and the stored log was
	// emitted under it.
	j, err := sandbox.SubmitNamed(ctx, rec.ID, spec)
	if err != nil {
		return nil, nil, err
	}
	var events []adhocga.Event
	for e := range j.EventsContext(ctx) {
		events = append(events, e)
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	if err := j.Wait(ctx); err != nil {
		return nil, nil, fmt.Errorf("replay failed: %w", err)
	}
	var results []byte
	if table := leagueOf(j); table != nil {
		results, err = json.Marshal(table)
	} else {
		results, err = json.Marshal(resultsOf(j))
	}
	if err != nil {
		return nil, nil, err
	}
	return eventLogNDJSON(events), results, nil
}

// compareLogs byte-compares the stored and replayed event logs.
func compareLogs(stored, replayed []byte) *VerifyLogReport {
	rep := &VerifyLogReport{
		StoredBytes:      len(stored),
		ReplayedBytes:    len(replayed),
		DivergenceOffset: -1,
	}
	n := min(len(stored), len(replayed))
	for i := 0; i < n; i++ {
		if stored[i] != replayed[i] {
			rep.DivergenceOffset = i
			break
		}
	}
	if rep.DivergenceOffset < 0 && len(stored) != len(replayed) {
		rep.DivergenceOffset = n
	}
	if rep.DivergenceOffset < 0 {
		rep.Match = true
		return rep
	}
	rep.StoredAt = snippet(stored, rep.DivergenceOffset)
	rep.ReplayedAt = snippet(replayed, rep.DivergenceOffset)
	return rep
}

// snippet quotes up to 32 bytes of b starting at off.
func snippet(b []byte, off int) string {
	if off >= len(b) {
		return ""
	}
	end := min(off+32, len(b))
	return string(b[off:end])
}
