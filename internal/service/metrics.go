package service

import (
	"bufio"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"adhocga"
	"adhocga/internal/jobstore"
	"adhocga/internal/obs"
)

// The service's observability wiring. Almost everything here is a pull
// collector: the layers below (session, hub, jobstore, runner pool)
// already keep their counters in private structs behind cheap stats
// methods, so the registry polls them at scrape time and the hot paths
// pay nothing between scrapes — which is how the instrumented daemon
// stays inside the benchgate budget. The only push instruments are the
// per-request route/status counter (one atomic increment per finished
// request), the verify-outcome counter, and the WAL fsync latency
// histogram fed through jobstore's OnFsync hook.
//
// Cardinality rules (see also internal/obs): label values come from
// bounded sets — route patterns, job states, verify verdicts. The per-job
// series (adhocd_job_events, adhocd_job_subscribers) are the deliberate
// exception: they enumerate only jobs still reachable and non-terminal at
// scrape time, so a job's series retire once it finishes and retention
// prunes it — a long-lived daemon's exposition stays bounded by the
// retention limit, not by lifetime job count.

// handle registers a route with request counting: every completed request
// increments adhocd_http_requests_total{route, code}, with the route
// pattern (not the concrete path — bounded cardinality) as the label.
func (s *Server) handle(pattern string, h http.HandlerFunc) {
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w}
		h(rec, r)
		code := rec.status
		if code == 0 {
			// The handler wrote a body (or nothing) without an explicit
			// WriteHeader; net/http sends 200 for that.
			code = http.StatusOK
		}
		s.requests.With(pattern, strconv.Itoa(code)).Inc()
	})
}

// statusRecorder captures the response status code while forwarding the
// streaming capabilities the handlers rely on: Flush for SSE/NDJSON and
// Hijack for the WebSocket upgrade.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (r *statusRecorder) Hijack() (net.Conn, *bufio.ReadWriter, error) {
	hj, ok := r.ResponseWriter.(http.Hijacker)
	if !ok {
		return nil, nil, fmt.Errorf("service: underlying ResponseWriter does not support hijacking")
	}
	conn, rw, err := hj.Hijack()
	if err == nil && r.status == 0 {
		// A successful hijack is the WebSocket upgrade completing.
		r.status = http.StatusSwitchingProtocols
	}
	return conn, rw, err
}

// registerMetrics installs every collector on the server's registry.
// Called once from New; a shared registry across two Servers panics on
// the duplicate names, by design.
func (s *Server) registerMetrics() {
	m := s.metrics

	// Push instruments.
	s.requests = m.CounterVec("adhocd_http_requests_total",
		"Completed HTTP requests by route pattern and status code.", "route", "code")
	s.verifies = m.CounterVec("adhocd_verify_total",
		"Verify replays by verdict (match, mismatch, error).", "verdict")
	s.leagueRuns = m.Counter("adhoc_league_runs_total",
		"League jobs accepted via POST /v1/league.")
	s.leagueMatches = m.Counter("adhoc_league_matches_total",
		"Matches played by finished league jobs.")

	// Champion archive census, when one is configured.
	if a := s.opts.Champions; a != nil {
		m.GaugeFunc("adhoc_champions",
			"Champions currently in the hall-of-fame archive.",
			func() float64 { return float64(a.Len()) })
		m.GaugeFunc("adhoc_champions_skipped",
			"Corrupt or foreign records skipped while loading the champion archive.",
			func() float64 { return float64(a.Skipped()) })
	}

	// Session census.
	m.CounterFunc("adhocd_jobs_submitted_total",
		"Jobs accepted by the session over its lifetime.",
		func() float64 { return float64(s.session.Stats().Submitted) })
	m.GaugeVecFunc("adhocd_jobs",
		"Currently reachable jobs by lifecycle state.", []string{"state"},
		func() []obs.LabeledValue {
			st := s.session.Stats()
			return []obs.LabeledValue{
				{Labels: []string{"queued"}, Value: float64(st.Queued)},
				{Labels: []string{"running"}, Value: float64(st.Running)},
				{Labels: []string{"done"}, Value: float64(st.Done)},
				{Labels: []string{"failed"}, Value: float64(st.Failed)},
				{Labels: []string{"cancelled"}, Value: float64(st.Cancelled)},
			}
		})
	m.CounterFunc("adhocd_engine_reuses_total",
		"Jobs that ran on a recycled engine arena instead of building a fresh one.",
		func() float64 { return float64(s.session.EngineReuses()) })
	m.GaugeFunc("adhocd_pool_slots",
		"Execution pool capacity (replicate units that can run at once).",
		func() float64 { return float64(s.session.Stats().PoolSize) })
	m.GaugeFunc("adhocd_pool_busy",
		"Execution pool slots currently held by running tasks.",
		func() float64 { return float64(s.session.Stats().PoolBusy) })

	// Streaming hub totals, aggregated across every job the session ran.
	m.CounterFunc("adhocd_stream_events_emitted_total",
		"Events emitted across all job hubs.",
		func() float64 { return float64(s.session.StreamTotals().Emitted) })
	m.CounterFunc("adhocd_stream_events_overwritten_total",
		"Emitted events lapped out of their ring (retained only as snapshot entries).",
		func() float64 { return float64(s.session.StreamTotals().Overwritten) })
	m.GaugeFunc("adhocd_stream_subscribers",
		"Currently attached stream subscriptions across all jobs.",
		func() float64 { return float64(s.session.StreamTotals().Subscribers) })
	m.CounterFunc("adhocd_stream_resyncs_total",
		"Lapped live viewers skipped ahead via the compacted snapshot.",
		func() float64 { return float64(s.session.StreamTotals().Resyncs) })
	m.CounterFunc("adhocd_stream_evictions_total",
		"Subscribers evicted by backpressure.",
		func() float64 { return float64(s.session.StreamTotals().Evictions) })
	m.GaugeFunc("adhocd_stream_max_stall_seconds",
		"Longest a producer append waited on BlockWithDeadline subscribers.",
		func() float64 { return s.session.StreamTotals().MaxStall.Seconds() })

	// Per-job series — the retiring kind: only reachable, non-terminal
	// jobs are enumerated, so cardinality is bounded by the session's
	// concurrency, not by lifetime job count.
	m.GaugeVecFunc("adhocd_job_events",
		"Events emitted so far, per live (non-terminal) job.", []string{"job"},
		func() []obs.LabeledValue {
			return s.perJob(func(st adhocga.StreamStats) float64 { return float64(st.Emitted) })
		})
	m.GaugeVecFunc("adhocd_job_subscribers",
		"Attached subscribers, per live (non-terminal) job.", []string{"job"},
		func() []obs.LabeledValue {
			return s.perJob(func(st adhocga.StreamStats) float64 { return float64(st.Subscribers) })
		})

	// Durable tier.
	m.GaugeFunc("adhocd_persist_watchers",
		"Persistence watcher goroutines currently following live jobs.",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(len(s.watchers))
		})
	m.GaugeFunc("adhocd_recovered_jobs",
		"Records loaded from the store by the startup Recover pass.",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(s.recovered)
		})
	m.GaugeFunc("adhocd_resumed_jobs",
		"Unfinished records re-submitted by the startup Recover pass.",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(s.resumed)
		})
	if lener, ok := s.store.(interface{ Len() int }); ok {
		m.GaugeFunc("adhocd_store_records",
			"Job records currently in the store.",
			func() float64 { return float64(lener.Len()) })
	}

	// WAL backend internals, when the file store is configured.
	if fs, ok := s.store.(*jobstore.File); ok {
		fsyncLat := m.Histogram("adhocd_wal_fsync_seconds",
			"Latency of synchronous WAL fsyncs (record creation and state transitions).", nil)
		fs.OnFsync(func(d time.Duration) { fsyncLat.Observe(d.Seconds()) })
		m.CounterFunc("adhocd_wal_appends_total",
			"WAL lines appended since open.",
			func() float64 { return float64(fs.Stats().Appends) })
		m.CounterFunc("adhocd_wal_fsyncs_total",
			"WAL appends made durable synchronously.",
			func() float64 { return float64(fs.Stats().Fsyncs) })
		m.CounterFunc("adhocd_wal_compactions_total",
			"WAL compaction rewrites since open.",
			func() float64 { return float64(fs.Stats().Compactions) })
		m.GaugeFunc("adhocd_wal_torn_entries_skipped",
			"Corrupt WAL entries recovery skipped when the store was opened.",
			func() float64 { return float64(fs.Stats().TornSkipped) })
		m.GaugeFunc("adhocd_wal_bytes",
			"Current WAL file size.",
			func() float64 { return float64(fs.Stats().TotalBytes) })
		m.GaugeFunc("adhocd_wal_live_bytes",
			"Encoded size of the live record set (a fresh compaction's output).",
			func() float64 { return float64(fs.Stats().LiveBytes) })
	}
}

// perJob renders one sample per reachable non-terminal job. Terminal jobs
// are excluded on purpose: their series retire at the scrape after they
// finish, keeping the exposition's cardinality bounded.
func (s *Server) perJob(value func(adhocga.StreamStats) float64) []obs.LabeledValue {
	jobs := s.session.Jobs()
	out := make([]obs.LabeledValue, 0, len(jobs))
	for _, j := range jobs {
		if j.State().Terminal() {
			continue
		}
		out = append(out, obs.LabeledValue{Labels: []string{j.ID()}, Value: value(j.StreamStats())})
	}
	return out
}

// registerPprof mounts the standard pprof handlers on the server's own
// mux (explicitly, not via the DefaultServeMux side effect of importing
// net/http/pprof in a main package).
func (s *Server) registerPprof() {
	s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
}
