package service

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"adhocga"
	"adhocga/internal/jobstore"
)

// The persistence glue between live jobs and the jobstore: every
// submission writes a queued record before it is accepted, a watcher
// goroutine follows the job's event stream to keep the record's progress
// watermark fresh and to finalize it at the terminal transition, and
// Recover replays the store at startup — re-submitting unfinished records
// from their recorded (seed, spec) and leaving finished ones to serve
// status, results, and archived event replays without recompute.
//
// Durability contract: state transitions (queued on submit, the terminal
// record with results and digests) are fsynced by the file backend before
// Put returns; watermark-only progress updates are buffered appends. A
// crash can therefore lose at most some reported progress — never a job.
// A crash in the window after the live session reported done but before
// the terminal record landed leaves the record marked running, and
// recovery simply re-runs the job; determinism guarantees the second
// completion is bit-identical to the one the crash discarded.

// newRecord builds the durable identity of a fresh submission.
func newRecord(id string, sp resolvedSubmit) (jobstore.Record, error) {
	spec, err := json.Marshal(sp)
	if err != nil {
		return jobstore.Record{}, fmt.Errorf("encode spec: %w", err)
	}
	return jobstore.Record{
		ID:    id,
		Kind:  "scenarios",
		Spec:  spec,
		Seed:  sp.Seed,
		State: jobstore.StateQueued,
		// Event ordering is reproducible only when replicates run one at
		// a time; that is what makes the event log byte-comparable.
		Deterministic: sp.Parallelism == 1,
	}, nil
}

// specFromRecord reverses newRecord/newLeagueRecord: the stored document
// back into a runnable workload, dispatched by the record's Kind.
func specFromRecord(rec jobstore.Record) (adhocga.JobSpec, error) {
	if len(rec.Spec) == 0 {
		return nil, fmt.Errorf("record %s has no spec", rec.ID)
	}
	switch rec.Kind {
	case "league":
		var sp adhocga.LeagueJobSpec
		if err := json.Unmarshal(rec.Spec, &sp); err != nil {
			return nil, fmt.Errorf("record %s spec: %w", rec.ID, err)
		}
		return sp, nil
	default:
		var sp resolvedSubmit
		if err := json.Unmarshal(rec.Spec, &sp); err != nil {
			return nil, fmt.Errorf("record %s spec: %w", rec.ID, err)
		}
		return sp.jobSpec()
	}
}

// digest is the store's canonical content hash: hex SHA-256.
func digest(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// eventLogNDJSON renders events exactly as the NDJSON streaming endpoint
// does (json.Encoder, one line per event) — the byte format stored
// records, live streams, and verify replays all share.
func eventLogNDJSON(events []adhocga.Event) []byte {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, e := range events {
		if err := enc.Encode(e); err != nil {
			return nil
		}
	}
	return buf.Bytes()
}

// watch follows one live job and keeps its record current: the first
// event flips the record to running, every progressStride events refresh
// the watermark (buffered, cheap), and the terminal transition finalizes
// the record with results, digests, and — when eligible — the full event
// log. The returned channel (also registered in s.watchers) closes once
// the terminal record is in the store, which is how verify waits out the
// race between a job turning done and its record catching up.
func (s *Server) watch(rec jobstore.Record, j *adhocga.Job) {
	done := make(chan struct{})
	s.mu.Lock()
	s.watchers[rec.ID] = done
	s.mu.Unlock()
	go func() {
		defer close(done)
		const progressStride = 64
		sub := j.Subscribe(context.Background(), adhocga.SubscribeOptions{Policy: adhocga.BlockWithDeadline})
		for e := range sub.C {
			if e.Kind == adhocga.KindDone {
				continue
			}
			if rec.State == jobstore.StateQueued || e.Seq-rec.Watermark >= progressStride {
				rec.State = jobstore.StateRunning
				rec.Watermark = e.Seq
				if err := s.store.Put(rec); err != nil {
					s.opts.Logger.Warn("persist progress failed", "job", rec.ID, "error", err)
				}
			}
		}
		// The subscription closed: either the terminal event was
		// delivered or the watcher was evicted — wait out the job either
		// way so the final state is really final.
		_ = j.Wait(context.Background())
		if err := s.store.Put(s.finalizeRecord(rec, j)); err != nil {
			s.opts.Logger.Warn("persist terminal failed", "job", rec.ID, "error", err)
		} else {
			s.opts.Logger.Info("job record finalized", "job", rec.ID, "state", string(j.State()))
		}
		// The terminal record is in the store; retire the map entry so a
		// long-lived daemon's watcher map doesn't grow without bound. From
		// here watcherDone's nil return means "already finalized", exactly
		// as it does for recovered finished jobs.
		s.mu.Lock()
		delete(s.watchers, rec.ID)
		s.mu.Unlock()
	}()
}

// finalizeRecord fills in a terminal job's durable outcome: state, error,
// result summary + digest, event counts, and — for deterministic jobs
// whose complete history the hub still retained and that fit the store
// cap — the full NDJSON event log (plus its digest, kept even when the
// log itself is too large to embed).
func (s *Server) finalizeRecord(rec jobstore.Record, j *adhocga.Job) jobstore.Record {
	rec.State = string(j.State())
	if err := j.Err(); err != nil {
		rec.Error = err.Error()
	}
	rec.Events = j.EventCount()
	snap := j.Snapshot()
	if n := len(snap); n > 0 {
		rec.Watermark = snap[n-1].Seq
	}
	if j.State() != adhocga.JobDone {
		return rec
	}
	if table := leagueOf(j); table != nil {
		if result, err := json.Marshal(table); err == nil {
			rec.Result = result
			rec.ResultDigest = digest(result)
		}
		s.leagueMatches.Add(uint64(table.Matches))
	} else if results, err := json.Marshal(resultsOf(j)); err == nil {
		rec.Result = results
		rec.ResultDigest = digest(results)
	}
	fullHistory := len(snap) == rec.Events && (len(snap) == 0 || snap[0].Seq == 0)
	if rec.Deterministic && fullHistory {
		log := eventLogNDJSON(snap)
		rec.LogDigest = digest(log)
		if int64(len(log)) <= s.opts.MaxStoredLogBytes {
			rec.EventLog = log
		}
	}
	return rec
}

// watcherDone returns the persistence watcher's completion channel for a
// job, or nil when none is registered — recovered finished jobs, and jobs
// whose watcher already persisted the terminal record and retired itself.
func (s *Server) watcherDone(id string) <-chan struct{} {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.watchers[id]
}

// Recover replays the store into the running service. Call it once, after
// New and before serving traffic. Records in a terminal state stay
// store-only — status, results, and archived event replays are served
// from the record, nothing is recomputed. Unfinished records (queued or
// running when the previous process died) are re-submitted to the session
// under their original IDs from their recorded (seed, spec): by the
// determinism contract the re-run is bit-identical to the run the crash
// destroyed, so from the client's point of view the job simply finishes
// late. Returns (records loaded, jobs re-submitted).
func (s *Server) Recover(ctx context.Context) (recovered, resumed int, err error) {
	recs, err := s.store.List()
	if err != nil {
		return 0, 0, fmt.Errorf("service: recover: %w", err)
	}
	for _, rec := range recs {
		recovered++
		if jobstore.TerminalState(rec.State) {
			continue
		}
		spec, err := specFromRecord(rec)
		if err != nil {
			// The record is damaged beyond re-running (its spec no longer
			// parses). Mark it failed so it stops being resumed on every
			// restart, but keep it visible.
			rec.State = jobstore.StateFailed
			rec.Error = fmt.Sprintf("recovery: %v", err)
			if perr := s.store.Put(rec); perr != nil {
				s.opts.Logger.Warn("persist unrecoverable record failed", "job", rec.ID, "error", perr)
			}
			s.opts.Logger.Warn("record unrecoverable, marked failed", "job", rec.ID, "error", err)
			continue
		}
		j, err := s.session.SubmitNamed(context.WithoutCancel(ctx), rec.ID, spec)
		if err != nil {
			return recovered, resumed, fmt.Errorf("service: resume %s: %w", rec.ID, err)
		}
		// Present the resumption as a fresh queued run so the watcher's
		// first event re-persists a running state with a rewound
		// watermark — the re-run really does start over from event 0.
		rec.State = jobstore.StateQueued
		rec.Watermark = 0
		s.watch(rec, j)
		s.opts.Logger.Info("job resumed from store", "job", rec.ID, "seed", rec.Seed)
		resumed++
	}
	s.mu.Lock()
	s.recovered, s.resumed = recovered, resumed
	s.mu.Unlock()
	s.opts.Logger.Info("recovery complete", "recovered", recovered, "resumed", resumed)
	return recovered, resumed, nil
}
