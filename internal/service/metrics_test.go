package service

// Tests for the observability surface: the /metrics exposition across a
// full job lifecycle (submit → stream → terminal → verify → restart +
// recover), per-job series retirement, request counting, the WAL
// instrumentation, and the pprof opt-in.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"adhocga"
	"adhocga/internal/jobstore"
)

// scrapeMetrics pulls /metrics and parses every sample line into a
// series → value map keyed exactly as rendered ("name" or
// `name{label="v"}`). Malformed lines fail the test, so every scrape is
// also a format check.
func scrapeMetrics(t *testing.T, base string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type %q", ct)
	}
	_, body := doJSON(t, http.MethodGet, base+"/metrics", "")
	series := make(map[string]float64)
	for _, line := range strings.Split(strings.TrimSpace(string(body)), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed metrics line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("metrics line %q: %v", line, err)
		}
		series[line[:i]] = v
	}
	return series
}

// waitMetric polls until pred over a fresh scrape holds, or fails after
// ten seconds.
func waitMetric(t *testing.T, base, what string, pred func(map[string]float64) bool) map[string]float64 {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		m := scrapeMetrics(t, base)
		if pred(m) {
			return m
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s; last scrape: %v", what, m)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestMetricsLifecycle walks one daemon life end to end against a file
// store and asserts the exposition moves with it: submission and request
// counters, per-job series while a job is live (and their retirement once
// it turns terminal), stream/WAL/verify instrumentation after a finished
// deterministic job, watcher drain, and — after a simulated restart over
// the same directory — the recovery gauges of the second life.
func TestMetricsLifecycle(t *testing.T) {
	dir := t.TempDir()
	store, err := jobstore.OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	session := adhocga.NewSession()
	server := New(session, Options{Store: store})
	srv := httptest.NewServer(server)

	// Before any traffic: a valid, annotated exposition with zeroed
	// counters. (The scrape itself is the first request, so the request
	// counter is checked later, after it has something to say.)
	_, raw := doJSON(t, http.MethodGet, srv.URL+"/metrics", "")
	for _, want := range []string{
		"# HELP adhocd_jobs_submitted_total ",
		"# TYPE adhocd_jobs_submitted_total counter",
		"# TYPE adhocd_wal_fsync_seconds histogram",
		"# TYPE adhocd_pool_slots gauge",
	} {
		if !strings.Contains(string(raw), want) {
			t.Errorf("initial exposition missing %q", want)
		}
	}
	m := scrapeMetrics(t, srv.URL)
	if m["adhocd_jobs_submitted_total"] != 0 {
		t.Errorf("fresh daemon reports %v submitted jobs", m["adhocd_jobs_submitted_total"])
	}

	// A long-running job: while it is live its per-job series are
	// exposed and its persistence watcher is counted.
	code, body := doJSON(t, http.MethodPost, srv.URL+"/v1/jobs",
		fmt.Sprintf(`{"scenarios": %s, "parallelism": 1, "scale": "smoke"}`, longSpec))
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, body)
	}
	longID := jobIDOf(t, body)
	perJobKey := fmt.Sprintf("adhocd_job_events{job=%q}", longID)
	m = waitMetric(t, srv.URL, "live per-job series", func(m map[string]float64) bool {
		return m[perJobKey] > 0
	})
	if m["adhocd_persist_watchers"] != 1 {
		t.Errorf("one live job, %v watchers", m["adhocd_persist_watchers"])
	}
	if m["adhocd_jobs{state=\"running\"}"] != 1 {
		t.Errorf("running gauge %v, want 1", m["adhocd_jobs{state=\"running\"}"])
	}

	// Terminal jobs retire their series: cancel it and the per-job
	// samples must vanish from the next scrapes.
	if code, _ := doJSON(t, http.MethodDelete, srv.URL+"/v1/jobs/"+longID, ""); code != http.StatusAccepted {
		t.Fatalf("cancel: %d", code)
	}
	waitState(t, srv.URL, longID)
	m = scrapeMetrics(t, srv.URL)
	if _, ok := m[perJobKey]; ok {
		t.Errorf("per-job series %s survived the job turning terminal", perJobKey)
	}

	// A deterministic smoke job run to completion, streamed, and
	// verified: the whole pipeline shows up in the counters.
	info := submitSmoke(t, srv.URL, 1)
	waitState(t, srv.URL, info.ID)
	if code, _ := doJSON(t, http.MethodGet, srv.URL+info.EventsURL, ""); code != http.StatusOK {
		t.Fatalf("stream: %d", code)
	}
	waitRecord(t, store, info.ID)
	if code, report := verifyJob(t, srv.URL, info.ID); code != http.StatusOK || report.Verdict != "match" {
		t.Fatalf("verify: %d %+v", code, report)
	}

	m = waitMetric(t, srv.URL, "watcher drain", func(m map[string]float64) bool {
		return m["adhocd_persist_watchers"] == 0
	})
	checks := []struct {
		series string
		min    float64
	}{
		{"adhocd_jobs_submitted_total", 2},
		{"adhocd_http_requests_total{route=\"POST /v1/jobs\",code=\"202\"}", 2},
		{"adhocd_http_requests_total{route=\"GET /v1/jobs/{id}/events\",code=\"200\"}", 1},
		{"adhocd_stream_events_emitted_total", 1},
		{"adhocd_verify_total{verdict=\"match\"}", 1},
		{"adhocd_wal_appends_total", 2},
		{"adhocd_wal_fsyncs_total", 2},
		{"adhocd_wal_fsync_seconds_count", 2},
		{"adhocd_wal_bytes", 1},
		{"adhocd_store_records", 2},
		{"adhocd_jobs{state=\"done\"}", 1},
		{"adhocd_jobs{state=\"cancelled\"}", 1},
	}
	for _, c := range checks {
		if got, ok := m[c.series]; !ok || got < c.min {
			t.Errorf("%s = %v (present %v), want >= %v", c.series, got, ok, c.min)
		}
	}
	// The histogram's cumulative count must agree with its series count,
	// and the +Inf bucket with the total.
	if inf := m["adhocd_wal_fsync_seconds_bucket{le=\"+Inf\"}"]; inf != m["adhocd_wal_fsync_seconds_count"] {
		t.Errorf("+Inf bucket %v != count %v", inf, m["adhocd_wal_fsync_seconds_count"])
	}

	// /healthz vouches for the registry.
	code, body = doJSON(t, http.MethodGet, srv.URL+"/healthz", "")
	if code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	if !strings.Contains(string(body), `"metrics_ok": true`) {
		t.Errorf("healthz does not vouch for metrics: %s", body)
	}

	// Restart: same directory, fresh session/server/registry. The second
	// life's recovery pass is visible in its gauges.
	srv.Close()
	session.Close()
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	store2, err := jobstore.OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	session2 := adhocga.NewSession()
	server2 := New(session2, Options{Store: store2})
	if _, _, err := server2.Recover(context.Background()); err != nil {
		t.Fatal(err)
	}
	srv2 := httptest.NewServer(server2)
	t.Cleanup(func() {
		srv2.Close()
		session2.Close()
		store2.Close()
	})
	m = scrapeMetrics(t, srv2.URL)
	if m["adhocd_recovered_jobs"] != 2 {
		t.Errorf("recovered_jobs %v, want 2", m["adhocd_recovered_jobs"])
	}
	if m["adhocd_resumed_jobs"] != 0 {
		t.Errorf("resumed_jobs %v, want 0 (both records terminal)", m["adhocd_resumed_jobs"])
	}
	if m["adhocd_store_records"] != 2 {
		t.Errorf("store_records %v, want 2 after restart", m["adhocd_store_records"])
	}
}

// jobIDOf decodes a submission response's job ID.
func jobIDOf(t *testing.T, body []byte) string {
	t.Helper()
	var info JobInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatalf("job info %s: %v", body, err)
	}
	return info.ID
}

// TestPprofOptIn: the profiling endpoints exist only behind EnablePprof.
func TestPprofOptIn(t *testing.T) {
	srv, _ := newTestServer(t)
	if code, _ := doJSON(t, http.MethodGet, srv.URL+"/debug/pprof/", ""); code != http.StatusNotFound {
		t.Errorf("pprof mounted without opt-in: %d", code)
	}

	session := adhocga.NewSession()
	t.Cleanup(session.Close)
	srv2 := httptest.NewServer(New(session, Options{EnablePprof: true}))
	t.Cleanup(srv2.Close)
	code, body := doJSON(t, http.MethodGet, srv2.URL+"/debug/pprof/", "")
	if code != http.StatusOK {
		t.Fatalf("pprof index with opt-in: %d", code)
	}
	if !strings.Contains(string(body), "goroutine") {
		t.Errorf("pprof index unrecognizable: %.120s", body)
	}
}
