package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"adhocga"
	"adhocga/internal/jobstore"
)

// newDurableServer builds a server over an explicit store so tests can
// inspect — and tamper with — the records behind the API.
func newDurableServer(t *testing.T, store jobstore.Store, opts Options, sessOpts ...adhocga.SessionOption) (*httptest.Server, *Server) {
	t.Helper()
	session := adhocga.NewSession(sessOpts...)
	opts.Store = store
	s := New(session, opts)
	srv := httptest.NewServer(s)
	t.Cleanup(func() {
		srv.Close()
		session.Close()
	})
	return srv, s
}

// waitRecord polls the store until the record reaches a terminal state —
// i.e. until the persistence watcher has caught up with the finished job.
func waitRecord(t *testing.T, store jobstore.Store, id string) jobstore.Record {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		rec, ok, err := store.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if ok && jobstore.TerminalState(rec.State) {
			return rec
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("record %s never reached a terminal state", id)
	return jobstore.Record{}
}

func submitSmoke(t *testing.T, base string, parallelism int) JobInfo {
	t.Helper()
	body := fmt.Sprintf(`{"scenarios": %s, "scale": "smoke", "parallelism": %d}`, smokeSpec, parallelism)
	code, resp := doJSON(t, http.MethodPost, base+"/v1/jobs", body)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, resp)
	}
	var info JobInfo
	if err := json.Unmarshal(resp, &info); err != nil {
		t.Fatal(err)
	}
	return info
}

func verifyJob(t *testing.T, base, id string) (int, VerifyReport) {
	t.Helper()
	code, body := doJSON(t, http.MethodPost, base+"/v1/jobs/"+id+"/verify", "")
	var rep VerifyReport
	if code == http.StatusOK {
		if err := json.Unmarshal(body, &rep); err != nil {
			t.Fatalf("verify response: %v\n%s", err, body)
		}
	}
	return code, rep
}

// firstDiff is the test's own divergence finder, independent of the
// implementation's compareLogs.
func firstDiff(a, b []byte) int {
	n := min(len(a), len(b))
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	if len(a) != len(b) {
		return n
	}
	return -1
}

// TestVerifyMatchByteCompare closes the durability loop on the happy path:
// a finished deterministic job's record carries the full NDJSON event log
// (byte-identical to what the streaming endpoint served), and verify
// replays the job and confirms both the result digest and every byte of
// the log.
func TestVerifyMatchByteCompare(t *testing.T) {
	store := jobstore.NewMem()
	srv, _ := newDurableServer(t, store, Options{})
	info := submitSmoke(t, srv.URL, 1)
	waitState(t, srv.URL, info.ID)
	rec := waitRecord(t, store, info.ID)
	if rec.State != jobstore.StateDone || !rec.Deterministic {
		t.Fatalf("record %+v", rec)
	}
	if len(rec.EventLog) == 0 || rec.ResultDigest == "" || rec.LogDigest == "" || rec.Events == 0 {
		t.Fatalf("finished record missing artifacts: log=%dB events=%d resultDigest=%q logDigest=%q",
			len(rec.EventLog), rec.Events, rec.ResultDigest, rec.LogDigest)
	}

	code, stream := doJSON(t, http.MethodGet, srv.URL+info.EventsURL, "")
	if code != http.StatusOK || !bytes.Equal(stream, rec.EventLog) {
		t.Fatalf("stored log deviates from the streamed one (%d; %d vs %d bytes)", code, len(stream), len(rec.EventLog))
	}

	code, rep := verifyJob(t, srv.URL, info.ID)
	if code != http.StatusOK {
		t.Fatalf("verify: %d", code)
	}
	if rep.Verdict != "match" || rep.Mode != "byte-compare" || !rep.ResultMatch {
		t.Fatalf("report %+v", rep)
	}
	if rep.EventLog == nil || !rep.EventLog.Match || rep.EventLog.DivergenceOffset != -1 ||
		rep.EventLog.StoredBytes != len(rec.EventLog) || rep.EventLog.ReplayedBytes != len(rec.EventLog) {
		t.Fatalf("log report %+v", rep.EventLog)
	}
}

// TestVerifyDetectsTampering flips single bytes in the stored artifacts —
// the result digest, the event log, the spec itself — and demands verify
// call each one out, with the divergence offset pointing at the right
// byte.
func TestVerifyDetectsTampering(t *testing.T) {
	store := jobstore.NewMem()
	srv, _ := newDurableServer(t, store, Options{})
	info := submitSmoke(t, srv.URL, 1)
	waitState(t, srv.URL, info.ID)
	pristine := waitRecord(t, store, info.ID)
	restore := func() {
		if err := store.Put(pristine); err != nil {
			t.Fatal(err)
		}
	}

	t.Run("result digest", func(t *testing.T) {
		defer restore()
		rec := pristine
		flipped := []byte(rec.ResultDigest)
		if flipped[0] == 'a' {
			flipped[0] = 'b'
		} else {
			flipped[0] = 'a'
		}
		rec.ResultDigest = string(flipped)
		if err := store.Put(rec); err != nil {
			t.Fatal(err)
		}
		code, rep := verifyJob(t, srv.URL, info.ID)
		if code != http.StatusOK {
			t.Fatalf("verify: %d", code)
		}
		if rep.Verdict != "mismatch" || rep.ResultMatch {
			t.Fatalf("tampered result digest not caught: %+v", rep)
		}
		// The log itself was untouched, so the log comparison still holds —
		// the verdict isolates what was tampered.
		if rep.EventLog == nil || !rep.EventLog.Match {
			t.Fatalf("log report %+v", rep.EventLog)
		}
	})

	t.Run("event log byte", func(t *testing.T) {
		defer restore()
		rec := pristine
		rec.EventLog = append([]byte(nil), pristine.EventLog...)
		const off = 17
		rec.EventLog[off] ^= 0x01
		if err := store.Put(rec); err != nil {
			t.Fatal(err)
		}
		code, rep := verifyJob(t, srv.URL, info.ID)
		if code != http.StatusOK {
			t.Fatalf("verify: %d", code)
		}
		if rep.Verdict != "mismatch" || !rep.ResultMatch {
			t.Fatalf("report %+v", rep)
		}
		if rep.EventLog == nil || rep.EventLog.Match || rep.EventLog.DivergenceOffset != off {
			t.Fatalf("divergence offset: %+v, want %d", rep.EventLog, off)
		}
		if rep.EventLog.StoredAt == "" || rep.EventLog.ReplayedAt == "" || rep.EventLog.StoredAt == rep.EventLog.ReplayedAt {
			t.Fatalf("divergence snippets %q / %q", rep.EventLog.StoredAt, rep.EventLog.ReplayedAt)
		}
	})

	t.Run("spec byte", func(t *testing.T) {
		defer restore()
		rec := pristine
		// Change the scenario seed inside the stored spec document: the
		// replay now runs a genuinely different experiment against the
		// original job's log.
		tampered := strings.Replace(string(pristine.Spec), `"seed":42`, `"seed":43`, 1)
		if tampered == string(pristine.Spec) {
			t.Fatalf("seed not found in stored spec: %s", pristine.Spec)
		}
		rec.Spec = json.RawMessage(tampered)
		if err := store.Put(rec); err != nil {
			t.Fatal(err)
		}

		// Compute the expected divergence point independently: replay the
		// tampered spec in our own session and diff against the pristine log.
		spec, err := specFromRecord(rec)
		if err != nil {
			t.Fatal(err)
		}
		sess := adhocga.NewSession()
		defer sess.Close()
		j, err := sess.SubmitNamed(context.Background(), rec.ID, spec)
		if err != nil {
			t.Fatal(err)
		}
		var events []adhocga.Event
		for e := range j.Events() {
			events = append(events, e)
		}
		want := firstDiff(pristine.EventLog, eventLogNDJSON(events))
		if want < 0 {
			t.Fatal("seed change did not alter the event log — tamper test is vacuous")
		}

		code, rep := verifyJob(t, srv.URL, info.ID)
		if code != http.StatusOK {
			t.Fatalf("verify: %d", code)
		}
		if rep.Verdict != "mismatch" || rep.EventLog == nil || rep.EventLog.Match {
			t.Fatalf("tampered spec not caught: %+v", rep)
		}
		if rep.EventLog.DivergenceOffset != want {
			t.Fatalf("divergence offset %d, want %d", rep.EventLog.DivergenceOffset, want)
		}
	})
}

// TestVerifyDigestModes covers the jobs that can't byte-compare: parallel
// submissions (event order is not reproducible, only results are) and jobs
// whose event log outgrew the store cap (digest kept, bytes dropped). Both
// still get a real verify verdict.
func TestVerifyDigestModes(t *testing.T) {
	t.Run("parallel job verifies by result digest", func(t *testing.T) {
		store := jobstore.NewMem()
		srv, _ := newDurableServer(t, store, Options{})
		info := submitSmoke(t, srv.URL, 2)
		waitState(t, srv.URL, info.ID)
		rec := waitRecord(t, store, info.ID)
		if rec.Deterministic || len(rec.EventLog) != 0 || rec.LogDigest != "" {
			t.Fatalf("parallel record should carry no event log: %+v", rec)
		}
		code, rep := verifyJob(t, srv.URL, info.ID)
		if code != http.StatusOK {
			t.Fatalf("verify: %d", code)
		}
		if rep.Verdict != "match" || rep.Mode != "digest" || !rep.ResultMatch || rep.EventLog != nil {
			t.Fatalf("report %+v", rep)
		}
	})

	t.Run("oversized log verifies by log digest", func(t *testing.T) {
		store := jobstore.NewMem()
		srv, _ := newDurableServer(t, store, Options{MaxStoredLogBytes: 1})
		info := submitSmoke(t, srv.URL, 1)
		waitState(t, srv.URL, info.ID)
		rec := waitRecord(t, store, info.ID)
		if len(rec.EventLog) != 0 || rec.LogDigest == "" {
			t.Fatalf("capped record should keep digest only: log=%dB digest=%q", len(rec.EventLog), rec.LogDigest)
		}
		// In a later process the job is store-only and its archived replay
		// was never kept: the events endpoint says so and points at verify.
		srv2, _ := newDurableServer(t, store, Options{MaxStoredLogBytes: 1})
		code, body := doJSON(t, http.MethodGet, srv2.URL+info.EventsURL, "")
		if code != http.StatusGone || !strings.Contains(string(body), "verify") {
			t.Fatalf("events for dropped log: %d %s", code, body)
		}
		code, rep := verifyJob(t, srv2.URL, info.ID)
		if code != http.StatusOK {
			t.Fatalf("verify: %d", code)
		}
		if rep.Verdict != "match" || rep.Mode != "byte-compare" {
			t.Fatalf("report %+v", rep)
		}
		if rep.EventLog == nil || !rep.EventLog.Match || rep.EventLog.StoredBytes != -1 || rep.EventLog.ReplayedBytes == 0 {
			t.Fatalf("log report %+v", rep.EventLog)
		}
	})
}

// TestVerifyRequiresDoneJob pins the endpoint's refusals: unknown jobs are
// 404, jobs that did not finish successfully are 409.
func TestVerifyRequiresDoneJob(t *testing.T) {
	store := jobstore.NewMem()
	srv, _ := newDurableServer(t, store, Options{}, adhocga.WithPoolSize(1))

	if code, _ := verifyJob(t, srv.URL, "job-99"); code != http.StatusNotFound {
		t.Fatalf("missing job verify: %d", code)
	}

	code, body := doJSON(t, http.MethodPost, srv.URL+"/v1/jobs",
		fmt.Sprintf(`{"scenarios": %s, "scale": "smoke", "parallelism": 1}`, longSpec))
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, body)
	}
	var info JobInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if code, _ := verifyJob(t, srv.URL, info.ID); code != http.StatusConflict {
		t.Fatalf("running job verify: %d", code)
	}
	if code, _ := doJSON(t, http.MethodDelete, srv.URL+"/v1/jobs/"+info.ID, ""); code != http.StatusAccepted {
		t.Fatalf("cancel: %d", code)
	}
	waitState(t, srv.URL, info.ID)
	waitRecord(t, store, info.ID)
	if code, _ := verifyJob(t, srv.URL, info.ID); code != http.StatusConflict {
		t.Fatalf("cancelled job verify: %d", code)
	}
}

// TestRecoverAcrossRestart is the in-process restart drill (the SIGKILL
// version lives in cmd/adhocd): a file-backed service finishes one job and
// leaves one unfinished, the process "dies", and a second service over the
// same directory must (a) serve the finished job's status, results, and
// archived byte-exact replay without recompute, (b) re-run the unfinished
// job to the same result digest, (c) keep allocating IDs after the
// persisted ones, and (d) report all of it on /healthz.
func TestRecoverAcrossRestart(t *testing.T) {
	dir := t.TempDir()

	// First life: run one job to completion.
	store1, err := jobstore.OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	sess1 := adhocga.NewSession()
	srv1 := httptest.NewServer(New(sess1, Options{Store: store1}))
	info := submitSmoke(t, srv1.URL, 1)
	waitState(t, srv1.URL, info.ID)
	done := waitRecord(t, store1, info.ID)
	srv1.Close()
	sess1.Close()
	if err := store1.Close(); err != nil {
		t.Fatal(err)
	}

	// Plant an unfinished record, as a crash mid-job would leave behind:
	// same spec, caught at state running with some progress reported.
	store2, err := jobstore.OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	unfinished := done
	unfinished.ID = "job-2"
	unfinished.State = jobstore.StateRunning
	unfinished.Watermark = 3
	unfinished.Events = 0
	unfinished.Result = nil
	unfinished.ResultDigest = ""
	unfinished.EventLog = nil
	unfinished.LogDigest = ""
	if err := store2.Put(unfinished); err != nil {
		t.Fatal(err)
	}

	// Second life: recover, then serve.
	sess2 := adhocga.NewSession()
	s2 := New(sess2, Options{Store: store2, Version: "test-build"})
	recovered, resumed, err := s2.Recover(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if recovered != 2 || resumed != 1 {
		t.Fatalf("recovered %d resumed %d, want 2/1", recovered, resumed)
	}
	srv2 := httptest.NewServer(s2)
	t.Cleanup(func() {
		srv2.Close()
		sess2.Close()
		store2.Close()
	})

	code, body := doJSON(t, http.MethodGet, srv2.URL+"/healthz", "")
	if code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	var health map[string]any
	if err := json.Unmarshal(body, &health); err != nil {
		t.Fatal(err)
	}
	if health["status"] != "ok" || health["version"] != "test-build" || health["store"] != "file" ||
		health["recovered_jobs"] != float64(2) || health["resumed_jobs"] != float64(1) {
		t.Fatalf("healthz %s", body)
	}

	// (a) The finished job is served from its record — state, results, and
	// the byte-exact archived replay — with no live session handle behind it.
	statusInfo := waitState(t, srv2.URL, done.ID)
	if statusInfo.State != jobstore.StateDone || len(statusInfo.Results) != 1 {
		t.Fatalf("recovered status %+v", statusInfo)
	}
	code, stream := doJSON(t, http.MethodGet, srv2.URL+"/v1/jobs/"+done.ID+"/events", "")
	if code != http.StatusOK || !bytes.Equal(stream, done.EventLog) {
		t.Fatalf("archived replay: %d, %d vs %d bytes", code, len(stream), len(done.EventLog))
	}
	if _, live := sess2.Job(done.ID); live {
		t.Fatal("finished job was re-submitted instead of served from the store")
	}

	// (b) The resumed job re-runs to completion; determinism makes its
	// result digest identical to the first life's run of the same spec.
	waitState(t, srv2.URL, unfinished.ID)
	rec2 := waitRecord(t, store2, unfinished.ID)
	if rec2.State != jobstore.StateDone {
		t.Fatalf("resumed job ended %q (%s)", rec2.State, rec2.Error)
	}
	if rec2.ResultDigest != done.ResultDigest {
		t.Fatalf("resumed result digest %s deviates from the original %s", rec2.ResultDigest, done.ResultDigest)
	}

	// Both generations of job verify clean in the second process.
	for _, id := range []string{done.ID, unfinished.ID} {
		code, rep := verifyJob(t, srv2.URL, id)
		if code != http.StatusOK || rep.Verdict != "match" {
			t.Fatalf("verify %s after restart: %d %+v", id, code, rep)
		}
	}

	// (c) Fresh submissions continue the persisted ID sequence.
	if next := submitSmoke(t, srv2.URL, 1); next.ID != "job-3" {
		t.Fatalf("post-restart id %q, want job-3", next.ID)
	}

	// (d) The list is the store's full history, in submission order.
	code, body = doJSON(t, http.MethodGet, srv2.URL+"/v1/jobs", "")
	if code != http.StatusOK {
		t.Fatalf("list: %d", code)
	}
	var list struct {
		Jobs []JobInfo `json:"jobs"`
	}
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 3 || list.Jobs[0].ID != "job-1" || list.Jobs[1].ID != "job-2" || list.Jobs[2].ID != "job-3" {
		t.Fatalf("list %+v", list.Jobs)
	}
}

// failingStore errors on writes — the backend going bad under the service.
type failingStore struct{ jobstore.Store }

func (f failingStore) Put(jobstore.Record) error {
	return fmt.Errorf("disk on fire")
}

// TestSubmitStoreFailures pins the durability-before-acceptance contract:
// a submission the store cannot persist is refused (no unrecoverable job
// ever runs), and one the session refuses leaves a failed record behind.
func TestSubmitStoreFailures(t *testing.T) {
	t.Run("store write failure refuses the job", func(t *testing.T) {
		srv, _ := newDurableServer(t, failingStore{jobstore.NewMem()}, Options{})
		code, body := doJSON(t, http.MethodPost, srv.URL+"/v1/jobs",
			fmt.Sprintf(`{"scenarios": %s, "scale": "smoke"}`, smokeSpec))
		if code != http.StatusInternalServerError || !strings.Contains(string(body), "persist") {
			t.Fatalf("submit with broken store: %d %s", code, body)
		}
	})

	t.Run("session refusal marks the record failed", func(t *testing.T) {
		store := jobstore.NewMem()
		session := adhocga.NewSession()
		srv := httptest.NewServer(New(session, Options{Store: store}))
		t.Cleanup(srv.Close)
		session.Close() // submissions now fail at the session
		code, _ := doJSON(t, http.MethodPost, srv.URL+"/v1/jobs",
			fmt.Sprintf(`{"scenarios": %s, "scale": "smoke"}`, smokeSpec))
		if code != http.StatusServiceUnavailable {
			t.Fatalf("submit on closed session: %d", code)
		}
		rec, ok, err := store.Get("job-1")
		if err != nil || !ok || rec.State != jobstore.StateFailed || rec.Error == "" {
			t.Fatalf("refused submission record: %+v (%v %v)", rec, ok, err)
		}
	})

	t.Run("oversized body", func(t *testing.T) {
		srv, _ := newDurableServer(t, jobstore.NewMem(), Options{MaxBodyBytes: 16})
		code, _ := doJSON(t, http.MethodPost, srv.URL+"/v1/jobs",
			fmt.Sprintf(`{"scenarios": %s}`, smokeSpec))
		if code != http.StatusRequestEntityTooLarge {
			t.Fatalf("oversized submit: %d", code)
		}
	})
}

// TestVerifyEdgeCases walks the endpoint's remaining branches: waiting out
// a record that lags its finished job, a truncated stored log, and a
// record whose spec no longer parses.
func TestVerifyEdgeCases(t *testing.T) {
	store := jobstore.NewMem()
	srv, s := newDurableServer(t, store, Options{})
	info := submitSmoke(t, srv.URL, 1)
	waitState(t, srv.URL, info.ID)
	pristine := waitRecord(t, store, info.ID)
	restore := func() {
		if err := store.Put(pristine); err != nil {
			t.Fatal(err)
		}
	}

	t.Run("watcher retires once the terminal record persists", func(t *testing.T) {
		// The terminal record is already in the store (waitRecord above).
		// The watcher's channel — if its retirement hasn't won the race yet
		// — must close promptly, and then the map entry must be deleted so
		// a long-lived daemon's watcher map doesn't grow without bound;
		// from there watcherDone's nil means "already finalized".
		if done := s.watcherDone(info.ID); done != nil {
			select {
			case <-done:
			case <-time.After(10 * time.Second):
				t.Fatal("watcher channel never closed after the record went terminal")
			}
		}
		deadline := time.Now().Add(10 * time.Second)
		for s.watcherDone(info.ID) != nil {
			if time.Now().After(deadline) {
				t.Fatal("watcher map entry never retired after finalization")
			}
			time.Sleep(time.Millisecond)
		}
	})

	t.Run("stale running record waits then refuses", func(t *testing.T) {
		defer restore()
		// Regress the record to running while the live job is long done and
		// the watcher has finished: verify must take the wait branch, re-read,
		// and refuse the still-non-done record instead of replaying garbage.
		rec := pristine
		rec.State = jobstore.StateRunning
		if err := store.Put(rec); err != nil {
			t.Fatal(err)
		}
		if code, _ := verifyJob(t, srv.URL, info.ID); code != http.StatusConflict {
			t.Fatalf("stale running record verify: %d", code)
		}
	})

	t.Run("truncated stored log diverges at its end", func(t *testing.T) {
		defer restore()
		rec := pristine
		cut := len(pristine.EventLog) / 2
		rec.EventLog = append([]byte(nil), pristine.EventLog[:cut]...)
		if err := store.Put(rec); err != nil {
			t.Fatal(err)
		}
		code, rep := verifyJob(t, srv.URL, info.ID)
		if code != http.StatusOK {
			t.Fatalf("verify: %d", code)
		}
		if rep.Verdict != "mismatch" || rep.EventLog == nil || rep.EventLog.DivergenceOffset != cut {
			t.Fatalf("truncated log report %+v", rep.EventLog)
		}
		if rep.EventLog.StoredAt != "" || rep.EventLog.ReplayedAt == "" {
			t.Fatalf("snippets %q / %q — stored side ends at the divergence", rep.EventLog.StoredAt, rep.EventLog.ReplayedAt)
		}
	})

	t.Run("unparseable spec is a server error", func(t *testing.T) {
		defer restore()
		rec := pristine
		rec.Spec = json.RawMessage(`{"scenarios": 7}`)
		if err := store.Put(rec); err != nil {
			t.Fatal(err)
		}
		if code, _ := verifyJob(t, srv.URL, info.ID); code != http.StatusInternalServerError {
			t.Fatalf("corrupt spec verify: %d", code)
		}
	})
}

// TestRecoverMarksUnrunnableRecordsFailed: an unfinished record whose spec
// cannot be parsed anymore is marked failed (and stays visible) instead of
// crash-looping the recovery pass.
func TestRecoverMarksUnrunnableRecordsFailed(t *testing.T) {
	store := jobstore.NewMem()
	if err := store.Put(jobstore.Record{ID: "job-1", Kind: "scenarios", State: jobstore.StateRunning}); err != nil {
		t.Fatal(err)
	}
	session := adhocga.NewSession()
	t.Cleanup(session.Close)
	s := New(session, Options{Store: store})
	recovered, resumed, err := s.Recover(context.Background())
	if err != nil || recovered != 1 || resumed != 0 {
		t.Fatalf("recover: %d/%d %v", recovered, resumed, err)
	}
	rec, _, _ := store.Get("job-1")
	if rec.State != jobstore.StateFailed || !strings.Contains(rec.Error, "recovery") {
		t.Fatalf("unrunnable record %+v", rec)
	}
}

// TestHealthzDefaults pins the health document for an out-of-the-box
// server: dev build, memory store, nothing recovered.
func TestHealthzDefaults(t *testing.T) {
	srv, _ := newTestServer(t)
	code, body := doJSON(t, http.MethodGet, srv.URL+"/healthz", "")
	if code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	var health map[string]any
	if err := json.Unmarshal(body, &health); err != nil {
		t.Fatal(err)
	}
	if health["status"] != "ok" || health["version"] != "dev" || health["store"] != "mem" ||
		health["recovered_jobs"] != float64(0) || health["resumed_jobs"] != float64(0) {
		t.Fatalf("healthz %s", body)
	}
}
