package service

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"adhocga"
)

var update = flag.Bool("update", false, "rewrite golden files")

// smokeSpec is the fixed-seed scenario behind the golden stream: small
// enough for milliseconds, deterministic because the seed is pinned and
// the submission runs at parallelism 1.
const smokeSpec = `{
  "name": "svc-smoke",
  "environments": [{"csn": 0}],
  "population": 20,
  "tournament_size": 10,
  "generations": 2,
  "rounds": 10,
  "repetitions": 2,
  "seed": 42
}`

// longSpec runs effectively forever (at test scale) so cancellation tests
// have something to kill.
const longSpec = `{
  "name": "svc-long",
  "environments": [{"csn": 0}],
  "population": 20,
  "tournament_size": 10,
  "generations": 500000,
  "rounds": 10,
  "repetitions": 1,
  "seed": 7
}`

// newTestServer builds a fresh session (deterministic job IDs) and an
// httptest server over it.
func newTestServer(t *testing.T, opts ...adhocga.SessionOption) (*httptest.Server, *adhocga.Session) {
	t.Helper()
	session := adhocga.NewSession(opts...)
	srv := httptest.NewServer(New(session, Options{}))
	t.Cleanup(func() {
		srv.Close()
		session.Close()
	})
	return srv, session
}

func doJSON(t *testing.T, method, url, body string) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

// waitState polls a job's status endpoint until it reaches a terminal
// state (or the deadline trips).
func waitState(t *testing.T, base, id string) JobInfo {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		code, body := doJSON(t, http.MethodGet, base+"/v1/jobs/"+id, "")
		if code != http.StatusOK {
			t.Fatalf("status %d: %s", code, body)
		}
		var info JobInfo
		if err := json.Unmarshal(body, &info); err != nil {
			t.Fatal(err)
		}
		if adhocga.JobState(info.State).Terminal() {
			return info
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("job never reached a terminal state")
	return JobInfo{}
}

// TestServiceEndToEndGolden drives adhocd's whole submit → status → stream
// path over HTTP and byte-compares the NDJSON event stream against the
// checked-in golden: at a fixed seed and parallelism 1 the stream is a
// deterministic artifact, timestamps and all other nondeterminism having
// been deliberately kept out of the event model.
func TestServiceEndToEndGolden(t *testing.T) {
	srv, _ := newTestServer(t)

	submit := fmt.Sprintf(`{"scenarios": %s, "scale": "smoke", "parallelism": 1}`, smokeSpec)
	code, body := doJSON(t, http.MethodPost, srv.URL+"/v1/jobs", submit)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, body)
	}
	var info JobInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.ID != "job-1" || info.Kind != "scenarios" {
		t.Fatalf("handle %+v", info)
	}

	final := waitState(t, srv.URL, info.ID)
	if final.State != string(adhocga.JobDone) {
		t.Fatalf("terminal state %q (error %q)", final.State, final.Error)
	}
	if len(final.Results) != 1 || final.Results[0].Name != "svc-smoke" {
		t.Fatalf("results %+v", final.Results)
	}
	if final.Results[0].FinalCoopMean <= 0 {
		t.Errorf("final cooperation %v not positive", final.Results[0].FinalCoopMean)
	}

	code, stream := doJSON(t, http.MethodGet, srv.URL+info.EventsURL, "")
	if code != http.StatusOK {
		t.Fatalf("events: %d", code)
	}

	goldenPath := filepath.Join("testdata", "events.ndjson.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, stream, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if string(stream) != string(want) {
		t.Errorf("NDJSON stream deviates from golden:\n--- got\n%s--- want\n%s", stream, want)
	}

	// Sanity on the stream shape: 2 reps × 2 gens + 2 replicate + done.
	lines := strings.Split(strings.TrimSpace(string(stream)), "\n")
	if len(lines) != 7 {
		t.Errorf("stream has %d events, want 7", len(lines))
	}
	var last adhocga.Event
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatal(err)
	}
	if last.Kind != adhocga.KindDone || last.Done.State != adhocga.JobDone {
		t.Errorf("stream not terminated by done event: %+v", last)
	}
}

// TestServiceCancelFreesJobSlot proves over HTTP that a killed job frees
// its session job slot: with a 1-job bound, a queued submission only ever
// runs because DELETE cancelled the hog.
func TestServiceCancelFreesJobSlot(t *testing.T) {
	srv, _ := newTestServer(t, adhocga.WithMaxConcurrentJobs(1), adhocga.WithPoolSize(1))

	code, body := doJSON(t, http.MethodPost, srv.URL+"/v1/jobs",
		fmt.Sprintf(`{"scenarios": %s, "scale": "smoke", "parallelism": 1}`, longSpec))
	if code != http.StatusAccepted {
		t.Fatalf("submit long: %d %s", code, body)
	}
	var long JobInfo
	if err := json.Unmarshal(body, &long); err != nil {
		t.Fatal(err)
	}

	code, body = doJSON(t, http.MethodPost, srv.URL+"/v1/jobs",
		fmt.Sprintf(`{"scenarios": %s, "scale": "smoke", "parallelism": 1}`, smokeSpec))
	if code != http.StatusAccepted {
		t.Fatalf("submit queued: %d %s", code, body)
	}
	var queued JobInfo
	if err := json.Unmarshal(body, &queued); err != nil {
		t.Fatal(err)
	}
	if queued.State != string(adhocga.JobQueued) {
		t.Fatalf("second job state %q, want queued behind the slot", queued.State)
	}

	code, body = doJSON(t, http.MethodDelete, srv.URL+"/v1/jobs/"+long.ID, "")
	if code != http.StatusAccepted {
		t.Fatalf("cancel: %d %s", code, body)
	}
	if final := waitState(t, srv.URL, long.ID); final.State != string(adhocga.JobCancelled) {
		t.Fatalf("long job state %q, want cancelled", final.State)
	}
	if final := waitState(t, srv.URL, queued.ID); final.State != string(adhocga.JobDone) {
		t.Fatalf("queued job state %q — the freed slot never reached it", final.State)
	}
}

func TestServiceSSEFraming(t *testing.T) {
	srv, _ := newTestServer(t)
	code, body := doJSON(t, http.MethodPost, srv.URL+"/v1/jobs",
		fmt.Sprintf(`{"scenarios": %s, "parallelism": 1, "scale": "smoke"}`, smokeSpec))
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, body)
	}
	var info JobInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	waitState(t, srv.URL, info.ID)

	req, _ := http.NewRequest(http.MethodGet, srv.URL+info.EventsURL, nil)
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("content type %q", ct)
	}
	streamBytes, _ := io.ReadAll(resp.Body)
	stream := string(streamBytes)
	if !strings.HasPrefix(stream, "id: 0\ndata: ") || !strings.Contains(stream, "\n\n") {
		t.Errorf("stream not SSE-framed with event ids:\n%s", stream)
	}
	// Every frame carries its sequence number as the SSE event id, which
	// is what makes Last-Event-ID resumption work.
	for i, frame := range strings.Split(strings.TrimSuffix(stream, "\n\n"), "\n\n") {
		if !strings.HasPrefix(frame, fmt.Sprintf("id: %d\ndata: ", i)) {
			t.Errorf("frame %d misframed:\n%s", i, frame)
		}
	}
}

func TestServiceListAndHealth(t *testing.T) {
	srv, _ := newTestServer(t)
	code, body := doJSON(t, http.MethodGet, srv.URL+"/healthz", "")
	if code != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Fatalf("healthz: %d %s", code, body)
	}
	code, body = doJSON(t, http.MethodPost, srv.URL+"/v1/jobs",
		fmt.Sprintf(`{"scenarios": %s, "parallelism": 1, "scale": "smoke"}`, smokeSpec))
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, body)
	}
	var info JobInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	waitState(t, srv.URL, info.ID)
	code, body = doJSON(t, http.MethodGet, srv.URL+"/v1/jobs", "")
	if code != http.StatusOK {
		t.Fatalf("list: %d", code)
	}
	var list struct {
		Jobs []JobInfo `json:"jobs"`
	}
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 1 || list.Jobs[0].ID != info.ID {
		t.Errorf("list %+v", list)
	}
}

func TestServiceBadRequests(t *testing.T) {
	srv, _ := newTestServer(t)
	cases := []struct {
		name, body string
		wantCode   int
		wantFrag   string
	}{
		{"empty body", "", http.StatusBadRequest, "empty body"},
		{"invalid JSON", "{", http.StatusBadRequest, "body"},
		{"empty scenarios", `{"scenarios": []}`, http.StatusBadRequest, "scenario"},
		{"nameless spec", `{"environments":[{"csn":0}]}`, http.StatusBadRequest, "no name"},
		{"bad scale", fmt.Sprintf(`{"scenarios": %s, "scale": "galactic"}`, smokeSpec), http.StatusBadRequest, "unknown scale"},
		{"negative csn", `{"name":"x","environments":[{"csn":-2}]}`, http.StatusBadRequest, "negative CSN"},
	}
	for _, tc := range cases {
		code, body := doJSON(t, http.MethodPost, srv.URL+"/v1/jobs", tc.body)
		if code != tc.wantCode {
			t.Errorf("%s: code %d want %d (%s)", tc.name, code, tc.wantCode, body)
			continue
		}
		if !strings.Contains(string(body), tc.wantFrag) {
			t.Errorf("%s: body %s missing %q", tc.name, body, tc.wantFrag)
		}
	}

	if code, _ := doJSON(t, http.MethodGet, srv.URL+"/v1/jobs/job-99", ""); code != http.StatusNotFound {
		t.Errorf("missing job status: %d", code)
	}
	if code, _ := doJSON(t, http.MethodGet, srv.URL+"/v1/jobs/job-99/events", ""); code != http.StatusNotFound {
		t.Errorf("missing job events: %d", code)
	}
	if code, _ := doJSON(t, http.MethodDelete, srv.URL+"/v1/jobs/job-99", ""); code != http.StatusNotFound {
		t.Errorf("missing job cancel: %d", code)
	}
}

func TestParseSubmitShapes(t *testing.T) {
	// Bare array and bare object both pass through as scenarios.
	for _, body := range []string{`[{"name":"a","environments":[{"csn":0}]}]`, `{"name":"a","environments":[{"csn":0}]}`} {
		req, err := parseSubmit([]byte(body))
		if err != nil {
			t.Fatalf("%s: %v", body, err)
		}
		if string(req.Scenarios) != body {
			t.Errorf("scenarios %s", req.Scenarios)
		}
	}
	req, err := parseSubmit([]byte(`{"scenarios": [{"name":"a","environments":[]}], "seed": 9}`))
	if err != nil || req.Seed != 9 {
		t.Fatalf("wrapper parse: %+v %v", req, err)
	}
	if _, err := parseSubmit([]byte(`{"scenarios": null}`)); err == nil {
		t.Error("null scenarios accepted")
	}
}
