package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strings"
	"testing"

	"adhocga"
	"adhocga/internal/jobstore"
	"adhocga/internal/league"
)

// checkpointSpec is smokeSpec with generation checkpoints enabled:
// 2 replicates × checkpoints at generations 0 and 1 (the final
// generation is always checkpointed) = 4 champions.
const checkpointSpec = `{
  "name": "svc-smoke",
  "environments": [{"csn": 0}],
  "population": 20,
  "tournament_size": 10,
  "generations": 2,
  "rounds": 10,
  "repetitions": 2,
  "seed": 42,
  "checkpoints": 2
}`

// newLeagueServer builds a server whose session and service share a
// champion archive, over the given store.
func newLeagueServer(t *testing.T, store jobstore.Store, arch *league.Archive) (string, *Server) {
	t.Helper()
	srv, s := newDurableServer(t, store, Options{Champions: arch},
		adhocga.WithChampionArchive(arch))
	return srv.URL, s
}

// harvestChampions submits the checkpointed smoke job and waits it out.
func harvestChampions(t *testing.T, base string) JobInfo {
	t.Helper()
	submit := fmt.Sprintf(`{"scenarios": %s, "scale": "smoke", "parallelism": 1}`, checkpointSpec)
	code, resp := doJSON(t, http.MethodPost, base+"/v1/jobs", submit)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, resp)
	}
	var info JobInfo
	if err := json.Unmarshal(resp, &info); err != nil {
		t.Fatal(err)
	}
	final := waitState(t, base, info.ID)
	if final.State != string(adhocga.JobDone) {
		t.Fatalf("harvest job ended %q (error %q)", final.State, final.Error)
	}
	return final
}

func TestLeagueEndpointsWithoutArchive(t *testing.T) {
	srv, _ := newTestServer(t)
	for _, probe := range []struct{ method, path string }{
		{http.MethodGet, "/v1/champions"},
		{http.MethodGet, "/v1/champions/some/id"},
		{http.MethodPost, "/v1/league"},
	} {
		code, body := doJSON(t, probe.method, srv.URL+probe.path, "{}")
		if code != http.StatusServiceUnavailable {
			t.Errorf("%s %s without archive: %d %s", probe.method, probe.path, code, body)
		}
	}
}

type championsPage struct {
	Champions []league.Champion `json:"champions"`
	Count     int               `json:"count"`
	Archive   string            `json:"archive"`
}

func TestChampionsAndLeagueEndToEnd(t *testing.T) {
	arch := league.NewMemArchive()
	base, _ := newLeagueServer(t, jobstore.NewMem(), arch)
	job := harvestChampions(t, base)

	// An empty league over an empty... no: the archive is populated now.
	code, body := doJSON(t, http.MethodGet, base+"/v1/champions", "")
	if code != http.StatusOK {
		t.Fatalf("champions: %d %s", code, body)
	}
	var page championsPage
	if err := json.Unmarshal(body, &page); err != nil {
		t.Fatal(err)
	}
	if page.Count != 4 || len(page.Champions) != 4 {
		t.Fatalf("champions count %d (%d entries), want 4: %s", page.Count, len(page.Champions), body)
	}
	if page.Archive != "mem" {
		t.Fatalf("archive backend %q", page.Archive)
	}
	for _, c := range page.Champions {
		if c.Job != job.ID || c.Genome == "" || c.Category == "" {
			t.Fatalf("champion %+v incomplete", c)
		}
	}

	// Filters: by job (hit and miss) and by category.
	code, body = doJSON(t, http.MethodGet, base+"/v1/champions?job=no-such-job", "")
	if code != http.StatusOK {
		t.Fatalf("filtered champions: %d", code)
	}
	var empty championsPage
	if err := json.Unmarshal(body, &empty); err != nil {
		t.Fatal(err)
	}
	if empty.Count != 0 {
		t.Fatalf("job filter matched %d, want 0", empty.Count)
	}
	cat := page.Champions[0].Category
	code, body = doJSON(t, http.MethodGet, base+"/v1/champions?category="+url.QueryEscape(cat), "")
	if code != http.StatusOK {
		t.Fatalf("category filter: %d", code)
	}
	var byCat championsPage
	if err := json.Unmarshal(body, &byCat); err != nil {
		t.Fatal(err)
	}
	if byCat.Count == 0 {
		t.Fatalf("category filter %q matched nothing", cat)
	}

	// Single champion by its slash-bearing ID.
	id := page.Champions[0].ID
	code, body = doJSON(t, http.MethodGet, base+"/v1/champions/"+id, "")
	if code != http.StatusOK {
		t.Fatalf("champion %q: %d %s", id, code, body)
	}
	var c league.Champion
	if err := json.Unmarshal(body, &c); err != nil {
		t.Fatal(err)
	}
	if c.ID != id {
		t.Fatalf("champion ID %q, want %q", c.ID, id)
	}
	if code, _ = doJSON(t, http.MethodGet, base+"/v1/champions/definitely/not/there", ""); code != http.StatusNotFound {
		t.Fatalf("unknown champion: %d, want 404", code)
	}

	// The league job: accepted, runs on the session, lands a table.
	code, body = doJSON(t, http.MethodPost, base+"/v1/league",
		`{"baselines": true, "per_side": 2, "matches_per_pair": 1, "rounds": 10, "seed": 7}`)
	if code != http.StatusAccepted {
		t.Fatalf("league submit: %d %s", code, body)
	}
	var handle JobInfo
	if err := json.Unmarshal(body, &handle); err != nil {
		t.Fatal(err)
	}
	if handle.Kind != "league" {
		t.Fatalf("league job kind %q", handle.Kind)
	}
	final := waitState(t, base, handle.ID)
	if final.State != string(adhocga.JobDone) {
		t.Fatalf("league job ended %q (error %q)", final.State, final.Error)
	}
	if final.League == nil {
		t.Fatalf("finished league job has no table: %+v", final)
	}
	if want := 4 + 3; len(final.League.Seats) != want {
		t.Fatalf("league seated %d, want %d champions + 3 baselines", len(final.League.Seats), want)
	}
	if final.League.Winner() == "" {
		t.Fatal("league has no winner")
	}

	// Malformed and unsatisfiable submissions.
	code, body = doJSON(t, http.MethodPost, base+"/v1/league", `{"champions": ["missing"]}`)
	if code != http.StatusAccepted {
		t.Fatalf("league with unknown champion: %d %s, want 202 (fails as a job)", code, body)
	}
	var doomed JobInfo
	if err := json.Unmarshal(body, &doomed); err != nil {
		t.Fatal(err)
	}
	if bad := waitState(t, base, doomed.ID); bad.State != string(adhocga.JobFailed) {
		t.Fatalf("unknown-champion league ended %q, want failed", bad.State)
	}
	if code, body = doJSON(t, http.MethodPost, base+"/v1/league", `{not json`); code != http.StatusBadRequest {
		t.Fatalf("bad body: %d %s", code, body)
	}
}

func TestLeagueRejectsEmptySeating(t *testing.T) {
	arch := league.NewMemArchive()
	base, _ := newLeagueServer(t, jobstore.NewMem(), arch)
	// Empty archive, no baselines: nothing could ever be seated.
	code, body := doJSON(t, http.MethodPost, base+"/v1/league", `{"seed": 1}`)
	if code != http.StatusBadRequest {
		t.Fatalf("empty seating: %d %s, want 400", code, body)
	}
}

// TestJobsStateFilter exercises GET /v1/jobs?state=...: done jobs appear
// under state=done, not under state=running, and an unknown state is a
// 400 instead of a silently empty list.
func TestJobsStateFilter(t *testing.T) {
	srv, _ := newTestServer(t)
	info := finishedSmokeJob(t, srv)

	listIDs := func(query string) []string {
		t.Helper()
		code, body := doJSON(t, http.MethodGet, srv.URL+"/v1/jobs"+query, "")
		if code != http.StatusOK {
			t.Fatalf("list %q: %d %s", query, code, body)
		}
		var page struct {
			Jobs []JobInfo `json:"jobs"`
		}
		if err := json.Unmarshal(body, &page); err != nil {
			t.Fatal(err)
		}
		ids := make([]string, 0, len(page.Jobs))
		for _, j := range page.Jobs {
			ids = append(ids, j.ID)
		}
		return ids
	}

	if ids := listIDs(""); len(ids) != 1 || ids[0] != info.ID {
		t.Fatalf("unfiltered list = %v", ids)
	}
	if ids := listIDs("?state=done"); len(ids) != 1 || ids[0] != info.ID {
		t.Fatalf("state=done list = %v", ids)
	}
	for _, state := range []string{"queued", "running", "failed", "cancelled"} {
		if ids := listIDs("?state=" + state); len(ids) != 0 {
			t.Fatalf("state=%s list = %v, want empty", state, ids)
		}
	}
	code, body := doJSON(t, http.MethodGet, srv.URL+"/v1/jobs?state=bogus", "")
	if code != http.StatusBadRequest {
		t.Fatalf("state=bogus: %d %s, want 400", code, body)
	}
	if !strings.Contains(string(body), "unknown state") {
		t.Fatalf("400 body does not enumerate valid states: %s", body)
	}
}

// TestLeagueSurvivesRestartBitIdentical is the durability half of the
// league determinism contract, driven through the real daemon plumbing:
// harvest and play a league on a file store + file archive, remember the
// table, tear everything down, recover a fresh server over the same
// directories, and require (a) the recovered record serves the identical
// table, (b) verify replays it to a "match" verdict, and (c) a freshly
// submitted identical league spec reproduces the table byte for byte.
func TestLeagueSurvivesRestartBitIdentical(t *testing.T) {
	dir := t.TempDir()
	store1, err := jobstore.OpenFile(dir + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	arch1, err := league.OpenDir(dir + "/champions")
	if err != nil {
		t.Fatal(err)
	}
	base1, _ := newLeagueServer(t, store1, arch1)
	harvestChampions(t, base1)

	const leagueSpec = `{"baselines": true, "per_side": 2, "matches_per_pair": 1, "rounds": 10, "seed": 7}`
	code, body := doJSON(t, http.MethodPost, base1+"/v1/league", leagueSpec)
	if code != http.StatusAccepted {
		t.Fatalf("league submit: %d %s", code, body)
	}
	var handle JobInfo
	if err := json.Unmarshal(body, &handle); err != nil {
		t.Fatal(err)
	}
	final := waitState(t, base1, handle.ID)
	if final.State != string(adhocga.JobDone) || final.League == nil {
		t.Fatalf("league ended %q, table %v", final.State, final.League != nil)
	}
	want, err := json.Marshal(final.League)
	if err != nil {
		t.Fatal(err)
	}
	waitRecord(t, store1, handle.ID)
	store1.Close()
	arch1.Close()

	// The "restarted daemon": fresh store, archive, session, and server
	// over the same directories.
	store2, err := jobstore.OpenFile(dir + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	arch2, err := league.OpenDir(dir + "/champions")
	if err != nil {
		t.Fatal(err)
	}
	if arch2.Len() != 4 {
		t.Fatalf("archive reopened with %d champions, want 4", arch2.Len())
	}
	base2, s2 := newLeagueServer(t, store2, arch2)
	if _, _, err := s2.Recover(t.Context()); err != nil {
		t.Fatal(err)
	}

	code, body = doJSON(t, http.MethodGet, base2+"/v1/jobs/"+handle.ID, "")
	if code != http.StatusOK {
		t.Fatalf("recovered league job: %d %s", code, body)
	}
	var recovered JobInfo
	if err := json.Unmarshal(body, &recovered); err != nil {
		t.Fatal(err)
	}
	if recovered.League == nil {
		t.Fatalf("recovered league job lost its table: %s", body)
	}
	got, err := json.Marshal(recovered.League)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("league table changed across restart:\nbefore %s\nafter  %s", want, got)
	}

	// Verify replays the league from its recorded spec in a sandbox; a
	// "match" verdict certifies the stored table is reproducible.
	code, body = doJSON(t, http.MethodPost, base2+"/v1/jobs/"+handle.ID+"/verify", "")
	if code != http.StatusOK {
		t.Fatalf("verify: %d %s", code, body)
	}
	var report VerifyReport
	if err := json.Unmarshal(body, &report); err != nil {
		t.Fatal(err)
	}
	if report.Verdict != "match" {
		t.Fatalf("verify verdict %q: %s", report.Verdict, body)
	}

	// And a brand-new league under the same spec reproduces the table.
	code, body = doJSON(t, http.MethodPost, base2+"/v1/league", leagueSpec)
	if code != http.StatusAccepted {
		t.Fatalf("fresh league submit: %d %s", code, body)
	}
	var fresh JobInfo
	if err := json.Unmarshal(body, &fresh); err != nil {
		t.Fatal(err)
	}
	freshFinal := waitState(t, base2, fresh.ID)
	if freshFinal.State != string(adhocga.JobDone) || freshFinal.League == nil {
		t.Fatalf("fresh league ended %q (error %q)", freshFinal.State, freshFinal.Error)
	}
	rerun, err := json.Marshal(freshFinal.League)
	if err != nil {
		t.Fatal(err)
	}
	if string(rerun) != string(want) {
		t.Fatalf("fresh league diverged from pre-restart table:\nbefore %s\nafter  %s", want, rerun)
	}
}
