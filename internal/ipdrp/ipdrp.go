// Package ipdrp implements the Iterated Prisoner's Dilemma under Random
// Pairing of Namikawa and Ishibuchi [12], the game-theoretic model the
// paper's Ad Hoc Network Game generalizes (§2, §5).
//
// Each player carries a 5-bit single-round-memory strategy: bit 0 is the
// first move; bits 1–4 give the move for each possible outcome of the
// player's previous round (own move × opponent move). Every round the
// population is paired uniformly at random, each pair plays one Prisoner's
// Dilemma round, and each player remembers only its own last outcome —
// typically against a different opponent than the next round's.
package ipdrp

import (
	"cmp"
	"context"
	"fmt"
	"slices"

	"adhocga/internal/bitstring"
	"adhocga/internal/ga"
	"adhocga/internal/rng"
)

// Move is a Prisoner's Dilemma move.
type Move uint8

// The two moves.
const (
	Defect Move = iota
	Cooperate
)

// String returns "C" or "D".
func (m Move) String() string {
	if m == Cooperate {
		return "C"
	}
	return "D"
}

// Bits is the strategy genome length: first move + 4 previous-round
// outcomes.
const Bits = 5

// Strategy is a 5-bit IPDRP strategy. Bit 0: first move. Bits 1–4: the
// response when (my previous, opponent previous) was (C,C), (C,D), (D,C),
// (D,D) respectively. Bit value 1 means Cooperate.
type Strategy struct {
	bits bitstring.Bits
}

// New wraps a 5-bit genome. It panics on a wrong length.
func New(b bitstring.Bits) Strategy {
	if b.Len() != Bits {
		panic(fmt.Sprintf("ipdrp: genome has %d bits, want %d", b.Len(), Bits))
	}
	return Strategy{bits: b}
}

// Random returns a uniformly random strategy.
func Random(r *rng.Source) Strategy { return Strategy{bits: bitstring.Random(r, Bits)} }

// MustParse parses a 5-character bit string such as "10010".
func MustParse(s string) Strategy {
	b := bitstring.MustParse(s)
	return New(b)
}

// FirstMove returns the opening move.
func (s Strategy) FirstMove() Move {
	if s.bits.Get(0) {
		return Cooperate
	}
	return Defect
}

// Next returns the move after a previous round in which the player moved
// prevMine and its then-opponent moved prevOpp.
func (s Strategy) Next(prevMine, prevOpp Move) Move {
	idx := 1
	if prevMine == Defect {
		idx += 2
	}
	if prevOpp == Defect {
		idx++
	}
	if s.bits.Get(idx) {
		return Cooperate
	}
	return Defect
}

// Genome returns a copy of the genome.
func (s Strategy) Genome() bitstring.Bits { return s.bits.Clone() }

// Key returns the canonical bit string.
func (s Strategy) Key() string { return s.bits.Compact() }

// String renders the strategy as first-move + response block, e.g. "1 1001".
func (s Strategy) String() string { return s.bits.GroupString(1, 4) }

// Canonical strategies.
func AllC() Strategy { return MustParse("11111") }
func AllD() Strategy { return MustParse("00000") }

// TitForTat opens cooperating and repeats the previous opponent's move
// (of whoever it met last round — the random-pairing twist).
func TitForTat() Strategy { return MustParse("11010") }

// Payoffs is the Prisoner's Dilemma payoff matrix. Defaults satisfy
// T > R > P > S and 2R > T+S.
type Payoffs struct {
	Temptation float64 // T: I defect, opponent cooperates
	Reward     float64 // R: both cooperate
	Punishment float64 // P: both defect
	Sucker     float64 // S: I cooperate, opponent defects
}

// StandardPayoffs returns the canonical 5/3/1/0 matrix.
func StandardPayoffs() Payoffs {
	return Payoffs{Temptation: 5, Reward: 3, Punishment: 1, Sucker: 0}
}

// Validate checks the dilemma conditions.
func (p Payoffs) Validate() error {
	if !(p.Temptation > p.Reward && p.Reward > p.Punishment && p.Punishment > p.Sucker) {
		return fmt.Errorf("ipdrp: payoffs must satisfy T > R > P > S, got %+v", p)
	}
	if 2*p.Reward <= p.Temptation+p.Sucker {
		return fmt.Errorf("ipdrp: payoffs must satisfy 2R > T+S, got %+v", p)
	}
	return nil
}

// Score returns the payoffs of a single round for (mine, opp).
func (p Payoffs) Score(mine, opp Move) float64 {
	switch {
	case mine == Cooperate && opp == Cooperate:
		return p.Reward
	case mine == Cooperate && opp == Defect:
		return p.Sucker
	case mine == Defect && opp == Cooperate:
		return p.Temptation
	default:
		return p.Punishment
	}
}

// Config parameterizes an IPDRP evolution run.
type Config struct {
	Population  int // must be even (players pair up every round)
	Rounds      int // rounds per generation
	Generations int
	Payoffs     Payoffs
	GA          ga.Config
	Seed        uint64
	// OnGeneration, when non-nil, receives (generation, cooperation rate,
	// fitness stats) after each generation's play.
	OnGeneration func(gen int, coopRate float64, stats ga.PopulationStats)
}

// DefaultConfig mirrors the scale of [12]: population 100, 100 rounds,
// roulette selection (the operator this paper replaced with tournament
// selection), crossover 0.9, mutation 0.001.
func DefaultConfig(seed uint64) Config {
	gaCfg := ga.PaperConfig()
	gaCfg.Selector = ga.RouletteSelector{}
	return Config{
		Population:  100,
		Rounds:      100,
		Generations: 100,
		Payoffs:     StandardPayoffs(),
		GA:          gaCfg,
		Seed:        seed,
	}
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if c.Population < 2 || c.Population%2 != 0 {
		return fmt.Errorf("ipdrp: population must be even and ≥ 2, got %d", c.Population)
	}
	if c.Rounds < 1 || c.Generations < 1 {
		return fmt.Errorf("ipdrp: rounds and generations must be positive")
	}
	if err := c.Payoffs.Validate(); err != nil {
		return err
	}
	return c.GA.Validate()
}

// Result is the outcome of an IPDRP run.
type Result struct {
	// CoopSeries is the fraction of Cooperate moves per generation.
	CoopSeries []float64
	// FinalStrategies is the last generation's population.
	FinalStrategies []Strategy
}

type playerState struct {
	strat    Strategy
	played   bool
	prevMine Move
	prevOpp  Move
	payoff   float64
	moves    int
}

// Run evolves a population of IPDRP strategies and returns the cooperation
// trajectory. Deterministic for a given config.
func Run(cfg Config) (*Result, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext is Run with cooperative cancellation, checked once per
// generation before play — never inside one — so an uncancelled run is
// bit-identical to Run. On cancellation the partial Result (the
// cooperation series of every completed generation, no final population)
// is returned together with an error wrapping ctx.Err().
func RunContext(ctx context.Context, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := rng.New(cfg.Seed)
	genomes := make([]ga.Individual, cfg.Population)
	for i := range genomes {
		genomes[i] = ga.Individual{Genome: bitstring.Random(r, Bits)}
	}
	res := &Result{CoopSeries: make([]float64, 0, cfg.Generations)}
	states := make([]playerState, cfg.Population)
	order := make([]int, cfg.Population)
	for i := range order {
		order[i] = i
	}

	for gen := 0; gen < cfg.Generations; gen++ {
		if err := ctx.Err(); err != nil {
			return res, fmt.Errorf("ipdrp: interrupted before generation %d: %w", gen, err)
		}
		for i := range states {
			states[i] = playerState{strat: New(genomes[i].Genome.Clone())}
		}
		coopMoves, totalMoves := 0, 0
		for round := 0; round < cfg.Rounds; round++ {
			r.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
			for k := 0; k < len(order); k += 2 {
				a, b := &states[order[k]], &states[order[k+1]]
				ma := moveOf(a)
				mb := moveOf(b)
				a.payoff += cfg.Payoffs.Score(ma, mb)
				b.payoff += cfg.Payoffs.Score(mb, ma)
				a.prevMine, a.prevOpp, a.played = ma, mb, true
				b.prevMine, b.prevOpp, b.played = mb, ma, true
				a.moves++
				b.moves++
				if ma == Cooperate {
					coopMoves++
				}
				if mb == Cooperate {
					coopMoves++
				}
				totalMoves += 2
			}
		}
		for i := range genomes {
			genomes[i].Fitness = states[i].payoff / float64(states[i].moves)
		}
		coopRate := float64(coopMoves) / float64(totalMoves)
		res.CoopSeries = append(res.CoopSeries, coopRate)
		if cfg.OnGeneration != nil {
			cfg.OnGeneration(gen, coopRate, ga.Stats(genomes))
		}
		if gen == cfg.Generations-1 {
			res.FinalStrategies = make([]Strategy, cfg.Population)
			for i := range states {
				res.FinalStrategies[i] = states[i].strat
			}
			break
		}
		next, err := ga.NextGeneration(genomes, &cfg.GA, r)
		if err != nil {
			return nil, err
		}
		for i := range genomes {
			genomes[i] = ga.Individual{Genome: next[i]}
		}
	}
	return res, nil
}

func moveOf(s *playerState) Move {
	if !s.played {
		return s.strat.FirstMove()
	}
	return s.strat.Next(s.prevMine, s.prevOpp)
}

// CensusEntry is one row of a final-population census.
type CensusEntry struct {
	Strategy Strategy
	Fraction float64
}

// Census tallies the final strategies, most frequent first (ties broken by
// key). With only 32 possible 5-bit strategies the census is the natural
// summary of an IPDRP run — [12] reports results this way.
func (r *Result) Census() []CensusEntry {
	counts := make(map[string]int)
	for _, s := range r.FinalStrategies {
		counts[s.Key()]++
	}
	out := make([]CensusEntry, 0, len(counts))
	for key, n := range counts {
		out = append(out, CensusEntry{
			Strategy: MustParse(key),
			Fraction: float64(n) / float64(len(r.FinalStrategies)),
		})
	}
	slices.SortFunc(out, func(a, b CensusEntry) int {
		if c := cmp.Compare(b.Fraction, a.Fraction); c != 0 {
			return c
		}
		return cmp.Compare(a.Strategy.Key(), b.Strategy.Key())
	})
	return out
}
