package ipdrp

import (
	"testing"

	"adhocga/internal/bitstring"
	"adhocga/internal/ga"
	"adhocga/internal/rng"
)

func TestStrategyBitLayout(t *testing.T) {
	// "1 1010": first move C; respond C after (C,C), D after (C,D),
	// C after (D,C), D after (D,D) — that is TFT applied to own history.
	s := MustParse("11010")
	if s.FirstMove() != Cooperate {
		t.Error("first move should be C")
	}
	cases := []struct {
		mine, opp Move
		want      Move
	}{
		{Cooperate, Cooperate, Cooperate},
		{Cooperate, Defect, Defect},
		{Defect, Cooperate, Cooperate},
		{Defect, Defect, Defect},
	}
	for _, c := range cases {
		if got := s.Next(c.mine, c.opp); got != c.want {
			t.Errorf("Next(%v,%v) = %v, want %v", c.mine, c.opp, got, c.want)
		}
	}
	if !s.Genome().Equal(TitForTat().Genome()) {
		t.Error("11010 should equal TitForTat()")
	}
}

func TestCanonicalStrategies(t *testing.T) {
	allc, alld := AllC(), AllD()
	for _, mine := range []Move{Cooperate, Defect} {
		for _, opp := range []Move{Cooperate, Defect} {
			if allc.Next(mine, opp) != Cooperate {
				t.Error("AllC defected")
			}
			if alld.Next(mine, opp) != Defect {
				t.Error("AllD cooperated")
			}
		}
	}
	if allc.FirstMove() != Cooperate || alld.FirstMove() != Defect {
		t.Error("first moves wrong")
	}
	if Cooperate.String() != "C" || Defect.String() != "D" {
		t.Error("move strings wrong")
	}
	if TitForTat().String() != "1 1010" {
		t.Errorf("TFT renders as %q", TitForTat().String())
	}
}

func TestNewPanicsOnWrongLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(bitstring.New(13))
}

func TestPayoffs(t *testing.T) {
	p := StandardPayoffs()
	if err := p.Validate(); err != nil {
		t.Fatalf("standard payoffs invalid: %v", err)
	}
	if p.Score(Cooperate, Cooperate) != 3 || p.Score(Defect, Defect) != 1 {
		t.Error("symmetric scores wrong")
	}
	if p.Score(Defect, Cooperate) != 5 || p.Score(Cooperate, Defect) != 0 {
		t.Error("asymmetric scores wrong")
	}
	bad := Payoffs{Temptation: 1, Reward: 2, Punishment: 3, Sucker: 4}
	if err := bad.Validate(); err == nil {
		t.Error("non-dilemma payoffs accepted")
	}
	// 2R > T+S violation.
	bad = Payoffs{Temptation: 7, Reward: 3, Punishment: 1, Sucker: 0}
	if err := bad.Validate(); err == nil {
		t.Error("2R <= T+S accepted")
	}
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig(1)
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	odd := DefaultConfig(1)
	odd.Population = 7
	if err := odd.Validate(); err == nil {
		t.Error("odd population accepted")
	}
	zero := DefaultConfig(1)
	zero.Rounds = 0
	if err := zero.Validate(); err == nil {
		t.Error("zero rounds accepted")
	}
}

func TestRunMechanics(t *testing.T) {
	cfg := DefaultConfig(3)
	cfg.Population = 20
	cfg.Rounds = 30
	cfg.Generations = 10
	var hookGens int
	cfg.OnGeneration = func(gen int, coop float64, _ ga.PopulationStats) {
		hookGens++
		if coop < 0 || coop > 1 {
			t.Errorf("generation %d cooperation rate %v", gen, coop)
		}
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CoopSeries) != 10 {
		t.Errorf("series length %d", len(res.CoopSeries))
	}
	if hookGens != 10 {
		t.Errorf("hook called %d times", hookGens)
	}
	if len(res.FinalStrategies) != 20 {
		t.Errorf("%d final strategies", len(res.FinalStrategies))
	}
}

func TestRunDeterministic(t *testing.T) {
	run := func() []float64 {
		cfg := DefaultConfig(11)
		cfg.Population = 20
		cfg.Rounds = 20
		cfg.Generations = 5
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.CoopSeries
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("series diverged at %d", i)
		}
	}
}

func TestDefectionDominatesUnderRandomPairing(t *testing.T) {
	// The central finding of [12]'s baseline: under random pairing with
	// single-round memory and no partner fidelity, defection takes over
	// (reciprocity cannot target the defector that hurt you). Late
	// cooperation must fall well below the random-start ~50%.
	cfg := DefaultConfig(5)
	cfg.Population = 60
	cfg.Rounds = 50
	cfg.Generations = 40
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	late := res.CoopSeries[len(res.CoopSeries)-1]
	if late > 0.25 {
		t.Errorf("late cooperation %v; defection should dominate under random pairing", late)
	}
}

func TestAllCPopulationStaysCooperative(t *testing.T) {
	// Degenerate dynamics check at the game level: a population seeded
	// all-C via zero mutation/crossover playing one generation must
	// produce 100% cooperation.
	cfg := DefaultConfig(6)
	cfg.Population = 10
	cfg.Rounds = 10
	cfg.Generations = 1
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A random first generation cooperates at roughly 50%.
	if res.CoopSeries[0] < 0.2 || res.CoopSeries[0] > 0.8 {
		t.Errorf("random-start cooperation %v looks wrong", res.CoopSeries[0])
	}
}

func TestKeyUniqueness(t *testing.T) {
	seen := map[string]bool{}
	r := rng.New(7)
	for i := 0; i < 200; i++ {
		seen[Random(r).Key()] = true
	}
	// Only 32 distinct 5-bit strategies exist.
	if len(seen) > 32 {
		t.Fatalf("%d distinct keys from a 5-bit space", len(seen))
	}
	if len(seen) < 20 {
		t.Errorf("only %d distinct strategies sampled; RNG looks broken", len(seen))
	}
}

func TestCensus(t *testing.T) {
	res := &Result{FinalStrategies: []Strategy{AllD(), AllD(), AllD(), AllC()}}
	census := res.Census()
	if len(census) != 2 {
		t.Fatalf("%d census entries", len(census))
	}
	if !census[0].Strategy.Genome().Equal(AllD().Genome()) || census[0].Fraction != 0.75 {
		t.Errorf("top entry %+v", census[0])
	}
	// Fractions sum to 1.
	sum := 0.0
	for _, e := range census {
		sum += e.Fraction
	}
	if sum != 1 {
		t.Errorf("fractions sum to %v", sum)
	}
}

func TestCensusAfterEvolution(t *testing.T) {
	cfg := DefaultConfig(12)
	cfg.Population = 40
	cfg.Rounds = 40
	cfg.Generations = 30
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	census := res.Census()
	if len(census) == 0 {
		t.Fatal("empty census")
	}
	// Under random pairing the dominant strategies defect after mutual
	// defection (last response bit 0) — the absorbing behavior.
	if census[0].Strategy.Next(Defect, Defect) != Defect {
		t.Errorf("dominant strategy %s cooperates after (D,D)", census[0].Strategy)
	}
}

func BenchmarkIPDRPGeneration(b *testing.B) {
	cfg := DefaultConfig(1)
	cfg.Generations = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
