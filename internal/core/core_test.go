package core

import (
	"testing"

	"adhocga/internal/ga"
	"adhocga/internal/game"
	"adhocga/internal/network"
	"adhocga/internal/strategy"
	"adhocga/internal/tournament"
)

// smallConfig returns a fast configuration: 20 players, tournament size
// 10, few rounds and generations.
func smallConfig(seed uint64, envs []tournament.Environment, generations int) Config {
	return Config{
		PopulationSize: 20,
		Generations:    generations,
		Seed:           seed,
		Eval: tournament.EvalConfig{
			TournamentSize: 10,
			PlaysPerEnv:    1,
			Environments:   envs,
			Tournament: tournament.Config{
				Rounds: 10,
				Mode:   network.ShorterPaths(),
				Game:   game.DefaultConfig(),
			},
		},
		GA: ga.PaperConfig(),
	}
}

func TestPaperConfigValid(t *testing.T) {
	cfg := PaperConfig(tournament.PaperEnvironments(), network.ShorterPaths(), 1)
	if err := cfg.Validate(); err != nil {
		t.Fatalf("paper config invalid: %v", err)
	}
	if cfg.PopulationSize != 100 || cfg.Generations != 500 ||
		cfg.Eval.TournamentSize != 50 || cfg.Eval.Tournament.Rounds != 300 {
		t.Errorf("paper parameters wrong: %+v", cfg)
	}
}

func TestConfigValidateErrors(t *testing.T) {
	cases := []func(*Config){
		func(c *Config) { c.PopulationSize = 1 },
		func(c *Config) { c.Generations = 0 },
		func(c *Config) { c.Eval.Environments = nil },
		func(c *Config) { c.GA.Selector = nil },
	}
	for i, mutate := range cases {
		cfg := smallConfig(1, []tournament.Environment{{Name: "A", CSN: 0}}, 3)
		mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestRunProducesFullHistory(t *testing.T) {
	envs := []tournament.Environment{{Name: "A", CSN: 0}, {Name: "B", CSN: 4}}
	const generations = 5
	e, err := New(smallConfig(2, envs, generations))
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CoopSeries) != generations {
		t.Errorf("coop series length %d, want %d", len(res.CoopSeries), generations)
	}
	if len(res.MeanEnvCoopSeries) != generations {
		t.Errorf("mean env series length %d", len(res.MeanEnvCoopSeries))
	}
	if len(res.CoopPerEnvSeries) != len(envs) {
		t.Fatalf("%d per-env series, want %d", len(res.CoopPerEnvSeries), len(envs))
	}
	for ei, s := range res.CoopPerEnvSeries {
		if len(s) != generations {
			t.Errorf("env %d series length %d", ei, len(s))
		}
		for g, v := range s {
			if v < 0 || v > 1 {
				t.Errorf("env %d gen %d cooperation %v outside [0,1]", ei, g, v)
			}
		}
	}
	if len(res.FinalStrategies) != 20 {
		t.Errorf("%d final strategies", len(res.FinalStrategies))
	}
	if res.FinalCollector == nil {
		t.Error("final collector missing")
	}
}

func TestRunDeterministicForSeed(t *testing.T) {
	envs := []tournament.Environment{{Name: "A", CSN: 2}}
	run := func() *Result {
		e, err := New(smallConfig(42, envs, 4))
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	for i := range a.CoopSeries {
		if a.CoopSeries[i] != b.CoopSeries[i] {
			t.Fatalf("coop series diverged at generation %d: %v vs %v", i, a.CoopSeries[i], b.CoopSeries[i])
		}
	}
	for i := range a.FinalStrategies {
		if !a.FinalStrategies[i].Equal(b.FinalStrategies[i]) {
			t.Fatalf("final strategies diverged at %d", i)
		}
	}
}

func TestRunDifferentSeedsDiffer(t *testing.T) {
	envs := []tournament.Environment{{Name: "A", CSN: 2}}
	ra, err := New(smallConfig(1, envs, 3))
	if err != nil {
		t.Fatal(err)
	}
	a, err := ra.Run()
	if err != nil {
		t.Fatal(err)
	}
	rb, err := New(smallConfig(2, envs, 3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := rb.Run()
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.FinalStrategies {
		if !a.FinalStrategies[i].Equal(b.FinalStrategies[i]) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical final populations")
	}
}

func TestOnGenerationHook(t *testing.T) {
	envs := []tournament.Environment{{Name: "A", CSN: 0}}
	cfg := smallConfig(3, envs, 4)
	var gens []int
	var coops []float64
	cfg.OnGeneration = func(s GenerationStats) {
		gens = append(gens, s.Generation)
		coops = append(coops, s.Cooperation)
		if len(s.CoopPerEnv) != 1 {
			t.Errorf("hook saw %d env levels", len(s.CoopPerEnv))
		}
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(gens) != 4 {
		t.Fatalf("hook called %d times", len(gens))
	}
	for i, g := range gens {
		if g != i {
			t.Errorf("hook generation %d at position %d", g, i)
		}
	}
}

func TestEvolutionIncreasesCooperationWithoutCSN(t *testing.T) {
	// The paper's core qualitative claim (case 1): in a CSN-free
	// environment cooperation evolves to high levels because forwarding is
	// the only way to send own packets. A small/short run won't hit 97%,
	// but late generations must clearly beat the random start.
	if testing.Short() {
		t.Skip("short mode")
	}
	// Reputation needs enough rounds per tournament to form; the paper
	// uses R=300. R=150 with a population of 60 is the smallest scale at
	// which the case-1 dynamics are reliably visible.
	envs := []tournament.Environment{{Name: "TE1", CSN: 0}}
	cfg := Config{
		PopulationSize: 60,
		Generations:    25,
		Seed:           7,
		Eval: tournament.EvalConfig{
			TournamentSize: 30,
			PlaysPerEnv:    1,
			Environments:   envs,
			Tournament: tournament.Config{
				Rounds: 150,
				Mode:   network.ShorterPaths(),
				Game:   game.DefaultConfig(),
			},
		},
		GA: ga.PaperConfig(),
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	early := res.CoopSeries[0]
	lateSum := 0.0
	for _, v := range res.CoopSeries[len(res.CoopSeries)-5:] {
		lateSum += v
	}
	late := lateSum / 5
	if late <= early {
		t.Errorf("cooperation did not increase: first %v, late mean %v", early, late)
	}
	if late < 0.5 {
		t.Errorf("late cooperation %v below 0.5; evolution not working", late)
	}
}

func TestTrustOnlyConstraint(t *testing.T) {
	envs := []tournament.Environment{{Name: "A", CSN: 2}}
	cfg := smallConfig(13, envs, 3)
	cfg.Constraint = TrustOnlyConstraint
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Every surviving strategy must ignore activity: within each trust
	// level all three decisions agree.
	for _, s := range res.FinalStrategies {
		for tl := strategy.TrustLevel(0); tl < strategy.NumTrustLevels; tl++ {
			sub := s.SubStrategy(tl)
			if sub != "000" && sub != "111" {
				t.Fatalf("constrained strategy has mixed sub-strategy %q", sub)
			}
		}
	}
}

func TestStrategiesAccessor(t *testing.T) {
	envs := []tournament.Environment{{Name: "A", CSN: 0}}
	e, err := New(smallConfig(5, envs, 2))
	if err != nil {
		t.Fatal(err)
	}
	ss := e.Strategies()
	if len(ss) != 20 {
		t.Fatalf("%d strategies", len(ss))
	}
	// Accessor returns copies: mutating them must not affect the engine.
	g := ss[0].Genome()
	g.Flip(0)
	ss2 := e.Strategies()
	if !ss[0].Equal(ss2[0]) {
		t.Error("Strategies exposed internal state")
	}
}

func BenchmarkGeneration(b *testing.B) {
	envs := tournament.PaperEnvironments()
	cfg := PaperConfig(envs, network.ShorterPaths(), 1)
	cfg.Generations = 1
	cfg.Eval.Tournament.Rounds = 10
	e, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
