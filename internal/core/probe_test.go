package core

// Calibration probe: prints the cooperation trajectory at near-paper scale.
// Run manually with:
//
//	go test ./internal/core -run TestProbeCooperation -v -probe
//
// It is skipped unless -probe is set, since it takes tens of seconds.

import (
	"flag"
	"fmt"
	"testing"

	"adhocga/internal/ga"
	"adhocga/internal/network"
	"adhocga/internal/tournament"
)

var probe = flag.Bool("probe", false, "run the expensive calibration probe")

func TestProbeCooperation(t *testing.T) {
	if !*probe {
		t.Skip("probe disabled; use -probe")
	}
	cfg := PaperConfig([]tournament.Environment{{Name: "TE1", CSN: 0}}, network.ShorterPaths(), 1)
	cfg.Generations = 60
	cfg.OnGeneration = func(s GenerationStats) {
		if s.Generation%5 == 0 || s.Generation < 10 {
			fmt.Printf("gen %3d  coop %.3f  fit mean %.3f best %.3f div %.3f\n",
				s.Generation, s.Cooperation, s.Fitness.MeanFitness, s.Fitness.BestFitness, s.Fitness.Diversity)
		}
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestProbeCase2Basin measures case 2 (TE4 only, 30 CSN) convergence as a
// function of L and rounds.
func TestProbeCase2Basin(t *testing.T) {
	if !*probe {
		t.Skip("probe disabled; use -probe")
	}
	for _, v := range []struct {
		name   string
		L      int
		rounds int
	}{
		{"L=1 R=300", 1, 300},
		{"L=2 R=300", 2, 300},
		{"L=2 R=150", 2, 150},
	} {
		const reps = 6
		results := make(chan float64, reps)
		for rep := 0; rep < reps; rep++ {
			go func(seed uint64) {
				envs := tournament.PaperEnvironments()[3:4]
				cfg := PaperConfig(envs, network.ShorterPaths(), seed)
				cfg.Generations = 80
				cfg.Eval.PlaysPerEnv = v.L
				cfg.Eval.Tournament.Rounds = v.rounds
				e, err := New(cfg)
				if err != nil {
					t.Error(err)
					results <- -1
					return
				}
				res, err := e.Run()
				if err != nil {
					t.Error(err)
					results <- -1
					return
				}
				results <- res.CoopSeries[len(res.CoopSeries)-1]
			}(uint64(200 + rep))
		}
		var finals []float64
		for rep := 0; rep < reps; rep++ {
			finals = append(finals, <-results)
		}
		fmt.Printf("case2 %s: finals %.3f\n", v.name, finals)
	}
}

// TestProbeCase4Basin measures how often case 4 (longer paths) reaches the
// cooperative basin, as a function of L (plays per environment) and GA
// tournament size — both under-specified by the paper.
func TestProbeCase4Basin(t *testing.T) {
	if !*probe {
		t.Skip("probe disabled; use -probe")
	}
	variants := []struct {
		name    string
		L       int
		selSize int
	}{
		{"L=1 k=2", 1, 2},
		{"L=2 k=2", 2, 2},
		{"L=1 k=4", 1, 4},
	}
	for _, v := range variants {
		converged := 0
		const reps = 6
		type out struct{ final float64 }
		results := make(chan out, reps)
		for rep := 0; rep < reps; rep++ {
			go func(seed uint64) {
				cfg := PaperConfig(tournament.PaperEnvironments(), network.LongerPaths(), seed)
				cfg.Generations = 60
				cfg.Eval.PlaysPerEnv = v.L
				cfg.GA = ga.Config{
					Selector:      ga.TournamentSelector{Size: v.selSize},
					Crossover:     cfg.GA.Crossover,
					CrossoverProb: cfg.GA.CrossoverProb,
					MutationProb:  cfg.GA.MutationProb,
				}
				e, err := New(cfg)
				if err != nil {
					t.Error(err)
					results <- out{}
					return
				}
				res, err := e.Run()
				if err != nil {
					t.Error(err)
					results <- out{}
					return
				}
				results <- out{final: res.MeanEnvCoopSeries[len(res.MeanEnvCoopSeries)-1]}
			}(uint64(100 + rep))
		}
		var finals []float64
		for rep := 0; rep < reps; rep++ {
			o := <-results
			finals = append(finals, o.final)
			if o.final > 0.2 {
				converged++
			}
		}
		fmt.Printf("%s: converged %d/%d  finals %.3f\n", v.name, converged, reps, finals)
	}
}
