// Package core implements the paper's primary contribution: the evolution
// of strategy-driven forwarding behavior. It couples the game-theoretic
// evaluation machinery (internal/tournament) with the genetic algorithm
// (internal/ga) into the generational loop of §5:
//
//	random strategies → evaluate in tournament environments → fitness by
//	eq. 1 → tournament selection + one-point crossover + bit-flip
//	mutation → next generation, repeated for a fixed number of
//	generations.
//
// The Engine reports per-generation observables (cooperation level,
// fitness moments, diversity) through a hook and returns the full history
// plus the final strategy population, which the experiment harness turns
// into the paper's figures and tables.
package core

import (
	"context"
	"fmt"

	"adhocga/internal/bitstring"
	"adhocga/internal/dynamics"
	"adhocga/internal/ga"
	"adhocga/internal/game"
	"adhocga/internal/metrics"
	"adhocga/internal/network"
	"adhocga/internal/rng"
	"adhocga/internal/strategy"
	"adhocga/internal/tournament"
)

// Config parameterizes one evolutionary run.
type Config struct {
	PopulationSize int    // N: number of normal players / strategies (paper: 100)
	Generations    int    // paper: 500
	Seed           uint64 // master seed; identical configs+seeds replay exactly
	Eval           tournament.EvalConfig
	GA             ga.Config

	// Dynamics, when non-nil and enabled, perturbs the network and
	// population at generation barriers (internal/dynamics): churn with
	// random immigrants and identity turnover, route-length landscape
	// drift, and a Byzantine adversary cohort in every tournament. The
	// perturbation stream is split from Seed before any evaluation
	// randomness, so a nil or disabled Dynamics is bit-identical to a
	// build without the layer.
	Dynamics *dynamics.Config

	// OnGeneration, when non-nil, receives each generation's snapshot
	// right after evaluation (before reproduction).
	OnGeneration func(GenerationStats)

	// OnChurn, when non-nil, is called after every dynamics barrier that
	// actually fired (churn and/or landscape rewiring), with the index of
	// the generation whose reproduction the barrier followed. It is purely
	// observational — the hook never consumes engine randomness — so
	// setting it cannot change results.
	OnChurn func(generation int)

	// CheckpointInterval and OnCheckpoint extract hall-of-fame champions:
	// when both are set (interval > 0, hook non-nil), the hook receives a
	// Checkpoint right after the evaluation of every CheckpointInterval-th
	// generation (0, interval, 2·interval, …) and always of the final one.
	// Like OnChurn it is purely observational — the hook never consumes
	// engine randomness and the champion genome is deep-copied — so
	// enabling checkpoints cannot change results.
	CheckpointInterval int
	OnCheckpoint       func(Checkpoint)

	// Constraint, when non-nil, is applied in place to every genome as it
	// enters the population (initialization and reproduction). It
	// restricts the search space for ablations — e.g. forcing the three
	// activity bits of each trust level to agree turns the 13-bit
	// strategy into a 5-bit trust-only strategy.
	Constraint func(bitstring.Bits)
}

// TrustOnlyConstraint collapses the activity dimension: within each trust
// level, the MI and HI bits are overwritten by the LO bit, making the
// strategy depend on trust alone. Used by the A2 ablation benchmark to
// measure what the activity levels of §3.2 contribute.
func TrustOnlyConstraint(b bitstring.Bits) {
	for t := 0; t < strategy.NumTrustLevels; t++ {
		base := b.Get(t * strategy.NumActivityLevels)
		for a := 1; a < strategy.NumActivityLevels; a++ {
			b.Set(t*strategy.NumActivityLevels+a, base)
		}
	}
}

// PaperConfig returns the full §6.1 parameterization for the given
// environments and path mode: N=100, T=50, R=300, 500 generations, GA
// probabilities 0.9/0.001. Callers scale Generations and Rounds down for
// quick runs.
//
// PlaysPerEnv (the paper's unspecified L) defaults to 2: calibration showed
// that with L=1 a sizable fraction of longer-path replicates collapse to
// all-defection instead of reaching the cooperative quasi-equilibrium the
// paper reports, while with L=2 every replicate reproduces the paper's
// Table 5 values (see EXPERIMENTS.md).
func PaperConfig(envs []tournament.Environment, mode network.PathMode, seed uint64) Config {
	return Config{
		PopulationSize: 100,
		Generations:    500,
		Seed:           seed,
		Eval: tournament.EvalConfig{
			TournamentSize: 50,
			PlaysPerEnv:    2,
			Environments:   envs,
			Tournament: tournament.Config{
				Rounds: 300,
				Mode:   mode,
				Game:   game.DefaultConfig(),
			},
		},
		GA: ga.PaperConfig(),
	}
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if c.PopulationSize < 2 {
		return fmt.Errorf("core: population size %d too small", c.PopulationSize)
	}
	if c.Generations < 1 {
		return fmt.Errorf("core: generations %d too small", c.Generations)
	}
	if err := c.Eval.Validate(c.PopulationSize); err != nil {
		return err
	}
	if c.Dynamics != nil {
		if err := c.Dynamics.Validate(); err != nil {
			return err
		}
		if adv := c.Dynamics.AdversaryCount(); adv > 0 {
			if seats := c.Eval.TournamentSize - c.Eval.MaxCSN() - adv; seats < 1 {
				return fmt.Errorf("core: %d adversaries plus %d CSN leave %d normal seats of %d",
					adv, c.Eval.MaxCSN(), seats, c.Eval.TournamentSize)
			}
		}
		// Liars attack exclusively through gossip; without it they are
		// inert always-forwarders masquerading as adversaries.
		if c.Dynamics.Liars > 0 && c.Eval.Tournament.GossipInterval < 1 {
			return fmt.Errorf("core: %d gossip liars but gossip is disabled (set Eval.Tournament.GossipInterval)", c.Dynamics.Liars)
		}
	}
	return c.GA.Validate()
}

// GenerationStats is the per-generation snapshot handed to OnGeneration
// and accumulated into the run history.
type GenerationStats struct {
	Generation int
	// Cooperation is the overall cooperation level of the generation:
	// delivered / originated over all normal-sourced games (§6.2).
	Cooperation float64
	// CoopPerEnv is the cooperation level measured independently per
	// tournament environment (Table 5).
	CoopPerEnv []float64
	// MeanEnvCooperation is the unweighted mean of CoopPerEnv, the Fig 4
	// summary number for multi-environment cases.
	MeanEnvCooperation float64
	Fitness            ga.PopulationStats
}

// Checkpoint is the observational champion snapshot handed to
// OnCheckpoint: the best-fitness individual of a just-evaluated
// generation, deep-copied so it stays valid after the engine evolves on
// or is reinitialized for another job.
type Checkpoint struct {
	Generation  int
	Best        strategy.Strategy
	Fitness     float64
	MeanFitness float64
	Cooperation float64
}

// CheckpointDue reports whether a run of the given length fires a
// checkpoint at generation gen under the given interval: every
// interval-th generation plus the final one. Interval <= 0 disables
// checkpoints entirely.
func CheckpointDue(gen, interval, generations int) bool {
	if interval <= 0 {
		return false
	}
	return gen%interval == 0 || gen == generations-1
}

// Result is the outcome of a run.
type Result struct {
	// CoopSeries has one overall cooperation level per generation — the
	// data behind one Fig 4 curve.
	CoopSeries []float64
	// MeanEnvCoopSeries is the per-generation unweighted environment mean.
	MeanEnvCoopSeries []float64
	// CoopPerEnvSeries[e][g] is environment e's cooperation level at
	// generation g (Table 5's per-environment view over time).
	CoopPerEnvSeries [][]float64
	// FinalStrategies is the last generation's strategy population
	// (Tables 7–9 are censuses of these across repetitions).
	FinalStrategies []strategy.Strategy
	// FinalCollector holds the last generation's full metrics (Tables 5–6).
	FinalCollector *metrics.Collector
	// FinalFitness is the last generation's population statistics.
	FinalFitness ga.PopulationStats
}

// Engine runs the evolutionary loop. Create with New; each Engine is
// single-goroutine (parallelism happens one level up, across replicate
// runs with split RNG streams).
type Engine struct {
	cfg      Config
	r        *rng.Source
	normals  []*game.Player
	csn      []*game.Player
	byz      []*game.Player // Byzantine cohort; empty without dynamics
	registry []*game.Player
	gen      *network.Generator
	genomes  []ga.Individual

	// dyn is the perturbation model (nil when dynamics are disabled);
	// reproductions counts Reproduce calls to phase its barriers.
	dyn           *dynamics.Model
	reproductions int

	// es holds the evaluation pass's working buffers across generations;
	// after the first generation warms it, EvaluateGeneration runs
	// allocation-free.
	es tournament.EvalState

	// repro is the double-buffered offspring arena: Reproduce writes each
	// new generation into repro[reproParity] while reading parents from
	// the other buffer (or from init/immigrant vectors), then flips the
	// parity. Two buffers suffice because strategies are reinstalled from
	// the live genomes at the start of every EvaluateGeneration, before
	// the buffer they previously shared is ever rewritten. reproParity is
	// deliberately NOT reset by Reinit: the live genomes stay inside the
	// buffer they were written to, and the next Reproduce must keep
	// targeting the other one.
	repro       [2]ga.Buffers
	reproParity int
}

// New validates the configuration and builds an Engine with a random
// initial population.
func New(cfg Config) (*Engine, error) {
	e := &Engine{}
	if err := e.Reinit(cfg); err != nil {
		return nil, err
	}
	return e, nil
}

// Reinit rebuilds the engine in place for a fresh run of cfg — the arena
// reuse primitive behind session job pooling. It is exactly equivalent to
// New(cfg): the same draw sequence from the same seed, so a reinitialized
// engine replays a fresh one bit for bit. The difference is purely
// allocation: genomes are re-randomized in place, players keep their dense
// reputation stores (reset rather than rebuilt), and the evaluation pass's
// warm working buffers survive, so reinitializing for a same-shaped config
// costs a handful of small allocations instead of rebuilding the whole
// working set. Results obtained from earlier runs stay valid: everything
// they carry is either freshly allocated per run or deep-copied
// (SnapshotStrategies).
func (e *Engine) Reinit(cfg Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	e.cfg = cfg
	if e.r == nil {
		e.r = rng.New(cfg.Seed)
	} else {
		e.r.Reseed(cfg.Seed)
	}
	if e.gen == nil {
		e.gen = network.NewGenerator(cfg.Eval.Tournament.Mode)
	} else {
		e.gen.SetMode(cfg.Eval.Tournament.Mode)
	}
	e.dyn = nil
	e.byz = nil
	e.reproductions = 0

	n := cfg.PopulationSize
	if cap(e.normals) < n {
		grown := make([]*game.Player, n)
		copy(grown, e.normals)
		e.normals = grown
	}
	e.normals = e.normals[:n]
	if cap(e.genomes) < n {
		grown := make([]ga.Individual, n)
		copy(grown, e.genomes)
		e.genomes = grown
	}
	e.genomes = e.genomes[:n]
	for i := 0; i < n; i++ {
		g := e.genomes[i].Genome
		if g.Len() != strategy.Bits {
			g = bitstring.New(strategy.Bits)
		}
		// Identical draws to strategy.Random: one engine word per genome.
		g.FillRandom(e.r)
		if cfg.Constraint != nil {
			cfg.Constraint(g)
		}
		e.genomes[i] = ga.Individual{Genome: g}
		if p := e.normals[i]; p != nil {
			p.ID = network.NodeID(i)
			p.Type = game.Normal
			p.Adv = game.AdvNone
			p.Strategy = strategy.New(g)
			p.ResetForGeneration()
		} else {
			e.normals[i] = game.NewNormal(network.NodeID(i), strategy.New(g))
		}
	}
	maxCSN := cfg.Eval.MaxCSN()
	if cap(e.csn) < maxCSN {
		grown := make([]*game.Player, maxCSN)
		copy(grown, e.csn)
		e.csn = grown
	}
	e.csn = e.csn[:maxCSN]
	for i := 0; i < maxCSN; i++ {
		id := network.NodeID(n + i)
		if p := e.csn[i]; p != nil {
			p.ID = id
			p.Type = game.Selfish
			p.Adv = game.AdvNone
			p.Strategy = strategy.AllDiscard()
			p.ResetForGeneration()
		} else {
			e.csn[i] = game.NewSelfish(id)
		}
	}
	if cfg.Dynamics != nil && cfg.Dynamics.Enabled() {
		// The perturbation stream is split from the root seed through a
		// throwaway source so the engine's own stream (e.r) is untouched:
		// with dynamics disabled the evaluation replay is bit-identical.
		//
		// The rewiring walk starts at the configured base mode's position
		// on the SP↔LP axis; custom modes (whose position the name cannot
		// reveal) seed at the SP end.
		alpha, _ := network.ModeAlpha(cfg.Eval.Tournament.Mode)
		ids := cfg.PopulationSize + maxCSN + cfg.Dynamics.AdversaryCount()
		dyn, err := dynamics.NewModel(*cfg.Dynamics, rng.New(cfg.Seed).Split(), ids, alpha)
		if err != nil {
			return err
		}
		e.dyn = dyn
		e.byz = dyn.NewAdversaries(network.NodeID(cfg.PopulationSize + maxCSN))
		if cfg.Dynamics.OnOff > 0 {
			e.cfg.Eval.Tournament.RoundDriver = dyn
		}
	}
	e.registry = tournament.BuildRegistry(e.normals, e.csn, e.byz)
	// Pre-size every dense reputation store to the registry and install
	// the configured trust table, so the generational loop never grows a
	// store or recomputes cached levels mid-run.
	table := cfg.Eval.Tournament.Game.TrustTable
	for _, p := range e.registry {
		p.Rep.EnsureSize(len(e.registry))
		p.Rep.SetTable(table)
	}
	return nil
}

// NewResult returns a Result with series storage sized for the given
// generation and environment counts. Engine.Run builds its own; the island
// engine (internal/island) uses it to accumulate the aggregate view of a
// sharded run in exactly the serial shape.
func NewResult(generations, envs int) *Result {
	return &Result{
		CoopSeries:        make([]float64, 0, generations),
		MeanEnvCoopSeries: make([]float64, 0, generations),
		CoopPerEnvSeries:  make([][]float64, envs),
	}
}

// Record appends one generation's cooperation observables from the
// collector to the result's series. Environments beyond the result's
// preallocated width are dropped; missing ones record zero. It reads the
// collector's environment view directly (no per-call slice), so recording
// into pre-sized series allocates only on series growth.
func (r *Result) Record(c *metrics.Collector) {
	envs := c.Environments()
	r.CoopSeries = append(r.CoopSeries, c.CooperationLevel())
	r.MeanEnvCoopSeries = append(r.MeanEnvCoopSeries, c.MeanEnvCooperation())
	for ei := range r.CoopPerEnvSeries {
		v := 0.0
		if ei < len(envs) {
			v = envs[ei].CooperationLevel()
		}
		r.CoopPerEnvSeries[ei] = append(r.CoopPerEnvSeries[ei], v)
	}
}

// EvaluateGeneration runs the evaluation half of one generation (§4.4
// step 1–2, Fig 3): install the current genomes as strategies, reset the
// collector, play every tournament of the evaluation pass, and assign each
// individual its eq. 1 fitness. It consumes the engine's RNG stream exactly
// as the serial loop does; callers that interleave work between generations
// (the island engine's migration barriers) must not touch the stream.
func (e *Engine) EvaluateGeneration(collector *metrics.Collector) error {
	// The installed strategies share the genome vectors (no clone): the
	// evaluation pass never writes genomes, Reproduce writes only the
	// opposite arena buffer, and this reinstall runs before that buffer
	// ever comes around again — so the bits a strategy reads are immutable
	// for exactly as long as the strategy is installed. Snapshots that
	// outlive the engine deep-copy (SnapshotStrategies).
	for i, ind := range e.genomes {
		e.normals[i].Strategy = strategy.New(ind.Genome)
	}
	collector.Reset()
	if err := e.es.EvaluateWithAdversaries(e.normals, e.csn, e.byz, e.registry, &e.cfg.Eval, e.gen, e.r, collector); err != nil {
		return err
	}
	// Fitness by eq. 1.
	for i := range e.genomes {
		e.genomes[i].Fitness = e.normals[i].Acct.Fitness()
	}
	return nil
}

// Reproduce replaces the population with the next generation by the §5
// scheme (selection, crossover, mutation), applying the configured
// constraint to every offspring. When dynamics are enabled, the
// perturbation barrier fires here after reproduction — churn replaces a
// seeded fraction of the offspring with naive immigrants under fresh
// identities, and the rewiring walk may shift the route-length landscape
// for the coming generations.
func (e *Engine) Reproduce() error {
	next, err := ga.NextGenerationInto(e.genomes, &e.cfg.GA, e.r, &e.repro[e.reproParity])
	if err != nil {
		return err
	}
	e.reproParity = 1 - e.reproParity
	for i := range e.genomes {
		if e.cfg.Constraint != nil {
			e.cfg.Constraint(next[i])
		}
		e.genomes[i] = ga.Individual{Genome: next[i]}
	}
	gen := e.reproductions
	e.reproductions++
	if e.dyn != nil && e.dyn.Barrier(gen) {
		e.dyn.Churn(e.genomes, e.normals, &e.registry, e.cfg.Constraint)
		if e.dyn.Rewire() {
			e.gen.SetMode(e.dyn.PathMode())
		}
		if e.cfg.OnChurn != nil {
			e.cfg.OnChurn(gen)
		}
	}
	return nil
}

// Dynamics returns the engine's perturbation model, or nil when dynamics
// are disabled. Exposed for reporting (churn/rewire counters, current
// route-length mix); callers must not drive the model themselves.
func (e *Engine) Dynamics() *dynamics.Model { return e.dyn }

// Population returns the engine's live individuals. Between
// EvaluateGeneration and Reproduce each entry carries the fitness just
// measured; the island engine overwrites entries in place to apply
// migration. The slice header must not be resized or retained across
// generations.
func (e *Engine) Population() []ga.Individual { return e.genomes }

// SnapshotStrategies returns the strategies installed by the most recent
// EvaluateGeneration, one per individual in population order. Each entry
// is backed by its own genome copy, so snapshots stay valid after the
// engine evolves further or is reinitialized for another job.
func (e *Engine) SnapshotStrategies() []strategy.Strategy {
	out := make([]strategy.Strategy, len(e.normals))
	for i, p := range e.normals {
		out[i] = strategy.New(p.Strategy.Genome())
	}
	return out
}

// Config returns the engine's validated configuration.
func (e *Engine) Config() Config { return e.cfg }

// Run executes the configured number of generations and returns the run
// history. It is deterministic for a given Config (including Seed).
func (e *Engine) Run() (*Result, error) {
	return e.RunContext(context.Background())
}

// RunContext is Run with cooperative cancellation. The context is checked
// once per generation, at the barrier before evaluation — never inside a
// generation — so an uncancelled run consumes the RNG stream exactly as
// Run does and stays bit-identical to it.
//
// On cancellation the partial Result recorded so far is returned together
// with an error wrapping ctx.Err(): the cooperation series covers every
// completed generation, while the Final* views stay unset (FinalCollector
// is nil) because the population has already been reproduced past the
// last evaluated generation. Callers distinguish interruption from
// failure with errors.Is(err, context.Canceled).
func (e *Engine) RunContext(ctx context.Context) (*Result, error) {
	res := NewResult(e.cfg.Generations, len(e.cfg.Eval.Environments))
	collector := metrics.NewCollector()

	for gen := 0; gen < e.cfg.Generations; gen++ {
		if err := ctx.Err(); err != nil {
			return res, fmt.Errorf("core: interrupted before generation %d: %w", gen, err)
		}
		if err := e.EvaluateGeneration(collector); err != nil {
			return nil, fmt.Errorf("core: generation %d: %w", gen, err)
		}
		fitStats := ga.Stats(e.genomes)

		res.Record(collector)

		if e.cfg.OnGeneration != nil {
			e.cfg.OnGeneration(GenerationStats{
				Generation:         gen,
				Cooperation:        collector.CooperationLevel(),
				CoopPerEnv:         collector.CooperationPerEnv(),
				MeanEnvCooperation: collector.MeanEnvCooperation(),
				Fitness:            fitStats,
			})
		}

		if e.cfg.OnCheckpoint != nil && CheckpointDue(gen, e.cfg.CheckpointInterval, e.cfg.Generations) {
			best := e.genomes[fitStats.BestIndex]
			e.cfg.OnCheckpoint(Checkpoint{
				Generation:  gen,
				Best:        strategy.New(best.Genome.Clone()),
				Fitness:     best.Fitness,
				MeanFitness: fitStats.MeanFitness,
				Cooperation: collector.CooperationLevel(),
			})
		}

		if gen == e.cfg.Generations-1 {
			res.FinalStrategies = e.SnapshotStrategies()
			res.FinalCollector = collector
			res.FinalFitness = fitStats
			break
		}

		// Reproduction (§5).
		if err := e.Reproduce(); err != nil {
			return nil, fmt.Errorf("core: generation %d reproduction: %w", gen, err)
		}
	}
	return res, nil
}

// Strategies returns the engine's current strategy population (a copy);
// useful for inspecting state between manual stepping in tests.
func (e *Engine) Strategies() []strategy.Strategy {
	out := make([]strategy.Strategy, len(e.genomes))
	for i, ind := range e.genomes {
		out[i] = strategy.New(ind.Genome.Clone())
	}
	return out
}
