package core

import (
	"testing"

	"adhocga/internal/dynamics"
	"adhocga/internal/ga"
	"adhocga/internal/metrics"
	"adhocga/internal/tournament"
)

// TestReinitReplaysNew pins the arena-reuse contract of Reinit: an engine
// rebuilt in place over a previous run's buffers must replay a fresh
// New(cfg) bit-for-bit — same cooperation series, same final strategies —
// even when the previous run used a different seed, environment set, and
// generation count.
func TestReinitReplaysNew(t *testing.T) {
	envsA := []tournament.Environment{{Name: "A", CSN: 0}, {Name: "B", CSN: 2}}
	envsB := []tournament.Environment{{Name: "C", CSN: 4}}
	cfgA := smallConfig(11, envsA, 4)
	cfgB := smallConfig(23, envsB, 6)

	warm, err := New(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := warm.Run(); err != nil {
		t.Fatal(err)
	}
	if err := warm.Reinit(cfgB); err != nil {
		t.Fatal(err)
	}
	got, err := warm.Run()
	if err != nil {
		t.Fatal(err)
	}

	fresh, err := New(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	want, err := fresh.Run()
	if err != nil {
		t.Fatal(err)
	}

	if len(got.CoopSeries) != len(want.CoopSeries) {
		t.Fatalf("series length %d, want %d", len(got.CoopSeries), len(want.CoopSeries))
	}
	for g := range want.CoopSeries {
		if got.CoopSeries[g] != want.CoopSeries[g] ||
			got.MeanEnvCoopSeries[g] != want.MeanEnvCoopSeries[g] {
			t.Fatalf("generation %d: reused engine diverged: coop %v vs %v",
				g, got.CoopSeries[g], want.CoopSeries[g])
		}
	}
	for i := range want.FinalStrategies {
		if got.FinalStrategies[i].Genome().Compact() != want.FinalStrategies[i].Genome().Compact() {
			t.Fatalf("final strategy %d differs after Reinit", i)
		}
	}
}

// TestReinitWithDynamics covers the one part of Reinit that rebuilds
// rather than reuses: the perturbation model. A reused engine must replay
// a dynamics-enabled run identically, including churn barriers.
func TestReinitWithDynamics(t *testing.T) {
	envs := []tournament.Environment{{Name: "A", CSN: 2}}
	cfg := smallConfig(7, envs, 6)
	cfg.Dynamics = &dynamics.Config{
		Interval:   2,
		ChurnRate:  0.2,
		RewireProb: 0.6,
		RewireStep: 0.3,
		FreeRiders: 1,
	}
	run := func(e *Engine) []float64 {
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.CoopSeries
	}

	fresh, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := run(fresh)

	warm, err := New(smallConfig(99, envs, 3))
	if err != nil {
		t.Fatal(err)
	}
	run(warm)
	if err := warm.Reinit(cfg); err != nil {
		t.Fatal(err)
	}
	got := run(warm)

	for g := range want {
		if got[g] != want[g] {
			t.Fatalf("dynamics run diverged at generation %d: %v vs %v", g, got[g], want[g])
		}
	}
}

// TestWarmGenerationZeroAllocs measures a full warm generation —
// evaluation, fitness stats, series recording, reproduction — on an
// engine whose arenas have been through one generation already. With no
// hooks installed and pre-sized series, the steady-state loop must not
// allocate.
func TestWarmGenerationZeroAllocs(t *testing.T) {
	envs := []tournament.Environment{{Name: "A", CSN: 0}, {Name: "B", CSN: 2}}
	cfg := smallConfig(3, envs, 4)
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	collector := metrics.NewCollector()
	res := NewResult(256, len(envs))
	generation := func() {
		if err := e.EvaluateGeneration(collector); err != nil {
			t.Fatal(err)
		}
		ga.Stats(e.genomes)
		res.Record(collector)
		if err := e.Reproduce(); err != nil {
			t.Fatal(err)
		}
	}
	// Two warm-up generations so both reproduction arena buffers and the
	// collector's per-environment storage are grown.
	generation()
	generation()

	allocs := testing.AllocsPerRun(50, func() {
		res.CoopSeries = res.CoopSeries[:0]
		res.MeanEnvCoopSeries = res.MeanEnvCoopSeries[:0]
		for i := range res.CoopPerEnvSeries {
			res.CoopPerEnvSeries[i] = res.CoopPerEnvSeries[i][:0]
		}
		generation()
	})
	if allocs != 0 {
		t.Errorf("warm generation allocates %.1f times per run, want 0", allocs)
	}
}
