package island

import (
	"reflect"
	"testing"

	"adhocga/internal/core"
	"adhocga/internal/dynamics"
)

// dynTestConfig is testConfig with the full perturbation layer enabled:
// churn and rewiring at every second barrier plus a small Byzantine
// cohort (T=6 with 2 CSN leaves 3 normal seats after the free-rider).
func dynTestConfig(totalPop, gens int, seed uint64) core.Config {
	cfg := testConfig(totalPop, gens, seed)
	cfg.Dynamics = &dynamics.Config{
		Interval:   2,
		ChurnRate:  0.2,
		RewireProb: 0.6,
		RewireStep: 0.3,
		FreeRiders: 1,
	}
	return cfg
}

// TestOneIslandDynamicsBitIdenticalToSerial extends the degenerate-case
// contract to the perturbation layer: a 1-island engine with dynamics
// enabled must replay the serial engine with the same dynamics exactly —
// the perturbation stream derives from the root seed identically in both.
func TestOneIslandDynamicsBitIdenticalToSerial(t *testing.T) {
	cfg := dynTestConfig(24, 6, 42)

	serialEng, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := serialEng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if serialEng.Dynamics() == nil || serialEng.Dynamics().Replaced == 0 {
		t.Fatal("dynamics never churned; test is vacuous")
	}

	isl, err := New(Config{Core: cfg, Count: 1, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	got, err := isl.Run()
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(got.Aggregate.CoopSeries, serial.CoopSeries) {
		t.Errorf("CoopSeries diverged:\n island %v\n serial %v", got.Aggregate.CoopSeries, serial.CoopSeries)
	}
	if got.Aggregate.FinalFitness != serial.FinalFitness {
		t.Errorf("FinalFitness = %+v, want %+v", got.Aggregate.FinalFitness, serial.FinalFitness)
	}
	for i := range serial.FinalStrategies {
		if got.Aggregate.FinalStrategies[i].Key() != serial.FinalStrategies[i].Key() {
			t.Errorf("FinalStrategies[%d] = %s, want %s", i,
				got.Aggregate.FinalStrategies[i].Key(), serial.FinalStrategies[i].Key())
		}
	}
	if got.Aggregate.FinalCollector.FromByz != serial.FinalCollector.FromByz {
		t.Errorf("FromByz diverged: %+v vs %+v",
			got.Aggregate.FinalCollector.FromByz, serial.FinalCollector.FromByz)
	}
}

// TestIslandDynamicsDeterministicAcrossParallelism pins that a 4-island
// run with churn, rewiring, adversaries AND migration stays bit-identical
// at any worker count: per-island perturbation streams derive from the
// per-island seeds, never from scheduling.
func TestIslandDynamicsDeterministicAcrossParallelism(t *testing.T) {
	run := func(par int) runFingerprint {
		eng, err := New(Config{
			Core:        dynTestConfig(24, 6, 99),
			Count:       4,
			Interval:    2,
			Migrants:    1,
			Parallelism: par,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		return fingerprint(res)
	}
	want := run(1)
	if want.Moved == 0 {
		t.Fatal("no migration happened; test is vacuous")
	}
	for _, par := range []int{2, 8} {
		if got := run(par); !reflect.DeepEqual(got, want) {
			t.Errorf("parallelism %d diverged from serial", par)
		}
	}
}
