// Package island implements an island-model (distributed) genetic
// algorithm on top of the serial evolution engine of internal/core: the
// population of §5 is sharded into N subpopulations ("islands") evolved
// concurrently on the shared worker pool (internal/runner), with periodic
// migration of elite genomes between islands over a pluggable topology.
// Island models are the standard scaling path for GAs on ad hoc network
// problems (Danoy et al., "Optimal Design of Ad Hoc Injection Networks by
// Using Genetic Algorithms"), and migration schemes of this shape are
// known to improve GA quality on dynamic routing problems (Nair et al.,
// immigrants and memory schemes).
//
// # Determinism contract
//
// Results are bit-identical for a fixed Config regardless of worker count
// or GOMAXPROCS:
//
//   - every island owns an independent rng.Source stream whose seed is
//     derived up front from the root seed, in island order, before any
//     parallel work starts;
//   - islands never share mutable state during evaluation — each island is
//     a complete core.Engine with its own players, reputation stores, and
//     path generator;
//   - migration happens only at generation barriers, after every island's
//     evaluation of the generation has finished, applied serially in
//     (source island, destination) order;
//   - every random choice migration makes (random-pairs matching, random
//     replacement slots) draws from one dedicated migration stream, also
//     derived from the root seed — never from an island's own stream, so
//     migration policy cannot perturb island evolution streams.
//
// A 1-island configuration inherits the root seed unchanged, skips
// migration entirely, and is therefore bit-identical to running the serial
// core.Engine on the same configuration (pinned by golden tests).
package island

import (
	"context"
	"fmt"

	"adhocga/internal/core"
	"adhocga/internal/ga"
	"adhocga/internal/metrics"
	"adhocga/internal/rng"
	"adhocga/internal/runner"
	"adhocga/internal/strategy"
)

// Config parameterizes an island-model run. Core describes the whole
// experiment exactly as for the serial engine — total population,
// generations, evaluation scheme, GA operators, root seed — and the island
// fields describe how that population is sharded and re-mixed.
type Config struct {
	// Core is the serial-engine configuration of the whole run. Its
	// PopulationSize is the total across islands and must divide evenly
	// by Count; its Seed is the root seed all island and migration
	// streams derive from; its OnGeneration hook is ignored (use the
	// island-level OnGeneration instead).
	Core core.Config
	// Count is the number of islands (≥1). One island degenerates to the
	// serial engine, bit for bit.
	Count int
	// Topology selects which islands exchange migrants at each barrier;
	// empty means Ring.
	Topology Topology
	// Interval is the number of generations between migration barriers;
	// 0 means DefaultInterval. With Interval i, migrations happen after
	// generations i-1, 2i-1, … (never after the final generation). To
	// evolve fully isolated islands, set Interval ≥ Core.Generations.
	Interval int
	// Migrants is the number of elite genomes each source island sends
	// along every topology edge per barrier; 0 means DefaultMigrants
	// (per the repo-wide "zero keeps the default" spec convention, 0 is
	// NOT "no migration" — use Interval for that). Must stay below the
	// per-island population.
	Migrants int
	// Replace selects which residents incoming migrants evict; empty
	// means ReplaceWorst.
	Replace Replacement
	// Parallelism is the worker count for per-generation island
	// evaluation; ≤0 means GOMAXPROCS. It affects wall-clock only, never
	// results.
	Parallelism int
	// OnGeneration, when non-nil, receives each generation's aggregate
	// and per-island snapshot at the barrier, after evaluation and before
	// migration.
	OnGeneration func(GenerationStats)
	// OnCheckpoint, when non-nil and Core.CheckpointInterval > 0, receives
	// the cross-island champion (best of the just-evaluated generation over
	// all islands, ties broken by lowest island then lowest index) at every
	// Core.CheckpointInterval-th barrier and at the final one. It fires
	// after evaluation and before migration, is purely observational, and
	// never consumes any engine or migration randomness. Core.OnCheckpoint
	// is ignored (per-island hooks are stripped, like Core.OnGeneration).
	OnCheckpoint func(core.Checkpoint)
}

// GenerationStats is the per-generation snapshot handed to OnGeneration.
type GenerationStats struct {
	Generation int
	// Cooperation and MeanEnvCooperation are the run-wide §6.2 levels,
	// aggregated over every island's tournaments this generation.
	Cooperation        float64
	MeanEnvCooperation float64
	// Islands holds each island's fitness/diversity statistics, in island
	// order.
	Islands []ga.PopulationStats
}

// Trace is one island's per-generation convergence history.
type Trace struct {
	// Best, Mean: the island's best and mean eq. 1 fitness per generation.
	Best []float64
	Mean []float64
	// Diversity is the island's mean pairwise Hamming distance per
	// generation, normalized by genome length (see ga.PopulationStats).
	Diversity []float64
}

// Result is the outcome of an island-model run.
type Result struct {
	// Aggregate is the run-wide view in exactly the serial engine's
	// shape: cooperation series over all islands' tournaments, the pooled
	// final strategy population (islands concatenated in order), merged
	// final metrics, and whole-population fitness statistics. For one
	// island it is bit-identical to core.Engine.Run's Result.
	Aggregate *core.Result
	// PerIsland holds each island's convergence/diversity trace, recorded
	// at the barrier after evaluation (before migration touches the
	// population).
	PerIsland []Trace
	// Champion is the best individual of the final generation across all
	// islands (ties broken by lowest island, then lowest index).
	Champion ga.Individual
	// MigrationEvents counts barriers at which migration ran;
	// MigrantsMoved counts genomes copied between islands in total.
	MigrationEvents int
	MigrantsMoved   int
}

// The defaults filled in for zero-valued Config fields — exported so the
// reporting layer (experiment.SummarizeIslands) can display the
// parameters a defaulted run actually used without duplicating them.
const (
	DefaultInterval = 10
	DefaultMigrants = 1
)

// withDefaults returns a copy with the zero-valued island fields filled
// with their documented defaults and the topology/replacement names
// normalized to canonical form (Edges and the migration switch match
// canonical names only, so an accepted alias like "fully-connected" must
// not survive past construction). Unknown names pass through unchanged
// for Validate to reject.
func (c Config) withDefaults() Config {
	if t, err := ParseTopology(string(c.Topology)); err == nil {
		c.Topology = t // also resolves "" to Ring
	}
	if r, err := ParseReplacement(string(c.Replace)); err == nil {
		c.Replace = r // also resolves "" to ReplaceWorst
	}
	if c.Interval == 0 {
		c.Interval = DefaultInterval
	}
	if c.Migrants == 0 {
		c.Migrants = DefaultMigrants
	}
	return c
}

// islandConfig builds island i's serial-engine configuration: the shared
// Core with the per-island population share and the island's own seed. The
// OnGeneration hook is stripped — the island engine reports through its own
// hook at barriers.
func (c Config) islandConfig(per int, seed uint64) core.Config {
	cfg := c.Core
	cfg.PopulationSize = per
	cfg.Seed = seed
	cfg.OnGeneration = nil
	cfg.OnCheckpoint = nil
	return cfg
}

// Validate checks the configuration, including that every island's share
// of the population still satisfies the evaluation scheme's constraints
// (tournament size vs per-island population).
func (c Config) Validate() error {
	c = c.withDefaults()
	if c.Count < 1 {
		return fmt.Errorf("island: count %d < 1", c.Count)
	}
	if c.Core.PopulationSize%c.Count != 0 {
		return fmt.Errorf("island: population %d does not divide evenly into %d islands", c.Core.PopulationSize, c.Count)
	}
	per := c.Core.PopulationSize / c.Count
	if _, err := ParseTopology(string(c.Topology)); err != nil {
		return err
	}
	if _, err := ParseReplacement(string(c.Replace)); err != nil {
		return err
	}
	if c.Interval < 1 {
		return fmt.Errorf("island: migration interval %d < 1", c.Interval)
	}
	if c.Migrants < 0 || c.Migrants >= per {
		return fmt.Errorf("island: %d migrants per edge outside [0, %d) (per-island population)", c.Migrants, per)
	}
	probe := c.islandConfig(per, 1)
	if err := probe.Validate(); err != nil {
		return fmt.Errorf("island: per-island population %d (= %d / %d islands) is invalid: %w",
			per, c.Core.PopulationSize, c.Count, err)
	}
	return nil
}

// Engine evolves Count subpopulations concurrently with periodic
// migration. Create with New; Run may be called once.
type Engine struct {
	cfg        Config
	islands    []*core.Engine
	collectors []*metrics.Collector
	migr       *rng.Source // migration stream; nil for a single island
}

// New validates the configuration, derives every island's seed from the
// root seed (in island order, before any parallelism), and builds the
// island engines.
func New(cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	per := cfg.Core.PopulationSize / cfg.Count
	e := &Engine{
		cfg:        cfg,
		islands:    make([]*core.Engine, cfg.Count),
		collectors: make([]*metrics.Collector, cfg.Count),
	}
	seeds := make([]uint64, cfg.Count)
	if cfg.Count == 1 {
		// The degenerate case inherits the root seed unchanged so that a
		// 1-island run replays the serial engine exactly.
		seeds[0] = cfg.Core.Seed
	} else {
		master := rng.New(cfg.Core.Seed)
		for i := range seeds {
			seeds[i] = master.Uint64()
		}
		e.migr = rng.New(master.Uint64())
	}
	for i := range e.islands {
		eng, err := core.New(cfg.islandConfig(per, seeds[i]))
		if err != nil {
			return nil, fmt.Errorf("island %d: %w", i, err)
		}
		e.islands[i] = eng
		e.collectors[i] = metrics.NewCollector()
	}
	return e, nil
}

// Run executes the configured number of generations: every generation,
// all islands evaluate concurrently on the worker pool, the barrier merges
// their observables into the aggregate series, migration runs at every
// Interval-th barrier, and each island then reproduces with its own
// stream. Deterministic for a fixed Config at any parallelism level.
func (e *Engine) Run() (*Result, error) {
	return e.RunContext(context.Background())
}

// RunContext is Run with cooperative cancellation, checked once per
// generation at the barrier before the islands evaluate — never inside a
// generation — so an uncancelled run is bit-identical to Run. On
// cancellation the partial Result (aggregate series and per-island traces
// for every completed generation; no final views, no champion) is
// returned together with an error wrapping ctx.Err().
func (e *Engine) RunContext(ctx context.Context) (*Result, error) {
	n := len(e.islands)
	gens := e.cfg.Core.Generations
	res := &Result{
		Aggregate: core.NewResult(gens, len(e.cfg.Core.Eval.Environments)),
		PerIsland: make([]Trace, n),
	}
	merged := metrics.NewCollector()
	islandStats := make([]ga.PopulationStats, n)

	for gen := 0; gen < gens; gen++ {
		if err := ctx.Err(); err != nil {
			return res, fmt.Errorf("island: interrupted before generation %d: %w", gen, err)
		}
		err := runner.RunContext(ctx, n, func(i int) error {
			return e.islands[i].EvaluateGeneration(e.collectors[i])
		}, runner.Options{Parallelism: e.cfg.Parallelism})
		if err != nil {
			return res, fmt.Errorf("island: generation %d: %w", gen, err)
		}

		// Barrier: fold the per-island observables into the run-wide view
		// and record each island's convergence point.
		merged.Reset()
		for i := range e.islands {
			merged.Merge(e.collectors[i])
			islandStats[i] = ga.Stats(e.islands[i].Population())
			tr := &res.PerIsland[i]
			tr.Best = append(tr.Best, islandStats[i].BestFitness)
			tr.Mean = append(tr.Mean, islandStats[i].MeanFitness)
			tr.Diversity = append(tr.Diversity, islandStats[i].Diversity)
		}
		res.Aggregate.Record(merged)

		if e.cfg.OnGeneration != nil {
			e.cfg.OnGeneration(GenerationStats{
				Generation:         gen,
				Cooperation:        merged.CooperationLevel(),
				MeanEnvCooperation: merged.MeanEnvCooperation(),
				Islands:            append([]ga.PopulationStats(nil), islandStats...),
			})
		}

		if e.cfg.OnCheckpoint != nil && core.CheckpointDue(gen, e.cfg.Core.CheckpointInterval, gens) {
			bi, mean := 0, 0.0
			for i, st := range islandStats {
				if st.BestFitness > islandStats[bi].BestFitness {
					bi = i
				}
				mean += st.MeanFitness
			}
			best := e.islands[bi].Population()[islandStats[bi].BestIndex]
			e.cfg.OnCheckpoint(core.Checkpoint{
				Generation:  gen,
				Best:        strategy.New(best.Genome.Clone()),
				Fitness:     best.Fitness,
				MeanFitness: mean / float64(n),
				Cooperation: merged.CooperationLevel(),
			})
		}

		if gen == gens-1 {
			e.finalize(res, merged)
			break
		}

		// After New, Migrants is always ≥ 1 (zero defaults, negatives are
		// rejected), so the interval alone decides whether a barrier
		// migrates.
		if n > 1 && (gen+1)%e.cfg.Interval == 0 {
			moved, err := e.migrate()
			if err != nil {
				return nil, fmt.Errorf("island: generation %d migration: %w", gen, err)
			}
			res.MigrationEvents++
			res.MigrantsMoved += moved
		}

		// Reproduction, serially in island order; each island consumes
		// only its own stream, so order affects nothing but is kept fixed
		// for clarity.
		for i := range e.islands {
			if err := e.islands[i].Reproduce(); err != nil {
				return nil, fmt.Errorf("island %d: generation %d reproduction: %w", i, gen, err)
			}
		}
	}
	return res, nil
}

// finalize fills the result's final-generation views: the pooled strategy
// population and fitness statistics over all islands, the merged metrics,
// and the champion.
func (e *Engine) finalize(res *Result, merged *metrics.Collector) {
	var pool []ga.Individual
	var strats []strategy.Strategy
	for _, isl := range e.islands {
		pool = append(pool, isl.Population()...)
		strats = append(strats, isl.SnapshotStrategies()...)
	}
	res.Aggregate.FinalStrategies = strats
	res.Aggregate.FinalCollector = merged
	res.Aggregate.FinalFitness = ga.Stats(pool)
	best := res.Aggregate.FinalFitness.BestIndex
	res.Champion = ga.Individual{
		Genome:  pool[best].Genome.Clone(),
		Fitness: pool[best].Fitness,
	}
}

// migrate runs one migration barrier: snapshot every island's elites, then
// copy them along the topology's edges, evicting residents per the
// replacement policy. Elites are snapshotted before any replacement so an
// island forwards only its own evolved genomes, never migrants it received
// in the same barrier. Returns the number of genomes moved.
func (e *Engine) migrate() (int, error) {
	n := len(e.islands)
	edges, err := e.cfg.Topology.Edges(n, e.migr)
	if err != nil {
		return 0, err
	}
	elites := make([][]ga.Individual, n)
	for s := range e.islands {
		elites[s] = topK(e.islands[s].Population(), e.cfg.Migrants)
	}
	moved := 0
	for s, dests := range edges {
		for _, d := range dests {
			pop := e.islands[d].Population()
			k := len(elites[s])
			// Pick the k eviction slots up front, distinct within the
			// edge: replacing one at a time would let a migrant weaker
			// than every resident become the new worst and be overwritten
			// by the very next migrant of the same edge.
			var slots []int
			switch e.cfg.Replace {
			case ReplaceRandom:
				slots = e.migr.Perm(len(pop))[:k]
			default: // ReplaceWorst
				slots = worstK(pop, k)
			}
			for j, m := range elites[s] {
				pop[slots[j]] = ga.Individual{Genome: m.Genome.Clone(), Fitness: m.Fitness}
				moved++
			}
		}
	}
	return moved, nil
}

// topK returns clones of the k fittest individuals, fitness descending,
// ties broken by lowest index.
func topK(pop []ga.Individual, k int) []ga.Individual {
	if k > len(pop) {
		k = len(pop)
	}
	idx := make([]int, len(pop))
	for i := range idx {
		idx[i] = i
	}
	// Insertion sort by descending fitness, stable on index; populations
	// are small (tens per island), so O(n²) is fine here.
	for i := 1; i < len(idx); i++ {
		j := i
		for j > 0 && pop[idx[j]].Fitness > pop[idx[j-1]].Fitness {
			idx[j], idx[j-1] = idx[j-1], idx[j]
			j--
		}
	}
	out := make([]ga.Individual, k)
	for i := 0; i < k; i++ {
		out[i] = ga.Individual{
			Genome:  pop[idx[i]].Genome.Clone(),
			Fitness: pop[idx[i]].Fitness,
		}
	}
	return out
}

// worstK returns the indexes of the k lowest-fitness individuals, worst
// first, ties broken by lowest index.
func worstK(pop []ga.Individual, k int) []int {
	if k > len(pop) {
		k = len(pop)
	}
	idx := make([]int, len(pop))
	for i := range idx {
		idx[i] = i
	}
	// Insertion sort by ascending fitness, stable on index.
	for i := 1; i < len(idx); i++ {
		j := i
		for j > 0 && pop[idx[j]].Fitness < pop[idx[j-1]].Fitness {
			idx[j], idx[j-1] = idx[j-1], idx[j]
			j--
		}
	}
	return idx[:k]
}
