package island

import (
	"fmt"

	"adhocga/internal/rng"
)

// Topology names a migration topology: which islands exchange elites at a
// migration barrier. The island model leaves this choice open; the three
// standard shapes below cover the designs compared in the distributed-GA
// literature (e.g. Danoy et al. on ad hoc injection networks).
type Topology string

// The registered migration topologies.
const (
	// Ring sends migrants from island i to island (i+1) mod n — the
	// classic unidirectional stepping-stone model. Slowest mixing, best
	// at preserving between-island diversity.
	Ring Topology = "ring"
	// FullyConnected sends migrants from every island to every other
	// island. Fastest mixing; with aggressive intervals it approaches
	// panmixia.
	FullyConnected Topology = "full"
	// RandomPairs draws a fresh random perfect matching at every
	// migration barrier and exchanges migrants along each pair in both
	// directions; with an odd island count one island sits the round out.
	// The matching is drawn from the engine's dedicated migration stream,
	// so it is deterministic for a fixed root seed.
	RandomPairs Topology = "random-pairs"
)

// ParseTopology resolves a topology name, accepting the canonical names
// plus common aliases ("fully-connected", "complete", "random"). An empty
// string resolves to Ring, the default.
func ParseTopology(name string) (Topology, error) {
	switch name {
	case "", string(Ring):
		return Ring, nil
	case string(FullyConnected), "fully-connected", "complete":
		return FullyConnected, nil
	case string(RandomPairs), "random":
		return RandomPairs, nil
	default:
		return "", fmt.Errorf("island: unknown topology %q (want ring, full, or random-pairs)", name)
	}
}

// Edges returns, for one migration barrier over n islands, the destination
// islands of each source island: dests[s] lists every island that receives
// source s's elites this barrier. Destination order is deterministic.
// RandomPairs consumes the given stream; the fixed topologies ignore it.
func (t Topology) Edges(n int, r *rng.Source) ([][]int, error) {
	dests := make([][]int, n)
	if n < 2 {
		return dests, nil // nothing to migrate between
	}
	switch t {
	case Ring:
		for i := 0; i < n; i++ {
			dests[i] = []int{(i + 1) % n}
		}
	case FullyConnected:
		for i := 0; i < n; i++ {
			row := make([]int, 0, n-1)
			for j := 0; j < n; j++ {
				if j != i {
					row = append(row, j)
				}
			}
			dests[i] = row
		}
	case RandomPairs:
		perm := r.Perm(n)
		for k := 0; k+1 < n; k += 2 {
			a, b := perm[k], perm[k+1]
			dests[a] = []int{b}
			dests[b] = []int{a}
		}
	default:
		return nil, fmt.Errorf("island: unknown topology %q", t)
	}
	return dests, nil
}

// Replacement names the policy deciding which resident individuals a
// destination island evicts for incoming migrants.
type Replacement string

// The registered replacement policies.
const (
	// ReplaceWorst evicts the k lowest-fitness residents for an edge's k
	// migrants (ties broken by lowest index), the conventional elitist
	// policy.
	ReplaceWorst Replacement = "worst"
	// ReplaceRandom evicts uniformly drawn residents (distinct within
	// each topology edge), trading selection pressure for diversity.
	// Draws come from the engine's migration stream, never from an
	// island's own stream.
	ReplaceRandom Replacement = "random"
)

// ParseReplacement resolves a replacement-policy name; empty resolves to
// ReplaceWorst, the default.
func ParseReplacement(name string) (Replacement, error) {
	switch name {
	case "", string(ReplaceWorst):
		return ReplaceWorst, nil
	case string(ReplaceRandom):
		return ReplaceRandom, nil
	default:
		return "", fmt.Errorf("island: unknown replacement policy %q (want worst or random)", name)
	}
}
