package island

import (
	"fmt"
	"runtime"
	"testing"

	"adhocga/internal/core"
	"adhocga/internal/ga"
	"adhocga/internal/game"
	"adhocga/internal/network"
	"adhocga/internal/tournament"
)

// benchConfig sizes one island-scaling workload. The total evaluation work
// per generation is invariant in the island count — every normal plays
// PlaysPerEnv times per environment regardless of sharding — so the
// islands=N timing measures parallel speedup over identical work, not a
// smaller problem. Population 320 divides evenly by 1, 2, 4 and 8, and
// every resulting share is itself a multiple of the T−CSN = 20 tournament
// seats, so no island needs top-up plays and the tournament count is the
// same at every island count.
func benchConfig(seed uint64) core.Config {
	return core.Config{
		PopulationSize: 320,
		Generations:    4,
		Seed:           seed,
		Eval: tournament.EvalConfig{
			TournamentSize: 24,
			PlaysPerEnv:    1,
			Environments:   []tournament.Environment{{Name: "TE", CSN: 4}},
			Tournament: tournament.Config{
				Rounds: 150,
				Mode:   network.ShorterPaths(),
				Game:   game.DefaultConfig(),
			},
		},
		GA: ga.PaperConfig(),
	}
}

// BenchmarkIslandEvolve records island-model scaling: the same total
// evolution workload sharded over 1, 2, 4 and 8 islands. CI runs it over
// the full islands × GOMAXPROCS matrix (-cpu 1,2,4,8), so every row in
// BENCH_islands.json carries the -N procs suffix plus the cores metric
// below, and benchstat comparing islands=4-4 against islands=1-4 reads
// off the real parallel speedup (target ≥2x at 4 cores). On a single
// core (-cpu 1, and the gate rows of BENCH_hotpath.json) the variants
// should tie instead, which bounds the engine's coordination overhead.
func BenchmarkIslandEvolve(b *testing.B) {
	for _, n := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("islands=%d", n), func(b *testing.B) {
			b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "cores")
			for i := 0; i < b.N; i++ {
				eng, err := New(Config{
					Core:     benchConfig(1),
					Count:    n,
					Topology: Ring,
					Interval: 2,
					Migrants: 2,
				})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := eng.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMigrate isolates the migration barrier itself (fully-connected,
// the densest topology) so its cost can be tracked against the evaluation
// work it amortizes over.
func BenchmarkMigrate(b *testing.B) {
	eng, err := New(Config{
		Core:     benchConfig(1),
		Count:    8,
		Topology: FullyConnected,
		Interval: 1,
		Migrants: 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.migrate(); err != nil {
			b.Fatal(err)
		}
	}
}
