package island

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"adhocga/internal/bitstring"
	"adhocga/internal/core"
	"adhocga/internal/ga"
	"adhocga/internal/game"
	"adhocga/internal/network"
	"adhocga/internal/rng"
	"adhocga/internal/tournament"
)

// testConfig builds a small, fast evolution configuration whose population
// divides evenly into 1, 2, 3, 4, 6 or 8 islands while still satisfying
// the tournament-size constraint (T−CSN = 4 normals ≤ 6 = pop/8).
func testConfig(totalPop, gens int, seed uint64) core.Config {
	return core.Config{
		PopulationSize: totalPop,
		Generations:    gens,
		Seed:           seed,
		Eval: tournament.EvalConfig{
			TournamentSize: 6,
			PlaysPerEnv:    1,
			Environments:   []tournament.Environment{{Name: "TE", CSN: 2}},
			Tournament: tournament.Config{
				Rounds: 20,
				Mode:   network.ShorterPaths(),
				Game:   game.DefaultConfig(),
			},
		},
		GA: ga.PaperConfig(),
	}
}

func TestTopologyEdges(t *testing.T) {
	t.Run("ring", func(t *testing.T) {
		got, err := Ring.Edges(4, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := [][]int{{1}, {2}, {3}, {0}}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("Ring.Edges(4) = %v, want %v", got, want)
		}
	})
	t.Run("ring-2", func(t *testing.T) {
		got, _ := Ring.Edges(2, nil)
		want := [][]int{{1}, {0}}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("Ring.Edges(2) = %v, want %v", got, want)
		}
	})
	t.Run("full", func(t *testing.T) {
		got, err := FullyConnected.Edges(3, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := [][]int{{1, 2}, {0, 2}, {0, 1}}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("FullyConnected.Edges(3) = %v, want %v", got, want)
		}
	})
	t.Run("random-pairs", func(t *testing.T) {
		r := rng.New(7)
		for trial := 0; trial < 50; trial++ {
			for _, n := range []int{2, 4, 5, 8} {
				edges, err := RandomPairs.Edges(n, r)
				if err != nil {
					t.Fatal(err)
				}
				// Every island has 0 or 1 partners; partnerships are
				// mutual; exactly n - n%2 islands are paired.
				paired := 0
				for i, dests := range edges {
					if len(dests) > 1 {
						t.Fatalf("n=%d island %d has %d partners", n, i, len(dests))
					}
					if len(dests) == 1 {
						paired++
						j := dests[0]
						if j == i {
							t.Fatalf("n=%d island %d paired with itself", n, i)
						}
						if len(edges[j]) != 1 || edges[j][0] != i {
							t.Fatalf("n=%d pairing %d→%d not mutual: %v", n, i, j, edges[j])
						}
					}
				}
				if want := n - n%2; paired != want {
					t.Fatalf("n=%d has %d paired islands, want %d", n, paired, want)
				}
			}
		}
	})
	t.Run("single-island", func(t *testing.T) {
		for _, topo := range []Topology{Ring, FullyConnected, RandomPairs} {
			edges, err := topo.Edges(1, rng.New(1))
			if err != nil {
				t.Fatal(err)
			}
			if len(edges) != 1 || len(edges[0]) != 0 {
				t.Errorf("%s.Edges(1) = %v, want one empty row", topo, edges)
			}
		}
	})
	t.Run("unknown", func(t *testing.T) {
		if _, err := Topology("star").Edges(4, nil); err == nil {
			t.Error("unknown topology did not error")
		}
	})
}

func TestParseTopologyAndReplacement(t *testing.T) {
	for name, want := range map[string]Topology{
		"": Ring, "ring": Ring, "full": FullyConnected,
		"fully-connected": FullyConnected, "complete": FullyConnected,
		"random-pairs": RandomPairs, "random": RandomPairs,
	} {
		got, err := ParseTopology(name)
		if err != nil || got != want {
			t.Errorf("ParseTopology(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParseTopology("mesh"); err == nil {
		t.Error("ParseTopology accepted an unknown name")
	}
	for name, want := range map[string]Replacement{
		"": ReplaceWorst, "worst": ReplaceWorst, "random": ReplaceRandom,
	} {
		got, err := ParseReplacement(name)
		if err != nil || got != want {
			t.Errorf("ParseReplacement(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParseReplacement("best"); err == nil {
		t.Error("ParseReplacement accepted an unknown name")
	}
}

func TestConfigValidate(t *testing.T) {
	base := testConfig(48, 4, 1)
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"zero-count", func(c *Config) { c.Count = -1 }},
		{"indivisible", func(c *Config) { c.Count = 5 }},
		{"bad-topology", func(c *Config) { c.Topology = "mesh" }},
		{"bad-replace", func(c *Config) { c.Replace = "best" }},
		{"negative-interval", func(c *Config) { c.Interval = -3 }},
		{"too-many-migrants", func(c *Config) { c.Count = 8; c.Migrants = 6 }},
		{"island-too-small", func(c *Config) { c.Count = 24 }}, // 2 normals < T−CSN
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := Config{Core: base, Count: 4}
			tc.mut(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Errorf("Validate accepted %+v", cfg)
			}
			if _, err := New(cfg); err == nil {
				t.Errorf("New accepted %+v", cfg)
			}
		})
	}
	good := Config{Core: base, Count: 4}
	if err := good.Validate(); err != nil {
		t.Errorf("Validate rejected a good config: %v", err)
	}
}

// TestOneIslandBitIdenticalToSerial pins the degenerate-case contract: a
// 1-island engine must replay the serial core engine exactly — same
// cooperation series bits, same final strategies, same fitness statistics.
func TestOneIslandBitIdenticalToSerial(t *testing.T) {
	cfg := testConfig(24, 5, 42)

	serialEng, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := serialEng.Run()
	if err != nil {
		t.Fatal(err)
	}

	isl, err := New(Config{Core: cfg, Count: 1, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	got, err := isl.Run()
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(got.Aggregate.CoopSeries, serial.CoopSeries) {
		t.Errorf("CoopSeries diverged:\n island %v\n serial %v", got.Aggregate.CoopSeries, serial.CoopSeries)
	}
	if !reflect.DeepEqual(got.Aggregate.MeanEnvCoopSeries, serial.MeanEnvCoopSeries) {
		t.Error("MeanEnvCoopSeries diverged")
	}
	if !reflect.DeepEqual(got.Aggregate.CoopPerEnvSeries, serial.CoopPerEnvSeries) {
		t.Error("CoopPerEnvSeries diverged")
	}
	if got.Aggregate.FinalFitness != serial.FinalFitness {
		t.Errorf("FinalFitness = %+v, want %+v", got.Aggregate.FinalFitness, serial.FinalFitness)
	}
	if len(got.Aggregate.FinalStrategies) != len(serial.FinalStrategies) {
		t.Fatalf("FinalStrategies length %d, want %d", len(got.Aggregate.FinalStrategies), len(serial.FinalStrategies))
	}
	for i := range serial.FinalStrategies {
		if got.Aggregate.FinalStrategies[i].Key() != serial.FinalStrategies[i].Key() {
			t.Errorf("FinalStrategies[%d] = %s, want %s", i,
				got.Aggregate.FinalStrategies[i].Key(), serial.FinalStrategies[i].Key())
		}
	}
	if got.Aggregate.FinalCollector.CooperationLevel() != serial.FinalCollector.CooperationLevel() {
		t.Error("FinalCollector cooperation diverged")
	}
	if got.Aggregate.FinalCollector.FromNormal != serial.FinalCollector.FromNormal {
		t.Error("FromNormal counts diverged")
	}
	if got.MigrationEvents != 0 || got.MigrantsMoved != 0 {
		t.Errorf("single island migrated: %d events, %d moved", got.MigrationEvents, got.MigrantsMoved)
	}
}

// runFingerprint reduces a Result to the comparable signal of a run: the
// aggregate series, champion, per-island traces, and final pool.
type runFingerprint struct {
	Coop      []float64
	PerIsland []Trace
	Champion  string
	ChampFit  float64
	Final     []string
	Moved     int
}

func fingerprint(res *Result) runFingerprint {
	fp := runFingerprint{
		Coop:      res.Aggregate.CoopSeries,
		PerIsland: res.PerIsland,
		Champion:  res.Champion.Genome.String(),
		ChampFit:  res.Champion.Fitness,
		Moved:     res.MigrantsMoved,
	}
	for _, s := range res.Aggregate.FinalStrategies {
		fp.Final = append(fp.Final, s.Key())
	}
	return fp
}

// TestDeterministicAcrossParallelism pins the multi-island determinism
// contract: a fixed-seed 4-island run produces identical output at any
// worker count and any GOMAXPROCS.
func TestDeterministicAcrossParallelism(t *testing.T) {
	for _, topo := range []Topology{Ring, FullyConnected, RandomPairs} {
		for _, replace := range []Replacement{ReplaceWorst, ReplaceRandom} {
			t.Run(fmt.Sprintf("%s-%s", topo, replace), func(t *testing.T) {
				run := func(par, gomaxprocs int) runFingerprint {
					if gomaxprocs > 0 {
						prev := runtime.GOMAXPROCS(gomaxprocs)
						defer runtime.GOMAXPROCS(prev)
					}
					eng, err := New(Config{
						Core:     testConfig(24, 6, 99),
						Count:    4,
						Topology: topo,
						Interval: 2,
						Migrants: 2,
						Replace:  replace,
						// Parallelism ≤0 resolves to GOMAXPROCS inside
						// the runner, so the gomaxprocs variants exercise
						// genuinely different worker counts.
						Parallelism: par,
					})
					if err != nil {
						t.Fatal(err)
					}
					res, err := eng.Run()
					if err != nil {
						t.Fatal(err)
					}
					return fingerprint(res)
				}
				want := run(1, 1)
				if want.Moved == 0 {
					t.Fatal("no migration happened; test is vacuous")
				}
				for _, par := range []int{2, 8} {
					if got := run(par, 0); !reflect.DeepEqual(got, want) {
						t.Errorf("parallelism %d diverged from serial", par)
					}
				}
				if got := run(0, 8); !reflect.DeepEqual(got, want) {
					t.Error("GOMAXPROCS=8 diverged from GOMAXPROCS=1")
				}
			})
		}
	}
}

// TestTopologyAliasesRunToCompletion pins the regression where an alias
// accepted by validation ("fully-connected", "random") survived to the
// first migration barrier uncanonicalized and killed the run there.
func TestTopologyAliasesRunToCompletion(t *testing.T) {
	for _, alias := range []string{"fully-connected", "complete", "random"} {
		eng, err := New(Config{
			Core:     testConfig(24, 3, 3),
			Count:    4,
			Topology: Topology(alias),
			Interval: 1,
			Replace:  ReplaceRandom,
		})
		if err != nil {
			t.Fatalf("alias %q rejected: %v", alias, err)
		}
		res, err := eng.Run()
		if err != nil {
			t.Fatalf("alias %q failed at runtime: %v", alias, err)
		}
		if res.MigrantsMoved == 0 {
			t.Errorf("alias %q moved no migrants", alias)
		}
	}
}

// TestMigrationReplacesWorst hand-crafts island populations and checks the
// worst-replacement policy moves exactly the elite genomes onto the worst
// residents along ring edges.
func TestMigrationReplacesWorst(t *testing.T) {
	eng, err := New(Config{
		Core:     testConfig(24, 2, 5),
		Count:    4,
		Topology: Ring,
		Interval: 1,
		Migrants: 2,
		Replace:  ReplaceWorst,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Give island s fitnesses 100s+i so elites and worsts are unambiguous:
	// island s's elites are indexes 5,4 (fitness 100s+5, 100s+4), its
	// worsts are indexes 0,1.
	marker := func(s, i int) bitstring.Bits {
		b := bitstring.New(13)
		if s&1 != 0 {
			b.Set(0, true)
		}
		if s&2 != 0 {
			b.Set(1, true)
		}
		if i&1 != 0 {
			b.Set(2, true)
		}
		if i&2 != 0 {
			b.Set(3, true)
		}
		if i&4 != 0 {
			b.Set(4, true)
		}
		return b
	}
	for s, isl := range eng.islands {
		pop := isl.Population()
		for i := range pop {
			pop[i] = ga.Individual{Genome: marker(s, i), Fitness: float64(100*s + i)}
		}
	}
	moved, err := eng.migrate()
	if err != nil {
		t.Fatal(err)
	}
	if moved != 8 { // 4 edges × 2 migrants
		t.Fatalf("moved %d migrants, want 8", moved)
	}
	for d := range eng.islands {
		s := (d + 3) % 4 // ring source of island d
		pop := eng.islands[d].Population()
		// Slots 0 and 1 (the two worst) now hold source s's elites 5, 4.
		if pop[0].Genome.String() != marker(s, 5).String() || pop[0].Fitness != float64(100*s+5) {
			t.Errorf("island %d slot 0 = %s fit %v, want source %d elite 5", d, pop[0].Genome, pop[0].Fitness, s)
		}
		if pop[1].Genome.String() != marker(s, 4).String() || pop[1].Fitness != float64(100*s+4) {
			t.Errorf("island %d slot 1 = %s fit %v, want source %d elite 4", d, pop[1].Genome, pop[1].Fitness, s)
		}
		// The island's own elites are untouched.
		for i := 2; i < len(pop); i++ {
			if pop[i].Genome.String() != marker(d, i).String() {
				t.Errorf("island %d slot %d was clobbered", d, i)
			}
		}
	}
}

// TestMigrationSnapshotsElites checks an island forwards its own evolved
// elites, not migrants received earlier in the same barrier: with a ring
// 0→1→2→3→0 applied in source order, island 1 must send its original
// elite to island 2 even though island 0's migrant landed in island 1
// first.
func TestMigrationSnapshotsElites(t *testing.T) {
	eng, err := New(Config{
		Core:     testConfig(24, 2, 5),
		Count:    4,
		Topology: Ring,
		Interval: 1,
		Migrants: 1,
		Replace:  ReplaceWorst,
	})
	if err != nil {
		t.Fatal(err)
	}
	for s, isl := range eng.islands {
		pop := isl.Population()
		for i := range pop {
			g := bitstring.New(13)
			g.Set(s, true) // island marker bit
			pop[i] = ga.Individual{Genome: g, Fitness: float64(100*s + i)}
		}
	}
	if _, err := eng.migrate(); err != nil {
		t.Fatal(err)
	}
	// Island 0 has the globally worst fitnesses, so its migrant into
	// island 1 (fitness 5) becomes island 1's worst. If elites were not
	// snapshotted, island 1 would still send its own elite — but if the
	// *population* snapshot were skipped the received genome could win.
	// Island 2's incoming migrant must carry island 1's marker bit.
	got := eng.islands[2].Population()[0]
	want := bitstring.New(13)
	want.Set(1, true)
	if got.Genome.String() != want.String() || got.Fitness != 105 {
		t.Errorf("island 2 received %s fit %v, want island 1's elite (fit 105)", got.Genome, got.Fitness)
	}
}

// TestMigrationChangesOutcome guards against silent no-op migration: with
// aggressive migration the run must differ from isolated islands.
func TestMigrationChangesOutcome(t *testing.T) {
	run := func(interval int) *Result {
		cfg := Config{
			Core:     testConfig(24, 8, 7),
			Count:    4,
			Topology: FullyConnected,
			Interval: interval,
			Migrants: 2,
		}
		eng, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	isolated := run(100) // interval beyond the run length: no migration
	mixed := run(1)
	if isolated.MigrantsMoved != 0 {
		t.Fatalf("interval 100 still moved %d migrants", isolated.MigrantsMoved)
	}
	if mixed.MigrantsMoved == 0 {
		t.Fatal("interval 1 moved no migrants")
	}
	if reflect.DeepEqual(fingerprint(mixed), fingerprint(isolated)) {
		t.Error("migration had no effect on the run at all")
	}
}

// TestCheckpointHookFiresAcrossIslands pins the cross-island checkpoint
// contract: the hook fires at every CheckpointInterval-th barrier plus
// the final one, hands over the best-of-all-islands champion for that
// generation, and — being purely observational — never changes the run.
func TestCheckpointHookFiresAcrossIslands(t *testing.T) {
	cfg := testConfig(24, 6, 42)
	cfg.CheckpointInterval = 2

	var checkpoints []core.Checkpoint
	var gens []GenerationStats
	eng, err := New(Config{
		Core:        cfg,
		Count:       2,
		Topology:    Ring,
		Interval:    2,
		Migrants:    1,
		Parallelism: 2,
		OnGeneration: func(gs GenerationStats) {
			gens = append(gens, gs)
		},
		OnCheckpoint: func(cp core.Checkpoint) {
			checkpoints = append(checkpoints, cp)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	withHooks, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}

	// Generations 0..5 at interval 2: 0, 2, 4, plus the forced final 5.
	wantGens := []int{0, 2, 4, 5}
	if len(checkpoints) != len(wantGens) {
		t.Fatalf("%d checkpoints, want %d", len(checkpoints), len(wantGens))
	}
	for i, cp := range checkpoints {
		if cp.Generation != wantGens[i] {
			t.Errorf("checkpoint %d at generation %d, want %d", i, cp.Generation, wantGens[i])
		}
		if cp.Best.Genome().Len() == 0 {
			t.Errorf("checkpoint %d has an empty champion genome", i)
		}
		// The champion must be the best over *all* islands at that
		// barrier — cross-checked against the OnGeneration snapshot.
		gs := gens[cp.Generation]
		bestFit, meanSum := gs.Islands[0].BestFitness, 0.0
		for _, st := range gs.Islands {
			if st.BestFitness > bestFit {
				bestFit = st.BestFitness
			}
			meanSum += st.MeanFitness
		}
		if cp.Fitness != bestFit {
			t.Errorf("checkpoint %d fitness %v, want cross-island best %v", i, cp.Fitness, bestFit)
		}
		if want := meanSum / float64(len(gs.Islands)); cp.MeanFitness != want {
			t.Errorf("checkpoint %d mean fitness %v, want %v", i, cp.MeanFitness, want)
		}
		if cp.Cooperation != gs.Cooperation {
			t.Errorf("checkpoint %d cooperation %v, want %v", i, cp.Cooperation, gs.Cooperation)
		}
	}

	// Observational: the same run without any hooks is bit-identical.
	bare := cfg
	bare.CheckpointInterval = 0
	plainEng, err := New(Config{
		Core: bare, Count: 2, Topology: Ring, Interval: 2, Migrants: 1, Parallelism: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := plainEng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fingerprint(withHooks), fingerprint(plain)) {
		t.Error("enabling checkpoints changed the run")
	}
}
