package strategy

// Analytic views of strategies, supporting the paper's §6.3 discussion of
// what the evolved populations look like: how a strategy's generosity
// relates to the source's trust level, and which behavioral family it
// belongs to.

// ForwardFractionAt returns the fraction of the three activity cells at
// the given trust level that forward.
func (s Strategy) ForwardFractionAt(t TrustLevel) float64 {
	fwd := 0
	for a := ActivityLevel(0); a < NumActivityLevels; a++ {
		if s.Decide(t, a) == Forward {
			fwd++
		}
	}
	return float64(fwd) / float64(NumActivityLevels)
}

// TrustMonotonicity measures how consistently the strategy forwards more
// for higher trust: over all adjacent trust-level pairs and activity
// levels, the fraction of cells whose decision is non-decreasing in trust
// (D→D, D→F, F→F count; F→D does not). 1.0 means perfectly trust-monotone
// — the shape the paper's evolved strategies converge to (trust 3 row
// "111" with stricter rows below).
func (s Strategy) TrustMonotonicity() float64 {
	ok, total := 0, 0
	for a := ActivityLevel(0); a < NumActivityLevels; a++ {
		for t := TrustLevel(0); t < NumTrustLevels-1; t++ {
			lo := s.Decide(t, a)
			hi := s.Decide(t+1, a)
			if !(lo == Forward && hi == Discard) {
				ok++
			}
			total++
		}
	}
	return float64(ok) / float64(total)
}

// Category is a coarse behavioral family.
type Category string

// The behavioral families used by Classify.
const (
	// CategoryAltruist forwards in (almost) every situation.
	CategoryAltruist Category = "altruist"
	// CategoryDefector discards in (almost) every situation.
	CategoryDefector Category = "defector"
	// CategoryReciprocal is generous toward trusted sources and strict
	// toward untrusted ones — the enforcement shape the paper's GA finds.
	CategoryReciprocal Category = "reciprocal"
	// CategoryContrarian forwards more for LOW trust than for high — a
	// shape that cannot enforce cooperation.
	CategoryContrarian Category = "contrarian"
	// CategoryMixed is anything else.
	CategoryMixed Category = "mixed"
)

// Classify assigns a strategy to a behavioral family by its per-trust
// forwarding profile.
func (s Strategy) Classify() Category {
	coop := s.Cooperativeness()
	switch {
	case coop >= 12.0/13.0:
		return CategoryAltruist
	case coop <= 1.0/13.0:
		return CategoryDefector
	}
	low := (s.ForwardFractionAt(Trust0) + s.ForwardFractionAt(Trust1)) / 2
	high := (s.ForwardFractionAt(Trust2) + s.ForwardFractionAt(Trust3)) / 2
	switch {
	case high >= low+0.5:
		return CategoryReciprocal
	case low >= high+0.5:
		return CategoryContrarian
	default:
		return CategoryMixed
	}
}

// CategoryCensus counts the behavioral families in a census.
func (c *Census) CategoryCensus() map[Category]float64 {
	out := make(map[Category]float64)
	if c.total == 0 {
		return out
	}
	for key, n := range c.counts {
		out[MustParse(key).Classify()] += float64(n)
	}
	for cat := range out {
		out[cat] /= float64(c.total)
	}
	return out
}

// MeanTrustMonotonicity returns the occurrence-weighted mean
// TrustMonotonicity across the census.
func (c *Census) MeanTrustMonotonicity() float64 {
	if c.total == 0 {
		return 0
	}
	sum := 0.0
	for key, n := range c.counts {
		sum += MustParse(key).TrustMonotonicity() * float64(n)
	}
	return sum / float64(c.total)
}
