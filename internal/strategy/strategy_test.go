package strategy

import (
	"testing"
	"testing/quick"

	"adhocga/internal/bitstring"
	"adhocga/internal/rng"
)

// The figure 1c example strategy: "DDD FFF DDD FDD F" in decision letters,
// which is 000 111 000 100 1 in bits (1 = F).
const fig1c = "000 111 000 100 1"

func TestFig1cWorkedExample(t *testing.T) {
	s := MustParse(fig1c)
	// §3.3: trust level 3, activity LO → bit 9 → F.
	if got := s.Decide(Trust3, ActivityLow); got != Forward {
		t.Errorf("Decide(trust3, LO) = %v, want Forward (paper's worked example)", got)
	}
	// Figure: trust 0 row is DDD.
	for a := ActivityLevel(0); a < NumActivityLevels; a++ {
		if got := s.Decide(Trust0, a); got != Discard {
			t.Errorf("Decide(trust0, %v) = %v, want Discard", a, got)
		}
	}
	// Trust 1 row is FFF.
	for a := ActivityLevel(0); a < NumActivityLevels; a++ {
		if got := s.Decide(Trust1, a); got != Forward {
			t.Errorf("Decide(trust1, %v) = %v, want Forward", a, got)
		}
	}
	// Trust 3 row is FDD: MI and HI discard.
	if s.Decide(Trust3, ActivityMedium) != Discard || s.Decide(Trust3, ActivityHigh) != Discard {
		t.Error("trust3 MI/HI should be Discard in the Fig 1c strategy")
	}
	// Bit 12 is F.
	if s.DecideUnknown() != Forward {
		t.Error("unknown decision should be Forward")
	}
}

func TestBitIndexLayout(t *testing.T) {
	// Setting exactly bit i must flip exactly the matching (t, a) pair.
	for tl := TrustLevel(0); tl < NumTrustLevels; tl++ {
		for a := ActivityLevel(0); a < NumActivityLevels; a++ {
			b := bitstring.New(Bits)
			b.Set(int(tl)*3+int(a), true)
			s := New(b)
			for tl2 := TrustLevel(0); tl2 < NumTrustLevels; tl2++ {
				for a2 := ActivityLevel(0); a2 < NumActivityLevels; a2++ {
					want := Discard
					if tl2 == tl && a2 == a {
						want = Forward
					}
					if got := s.Decide(tl2, a2); got != want {
						t.Fatalf("bit %d set: Decide(%v,%v) = %v, want %v",
							int(tl)*3+int(a), tl2, a2, got, want)
					}
				}
			}
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{"", "0101", "01010110111110", "abc", "010 101 101 111"}
	for _, s := range cases {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", s)
		}
	}
}

func TestParseTable7Strategies(t *testing.T) {
	// All ten strategies listed in the paper's Table 7 must parse, and all
	// must forward against unknown nodes (the paper's observation).
	table7 := []string{
		"010 101 101 111 1",
		"000 111 111 111 1",
		"000 111 101 111 1",
		"000 011 111 111 1",
		"010 011 101 111 1",
		"010 000 111 111 1",
		"000 000 111 111 1",
		"000 010 111 111 1",
		"000 000 101 111 1",
		"010 000 101 111 1",
	}
	for _, raw := range table7 {
		s, err := Parse(raw)
		if err != nil {
			t.Fatalf("Parse(%q): %v", raw, err)
		}
		if s.DecideUnknown() != Forward {
			t.Errorf("Table 7 strategy %q should forward for unknown nodes", raw)
		}
		// Trust 3 sub-strategy is 111 in every Table 7 strategy.
		if got := s.SubStrategy(Trust3); got != "111" {
			t.Errorf("strategy %q trust3 sub-strategy = %q, want 111", raw, got)
		}
		if got := s.String(); got != raw {
			t.Errorf("String() = %q, want %q", got, raw)
		}
	}
}

func TestNewPanicsOnWrongLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with 5-bit genome did not panic")
		}
	}()
	New(bitstring.New(5))
}

func TestDecidePanicsOnInvalidLevels(t *testing.T) {
	s := AllForward()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("invalid trust level did not panic")
			}
		}()
		s.Decide(TrustLevel(4), ActivityLow)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("invalid activity level did not panic")
			}
		}()
		s.Decide(Trust0, ActivityLevel(3))
	}()
}

func TestAllForwardAllDiscard(t *testing.T) {
	af, ad := AllForward(), AllDiscard()
	for tl := TrustLevel(0); tl < NumTrustLevels; tl++ {
		for a := ActivityLevel(0); a < NumActivityLevels; a++ {
			if af.Decide(tl, a) != Forward {
				t.Errorf("AllForward.Decide(%v,%v) != Forward", tl, a)
			}
			if ad.Decide(tl, a) != Discard {
				t.Errorf("AllDiscard.Decide(%v,%v) != Discard", tl, a)
			}
		}
	}
	if af.DecideUnknown() != Forward || ad.DecideUnknown() != Discard {
		t.Error("unknown decisions wrong")
	}
	if af.Cooperativeness() != 1 || ad.Cooperativeness() != 0 {
		t.Error("cooperativeness of extremes wrong")
	}
}

func TestForwardAtOrAbove(t *testing.T) {
	s := ForwardAtOrAbove(Trust2, Discard)
	for tl := TrustLevel(0); tl < NumTrustLevels; tl++ {
		for a := ActivityLevel(0); a < NumActivityLevels; a++ {
			want := Discard
			if tl >= Trust2 {
				want = Forward
			}
			if got := s.Decide(tl, a); got != want {
				t.Errorf("threshold strategy Decide(%v,%v) = %v, want %v", tl, a, got, want)
			}
		}
	}
	if s.DecideUnknown() != Discard {
		t.Error("unknown decision should be Discard")
	}
	if ForwardAtOrAbove(Trust0, Forward).Cooperativeness() != 1 {
		t.Error("threshold at trust0 with forward-unknown should be all-forward")
	}
}

func TestSubStrategy(t *testing.T) {
	s := MustParse("010 101 101 111 1")
	want := map[TrustLevel]string{Trust0: "010", Trust1: "101", Trust2: "101", Trust3: "111"}
	for tl, w := range want {
		if got := s.SubStrategy(tl); got != w {
			t.Errorf("SubStrategy(%v) = %q, want %q", tl, got, w)
		}
	}
}

func TestKeyAndEqual(t *testing.T) {
	a := MustParse("010 101 101 111 1")
	b := MustParse("0101011011111")
	if !a.Equal(b) {
		t.Error("grouped and ungrouped parse of same strategy are not Equal")
	}
	if a.Key() != b.Key() {
		t.Error("Keys differ for equal strategies")
	}
	c := AllDiscard()
	if a.Equal(c) || a.Key() == c.Key() {
		t.Error("distinct strategies compare equal")
	}
}

func TestGenomeIsCopy(t *testing.T) {
	s := AllDiscard()
	g := s.Genome()
	g.Set(0, true)
	if s.Decide(Trust0, ActivityLow) != Discard {
		t.Error("mutating the returned genome changed the strategy")
	}
}

func TestLevelStrings(t *testing.T) {
	if ActivityLow.String() != "LO" || ActivityMedium.String() != "MI" || ActivityHigh.String() != "HI" {
		t.Error("activity level strings wrong")
	}
	if Trust3.String() != "trust 3" {
		t.Errorf("TrustLevel string = %q", Trust3.String())
	}
	if Forward.String() != "F" || Discard.String() != "D" {
		t.Error("decision strings wrong")
	}
	if ActivityLevel(9).String() == "" {
		t.Error("invalid activity level should still render")
	}
}

// Property: round-trip through String/Parse preserves all decisions.
func TestRoundTripProperty(t *testing.T) {
	r := rng.New(42)
	f := func() bool {
		s := Random(r)
		p, err := Parse(s.String())
		if err != nil || !p.Equal(s) {
			return false
		}
		for tl := TrustLevel(0); tl < NumTrustLevels; tl++ {
			for a := ActivityLevel(0); a < NumActivityLevels; a++ {
				if p.Decide(tl, a) != s.Decide(tl, a) {
					return false
				}
			}
		}
		return p.DecideUnknown() == s.DecideUnknown()
	}
	if err := quick.Check(func(uint8) bool { return f() }, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: cooperativeness equals the fraction of Forward decisions
// enumerated explicitly.
func TestCooperativenessProperty(t *testing.T) {
	r := rng.New(43)
	f := func(uint8) bool {
		s := Random(r)
		fwd := 0
		for tl := TrustLevel(0); tl < NumTrustLevels; tl++ {
			for a := ActivityLevel(0); a < NumActivityLevels; a++ {
				if s.Decide(tl, a) == Forward {
					fwd++
				}
			}
		}
		if s.DecideUnknown() == Forward {
			fwd++
		}
		return s.Cooperativeness() == float64(fwd)/float64(Bits)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkDecide(b *testing.B) {
	s := MustParse(fig1c)
	var sink Decision
	for i := 0; i < b.N; i++ {
		sink = s.Decide(Trust2, ActivityMedium)
	}
	_ = sink
}
