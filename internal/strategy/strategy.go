// Package strategy implements the paper's 13-bit forwarding strategies
// (§3.3, Fig 1c).
//
// A strategy decides whether an intermediate node forwards or discards a
// packet, given two properties of the packet's source: the trust level the
// deciding node assigns to it (four levels, §3.1) and its activity level
// (three levels, §3.2). Bits 0–11 cover the twelve (trust, activity)
// combinations in the order trust 0 {LO MI HI}, trust 1 {LO MI HI}, trust 2
// {LO MI HI}, trust 3 {LO MI HI}; bit 12 is the decision against an unknown
// node. Bit value 1 means forward ("F"), 0 means discard ("D") — the
// orientation used by the paper's Table 7, whose strategies all end in 1
// because "a decision against an unknown player (last bit) is to forward".
package strategy

import (
	"fmt"

	"adhocga/internal/bitstring"
	"adhocga/internal/rng"
)

// TrustLevel is the discretized trust a node assigns to another node,
// derived from the observed forwarding rate via the trust lookup table of
// Fig 1b. Level 0 is the lowest trust, level 3 the highest.
type TrustLevel uint8

// Trust levels, lowest to highest.
const (
	Trust0 TrustLevel = iota
	Trust1
	Trust2
	Trust3
)

// NumTrustLevels is the number of trust levels in the paper's model.
const NumTrustLevels = 4

// String returns "trust 0" .. "trust 3".
func (t TrustLevel) String() string { return fmt.Sprintf("trust %d", uint8(t)) }

// Valid reports whether the level is one of the four defined levels.
func (t TrustLevel) Valid() bool { return t < NumTrustLevels }

// ActivityLevel is the discretized activity of a source node relative to
// the average activity of all nodes known to the evaluator (§3.2).
type ActivityLevel uint8

// Activity levels: low, medium, high.
const (
	ActivityLow ActivityLevel = iota
	ActivityMedium
	ActivityHigh
)

// NumActivityLevels is the number of activity levels in the paper's model.
const NumActivityLevels = 3

// String returns the paper's "LO"/"MI"/"HI" abbreviations.
func (a ActivityLevel) String() string {
	switch a {
	case ActivityLow:
		return "LO"
	case ActivityMedium:
		return "MI"
	case ActivityHigh:
		return "HI"
	default:
		return fmt.Sprintf("ActivityLevel(%d)", uint8(a))
	}
}

// Valid reports whether the level is one of the three defined levels.
func (a ActivityLevel) Valid() bool { return a < NumActivityLevels }

// Decision is a forwarding decision.
type Decision uint8

// The two possible decisions.
const (
	Discard Decision = iota // "D": drop the packet
	Forward                 // "F": forward the packet
)

// String returns the paper's single-letter notation.
func (d Decision) String() string {
	if d == Forward {
		return "F"
	}
	return "D"
}

// Bits is the genome length of a strategy: 12 (trust, activity) decisions
// plus the unknown-node decision.
const Bits = NumTrustLevels*NumActivityLevels + 1

// UnknownBit is the index of the decision applied to unknown source nodes.
const UnknownBit = Bits - 1

// Strategy is a decision table over (TrustLevel, ActivityLevel) plus an
// unknown-node rule, backed by a 13-bit genome. The zero value is the
// invalid empty strategy; construct with New, Random, Parse, or one of the
// canonical constructors.
type Strategy struct {
	bits bitstring.Bits
}

// New wraps a 13-bit genome as a Strategy. It panics if the genome has the
// wrong length, since that indicates a programming error in the GA wiring.
func New(b bitstring.Bits) Strategy {
	if b.Len() != Bits {
		panic(fmt.Sprintf("strategy: genome has %d bits, want %d", b.Len(), Bits))
	}
	return Strategy{bits: b}
}

// Random returns a uniformly random strategy.
func Random(r *rng.Source) Strategy { return Strategy{bits: bitstring.Random(r, Bits)} }

// Parse decodes the paper's notation, with or without grouping spaces:
// "010 101 101 111 1" or "0101011011111". The groups are trust 0..3 then
// the unknown bit.
func Parse(s string) (Strategy, error) {
	b, err := bitstring.Parse(s)
	if err != nil {
		return Strategy{}, err
	}
	if b.Len() != Bits {
		return Strategy{}, fmt.Errorf("strategy: parsed %d bits, want %d", b.Len(), Bits)
	}
	return Strategy{bits: b}, nil
}

// MustParse is Parse that panics on error, for literals.
func MustParse(s string) Strategy {
	st, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return st
}

// bitIndex maps a (trust, activity) pair to its genome bit. With the Fig 1c
// layout the index is trust*3 + activity; the worked example in §3.3
// (trust 3, activity LO → bit 9) pins this down.
func bitIndex(t TrustLevel, a ActivityLevel) int {
	return int(t)*NumActivityLevels + int(a)
}

// Decide returns the decision for a known source with the given trust and
// activity levels. It panics on invalid levels.
func (s Strategy) Decide(t TrustLevel, a ActivityLevel) Decision {
	if !t.Valid() || !a.Valid() {
		panic(fmt.Sprintf("strategy: invalid levels (%v, %v)", t, a))
	}
	if s.bits.Get(bitIndex(t, a)) {
		return Forward
	}
	return Discard
}

// DecideUnknown returns the decision against an unknown source node
// (bit 12).
func (s Strategy) DecideUnknown() Decision {
	if s.bits.Get(UnknownBit) {
		return Forward
	}
	return Discard
}

// Genome returns a copy of the underlying 13-bit genome.
func (s Strategy) Genome() bitstring.Bits { return s.bits.Clone() }

// Key returns a canonical ungrouped string ("0101011011111") usable as a
// map key. Strategies are equal iff their Keys are equal.
func (s Strategy) Key() string { return s.bits.Compact() }

// String renders the strategy in the paper's grouped notation:
// "010 101 101 111 1".
func (s Strategy) String() string {
	return s.bits.GroupString(NumActivityLevels, NumActivityLevels, NumActivityLevels, NumActivityLevels, 1)
}

// SubStrategy returns the 3-bit decision string for one trust level, the
// unit the paper's Tables 8 and 9 are expressed in (e.g. "111" = always
// forward at that trust level, in activity order LO MI HI).
func (s Strategy) SubStrategy(t TrustLevel) string {
	if !t.Valid() {
		panic(fmt.Sprintf("strategy: invalid trust level %v", t))
	}
	buf := make([]byte, NumActivityLevels)
	for a := 0; a < NumActivityLevels; a++ {
		if s.bits.Get(bitIndex(t, ActivityLevel(a))) {
			buf[a] = '1'
		} else {
			buf[a] = '0'
		}
	}
	return string(buf)
}

// Cooperativeness returns the fraction of the 13 decisions that are
// Forward; 1.0 is the always-forward strategy.
func (s Strategy) Cooperativeness() float64 {
	return float64(s.bits.OneCount()) / float64(Bits)
}

// Equal reports whether two strategies make identical decisions.
func (s Strategy) Equal(o Strategy) bool { return s.bits.Equal(o.bits) }

// AllForward returns the fully cooperative strategy (forward in every
// situation, including unknown sources).
func AllForward() Strategy {
	b := bitstring.New(Bits)
	for i := 0; i < Bits; i++ {
		b.Set(i, true)
	}
	return Strategy{bits: b}
}

// AllDiscard returns the fully selfish strategy. This is the behavior of
// the paper's constantly selfish nodes (CSN, §4.3).
func AllDiscard() Strategy { return Strategy{bits: bitstring.New(Bits)} }

// ForwardAtOrAbove returns a trust-threshold strategy: forward whenever the
// source's trust level is ≥ min, regardless of activity, and apply the
// given unknown-node decision. Used by the baselines and ablations.
func ForwardAtOrAbove(min TrustLevel, unknown Decision) Strategy {
	b := bitstring.New(Bits)
	for t := TrustLevel(0); t < NumTrustLevels; t++ {
		for a := ActivityLevel(0); a < NumActivityLevels; a++ {
			if t >= min {
				b.Set(bitIndex(t, a), true)
			}
		}
	}
	b.Set(UnknownBit, unknown == Forward)
	return Strategy{bits: b}
}
