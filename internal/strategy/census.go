package strategy

import (
	"cmp"
	"slices"
)

// Census counts strategy occurrences across one or more final populations.
// The paper's Table 7 ("five most popular strategies") and Tables 8–9
// (sub-strategy distributions per trust level, filtered at 3%) are both
// views of a census.
type Census struct {
	counts map[string]int
	total  int
}

// NewCensus returns an empty census.
func NewCensus() *Census {
	return &Census{counts: make(map[string]int)}
}

// Add records one strategy occurrence.
func (c *Census) Add(s Strategy) {
	c.counts[s.Key()]++
	c.total++
}

// AddAll records every strategy in the slice.
func (c *Census) AddAll(ss []Strategy) {
	for _, s := range ss {
		c.Add(s)
	}
}

// Total returns the number of occurrences recorded.
func (c *Census) Total() int { return c.total }

// Distinct returns the number of distinct strategies recorded.
func (c *Census) Distinct() int { return len(c.counts) }

// Entry is one census row: a strategy, its occurrence count, and its
// frequency among all recorded occurrences.
type Entry struct {
	Strategy Strategy
	Count    int
	Fraction float64
}

// Top returns the k most frequent strategies, most frequent first. Ties
// break by key so the output is deterministic.
func (c *Census) Top(k int) []Entry {
	entries := make([]Entry, 0, len(c.counts))
	for key, n := range c.counts {
		entries = append(entries, Entry{
			Strategy: MustParse(key),
			Count:    n,
			Fraction: float64(n) / float64(c.total),
		})
	}
	slices.SortFunc(entries, func(a, b Entry) int {
		if c := cmp.Compare(b.Count, a.Count); c != 0 {
			return c
		}
		return cmp.Compare(a.Strategy.Key(), b.Strategy.Key())
	})
	if k < len(entries) {
		entries = entries[:k]
	}
	return entries
}

// SubEntry is one row of a sub-strategy distribution: the 3-bit pattern for
// a single trust level and its frequency.
type SubEntry struct {
	Pattern  string // e.g. "111"
	Count    int
	Fraction float64
}

// SubStrategies returns the distribution of 3-bit sub-strategies at the
// given trust level, most frequent first, dropping patterns whose
// frequency is below minFraction (the paper uses 0.03). Ties break by
// pattern for determinism.
func (c *Census) SubStrategies(t TrustLevel, minFraction float64) []SubEntry {
	sub := make(map[string]int)
	for key, n := range c.counts {
		sub[MustParse(key).SubStrategy(t)] += n
	}
	out := make([]SubEntry, 0, len(sub))
	for pattern, n := range sub {
		frac := float64(n) / float64(c.total)
		if frac < minFraction {
			continue
		}
		out = append(out, SubEntry{Pattern: pattern, Count: n, Fraction: frac})
	}
	slices.SortFunc(out, func(a, b SubEntry) int {
		if c := cmp.Compare(b.Count, a.Count); c != 0 {
			return c
		}
		return cmp.Compare(a.Pattern, b.Pattern)
	})
	return out
}

// UnknownForwardFraction returns the fraction of recorded strategies whose
// unknown-node decision is Forward — the property the paper highlights in
// §6.3 ("new nodes can easily join the network").
func (c *Census) UnknownForwardFraction() float64 {
	if c.total == 0 {
		return 0
	}
	fwd := 0
	for key, n := range c.counts {
		if MustParse(key).DecideUnknown() == Forward {
			fwd += n
		}
	}
	return float64(fwd) / float64(c.total)
}

// MeanCooperativeness returns the occurrence-weighted mean fraction of
// Forward bits across the census.
func (c *Census) MeanCooperativeness() float64 {
	if c.total == 0 {
		return 0
	}
	sum := 0.0
	for key, n := range c.counts {
		sum += MustParse(key).Cooperativeness() * float64(n)
	}
	return sum / float64(c.total)
}
