package strategy

import (
	"math"
	"testing"

	"adhocga/internal/rng"
)

func TestForwardFractionAt(t *testing.T) {
	s := MustParse("010 111 000 110 1")
	cases := []struct {
		tl   TrustLevel
		want float64
	}{
		{Trust0, 1.0 / 3}, {Trust1, 1}, {Trust2, 0}, {Trust3, 2.0 / 3},
	}
	for _, c := range cases {
		if got := s.ForwardFractionAt(c.tl); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("ForwardFractionAt(%v) = %v, want %v", c.tl, got, c.want)
		}
	}
}

func TestTrustMonotonicity(t *testing.T) {
	// Perfectly monotone: stricter at low trust.
	mono := MustParse("000 000 111 111 1")
	if got := mono.TrustMonotonicity(); got != 1 {
		t.Errorf("monotone strategy scores %v", got)
	}
	// All-forward and all-discard are trivially monotone.
	if AllForward().TrustMonotonicity() != 1 || AllDiscard().TrustMonotonicity() != 1 {
		t.Error("uniform strategies should be monotone")
	}
	// Perfectly anti-monotone: forward only at low trust.
	anti := MustParse("111 000 000 000 0")
	// Violations: trust0→trust1 F→D in 3 activities; other 6 pairs fine.
	if got := anti.TrustMonotonicity(); math.Abs(got-6.0/9.0) > 1e-12 {
		t.Errorf("anti-monotone strategy scores %v, want 2/3", got)
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		s    Strategy
		want Category
	}{
		{AllForward(), CategoryAltruist},
		{AllDiscard(), CategoryDefector},
		{MustParse("111 111 111 111 0"), CategoryAltruist},   // one discard bit still altruist
		{MustParse("000 000 000 000 1"), CategoryDefector},   // one forward bit still defector
		{MustParse("000 000 111 111 1"), CategoryReciprocal}, // strict below, generous above
		{MustParse("111 111 000 000 0"), CategoryContrarian},
		{MustParse("010 101 101 011 1"), CategoryMixed},
	}
	for _, c := range cases {
		if got := c.s.Classify(); got != c.want {
			t.Errorf("Classify(%s) = %s, want %s", c.s, got, c.want)
		}
	}
}

func TestPaperWinnersAreReciprocal(t *testing.T) {
	// The paper's Table 7 winners must classify as reciprocal (or at
	// least never contrarian) and be highly trust-monotone.
	winners := []string{
		"010 101 101 111 1",
		"000 111 111 111 1",
		"000 000 111 111 1",
		"000 010 111 111 1",
	}
	for _, raw := range winners {
		s := MustParse(raw)
		cat := s.Classify()
		if cat == CategoryContrarian || cat == CategoryDefector {
			t.Errorf("paper winner %q classified %s", raw, cat)
		}
		if s.TrustMonotonicity() < 0.6 {
			t.Errorf("paper winner %q monotonicity %v", raw, s.TrustMonotonicity())
		}
	}
}

func TestCategoryCensus(t *testing.T) {
	c := NewCensus()
	c.Add(AllForward())
	c.Add(AllDiscard())
	c.Add(MustParse("000 000 111 111 1"))
	c.Add(MustParse("000 000 111 111 1"))
	cats := c.CategoryCensus()
	if math.Abs(cats[CategoryAltruist]-0.25) > 1e-12 {
		t.Errorf("altruist share %v", cats[CategoryAltruist])
	}
	if math.Abs(cats[CategoryReciprocal]-0.5) > 1e-12 {
		t.Errorf("reciprocal share %v", cats[CategoryReciprocal])
	}
	if len(NewCensus().CategoryCensus()) != 0 {
		t.Error("empty census should have no categories")
	}
}

func TestMeanTrustMonotonicity(t *testing.T) {
	c := NewCensus()
	c.Add(MustParse("000 000 111 111 1")) // 1.0
	c.Add(MustParse("111 000 000 000 0")) // 2/3
	want := (1.0 + 2.0/3.0) / 2
	if got := c.MeanTrustMonotonicity(); math.Abs(got-want) > 1e-12 {
		t.Errorf("MeanTrustMonotonicity = %v, want %v", got, want)
	}
	if NewCensus().MeanTrustMonotonicity() != 0 {
		t.Error("empty census should return 0")
	}
}

// Property: TrustMonotonicity is always in [0,1] and flipping a random
// discard bit to forward never lowers cooperativeness.
func TestAnalysisProperties(t *testing.T) {
	r := rng.New(44)
	for i := 0; i < 500; i++ {
		s := Random(r)
		m := s.TrustMonotonicity()
		if m < 0 || m > 1 {
			t.Fatalf("monotonicity %v outside [0,1]", m)
		}
		g := s.Genome()
		idx := r.Intn(Bits)
		if !g.Get(idx) {
			g.Set(idx, true)
			if New(g).Cooperativeness() <= s.Cooperativeness() {
				t.Fatal("adding a forward bit lowered cooperativeness")
			}
		}
	}
}
