package strategy

import (
	"math"
	"testing"

	"adhocga/internal/rng"
)

func TestCensusTop(t *testing.T) {
	c := NewCensus()
	a := MustParse("000 111 111 111 1")
	b := MustParse("010 101 101 111 1")
	for i := 0; i < 3; i++ {
		c.Add(a)
	}
	c.Add(b)
	if c.Total() != 4 || c.Distinct() != 2 {
		t.Fatalf("Total=%d Distinct=%d", c.Total(), c.Distinct())
	}
	top := c.Top(5)
	if len(top) != 2 {
		t.Fatalf("Top(5) returned %d entries", len(top))
	}
	if !top[0].Strategy.Equal(a) || top[0].Count != 3 {
		t.Errorf("top entry = %v ×%d", top[0].Strategy, top[0].Count)
	}
	if math.Abs(top[0].Fraction-0.75) > 1e-12 {
		t.Errorf("top fraction = %v", top[0].Fraction)
	}
	// k smaller than distinct count truncates.
	if got := c.Top(1); len(got) != 1 {
		t.Errorf("Top(1) returned %d entries", len(got))
	}
}

func TestCensusTopDeterministicTieBreak(t *testing.T) {
	c := NewCensus()
	c.Add(MustParse("1111111111111"))
	c.Add(MustParse("0000000000000"))
	top := c.Top(2)
	if top[0].Strategy.Key() != "0000000000000" {
		t.Errorf("tie break should order by key; got %s first", top[0].Strategy.Key())
	}
}

func TestCensusSubStrategies(t *testing.T) {
	c := NewCensus()
	// 7 strategies with trust3 = 111, 3 with trust3 = 000.
	for i := 0; i < 7; i++ {
		c.Add(MustParse("000 000 000 111 1"))
	}
	for i := 0; i < 3; i++ {
		c.Add(MustParse("000 000 000 000 1"))
	}
	subs := c.SubStrategies(Trust3, 0)
	if len(subs) != 2 {
		t.Fatalf("got %d sub-strategies", len(subs))
	}
	if subs[0].Pattern != "111" || math.Abs(subs[0].Fraction-0.7) > 1e-12 {
		t.Errorf("dominant sub-strategy = %+v", subs[0])
	}
	// The 3% filter of the paper removes rare patterns.
	filtered := c.SubStrategies(Trust3, 0.5)
	if len(filtered) != 1 || filtered[0].Pattern != "111" {
		t.Errorf("filtered = %+v", filtered)
	}
}

func TestCensusUnknownForwardFraction(t *testing.T) {
	c := NewCensus()
	c.Add(MustParse("000 000 000 000 1"))
	c.Add(MustParse("000 000 000 000 1"))
	c.Add(MustParse("000 000 000 000 0"))
	if got := c.UnknownForwardFraction(); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Errorf("UnknownForwardFraction = %v", got)
	}
	if NewCensus().UnknownForwardFraction() != 0 {
		t.Error("empty census should return 0")
	}
}

func TestCensusMeanCooperativeness(t *testing.T) {
	c := NewCensus()
	c.Add(AllForward())
	c.Add(AllDiscard())
	if got := c.MeanCooperativeness(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("MeanCooperativeness = %v, want 0.5", got)
	}
	if NewCensus().MeanCooperativeness() != 0 {
		t.Error("empty census should return 0")
	}
}

func TestCensusAddAll(t *testing.T) {
	r := rng.New(1)
	ss := make([]Strategy, 50)
	for i := range ss {
		ss[i] = Random(r)
	}
	c := NewCensus()
	c.AddAll(ss)
	if c.Total() != 50 {
		t.Errorf("Total = %d", c.Total())
	}
	// Fractions across Top(all) must sum to 1.
	sum := 0.0
	for _, e := range c.Top(1 << 20) {
		sum += e.Fraction
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("fractions sum to %v", sum)
	}
}

func TestCensusSubStrategyFractionsSum(t *testing.T) {
	r := rng.New(2)
	c := NewCensus()
	for i := 0; i < 200; i++ {
		c.Add(Random(r))
	}
	for tl := TrustLevel(0); tl < NumTrustLevels; tl++ {
		sum := 0.0
		for _, e := range c.SubStrategies(tl, 0) {
			sum += e.Fraction
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("trust %d sub-strategy fractions sum to %v", tl, sum)
		}
	}
}
