// Package league implements the coevolution league: a durable
// hall-of-fame archive of champion strategies extracted at generation
// checkpoints, and a cross-generation match engine that seats archived
// champions, current-population snapshots, and scripted baseline agents
// into round-robin tournament evaluations.
//
// The paper evolves one population against itself, so a genome's fitness
// is only ever measured against its contemporaries. The league answers
// the questions that setup cannot: do late-generation champions actually
// beat early ones, and how do evolved strategies fare against scripted
// baselines? Re-evaluating historical strategies against later
// environments is exactly the capability the adaptive/hybridized-strategy
// and dynamic-environment memory literature presupposes.
//
// # Determinism contract
//
// A league run is bit-identical for a fixed Config regardless of
// GOMAXPROCS or the Parallelism setting: every match's seed is derived up
// front from the root seed in (pair, repetition) order before any
// parallel work starts, each match owns all of its mutable state
// (players, reputation stores, path generator, RNG stream), and the
// table is assembled from the match outcomes in deterministic order.
// Champions are archived through the jobstore WAL machinery, so a table
// computed from a reopened archive is byte-identical to one computed
// before the restart.
package league

import (
	"encoding/json"
	"fmt"
	"hash/crc32"

	"adhocga/internal/strategy"
)

// Champion is one hall-of-fame record: a checkpointed best-of-generation
// strategy together with everything needed to query it (classification
// metadata, fitness context) and to replay its provenance (the replicate
// master seed and the job/scenario it came from — under the determinism
// contract, (seed, spec) reproduces the run that evolved it).
type Champion struct {
	// ID identifies the champion in the archive and the league table.
	// IDs built by ChampionID are deterministic in the provenance, so
	// re-running a recovered job re-puts identical records instead of
	// duplicating them.
	ID string `json:"id"`
	// Job is the session job that evolved the champion ("" for direct
	// engine runs).
	Job string `json:"job,omitempty"`
	// Scenario names the scenario within the job's batch.
	Scenario string `json:"scenario,omitempty"`
	// Rep is the replicate index within the scenario; Generation the
	// generation the checkpoint observed (after evaluation, before
	// reproduction).
	Rep        int `json:"rep"`
	Generation int `json:"gen"`
	// Genome is the 13-bit strategy in compact form ("0101011011111").
	Genome string `json:"genome"`
	// Seed is the replicate's master seed — the replay provenance.
	Seed uint64 `json:"seed"`
	// Fitness is the champion's own eq. 1 fitness at the checkpoint;
	// MeanFitness and Cooperation are the population mean fitness and the
	// §6.2 cooperation level of the same generation.
	Fitness     float64 `json:"fitness"`
	MeanFitness float64 `json:"mean_fitness"`
	Cooperation float64 `json:"coop"`
	// Category and Cooperativeness are the strategy.Classify metadata,
	// stored so the archive is queryable without re-deriving them. The
	// codec re-derives and cross-checks both on decode.
	Category        string  `json:"category"`
	Cooperativeness float64 `json:"cooperativeness"`
}

// ChampionID builds the deterministic archive ID for a checkpoint:
// job/scenario/replicate/generation. Deterministic IDs make archiving
// idempotent across crash recovery — a resumed job re-puts byte-identical
// records under the same IDs.
func ChampionID(job, scenario string, rep, gen int) string {
	if job == "" {
		job = "run"
	}
	if scenario == "" {
		scenario = "scenario"
	}
	return fmt.Sprintf("%s/%s/r%d/g%d", job, scenario, rep, gen)
}

// Strategy decodes the champion's genome.
func (c Champion) Strategy() (strategy.Strategy, error) {
	return strategy.Parse(c.Genome)
}

// Validate checks internal consistency: a parsable 13-bit genome,
// non-negative indices, and classification metadata that matches what the
// genome actually derives to.
func (c Champion) Validate() error {
	if c.ID == "" {
		return fmt.Errorf("league: champion has no id")
	}
	if c.Rep < 0 || c.Generation < 0 {
		return fmt.Errorf("league: champion %s has negative rep/generation", c.ID)
	}
	s, err := strategy.Parse(c.Genome)
	if err != nil {
		return fmt.Errorf("league: champion %s: %w", c.ID, err)
	}
	if got := string(s.Classify()); got != c.Category {
		return fmt.Errorf("league: champion %s category %q does not match genome (derives %q)", c.ID, c.Category, got)
	}
	if got := s.Cooperativeness(); got != c.Cooperativeness {
		return fmt.Errorf("league: champion %s cooperativeness %v does not match genome (derives %v)", c.ID, c.Cooperativeness, got)
	}
	return nil
}

// Fill derives the classification metadata (Category, Cooperativeness)
// from the genome in place — for builders that have the genome but not
// the metadata yet.
func (c *Champion) Fill() error {
	s, err := strategy.Parse(c.Genome)
	if err != nil {
		return err
	}
	c.Category = string(s.Classify())
	c.Cooperativeness = s.Cooperativeness()
	return nil
}

// The champion codec: a self-checking JSON envelope
//
//	{"crc":"<crc32 8hex>","champion":{...deterministic champion JSON...}}
//
// The CRC is computed over the exact champion payload bytes, so bit
// flips anywhere in the payload are detected even when the mutation
// still parses as JSON (a flipped digit in a fitness field, say).
// Truncation breaks the envelope parse. The envelope is itself valid
// JSON, which is what lets a champion record ride in a jobstore.Record's
// Spec field — and therefore through the WAL's own framing, checksums,
// torn-tail repair, and compaction — without any new durability code.

type championEnvelope struct {
	CRC      string          `json:"crc"`
	Champion json.RawMessage `json:"champion"`
}

// EncodeChampion serializes a champion in the self-checking envelope
// form. The encoding is deterministic: fixed field order, no timestamps.
func EncodeChampion(c Champion) ([]byte, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	payload, err := json.Marshal(c)
	if err != nil {
		return nil, fmt.Errorf("league: encode champion %s: %w", c.ID, err)
	}
	env, err := json.Marshal(championEnvelope{
		CRC:      fmt.Sprintf("%08x", crc32.ChecksumIEEE(payload)),
		Champion: payload,
	})
	if err != nil {
		return nil, fmt.Errorf("league: encode champion %s: %w", c.ID, err)
	}
	return env, nil
}

// DecodeChampion reverses EncodeChampion, rejecting anything corrupt:
// envelope or payload that does not parse, a CRC that does not match the
// payload bytes, a genome that is not a valid 13-bit strategy, or
// classification metadata inconsistent with the genome. It never panics,
// whatever the input.
func DecodeChampion(b []byte) (Champion, error) {
	var env championEnvelope
	if err := json.Unmarshal(b, &env); err != nil {
		return Champion{}, fmt.Errorf("league: champion envelope: %w", err)
	}
	if len(env.Champion) == 0 {
		return Champion{}, fmt.Errorf("league: champion envelope has no payload")
	}
	if sum := fmt.Sprintf("%08x", crc32.ChecksumIEEE(env.Champion)); sum != env.CRC {
		return Champion{}, fmt.Errorf("league: champion checksum mismatch: have %s, computed %s", env.CRC, sum)
	}
	var c Champion
	if err := json.Unmarshal(env.Champion, &c); err != nil {
		return Champion{}, fmt.Errorf("league: champion payload: %w", err)
	}
	if err := c.Validate(); err != nil {
		return Champion{}, err
	}
	return c, nil
}
