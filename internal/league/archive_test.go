package league

import (
	"testing"

	"adhocga/internal/jobstore"
)

func TestArchivePutGetListSelect(t *testing.T) {
	a := NewMemArchive()
	defer a.Close()
	if a.Backend() != "mem" {
		t.Fatalf("Backend() = %q, want mem", a.Backend())
	}
	// Put in non-sorted ID order so List (put order) and Select (sorted)
	// are distinguishable.
	cb := testChampion(t, "job-1/case 1/r0/g20", "1111111111111")
	ca := testChampion(t, "job-1/case 1/r0/g10", "0101011011111")
	for _, c := range []Champion{cb, ca} {
		if err := a.Put(c); err != nil {
			t.Fatal(err)
		}
	}
	if a.Len() != 2 {
		t.Fatalf("Len() = %d, want 2", a.Len())
	}

	got, ok := a.Get(ca.ID)
	if !ok || got != ca {
		t.Fatalf("Get(%q) = %+v, %v", ca.ID, got, ok)
	}
	if _, ok := a.Get("nope"); ok {
		t.Fatal("Get accepted unknown ID")
	}

	list := a.List()
	if len(list) != 2 || list[0].ID != cb.ID || list[1].ID != ca.ID {
		t.Fatalf("List() order = %v, want put order [%s %s]", ids(list), cb.ID, ca.ID)
	}

	// Empty Select seats the whole archive sorted by ID — put-order
	// independent, which is what makes default league seating stable.
	sel, err := a.Select(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 2 || sel[0].ID != ca.ID || sel[1].ID != cb.ID {
		t.Fatalf("Select(nil) order = %v, want sorted [%s %s]", ids(sel), ca.ID, cb.ID)
	}
	sel, err = a.Select([]string{cb.ID})
	if err != nil || len(sel) != 1 || sel[0].ID != cb.ID {
		t.Fatalf("Select([%s]) = %v, %v", cb.ID, ids(sel), err)
	}
	if _, err := a.Select([]string{"missing"}); err == nil {
		t.Fatal("Select accepted unknown ID")
	}

	// Re-putting the same ID replaces, never duplicates.
	ca.Fitness = 9
	if err := a.Put(ca); err != nil {
		t.Fatal(err)
	}
	if a.Len() != 2 {
		t.Fatalf("Len() after re-put = %d, want 2", a.Len())
	}
	if got, _ := a.Get(ca.ID); got.Fitness != 9 {
		t.Fatalf("re-put did not replace: Fitness = %v", got.Fitness)
	}

	if err := a.Put(Champion{ID: "bad", Genome: "xyz"}); err == nil {
		t.Fatal("Put accepted invalid champion")
	}
}

func TestArchiveRestart(t *testing.T) {
	dir := t.TempDir()
	a, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := []Champion{
		testChampion(t, "job-1/case 1/r0/g0", "0000000000000"),
		testChampion(t, "job-1/case 1/r0/g10", "0101011011111"),
		testChampion(t, "job-1/case 1/r1/g10", "1111111111111"),
	}
	for _, c := range want {
		if err := a.Put(c); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	b, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if b.Backend() != "file" {
		t.Fatalf("Backend() = %q, want file", b.Backend())
	}
	if b.Skipped() != 0 {
		t.Fatalf("Skipped() = %d, want 0", b.Skipped())
	}
	got := b.List()
	if len(got) != len(want) {
		t.Fatalf("reopened archive has %d champions, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("champion %d changed across restart:\ngot  %+v\nwant %+v", i, got[i], want[i])
		}
	}
}

// TestArchiveSkipsForeignAndCorrupt plants three bad records next to one
// good champion: a foreign kind, a champion record whose spec is garbage,
// and a well-formed envelope filed under the wrong record ID. Loading
// must keep the good one and count the rest, never fail.
func TestArchiveSkipsForeignAndCorrupt(t *testing.T) {
	dir := t.TempDir()
	st, err := jobstore.OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	good := testChampion(t, "job-1/case 1/r0/g10", "0101011011111")
	env, err := EncodeChampion(good)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range []jobstore.Record{
		{ID: "job-9", Kind: "scenarios", Spec: []byte(`{"seed":1}`), State: jobstore.StateDone},
		// Valid JSON (the store rejects anything else at Put time) but a
		// broken envelope: the CRC cannot match an empty payload.
		{ID: "broken", Kind: RecordKind, Spec: []byte(`{"crc":"00000000","champion":{"id":"broken"}}`), State: jobstore.StateDone},
		{ID: "wrong-id", Kind: RecordKind, Spec: env, State: jobstore.StateDone},
		{ID: good.ID, Kind: RecordKind, Spec: env, State: jobstore.StateDone},
	} {
		if err := st.Put(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	a, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if a.Len() != 1 {
		t.Fatalf("Len() = %d, want 1", a.Len())
	}
	if a.Skipped() != 3 {
		t.Fatalf("Skipped() = %d, want 3", a.Skipped())
	}
	if _, ok := a.Get(good.ID); !ok {
		t.Fatalf("good champion %q lost among corrupt neighbors", good.ID)
	}
}

func ids(cs []Champion) []string {
	out := make([]string, len(cs))
	for i, c := range cs {
		out[i] = c.ID
	}
	return out
}
