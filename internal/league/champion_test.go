package league

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"strings"
	"testing"

	"adhocga/internal/strategy"
)

// testChampion builds a valid champion with derived metadata.
func testChampion(t *testing.T, id, genome string) Champion {
	t.Helper()
	c := Champion{
		ID:          id,
		Job:         "job-1",
		Scenario:    "case 1",
		Rep:         0,
		Generation:  10,
		Genome:      genome,
		Seed:        42,
		Fitness:     1.5,
		MeanFitness: 1.25,
		Cooperation: 0.75,
	}
	if err := c.Fill(); err != nil {
		t.Fatalf("Fill(%q): %v", genome, err)
	}
	return c
}

func TestChampionID(t *testing.T) {
	for _, tc := range []struct {
		job, scenario string
		rep, gen      int
		want          string
	}{
		{"job-1", "case 1 (TE1, SP)", 0, 10, "job-1/case 1 (TE1, SP)/r0/g10"},
		{"", "", 2, 0, "run/scenario/r2/g0"},
		{"j", "", 0, 499, "j/scenario/r0/g499"},
	} {
		if got := ChampionID(tc.job, tc.scenario, tc.rep, tc.gen); got != tc.want {
			t.Errorf("ChampionID(%q, %q, %d, %d) = %q, want %q", tc.job, tc.scenario, tc.rep, tc.gen, got, tc.want)
		}
	}
	// Determinism is the point: same provenance, same ID.
	if ChampionID("a", "b", 1, 2) != ChampionID("a", "b", 1, 2) {
		t.Fatal("ChampionID not deterministic")
	}
}

func TestCodecRoundTrip(t *testing.T) {
	c := testChampion(t, "job-1/case 1/r0/g10", "0101011011111")
	env, err := EncodeChampion(c)
	if err != nil {
		t.Fatal(err)
	}
	// The encoding is deterministic: encoding twice yields identical bytes.
	env2, err := EncodeChampion(c)
	if err != nil {
		t.Fatal(err)
	}
	if string(env) != string(env2) {
		t.Fatalf("encoding not deterministic:\n%s\n%s", env, env2)
	}
	got, err := DecodeChampion(env)
	if err != nil {
		t.Fatal(err)
	}
	if got != c {
		t.Fatalf("round trip changed champion:\ngot  %+v\nwant %+v", got, c)
	}
	s, err := got.Strategy()
	if err != nil {
		t.Fatal(err)
	}
	if s.Key() != c.Genome {
		t.Fatalf("Strategy().Key() = %q, want %q", s.Key(), c.Genome)
	}
}

func TestEncodeRejectsInvalid(t *testing.T) {
	valid := testChampion(t, "id", "0101011011111")
	for name, mutate := range map[string]func(*Champion){
		"empty id":       func(c *Champion) { c.ID = "" },
		"negative rep":   func(c *Champion) { c.Rep = -1 },
		"negative gen":   func(c *Champion) { c.Generation = -1 },
		"bad genome":     func(c *Champion) { c.Genome = "xyz" },
		"short genome":   func(c *Champion) { c.Genome = "0101" },
		"stale category": func(c *Champion) { c.Category = "no-such-category" },
		"stale cooperativeness": func(c *Champion) {
			c.Cooperativeness = c.Cooperativeness + 1
		},
	} {
		c := valid
		mutate(&c)
		if _, err := EncodeChampion(c); err == nil {
			t.Errorf("%s: EncodeChampion accepted invalid champion", name)
		}
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	env, err := EncodeChampion(testChampion(t, "id", "0101011011111"))
	if err != nil {
		t.Fatal(err)
	}
	// Every proper prefix must fail cleanly (and never panic).
	for n := 0; n < len(env); n++ {
		if _, err := DecodeChampion(env[:n]); err == nil {
			t.Fatalf("DecodeChampion accepted truncation to %d/%d bytes", n, len(env))
		}
	}
}

func TestDecodeRejectsBitFlips(t *testing.T) {
	orig := testChampion(t, "id", "0101011011111")
	env, err := EncodeChampion(orig)
	if err != nil {
		t.Fatal(err)
	}
	// No single-bit flip anywhere in the envelope may silently alter the
	// champion: almost every flip is rejected outright (broken JSON, CRC
	// mismatch, invalid champion); the only survivable flips are case
	// changes in the envelope's own key names (encoding/json matches keys
	// case-insensitively), which leave the checksummed payload untouched —
	// so an accepted mutation must decode to the identical champion.
	for i := range env {
		for bit := 0; bit < 8; bit++ {
			mutated := make([]byte, len(env))
			copy(mutated, env)
			mutated[i] ^= 1 << bit
			got, err := DecodeChampion(mutated)
			if err == nil && got != orig {
				t.Fatalf("bit flip at byte %d bit %d silently changed the champion:\ngot  %+v\nwant %+v", i, bit, got, orig)
			}
		}
	}
}

func TestDecodeRejectsLyingMetadata(t *testing.T) {
	// A syntactically perfect envelope — valid JSON, CRC recomputed over
	// the tampered payload — whose metadata lies about the genome. This
	// models a stale or buggy writer rather than random corruption: the
	// decoder re-derives Classify/Cooperativeness and refuses.
	c := testChampion(t, "id", strategy.AllForward().Key())
	payload, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	tampered := strings.Replace(string(payload), c.Category, "cooperative-lie", 1)
	if tampered == string(payload) {
		t.Fatal("tamper did not change payload")
	}
	env, err := json.Marshal(championEnvelope{
		CRC:      fmt.Sprintf("%08x", crc32.ChecksumIEEE([]byte(tampered))),
		Champion: json.RawMessage(tampered),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeChampion(env); err == nil {
		t.Fatal("DecodeChampion accepted lying category behind a valid CRC")
	}
}

func TestDecodeGarbage(t *testing.T) {
	for _, b := range [][]byte{
		nil,
		[]byte(""),
		[]byte("{}"),
		[]byte(`{"crc":"00000000"}`),
		[]byte(`{"crc":"00000000","champion":{}}`),
		[]byte(`{"crc":"not-hex","champion":{"id":"x"}}`),
		[]byte("\xff\xfe\x00garbage"),
	} {
		if _, err := DecodeChampion(b); err == nil {
			t.Errorf("DecodeChampion(%q) accepted garbage", b)
		}
	}
}
