package league

import (
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden fixtures from the current output")

// goldenConfig is the fixed league the determinism and golden tests pin:
// the three scripted baselines plus two archived champions, small enough
// to play in milliseconds but large enough to exercise every aggregation
// path (wins, losses, head-to-head, CSN pressure).
func goldenConfig(t *testing.T) Config {
	t.Helper()
	seats := BaselineSeats()
	for _, c := range []Champion{
		testChampion(t, "job-1/case 1/r0/g10", "0101011011111"),
		testChampion(t, "job-1/case 1/r0/g20", "1110111011101"),
	} {
		seat, err := ChampionSeat(c)
		if err != nil {
			t.Fatal(err)
		}
		seats = append(seats, seat)
	}
	return Config{
		Seats:          seats,
		PerSide:        3,
		CSN:            2,
		MatchesPerPair: 2,
		Rounds:         20,
		Seed:           42,
	}
}

func tableJSON(t *testing.T, cfg Config) []byte {
	t.Helper()
	table, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(table)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestLeagueGolden byte-compares the fixed-seed league table against the
// checked-in fixture. Any drift — in match seeding, the evaluate path,
// aggregation, sort order, or JSON field layout — fails here first.
// Refresh after an intentional change with
//
//	go test -run TestLeagueGolden -update ./internal/league/
func TestLeagueGolden(t *testing.T) {
	got := tableJSON(t, goldenConfig(t))
	golden := filepath.Join("testdata", "league_table.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("league table drifted from golden fixture:\ngot  %s\nwant %s", got, want)
	}
}

// TestLeagueDeterministicAcrossParallelism is the contract the package
// doc promises: the marshaled table is byte-identical at GOMAXPROCS
// 1, 2, and 8, crossed with explicit Parallelism settings.
func TestLeagueDeterministicAcrossParallelism(t *testing.T) {
	cfg := goldenConfig(t)
	want := tableJSON(t, cfg)
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, procs := range []int{1, 2, 8} {
		runtime.GOMAXPROCS(procs)
		for _, par := range []int{0, 1, 2, 8} {
			cfg.Parallelism = par
			if got := tableJSON(t, cfg); string(got) != string(want) {
				t.Fatalf("GOMAXPROCS=%d Parallelism=%d table differs:\ngot  %s\nwant %s", procs, par, got, want)
			}
		}
	}
}

// TestLeagueDeterministicAcrossRestart archives the golden champions in a
// file-backed archive, plays the league, reopens the archive from disk,
// and plays it again: the WAL round trip must not perturb a single byte.
func TestLeagueDeterministicAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	champs := []Champion{
		testChampion(t, "job-1/case 1/r0/g10", "0101011011111"),
		testChampion(t, "job-1/case 1/r0/g20", "1110111011101"),
	}

	play := func(a *Archive) []byte {
		t.Helper()
		sel, err := a.Select(nil)
		if err != nil {
			t.Fatal(err)
		}
		seats := BaselineSeats()
		for _, c := range sel {
			seat, err := ChampionSeat(c)
			if err != nil {
				t.Fatal(err)
			}
			seats = append(seats, seat)
		}
		return tableJSON(t, Config{Seats: seats, PerSide: 3, CSN: 2, MatchesPerPair: 2, Rounds: 20, Seed: 42})
	}

	a, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range champs {
		if err := a.Put(c); err != nil {
			t.Fatal(err)
		}
	}
	before := play(a)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	b, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	after := play(b)
	if string(before) != string(after) {
		t.Fatalf("league table changed across archive restart:\nbefore %s\nafter  %s", before, after)
	}
}

func TestLeagueTableShape(t *testing.T) {
	cfg := goldenConfig(t)
	table, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := len(cfg.Seats)
	wantMatches := n * (n - 1) / 2 * cfg.MatchesPerPair
	if table.Matches != wantMatches {
		t.Fatalf("Matches = %d, want %d", table.Matches, wantMatches)
	}
	if len(table.Seats) != n || len(table.Standings) != n || len(table.HeadToHead) != n {
		t.Fatalf("table dimensions %d/%d/%d, want %d", len(table.Seats), len(table.Standings), len(table.HeadToHead), n)
	}
	if table.Seed != cfg.Seed {
		t.Fatalf("Seed = %d, want %d", table.Seed, cfg.Seed)
	}
	if table.Winner() != table.Standings[0].Name {
		t.Fatalf("Winner() = %q, standings[0] = %q", table.Winner(), table.Standings[0].Name)
	}
	var points, h2h float64
	for i, s := range table.Standings {
		if s.Played != (n-1)*cfg.MatchesPerPair {
			t.Fatalf("%s played %d, want %d", s.Name, s.Played, (n-1)*cfg.MatchesPerPair)
		}
		if s.Wins+s.Draws+s.Losses != s.Played {
			t.Fatalf("%s W+D+L = %d, played %d", s.Name, s.Wins+s.Draws+s.Losses, s.Played)
		}
		if want := float64(s.Wins) + float64(s.Draws)/2; s.Points != want {
			t.Fatalf("%s points %v, want %v", s.Name, s.Points, want)
		}
		if i > 0 && s.Points > table.Standings[i-1].Points {
			t.Fatalf("standings not sorted: %v after %v", s.Points, table.Standings[i-1].Points)
		}
		if s.Genome == "" {
			t.Fatalf("%s has no genome in the table", s.Name)
		}
		points += s.Points
		for j := range table.HeadToHead[i] {
			h2h += table.HeadToHead[i][j]
		}
	}
	// Every match hands out exactly one point, split on draws; the
	// head-to-head matrix is the same points re-indexed by opponent.
	if points != float64(wantMatches) || h2h != float64(wantMatches) {
		t.Fatalf("points %v / head-to-head %v, want both %d", points, h2h, wantMatches)
	}
}

func TestConfigValidate(t *testing.T) {
	base := goldenConfig(t)
	for name, mutate := range map[string]func(*Config){
		"one seat":        func(c *Config) { c.Seats = c.Seats[:1] },
		"empty seat name": func(c *Config) { c.Seats[0].Name = "" },
		"duplicate seat":  func(c *Config) { c.Seats[1].Name = c.Seats[0].Name },
		"negative csn":    func(c *Config) { c.CSN = -1 },
	} {
		cfg := base
		cfg.Seats = append([]Seat(nil), base.Seats...)
		mutate(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("%s: Run accepted invalid config", name)
		}
	}
}

func TestDefaults(t *testing.T) {
	cfg := Config{Seats: BaselineSeats()}.withDefaults()
	if cfg.PerSide != 10 || cfg.MatchesPerPair != 2 || cfg.Rounds != 100 {
		t.Fatalf("defaults = PerSide %d, MatchesPerPair %d, Rounds %d", cfg.PerSide, cfg.MatchesPerPair, cfg.Rounds)
	}
	if cfg.Mode.Name == "" {
		t.Fatal("default path mode not applied")
	}
	if err := cfg.Game.Validate(); err != nil {
		t.Fatalf("default game config invalid: %v", err)
	}
}

func TestRunContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunContext(ctx, goldenConfig(t)); err == nil {
		t.Fatal("RunContext ignored cancelled context")
	}
}

func TestPopulationSeat(t *testing.T) {
	c := testChampion(t, "x", "0101011011111")
	s, err := c.Strategy()
	if err != nil {
		t.Fatal(err)
	}
	seat := PopulationSeat("final-best", s)
	if seat.Name != "population/final-best" || seat.Kind != SeatPopulation {
		t.Fatalf("PopulationSeat = %+v", seat)
	}
}
