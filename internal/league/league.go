package league

import (
	"context"
	"fmt"
	"sort"

	"adhocga/internal/game"
	"adhocga/internal/network"
	"adhocga/internal/rng"
	"adhocga/internal/runner"
	"adhocga/internal/strategy"
	"adhocga/internal/tournament"
)

// Seat kinds: where a league participant came from.
const (
	SeatChampion   = "champion"   // archived hall-of-fame strategy
	SeatBaseline   = "baseline"   // scripted agent
	SeatPopulation = "population" // current-population snapshot
)

// Seat is one league participant: a named strategy. In a match the seat
// is expanded to Config.PerSide identical players, so the league measures
// strategy-vs-strategy outcomes (a homogeneous team per side) rather than
// single-player luck.
type Seat struct {
	Name     string            `json:"name"`
	Kind     string            `json:"kind"`
	Genome   string            `json:"genome"`
	Strategy strategy.Strategy `json:"-"`
}

// BaselineSeats returns the scripted agents every league can include:
// the unconditional altruist, the unconditional defector, and the
// paper's Table 7 reciprocal winner.
func BaselineSeats() []Seat {
	return []Seat{
		{Name: "baseline/all-forward", Kind: SeatBaseline, Strategy: strategy.AllForward()},
		{Name: "baseline/never-forward", Kind: SeatBaseline, Strategy: strategy.AllDiscard()},
		{Name: "baseline/paper-winner", Kind: SeatBaseline, Strategy: strategy.MustParse("010 101 101 111 1")},
	}
}

// ChampionSeat converts an archived champion into a league seat named
// "champion/<id>".
func ChampionSeat(c Champion) (Seat, error) {
	s, err := c.Strategy()
	if err != nil {
		return Seat{}, err
	}
	return Seat{Name: "champion/" + c.ID, Kind: SeatChampion, Genome: c.Genome, Strategy: s}, nil
}

// PopulationSeat wraps a current-population strategy (typically a run's
// final best genome) as a league seat.
func PopulationSeat(name string, s strategy.Strategy) Seat {
	return Seat{Name: "population/" + name, Kind: SeatPopulation, Strategy: s}
}

// Config parameterizes a league run: who plays, how each pairing is
// staged, and the root seed everything derives from.
type Config struct {
	// Seats are the participants, in a caller-chosen deterministic order
	// (the head-to-head matrix is indexed by this order). Names must be
	// unique. At least two.
	Seats []Seat
	// PerSide is how many identical players represent each seat in a
	// match (default 10). CSN constantly selfish nodes join every match
	// as environmental pressure (default 0).
	PerSide int
	CSN     int
	// MatchesPerPair repeats each pairing under fresh seeds (default 2);
	// Rounds is the tournament length per match (default 100).
	MatchesPerPair int
	Rounds         int
	// Mode is the path mode (default SP); Game the game rules (zero value
	// = paper defaults); Seed the root seed.
	Mode network.PathMode
	Game game.Config
	Seed uint64
	// Parallelism bounds concurrent matches (0 = GOMAXPROCS). It cannot
	// change results: match seeds are pre-derived and outcomes land in
	// index-addressed slots.
	Parallelism int
}

func (c Config) withDefaults() Config {
	if c.PerSide == 0 {
		c.PerSide = 10
	}
	if c.MatchesPerPair == 0 {
		c.MatchesPerPair = 2
	}
	if c.Rounds == 0 {
		c.Rounds = 100
	}
	if c.Mode.Name == "" {
		c.Mode = network.ShorterPaths()
	}
	if c.Game == (game.Config{}) {
		c.Game = game.DefaultConfig()
	}
	return c
}

// Validate checks a defaulted config.
func (c Config) Validate() error {
	if len(c.Seats) < 2 {
		return fmt.Errorf("league: need at least 2 seats, have %d", len(c.Seats))
	}
	seen := make(map[string]bool, len(c.Seats))
	for _, s := range c.Seats {
		if s.Name == "" {
			return fmt.Errorf("league: seat with empty name")
		}
		if seen[s.Name] {
			return fmt.Errorf("league: duplicate seat %q", s.Name)
		}
		seen[s.Name] = true
	}
	if c.PerSide < 1 {
		return fmt.Errorf("league: per-side count must be ≥ 1, got %d", c.PerSide)
	}
	if c.CSN < 0 {
		return fmt.Errorf("league: negative CSN count")
	}
	if c.MatchesPerPair < 1 {
		return fmt.Errorf("league: matches per pair must be ≥ 1, got %d", c.MatchesPerPair)
	}
	if c.Rounds < 1 {
		return fmt.Errorf("league: rounds must be ≥ 1, got %d", c.Rounds)
	}
	return c.Game.Validate()
}

// Standing is one seat's row in the league table.
type Standing struct {
	Name   string `json:"name"`
	Kind   string `json:"kind"`
	Genome string `json:"genome,omitempty"`
	Played int    `json:"played"`
	Wins   int    `json:"wins"`
	Draws  int    `json:"draws"`
	Losses int    `json:"losses"`
	// Points is wins + draws/2; WinRate is points normalized by matches
	// played; MeanPayoff is the seat's mean per-player eq. 1 fitness over
	// all of its matches.
	Points     float64 `json:"points"`
	WinRate    float64 `json:"win_rate"`
	MeanPayoff float64 `json:"mean_payoff"`
}

// Table is the league outcome: standings sorted best-first plus the full
// head-to-head matrix. Its JSON form is deterministic for a fixed Config
// regardless of parallelism — the determinism tests byte-compare it.
type Table struct {
	// Seats lists seat names in Config order; HeadToHead is indexed by
	// this order: HeadToHead[i][j] holds the points seat i took from its
	// matches against seat j (win 1, draw ½ each).
	Seats      []string    `json:"seats"`
	Standings  []Standing  `json:"standings"`
	HeadToHead [][]float64 `json:"head_to_head"`
	// Matches is the total number of matches played.
	Matches int    `json:"matches"`
	Seed    uint64 `json:"seed"`
}

// Winner returns the name at the top of the standings.
func (t *Table) Winner() string {
	if len(t.Standings) == 0 {
		return ""
	}
	return t.Standings[0].Name
}

// Run plays the league. See RunContext.
func Run(cfg Config) (*Table, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext plays a full round-robin league: every pair of seats meets
// MatchesPerPair times, each match seating PerSide copies of both
// strategies plus CSN selfish nodes in one tournament evaluation (the
// same Evaluate path the GA engine scores generations with), and each
// side scoring the mean eq. 1 fitness of its players. The side with the
// higher mean wins the match; exact ties split the point.
//
// Deterministic for a fixed config at any Parallelism/GOMAXPROCS: match
// seeds are drawn from the root seed in (pair, repetition) order before
// any match runs, and every match owns all of its mutable state.
func RunContext(ctx context.Context, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}

	type match struct {
		a, b int // seat indices, a < b
		seed uint64
		// filled by the worker:
		payoffA, payoffB float64
	}
	master := rng.New(cfg.Seed)
	var matches []match
	for a := 0; a < len(cfg.Seats); a++ {
		for b := a + 1; b < len(cfg.Seats); b++ {
			for rep := 0; rep < cfg.MatchesPerPair; rep++ {
				matches = append(matches, match{a: a, b: b, seed: master.Uint64()})
			}
		}
	}

	err := runner.RunContext(ctx, len(matches), func(i int) error {
		m := &matches[i]
		pa, pb, err := playMatch(cfg.Seats[m.a], cfg.Seats[m.b], cfg, m.seed)
		if err != nil {
			return err
		}
		m.payoffA, m.payoffB = pa, pb
		return nil
	}, runner.Options{Parallelism: cfg.Parallelism})
	if err != nil {
		return nil, err
	}

	n := len(cfg.Seats)
	t := &Table{
		Seats:      make([]string, n),
		Standings:  make([]Standing, n),
		HeadToHead: make([][]float64, n),
		Matches:    len(matches),
		Seed:       cfg.Seed,
	}
	payoff := make([]float64, n)
	played := make([]int, n)
	for i, s := range cfg.Seats {
		t.Seats[i] = s.Name
		t.HeadToHead[i] = make([]float64, n)
		genome := s.Genome
		if genome == "" {
			genome = s.Strategy.Key()
		}
		t.Standings[i] = Standing{Name: s.Name, Kind: s.Kind, Genome: genome}
	}
	for _, m := range matches {
		sa, sb := &t.Standings[m.a], &t.Standings[m.b]
		sa.Played++
		sb.Played++
		played[m.a]++
		played[m.b]++
		payoff[m.a] += m.payoffA
		payoff[m.b] += m.payoffB
		switch {
		case m.payoffA > m.payoffB:
			sa.Wins++
			sb.Losses++
			t.HeadToHead[m.a][m.b]++
		case m.payoffB > m.payoffA:
			sb.Wins++
			sa.Losses++
			t.HeadToHead[m.b][m.a]++
		default:
			sa.Draws++
			sb.Draws++
			t.HeadToHead[m.a][m.b] += 0.5
			t.HeadToHead[m.b][m.a] += 0.5
		}
	}
	for i := range t.Standings {
		s := &t.Standings[i]
		s.Points = float64(s.Wins) + float64(s.Draws)/2
		if s.Played > 0 {
			s.WinRate = s.Points / float64(s.Played)
			s.MeanPayoff = payoff[i] / float64(played[i])
		}
	}
	sort.SliceStable(t.Standings, func(i, j int) bool {
		si, sj := t.Standings[i], t.Standings[j]
		if si.Points != sj.Points {
			return si.Points > sj.Points
		}
		if si.MeanPayoff != sj.MeanPayoff {
			return si.MeanPayoff > sj.MeanPayoff
		}
		return si.Name < sj.Name
	})
	return t, nil
}

// playMatch stages one match between two seats and returns each side's
// mean per-player fitness. The match is a single-environment tournament
// evaluation over a fixed roster: PerSide players per seat plus CSN
// selfish nodes, exactly the opponent-seat path the engine uses.
func playMatch(a, b Seat, cfg Config, seed uint64) (payoffA, payoffB float64, err error) {
	var normals []*game.Player
	id := network.NodeID(0)
	for i := 0; i < cfg.PerSide; i++ {
		normals = append(normals, game.NewNormal(id, a.Strategy))
		id++
	}
	for i := 0; i < cfg.PerSide; i++ {
		normals = append(normals, game.NewNormal(id, b.Strategy))
		id++
	}
	var csn []*game.Player
	for i := 0; i < cfg.CSN; i++ {
		csn = append(csn, game.NewSelfish(id))
		id++
	}
	registry := tournament.BuildRegistry(normals, csn)

	ecfg := &tournament.EvalConfig{
		TournamentSize: 2*cfg.PerSide + cfg.CSN,
		PlaysPerEnv:    1,
		Environments:   []tournament.Environment{{Name: "league", CSN: cfg.CSN}},
		Tournament: tournament.Config{
			Rounds: cfg.Rounds,
			Mode:   cfg.Mode,
			Game:   cfg.Game,
		},
	}
	gen := network.NewGenerator(cfg.Mode)
	if err := tournament.Evaluate(normals, csn, registry, ecfg, gen, rng.New(seed), nil); err != nil {
		return 0, 0, fmt.Errorf("league: match %s vs %s: %w", a.Name, b.Name, err)
	}

	for i, p := range normals {
		if i < cfg.PerSide {
			payoffA += p.Acct.Fitness()
		} else {
			payoffB += p.Acct.Fitness()
		}
	}
	payoffA /= float64(cfg.PerSide)
	payoffB /= float64(cfg.PerSide)
	return payoffA, payoffB, nil
}
