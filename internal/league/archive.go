package league

import (
	"fmt"
	"sort"
	"sync"

	"adhocga/internal/jobstore"
)

// RecordKind tags champion records in a jobstore so the archive can
// coexist with (and be distinguished from) job records.
const RecordKind = "champion"

// Archive is the hall of fame: a set of champions kept in memory for
// queries and written through to a jobstore.Store so they survive
// restarts. Champions ride the store's existing WAL machinery — framing,
// per-line checksums, torn-tail repair, compaction — as Kind "champion"
// records whose Spec is the self-checking codec envelope. The archive
// should own its store (a dedicated directory for the file backend); it
// is not designed to share one with the service's job records.
//
// All methods are safe for concurrent use.
type Archive struct {
	store jobstore.Store

	mu      sync.Mutex
	byID    map[string]Champion
	order   []string // first-Put order, mirrors the store's List order
	skipped int      // corrupt records dropped while loading
}

// NewArchive wraps a store, loading every existing champion record.
// Records that fail to decode (corruption that slipped past the WAL's
// own checksums, or foreign kinds) are skipped and counted, never fatal:
// a damaged champion must not take down the rest of the hall of fame.
func NewArchive(store jobstore.Store) (*Archive, error) {
	a := &Archive{store: store, byID: make(map[string]Champion)}
	recs, err := store.List()
	if err != nil {
		return nil, fmt.Errorf("league: load archive: %w", err)
	}
	for _, rec := range recs {
		if rec.Kind != RecordKind {
			a.skipped++
			continue
		}
		c, err := DecodeChampion(rec.Spec)
		if err != nil || c.ID != rec.ID {
			a.skipped++
			continue
		}
		a.byID[c.ID] = c
		a.order = append(a.order, c.ID)
	}
	return a, nil
}

// OpenDir opens (or creates) a file-backed archive in dir.
func OpenDir(dir string) (*Archive, error) {
	st, err := jobstore.OpenFile(dir)
	if err != nil {
		return nil, fmt.Errorf("league: open archive: %w", err)
	}
	a, err := NewArchive(st)
	if err != nil {
		st.Close()
		return nil, err
	}
	return a, nil
}

// NewMemArchive returns an archive over an in-memory store, for sessions
// that want checkpoints without durability.
func NewMemArchive() *Archive {
	a, _ := NewArchive(jobstore.NewMem()) // Mem.List never fails on empty
	return a
}

// Put validates, encodes, and persists a champion. Re-putting the same ID
// replaces the record (champion IDs are deterministic in their
// provenance, so a recovered job overwrites itself with identical bytes
// rather than duplicating).
func (a *Archive) Put(c Champion) error {
	env, err := EncodeChampion(c)
	if err != nil {
		return err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if err := a.store.Put(jobstore.Record{
		ID:    c.ID,
		Kind:  RecordKind,
		Spec:  env,
		Seed:  c.Seed,
		State: jobstore.StateDone,
	}); err != nil {
		return fmt.Errorf("league: archive put %s: %w", c.ID, err)
	}
	if _, ok := a.byID[c.ID]; !ok {
		a.order = append(a.order, c.ID)
	}
	a.byID[c.ID] = c
	return nil
}

// Get returns the champion with the given ID.
func (a *Archive) Get(id string) (Champion, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	c, ok := a.byID[id]
	return c, ok
}

// List returns all champions in first-Put order (archival order, which is
// checkpoint order within a job). The slice is the caller's to keep.
func (a *Archive) List() []Champion {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]Champion, 0, len(a.order))
	for _, id := range a.order {
		out = append(out, a.byID[id])
	}
	return out
}

// Select resolves champion IDs to champions. An empty ids slice selects
// the whole archive sorted by ID — a stable, store-order-independent
// default for league seating. Unknown IDs are an error, so a league over
// a mistyped champion fails loudly instead of silently shrinking.
func (a *Archive) Select(ids []string) ([]Champion, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(ids) == 0 {
		ids = make([]string, len(a.order))
		copy(ids, a.order)
		sort.Strings(ids)
	}
	out := make([]Champion, 0, len(ids))
	for _, id := range ids {
		c, ok := a.byID[id]
		if !ok {
			return nil, fmt.Errorf("league: unknown champion %q", id)
		}
		out = append(out, c)
	}
	return out, nil
}

// Len reports the number of archived champions.
func (a *Archive) Len() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.byID)
}

// Skipped reports how many store records were dropped as corrupt or
// foreign while loading.
func (a *Archive) Skipped() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.skipped
}

// Backend names the underlying store's backend ("mem", "file").
func (a *Archive) Backend() string { return a.store.Backend() }

// Close releases the underlying store.
func (a *Archive) Close() error { return a.store.Close() }
