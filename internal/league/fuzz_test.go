package league

import (
	"testing"
)

// FuzzChampionCodec attacks DecodeChampion with arbitrary bytes —
// truncations, bit flips, valid-JSON-wrong-schema documents, binary
// noise. The decoder must never panic; anything it does accept must be
// internally consistent (Validate passes) and must re-encode to an
// envelope that decodes back to the identical champion. CI runs this as
// a short -fuzztime smoke on top of the checked-in corpus
// (testdata/fuzz); locally run e.g.
//
//	go test -fuzz FuzzChampionCodec -fuzztime 30s ./internal/league/
func FuzzChampionCodec(f *testing.F) {
	// A valid envelope to mutate from, its interesting prefixes, and
	// shapes that probe each decoder stage.
	seed := Champion{
		ID: "job-1/case 1/r0/g10", Job: "job-1", Scenario: "case 1",
		Generation: 10, Genome: "0101011011111", Seed: 42,
		Fitness: 1.5, MeanFitness: 1.25, Cooperation: 0.75,
	}
	if err := seed.Fill(); err != nil {
		f.Fatal(err)
	}
	valid, err := EncodeChampion(seed)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte(``))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"crc":"00000000","champion":{"id":"x","genome":"0101011011111"}}`))
	f.Add([]byte(`{"crc":"ffffffff","champion":null}`))
	f.Add([]byte("\x00\x01\x02\xff"))
	f.Fuzz(func(t *testing.T, b []byte) {
		c, err := DecodeChampion(b)
		if err != nil {
			return
		}
		// Accepted input: the champion must satisfy its own invariants and
		// survive a lossless round trip.
		if err := c.Validate(); err != nil {
			t.Fatalf("decoder accepted invalid champion %+v: %v", c, err)
		}
		env, err := EncodeChampion(c)
		if err != nil {
			t.Fatalf("accepted champion does not re-encode: %v", err)
		}
		again, err := DecodeChampion(env)
		if err != nil {
			t.Fatalf("re-encoded envelope does not decode: %v", err)
		}
		if again != c {
			t.Fatalf("round trip changed champion:\nfirst  %+v\nsecond %+v", c, again)
		}
	})
}
