package game

import (
	"math"
	"testing"

	"adhocga/internal/network"
	"adhocga/internal/rng"
	"adhocga/internal/strategy"
)

func defaultCfg() *Config {
	cfg := DefaultConfig()
	return &cfg
}

func normals(n int, s strategy.Strategy) []*Player {
	ps := make([]*Player, n)
	for i := range ps {
		ps[i] = NewNormal(network.NodeID(i), s)
	}
	return ps
}

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if err := DefaultPayoffs().Validate(); err != nil {
		t.Fatalf("default payoffs invalid: %v", err)
	}
	if err := NoReputationPayoffs().Validate(); err != nil {
		t.Fatalf("ablation payoffs invalid: %v", err)
	}
}

func TestPayoffTableProperties(t *testing.T) {
	p := DefaultPayoffs()
	// §4.2: higher trust → higher forwarding payoff.
	for i := 1; i < strategy.NumTrustLevels; i++ {
		if p.Forward[i] <= p.Forward[i-1] {
			t.Errorf("forward payoff not increasing at level %d: %v", i, p.Forward)
		}
	}
	// Discarding a trusted source must pay less than forwarding for it,
	// and vice versa for untrusted sources — otherwise no dilemma exists.
	if p.Discard[strategy.Trust3] >= p.Forward[strategy.Trust3] {
		t.Error("discarding for trust-3 sources should pay less than forwarding")
	}
	if p.Discard[strategy.Trust0] <= p.Forward[strategy.Trust0] {
		t.Error("discarding for trust-0 sources should pay more than forwarding")
	}
	// §3.3 reading: discarding for "less trusted" (1) pays more than for
	// "untrusted" (0).
	if p.Discard[strategy.Trust1] <= p.Discard[strategy.Trust0] {
		t.Error("discard payoff at trust 1 should exceed trust 0 (paper §4.2)")
	}
}

func TestValidateRejectsBrokenTables(t *testing.T) {
	p := DefaultPayoffs()
	p.SourceSuccess = -1
	if err := p.Validate(); err == nil {
		t.Error("success < failure accepted")
	}
	p = DefaultPayoffs()
	p.Forward[2] = -0.5
	if err := p.Validate(); err == nil {
		t.Error("negative payoff accepted")
	}
	p = DefaultPayoffs()
	p.Forward[3] = 0.1 // breaks monotonicity
	if err := p.Validate(); err == nil {
		t.Error("non-monotone forward payoffs accepted")
	}
	cfg := DefaultConfig()
	cfg.UnknownTrust = strategy.TrustLevel(7)
	if err := cfg.Validate(); err == nil {
		t.Error("invalid unknown trust accepted")
	}
	cfg = DefaultConfig()
	cfg.ActivityBand = 1.5
	if err := cfg.Validate(); err == nil {
		t.Error("activity band over 1 accepted")
	}
}

func TestAccountFitnessEq1(t *testing.T) {
	var a Account
	if a.Fitness() != 0 {
		t.Error("empty account fitness should be 0")
	}
	a.SourcePayoff = 5
	a.ForwardPayoff = 2
	a.DiscardPayoff = 3
	a.Events = 4
	if got := a.Fitness(); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("fitness = %v, want 2.5", got)
	}
	a.Reset()
	if a.Events != 0 || a.Fitness() != 0 {
		t.Error("Reset did not clear the account")
	}
}

func TestPlayAllForwardDelivers(t *testing.T) {
	cfg := defaultCfg()
	ps := normals(4, strategy.AllForward())
	src, inters := ps[0], ps[1:]
	delivered := Play(src, inters, cfg, nil)
	if !delivered {
		t.Fatal("all-forward chain did not deliver")
	}
	// Source: success payoff, one event.
	if src.Acct.SourcePayoff != cfg.Payoffs.SourceSuccess || src.Acct.Events != 1 {
		t.Errorf("source account %+v", src.Acct)
	}
	if src.Acct.Sent != 1 || src.Acct.Delivered != 1 {
		t.Errorf("source counters %+v", src.Acct)
	}
	// Every intermediate forwarded for an unknown source: priced at the
	// unknown trust level (1).
	want := cfg.Payoffs.Forward[strategy.Trust1]
	for i, p := range inters {
		if p.Acct.ForwardPayoff != want || p.Acct.Events != 1 {
			t.Errorf("intermediate %d account %+v", i, p.Acct)
		}
	}
}

func TestPlayFirstIntermediateDrops(t *testing.T) {
	cfg := defaultCfg()
	src := NewNormal(0, strategy.AllForward())
	dropper := NewSelfish(1)
	after := NewNormal(2, strategy.AllForward())
	delivered := Play(src, []*Player{dropper, after}, cfg, nil)
	if delivered {
		t.Fatal("packet delivered through a selfish first hop")
	}
	if src.Acct.SourcePayoff != cfg.Payoffs.SourceFailure {
		t.Errorf("source payoff %v, want failure payoff", src.Acct.SourcePayoff)
	}
	// The dropper is paid the discard payoff at unknown trust.
	if dropper.Acct.DiscardPayoff != cfg.Payoffs.Discard[strategy.Trust1] {
		t.Errorf("dropper payoff %v", dropper.Acct.DiscardPayoff)
	}
	// The node after the dropper never saw the packet: no events, no
	// reputation data.
	if after.Acct.Events != 0 {
		t.Errorf("downstream node has %d events", after.Acct.Events)
	}
	if after.Rep.KnownCount() != 0 {
		t.Error("downstream node learned something it could not observe")
	}
	// The source observed the drop.
	if rate, known := src.Rep.ForwardingRate(1); !known || rate != 0 {
		t.Errorf("source's rate for dropper = %v,%v, want 0,true", rate, known)
	}
	// The source knows nothing about the node after the dropper.
	if src.Rep.Known(2) {
		t.Error("source learned about a node that never received the packet")
	}
}

func TestPlayMidChainDropReputationFlow(t *testing.T) {
	// Fig 1a: A -> B -> C -> D -> E with D dropping. B and C forward.
	cfg := defaultCfg()
	a := NewNormal(0, strategy.AllForward())
	b := NewNormal(1, strategy.AllForward())
	c := NewNormal(2, strategy.AllForward())
	d := NewSelfish(3)
	delivered := Play(a, []*Player{b, c, d}, cfg, nil)
	if delivered {
		t.Fatal("delivered through CSN")
	}
	// A updates about B, C (forwarded) and D (dropped).
	for _, tc := range []struct {
		id   network.NodeID
		rate float64
	}{{1, 1}, {2, 1}, {3, 0}} {
		rate, known := a.Rep.ForwardingRate(tc.id)
		if !known || rate != tc.rate {
			t.Errorf("A's rate for %d = %v,%v, want %v,true", tc.id, rate, known, tc.rate)
		}
	}
	// B updates about C and D, not about itself or A.
	if b.Rep.Known(1) || b.Rep.Known(0) {
		t.Error("B has reputation data about itself or the source")
	}
	if rate, known := b.Rep.ForwardingRate(2); !known || rate != 1 {
		t.Errorf("B's rate for C = %v,%v", rate, known)
	}
	if rate, known := b.Rep.ForwardingRate(3); !known || rate != 0 {
		t.Errorf("B's rate for D = %v,%v", rate, known)
	}
	// C updates about B (upstream forwarder) and D (observed drop).
	if rate, known := c.Rep.ForwardingRate(1); !known || rate != 1 {
		t.Errorf("C's rate for B = %v,%v", rate, known)
	}
	if rate, known := c.Rep.ForwardingRate(3); !known || rate != 0 {
		t.Errorf("C's rate for D = %v,%v", rate, known)
	}
	// The dropper D records nothing (Fig 1a shows no update at D).
	if d.Rep.KnownCount() != 0 {
		t.Errorf("dropper recorded %d observations", d.Rep.KnownCount())
	}
}

func TestPlaySuccessAllParticipantsObserve(t *testing.T) {
	cfg := defaultCfg()
	ps := normals(4, strategy.AllForward())
	Play(ps[0], ps[1:], cfg, nil)
	// Every participant (incl. the last intermediate) observes every other
	// intermediate as having forwarded.
	for _, observer := range ps {
		for _, observed := range ps[1:] {
			if observer == observed {
				continue
			}
			rate, known := observer.Rep.ForwardingRate(observed.ID)
			if !known || rate != 1 {
				t.Errorf("player %d rate for %d = %v,%v, want 1,true",
					observer.ID, observed.ID, rate, known)
			}
		}
		if observer.Rep.Known(observer.ID) {
			t.Errorf("player %d observed itself", observer.ID)
		}
		if observer != ps[0] && observer.Rep.Known(ps[0].ID) {
			t.Errorf("player %d has data about the source, which forwarded nothing", observer.ID)
		}
	}
}

func TestPlayDirectContactNoIntermediates(t *testing.T) {
	// The geometric substrate can produce direct src→dst radio contact:
	// no intermediates, automatic delivery, no decisions, no reputation.
	cfg := defaultCfg()
	src := NewNormal(0, strategy.AllDiscard()) // even a defector delivers directly
	delivered := Play(src, nil, cfg, nil)
	if !delivered {
		t.Fatal("direct contact failed to deliver")
	}
	if src.Acct.SourcePayoff != cfg.Payoffs.SourceSuccess || src.Acct.Events != 1 {
		t.Errorf("source account %+v", src.Acct)
	}
	if src.Rep.KnownCount() != 0 {
		t.Error("direct contact produced reputation data")
	}
}

func TestDecideUsesTrustAndActivity(t *testing.T) {
	cfg := defaultCfg()
	// Strategy: forward only for trust ≥ 2.
	p := NewNormal(9, strategy.ForwardAtOrAbove(strategy.Trust2, strategy.Discard))
	// Unknown source → bit 12 → discard, priced at unknown trust (1).
	dec, tl := p.Decide(5, cfg)
	if dec != strategy.Discard || tl != strategy.Trust1 {
		t.Errorf("unknown source: %v at %v", dec, tl)
	}
	// Source with perfect forwarding record → trust 3 → forward.
	for i := 0; i < 10; i++ {
		p.Rep.Observe(5, true)
	}
	dec, tl = p.Decide(5, cfg)
	if dec != strategy.Forward || tl != strategy.Trust3 {
		t.Errorf("trusted source: %v at %v", dec, tl)
	}
	// Source with terrible record → trust 0 → discard.
	for i := 0; i < 50; i++ {
		p.Rep.Observe(6, false)
	}
	dec, tl = p.Decide(6, cfg)
	if dec != strategy.Discard || tl != strategy.Trust0 {
		t.Errorf("untrusted source: %v at %v", dec, tl)
	}
}

func TestSelfishAlwaysDiscards(t *testing.T) {
	cfg := defaultCfg()
	p := NewSelfish(1)
	// Even a perfectly trusted source gets dropped.
	for i := 0; i < 10; i++ {
		p.Rep.Observe(2, true)
	}
	if dec, _ := p.Decide(2, cfg); dec != strategy.Discard {
		t.Error("selfish node forwarded")
	}
	if p.Type != Selfish || p.Type.String() != "selfish" {
		t.Error("selfish type wrong")
	}
	if Normal.String() != "normal" {
		t.Error("normal type string wrong")
	}
}

func TestResetForGeneration(t *testing.T) {
	p := NewNormal(0, strategy.AllForward())
	p.Rep.Observe(1, true)
	p.Acct.Events = 5
	p.ResetForGeneration()
	if p.Rep.KnownCount() != 0 || p.Acct.Events != 0 {
		t.Error("ResetForGeneration left state behind")
	}
}

type captureRecorder struct {
	src       *Player
	nInters   int
	firstDrop int
	calls     int
}

func (c *captureRecorder) RecordGame(src *Player, inters []*Player, firstDrop int) {
	c.src = src
	c.nInters = len(inters)
	c.firstDrop = firstDrop
	c.calls++
}

func TestPlayNotifiesRecorder(t *testing.T) {
	cfg := defaultCfg()
	rec := &captureRecorder{}
	src := NewNormal(0, strategy.AllForward())
	drop := NewSelfish(1)
	Play(src, []*Player{drop}, cfg, rec)
	if rec.calls != 1 || rec.src != src || rec.nInters != 1 || rec.firstDrop != 0 {
		t.Errorf("recorder saw %+v", rec)
	}
	ok := normals(3, strategy.AllForward())
	Play(ok[0], ok[1:], cfg, rec)
	if rec.calls != 2 || rec.firstDrop != -1 {
		t.Errorf("recorder after success: %+v", rec)
	}
}

func TestPlayPayoffUsesDecidersTrustLevel(t *testing.T) {
	cfg := defaultCfg()
	src := NewNormal(0, strategy.AllForward())
	inter := NewNormal(1, strategy.AllForward())
	// inter trusts the source at level 3.
	for i := 0; i < 10; i++ {
		inter.Rep.Observe(0, true)
	}
	Play(src, []*Player{inter}, cfg, nil)
	if inter.Acct.ForwardPayoff != cfg.Payoffs.Forward[strategy.Trust3] {
		t.Errorf("forward payoff %v, want trust-3 price %v",
			inter.Acct.ForwardPayoff, cfg.Payoffs.Forward[strategy.Trust3])
	}
}

// Invariant sweep: random strategies, random chains — events bookkeeping
// and reputation counters must stay consistent.
func TestPlayInvariantsRandomized(t *testing.T) {
	cfg := defaultCfg()
	r := rng.New(77)
	for trial := 0; trial < 2000; trial++ {
		n := r.IntRange(2, 10)
		players := make([]*Player, n)
		for i := range players {
			if r.Bool(0.3) {
				players[i] = NewSelfish(network.NodeID(i))
			} else {
				players[i] = NewNormal(network.NodeID(i), strategy.Random(r))
			}
		}
		src, inters := players[0], players[1:]
		delivered := Play(src, inters, cfg, nil)

		totalEvents := src.Acct.Events
		drops := 0
		for _, p := range inters {
			totalEvents += p.Acct.Events
			drops += p.Acct.Discards
		}
		if delivered && drops != 0 {
			t.Fatal("delivered game recorded a drop")
		}
		if !delivered && drops != 1 {
			t.Fatalf("failed game recorded %d drops", drops)
		}
		// Events: 1 for the source + 1 per intermediate that decided.
		decided := 0
		for _, p := range inters {
			decided += p.Acct.Forwards + p.Acct.Discards
		}
		if totalEvents != 1+decided {
			t.Fatalf("event accounting mismatch: %d != %d", totalEvents, 1+decided)
		}
		// Reputation: requests about node j can only come from observers.
		for _, p := range players {
			if p.Rep.Known(p.ID) {
				t.Fatal("self-observation")
			}
		}
	}
}

func BenchmarkPlayDeliveredChain(b *testing.B) {
	cfg := defaultCfg()
	ps := normals(10, strategy.AllForward())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Play(ps[0], ps[1:], cfg, nil)
	}
}

func BenchmarkDecide(b *testing.B) {
	cfg := defaultCfg()
	p := NewNormal(0, strategy.MustParse("010 101 101 111 1"))
	for i := 0; i < 100; i++ {
		p.Rep.Observe(1, i%4 != 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = p.Decide(1, cfg)
	}
}
