// Package game implements the Ad Hoc Network Game of §4: one node
// originates a packet, the intermediate nodes on the chosen route decide in
// order whether to forward or discard it, and every participant that saw
// the packet receives a payoff and updates its reputation memory.
//
// The packet itself is never materialized — the game is about decisions,
// payoffs and reputation, exactly as in the paper's model.
package game

import (
	"fmt"

	"adhocga/internal/network"
	"adhocga/internal/strategy"
	"adhocga/internal/trust"
)

// NodeType distinguishes the player types: the paper's two (§4.3) plus
// the Byzantine adversaries of the dynamics extension.
type NodeType uint8

const (
	// Normal nodes play an evolvable strategy and want both to send
	// packets and to save battery.
	Normal NodeType = iota
	// Selfish nodes (the paper's CSN, "constantly selfish nodes") never
	// forward and are excluded from selection and reproduction.
	Selfish
	// Byzantine nodes run a fixed adversarial behavior (see Adversary)
	// beyond plain selfishness: lying in gossip, on-off attacking, or
	// free-riding. Like CSN they participate in tournaments but never in
	// selection or reproduction.
	Byzantine
)

// String returns "normal", "selfish", or "byzantine".
func (t NodeType) String() string {
	switch t {
	case Selfish:
		return "selfish"
	case Byzantine:
		return "byzantine"
	default:
		return "normal"
	}
}

// Adversary identifies the Byzantine behavior a player runs; AdvNone for
// normal and plain-selfish players. The behaviors themselves live in
// internal/dynamics (strategy scheduling) and internal/tournament (gossip
// lying) — the game package only carries the tag so the hot path stays a
// plain strategy lookup.
type Adversary uint8

const (
	// AdvNone marks a non-adversarial player.
	AdvNone Adversary = iota
	// AdvFreeRider sources packets like everyone else but never forwards
	// (its strategy is pinned to AllDiscard). Unlike CSN, free-riders are
	// part of the dynamics cohort present in every environment.
	AdvFreeRider
	// AdvLiar forwards reliably to keep its own reputation high, but
	// injects inverted observations when chosen as a gossip peer
	// (trust.MergeInverted).
	AdvLiar
	// AdvOnOff alternates between a forwarding phase (building trust) and
	// a discarding phase, on a fixed round schedule driven by the dynamics
	// layer through the tournament's RoundDriver hook.
	AdvOnOff
)

// String returns the adversary kind's short name.
func (a Adversary) String() string {
	switch a {
	case AdvFreeRider:
		return "free-rider"
	case AdvLiar:
		return "liar"
	case AdvOnOff:
		return "on-off"
	default:
		return "none"
	}
}

// PayoffTable holds the two payoff tables of Fig 2a. Forward and Discard
// are indexed by the deciding node's trust level in the packet's source.
type PayoffTable struct {
	SourceSuccess float64 // source payoff when the packet is delivered ("S")
	SourceFailure float64 // source payoff when any intermediate drops ("F")
	Forward       [strategy.NumTrustLevels]float64
	Discard       [strategy.NumTrustLevels]float64
}

// DefaultPayoffs returns the reproduction's reading of Fig 2a (see
// DESIGN.md §3 for the reconstruction of the garbled scan): forwarding
// pays more for more trusted sources (0.3/0.5/1/2 for trust 0..3), and
// discarding pays most for barely-trusted sources (2/3/1/0.5).
func DefaultPayoffs() PayoffTable {
	return PayoffTable{
		SourceSuccess: 5,
		SourceFailure: 0,
		Forward:       [strategy.NumTrustLevels]float64{0.3, 0.5, 1.0, 2.0},
		Discard:       [strategy.NumTrustLevels]float64{2.0, 3.0, 1.0, 0.5},
	}
}

// NoReputationPayoffs returns the counterfactual table the paper describes
// in §4.2: "If such system was not used, the payoff for selfish behavior
// (discarding packets) would always be higher than for forwarding." It is
// used by the ablation benchmark to show cooperation collapsing.
func NoReputationPayoffs() PayoffTable {
	return PayoffTable{
		SourceSuccess: 5,
		SourceFailure: 0,
		Forward:       [strategy.NumTrustLevels]float64{0.3, 0.5, 1.0, 2.0},
		Discard:       [strategy.NumTrustLevels]float64{3.0, 3.0, 3.0, 3.0},
	}
}

// Validate checks structural sanity: no negative payoffs, success paying
// at least failure, and forwarding payoff non-decreasing in trust (the
// §4.2 design property "the higher the trust level is the higher payoff").
func (p PayoffTable) Validate() error {
	if p.SourceSuccess < p.SourceFailure {
		return fmt.Errorf("game: source success payoff %v below failure payoff %v", p.SourceSuccess, p.SourceFailure)
	}
	for i := 0; i < strategy.NumTrustLevels; i++ {
		if p.Forward[i] < 0 || p.Discard[i] < 0 {
			return fmt.Errorf("game: negative payoff at trust level %d", i)
		}
		if i > 0 && p.Forward[i] < p.Forward[i-1] {
			return fmt.Errorf("game: forward payoff must be non-decreasing in trust, got %v", p.Forward)
		}
	}
	return nil
}

// Config bundles the rule parameters of the game.
type Config struct {
	Payoffs PayoffTable
	// TrustTable maps forwarding rates to trust levels (Fig 1b).
	TrustTable trust.Table
	// UnknownTrust is the trust level used for the payoff of a decision
	// about an unknown source; the paper sets it to 1 (§6.1). The
	// *decision* for unknown sources always comes from strategy bit 12.
	UnknownTrust strategy.TrustLevel
	// ActivityBand is the ± fraction around the mean that counts as
	// medium activity (§3.2; the paper uses 0.2).
	ActivityBand float64
	// BlindDecisions, when true, hides all reputation data from the
	// forwarding decision: every source looks unknown, so only strategy
	// bit 12 applies and payoffs are priced at UnknownTrust. Combined
	// with random path choice this is the paper's §4.2 counterfactual —
	// a network with no reputation system, where selfishness goes
	// unnoticed. Ablation use only.
	BlindDecisions bool

	// tablesSynced promises that every player deciding under this config
	// already has TrustTable installed in its store, letting Decide skip
	// its per-decision table compare. Only a driver that syncs all
	// participants itself (tournament.PlayWith does, once per tournament)
	// may set it, via MarkTablesSynced.
	tablesSynced bool
}

// MarkTablesSynced records that the caller has installed cfg.TrustTable
// into the reputation store of every player that will decide under this
// config, so per-decision re-sync checks can be skipped. Callers that
// cannot guarantee this for the config's whole lifetime must not call it.
func (c *Config) MarkTablesSynced() { c.tablesSynced = true }

// DefaultConfig returns the paper's configuration.
func DefaultConfig() Config {
	return Config{
		Payoffs:      DefaultPayoffs(),
		TrustTable:   trust.DefaultTable(),
		UnknownTrust: strategy.Trust1,
		ActivityBand: trust.DefaultActivityBand,
	}
}

// Validate checks the full configuration.
func (c Config) Validate() error {
	if err := c.Payoffs.Validate(); err != nil {
		return err
	}
	if err := c.TrustTable.Validate(); err != nil {
		return err
	}
	if !c.UnknownTrust.Valid() {
		return fmt.Errorf("game: invalid unknown-trust level %d", c.UnknownTrust)
	}
	if c.ActivityBand < 0 || c.ActivityBand >= 1 {
		return fmt.Errorf("game: activity band %v outside [0,1)", c.ActivityBand)
	}
	return nil
}

// Account accumulates a player's payoffs, split by origin as in the
// fitness function (eq. 1): tps from sourcing packets, tpf from
// forwarding, tpd from discarding; Events is ne.
type Account struct {
	SourcePayoff  float64
	ForwardPayoff float64
	DiscardPayoff float64
	Events        int
	// Decision counters, kept for diagnostics (not part of eq. 1).
	Sent, Delivered, Forwards, Discards int
}

// Fitness returns eq. 1: (tps + tpf + tpd) / ne, or 0 for a player with no
// events (it cannot be compared, and 0 keeps it out of the winners).
func (a *Account) Fitness() float64 {
	if a.Events == 0 {
		return 0
	}
	return (a.SourcePayoff + a.ForwardPayoff + a.DiscardPayoff) / float64(a.Events)
}

// Reset zeroes the account for a new generation.
func (a *Account) Reset() { *a = Account{} }

// Player is one network participant: an identity, a type, a strategy, a
// private reputation memory and a payoff account.
type Player struct {
	ID       network.NodeID
	Type     NodeType
	Adv      Adversary // AdvNone unless Type is Byzantine
	Strategy strategy.Strategy
	Rep      *trust.Store
	Acct     Account
}

// NewNormal returns a normal player with the given strategy.
func NewNormal(id network.NodeID, s strategy.Strategy) *Player {
	return &Player{ID: id, Type: Normal, Strategy: s, Rep: trust.NewStore()}
}

// NewSelfish returns a constantly selfish player; its strategy is pinned
// to AllDiscard.
func NewSelfish(id network.NodeID) *Player {
	return &Player{ID: id, Type: Selfish, Strategy: strategy.AllDiscard(), Rep: trust.NewStore()}
}

// NewByzantine returns a Byzantine player running the given adversarial
// behavior with the given (fixed, non-evolving) base strategy. The
// dynamics layer constructs these and may swap the strategy at round
// boundaries (on-off attacks).
func NewByzantine(id network.NodeID, adv Adversary, s strategy.Strategy) *Player {
	return &Player{ID: id, Type: Byzantine, Adv: adv, Strategy: s, Rep: trust.NewStore()}
}

// ResetForGeneration clears reputation memory and the payoff account, as
// the evaluation scheme requires at the start of each generation.
func (p *Player) ResetForGeneration() {
	p.Rep.Reset()
	p.Acct.Reset()
}

// Decide returns the player's forwarding decision about a packet from src,
// together with the trust level that prices the decision in the payoff
// table. Unknown sources are decided by strategy bit 12 and priced at
// cfg.UnknownTrust.
//
// The trust level comes from the store's cache (maintained on every
// observation), so a decision is a single dense lookup: no map probes, no
// rate division. The store's table is re-synced from cfg when it differs —
// a three-float compare in the common case — so custom-table configs stay
// correct without explicit wiring.
func (p *Player) Decide(src network.NodeID, cfg *Config) (strategy.Decision, strategy.TrustLevel) {
	if cfg.BlindDecisions {
		return p.Strategy.DecideUnknown(), cfg.UnknownTrust
	}
	if !cfg.tablesSynced && cfg.TrustTable != p.Rep.TrustTable() {
		p.Rep.SetTable(cfg.TrustTable)
	}
	tl, act, known := p.Rep.Evaluate(src, cfg.ActivityBand)
	if !known {
		return p.Strategy.DecideUnknown(), cfg.UnknownTrust
	}
	return p.Strategy.Decide(tl, act), tl
}

// Recorder observes completed games; the metrics package implements it.
// The inters slice is only valid during the call.
type Recorder interface {
	// RecordGame is called once per game with the source, the
	// intermediates of the chosen path in order, and the index of the
	// first dropper within inters (-1 when the packet was delivered).
	RecordGame(src *Player, inters []*Player, firstDrop int)
}

// Play runs one game: the source src sends a packet along the given
// intermediates. Decisions, payoffs, reputation updates, and the optional
// Recorder notification all happen here. It reports whether the packet was
// delivered.
//
// Reputation semantics (Fig 1a, pinned down in DESIGN.md): on success,
// every participant observes every intermediate (except itself) as having
// forwarded. On a drop at index k, the source and the intermediates before
// the dropper observe intermediates 0..k (forwarded for j<k, dropped for
// j==k); nodes after the dropper never saw the packet and learn nothing;
// the dropper itself propagates the alert but records no observations, as
// in the figure.
func Play(src *Player, inters []*Player, cfg *Config, rec Recorder) bool {
	var idbuf [network.MaxHops - 1]network.NodeID
	var ids []network.NodeID
	if len(inters) <= len(idbuf) {
		ids = idbuf[:len(inters)]
	} else {
		ids = make([]network.NodeID, len(inters))
	}
	for i, p := range inters {
		ids[i] = p.ID
	}
	return PlayIDs(src, inters, ids, cfg, rec)
}

// PlayIDs is Play for callers that already hold the intermediates' IDs —
// the tournament passes the chosen path's Intermediates directly, which
// skips re-gathering IDs from the players on every game.
// ids[i] must equal inters[i].ID.
func PlayIDs(src *Player, inters []*Player, ids []network.NodeID, cfg *Config, rec Recorder) bool {
	firstDrop := -1
	for i, node := range inters {
		dec, tl := node.Decide(src.ID, cfg)
		if dec == strategy.Forward {
			node.Acct.ForwardPayoff += cfg.Payoffs.Forward[tl]
			node.Acct.Events++
			node.Acct.Forwards++
			continue
		}
		node.Acct.DiscardPayoff += cfg.Payoffs.Discard[tl]
		node.Acct.Events++
		node.Acct.Discards++
		firstDrop = i
		break
	}
	delivered := firstDrop == -1

	src.Acct.Events++
	src.Acct.Sent++
	if delivered {
		src.Acct.SourcePayoff += cfg.Payoffs.SourceSuccess
		src.Acct.Delivered++
	} else {
		src.Acct.SourcePayoff += cfg.Payoffs.SourceFailure
	}

	// Reputation updates: bulk observation runs over the dense stores
	// (allocation-free in steady state — no closure, no map inserts, one
	// store call per observer). Within 0..last, "forwarded" is simply
	// j != firstDrop: on success firstDrop is -1, and on a drop
	// last == firstDrop so only the dropper itself is observed as
	// dropping. ObservePath skips the observer's own entry.
	last := len(inters) - 1 // last intermediate that received the packet
	if !delivered {
		last = firstDrop
	}
	src.Rep.ObservePath(ids[:last+1], src.ID, firstDrop)
	upTo := last // on success, every intermediate observes
	if !delivered {
		upTo = firstDrop - 1 // the dropper records nothing
	}
	for i := 0; i <= upTo; i++ {
		inters[i].Rep.ObservePath(ids[:last+1], inters[i].ID, firstDrop)
	}

	if rec != nil {
		rec.RecordGame(src, inters, firstDrop)
	}
	return delivered
}
