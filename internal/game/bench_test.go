package game

import (
	"testing"

	"adhocga/internal/network"
	"adhocga/internal/strategy"
)

// benchPlayers builds a source plus k intermediates with mixed behavior and
// warms every reputation store so the benchmark measures the steady state
// (all observation records already exist).
func benchPlayers(k int) (*Player, []*Player, Config) {
	cfg := DefaultConfig()
	src := NewNormal(0, strategy.AllForward())
	inters := make([]*Player, k)
	for i := range inters {
		s := strategy.AllForward()
		if i%3 == 2 {
			s = strategy.ForwardAtOrAbove(strategy.Trust1, strategy.Forward)
		}
		inters[i] = NewNormal(network.NodeID(i+1), s)
	}
	for i := 0; i < 32; i++ {
		Play(src, inters, &cfg, nil)
	}
	return src, inters, cfg
}

// TestPlayZeroAllocsSteadyState pins the dense-store guarantee: once every
// participant's reputation records exist, a game performs no heap
// allocations at all — no map inserts, no closures, no scratch growth.
func TestPlayZeroAllocsSteadyState(t *testing.T) {
	src, inters, cfg := benchPlayers(5)
	allocs := testing.AllocsPerRun(1000, func() {
		Play(src, inters, &cfg, nil)
	})
	if allocs != 0 {
		t.Errorf("steady-state Play allocates %v times per game, want 0", allocs)
	}
}

// BenchmarkPlay measures one steady-state game on a 5-intermediate path:
// decisions, payoffs, and the O(k²) reputation updates. The dense-store
// acceptance bar is ≥2× ns/op over the map-based seed and 0 allocs/op.
func BenchmarkPlay(b *testing.B) {
	src, inters, cfg := benchPlayers(5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Play(src, inters, &cfg, nil)
	}
}

// BenchmarkPlayLongPath is the same measurement at the paper's maximum path
// length (9 intermediates = 10 hops), where the k² observation loop
// dominates.
func BenchmarkPlayLongPath(b *testing.B) {
	src, inters, cfg := benchPlayers(9)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Play(src, inters, &cfg, nil)
	}
}
