package trust

import (
	"math"

	"adhocga/internal/network"
)

// Second-hand reputation exchange, the extension the paper's related work
// discusses (§2): CORE exchanges only positive ratings so that "a
// malicious broadcast of negative rankings for legitimate nodes is
// avoided"; CONFIDANT and Buchegger & Le Boudec's rumor-spreading study
// weigh second-hand reports below first-hand observation. MergePositive
// implements that scheme: import another node's observations about third
// parties, but only favorable ones, and scaled down by a weight.

// MergePositive imports src's observations about third parties into s:
// for every node src knows with a forwarding rate of at least minRate,
// s's counters grow by weight times src's counters (rounded, with a floor
// of one request so that tiny weights still register the node as known).
// Nodes about whom the receiver is the subject (self) are skipped, as are
// negative reports (rate below minRate).
//
// Peers are visited in ascending NodeID order — a free guarantee of the
// dense store (the map representation iterated in random order; the merge
// is commutative, so results were already order-independent, but the fixed
// order makes the traversal itself deterministic and cache-friendly).
//
// The merge is additive: gossiping the same data twice counts it twice.
// Callers model credibility by keeping weight well below 1, matching the
// "more relevance is given to ... own experience" design of CORE.
func (s *Store) MergePositive(self network.NodeID, src *Store, minRate, weight float64) {
	s.merge(self, src, minRate, weight, false)
}

// MergeInverted is the gossip-liar variant of MergePositive (see
// internal/dynamics): the receiver imports src's observations with the
// forwarding counters inverted, as a Byzantine liar would report them —
// every observed drop becomes a claimed forward and vice versa. The
// receiver's minRate filter still applies, but to the lied rate, so a
// liar's "positive" reports about heavy droppers pass the CORE-style
// positive-only filter while its slander of reliable forwarders is
// discarded. Deterministic and allocation-identical to MergePositive.
func (s *Store) MergeInverted(self network.NodeID, src *Store, minRate, weight float64) {
	s.merge(self, src, minRate, weight, true)
}

func (s *Store) merge(self network.NodeID, src *Store, minRate, weight float64, invert bool) {
	if weight <= 0 {
		return
	}
	for id := range src.rec {
		rec := &src.rec[id]
		if network.NodeID(id) == self || rec.requests == 0 {
			continue
		}
		forwards := uint64(rec.forwards)
		if invert {
			forwards = uint64(rec.requests) - forwards
		}
		// Rate from the counters, not the cached view — the cache may be
		// pending a flush.
		if float64(forwards)/float64(rec.requests) < minRate {
			continue
		}
		addReq := uint64(math.Round(float64(rec.requests) * weight))
		if addReq == 0 {
			addReq = 1
		}
		addFwd := uint64(math.Round(float64(forwards) * weight))
		if addFwd > addReq {
			addFwd = addReq
		}
		s.EnsureSize(id + 1)
		dst := &s.rec[id]
		if dst.requests == 0 {
			s.known++
		}
		// The only non-unit counter increments in the store: saturate at
		// the uint32 record ceiling instead of wrapping (unreachable in
		// any realistic run — see the record doc).
		newReq := uint64(dst.requests) + addReq
		newFwd := uint64(dst.forwards) + addFwd
		if newReq > math.MaxUint32 {
			newReq = math.MaxUint32
		}
		if newFwd > math.MaxUint32 {
			newFwd = math.MaxUint32
		}
		s.forwardsSum += newFwd - uint64(dst.forwards)
		dst.requests = uint32(newReq)
		dst.forwards = uint32(newFwd)
		dst.dirty = true
	}
}
