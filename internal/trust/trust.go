// Package trust implements the paper's reputation collection and trust /
// activity evaluation mechanisms (§3.1–3.2, Fig 1a–b).
//
// Each node keeps, for every other node it has observed, two counters: how
// many packets that node was asked to forward (ps) and how many it actually
// forwarded (pf). The forwarding rate pf/ps feeds a four-level trust lookup
// table; the raw pf counts feed the three-level activity evaluation. Both
// feed the strategy's forwarding decision and the payoff table.
package trust

import (
	"fmt"
	"sort"

	"adhocga/internal/network"
	"adhocga/internal/strategy"
)

// record holds the two per-pair reputation counters of §3.1.
type record struct {
	requests uint64 // ps: packets this node was asked ("sent") to forward
	forwards uint64 // pf: packets it actually forwarded
}

// Store is one node's private reputation memory about other nodes. It is
// not safe for concurrent use; in the simulator each player owns exactly
// one Store and tournaments mutate it from a single goroutine.
type Store struct {
	rec map[network.NodeID]*record

	// forwardsSum caches Σ pf over all known nodes so that the §3.2
	// activity average is O(1) per query instead of O(known nodes).
	forwardsSum uint64
}

// NewStore returns an empty reputation memory.
func NewStore() *Store {
	return &Store{rec: make(map[network.NodeID]*record)}
}

// Reset forgets everything; the evaluation scheme clears all memories at
// the start of each generation (§4.4 step 1).
func (s *Store) Reset() {
	clear(s.rec)
	s.forwardsSum = 0
}

// Observe records one watchdog observation about a node: it was asked to
// forward a packet and either did (forwarded=true) or dropped it.
func (s *Store) Observe(id network.NodeID, forwarded bool) {
	r := s.rec[id]
	if r == nil {
		r = &record{}
		s.rec[id] = r
	}
	r.requests++
	if forwarded {
		r.forwards++
		s.forwardsSum++
	}
}

// Known reports whether the store has any data about the node.
func (s *Store) Known(id network.NodeID) bool {
	_, ok := s.rec[id]
	return ok
}

// KnownCount returns the number of nodes with at least one observation.
func (s *Store) KnownCount() int { return len(s.rec) }

// Requests returns ps for the node (0 if unknown).
func (s *Store) Requests(id network.NodeID) uint64 {
	if r := s.rec[id]; r != nil {
		return r.requests
	}
	return 0
}

// Forwards returns pf for the node (0 if unknown).
func (s *Store) Forwards(id network.NodeID) uint64 {
	if r := s.rec[id]; r != nil {
		return r.forwards
	}
	return 0
}

// ForwardingRate returns pf/ps for the node and whether the node is known.
func (s *Store) ForwardingRate(id network.NodeID) (float64, bool) {
	r := s.rec[id]
	if r == nil || r.requests == 0 {
		return 0, false
	}
	return float64(r.forwards) / float64(r.requests), true
}

// MeanForwards returns the average pf over all known nodes — the "av"
// value of §3.2 — and whether any node is known.
func (s *Store) MeanForwards() (float64, bool) {
	if len(s.rec) == 0 {
		return 0, false
	}
	return float64(s.forwardsSum) / float64(len(s.rec)), true
}

// KnownNodes returns the IDs the store has data about, in ascending order
// (deterministic for tests and reporting).
func (s *Store) KnownNodes() []network.NodeID {
	ids := make([]network.NodeID, 0, len(s.rec))
	for id := range s.rec {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// RateFunc adapts the store to the signature network.RatePath expects.
func (s *Store) RateFunc() func(network.NodeID) (float64, bool) {
	return s.ForwardingRate
}

// Table is the trust lookup table of Fig 1b, mapping a forwarding rate to
// one of four trust levels. Thresholds are the lower bounds of levels
// 3, 2, 1 (descending); rates below Thresholds[2] map to level 0.
type Table struct {
	Thresholds [3]float64
}

// DefaultTable returns the paper's table: [1.0–0.9]→3, [0.9–0.6)→2,
// [0.6–0.3)→1, [0.3–0)→0. Boundary rates belong to the higher level.
func DefaultTable() Table {
	return Table{Thresholds: [3]float64{0.9, 0.6, 0.3}}
}

// Validate checks that thresholds are strictly descending within (0,1).
func (t Table) Validate() error {
	prev := 1.0
	for i, th := range t.Thresholds {
		if th <= 0 || th >= 1 {
			return fmt.Errorf("trust: threshold %d = %v outside (0,1)", i, th)
		}
		if th >= prev {
			return fmt.Errorf("trust: thresholds must be strictly descending, got %v", t.Thresholds)
		}
		prev = th
	}
	return nil
}

// Level maps a forwarding rate to a trust level.
func (t Table) Level(rate float64) strategy.TrustLevel {
	switch {
	case rate >= t.Thresholds[0]:
		return strategy.Trust3
	case rate >= t.Thresholds[1]:
		return strategy.Trust2
	case rate >= t.Thresholds[2]:
		return strategy.Trust1
	default:
		return strategy.Trust0
	}
}

// LevelOf looks a node up in the store and maps it through the table. The
// boolean is false when the node is unknown, in which case the strategy's
// unknown-node bit applies instead.
func (t Table) LevelOf(s *Store, id network.NodeID) (strategy.TrustLevel, bool) {
	rate, known := s.ForwardingRate(id)
	if !known {
		return 0, false
	}
	return t.Level(rate), true
}

// DefaultActivityBand is the ±20% band around the average of §3.2.
const DefaultActivityBand = 0.2

// ActivityOf computes the §3.2 activity level of the source as seen by the
// owner of the store: the source's pf is compared against av, the mean pf
// over all nodes the evaluator knows. Within ±band·av → medium; below →
// low; above → high. The boolean is false when the evaluator knows nothing
// about the source (activity is then irrelevant: the unknown-node rule
// decides).
//
// Note the asymmetry inherited from the paper: av averages over the nodes
// the evaluator knows, whether or not that includes the source.
func ActivityOf(s *Store, src network.NodeID, band float64) (strategy.ActivityLevel, bool) {
	if !s.Known(src) {
		return 0, false
	}
	av, _ := s.MeanForwards() // known(src) implies at least one known node
	srcF := float64(s.Forwards(src))
	lo := av - band*av
	hi := av + band*av
	switch {
	case srcF < lo:
		return strategy.ActivityLow, true
	case srcF > hi:
		return strategy.ActivityHigh, true
	default:
		return strategy.ActivityMedium, true
	}
}
