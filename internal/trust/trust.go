// Package trust implements the paper's reputation collection and trust /
// activity evaluation mechanisms (§3.1–3.2, Fig 1a–b).
//
// Each node keeps, for every other node it has observed, two counters: how
// many packets that node was asked to forward (ps) and how many it actually
// forwarded (pf). The forwarding rate pf/ps feeds a four-level trust lookup
// table; the raw pf counts feed the three-level activity evaluation. Both
// feed the strategy's forwarding decision and the payoff table.
//
// Storage is dense: a Store is a NodeID-indexed slice of records, not a
// map. NodeIDs are dense small integers by construction
// (tournament.BuildRegistry panics on gaps or duplicates — see DESIGN.md),
// so a slice sized to the registry covers every possible peer with one
// bounds-checked index per lookup and zero steady-state allocations. Each
// record additionally caches the derived values the hot path needs — the
// forwarding rate pf/ps and its Fig 1b trust level — refreshed at most
// once per counter change, lazily at the next read, so game decisions and
// path ratings never recompute them and pure observation stays
// integer-only.
package trust

import (
	"fmt"

	"adhocga/internal/network"
	"adhocga/internal/strategy"
)

// record holds the two per-pair reputation counters of §3.1 plus the
// cached trust level derived from them. A node is known iff requests > 0
// (every code path that touches a record increments requests by ≥ 1).
//
// dirty marks a record whose counters changed since level and the rates
// entry were last derived; readers flush it before use. Keeping the write
// path to plain integer increments matters because observations outnumber
// decisions ~k:1 on a k-intermediate path.
//
// The counters are uint32, which packs a record into 12 bytes instead of
// 24 — a game touches O(path²) records spread over every participant's
// store (Fig 1a: each observer updates each intermediate), so halving the
// record keeps roughly twice as many stores resident in L2. Counters are
// per-pair within one generation (reset at every generation boundary),
// which bounds them around rounds·hops — the paper's tournaments reach
// ~10⁵, nowhere near the 4.3·10⁹ ceiling. Gossip merges, the only
// non-unit increments, saturate at the ceiling rather than wrapping.
type record struct {
	requests uint32 // ps: packets this node was asked ("sent") to forward
	forwards uint32 // pf: packets it actually forwarded
	level    strategy.TrustLevel
	dirty    bool
}

// Store is one node's private reputation memory about other nodes, indexed
// densely by NodeID. It is not safe for concurrent use; in the simulator
// each player owns exactly one Store and tournaments mutate it from a
// single goroutine.
//
// The store grows on demand when an unseen NodeID is observed, but callers
// that know the full ID range (the tournament runner sizes every
// participant's store to the registry) should pre-size it with EnsureSize
// so the steady state never allocates.
type Store struct {
	rec []record

	// rates is the dense path-rate view: rates[id] is pf/ps for known
	// nodes and network.UnknownRate for unknown ones, exactly the factor
	// the §3.1 path rating multiplies per intermediate. It is maintained
	// in lockstep with rec.
	rates []float64

	// known counts records with requests > 0.
	known int

	// forwardsSum caches Σ pf over all known nodes so that the §3.2
	// activity average is O(1) per query instead of O(known nodes).
	forwardsSum uint64

	// table maps cached forwarding rates to the cached trust levels.
	table Table
}

// NewStore returns an empty reputation memory using the paper's default
// trust table. The store grows as nodes are observed; use NewStoreSized or
// EnsureSize when the ID range is known up front.
func NewStore() *Store {
	return &Store{table: DefaultTable()}
}

// NewStoreSized returns an empty reputation memory pre-sized for NodeIDs
// 0..n-1.
func NewStoreSized(n int) *Store {
	s := NewStore()
	s.EnsureSize(n)
	return s
}

// EnsureSize grows the store to cover NodeIDs 0..n-1. Existing data is
// preserved; new entries are unknown. It never shrinks.
func (s *Store) EnsureSize(n int) {
	if n <= len(s.rec) {
		return
	}
	old := len(s.rec)
	if n <= cap(s.rec) {
		s.rec = s.rec[:n]
		s.rates = s.rates[:n]
		clear(s.rec[old:])
	} else {
		c := 2 * cap(s.rec)
		if c < n {
			c = n
		}
		rec := make([]record, n, c)
		copy(rec, s.rec)
		rates := make([]float64, n, c)
		copy(rates, s.rates)
		s.rec, s.rates = rec, rates
	}
	for i := old; i < n; i++ {
		s.rates[i] = network.UnknownRate
	}
}

// Size returns the number of NodeIDs the store currently covers (known or
// not).
func (s *Store) Size() int { return len(s.rec) }

// Reset forgets everything but keeps the allocated capacity; the
// evaluation scheme clears all memories at the start of each generation
// (§4.4 step 1).
func (s *Store) Reset() {
	clear(s.rec)
	for i := range s.rates {
		s.rates[i] = network.UnknownRate
	}
	s.known = 0
	s.forwardsSum = 0
}

// SetTable installs the Fig 1b trust table used for the cached trust
// levels, recomputing existing cache entries if the table actually
// changes. NewStore installs DefaultTable; game decisions re-sync the
// table from their Config automatically, so explicit calls are only an
// optimization for custom-table setups.
func (s *Store) SetTable(t Table) {
	if t == s.table {
		return
	}
	s.table = t
	for i := range s.rec {
		if r := &s.rec[i]; r.requests > 0 {
			s.flushRecord(r, i)
		}
	}
}

// TrustTable returns the table the cached trust levels are derived from.
func (s *Store) TrustTable() Table { return s.table }

// Observe records one watchdog observation about a node: it was asked to
// forward a packet and either did (forwarded=true) or dropped it. The
// write path is integer-only — the derived rate and trust level are
// flushed lazily at the next read (Evaluate or PathRates), so a record
// observed many times between reads pays for one division, not many.
//
// The body is split so the in-range case (the only one a pre-sized
// tournament store ever sees) inlines into the game loop as a few
// increments and an unconditional dirty-bit store — marking a record
// dirty needs no bookkeeping beyond the bit itself, so re-marking an
// already-dirty record is free and the fast path carries no dirty check.
// Only growth takes the slow path.
func (s *Store) Observe(id network.NodeID, forwarded bool) {
	if int(id) < len(s.rec) {
		r := &s.rec[id]
		if r.requests == 0 {
			s.known++
		}
		r.requests++
		r.dirty = true
		if forwarded {
			r.forwards++
			s.forwardsSum++
		}
		return
	}
	s.observeSlow(id, forwarded)
}

// ObservePath records one game's worth of Fig 1a observations in bulk:
// for every position j, ids[j] is observed as having forwarded unless
// j == firstDrop (pass firstDrop = -1 for a delivered packet, so that
// every node forwarded). Entries equal to self are skipped — a node never
// observes itself. Equivalent to calling Observe per entry, minus the
// per-observation call overhead on the game hot path.
func (s *Store) ObservePath(ids []network.NodeID, self network.NodeID, firstDrop int) {
	for j, id := range ids {
		if id == self {
			continue
		}
		forwarded := j != firstDrop
		if int(id) < len(s.rec) {
			r := &s.rec[id]
			if r.requests == 0 {
				s.known++
			}
			r.requests++
			r.dirty = true
			if forwarded {
				r.forwards++
				s.forwardsSum++
			}
			continue
		}
		s.observeSlow(id, forwarded)
	}
}

// observeSlow is the growth path: the ID is beyond the store, so the
// store is enlarged first. Pre-sized tournament stores never come here.
func (s *Store) observeSlow(id network.NodeID, forwarded bool) {
	s.EnsureSize(int(id) + 1)
	r := &s.rec[id]
	if r.requests == 0 {
		s.known++
	}
	r.requests++
	r.dirty = true
	if forwarded {
		r.forwards++
		s.forwardsSum++
	}
}

// settle flushes every dirty record — the compaction point of the
// lazy-flush scheme. Flushing is a pure function of the counters, so
// settling at any time changes no observable value. Only cold paths
// (PathRates, notably) settle; the game loop flushes exactly the records
// it reads, one at a time, and never scans.
func (s *Store) settle() {
	for i := range s.rec {
		if r := &s.rec[i]; r.dirty {
			s.flushRecord(r, i)
		}
	}
}

// flushRecord derives the cached rate and Fig 1b trust level from the
// record's counters. Callers guarantee requests > 0.
func (s *Store) flushRecord(r *record, id int) {
	rate := float64(r.forwards) / float64(r.requests)
	s.rates[id] = rate
	r.level = s.table.Level(rate)
	r.dirty = false
}

// Forget erases everything the store knows about one node, in place: the
// counters are zeroed, the cached rate returns to network.UnknownRate, and
// the known count and activity mean drop the node's contribution. It is
// the identity-remap primitive of the dynamics layer (internal/dynamics):
// when churn recycles a NodeID for a fresh node, every store that might
// still hold the departed node's reputation forgets the ID without
// reallocating or disturbing any other record. Forgetting an ID the store
// never saw (including IDs beyond its size) is a no-op.
func (s *Store) Forget(id network.NodeID) {
	if int(id) >= len(s.rec) {
		return
	}
	r := &s.rec[id]
	if r.requests == 0 {
		return
	}
	s.known--
	s.forwardsSum -= uint64(r.forwards)
	*r = record{}
	s.rates[id] = network.UnknownRate
}

// Known reports whether the store has any data about the node.
func (s *Store) Known(id network.NodeID) bool {
	return int(id) < len(s.rec) && s.rec[id].requests > 0
}

// KnownCount returns the number of nodes with at least one observation.
func (s *Store) KnownCount() int { return s.known }

// Requests returns ps for the node (0 if unknown).
func (s *Store) Requests(id network.NodeID) uint64 {
	if int(id) < len(s.rec) {
		return uint64(s.rec[id].requests)
	}
	return 0
}

// Forwards returns pf for the node (0 if unknown).
func (s *Store) Forwards(id network.NodeID) uint64 {
	if int(id) < len(s.rec) {
		return uint64(s.rec[id].forwards)
	}
	return 0
}

// ForwardingRate returns pf/ps for the node and whether the node is known.
func (s *Store) ForwardingRate(id network.NodeID) (float64, bool) {
	if !s.Known(id) {
		return 0, false
	}
	r := &s.rec[id]
	return float64(r.forwards) / float64(r.requests), true
}

// MeanForwards returns the average pf over all known nodes — the "av"
// value of §3.2 — and whether any node is known.
func (s *Store) MeanForwards() (float64, bool) {
	if s.known == 0 {
		return 0, false
	}
	return float64(s.forwardsSum) / float64(s.known), true
}

// KnownNodes returns the IDs the store has data about, in ascending order
// (free with dense storage — no sort needed).
func (s *Store) KnownNodes() []network.NodeID {
	ids := make([]network.NodeID, 0, s.known)
	for i := range s.rec {
		if s.rec[i].requests > 0 {
			ids = append(ids, network.NodeID(i))
		}
	}
	return ids
}

// PathRates returns the dense §3.1 rate view the path rater consumes:
// rates[id] is pf/ps for known nodes and network.UnknownRate for unknown
// ones; IDs at or beyond len(rates) are unknown too. Pending counter
// changes are flushed into the view first. The slice is owned by the
// store and must not be modified; re-fetch it after further observations
// rather than retaining it.
func (s *Store) PathRates() []float64 {
	s.settle()
	return s.rates
}

// RatesForPaths is the route-selection form of PathRates: it returns the
// dense rate view after refreshing only the entries the given candidate
// paths' intermediates will actually read, instead of flushing every
// pending record. The refreshed values are computed by the same expression
// flushRecord uses, so ratings are bit-identical to rating after a full
// PathRates flush. The slice is owned by the store and must not be
// modified or retained.
func (s *Store) RatesForPaths(paths []network.Path) []float64 {
	for _, p := range paths {
		for _, id := range p.Intermediates {
			if int(id) >= len(s.rec) {
				continue // unknown to this store; rates in-range read as UnknownRate
			}
			if r := &s.rec[id]; r.dirty {
				s.flushRecord(r, int(id))
			}
		}
	}
	return s.rates
}

// RatePaths rates every candidate path in one walk: for each path it
// computes the §3.1 rating — the product over its intermediates of the
// dense rate view, flushing pending counter changes for exactly the
// records the product reads — and stores it into ratings, which is grown
// as needed and returned. The flushes and the multiplication order are
// identical to calling RatesForPaths followed by network.RatePath per
// path, so the ratings are bit-identical to that two-walk form; fusing
// them touches each intermediate's record and rate once instead of twice.
func (s *Store) RatePaths(paths []network.Path, ratings []float64) []float64 {
	if cap(ratings) < len(paths) {
		ratings = make([]float64, len(paths))
	}
	ratings = ratings[:len(paths)]
	for i, p := range paths {
		rating := 1.0
		for _, id := range p.Intermediates {
			f := network.UnknownRate
			if int(id) < len(s.rec) {
				if r := &s.rec[id]; r.dirty {
					s.flushRecord(r, int(id))
				}
				f = s.rates[id]
			}
			rating *= f
		}
		ratings[i] = rating
	}
	return ratings
}

// Evaluate returns the cached trust level and the §3.2 activity level of
// the source in one O(1) lookup, and whether the source is known (when it
// is not, the strategy's unknown-node bit applies and both levels are
// meaningless). This is the forwarding-decision hot path: a single
// bounds-checked index, no map probes, no rate division.
func (s *Store) Evaluate(id network.NodeID, band float64) (strategy.TrustLevel, strategy.ActivityLevel, bool) {
	if int(id) >= len(s.rec) {
		return 0, 0, false
	}
	r := &s.rec[id]
	if r.requests == 0 {
		return 0, 0, false
	}
	if r.dirty {
		s.flushRecord(r, int(id))
	}
	// known(id) implies known > 0, so av is well defined. The bounds are
	// recomputed per call: forwardsSum moves with nearly every observation
	// the store makes, so between two decisions by the same store it has
	// almost always changed — a cache keyed on it never hits (measured).
	av := float64(s.forwardsSum) / float64(s.known)
	srcF := float64(r.forwards)
	act := strategy.ActivityMedium
	switch {
	case srcF < av-band*av:
		act = strategy.ActivityLow
	case srcF > av+band*av:
		act = strategy.ActivityHigh
	}
	return r.level, act, true
}

// Table is the trust lookup table of Fig 1b, mapping a forwarding rate to
// one of four trust levels. Thresholds are the lower bounds of levels
// 3, 2, 1 (descending); rates below Thresholds[2] map to level 0.
type Table struct {
	Thresholds [3]float64
}

// DefaultTable returns the paper's table: [1.0–0.9]→3, [0.9–0.6)→2,
// [0.6–0.3)→1, [0.3–0)→0. Boundary rates belong to the higher level.
func DefaultTable() Table {
	return Table{Thresholds: [3]float64{0.9, 0.6, 0.3}}
}

// Validate checks that thresholds are strictly descending within (0,1).
func (t Table) Validate() error {
	prev := 1.0
	for i, th := range t.Thresholds {
		if th <= 0 || th >= 1 {
			return fmt.Errorf("trust: threshold %d = %v outside (0,1)", i, th)
		}
		if th >= prev {
			return fmt.Errorf("trust: thresholds must be strictly descending, got %v", t.Thresholds)
		}
		prev = th
	}
	return nil
}

// Level maps a forwarding rate to a trust level.
func (t Table) Level(rate float64) strategy.TrustLevel {
	switch {
	case rate >= t.Thresholds[0]:
		return strategy.Trust3
	case rate >= t.Thresholds[1]:
		return strategy.Trust2
	case rate >= t.Thresholds[2]:
		return strategy.Trust1
	default:
		return strategy.Trust0
	}
}

// LevelOf looks a node up in the store and maps it through the table. The
// boolean is false when the node is unknown, in which case the strategy's
// unknown-node bit applies instead. Unlike Store.Evaluate it applies t
// itself rather than the store's cached level, so it works with any table.
func (t Table) LevelOf(s *Store, id network.NodeID) (strategy.TrustLevel, bool) {
	rate, known := s.ForwardingRate(id)
	if !known {
		return 0, false
	}
	return t.Level(rate), true
}

// DefaultActivityBand is the ±20% band around the average of §3.2.
const DefaultActivityBand = 0.2

// ActivityOf computes the §3.2 activity level of the source as seen by the
// owner of the store: the source's pf is compared against av, the mean pf
// over all nodes the evaluator knows. Within ±band·av → medium; below →
// low; above → high. The boolean is false when the evaluator knows nothing
// about the source (activity is then irrelevant: the unknown-node rule
// decides).
//
// Note the asymmetry inherited from the paper: av averages over the nodes
// the evaluator knows, whether or not that includes the source.
func ActivityOf(s *Store, src network.NodeID, band float64) (strategy.ActivityLevel, bool) {
	_, act, known := s.Evaluate(src, band)
	return act, known
}
