package trust

import (
	"math"
	"testing"
)

func TestMergePositiveImportsGoodReports(t *testing.T) {
	teacher := NewStore()
	for i := 0; i < 10; i++ {
		teacher.Observe(5, true) // node 5: rate 1.0
	}
	student := NewStore()
	student.MergePositive(99, teacher, 0.5, 0.5)
	rate, known := student.ForwardingRate(5)
	if !known {
		t.Fatal("positive report not imported")
	}
	if rate != 1.0 {
		t.Errorf("imported rate %v, want 1.0", rate)
	}
	// Weight 0.5 over 10 requests → 5 imported requests.
	if student.Requests(5) != 5 || student.Forwards(5) != 5 {
		t.Errorf("imported counters %d/%d, want 5/5", student.Forwards(5), student.Requests(5))
	}
}

func TestMergePositiveSkipsNegativeReports(t *testing.T) {
	teacher := NewStore()
	for i := 0; i < 10; i++ {
		teacher.Observe(3, false) // node 3: rate 0
	}
	teacher.Observe(4, true) // node 4: rate 1
	student := NewStore()
	student.MergePositive(99, teacher, 0.5, 0.5)
	if student.Known(3) {
		t.Error("negative report imported (CORE forbids it)")
	}
	if !student.Known(4) {
		t.Error("positive report dropped")
	}
}

func TestMergePositiveSkipsSelf(t *testing.T) {
	teacher := NewStore()
	teacher.Observe(7, true)
	student := NewStore()
	student.MergePositive(7, teacher, 0, 0.5)
	if student.Known(7) {
		t.Error("node imported gossip about itself")
	}
}

func TestMergePositiveZeroWeightNoOp(t *testing.T) {
	teacher := NewStore()
	teacher.Observe(1, true)
	student := NewStore()
	student.MergePositive(99, teacher, 0, 0)
	if student.KnownCount() != 0 {
		t.Error("zero weight still imported data")
	}
}

func TestMergePositiveTinyWeightFloors(t *testing.T) {
	teacher := NewStore()
	teacher.Observe(1, true)
	student := NewStore()
	student.MergePositive(99, teacher, 0, 0.01)
	// One observation at weight 0.01 rounds to 0 but floors to 1 request;
	// forwards round to 0, capped at requests.
	if !student.Known(1) {
		t.Fatal("tiny weight should still register the node")
	}
	if student.Requests(1) != 1 {
		t.Errorf("requests = %d, want 1", student.Requests(1))
	}
}

func TestMergePositiveKeepsActivityMeanConsistent(t *testing.T) {
	teacher := NewStore()
	for i := 0; i < 8; i++ {
		teacher.Observe(1, true)
	}
	student := NewStore()
	student.Observe(2, true)
	student.Observe(2, true)
	student.MergePositive(99, teacher, 0, 0.5)
	// Node 1 imported with 4 forwards; node 2 has 2 → mean 3.
	av, ok := student.MeanForwards()
	if !ok || math.Abs(av-3) > 1e-12 {
		t.Errorf("MeanForwards after merge = %v, want 3", av)
	}
}

func TestMergePositiveAccumulates(t *testing.T) {
	teacher := NewStore()
	for i := 0; i < 4; i++ {
		teacher.Observe(1, true)
	}
	student := NewStore()
	student.MergePositive(99, teacher, 0, 0.5)
	student.MergePositive(99, teacher, 0, 0.5)
	if student.Requests(1) != 4 {
		t.Errorf("double merge requests = %d, want 4 (additive)", student.Requests(1))
	}
}
