package trust

import (
	"math"
	"testing"
	"testing/quick"

	"adhocga/internal/network"
	"adhocga/internal/rng"
	"adhocga/internal/strategy"
)

func TestStoreObserveAndRates(t *testing.T) {
	s := NewStore()
	if s.Known(1) {
		t.Error("fresh store knows node 1")
	}
	if _, known := s.ForwardingRate(1); known {
		t.Error("fresh store has a rate for node 1")
	}
	s.Observe(1, true)
	s.Observe(1, true)
	s.Observe(1, false)
	rate, known := s.ForwardingRate(1)
	if !known {
		t.Fatal("node 1 should be known")
	}
	if math.Abs(rate-2.0/3.0) > 1e-12 {
		t.Errorf("rate = %v, want 2/3", rate)
	}
	if s.Requests(1) != 3 || s.Forwards(1) != 2 {
		t.Errorf("ps=%d pf=%d", s.Requests(1), s.Forwards(1))
	}
	if s.Requests(2) != 0 || s.Forwards(2) != 0 {
		t.Error("unknown node has nonzero counters")
	}
}

func TestStoreReset(t *testing.T) {
	s := NewStore()
	s.Observe(1, true)
	s.Observe(2, false)
	s.Reset()
	if s.KnownCount() != 0 {
		t.Error("Reset did not clear records")
	}
	if _, any := s.MeanForwards(); any {
		t.Error("Reset did not clear the forwards sum")
	}
	// Store must be reusable after Reset.
	s.Observe(3, true)
	if rate, known := s.ForwardingRate(3); !known || rate != 1 {
		t.Error("store unusable after Reset")
	}
}

func TestMeanForwards(t *testing.T) {
	s := NewStore()
	if _, ok := s.MeanForwards(); ok {
		t.Error("empty store reports a mean")
	}
	// Node 1: 4 forwards; node 2: 0 forwards; node 3: 2 forwards → av = 2.
	for i := 0; i < 4; i++ {
		s.Observe(1, true)
	}
	s.Observe(2, false)
	s.Observe(3, true)
	s.Observe(3, true)
	av, ok := s.MeanForwards()
	if !ok || math.Abs(av-2) > 1e-12 {
		t.Errorf("MeanForwards = %v,%v, want 2,true", av, ok)
	}
}

func TestKnownNodesSorted(t *testing.T) {
	s := NewStore()
	for _, id := range []network.NodeID{5, 1, 3} {
		s.Observe(id, true)
	}
	ids := s.KnownNodes()
	if len(ids) != 3 || ids[0] != 1 || ids[1] != 3 || ids[2] != 5 {
		t.Errorf("KnownNodes = %v", ids)
	}
}

func TestDefaultTableLevels(t *testing.T) {
	tab := DefaultTable()
	if err := tab.Validate(); err != nil {
		t.Fatalf("default table invalid: %v", err)
	}
	cases := []struct {
		rate float64
		want strategy.TrustLevel
	}{
		{1.0, strategy.Trust3},
		{0.95, strategy.Trust3}, // the paper's example: 0.95 → trust 3
		{0.9, strategy.Trust3},  // boundary belongs to the higher level
		{0.89, strategy.Trust2},
		{0.6, strategy.Trust2},
		{0.59, strategy.Trust1},
		{0.5, strategy.Trust1}, // the unknown-node default rate maps to trust 1, matching §6.1
		{0.3, strategy.Trust1},
		{0.29, strategy.Trust0},
		{0.0, strategy.Trust0},
	}
	for _, c := range cases {
		if got := tab.Level(c.rate); got != c.want {
			t.Errorf("Level(%v) = %v, want %v", c.rate, got, c.want)
		}
	}
}

func TestTableValidate(t *testing.T) {
	bad := []Table{
		{Thresholds: [3]float64{0.3, 0.6, 0.9}}, // ascending
		{Thresholds: [3]float64{0.9, 0.9, 0.3}}, // not strict
		{Thresholds: [3]float64{1.1, 0.6, 0.3}}, // out of range
		{Thresholds: [3]float64{0.9, 0.6, 0}},   // zero
	}
	for i, tab := range bad {
		if err := tab.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %v", i, tab.Thresholds)
		}
	}
}

func TestLevelOf(t *testing.T) {
	s := NewStore()
	tab := DefaultTable()
	if _, known := tab.LevelOf(s, 7); known {
		t.Error("LevelOf claims knowledge of unknown node")
	}
	// 19/20 forwards → 0.95 → trust 3 (paper's worked example).
	for i := 0; i < 19; i++ {
		s.Observe(7, true)
	}
	s.Observe(7, false)
	lvl, known := tab.LevelOf(s, 7)
	if !known || lvl != strategy.Trust3 {
		t.Errorf("LevelOf = %v,%v, want trust3,true", lvl, known)
	}
}

func TestActivityOf(t *testing.T) {
	s := NewStore()
	if _, known := ActivityOf(s, 1, DefaultActivityBand); known {
		t.Error("activity known for unknown source")
	}
	// Build av = 10 over two nodes: node 1 pf=16, node 2 pf=4.
	for i := 0; i < 16; i++ {
		s.Observe(1, true)
	}
	for i := 0; i < 4; i++ {
		s.Observe(2, true)
	}
	// av = 10; band = [8,12]. Node 1 (16) is high, node 2 (4) is low.
	if lvl, _ := ActivityOf(s, 1, DefaultActivityBand); lvl != strategy.ActivityHigh {
		t.Errorf("node 1 activity = %v, want HI", lvl)
	}
	if lvl, _ := ActivityOf(s, 2, DefaultActivityBand); lvl != strategy.ActivityLow {
		t.Errorf("node 2 activity = %v, want LO", lvl)
	}
	// A node exactly at the average is medium.
	s2 := NewStore()
	for i := 0; i < 10; i++ {
		s2.Observe(1, true)
	}
	for i := 0; i < 10; i++ {
		s2.Observe(2, true)
	}
	if lvl, _ := ActivityOf(s2, 1, DefaultActivityBand); lvl != strategy.ActivityMedium {
		t.Errorf("average node activity = %v, want MI", lvl)
	}
}

func TestActivityBoundaries(t *testing.T) {
	// av = 10 with band 0.2 → [8, 12] inclusive is medium.
	s := NewStore()
	for i := 0; i < 8; i++ {
		s.Observe(1, true)
	}
	for i := 0; i < 12; i++ {
		s.Observe(2, true)
	}
	// av = (8+12)/2 = 10.
	if lvl, _ := ActivityOf(s, 1, DefaultActivityBand); lvl != strategy.ActivityMedium {
		t.Errorf("pf=8 with av=10 → %v, want MI (inclusive band)", lvl)
	}
	if lvl, _ := ActivityOf(s, 2, DefaultActivityBand); lvl != strategy.ActivityMedium {
		t.Errorf("pf=12 with av=10 → %v, want MI (inclusive band)", lvl)
	}
}

func TestActivitySingleKnownNodeIsMedium(t *testing.T) {
	s := NewStore()
	s.Observe(1, true)
	if lvl, known := ActivityOf(s, 1, DefaultActivityBand); !known || lvl != strategy.ActivityMedium {
		t.Errorf("sole known node activity = %v,%v, want MI,true", lvl, known)
	}
}

func TestActivityZeroForwards(t *testing.T) {
	// A source that never forwarded, among active peers, is low-activity.
	s := NewStore()
	s.Observe(1, false)
	for i := 0; i < 10; i++ {
		s.Observe(2, true)
	}
	if lvl, _ := ActivityOf(s, 1, DefaultActivityBand); lvl != strategy.ActivityLow {
		t.Errorf("zero-forward node activity = %v, want LO", lvl)
	}
}

func TestPathRatesFeedPathRating(t *testing.T) {
	s := NewStore()
	s.Observe(1, true) // rate 1.0
	s.Observe(2, false)
	s.Observe(2, true) // rate 0.5
	p := network.Path{Src: 0, Dst: 9, Intermediates: []network.NodeID{1, 2, 3}}
	// 1.0 * 0.5 * 0.5(unknown default) = 0.25; node 3 is beyond the dense
	// view and node 0 is inside it but unobserved — both rate UnknownRate.
	if got := network.RatePath(p, s.PathRates()); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("path rating via PathRates = %v, want 0.25", got)
	}
	if r := s.PathRates()[0]; r != network.UnknownRate {
		t.Errorf("unobserved in-range node rates %v, want UnknownRate", r)
	}
}

// TestRatePathsMatchesTwoWalkForm pins the documented equivalence: the
// fused RatePaths walk and the RatesForPaths + network.RatePath two-walk
// form produce bit-identical ratings, including for intermediates that
// are unknown, out of the dense range, or still dirty.
func TestRatePathsMatchesTwoWalkForm(t *testing.T) {
	build := func() *Store {
		s := NewStore()
		s.Observe(1, true) // rate 1.0
		s.Observe(2, false)
		s.Observe(2, true) // rate 0.5
		s.Observe(4, true)
		s.Observe(4, false)
		s.Observe(4, false) // rate 1/3
		return s
	}
	paths := []network.Path{
		{Src: 0, Dst: 9, Intermediates: []network.NodeID{1, 2}},
		{Src: 0, Dst: 9, Intermediates: []network.NodeID{2, 4, 7}}, // 7: beyond the dense view
		{Src: 0, Dst: 9, Intermediates: []network.NodeID{0}},       // in range, never observed
		{Src: 0, Dst: 9, Intermediates: nil},                       // empty product = 1
	}

	// Two-walk form on one store (flushes exactly the records the paths
	// read)…
	twoWalk := build()
	rates := twoWalk.RatesForPaths(paths)
	want := make([]float64, len(paths))
	for i, p := range paths {
		want[i] = network.RatePath(p, rates)
	}
	// …fused walk on an identically-built fresh store, so both start from
	// the same dirty state.
	fused := build()
	got := fused.RatePaths(paths, nil)
	for i := range paths {
		if got[i] != want[i] {
			t.Errorf("path %d: fused %v, two-walk %v", i, got[i], want[i])
		}
	}
	if got[0] != 0.5 || got[3] != 1.0 {
		t.Errorf("ratings %v: want path0 1.0*0.5, empty path 1.0", got)
	}

	// A caller-owned ratings slice with capacity is reused, not
	// reallocated.
	buf := make([]float64, 0, len(paths))
	if out := fused.RatePaths(paths, buf); &out[0] != &buf[:1][0] {
		t.Error("RatePaths reallocated despite sufficient capacity")
	}
}

func TestTrustTableRoundTrip(t *testing.T) {
	if got := NewStore().TrustTable(); got != DefaultTable() {
		t.Errorf("TrustTable() = %+v, want the default table", got)
	}
}

// Property: ForwardingRate is always in [0,1] and MeanForwards equals the
// mean of per-node pf counters.
func TestStoreInvariantsProperty(t *testing.T) {
	f := func(obs []bool, ids []uint8) bool {
		s := NewStore()
		n := len(obs)
		if len(ids) < n {
			return true
		}
		for i := 0; i < n; i++ {
			s.Observe(network.NodeID(ids[i]%7), obs[i])
		}
		var sum float64
		for _, id := range s.KnownNodes() {
			rate, known := s.ForwardingRate(id)
			if !known || rate < 0 || rate > 1 {
				return false
			}
			if s.Forwards(id) > s.Requests(id) {
				return false
			}
			sum += float64(s.Forwards(id))
		}
		if s.KnownCount() > 0 {
			av, ok := s.MeanForwards()
			if !ok || math.Abs(av-sum/float64(s.KnownCount())) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: trust level is monotone non-decreasing in the forwarding rate.
func TestTrustLevelMonotoneProperty(t *testing.T) {
	tab := DefaultTable()
	r := rng.New(3)
	for i := 0; i < 10000; i++ {
		a, b := r.Float64(), r.Float64()
		if a > b {
			a, b = b, a
		}
		if tab.Level(a) > tab.Level(b) {
			t.Fatalf("Level(%v)=%v > Level(%v)=%v", a, tab.Level(a), b, tab.Level(b))
		}
	}
}

func BenchmarkObserve(b *testing.B) {
	s := NewStore()
	for i := 0; i < b.N; i++ {
		s.Observe(network.NodeID(i%50), i%3 != 0)
	}
}

func BenchmarkForwardingRate(b *testing.B) {
	s := NewStore()
	for i := 0; i < 1000; i++ {
		s.Observe(network.NodeID(i%50), i%3 != 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = s.ForwardingRate(network.NodeID(i % 50))
	}
}

func BenchmarkActivityOf(b *testing.B) {
	s := NewStore()
	for i := 0; i < 1000; i++ {
		s.Observe(network.NodeID(i%50), i%3 != 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = ActivityOf(s, network.NodeID(i%50), DefaultActivityBand)
	}
}
