package trust

import (
	"math"
	"testing"

	"adhocga/internal/network"
	"adhocga/internal/rng"
	"adhocga/internal/strategy"
)

// Property-based tests: a Store is driven through long random
// interleavings of every mutating operation (observe, bulk observe,
// flush, resize, forget, reset, table swap, gossip merges) against a
// naive counter model, checking after every step that
//
//   - the dense rate view always equals a from-scratch recomputation,
//   - the cached Fig 1b trust level never leaks a stale value through
//     Evaluate, regardless of when flushes happen,
//   - known count, activity mean, and per-node counters stay exact.
//
// The model is deliberately dumb — two maps and a division — so any
// disagreement indicts the Store's caching, not the model.

type refModel struct {
	req, fwd map[int]uint64
}

func newRefModel() *refModel {
	return &refModel{req: map[int]uint64{}, fwd: map[int]uint64{}}
}

func (m *refModel) observe(id int, forwarded bool) {
	m.req[id]++
	if forwarded {
		m.fwd[id]++
	}
}

func (m *refModel) forget(id int) {
	delete(m.req, id)
	delete(m.fwd, id)
}

func (m *refModel) reset() {
	m.req = map[int]uint64{}
	m.fwd = map[int]uint64{}
}

func (m *refModel) rate(id int) (float64, bool) {
	if m.req[id] == 0 {
		return 0, false
	}
	return float64(m.fwd[id]) / float64(m.req[id]), true
}

func (m *refModel) meanForwards() (float64, bool) {
	if len(m.req) == 0 {
		return 0, false
	}
	var sum uint64
	for id := range m.req {
		sum += m.fwd[id]
	}
	return float64(sum) / float64(len(m.req)), true
}

// checkAgainst verifies every invariant of s against the model. flush
// controls whether the dense rate view is pulled (flushing pending
// records) before per-node checks — exercising both the flushed and the
// pending-dirty read paths.
func checkAgainst(t *testing.T, s *Store, m *refModel, table Table, band float64, flush bool) {
	t.Helper()
	if got, want := s.KnownCount(), len(m.req); got != want {
		t.Fatalf("KnownCount = %d, model has %d", got, want)
	}
	gotMean, gotOK := s.MeanForwards()
	wantMean, wantOK := m.meanForwards()
	if gotOK != wantOK || math.Abs(gotMean-wantMean) > 1e-12 {
		t.Fatalf("MeanForwards = %v/%v, model %v/%v", gotMean, gotOK, wantMean, wantOK)
	}
	if flush {
		rates := s.PathRates()
		for id := range rates {
			want := network.UnknownRate
			if r, ok := m.rate(id); ok {
				want = r
			}
			if rates[id] != want {
				t.Fatalf("rates[%d] = %v, model %v", id, rates[id], want)
			}
		}
	}
	// Per-node checks through the un-flushed read paths.
	for id := 0; id < s.Size()+2; id++ {
		nid := network.NodeID(id)
		wantRate, wantKnown := m.rate(id)
		if s.Known(nid) != wantKnown {
			t.Fatalf("Known(%d) = %v, model %v", id, s.Known(nid), wantKnown)
		}
		if s.Requests(nid) != m.req[id] || s.Forwards(nid) != m.fwd[id] {
			t.Fatalf("counters(%d) = %d/%d, model %d/%d",
				id, s.Requests(nid), s.Forwards(nid), m.req[id], m.fwd[id])
		}
		gotRate, gotKnown := s.ForwardingRate(nid)
		if gotKnown != wantKnown || (wantKnown && gotRate != wantRate) {
			t.Fatalf("ForwardingRate(%d) = %v/%v, model %v/%v", id, gotRate, gotKnown, wantRate, wantKnown)
		}
		level, act, known := s.Evaluate(nid, band)
		if known != wantKnown {
			t.Fatalf("Evaluate(%d) known = %v, model %v", id, known, wantKnown)
		}
		if !known {
			continue
		}
		// The cached level must equal the table applied to the exact
		// counter rate — a stale dirty record would fail here.
		if want := table.Level(wantRate); level != want {
			t.Fatalf("Evaluate(%d) level = %v, recompute %v (rate %v)", id, level, want, wantRate)
		}
		av, _ := m.meanForwards()
		srcF := float64(m.fwd[id])
		wantAct := strategy.ActivityMedium
		switch {
		case srcF < av-band*av:
			wantAct = strategy.ActivityLow
		case srcF > av+band*av:
			wantAct = strategy.ActivityHigh
		}
		if act != wantAct {
			t.Fatalf("Evaluate(%d) activity = %v, recompute %v", id, act, wantAct)
		}
	}
}

func TestStorePropertyRandomInterleavings(t *testing.T) {
	const (
		seeds  = 8
		steps  = 400
		maxID  = 24
		band   = DefaultActivityBand
		selfID = network.NodeID(maxID) // outside the observed range
	)
	tables := []Table{
		DefaultTable(),
		{Thresholds: [3]float64{0.8, 0.5, 0.2}},
		{Thresholds: [3]float64{0.95, 0.7, 0.4}},
	}
	for seed := uint64(1); seed <= seeds; seed++ {
		r := rng.New(seed)
		s := NewStore()
		m := newRefModel()
		table := DefaultTable()

		// peer is a second store gossiped from, with its own model.
		peer := NewStore()
		pm := newRefModel()

		for step := 0; step < steps; step++ {
			switch op := r.Intn(12); op {
			case 0, 1, 2, 3: // single observation (the dominant op in real runs)
				id := r.Intn(maxID)
				fwd := r.Bool(0.6)
				s.Observe(network.NodeID(id), fwd)
				m.observe(id, fwd)
			case 4: // bulk path observation
				n := 1 + r.Intn(6)
				ids := make([]network.NodeID, n)
				for i := range ids {
					ids[i] = network.NodeID(r.Intn(maxID))
				}
				firstDrop := -1
				if r.Bool(0.5) {
					firstDrop = r.Intn(n)
				}
				s.ObservePath(ids, selfID, firstDrop)
				for j, id := range ids {
					m.observe(int(id), j != firstDrop)
				}
			case 5: // flush via the dense view
				s.PathRates()
			case 6: // resize
				s.EnsureSize(r.Intn(2 * maxID))
			case 7: // forget (the dynamics identity-remap primitive)
				id := r.Intn(2 * maxID)
				s.Forget(network.NodeID(id))
				m.forget(id)
			case 8: // table swap recomputes cached levels
				table = tables[r.Intn(len(tables))]
				s.SetTable(table)
			case 9: // feed the gossip peer
				id := r.Intn(maxID)
				fwd := r.Bool(0.8)
				peer.Observe(network.NodeID(id), fwd)
				pm.observe(id, fwd)
			case 10: // gossip merge, honest or lying
				minRate := 0.5
				weight := 0.25 + r.Float64()*0.5
				invert := r.Bool(0.3)
				if invert {
					s.MergeInverted(selfID, peer, minRate, weight)
				} else {
					s.MergePositive(selfID, peer, minRate, weight)
				}
				for id := range pm.req {
					if network.NodeID(id) == selfID {
						continue
					}
					fwd := pm.fwd[id]
					if invert {
						fwd = pm.req[id] - pm.fwd[id]
					}
					if float64(fwd)/float64(pm.req[id]) < minRate {
						continue
					}
					addReq := uint64(math.Round(float64(pm.req[id]) * weight))
					if addReq == 0 {
						addReq = 1
					}
					addFwd := uint64(math.Round(float64(fwd) * weight))
					if addFwd > addReq {
						addFwd = addReq
					}
					m.req[id] += addReq
					m.fwd[id] += addFwd
				}
			case 11: // generation reset (rare)
				if r.Bool(0.1) {
					s.Reset()
					m.reset()
				}
			}
			// Alternate between flushed and pending-dirty verification so
			// stale caches cannot hide behind a convenient flush.
			checkAgainst(t, s, m, table, band, step%3 == 0)
		}
	}
}

// TestForgetUnknownAndOutOfRangeIsNoOp pins Forget's edge cases directly.
func TestForgetUnknownAndOutOfRangeIsNoOp(t *testing.T) {
	s := NewStoreSized(4)
	s.Observe(1, true)
	s.Forget(2)   // known range, never observed
	s.Forget(100) // beyond the store
	if s.KnownCount() != 1 || !s.Known(1) {
		t.Errorf("no-op forgets disturbed the store: known=%d", s.KnownCount())
	}
	s.Forget(1)
	if s.KnownCount() != 0 || s.Known(1) {
		t.Error("forget left the node known")
	}
	if rate := s.PathRates()[1]; rate != network.UnknownRate {
		t.Errorf("forgotten node's rate = %v, want UnknownRate", rate)
	}
	// Re-observation after forgetting starts from scratch.
	s.Observe(1, false)
	if rate, known := s.ForwardingRate(1); !known || rate != 0 {
		t.Errorf("re-observed node rate = %v/%v, want 0/true", rate, known)
	}
}

// TestForgetWhileDirtyDoesNotResurrect pins the interaction between
// Forget and the lazy flush: a record forgotten while pending a flush must
// not be resurrected by the next PathRates call.
func TestForgetWhileDirtyDoesNotResurrect(t *testing.T) {
	s := NewStoreSized(3)
	s.Observe(2, true)
	s.Observe(2, true) // dirty, queued for flush
	s.Forget(2)
	rates := s.PathRates()
	if rates[2] != network.UnknownRate {
		t.Errorf("stale dirty entry resurrected rate %v", rates[2])
	}
	if level, _, known := s.Evaluate(2, DefaultActivityBand); known {
		t.Errorf("forgotten node still evaluates (level %v)", level)
	}
}
