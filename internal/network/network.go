// Package network models the abstract ad hoc network of the paper's game
// (§4.1): node identities, source-routed paths, and the random path
// generation process of §6.1 (hop-count distributions of Table 2, alternate
// path counts of Table 3, best-reputation path selection of §3.1).
//
// The paper deliberately abstracts away radio propagation and mobility:
// "All intermediate nodes are chosen randomly. This simulates a network
// with a high mobility level, in which topology changes very fast." The
// package therefore generates paths by sampling rather than by maintaining
// a geometric topology.
package network

import (
	"fmt"

	"adhocga/internal/rng"
)

// NodeID identifies a node (player) within one tournament. IDs are dense
// small integers assigned by the tournament runner.
type NodeID int

// Path is a source route: the source, the ordered intermediate nodes, and
// the destination. The paper counts path length in hops; a path with h
// hops has h-1 intermediates (source → i1 → … → i(h-1) → destination).
type Path struct {
	Src           NodeID
	Dst           NodeID
	Intermediates []NodeID
}

// Hops returns the hop count of the path (number of edges).
func (p Path) Hops() int { return len(p.Intermediates) + 1 }

// String renders the path like "3 -> 7 -> 1 -> 9".
func (p Path) String() string {
	s := fmt.Sprintf("%d", p.Src)
	for _, n := range p.Intermediates {
		s += fmt.Sprintf(" -> %d", n)
	}
	return s + fmt.Sprintf(" -> %d", p.Dst)
}

// Contains reports whether id appears among the intermediates.
func (p Path) Contains(id NodeID) bool {
	for _, n := range p.Intermediates {
		if n == id {
			return true
		}
	}
	return false
}

// MinHops and MaxHops bound the paper's path lengths: "The number of hops
// from the source node to the destination varies from 2 to 10" (§6.1).
const (
	MinHops = 2
	MaxHops = 10
)

// LengthDist is a distribution over hop counts MinHops..MaxHops.
type LengthDist struct {
	cat *rng.Categorical // outcome i ↦ MinHops+i
}

// NewLengthDist builds a hop-count distribution from a probability per hop
// count. Probabilities must be non-negative and sum to approximately 1.
func NewLengthDist(probs map[int]float64) (LengthDist, error) {
	weights := make([]float64, MaxHops-MinHops+1)
	total := 0.0
	for hops, p := range probs {
		if hops < MinHops || hops > MaxHops {
			return LengthDist{}, fmt.Errorf("network: hop count %d outside [%d,%d]", hops, MinHops, MaxHops)
		}
		if p < 0 {
			return LengthDist{}, fmt.Errorf("network: negative probability for %d hops", hops)
		}
		weights[hops-MinHops] = p
		total += p
	}
	if total < 0.999 || total > 1.001 {
		return LengthDist{}, fmt.Errorf("network: hop probabilities sum to %v, want 1", total)
	}
	cat, err := rng.NewCategorical(weights)
	if err != nil {
		return LengthDist{}, err
	}
	return LengthDist{cat: cat}, nil
}

// Sample draws a hop count.
func (d LengthDist) Sample(r *rng.Source) int { return MinHops + d.cat.Sample(r) }

// Prob returns the probability of the given hop count.
func (d LengthDist) Prob(hops int) float64 {
	if hops < MinHops || hops > MaxHops {
		return 0
	}
	return d.cat.Prob(hops - MinHops)
}

// ShorterPathLengths returns the paper's "shorter paths" (SP) mode hop
// distribution (Table 2, left column, expanded per hop count): 2 hops 0.2;
// 3–4 hops 0.3 each; 5–8 hops 0.05 each; 9–10 hops never.
func ShorterPathLengths() LengthDist {
	d, err := NewLengthDist(map[int]float64{
		2: 0.20, 3: 0.30, 4: 0.30,
		5: 0.05, 6: 0.05, 7: 0.05, 8: 0.05,
	})
	if err != nil {
		panic(err)
	}
	return d
}

// LongerPathLengths returns the paper's "longer paths" (LP) mode hop
// distribution (Table 2, right column): 2 hops 0.1; 3–4 hops 0.1 each;
// 5–8 hops 0.1 each; 9–10 hops 0.15 each.
func LongerPathLengths() LengthDist {
	d, err := NewLengthDist(map[int]float64{
		2: 0.10, 3: 0.10, 4: 0.10,
		5: 0.10, 6: 0.10, 7: 0.10, 8: 0.10,
		9: 0.15, 10: 0.15,
	})
	if err != nil {
		panic(err)
	}
	return d
}

// MixedPathLengths returns a hop-count distribution that linearly blends
// the SP and LP distributions of Table 2: alpha 0 is exactly
// ShorterPathLengths, alpha 1 exactly LongerPathLengths, and values in
// between shift probability mass toward longer routes. The dynamics layer
// (internal/dynamics) drives alpha as a seeded random walk to model link
// rewiring under mobility — as links churn, the route-length statistics of
// the whole network drift between the paper's two regimes. Alpha outside
// [0,1] is clamped.
func MixedPathLengths(alpha float64) LengthDist {
	if alpha <= 0 {
		return ShorterPathLengths()
	}
	if alpha >= 1 {
		return LongerPathLengths()
	}
	sp, lp := ShorterPathLengths(), LongerPathLengths()
	probs := make(map[int]float64, MaxHops-MinHops+1)
	for h := MinHops; h <= MaxHops; h++ {
		if p := (1-alpha)*sp.Prob(h) + alpha*lp.Prob(h); p > 0 {
			probs[h] = p
		}
	}
	d, err := NewLengthDist(probs)
	if err != nil {
		panic(err) // blend of two valid distributions is valid
	}
	return d
}

// MixedPaths bundles the blended hop distribution with the Table 3
// alternates into a PathMode named "MIX(alpha)".
func MixedPaths(alpha float64) PathMode {
	return PathMode{
		Name:       fmt.Sprintf("MIX(%.3f)", alpha),
		Lengths:    MixedPathLengths(alpha),
		Alternates: Table3Alternates(),
	}
}

// ModeAlpha returns the SP↔LP mix parameter a mode's name represents:
// 0 for SP, 1 for LP, the embedded value for MixedPaths modes. The
// boolean is false for custom modes, whose position on the SP↔LP axis is
// unknowable from the name — callers seed their own default then.
func ModeAlpha(mode PathMode) (float64, bool) {
	switch mode.Name {
	case "SP":
		return 0, true
	case "LP":
		return 1, true
	}
	var alpha float64
	if n, err := fmt.Sscanf(mode.Name, "MIX(%f)", &alpha); n == 1 && err == nil && alpha >= 0 && alpha <= 1 {
		return alpha, true
	}
	return 0, false
}

// MaxAlternatePaths is the largest number of alternate routes Table 3
// assigns positive probability.
const MaxAlternatePaths = 3

// AlternatesDist gives the distribution of the number of available
// alternate paths as a function of hop count (Table 3). The paper's rows
// cover 2–3, 4–6 and 7–8 hops; the 7–8 row is extended to 9–10 (used only
// by the longer-paths mode, which the paper's Table 3 omits).
type AlternatesDist struct {
	short *rng.Categorical // 2-3 hops
	mid   *rng.Categorical // 4-6 hops
	long  *rng.Categorical // 7-10 hops
}

// Table3Alternates returns the paper's alternate-path distribution.
func Table3Alternates() AlternatesDist {
	return AlternatesDist{
		short: rng.MustCategorical([]float64{0.5, 0.3, 0.2}),
		mid:   rng.MustCategorical([]float64{0.6, 0.25, 0.15}),
		long:  rng.MustCategorical([]float64{0.8, 0.15, 0.05}),
	}
}

// Sample draws the number of available paths (1..3) for the given hop
// count.
func (d AlternatesDist) Sample(r *rng.Source, hops int) int {
	return d.row(hops).Sample(r) + 1
}

// Prob returns the probability of exactly n alternate paths at the given
// hop count.
func (d AlternatesDist) Prob(hops, n int) float64 {
	if n < 1 || n > MaxAlternatePaths {
		return 0
	}
	return d.row(hops).Prob(n - 1)
}

func (d AlternatesDist) row(hops int) *rng.Categorical {
	switch {
	case hops <= 3:
		return d.short
	case hops <= 6:
		return d.mid
	default:
		return d.long
	}
}

// PathMode bundles a named hop-count distribution with an alternate-path
// distribution: the paper's SP and LP evaluation modes (§6.1).
type PathMode struct {
	Name       string
	Lengths    LengthDist
	Alternates AlternatesDist
}

// ShorterPaths returns the SP mode used by evaluation cases 1–3.
func ShorterPaths() PathMode {
	return PathMode{Name: "SP", Lengths: ShorterPathLengths(), Alternates: Table3Alternates()}
}

// LongerPaths returns the LP mode used by evaluation case 4.
func LongerPaths() PathMode {
	return PathMode{Name: "LP", Lengths: LongerPathLengths(), Alternates: Table3Alternates()}
}
