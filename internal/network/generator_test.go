package network

import (
	"math"
	"testing"
	"testing/quick"

	"adhocga/internal/rng"
)

func participantSet(n int) []NodeID {
	ps := make([]NodeID, n)
	for i := range ps {
		ps[i] = NodeID(i)
	}
	return ps
}

func TestCandidatesInvariants(t *testing.T) {
	r := rng.New(7)
	g := NewGenerator(ShorterPaths())
	parts := participantSet(50)
	for trial := 0; trial < 2000; trial++ {
		src := NodeID(r.Intn(50))
		paths := g.Candidates(r, src, parts)
		if len(paths) < 1 || len(paths) > MaxAlternatePaths {
			t.Fatalf("%d candidate paths", len(paths))
		}
		hops := paths[0].Hops()
		if hops < MinHops || hops > MaxHops {
			t.Fatalf("hop count %d", hops)
		}
		dst := paths[0].Dst
		for _, p := range paths {
			if p.Src != src {
				t.Fatalf("path source %d, want %d", p.Src, src)
			}
			if p.Dst != dst {
				t.Fatal("candidates disagree on destination")
			}
			if p.Hops() != hops {
				t.Fatal("candidates disagree on hop count")
			}
			if p.Dst == src {
				t.Fatal("destination equals source")
			}
			seen := map[NodeID]bool{src: true, p.Dst: true}
			for _, id := range p.Intermediates {
				if seen[id] {
					t.Fatalf("duplicate or src/dst node %d in intermediates %v", id, p.Intermediates)
				}
				seen[id] = true
				if int(id) < 0 || int(id) >= 50 {
					t.Fatalf("intermediate %d outside participant set", id)
				}
			}
		}
	}
}

func TestCandidatesClampsHopsForSmallSets(t *testing.T) {
	r := rng.New(8)
	g := NewGenerator(LongerPaths())
	parts := participantSet(5) // max feasible hops = 4
	for trial := 0; trial < 500; trial++ {
		paths := g.Candidates(r, 0, parts)
		for _, p := range paths {
			if p.Hops() > 4 {
				t.Fatalf("hop count %d exceeds feasibility for 5 participants", p.Hops())
			}
		}
	}
}

func TestCandidatesPanicsOnTinySet(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for 1 participant")
		}
	}()
	g := NewGenerator(ShorterPaths())
	g.Candidates(rng.New(1), 0, participantSet(1))
}

func TestCandidatesHopFrequenciesFollowMode(t *testing.T) {
	r := rng.New(9)
	g := NewGenerator(ShorterPaths())
	parts := participantSet(50)
	counts := map[int]int{}
	const draws = 50000
	for i := 0; i < draws; i++ {
		counts[g.Candidates(r, 0, parts)[0].Hops()]++
	}
	d := ShorterPathLengths()
	for hops := MinHops; hops <= MaxHops; hops++ {
		got := float64(counts[hops]) / draws
		if math.Abs(got-d.Prob(hops)) > 0.01 {
			t.Errorf("hop %d frequency %v, want %v", hops, got, d.Prob(hops))
		}
	}
}

func TestRatePath(t *testing.T) {
	// Dense rate view: ids 0..2 covered, id 3 beyond the slice (unknown).
	rates := []float64{UnknownRate, 0.9, 0.8}
	p := Path{Src: 0, Dst: 5, Intermediates: []NodeID{1, 2}}
	if got := RatePath(p, rates); math.Abs(got-0.72) > 1e-12 {
		t.Errorf("RatePath = %v, want 0.72", got)
	}
	// Unknown intermediate (beyond the view) contributes 0.5.
	p2 := Path{Src: 0, Dst: 5, Intermediates: []NodeID{1, 3}}
	if got := RatePath(p2, rates); math.Abs(got-0.45) > 1e-12 {
		t.Errorf("RatePath with unknown = %v, want 0.45", got)
	}
	// Empty path rates 1 (nothing can drop).
	if got := RatePath(Path{Src: 0, Dst: 1}, rates); got != 1 {
		t.Errorf("empty path rating = %v", got)
	}
}

func TestSelectBestPicksHighestRating(t *testing.T) {
	r := rng.New(10)
	rates := []float64{UnknownRate, 0.1, 0.9}
	candidates := []Path{
		{Src: 0, Dst: 9, Intermediates: []NodeID{1}},
		{Src: 0, Dst: 9, Intermediates: []NodeID{2}},
	}
	for i := 0; i < 100; i++ {
		if got := SelectBest(r, candidates, rates); got != 1 {
			t.Fatalf("SelectBest = %d, want 1", got)
		}
	}
}

func TestSelectBestUniformTieBreak(t *testing.T) {
	r := rng.New(11)
	var rates []float64 // all unknown → equal ratings
	candidates := []Path{
		{Src: 0, Dst: 9, Intermediates: []NodeID{1}},
		{Src: 0, Dst: 9, Intermediates: []NodeID{2}},
		{Src: 0, Dst: 9, Intermediates: []NodeID{3}},
	}
	counts := make([]int, 3)
	const draws = 30000
	for i := 0; i < draws; i++ {
		counts[SelectBest(r, candidates, rates)]++
	}
	for i, c := range counts {
		got := float64(c) / draws
		if math.Abs(got-1.0/3.0) > 0.02 {
			t.Errorf("tie-broken choice %d frequency %v, want 1/3", i, got)
		}
	}
}

func TestSelectBestPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	SelectBest(rng.New(1), nil, nil)
}

// Property: the path rating is always in [0,1] when all rates are, and
// adding an intermediate can never increase the rating.
func TestRatePathMonotoneProperty(t *testing.T) {
	r := rng.New(12)
	f := func(seed uint64, n uint8) bool {
		rr := rng.New(seed)
		k := int(n)%8 + 1
		rates := make([]float64, k+1)
		rates[0] = UnknownRate
		inter := make([]NodeID, k)
		for i := range inter {
			inter[i] = NodeID(i + 1)
			rates[inter[i]] = rr.Float64()
		}
		full := Path{Src: 0, Dst: 99, Intermediates: inter}
		prefix := Path{Src: 0, Dst: 99, Intermediates: inter[:k-1]}
		rf, rp := RatePath(full, rates), RatePath(prefix, rates)
		return rf >= 0 && rf <= 1 && rf <= rp
	}
	_ = r
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkCandidates(b *testing.B) {
	r := rng.New(1)
	g := NewGenerator(ShorterPaths())
	parts := participantSet(50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Candidates(r, NodeID(i%50), parts)
	}
}

func BenchmarkSelectBest(b *testing.B) {
	r := rng.New(1)
	g := NewGenerator(LongerPaths())
	parts := participantSet(50)
	rates := make([]float64, 50)
	for i := range rates {
		rates[i] = float64(i) / 50
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		paths := g.Candidates(r, 0, parts)
		_ = SelectBest(r, paths, rates)
	}
}
