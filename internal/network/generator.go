package network

import (
	"fmt"

	"adhocga/internal/rng"
)

// Generator produces the candidate route sets a source sees when it "plays
// its own game" (§6.1): it samples a hop count from the mode's length
// distribution, a number of available alternate paths from Table 3, and
// fills each path with a random destination plus distinct random
// intermediates drawn from the tournament participants.
//
// A Generator is stateful only through its scratch buffers (to keep the
// per-game allocation count flat) and is not safe for concurrent use; each
// tournament goroutine owns one.
//
// The intermediate pool (participants minus src and dst, order-preserving)
// is never materialized: reads go through an epoch-stamped overlay where
// only the handful of indices a path's partial Fisher–Yates shuffle has
// touched hold explicit values and every other index maps straight into
// the participants slice. Bumping the epoch resets the overlay in O(1),
// which replaces both the per-game pool build and the per-path pool copy
// of the naive implementation.
type Generator struct {
	mode PathMode

	// scratch: the shuffle overlay and the returned paths
	vals  []NodeID
	stamp []uint32
	epoch uint32
	paths []Path

	// lastSrcPos remembers where the previous call's source sat in the
	// participants slice. Tournaments iterate sources in participant
	// order, so position lastSrcPos+1 (cyclically) is almost always right
	// and the O(n) scan below is a cold fallback.
	lastSrcPos int
}

// NewGenerator returns a Generator for the given mode.
func NewGenerator(mode PathMode) *Generator {
	return &Generator{mode: mode, lastSrcPos: -1}
}

// Mode returns the generator's path mode.
func (g *Generator) Mode() PathMode { return g.mode }

// SetMode swaps the generator's path mode in place, keeping the scratch
// buffers warm. The dynamics layer calls it at generation barriers when
// the rewiring walk moves the route-length landscape; it must never be
// called mid-tournament.
func (g *Generator) SetMode(mode PathMode) { g.mode = mode }

// Candidates generates the set of available routes for one game: all
// candidates share the same source, destination, and hop count, differing
// in their intermediates. participants must contain src. The returned
// slice and the paths' intermediate slices are owned by the Generator and
// are valid until the next Candidates call; callers that retain paths must
// copy them.
//
// If the participant set is too small for the sampled hop count, the hop
// count is clamped to the largest feasible value (h ≤ len(participants)-1,
// so that the destination plus h-1 distinct intermediates exist); the
// paper's tournaments (50 players, ≤ 10 hops) never trigger the clamp.
func (g *Generator) Candidates(r *rng.Source, src NodeID, participants []NodeID) []Path {
	n := len(participants)
	if n < 2 {
		panic(fmt.Sprintf("network: need at least 2 participants, have %d", n))
	}
	hops := g.mode.Lengths.Sample(r)
	// Feasibility: destination + (hops-1) intermediates, all distinct, all
	// different from src → need n-1 ≥ hops.
	if hops > n-1 {
		hops = n - 1
	}
	count := g.mode.Alternates.Sample(r, hops)

	// Destination: uniform among participants except the source, drawn by
	// index arithmetic — equivalent to sampling the order-preserving
	// "everyone but src" list without materializing it.
	srcPos := -1
	if guess := (g.lastSrcPos + 1) % n; guess >= 0 && participants[guess] == src {
		srcPos = guess
	} else {
		for i, id := range participants {
			if id == src {
				srcPos = i
				break
			}
		}
	}
	g.lastSrcPos = srcPos
	m := n
	if srcPos >= 0 {
		m = n - 1
	}
	dstPos := r.Intn(m)
	if srcPos >= 0 && dstPos >= srcPos {
		dstPos++
	}
	dst := participants[dstPos]

	// Virtual intermediate pool: everyone except src and dst, in
	// participants order. p1 < p2 are the excluded positions; a pool index
	// below p1 maps to itself, one below p2-1 skips p1, the rest skip
	// both. With src absent (callers shouldn't, but the old behavior is
	// preserved) only dst is excluded and p2 sits past the end.
	p1, p2 := srcPos, dstPos
	if p1 > p2 {
		p1, p2 = p2, p1
	}
	poolLen := n - 2
	if srcPos < 0 {
		p1, p2 = dstPos, n
		poolLen = n - 1
	}
	if len(g.stamp) < n {
		g.vals = make([]NodeID, n)
		g.stamp = make([]uint32, n)
		g.epoch = 0
	}
	pool := func(i int) NodeID {
		if g.stamp[i] == g.epoch {
			return g.vals[i]
		}
		j := i
		if j >= p1 {
			j++
		}
		if j >= p2 {
			j++
		}
		return participants[j]
	}

	k := hops - 1
	if cap(g.paths) < count {
		g.paths = make([]Path, count)
	}
	paths := g.paths[:count]
	for i := 0; i < count; i++ {
		inter := paths[i].Intermediates
		if cap(inter) < k {
			inter = make([]NodeID, k)
		}
		inter = inter[:k]
		// Fresh overlay per path: identical draws and samples to running
		// the partial Fisher–Yates shuffle on a fresh pool copy.
		g.epoch++
		if g.epoch == 0 { // wrapped: stale stamps could alias; hard-reset
			clear(g.stamp)
			g.epoch = 1
		}
		for x := 0; x < k; x++ {
			j := x + r.Intn(poolLen-x)
			vx, vj := pool(x), pool(j)
			g.vals[x], g.stamp[x] = vj, g.epoch
			g.vals[j], g.stamp[j] = vx, g.epoch
			inter[x] = vj
		}
		paths[i] = Path{Src: src, Dst: dst, Intermediates: inter}
	}
	g.paths = paths
	return paths
}

// UnknownRate is the paper's default forwarding rate assumed for nodes the
// rater has no data about when rating a path (§3.1).
const UnknownRate = 0.5

// RatePath computes the §3.1 path rating: the product of the forwarding
// rates of all intermediates as known to the rater. rates is the rater's
// dense NodeID-indexed rate view (trust.Store.PathRates): known nodes hold
// their pf/ps, unknown ones UnknownRate; IDs at or beyond len(rates) count
// as unknown.
func RatePath(p Path, rates []float64) float64 {
	rating := 1.0
	for _, id := range p.Intermediates {
		f := UnknownRate
		if int(id) < len(rates) {
			f = rates[id]
		}
		rating *= f
	}
	return rating
}

// SelectBest returns the index of the candidate with the highest rating
// under RatePath; ties break uniformly at random (the paper does not
// specify tie handling). It panics on an empty candidate set.
func SelectBest(r *rng.Source, candidates []Path, rates []float64) int {
	if len(candidates) == 0 {
		panic("network: SelectBest with no candidates")
	}
	bestIdx := 0
	bestRating := RatePath(candidates[0], rates)
	ties := 1
	for i := 1; i < len(candidates); i++ {
		rating := RatePath(candidates[i], rates)
		switch {
		case rating > bestRating:
			bestIdx, bestRating, ties = i, rating, 1
		case rating == bestRating:
			// Reservoir-style uniform tie break.
			ties++
			if r.Intn(ties) == 0 {
				bestIdx = i
			}
		}
	}
	return bestIdx
}
