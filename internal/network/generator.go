package network

import (
	"fmt"

	"adhocga/internal/rng"
)

// Generator produces the candidate route sets a source sees when it "plays
// its own game" (§6.1): it samples a hop count from the mode's length
// distribution, a number of available alternate paths from Table 3, and
// fills each path with a random destination plus distinct random
// intermediates drawn from the tournament participants.
//
// A Generator is stateful only through its scratch buffers (to keep the
// per-game allocation count flat) and is not safe for concurrent use; each
// tournament goroutine owns one.
type Generator struct {
	mode PathMode

	// scratch
	ids     []int
	pool    []int
	sample  []int
	scratch []int
	paths   []Path
}

// NewGenerator returns a Generator for the given mode.
func NewGenerator(mode PathMode) *Generator {
	return &Generator{mode: mode}
}

// Mode returns the generator's path mode.
func (g *Generator) Mode() PathMode { return g.mode }

// Candidates generates the set of available routes for one game: all
// candidates share the same source, destination, and hop count, differing
// in their intermediates. participants must contain src. The returned
// slice and the paths' intermediate slices are owned by the Generator and
// are valid until the next Candidates call; callers that retain paths must
// copy them.
//
// If the participant set is too small for the sampled hop count, the hop
// count is clamped to the largest feasible value (h ≤ len(participants)-1,
// so that the destination plus h-1 distinct intermediates exist); the
// paper's tournaments (50 players, ≤ 10 hops) never trigger the clamp.
func (g *Generator) Candidates(r *rng.Source, src NodeID, participants []NodeID) []Path {
	n := len(participants)
	if n < 2 {
		panic(fmt.Sprintf("network: need at least 2 participants, have %d", n))
	}
	hops := g.mode.Lengths.Sample(r)
	// Feasibility: destination + (hops-1) intermediates, all distinct, all
	// different from src → need n-1 ≥ hops.
	if hops > n-1 {
		hops = n - 1
	}
	count := g.mode.Alternates.Sample(r, hops)

	// Destination: uniform among participants except the source.
	others := g.ids[:0]
	for _, id := range participants {
		if id != src {
			others = append(others, int(id))
		}
	}
	g.ids = others
	dst := NodeID(others[r.Intn(len(others))])

	// Intermediate pool: everyone except src and dst.
	pool := g.pool[:0]
	for _, id := range others {
		if NodeID(id) != dst {
			pool = append(pool, id)
		}
	}
	g.pool = pool

	k := hops - 1
	if cap(g.sample) < k {
		g.sample = make([]int, k)
	}
	sample := g.sample[:k]

	if cap(g.paths) < count {
		g.paths = make([]Path, count)
	}
	paths := g.paths[:count]
	for i := 0; i < count; i++ {
		g.scratch = r.SampleWithoutReplacement(sample, pool, g.scratch)
		inter := paths[i].Intermediates
		if cap(inter) < k {
			inter = make([]NodeID, k)
		}
		inter = inter[:k]
		for j, v := range sample {
			inter[j] = NodeID(v)
		}
		paths[i] = Path{Src: src, Dst: dst, Intermediates: inter}
	}
	g.paths = paths
	return paths
}

// RatePath computes the §3.1 path rating: the product of the forwarding
// rates of all intermediates as known to the rater. rate returns a node's
// forwarding rate and whether the rater has data about it; unknown nodes
// contribute the paper's default rate of 0.5.
func RatePath(p Path, rate func(NodeID) (float64, bool)) float64 {
	const unknownRate = 0.5
	rating := 1.0
	for _, id := range p.Intermediates {
		r, known := rate(id)
		if !known {
			r = unknownRate
		}
		rating *= r
	}
	return rating
}

// SelectBest returns the index of the candidate with the highest rating
// under RatePath; ties break uniformly at random (the paper does not
// specify tie handling). It panics on an empty candidate set.
func SelectBest(r *rng.Source, candidates []Path, rate func(NodeID) (float64, bool)) int {
	if len(candidates) == 0 {
		panic("network: SelectBest with no candidates")
	}
	bestIdx := 0
	bestRating := RatePath(candidates[0], rate)
	ties := 1
	for i := 1; i < len(candidates); i++ {
		rating := RatePath(candidates[i], rate)
		switch {
		case rating > bestRating:
			bestIdx, bestRating, ties = i, rating, 1
		case rating == bestRating:
			// Reservoir-style uniform tie break.
			ties++
			if r.Intn(ties) == 0 {
				bestIdx = i
			}
		}
	}
	return bestIdx
}
