package network

import (
	"fmt"

	"adhocga/internal/rng"
)

// Generator produces the candidate route sets a source sees when it "plays
// its own game" (§6.1): it samples a hop count from the mode's length
// distribution, a number of available alternate paths from Table 3, and
// fills each path with a random destination plus distinct random
// intermediates drawn from the tournament participants.
//
// A Generator is stateful only through its scratch buffers (to keep the
// per-game allocation count flat) and is not safe for concurrent use; each
// tournament goroutine owns one.
//
// The intermediate pool of each game — participants minus src and dst,
// order-preserving — is never materialized: reads go straight to the
// participants slice through a branchless skip mapping over the two
// excluded positions. A partial Fisher–Yates of k steps displaces at most
// k pool entries, so the shuffle state lives in a k-entry (index, value)
// overlay that a path resets by zeroing its length; participants is never
// touched. This replaces both the epoch-stamped overlay closure (per-read
// indirect call) and the per-game pool copy (three-chunk memmove) that
// earlier versions paid for: path lengths cap at MaxHops, so the overlay
// scans a handful of L1-resident entries where those paid a call or a
// memmove.
type Generator struct {
	mode PathMode

	// scratch: the shuffle-displacement overlay and the returned paths
	oIdx  []int32
	oVal  []NodeID
	paths []Path

	// lastSrcPos remembers where the previous call's source sat in the
	// participants slice. Tournaments iterate sources in participant
	// order, so position lastSrcPos+1 (cyclically) is almost always right
	// and the O(n) scan below is a cold fallback.
	lastSrcPos int
}

// NewGenerator returns a Generator for the given mode.
func NewGenerator(mode PathMode) *Generator {
	return &Generator{mode: mode, lastSrcPos: -1}
}

// Mode returns the generator's path mode.
func (g *Generator) Mode() PathMode { return g.mode }

// SetMode swaps the generator's path mode in place, keeping the scratch
// buffers warm. The dynamics layer calls it at generation barriers when
// the rewiring walk moves the route-length landscape; it must never be
// called mid-tournament.
func (g *Generator) SetMode(mode PathMode) { g.mode = mode }

// Candidates generates the set of available routes for one game: all
// candidates share the same source, destination, and hop count, differing
// in their intermediates. participants must contain src. The returned
// slice and the paths' intermediate slices are owned by the Generator and
// are valid until the next Candidates call; callers that retain paths must
// copy them.
//
// If the participant set is too small for the sampled hop count, the hop
// count is clamped to the largest feasible value (h ≤ len(participants)-1,
// so that the destination plus h-1 distinct intermediates exist); the
// paper's tournaments (50 players, ≤ 10 hops) never trigger the clamp.
func (g *Generator) Candidates(r *rng.Source, src NodeID, participants []NodeID) []Path {
	n := len(participants)
	if n < 2 {
		panic(fmt.Sprintf("network: need at least 2 participants, have %d", n))
	}
	hops := g.mode.Lengths.Sample(r)
	// Feasibility: destination + (hops-1) intermediates, all distinct, all
	// different from src → need n-1 ≥ hops.
	if hops > n-1 {
		hops = n - 1
	}
	count := g.mode.Alternates.Sample(r, hops)

	// Destination: uniform among participants except the source, drawn by
	// index arithmetic — equivalent to sampling the order-preserving
	// "everyone but src" list without materializing it.
	srcPos := -1
	guess := g.lastSrcPos + 1
	if guess >= n {
		guess = 0
	}
	if participants[guess] == src {
		srcPos = guess
	} else {
		for i, id := range participants {
			if id == src {
				srcPos = i
				break
			}
		}
	}
	g.lastSrcPos = srcPos
	m := n
	if srcPos >= 0 {
		m = n - 1
	}
	dstPos := r.Intn(m)
	if srcPos >= 0 && dstPos >= srcPos {
		dstPos++
	}
	dst := participants[dstPos]

	// The virtual intermediate pool is everyone except src and dst in
	// participants order: virtual index v holds participants[skip2(v)],
	// where skip2 jumps over the excluded positions p1 < p2. The partial
	// Fisher–Yates below acts on virtual indices with its displacements
	// kept in the (oIdx, oVal) overlay, so its draws and sampled
	// intermediates are identical to shuffling a materialized copy of the
	// pool — without building or mutating anything of pool size. With src
	// absent (callers shouldn't, but the old behavior is preserved) only
	// dst is excluded and p2 = n sits beyond every mapped index.
	p1, p2 := srcPos, dstPos
	if p1 > p2 {
		p1, p2 = p2, p1
	}
	poolLen := n - 2
	if srcPos < 0 {
		p1, p2 = dstPos, n
		poolLen = n - 1
	}

	k := hops - 1
	if cap(g.oIdx) < k {
		g.oIdx = make([]int32, k+8)
		g.oVal = make([]NodeID, k+8)
	}
	oIdx, oVal := g.oIdx, g.oVal
	if cap(g.paths) < count {
		g.paths = make([]Path, count)
	}
	paths := g.paths[:count]
	for i := 0; i < count; i++ {
		inter := paths[i].Intermediates
		if cap(inter) < k {
			inter = make([]NodeID, k)
		}
		inter = inter[:k]
		// Partial Fisher–Yates on the virtual pool. Step x of the classic
		// in-place form swaps pool[x] and pool[j] and selects the new
		// pool[x]; position x is never read after step x, so only the
		// value parked at j needs recording. The overlay holds those
		// parked values, newest last; reads scan it backwards (a repeated
		// j must see the latest parking) and fall through to the pristine
		// pool. At most k ≤ MaxHops−1 entries, so the scan stays in L1.
		m := 0
		for x := 0; x < k; x++ {
			j := x + r.Intn(poolLen-x)
			vj := NodeID(0)
			for t := m - 1; ; t-- {
				if t < 0 {
					vj = participants[skip2(j, p1, p2)]
					break
				}
				if oIdx[t] == int32(j) {
					vj = oVal[t]
					break
				}
			}
			if j != x {
				vx := NodeID(0)
				for t := m - 1; ; t-- {
					if t < 0 {
						vx = participants[skip2(x, p1, p2)]
						break
					}
					if oIdx[t] == int32(x) {
						vx = oVal[t]
						break
					}
				}
				oIdx[m], oVal[m] = int32(j), vx
				m++
			}
			inter[x] = vj
		}
		paths[i] = Path{Src: src, Dst: dst, Intermediates: inter}
	}
	g.paths = paths
	return paths
}

// skip2 maps a virtual intermediate-pool index to its participants index
// by skipping the two excluded positions p1 < p2 (p2 may sit past the
// slice to disable the second skip). Branchless on purpose: v comes from
// a uniform draw, so compares against p1/p2 are unpredictable as
// branches.
func skip2(v, p1, p2 int) int {
	v += int(uint64(int64(p1-v-1)) >> 63)
	return v + int(uint64(int64(p2-v-1))>>63)
}

// UnknownRate is the paper's default forwarding rate assumed for nodes the
// rater has no data about when rating a path (§3.1).
const UnknownRate = 0.5

// RatePath computes the §3.1 path rating: the product of the forwarding
// rates of all intermediates as known to the rater. rates is the rater's
// dense NodeID-indexed rate view (trust.Store.PathRates): known nodes hold
// their pf/ps, unknown ones UnknownRate; IDs at or beyond len(rates) count
// as unknown.
func RatePath(p Path, rates []float64) float64 {
	rating := 1.0
	for _, id := range p.Intermediates {
		f := UnknownRate
		if int(id) < len(rates) {
			f = rates[id]
		}
		rating *= f
	}
	return rating
}

// SelectBest returns the index of the candidate with the highest rating
// under RatePath; ties break uniformly at random (the paper does not
// specify tie handling). It panics on an empty candidate set.
func SelectBest(r *rng.Source, candidates []Path, rates []float64) int {
	if len(candidates) == 0 {
		panic("network: SelectBest with no candidates")
	}
	bestIdx := 0
	bestRating := RatePath(candidates[0], rates)
	ties := 1
	for i := 1; i < len(candidates); i++ {
		rating := RatePath(candidates[i], rates)
		switch {
		case rating > bestRating:
			bestIdx, bestRating, ties = i, rating, 1
		case rating == bestRating:
			// Reservoir-style uniform tie break.
			ties++
			if r.Intn(ties) == 0 {
				bestIdx = i
			}
		}
	}
	return bestIdx
}

// SelectBestRated is SelectBest over precomputed ratings (one per
// candidate, e.g. from trust.Store.RatePaths): the scan order, the
// comparisons, and the tie-break draws are identical, so for equal
// ratings it returns the same index as SelectBest and consumes the same
// random sequence. It panics on an empty rating set.
func SelectBestRated(r *rng.Source, ratings []float64) int {
	if len(ratings) == 0 {
		panic("network: SelectBestRated with no candidates")
	}
	bestIdx := 0
	bestRating := ratings[0]
	ties := 1
	for i := 1; i < len(ratings); i++ {
		rating := ratings[i]
		switch {
		case rating > bestRating:
			bestIdx, bestRating, ties = i, rating, 1
		case rating == bestRating:
			ties++
			if r.Intn(ties) == 0 {
				bestIdx = i
			}
		}
	}
	return bestIdx
}
