package network

import (
	"math"
	"testing"

	"adhocga/internal/rng"
)

func TestPathHops(t *testing.T) {
	p := Path{Src: 0, Dst: 4, Intermediates: []NodeID{1, 2, 3}}
	if p.Hops() != 4 {
		t.Errorf("Hops = %d, want 4", p.Hops())
	}
	direct := Path{Src: 0, Dst: 1, Intermediates: []NodeID{5}}
	if direct.Hops() != 2 {
		t.Errorf("2-hop path Hops = %d", direct.Hops())
	}
}

func TestPathContains(t *testing.T) {
	p := Path{Src: 0, Dst: 4, Intermediates: []NodeID{1, 2}}
	if !p.Contains(1) || !p.Contains(2) {
		t.Error("Contains missed an intermediate")
	}
	if p.Contains(0) || p.Contains(4) {
		t.Error("Contains should not match src/dst")
	}
}

func TestPathString(t *testing.T) {
	p := Path{Src: 3, Dst: 9, Intermediates: []NodeID{7, 1}}
	if got := p.String(); got != "3 -> 7 -> 1 -> 9" {
		t.Errorf("String = %q", got)
	}
}

// Table 2 check: the SP and LP presets must reproduce the paper's
// probabilities exactly.
func TestPathLengthDistributionMatchesTable2(t *testing.T) {
	sp := ShorterPathLengths()
	lp := LongerPathLengths()
	spWant := map[int]float64{2: 0.2, 3: 0.3, 4: 0.3, 5: 0.05, 6: 0.05, 7: 0.05, 8: 0.05, 9: 0, 10: 0}
	lpWant := map[int]float64{2: 0.1, 3: 0.1, 4: 0.1, 5: 0.1, 6: 0.1, 7: 0.1, 8: 0.1, 9: 0.15, 10: 0.15}
	for hops := MinHops; hops <= MaxHops; hops++ {
		if got := sp.Prob(hops); math.Abs(got-spWant[hops]) > 1e-12 {
			t.Errorf("SP Prob(%d) = %v, want %v", hops, got, spWant[hops])
		}
		if got := lp.Prob(hops); math.Abs(got-lpWant[hops]) > 1e-12 {
			t.Errorf("LP Prob(%d) = %v, want %v", hops, got, lpWant[hops])
		}
	}
	if sp.Prob(1) != 0 || sp.Prob(11) != 0 {
		t.Error("out-of-range hop counts should have probability 0")
	}
}

func TestLengthDistSampleFrequencies(t *testing.T) {
	r := rng.New(5)
	d := ShorterPathLengths()
	const draws = 200000
	counts := map[int]int{}
	for i := 0; i < draws; i++ {
		h := d.Sample(r)
		if h < MinHops || h > MaxHops {
			t.Fatalf("sampled %d hops", h)
		}
		counts[h]++
	}
	if counts[9] != 0 || counts[10] != 0 {
		t.Errorf("SP mode sampled 9/10 hops: %d/%d times", counts[9], counts[10])
	}
	for hops := MinHops; hops <= 8; hops++ {
		got := float64(counts[hops]) / draws
		if math.Abs(got-d.Prob(hops)) > 0.005 {
			t.Errorf("frequency of %d hops = %v, want %v", hops, got, d.Prob(hops))
		}
	}
}

func TestNewLengthDistValidation(t *testing.T) {
	cases := []map[int]float64{
		{1: 1.0},          // below MinHops
		{11: 1.0},         // above MaxHops
		{2: -0.5, 3: 1.5}, // negative
		{2: 0.3, 3: 0.3},  // sums to 0.6
		{2: 0.7, 3: 0.7},  // sums to 1.4
	}
	for i, probs := range cases {
		if _, err := NewLengthDist(probs); err == nil {
			t.Errorf("case %d: NewLengthDist(%v) succeeded, want error", i, probs)
		}
	}
}

// Table 3 check: the alternate-path preset matches the paper's rows.
func TestAlternatePathDistributionMatchesTable3(t *testing.T) {
	d := Table3Alternates()
	rows := []struct {
		hops []int
		p    [3]float64
	}{
		{[]int{2, 3}, [3]float64{0.5, 0.3, 0.2}},
		{[]int{4, 5, 6}, [3]float64{0.6, 0.25, 0.15}},
		{[]int{7, 8, 9, 10}, [3]float64{0.8, 0.15, 0.05}}, // 9-10 extend the 7-8 row
	}
	for _, row := range rows {
		for _, h := range row.hops {
			for n := 1; n <= 3; n++ {
				if got := d.Prob(h, n); math.Abs(got-row.p[n-1]) > 1e-12 {
					t.Errorf("Prob(hops=%d, n=%d) = %v, want %v", h, n, got, row.p[n-1])
				}
			}
		}
	}
	if d.Prob(5, 0) != 0 || d.Prob(5, 4) != 0 {
		t.Error("out-of-range alternate counts should have probability 0")
	}
}

func TestAlternatesSampleRange(t *testing.T) {
	r := rng.New(6)
	d := Table3Alternates()
	for hops := MinHops; hops <= MaxHops; hops++ {
		for i := 0; i < 500; i++ {
			n := d.Sample(r, hops)
			if n < 1 || n > MaxAlternatePaths {
				t.Fatalf("Sample(hops=%d) = %d", hops, n)
			}
		}
	}
}

func TestPathModes(t *testing.T) {
	sp, lp := ShorterPaths(), LongerPaths()
	if sp.Name != "SP" || lp.Name != "LP" {
		t.Errorf("mode names = %q, %q", sp.Name, lp.Name)
	}
	if sp.Lengths.Prob(9) != 0 {
		t.Error("SP mode should never pick 9 hops")
	}
	if math.Abs(lp.Lengths.Prob(9)-0.15) > 1e-12 {
		t.Error("LP mode should pick 9 hops with probability 0.15")
	}
}

func TestMixedPathLengthsBlend(t *testing.T) {
	sp, lp := ShorterPathLengths(), LongerPathLengths()
	if d := MixedPathLengths(0); d.Prob(9) != sp.Prob(9) || d.Prob(2) != sp.Prob(2) {
		t.Error("alpha 0 is not SP")
	}
	if d := MixedPathLengths(1); d.Prob(9) != lp.Prob(9) || d.Prob(2) != lp.Prob(2) {
		t.Error("alpha 1 is not LP")
	}
	d := MixedPathLengths(0.5)
	for h := MinHops; h <= MaxHops; h++ {
		want := 0.5*sp.Prob(h) + 0.5*lp.Prob(h)
		if math.Abs(d.Prob(h)-want) > 1e-12 {
			t.Errorf("alpha 0.5 Prob(%d) = %v, want %v", h, d.Prob(h), want)
		}
	}
	// Clamping.
	if d := MixedPathLengths(-2); d.Prob(2) != sp.Prob(2) {
		t.Error("alpha below 0 not clamped to SP")
	}
	if d := MixedPathLengths(3); d.Prob(10) != lp.Prob(10) {
		t.Error("alpha above 1 not clamped to LP")
	}
}

func TestModeAlpha(t *testing.T) {
	cases := []struct {
		mode  PathMode
		alpha float64
		ok    bool
	}{
		{ShorterPaths(), 0, true},
		{LongerPaths(), 1, true},
		{MixedPaths(0.25), 0.25, true},
		{PathMode{Name: "custom"}, 0, false},
		{PathMode{Name: "MIX(garbage)"}, 0, false},
	}
	for _, tc := range cases {
		alpha, ok := ModeAlpha(tc.mode)
		if ok != tc.ok || (ok && math.Abs(alpha-tc.alpha) > 1e-9) {
			t.Errorf("ModeAlpha(%q) = %v/%v, want %v/%v", tc.mode.Name, alpha, ok, tc.alpha, tc.ok)
		}
	}
}
