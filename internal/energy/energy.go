// Package energy quantifies the motivation of the whole paper (§1): nodes
// defect to save battery, and "the greatest saving is done when [the]
// wireless network interface is operating in a sleep mode", whose power
// draw is about 98% below idle (Feeney & Nilsson, INFOCOM'01 — the paper's
// reference [4]).
//
// The Meter plugs into a tournament as a Recorder and charges every
// player for its radio activity: transmitting own packets, receiving and
// re-transmitting forwarded ones, receiving discarded ones, and the
// per-round cost of keeping the interface awake. Constantly selfish nodes
// are modeled as sleeping between their own transmissions — the paper
// notes this "will be unnoticed by other network participants".
//
// The resulting ledger answers the quantitative question behind the
// dilemma: how much energy does selfishness actually save, and at what
// delivery price once the cooperation enforcement reacts.
package energy

import (
	"fmt"

	"adhocga/internal/game"
	"adhocga/internal/network"
	"adhocga/internal/tournament"
)

// Costs holds radio energy costs in arbitrary units (normalized so that
// receiving one packet costs about 1).
type Costs struct {
	Transmit      float64 // sending one packet (source or re-transmission)
	Receive       float64 // receiving one packet
	IdlePerRound  float64 // keeping the interface awake for one round
	SleepPerRound float64 // dozing for one round
}

// DefaultCosts follows the relative magnitudes measured by Feeney and
// Nilsson: transmit ≈ 1.9× receive, idle ≈ 0.84× receive per unit time,
// sleep ≈ 2% of idle.
func DefaultCosts() Costs {
	return Costs{
		Transmit:      1.9,
		Receive:       1.0,
		IdlePerRound:  0.84,
		SleepPerRound: 0.017,
	}
}

// Validate checks cost sanity.
func (c Costs) Validate() error {
	if c.Transmit < 0 || c.Receive < 0 || c.IdlePerRound < 0 || c.SleepPerRound < 0 {
		return fmt.Errorf("energy: negative cost in %+v", c)
	}
	if c.SleepPerRound > c.IdlePerRound {
		return fmt.Errorf("energy: sleep (%v) must not cost more than idle (%v)", c.SleepPerRound, c.IdlePerRound)
	}
	return nil
}

// Meter accumulates per-node energy spending. It implements
// game.Recorder and tournament.RoundObserver; wire it through
// tournament.Play. Not safe for concurrent use.
type Meter struct {
	costs Costs
	spent map[network.NodeID]float64
	types map[network.NodeID]game.NodeType
}

// NewMeter returns a Meter with the given costs.
func NewMeter(costs Costs) (*Meter, error) {
	if err := costs.Validate(); err != nil {
		return nil, err
	}
	return &Meter{
		costs: costs,
		spent: make(map[network.NodeID]float64),
		types: make(map[network.NodeID]game.NodeType),
	}, nil
}

var (
	_ game.Recorder            = (*Meter)(nil)
	_ tournament.RoundObserver = (*Meter)(nil)
)

// BeginEnvironment implements tournament.Recorder's environment hook; the
// meter keeps one ledger across environments.
func (m *Meter) BeginEnvironment(int, tournament.Environment) {}

// RecordGame charges the game's radio activity: the source transmits; each
// intermediate that received the packet pays a receive, plus a transmit if
// it forwarded.
func (m *Meter) RecordGame(src *game.Player, inters []*game.Player, firstDrop int) {
	m.types[src.ID] = src.Type
	m.spent[src.ID] += m.costs.Transmit
	delivered := firstDrop < 0
	received := len(inters)
	if !delivered {
		received = firstDrop + 1
	}
	for i := 0; i < received; i++ {
		p := inters[i]
		m.types[p.ID] = p.Type
		m.spent[p.ID] += m.costs.Receive
		if delivered || i < firstDrop {
			m.spent[p.ID] += m.costs.Transmit
		}
	}
}

// EndRound charges each participant's baseline draw for the round: normal
// nodes keep the interface idle-listening, selfish nodes doze.
func (m *Meter) EndRound(participants []*game.Player) {
	for _, p := range participants {
		m.types[p.ID] = p.Type
		if p.Type == game.Selfish {
			m.spent[p.ID] += m.costs.SleepPerRound
		} else {
			m.spent[p.ID] += m.costs.IdlePerRound
		}
	}
}

// Spent returns the energy spent by one node so far.
func (m *Meter) Spent(id network.NodeID) float64 { return m.spent[id] }

// Report summarizes energy spending for one node class.
type Report struct {
	Nodes       int
	TotalEnergy float64
	MeanEnergy  float64
}

// ByType summarizes spending split into normal and selfish nodes.
func (m *Meter) ByType() (normal, selfish Report) {
	for id, e := range m.spent {
		switch m.types[id] {
		case game.Selfish:
			selfish.Nodes++
			selfish.TotalEnergy += e
		default:
			normal.Nodes++
			normal.TotalEnergy += e
		}
	}
	if normal.Nodes > 0 {
		normal.MeanEnergy = normal.TotalEnergy / float64(normal.Nodes)
	}
	if selfish.Nodes > 0 {
		selfish.MeanEnergy = selfish.TotalEnergy / float64(selfish.Nodes)
	}
	return normal, selfish
}

// PerDelivered returns the mean energy spent per successfully delivered
// own packet for the given players (infinite if none were delivered,
// reported as 0 with ok=false).
func (m *Meter) PerDelivered(players []*game.Player) (costPerPacket float64, ok bool) {
	totalEnergy := 0.0
	delivered := 0
	for _, p := range players {
		totalEnergy += m.spent[p.ID]
		delivered += p.Acct.Delivered
	}
	if delivered == 0 {
		return 0, false
	}
	return totalEnergy / float64(delivered), true
}

// Reset clears the ledger.
func (m *Meter) Reset() {
	clear(m.spent)
	clear(m.types)
}
