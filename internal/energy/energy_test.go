package energy

import (
	"math"
	"testing"

	"adhocga/internal/game"
	"adhocga/internal/network"
	"adhocga/internal/rng"
	"adhocga/internal/strategy"
	"adhocga/internal/tournament"
)

func meter(t *testing.T) *Meter {
	t.Helper()
	m, err := NewMeter(DefaultCosts())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCostsValidate(t *testing.T) {
	if err := DefaultCosts().Validate(); err != nil {
		t.Fatalf("default costs invalid: %v", err)
	}
	bad := DefaultCosts()
	bad.Transmit = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative cost accepted")
	}
	bad = DefaultCosts()
	bad.SleepPerRound = bad.IdlePerRound + 1
	if err := bad.Validate(); err == nil {
		t.Error("sleep costlier than idle accepted")
	}
}

func TestRecordGameChargesChain(t *testing.T) {
	m := meter(t)
	c := DefaultCosts()
	src := game.NewNormal(0, strategy.AllForward())
	i1 := game.NewNormal(1, strategy.AllForward())
	i2 := game.NewNormal(2, strategy.AllForward())
	// Delivered through both intermediates.
	m.RecordGame(src, []*game.Player{i1, i2}, -1)
	if got := m.Spent(0); math.Abs(got-c.Transmit) > 1e-12 {
		t.Errorf("source spent %v, want %v", got, c.Transmit)
	}
	wantFwd := c.Receive + c.Transmit
	if got := m.Spent(1); math.Abs(got-wantFwd) > 1e-12 {
		t.Errorf("forwarder spent %v, want %v", got, wantFwd)
	}
	if got := m.Spent(2); math.Abs(got-wantFwd) > 1e-12 {
		t.Errorf("last forwarder spent %v, want %v", got, wantFwd)
	}
}

func TestRecordGameDropCheaperThanForward(t *testing.T) {
	m := meter(t)
	c := DefaultCosts()
	src := game.NewNormal(0, strategy.AllForward())
	dropper := game.NewSelfish(1)
	after := game.NewNormal(2, strategy.AllForward())
	m.RecordGame(src, []*game.Player{dropper, after}, 0)
	// The dropper only received; the node after it spent nothing.
	if got := m.Spent(1); math.Abs(got-c.Receive) > 1e-12 {
		t.Errorf("dropper spent %v, want %v", got, c.Receive)
	}
	if got := m.Spent(2); got != 0 {
		t.Errorf("unreached node spent %v", got)
	}
}

func TestEndRoundIdleVsSleep(t *testing.T) {
	m := meter(t)
	c := DefaultCosts()
	normal := game.NewNormal(0, strategy.AllForward())
	selfish := game.NewSelfish(1)
	for round := 0; round < 10; round++ {
		m.EndRound([]*game.Player{normal, selfish})
	}
	if got := m.Spent(0); math.Abs(got-10*c.IdlePerRound) > 1e-12 {
		t.Errorf("normal idle spend %v", got)
	}
	if got := m.Spent(1); math.Abs(got-10*c.SleepPerRound) > 1e-12 {
		t.Errorf("selfish sleep spend %v", got)
	}
	// The 98% saving of [4].
	if m.Spent(1) > m.Spent(0)*0.03 {
		t.Errorf("sleeping should cost ~2%% of idling: %v vs %v", m.Spent(1), m.Spent(0))
	}
}

func TestByTypeAndReset(t *testing.T) {
	m := meter(t)
	normal := game.NewNormal(0, strategy.AllForward())
	selfish := game.NewSelfish(1)
	m.EndRound([]*game.Player{normal, selfish})
	n, s := m.ByType()
	if n.Nodes != 1 || s.Nodes != 1 {
		t.Fatalf("ByType nodes %d/%d", n.Nodes, s.Nodes)
	}
	if n.MeanEnergy <= s.MeanEnergy {
		t.Error("idling normal should outspend sleeping selfish")
	}
	m.Reset()
	n, s = m.ByType()
	if n.Nodes != 0 || s.Nodes != 0 {
		t.Error("Reset left ledger entries")
	}
}

// Integration: a full tournament with CSN. Selfish nodes must spend far
// less energy, and in a trust-enforcing population their energy per
// delivered packet must be far worse — the paper's dilemma, quantified.
func TestTournamentEnergyTradeoff(t *testing.T) {
	r := rng.New(9)
	const nNormal, nCSN = 40, 10
	normals := make([]*game.Player, nNormal)
	for i := range normals {
		normals[i] = game.NewNormal(network.NodeID(i),
			strategy.ForwardAtOrAbove(strategy.Trust1, strategy.Forward))
	}
	csn := make([]*game.Player, nCSN)
	for i := range csn {
		csn[i] = game.NewSelfish(network.NodeID(nNormal + i))
	}
	all := append(append([]*game.Player{}, normals...), csn...)
	registry := tournament.BuildRegistry(normals, csn)
	m := meter(t)
	cfg := &tournament.Config{
		Rounds: 200,
		Mode:   network.ShorterPaths(),
		Game:   game.DefaultConfig(),
	}
	gen := network.NewGenerator(cfg.Mode)
	tournament.Play(all, registry, cfg, gen, r, m)

	nRep, sRep := m.ByType()
	if nRep.Nodes != nNormal || sRep.Nodes != nCSN {
		t.Fatalf("ledger saw %d/%d nodes", nRep.Nodes, sRep.Nodes)
	}
	if sRep.MeanEnergy >= nRep.MeanEnergy/2 {
		t.Errorf("selfishness should save most energy: selfish %v vs normal %v",
			sRep.MeanEnergy, nRep.MeanEnergy)
	}
	normCost, ok := m.PerDelivered(normals)
	if !ok {
		t.Fatal("no normal deliveries")
	}
	csnCost, ok := m.PerDelivered(csn)
	if ok && csnCost < normCost {
		// CSN rarely deliver once trust collapses; when they do, their
		// energy-per-delivery must not beat the cooperators'.
		t.Errorf("CSN energy per delivered packet %v beats normal %v", csnCost, normCost)
	}
}

func TestPerDeliveredNoDeliveries(t *testing.T) {
	m := meter(t)
	p := game.NewNormal(0, strategy.AllDiscard())
	if _, ok := m.PerDelivered([]*game.Player{p}); ok {
		t.Error("PerDelivered ok without deliveries")
	}
}
