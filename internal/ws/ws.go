// Package ws is a minimal, dependency-free RFC 6455 WebSocket
// implementation covering exactly what the adhocd event fan-out needs: the
// server-side HTTP upgrade (Upgrade), a test/tooling client (Dial), and
// framed messaging with automatic ping/pong and close handshakes
// (Conn.NextMessage / Conn.WriteMessage). It supports text and binary
// messages, fragmented data frames, interleaved control frames, and the
// masked-client/unmasked-server rule, and rejects protocol violations with
// close code 1002. It deliberately omits what the service does not use:
// extensions (permessage-deflate), subprotocol negotiation, and
// client-side TLS.
package ws

import (
	"bufio"
	"crypto/rand"
	"crypto/sha1"
	"encoding/base64"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"
)

// Opcode is a WebSocket frame opcode.
type Opcode byte

// The RFC 6455 opcodes.
const (
	OpContinuation Opcode = 0x0
	OpText         Opcode = 0x1
	OpBinary       Opcode = 0x2
	OpClose        Opcode = 0x8
	OpPing         Opcode = 0x9
	OpPong         Opcode = 0xA
)

// Close codes the package uses.
const (
	// CloseNormal is the normal-completion close code (1000).
	CloseNormal uint16 = 1000
	// CloseProtocolError rejects a peer's protocol violation (1002).
	CloseProtocolError uint16 = 1002
	// CloseTooBig rejects a message over the size cap (1009).
	CloseTooBig uint16 = 1009
	// CloseGoingAway signals the server tore the stream down before its
	// natural end — shutdown, typically (1011, "server terminating the
	// connection because it encountered an unexpected condition").
	CloseGoingAway uint16 = 1011
)

// MaxMessageSize caps one assembled message; larger frames close the
// connection with CloseTooBig. The event stream's JSON documents are a few
// hundred bytes, so 1 MiB is generous.
const MaxMessageSize = 1 << 20

// wsGUID is the key-hashing constant from RFC 6455 §1.3.
const wsGUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

// CloseError is the error NextMessage returns when the peer sends a close
// frame (after echoing the close, per the protocol).
type CloseError struct {
	Code   uint16
	Reason string
}

func (e *CloseError) Error() string {
	return fmt.Sprintf("ws: connection closed by peer: code %d %q", e.Code, e.Reason)
}

// ErrNotWebSocket is returned by Upgrade when the request is not a
// well-formed WebSocket handshake; the ResponseWriter is still usable for
// a plain HTTP error in that case.
var ErrNotWebSocket = errors.New("ws: not a websocket handshake")

// Conn is one WebSocket connection. Reads must come from a single
// goroutine; writes are internally serialized and may come from any
// goroutine (NextMessage replies to pings concurrently with an
// application writer).
type Conn struct {
	conn   net.Conn
	br     *bufio.Reader
	client bool // client side masks outgoing frames

	wmu       sync.Mutex
	bw        *bufio.Writer
	sentClose bool
}

// AcceptKey computes the Sec-WebSocket-Accept value for a handshake key.
func AcceptKey(key string) string {
	h := sha1.Sum([]byte(key + wsGUID))
	return base64.StdEncoding.EncodeToString(h[:])
}

// IsUpgrade reports whether the request asks for a WebSocket upgrade (so
// handlers can route without committing to the handshake).
func IsUpgrade(r *http.Request) bool {
	return headerContainsToken(r.Header, "Connection", "upgrade") &&
		strings.EqualFold(r.Header.Get("Upgrade"), "websocket")
}

func headerContainsToken(h http.Header, name, token string) bool {
	for _, v := range h.Values(name) {
		for _, part := range strings.Split(v, ",") {
			if strings.EqualFold(strings.TrimSpace(part), token) {
				return true
			}
		}
	}
	return false
}

// Upgrade performs the server side of the opening handshake and hijacks
// the connection. On a malformed handshake it returns an error wrapping
// ErrNotWebSocket without hijacking, so the caller can still answer with a
// plain HTTP status.
func Upgrade(w http.ResponseWriter, r *http.Request) (*Conn, error) {
	if r.Method != http.MethodGet {
		return nil, fmt.Errorf("%w: method %s", ErrNotWebSocket, r.Method)
	}
	if !IsUpgrade(r) {
		return nil, fmt.Errorf("%w: missing Upgrade/Connection headers", ErrNotWebSocket)
	}
	if v := r.Header.Get("Sec-WebSocket-Version"); v != "13" {
		return nil, fmt.Errorf("%w: unsupported version %q", ErrNotWebSocket, v)
	}
	key := r.Header.Get("Sec-WebSocket-Key")
	if key == "" {
		return nil, fmt.Errorf("%w: missing Sec-WebSocket-Key", ErrNotWebSocket)
	}
	hj, ok := w.(http.Hijacker)
	if !ok {
		return nil, fmt.Errorf("ws: response writer cannot hijack")
	}
	netConn, rw, err := hj.Hijack()
	if err != nil {
		return nil, fmt.Errorf("ws: hijack: %w", err)
	}
	resp := "HTTP/1.1 101 Switching Protocols\r\n" +
		"Upgrade: websocket\r\n" +
		"Connection: Upgrade\r\n" +
		"Sec-WebSocket-Accept: " + AcceptKey(key) + "\r\n\r\n"
	if _, err := rw.Writer.WriteString(resp); err != nil {
		netConn.Close()
		return nil, err
	}
	if err := rw.Writer.Flush(); err != nil {
		netConn.Close()
		return nil, err
	}
	return &Conn{conn: netConn, br: rw.Reader, bw: rw.Writer}, nil
}

// Dial opens a client connection to a ws:// URL (http:// is accepted and
// treated as ws://). Intended for tests and local tooling; no TLS.
func Dial(rawURL string) (*Conn, error) {
	u, err := url.Parse(rawURL)
	if err != nil {
		return nil, err
	}
	switch u.Scheme {
	case "ws", "http":
	default:
		return nil, fmt.Errorf("ws: unsupported scheme %q", u.Scheme)
	}
	host := u.Host
	if u.Port() == "" {
		host = net.JoinHostPort(u.Host, "80")
	}
	netConn, err := net.Dial("tcp", host)
	if err != nil {
		return nil, err
	}
	var keyBytes [16]byte
	if _, err := rand.Read(keyBytes[:]); err != nil {
		netConn.Close()
		return nil, err
	}
	key := base64.StdEncoding.EncodeToString(keyBytes[:])
	path := u.RequestURI()
	req := "GET " + path + " HTTP/1.1\r\n" +
		"Host: " + u.Host + "\r\n" +
		"Upgrade: websocket\r\n" +
		"Connection: Upgrade\r\n" +
		"Sec-WebSocket-Key: " + key + "\r\n" +
		"Sec-WebSocket-Version: 13\r\n\r\n"
	if _, err := netConn.Write([]byte(req)); err != nil {
		netConn.Close()
		return nil, err
	}
	br := bufio.NewReader(netConn)
	resp, err := http.ReadResponse(br, &http.Request{Method: http.MethodGet})
	if err != nil {
		netConn.Close()
		return nil, err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusSwitchingProtocols {
		netConn.Close()
		return nil, fmt.Errorf("ws: handshake rejected: %s", resp.Status)
	}
	if got := resp.Header.Get("Sec-WebSocket-Accept"); got != AcceptKey(key) {
		netConn.Close()
		return nil, fmt.Errorf("ws: bad Sec-WebSocket-Accept %q", got)
	}
	return &Conn{conn: netConn, br: br, bw: bufio.NewWriter(netConn), client: true}, nil
}

// WriteMessage writes one unfragmented message. Safe for concurrent use.
func (c *Conn) WriteMessage(op Opcode, payload []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return c.writeFrameLocked(op, payload)
}

// WriteText writes one text message.
func (c *Conn) WriteText(payload []byte) error { return c.WriteMessage(OpText, payload) }

// WritePing writes a ping control frame.
func (c *Conn) WritePing(payload []byte) error { return c.WriteMessage(OpPing, payload) }

// WriteClose sends a close frame with a code and reason (truncated to fit
// a control frame). Repeated calls are no-ops, so the application close
// and the protocol's close echo cannot double-send.
func (c *Conn) WriteClose(code uint16, reason string) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.sentClose {
		return nil
	}
	c.sentClose = true
	if len(reason) > 123 {
		reason = reason[:123]
	}
	payload := make([]byte, 2+len(reason))
	binary.BigEndian.PutUint16(payload, code)
	copy(payload[2:], reason)
	return c.writeFrameLocked(OpClose, payload)
}

func (c *Conn) writeFrameLocked(op Opcode, payload []byte) error {
	var header [14]byte
	header[0] = 0x80 | byte(op) // FIN set: no outgoing fragmentation
	n := 2
	switch l := len(payload); {
	case l < 126:
		header[1] = byte(l)
	case l < 1<<16:
		header[1] = 126
		binary.BigEndian.PutUint16(header[2:], uint16(l))
		n = 4
	default:
		header[1] = 127
		binary.BigEndian.PutUint64(header[2:], uint64(l))
		n = 10
	}
	if c.client {
		header[1] |= 0x80
		var mask [4]byte
		if _, err := rand.Read(mask[:]); err != nil {
			return err
		}
		copy(header[n:], mask[:])
		n += 4
		masked := make([]byte, len(payload))
		for i, b := range payload {
			masked[i] = b ^ mask[i%4]
		}
		payload = masked
	}
	if _, err := c.bw.Write(header[:n]); err != nil {
		return err
	}
	if _, err := c.bw.Write(payload); err != nil {
		return err
	}
	return c.bw.Flush()
}

// readFrame reads one raw frame, enforcing the masking rule for the
// connection's side and the control-frame limits.
func (c *Conn) readFrame() (fin bool, op Opcode, payload []byte, err error) {
	var h [2]byte
	if _, err = io.ReadFull(c.br, h[:]); err != nil {
		return false, 0, nil, err
	}
	if h[0]&0x70 != 0 {
		return false, 0, nil, c.protocolError("nonzero RSV bits")
	}
	fin = h[0]&0x80 != 0
	op = Opcode(h[0] & 0x0F)
	masked := h[1]&0x80 != 0
	if masked == c.client {
		// Servers must receive masked frames, clients unmasked ones.
		return false, 0, nil, c.protocolError("wrong masking")
	}
	length := uint64(h[1] & 0x7F)
	switch length {
	case 126:
		var ext [2]byte
		if _, err = io.ReadFull(c.br, ext[:]); err != nil {
			return false, 0, nil, err
		}
		length = uint64(binary.BigEndian.Uint16(ext[:]))
	case 127:
		var ext [8]byte
		if _, err = io.ReadFull(c.br, ext[:]); err != nil {
			return false, 0, nil, err
		}
		length = binary.BigEndian.Uint64(ext[:])
	}
	if op >= OpClose {
		if !fin || length > 125 {
			return false, 0, nil, c.protocolError("malformed control frame")
		}
	}
	if length > MaxMessageSize {
		c.WriteClose(CloseTooBig, "message too big")
		return false, 0, nil, fmt.Errorf("ws: frame of %d bytes exceeds cap", length)
	}
	var mask [4]byte
	if masked {
		if _, err = io.ReadFull(c.br, mask[:]); err != nil {
			return false, 0, nil, err
		}
	}
	payload = make([]byte, length)
	if _, err = io.ReadFull(c.br, payload); err != nil {
		return false, 0, nil, err
	}
	if masked {
		for i := range payload {
			payload[i] ^= mask[i%4]
		}
	}
	return fin, op, payload, nil
}

func (c *Conn) protocolError(msg string) error {
	c.WriteClose(CloseProtocolError, msg)
	return fmt.Errorf("ws: protocol error: %s", msg)
}

// NextMessage returns the next complete data message, transparently
// assembling fragments and handling interleaved control frames: pings are
// answered with pongs, pongs are discarded, and a close frame is echoed
// and surfaced as *CloseError.
func (c *Conn) NextMessage() (Opcode, []byte, error) {
	var (
		assembling bool
		msgOp      Opcode
		buf        []byte
	)
	for {
		fin, op, payload, err := c.readFrame()
		if err != nil {
			return 0, nil, err
		}
		switch op {
		case OpPing:
			if err := c.WriteMessage(OpPong, payload); err != nil {
				return 0, nil, err
			}
			continue
		case OpPong:
			continue
		case OpClose:
			code := CloseNormal
			reason := ""
			if len(payload) >= 2 {
				code = binary.BigEndian.Uint16(payload)
				reason = string(payload[2:])
			}
			c.WriteClose(code, "")
			return 0, nil, &CloseError{Code: code, Reason: reason}
		case OpContinuation:
			if !assembling {
				return 0, nil, c.protocolError("continuation without start")
			}
		case OpText, OpBinary:
			if assembling {
				return 0, nil, c.protocolError("data frame inside fragmented message")
			}
			assembling, msgOp = true, op
		default:
			return 0, nil, c.protocolError("reserved opcode")
		}
		if len(buf)+len(payload) > MaxMessageSize {
			c.WriteClose(CloseTooBig, "message too big")
			return 0, nil, fmt.Errorf("ws: assembled message exceeds cap")
		}
		buf = append(buf, payload...)
		if fin {
			return msgOp, buf, nil
		}
	}
}

// SetReadDeadline bounds the next read on the underlying connection.
func (c *Conn) SetReadDeadline(t time.Time) error { return c.conn.SetReadDeadline(t) }

// Close tears the TCP connection down. For a graceful shutdown send
// WriteClose first; Close never errors on an already-closed connection in
// a way callers need to act on.
func (c *Conn) Close() error { return c.conn.Close() }
