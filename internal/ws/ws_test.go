package ws

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// echoServer upgrades every request and echoes data messages back until
// the client closes.
func echoServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		conn, err := Upgrade(w, r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		defer conn.Close()
		for {
			op, payload, err := conn.NextMessage()
			if err != nil {
				return
			}
			if err := conn.WriteMessage(op, payload); err != nil {
				return
			}
		}
	}))
	t.Cleanup(srv.Close)
	return srv
}

func TestEchoRoundTrip(t *testing.T) {
	srv := echoServer(t)
	conn, err := Dial(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	payloads := []string{
		"hello",
		strings.Repeat("x", 200),     // 16-bit length header
		strings.Repeat("y", 1<<16+3), // 64-bit length header
	}
	for _, p := range payloads {
		if err := conn.WriteText([]byte(p)); err != nil {
			t.Fatal(err)
		}
		op, got, err := conn.NextMessage()
		if err != nil {
			t.Fatal(err)
		}
		if op != OpText || string(got) != p {
			t.Fatalf("echo mismatch: op %d, %d bytes", op, len(got))
		}
	}
	if err := conn.WriteMessage(OpBinary, []byte{0, 1, 2}); err != nil {
		t.Fatal(err)
	}
	if op, got, err := conn.NextMessage(); err != nil || op != OpBinary || len(got) != 3 {
		t.Fatalf("binary echo: op %d len %d err %v", op, len(got), err)
	}
}

func TestPingAnsweredTransparently(t *testing.T) {
	srv := echoServer(t)
	conn, err := Dial(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// The server's NextMessage must answer the ping with a pong and keep
	// waiting; our own NextMessage then discards the pong transparently,
	// so an echoed data message is still delivered in order.
	if err := conn.WritePing([]byte("beat")); err != nil {
		t.Fatal(err)
	}
	if err := conn.WriteText([]byte("after-ping")); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	_, got, err := conn.NextMessage()
	if err != nil || string(got) != "after-ping" {
		t.Fatalf("got %q err %v", got, err)
	}
}

func TestCloseHandshake(t *testing.T) {
	srv := echoServer(t)
	conn, err := Dial(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.WriteClose(CloseNormal, "bye"); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	_, _, err = conn.NextMessage()
	var ce *CloseError
	if !errors.As(err, &ce) || ce.Code != CloseNormal {
		t.Fatalf("want close echo, got %v", err)
	}
	// Idempotent: the echo path must not have double-sent a close.
	if err := conn.WriteClose(CloseNormal, "again"); err != nil {
		t.Fatalf("repeated close: %v", err)
	}
}

func TestUpgradeRejectsPlainHTTP(t *testing.T) {
	srv := echoServer(t)
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("plain GET got %d, want 400", resp.StatusCode)
	}
}

func TestUpgradeValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*http.Request)
	}{
		{"bad version", func(r *http.Request) { r.Header.Set("Sec-WebSocket-Version", "8") }},
		{"missing key", func(r *http.Request) { r.Header.Del("Sec-WebSocket-Key") }},
		{"missing upgrade", func(r *http.Request) { r.Header.Del("Upgrade") }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := httptest.NewRequest(http.MethodGet, "/", nil)
			r.Header.Set("Connection", "Upgrade")
			r.Header.Set("Upgrade", "websocket")
			r.Header.Set("Sec-WebSocket-Version", "13")
			r.Header.Set("Sec-WebSocket-Key", "dGhlIHNhbXBsZSBub25jZQ==")
			tc.mutate(r)
			if _, err := Upgrade(httptest.NewRecorder(), r); !errors.Is(err, ErrNotWebSocket) {
				t.Fatalf("want ErrNotWebSocket, got %v", err)
			}
		})
	}
}

func TestAcceptKeyRFCVector(t *testing.T) {
	// The worked example from RFC 6455 §1.3.
	if got := AcceptKey("dGhlIHNhbXBsZSBub25jZQ=="); got != "s3pPLMBiTxaQ9kYGzzhZRbK+xOo=" {
		t.Fatalf("AcceptKey = %q", got)
	}
}

func TestConcurrentWriters(t *testing.T) {
	srv := echoServer(t)
	conn, err := Dial(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	const writers, per = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := conn.WriteText([]byte("msg")); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	go func() { wg.Wait() }()
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	for i := 0; i < writers*per; i++ {
		if _, got, err := conn.NextMessage(); err != nil || string(got) != "msg" {
			t.Fatalf("echo %d: %q %v (interleaved frames?)", i, got, err)
		}
	}
	wg.Wait()
}
