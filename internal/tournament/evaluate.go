package tournament

import (
	"fmt"

	"adhocga/internal/game"
	"adhocga/internal/network"
	"adhocga/internal/rng"
)

// EvalConfig parameterizes one evaluation pass over a population: the
// Fig 3 scheme, in which every normal player plays L times in each of a
// series of tournament environments.
type EvalConfig struct {
	TournamentSize int // T: players per tournament (paper: 50)
	PlaysPerEnv    int // L: times each normal player plays per environment (paper leaves it open; default 1)
	Environments   []Environment
	Tournament     Config
}

// Validate checks the evaluation configuration against a population of the
// given size.
func (c *EvalConfig) Validate(populationSize int) error {
	if c.TournamentSize < 2 {
		return fmt.Errorf("tournament: size %d too small", c.TournamentSize)
	}
	if c.PlaysPerEnv < 1 {
		return fmt.Errorf("tournament: plays per environment must be ≥ 1, got %d", c.PlaysPerEnv)
	}
	if len(c.Environments) == 0 {
		return fmt.Errorf("tournament: no environments")
	}
	for _, env := range c.Environments {
		if env.CSN < 0 || env.CSN >= c.TournamentSize {
			return fmt.Errorf("tournament: environment %s has %d CSN with size %d", env.Name, env.CSN, c.TournamentSize)
		}
		if normals := c.TournamentSize - env.CSN; normals > populationSize {
			return fmt.Errorf("tournament: environment %s needs %d normal players, population has %d", env.Name, normals, populationSize)
		}
	}
	return c.Tournament.Validate()
}

// MaxCSN returns the largest CSN count over the environments.
func (c *EvalConfig) MaxCSN() int {
	max := 0
	for _, env := range c.Environments {
		if env.CSN > max {
			max = env.CSN
		}
	}
	return max
}

// EvalState holds the reusable working set of an evaluation pass: play
// counters, the played/unplayed partition, sampling scratch, the
// participant roster, and the tournament Scratch. A zero EvalState is
// ready to use; one warmed by a first pass makes every later pass with
// the same shapes allocation-free, which is why the engine keeps one
// EvalState for the lifetime of a run instead of calling the package-level
// functions. It must not be shared between goroutines.
type EvalState struct {
	plays        []int
	unplayed     []int
	played       []int
	pick         []int
	scratch      []int
	participants []*game.Player
	sc           Scratch
}

// Evaluate runs the Fig 3 evaluation scheme for one generation:
//
//  1. Clear reputation memory and payoff accounts of every player.
//  2. For each environment i: repeatedly draw Pi = T−Si players uniformly
//     among those that have played fewer than L times (topping up from
//     already-played players when fewer than Pi remain), add Si CSN, and
//     play a tournament — until every normal player has played L times.
//
// Reputation memory deliberately persists across environments within the
// pass; only the generation boundary clears it (§4.4 step 1).
//
// normals is the evolving population; csn is a pool of at least MaxCSN()
// selfish players; registry maps NodeID → player for everyone. provider
// supplies candidate routes (normally a network.Generator for the
// evaluation's path mode); rec may be nil.
func Evaluate(normals, csn []*game.Player, registry []*game.Player, cfg *EvalConfig, provider PathProvider, r *rng.Source, rec Recorder) error {
	var es EvalState
	return es.EvaluateWithAdversaries(normals, csn, nil, registry, cfg, provider, r, rec)
}

// EvaluateWithAdversaries is Evaluate with an additional cohort of
// Byzantine adversaries (internal/dynamics): unlike the per-environment
// CSN, the byz players take a seat in every tournament of every
// environment, shrinking the normal seats to T − Si − len(byz). With an
// empty cohort it is Evaluate, bit for bit.
func EvaluateWithAdversaries(normals, csn, byz []*game.Player, registry []*game.Player, cfg *EvalConfig, provider PathProvider, r *rng.Source, rec Recorder) error {
	var es EvalState
	return es.EvaluateWithAdversaries(normals, csn, byz, registry, cfg, provider, r, rec)
}

// Evaluate is the state-reusing form of the package-level Evaluate.
func (es *EvalState) Evaluate(normals, csn []*game.Player, registry []*game.Player, cfg *EvalConfig, provider PathProvider, r *rng.Source, rec Recorder) error {
	return es.EvaluateWithAdversaries(normals, csn, nil, registry, cfg, provider, r, rec)
}

// EvaluateWithAdversaries is the state-reusing form of the package-level
// EvaluateWithAdversaries: identical draws and results, but all working
// buffers come from (and return to) the EvalState, so a warm state runs
// the whole pass without heap allocation.
func (es *EvalState) EvaluateWithAdversaries(normals, csn, byz []*game.Player, registry []*game.Player, cfg *EvalConfig, provider PathProvider, r *rng.Source, rec Recorder) error {
	if err := cfg.Validate(len(normals)); err != nil {
		return err
	}
	if cfg.MaxCSN() > len(csn) {
		return fmt.Errorf("tournament: need %d CSN, pool has %d", cfg.MaxCSN(), len(csn))
	}
	if len(byz) > 0 {
		if seats := cfg.TournamentSize - cfg.MaxCSN() - len(byz); seats < 1 {
			return fmt.Errorf("tournament: %d adversaries plus %d CSN leave %d normal seats of %d",
				len(byz), cfg.MaxCSN(), seats, cfg.TournamentSize)
		}
	}

	// Step 1: clear all memories and accounts. Dense stores keep their
	// registry-sized capacity across generations, so a reset generation
	// replays over the same backing arrays with no reallocation.
	for _, p := range normals {
		p.Rep.EnsureSize(len(registry))
		p.ResetForGeneration()
	}
	for _, p := range csn {
		p.Rep.EnsureSize(len(registry))
		p.ResetForGeneration()
	}
	for _, p := range byz {
		p.Rep.EnsureSize(len(registry))
		p.ResetForGeneration()
	}

	if cap(es.plays) < len(normals) {
		es.plays = make([]int, len(normals))
		es.unplayed = make([]int, 0, len(normals))
		es.played = make([]int, 0, len(normals))
	}
	if cap(es.participants) < cfg.TournamentSize {
		es.participants = make([]*game.Player, 0, cfg.TournamentSize)
	}
	plays := es.plays[:len(normals)]
	unplayed, played := es.unplayed, es.played
	participants := es.participants
	pick, scratch := es.pick, es.scratch
	sc := &es.sc // shared per-tournament buffers for the whole pass

	for envIdx, env := range cfg.Environments {
		if rec != nil {
			rec.BeginEnvironment(envIdx, env)
		}
		pi := cfg.TournamentSize - env.CSN - len(byz)
		for i := range plays {
			plays[i] = 0
		}
		for {
			// Partition the population by whether it still owes plays.
			unplayed = unplayed[:0]
			played = played[:0]
			for i, n := range plays {
				if n < cfg.PlaysPerEnv {
					unplayed = append(unplayed, i)
				} else {
					played = append(played, i)
				}
			}
			if len(unplayed) == 0 {
				break
			}
			participants = participants[:0]
			if len(unplayed) >= pi {
				// Step 2: Pi uniform picks among the unplayed.
				if cap(pick) < pi {
					pick = make([]int, pi)
				}
				pick = pick[:pi]
				scratch = r.SampleWithoutReplacement(pick, unplayed, scratch)
				for _, idx := range pick {
					participants = append(participants, normals[idx])
					plays[idx]++
				}
			} else {
				// Fewer unplayed than seats: everyone unplayed joins, and
				// the remaining seats are filled by uniform picks among
				// the already-played (the paper leaves this unspecified;
				// extra plays add events, consistent with eq. 1).
				for _, idx := range unplayed {
					participants = append(participants, normals[idx])
					plays[idx]++
				}
				fill := pi - len(unplayed)
				if fill > len(played) {
					fill = len(played)
				}
				if fill > 0 {
					if cap(pick) < fill {
						pick = make([]int, fill)
					}
					pick = pick[:fill]
					scratch = r.SampleWithoutReplacement(pick, played, scratch)
					for _, idx := range pick {
						participants = append(participants, normals[idx])
						plays[idx]++
					}
				}
			}
			participants = append(participants, csn[:env.CSN]...)
			participants = append(participants, byz...)
			PlayWith(participants, registry, &cfg.Tournament, provider, r, rec, sc)
		}
	}
	// Return the (possibly grown) buffers to the state for the next pass.
	es.unplayed, es.played = unplayed, played
	es.pick, es.scratch = pick, scratch
	es.participants = participants[:0]
	return nil
}

// BuildRegistry creates a NodeID-indexed lookup slice covering the given
// players. IDs must be dense and unique; the function panics otherwise,
// since a malformed registry silently corrupts every game.
func BuildRegistry(groups ...[]*game.Player) []*game.Player {
	max := network.NodeID(-1)
	for _, g := range groups {
		for _, p := range g {
			if p.ID > max {
				max = p.ID
			}
		}
	}
	reg := make([]*game.Player, max+1)
	for _, g := range groups {
		for _, p := range g {
			if p.ID < 0 {
				panic(fmt.Sprintf("tournament: negative NodeID %d", p.ID))
			}
			if reg[p.ID] != nil {
				panic(fmt.Sprintf("tournament: duplicate NodeID %d", p.ID))
			}
			reg[p.ID] = p
		}
	}
	return reg
}
