package tournament

import (
	"testing"

	"adhocga/internal/game"
	"adhocga/internal/network"
	"adhocga/internal/rng"
	"adhocga/internal/strategy"
)

func testConfig(rounds int) *Config {
	return &Config{
		Rounds: rounds,
		Mode:   network.ShorterPaths(),
		Game:   game.DefaultConfig(),
	}
}

func makeNormals(n int, s strategy.Strategy) []*game.Player {
	ps := make([]*game.Player, n)
	for i := range ps {
		ps[i] = game.NewNormal(network.NodeID(i), s)
	}
	return ps
}

func TestPaperEnvironmentsMatchTable1(t *testing.T) {
	envs := PaperEnvironments()
	want := []struct {
		name string
		csn  int
	}{{"TE1", 0}, {"TE2", 10}, {"TE3", 25}, {"TE4", 30}}
	if len(envs) != len(want) {
		t.Fatalf("got %d environments", len(envs))
	}
	const size = 50
	for i, w := range want {
		if envs[i].Name != w.name || envs[i].CSN != w.csn {
			t.Errorf("env %d = %+v, want %+v", i, envs[i], w)
		}
		// Table 1's normal-node row is T - CSN.
		wantNormals := []int{50, 40, 25, 20}[i]
		if got := size - envs[i].CSN; got != wantNormals {
			t.Errorf("env %s normals = %d, want %d", envs[i].Name, got, wantNormals)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	if err := testConfig(10).Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := testConfig(0)
	if err := bad.Validate(); err == nil {
		t.Error("zero rounds accepted")
	}
	bad = testConfig(5)
	bad.Mode = network.PathMode{}
	if err := bad.Validate(); err == nil {
		t.Error("missing path mode accepted")
	}
}

func TestPlayEachPlayerSourcesOncePerRound(t *testing.T) {
	const rounds = 7
	players := makeNormals(20, strategy.AllForward())
	registry := BuildRegistry(players)
	cfg := testConfig(rounds)
	gen := network.NewGenerator(cfg.Mode)
	Play(players, registry, cfg, gen, rng.New(1), nil)
	for _, p := range players {
		if p.Acct.Sent != rounds {
			t.Errorf("player %d sourced %d packets, want %d", p.ID, p.Acct.Sent, rounds)
		}
	}
}

func TestPlayAllForwardDeliversEverything(t *testing.T) {
	players := makeNormals(20, strategy.AllForward())
	registry := BuildRegistry(players)
	cfg := testConfig(5)
	gen := network.NewGenerator(cfg.Mode)
	Play(players, registry, cfg, gen, rng.New(2), nil)
	for _, p := range players {
		if p.Acct.Delivered != p.Acct.Sent {
			t.Errorf("player %d delivered %d of %d in an all-forward network",
				p.ID, p.Acct.Delivered, p.Acct.Sent)
		}
		if p.Acct.Discards != 0 {
			t.Errorf("player %d discarded %d packets", p.ID, p.Acct.Discards)
		}
	}
}

func TestPlayAllSelfishDeliversNothing(t *testing.T) {
	players := make([]*game.Player, 10)
	for i := range players {
		players[i] = game.NewSelfish(network.NodeID(i))
	}
	registry := BuildRegistry(players)
	cfg := testConfig(3)
	gen := network.NewGenerator(cfg.Mode)
	Play(players, registry, cfg, gen, rng.New(3), nil)
	for _, p := range players {
		if p.Acct.Delivered != 0 {
			t.Errorf("player %d delivered %d packets in an all-selfish network", p.ID, p.Acct.Delivered)
		}
		if p.Acct.Forwards != 0 {
			t.Errorf("selfish player %d forwarded", p.ID)
		}
	}
}

func TestPlayDeterministicForSeed(t *testing.T) {
	run := func() []game.Account {
		players := makeNormals(15, strategy.MustParse("010 101 101 111 1"))
		registry := BuildRegistry(players)
		cfg := testConfig(10)
		gen := network.NewGenerator(cfg.Mode)
		Play(players, registry, cfg, gen, rng.New(42), nil)
		accts := make([]game.Account, len(players))
		for i, p := range players {
			accts[i] = p.Acct
		}
		return accts
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("player %d accounts differ across identical runs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestPlayMixedNetworkPunishesSelfish(t *testing.T) {
	// 40 trust-driven normals + 10 CSN, long enough for reputations to
	// form: CSN delivery rate should collapse well below normal delivery.
	normals := makeNormals(40, strategy.ForwardAtOrAbove(strategy.Trust1, strategy.Forward))
	csn := make([]*game.Player, 10)
	for i := range csn {
		csn[i] = game.NewSelfish(network.NodeID(40 + i))
	}
	all := append(append([]*game.Player{}, normals...), csn...)
	registry := BuildRegistry(normals, csn)
	cfg := testConfig(150)
	gen := network.NewGenerator(cfg.Mode)
	Play(all, registry, cfg, gen, rng.New(7), nil)

	normalSent, normalDelivered := 0, 0
	for _, p := range normals {
		normalSent += p.Acct.Sent
		normalDelivered += p.Acct.Delivered
	}
	csnSent, csnDelivered := 0, 0
	for _, p := range csn {
		csnSent += p.Acct.Sent
		csnDelivered += p.Acct.Delivered
	}
	normalRate := float64(normalDelivered) / float64(normalSent)
	csnRate := float64(csnDelivered) / float64(csnSent)
	if csnRate >= normalRate {
		t.Errorf("CSN delivery rate %.3f not below normal rate %.3f", csnRate, normalRate)
	}
	if csnRate > 0.35 {
		t.Errorf("CSN delivery rate %.3f too high; reputation system not biting", csnRate)
	}
}

// emptyProvider simulates a fully partitioned network: no routes, ever.
type emptyProvider struct{}

func (emptyProvider) Candidates(*rng.Source, network.NodeID, []network.NodeID) []network.Path {
	return nil
}

func TestPlayToleratesPartitionedProvider(t *testing.T) {
	players := makeNormals(10, strategy.AllForward())
	registry := BuildRegistry(players)
	cfg := testConfig(5)
	Play(players, registry, cfg, emptyProvider{}, rng.New(77), nil)
	for _, p := range players {
		if p.Acct.Events != 0 {
			t.Errorf("player %d accumulated %d events with no routes", p.ID, p.Acct.Events)
		}
	}
}

func TestGossipSpreadsPositiveReputation(t *testing.T) {
	// With gossip, knowledge of well-behaved nodes spreads beyond direct
	// observation: after a short tournament, players should know more
	// peers than without gossip.
	run := func(interval int) float64 {
		players := makeNormals(30, strategy.AllForward())
		registry := BuildRegistry(players)
		cfg := testConfig(10)
		cfg.GossipInterval = interval
		cfg.GossipWeight = 0.25
		cfg.GossipMinRate = 0.5
		gen := network.NewGenerator(cfg.Mode)
		Play(players, registry, cfg, gen, rng.New(31), nil)
		known := 0
		for _, p := range players {
			known += p.Rep.KnownCount()
		}
		return float64(known) / float64(len(players))
	}
	without := run(0)
	with := run(2)
	if with <= without {
		t.Errorf("gossip should widen knowledge: %v known with vs %v without", with, without)
	}
}

func TestGossipExcludesSelfishNodes(t *testing.T) {
	// CSN neither share nor receive second-hand reputation; normals
	// exchange positive reports among themselves.
	teacher := game.NewNormal(0, strategy.AllForward())
	for i := 0; i < 10; i++ {
		teacher.Rep.Observe(5, true)
	}
	student := game.NewNormal(1, strategy.AllForward())
	csn := game.NewSelfish(2)
	csn.Rep.Observe(5, true) // CSN knowledge must never be shared

	cfg := testConfig(1)
	cfg.GossipInterval = 1
	cfg.GossipWeight = 0.5
	cfg.GossipMinRate = 0.5
	participants := []*game.Player{teacher, student, csn}
	var sc Scratch
	for i := 0; i < 50; i++ { // enough exchanges for the pair to meet
		gossip(participants, cfg, rng.New(uint64(i)), &sc)
	}
	if csn.Rep.KnownCount() != 1 || csn.Rep.Requests(5) != 1 {
		t.Errorf("CSN store changed by gossip: %d entries, %d requests",
			csn.Rep.KnownCount(), csn.Rep.Requests(5))
	}
	if !student.Rep.Known(5) {
		t.Error("student never received the positive report")
	}
}

func TestBuildRegistry(t *testing.T) {
	a := makeNormals(3, strategy.AllForward())
	b := []*game.Player{game.NewSelfish(3), game.NewSelfish(4)}
	reg := BuildRegistry(a, b)
	if len(reg) != 5 {
		t.Fatalf("registry length %d", len(reg))
	}
	for id := network.NodeID(0); id < 5; id++ {
		if reg[id] == nil || reg[id].ID != id {
			t.Errorf("registry[%d] wrong", id)
		}
	}
}

func TestBuildRegistryPanicsOnDuplicate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate ID accepted")
		}
	}()
	BuildRegistry(makeNormals(2, strategy.AllForward()), makeNormals(2, strategy.AllForward()))
}

func BenchmarkTournament50Players(b *testing.B) {
	players := makeNormals(50, strategy.MustParse("010 101 101 111 1"))
	registry := BuildRegistry(players)
	cfg := testConfig(1)
	gen := network.NewGenerator(cfg.Mode)
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Play(players, registry, cfg, gen, r, nil)
	}
}
