package tournament

import (
	"testing"

	"adhocga/internal/game"
	"adhocga/internal/network"
	"adhocga/internal/rng"
	"adhocga/internal/strategy"
)

// benchPopulation builds the paper-sized population: 100 normal players
// with random strategies plus a 30-CSN pool, all registered.
func benchPopulation(seed uint64) (normals, csn, registry []*game.Player) {
	r := rng.New(seed)
	normals = make([]*game.Player, 100)
	for i := range normals {
		normals[i] = game.NewNormal(network.NodeID(i), strategy.Random(r))
	}
	csn = make([]*game.Player, 30)
	for i := range csn {
		csn[i] = game.NewSelfish(network.NodeID(len(normals) + i))
	}
	return normals, csn, BuildRegistry(normals, csn)
}

func benchEvalConfig(rounds int) *EvalConfig {
	return &EvalConfig{
		TournamentSize: 50,
		PlaysPerEnv:    2,
		Environments:   PaperEnvironments(),
		Tournament: Config{
			Rounds: rounds,
			Mode:   network.ShorterPaths(),
			Game:   game.DefaultConfig(),
		},
	}
}

// gameCounter counts games so the benchmarks can report ns/game.
type gameCounter struct{ games int }

func (c *gameCounter) RecordGame(src *game.Player, inters []*game.Player, firstDrop int) {
	c.games++
}
func (c *gameCounter) BeginEnvironment(index int, env Environment) {}

// TestTournamentRoundZeroAllocs pins the steady-state guarantee one level
// up from game.Play: a full tournament round — route generation, path
// rating, decisions, payoffs, reputation updates — performs zero heap
// allocations once the scratch buffers and dense stores are warm.
func TestTournamentRoundZeroAllocs(t *testing.T) {
	normals, csn, registry := benchPopulation(3)
	cfg := &Config{
		Rounds: 1,
		Mode:   network.ShorterPaths(),
		Game:   game.DefaultConfig(),
	}
	participants := append(append([]*game.Player{}, normals[:40]...), csn[:10]...)
	gen := network.NewGenerator(cfg.Mode)
	r := rng.New(4)
	var sc Scratch
	// Warm: grow scratch, generator buffers, and every reputation record.
	for i := 0; i < 20; i++ {
		PlayWith(participants, registry, cfg, gen, r, nil, &sc)
	}
	allocs := testing.AllocsPerRun(50, func() {
		PlayWith(participants, registry, cfg, gen, r, nil, &sc)
	})
	if allocs != 0 {
		t.Errorf("steady-state tournament round allocates %v times, want 0", allocs)
	}
}

// BenchmarkEvaluate measures one full Fig 3 evaluation pass (TE1–TE4,
// tournament size 50, L=2) at 30 rounds per tournament — the hot loop of
// every generation — through a warm EvalState, exactly as the engine runs
// it. The dense-store acceptance bar is ≥2× ns/game over the map-based
// seed with ~0 allocs/game.
func BenchmarkEvaluate(b *testing.B) {
	normals, csn, registry := benchPopulation(1)
	cfg := benchEvalConfig(30)
	gen := network.NewGenerator(cfg.Tournament.Mode)

	// Count games once so ns/game can be derived from the timed loop; this
	// pass also warms the EvalState.
	var es EvalState
	var counter gameCounter
	r := rng.New(2)
	if err := es.Evaluate(normals, csn, registry, cfg, gen, r, &counter); err != nil {
		b.Fatal(err)
	}

	b.ReportAllocs()
	b.ResetTimer()
	r = rng.New(2)
	for i := 0; i < b.N; i++ {
		if err := es.Evaluate(normals, csn, registry, cfg, gen, r, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if counter.games > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(counter.games), "ns/game")
	}
}

// TestEvaluateZeroAllocs pins the batched-evaluation guarantee: a full
// Fig 3 evaluation pass through a warm EvalState — route generation, path
// rating, decisions, payoffs, reputation, play bookkeeping — performs zero
// heap allocations.
func TestEvaluateZeroAllocs(t *testing.T) {
	normals, csn, registry := benchPopulation(7)
	cfg := benchEvalConfig(5)
	gen := network.NewGenerator(cfg.Tournament.Mode)
	var es EvalState
	r := rng.New(8)
	// Warm: grow the EvalState, generator scratch, and every dense store.
	for i := 0; i < 3; i++ {
		if err := es.Evaluate(normals, csn, registry, cfg, gen, r, nil); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(10, func() {
		if err := es.Evaluate(normals, csn, registry, cfg, gen, r, nil); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("warm evaluation pass allocates %v times, want 0", allocs)
	}
}
