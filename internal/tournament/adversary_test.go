package tournament

import (
	"testing"

	"adhocga/internal/game"
	"adhocga/internal/network"
	"adhocga/internal/rng"
	"adhocga/internal/strategy"
)

// The adversary seams of the dynamics extension, tested at the tournament
// level: Byzantine seats in the evaluation scheme, the RoundDriver
// perturbation hook, and gossip lying.

func TestEvaluateWithAdversariesSeats(t *testing.T) {
	normals := makeNormals(10, strategy.AllForward())
	csn := []*game.Player{game.NewSelfish(10), game.NewSelfish(11)}
	byz := []*game.Player{
		game.NewByzantine(12, game.AdvFreeRider, strategy.AllDiscard()),
		game.NewByzantine(13, game.AdvLiar, strategy.AllForward()),
	}
	registry := BuildRegistry(normals, csn, byz)
	cfg := &EvalConfig{
		TournamentSize: 6,
		PlaysPerEnv:    1,
		Environments:   []Environment{{Name: "TE", CSN: 2}},
		Tournament:     *testConfig(5),
	}
	rec := &participantRecorder{}
	if err := EvaluateWithAdversaries(normals, csn, byz, registry, cfg, network.NewGenerator(cfg.Tournament.Mode), rng.New(3), rec); err != nil {
		t.Fatal(err)
	}
	// Every byz player must have played: they hold a seat in every
	// tournament, so their accounts record events.
	for _, p := range byz {
		if p.Acct.Events == 0 {
			t.Errorf("adversary %d never played", p.ID)
		}
	}
}

// participantRecorder implements game.Recorder and Recorder minimally.
type participantRecorder struct{ games int }

func (r *participantRecorder) RecordGame(src *game.Player, inters []*game.Player, firstDrop int) {
	r.games++
}
func (r *participantRecorder) BeginEnvironment(index int, env Environment) {}

func TestEvaluateWithAdversariesRejectsOvercrowding(t *testing.T) {
	normals := makeNormals(10, strategy.AllForward())
	csn := []*game.Player{game.NewSelfish(10), game.NewSelfish(11)}
	var byz []*game.Player
	for i := 0; i < 4; i++ { // 4 byz + 2 CSN fill all 6 seats: no normals
		byz = append(byz, game.NewByzantine(network.NodeID(12+i), game.AdvFreeRider, strategy.AllDiscard()))
	}
	registry := BuildRegistry(normals, csn, byz)
	cfg := &EvalConfig{
		TournamentSize: 6,
		PlaysPerEnv:    1,
		Environments:   []Environment{{Name: "TE", CSN: 2}},
		Tournament:     *testConfig(5),
	}
	err := EvaluateWithAdversaries(normals, csn, byz, registry, cfg, network.NewGenerator(cfg.Tournament.Mode), rng.New(3), nil)
	if err == nil {
		t.Fatal("overcrowded tournament accepted")
	}
}

// TestEvaluateWithEmptyAdversariesBitIdentical pins that an empty cohort
// replays Evaluate exactly — same RNG consumption, same accounts.
func TestEvaluateWithEmptyAdversariesBitIdentical(t *testing.T) {
	build := func() ([]*game.Player, []*game.Player, []*game.Player, *EvalConfig) {
		r := rng.New(77)
		normals := make([]*game.Player, 8)
		for i := range normals {
			normals[i] = game.NewNormal(network.NodeID(i), strategy.Random(r))
		}
		csn := []*game.Player{game.NewSelfish(8)}
		registry := BuildRegistry(normals, csn)
		cfg := &EvalConfig{
			TournamentSize: 5,
			PlaysPerEnv:    2,
			Environments:   []Environment{{Name: "TE", CSN: 1}},
			Tournament:     *testConfig(10),
		}
		return normals, csn, registry, cfg
	}
	n1, c1, r1, cfg1 := build()
	if err := Evaluate(n1, c1, r1, cfg1, network.NewGenerator(cfg1.Tournament.Mode), rng.New(5), nil); err != nil {
		t.Fatal(err)
	}
	n2, c2, r2, cfg2 := build()
	if err := EvaluateWithAdversaries(n2, c2, nil, r2, cfg2, network.NewGenerator(cfg2.Tournament.Mode), rng.New(5), nil); err != nil {
		t.Fatal(err)
	}
	for i := range n1 {
		if n1[i].Acct != n2[i].Acct {
			t.Errorf("player %d account diverged: %+v vs %+v", i, n1[i].Acct, n2[i].Acct)
		}
	}
}

// flipDriver records BeginRound calls and flips one player's strategy.
type flipDriver struct {
	calls int
	strat [2]strategy.Strategy // [off, on]
	on    int                  // rounds per phase
}

func (d *flipDriver) BeginRound(round int, participants []*game.Player) {
	d.calls++
	st := d.strat[0]
	if round%(2*d.on) < d.on {
		st = d.strat[1]
	}
	for _, p := range participants {
		if p.Adv == game.AdvOnOff {
			p.Strategy = st
		}
	}
}

func TestRoundDriverIsCalledEveryRound(t *testing.T) {
	normals := makeNormals(4, strategy.AllForward())
	onoff := game.NewByzantine(4, game.AdvOnOff, strategy.AllForward())
	participants := append(append([]*game.Player{}, normals...), onoff)
	registry := BuildRegistry(normals, []*game.Player{onoff})
	cfg := testConfig(12)
	driver := &flipDriver{strat: [2]strategy.Strategy{strategy.AllDiscard(), strategy.AllForward()}, on: 3}
	cfg.RoundDriver = driver
	Play(participants, registry, cfg, network.NewGenerator(cfg.Mode), rng.New(9), nil)
	if driver.calls != cfg.Rounds {
		t.Errorf("driver called %d times over %d rounds", driver.calls, cfg.Rounds)
	}
	// The on-off player both forwarded and discarded across phases.
	if onoff.Acct.Forwards == 0 || onoff.Acct.Discards == 0 {
		t.Errorf("on-off player never switched phases: %d forwards, %d discards",
			onoff.Acct.Forwards, onoff.Acct.Discards)
	}
}

// TestGossipLiarLaundersBadReputation pins the lying mechanics end to end:
// with an honest peer pool a defector's reputation stays low; a liar in
// the pool injects inverted reports that pass the positive-only filter and
// inflate it.
func TestGossipLiarLaundersBadReputation(t *testing.T) {
	const defectorID = 99
	build := func(withLiar bool) *game.Player {
		receiver := game.NewNormal(0, strategy.AllForward())
		honest := game.NewNormal(1, strategy.AllForward())
		// The honest peer has watched the defector drop everything.
		for i := 0; i < 20; i++ {
			honest.Rep.Observe(defectorID, false)
		}
		liar := game.NewByzantine(2, game.AdvLiar, strategy.AllForward())
		for i := 0; i < 20; i++ {
			liar.Rep.Observe(defectorID, false)
		}
		participants := []*game.Player{receiver, honest}
		if withLiar {
			participants = append(participants, liar)
		}
		cfg := testConfig(1)
		cfg.GossipInterval = 1
		cfg.GossipWeight = 0.5
		cfg.GossipMinRate = 0.5
		var sc Scratch
		// Drive gossip many times so the receiver eventually samples
		// every peer in the pool.
		r := rng.New(4)
		for i := 0; i < 50; i++ {
			gossip(participants, cfg, r, &sc)
		}
		return receiver
	}
	// Honest gossip filters the negative report entirely (CORE's
	// positive-only exchange), so the receiver learns nothing about the
	// defector — and certainly nothing good.
	honestOnly := build(false)
	if rate, known := honestOnly.Rep.ForwardingRate(defectorID); known && rate > 0.01 {
		t.Fatalf("honest gossip gave the defector rate %v, want unknown or ~0", rate)
	}
	withLiar := build(true)
	rate, known := withLiar.Rep.ForwardingRate(defectorID)
	if !known || rate <= 0.4 {
		t.Errorf("liar failed to launder the defector: rate %v (known %v)", rate, known)
	}
}

// TestGossipWithoutLiarsUnchanged pins that the liar-aware pool replays
// the pre-adversary draw sequence when no liars participate: same peers,
// same merges, same RNG state afterward.
func TestGossipWithoutLiarsUnchanged(t *testing.T) {
	run := func() (*rng.Source, []*game.Player) {
		players := makeNormals(6, strategy.AllForward())
		for i, p := range players {
			for j := range players {
				if i != j {
					p.Rep.Observe(network.NodeID(j), true)
				}
			}
		}
		cfg := testConfig(1)
		cfg.GossipInterval = 1
		cfg.GossipWeight = 0.25
		cfg.GossipMinRate = 0.5
		r := rng.New(21)
		var sc Scratch
		for i := 0; i < 10; i++ {
			gossip(players, cfg, r, &sc)
		}
		return r, players
	}
	r1, p1 := run()
	r2, p2 := run()
	if r1.Uint64() != r2.Uint64() {
		t.Error("RNG streams diverged")
	}
	for i := range p1 {
		for j := range p1 {
			if p1[i].Rep.Requests(network.NodeID(j)) != p2[i].Rep.Requests(network.NodeID(j)) {
				t.Errorf("player %d's view of %d diverged", i, j)
			}
		}
	}
}
