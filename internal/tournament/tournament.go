// Package tournament implements the strategy evaluation machinery of §4.4:
// single tournaments (R rounds in which every participant sources one
// packet per round) and the multi-environment evaluation scheme of Fig 3
// that exposes each generation's strategies to a series of network
// conditions with different numbers of constantly selfish nodes.
package tournament

import (
	"fmt"

	"adhocga/internal/game"
	"adhocga/internal/network"
	"adhocga/internal/rng"
)

// Environment is one tournament environment (Tab 1): a name and the number
// of CSN among the participants. The number of normal players is
// TournamentSize − CSN.
type Environment struct {
	Name string
	CSN  int
}

// PaperEnvironments returns TE1–TE4 as defined in Table 1 for the paper's
// tournament size of 50: 0, 10, 25 and 30 CSN.
func PaperEnvironments() []Environment {
	return []Environment{
		{Name: "TE1", CSN: 0},
		{Name: "TE2", CSN: 10},
		{Name: "TE3", CSN: 25},
		{Name: "TE4", CSN: 30},
	}
}

// PathChoice selects how a source chooses among its candidate routes.
type PathChoice uint8

const (
	// BestReputation picks the route with the highest rating (§3.1); the
	// paper's behavior and the zero value.
	BestReputation PathChoice = iota
	// RandomPath picks uniformly among candidates, ignoring reputation.
	// Used by the ablation benchmarks to quantify how much of the
	// cooperation enforcement comes from route avoidance.
	RandomPath
)

// Config parameterizes one tournament.
type Config struct {
	Rounds     int              // R: rounds per tournament (paper: 300)
	Mode       network.PathMode // SP or LP path mode (§6.1)
	PathChoice PathChoice       // route selection rule (default BestReputation)
	Game       game.Config

	// Gossip enables CORE-style second-hand reputation exchange (an
	// extension beyond the paper's first-hand-only mechanism; see
	// trust.MergePositive): every GossipInterval rounds each normal
	// player imports one random peer's positive observations at
	// GossipWeight credibility. Byzantine gossip liars join the peer pool
	// and inject inverted observations (trust.MergeInverted); only normal
	// players receive. GossipInterval 0 disables it.
	GossipInterval int
	GossipWeight   float64
	GossipMinRate  float64

	// RoundDriver, when non-nil, is notified before every tournament
	// round with the full participant set — the perturbation hook the
	// dynamics layer uses to advance round-scheduled adversaries (on-off
	// attackers swap strategies here). It must not consume the
	// tournament's RNG stream: a nil driver and a driver that only swaps
	// strategies replay the identical random sequence.
	RoundDriver RoundDriver
}

// RoundDriver is the perturbation hook called at the start of every
// tournament round; internal/dynamics implements it to schedule
// round-granular adversarial behavior.
type RoundDriver interface {
	BeginRound(round int, participants []*game.Player)
}

// Validate checks the tournament configuration.
func (c *Config) Validate() error {
	if c.Rounds <= 0 {
		return fmt.Errorf("tournament: rounds must be positive, got %d", c.Rounds)
	}
	if c.Mode.Name == "" {
		return fmt.Errorf("tournament: path mode not set")
	}
	return c.Game.Validate()
}

// Recorder extends the per-game recorder with environment boundaries so
// metrics can be kept per tournament environment.
type Recorder interface {
	game.Recorder
	// BeginEnvironment is called before the first tournament of each
	// environment in an evaluation pass.
	BeginEnvironment(index int, env Environment)
}

// PathProvider supplies the candidate routes a source sees when it plays
// its own game. network.Generator implements it with the paper's abstract
// sampling model (Tables 2–3); mobility.RouteProvider implements it with
// routes discovered on a geometric moving topology.
//
// An empty return means the source currently has no route to anyone (e.g.
// a partitioned geometric network); the tournament then skips that
// source's game for the round. All returned candidates must share the
// same source and destination. Implementations must treat the
// participants slice as read-only.
type PathProvider interface {
	Candidates(r *rng.Source, src network.NodeID, participants []network.NodeID) []network.Path
}

// Scratch holds the reusable per-tournament buffers of Play. One Scratch
// serves any number of sequential PlayWith calls (the evaluation scheme
// keeps a single Scratch across all tournaments of a generation); it must
// not be shared between goroutines.
type Scratch struct {
	ids     []network.NodeID
	inters  []*game.Player
	normals []*game.Player
	ratings []float64
}

// Play runs one tournament over the given participants: cfg.Rounds rounds,
// each participant sourcing exactly one packet per round (§4.4 tournament
// scheme, steps 1–8). registry maps NodeID → player and must cover every
// participant; paths supplies candidate routes; rec may be nil.
func Play(participants []*game.Player, registry []*game.Player, cfg *Config, provider PathProvider, r *rng.Source, rec game.Recorder) {
	var sc Scratch
	PlayWith(participants, registry, cfg, provider, r, rec, &sc)
}

// PlayWith is Play with caller-owned scratch buffers, the allocation-free
// steady-state form: with warm scratch and participant stores pre-sized to
// the registry, a full tournament performs zero heap allocations.
func PlayWith(participants []*game.Player, registry []*game.Player, cfg *Config, provider PathProvider, r *rng.Source, rec game.Recorder, sc *Scratch) {
	ids := sc.ids[:0]
	for _, p := range participants {
		ids = append(ids, p.ID)
		// Dense stores sized to the registry: every peer lookup from here
		// on is a bounds-checked index and Observe never grows. Installing
		// the trust table here (a no-op when unchanged) lets every Decide
		// of the tournament skip its per-decision table compare.
		p.Rep.EnsureSize(len(registry))
		p.Rep.SetTable(cfg.Game.TrustTable)
	}
	cfg.Game.MarkTablesSynced()
	sc.ids = ids
	ro, _ := rec.(RoundObserver)
	for round := 0; round < cfg.Rounds; round++ {
		if cfg.RoundDriver != nil {
			cfg.RoundDriver.BeginRound(round, participants)
		}
		for _, src := range participants {
			// Step 2: random destination and intermediates (provider);
			// Step 3: rate each candidate and pick the best reputation
			// (or a uniform pick under the RandomPath ablation).
			paths := provider.Candidates(r, src.ID, ids)
			if len(paths) == 0 {
				continue // no route to anyone this round
			}
			best := 0
			if cfg.PathChoice == RandomPath {
				best = r.Intn(len(paths))
			} else if len(paths) > 1 {
				// A single candidate needs no rating (selection would
				// return 0 without consuming randomness), which skips the
				// rate refresh for the majority of games — Table 3 yields
				// one route 50–80% of the time. Multi-candidate games
				// rate in one fused walk that refreshes only the entries
				// the ratings read (RatePaths) instead of flushing the
				// whole store.
				sc.ratings = src.Rep.RatePaths(paths, sc.ratings)
				best = network.SelectBestRated(r, sc.ratings)
			}
			path := paths[best]
			inters := sc.inters[:0]
			for _, id := range path.Intermediates {
				inters = append(inters, registry[id])
			}
			sc.inters = inters
			// Steps 4–6: play the game; payoffs and reputation updates
			// happen inside game.PlayIDs (the path's Intermediates double
			// as the observation ID list).
			game.PlayIDs(src, inters, path.Intermediates, &cfg.Game, rec)
		}
		if ro != nil {
			ro.EndRound(participants)
		}
		if cfg.GossipInterval > 0 && (round+1)%cfg.GossipInterval == 0 {
			gossip(participants, cfg, r, sc)
		}
	}
}

// RoundObserver is an optional extension of game.Recorder: recorders that
// implement it (e.g. the energy meter) are notified at the end of every
// tournament round with the full participant set.
type RoundObserver interface {
	EndRound(participants []*game.Player)
}

// gossip performs one round of second-hand reputation exchange: each
// normal player merges the observations of one uniformly chosen other
// peer. The peer pool is the normal players plus any Byzantine gossip
// liars among the participants — liars share (inverted) data but never
// receive, and CSN neither share nor receive. With no liars present the
// pool is exactly the normal players, so the random draws replay the
// pre-adversary sequence bit for bit.
func gossip(participants []*game.Player, cfg *Config, r *rng.Source, sc *Scratch) {
	pool := sc.normals[:0]
	for _, p := range participants {
		if p.Type == game.Normal {
			pool = append(pool, p)
		}
	}
	receivers := len(pool)
	for _, p := range participants {
		if p.Adv == game.AdvLiar {
			pool = append(pool, p)
		}
	}
	sc.normals = pool
	if receivers == 0 || len(pool) < 2 {
		return
	}
	for _, p := range pool[:receivers] {
		peer := pool[r.Intn(len(pool))]
		for peer == p {
			peer = pool[r.Intn(len(pool))]
		}
		if peer.Adv == game.AdvLiar {
			p.Rep.MergeInverted(p.ID, peer.Rep, cfg.GossipMinRate, cfg.GossipWeight)
		} else {
			p.Rep.MergePositive(p.ID, peer.Rep, cfg.GossipMinRate, cfg.GossipWeight)
		}
	}
}
