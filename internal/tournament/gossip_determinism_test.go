package tournament

import (
	"fmt"
	"strings"
	"testing"

	"adhocga/internal/game"
	"adhocga/internal/network"
	"adhocga/internal/rng"
	"adhocga/internal/strategy"
)

// storeFingerprint renders a player's full reputation memory — every known
// peer in ascending ID order with its exact counters and the float bits of
// its forwarding rate — so two stores compare equal iff they are
// bit-identical.
func storeFingerprint(p *game.Player) string {
	var sb strings.Builder
	for _, id := range p.Rep.KnownNodes() {
		rate, _ := p.Rep.ForwardingRate(id)
		fmt.Fprintf(&sb, "%d:%d/%d:%x;", id, p.Rep.Forwards(id), p.Rep.Requests(id), rate)
	}
	return sb.String()
}

// runGossipTournament plays one gossip-heavy tournament from a fixed seed
// and fingerprints every participant's merged store.
func runGossipTournament(seed uint64) []string {
	r := rng.New(seed)
	normals := make([]*game.Player, 20)
	for i := range normals {
		normals[i] = game.NewNormal(network.NodeID(i), strategy.Random(r))
	}
	csn := []*game.Player{game.NewSelfish(20), game.NewSelfish(21)}
	registry := BuildRegistry(normals, csn)
	participants := append(append([]*game.Player{}, normals...), csn...)

	cfg := &Config{
		Rounds:         40,
		Mode:           network.ShorterPaths(),
		Game:           game.DefaultConfig(),
		GossipInterval: 2,
		GossipWeight:   0.25,
		GossipMinRate:  0.5,
	}
	Play(participants, registry, cfg, network.NewGenerator(cfg.Mode), r, nil)

	prints := make([]string, len(participants))
	for i, p := range participants {
		prints[i] = storeFingerprint(p)
	}
	return prints
}

// TestGossipMergeDeterministic verifies that second-hand reputation
// exchange is fully deterministic: the same seed must produce
// bit-identical merged stores on every run. The dense store makes
// MergePositive iterate peers in ascending NodeID order (the map
// representation iterated randomly; the merge was already commutative,
// but this pins the property against future non-commutative extensions).
func TestGossipMergeDeterministic(t *testing.T) {
	want := runGossipTournament(99)
	nonEmpty := 0
	for _, fp := range want {
		if fp != "" {
			nonEmpty++
		}
	}
	if nonEmpty == 0 {
		t.Fatal("gossip tournament produced no reputation data at all")
	}
	for run := 1; run < 10; run++ {
		got := runGossipTournament(99)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("run %d: player %d store diverged\n got %s\nwant %s",
					run, i, got[i], want[i])
			}
		}
	}
}

// TestMergePositiveAscendingOrder pins the dense-store traversal contract
// directly: merged peers land in the receiver exactly as the source holds
// them, and KnownNodes reports them in ascending ID order without sorting.
func TestMergePositiveAscendingOrder(t *testing.T) {
	teacher := game.NewNormal(0, strategy.AllForward())
	for _, id := range []network.NodeID{9, 3, 7, 1} {
		teacher.Rep.Observe(id, true)
		teacher.Rep.Observe(id, true)
	}
	student := game.NewNormal(1, strategy.AllForward())
	student.Rep.MergePositive(student.ID, teacher.Rep, 0, 0.5)

	got := student.Rep.KnownNodes()
	want := []network.NodeID{3, 7, 9} // id 1 is the student itself: skipped
	if len(got) != len(want) {
		t.Fatalf("KnownNodes = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("KnownNodes = %v, want ascending %v", got, want)
		}
	}
}
