package tournament

import (
	"testing"

	"adhocga/internal/game"
	"adhocga/internal/network"
	"adhocga/internal/rng"
	"adhocga/internal/strategy"
)

func evalSetup(n, maxCSN int, s strategy.Strategy) (normals, csn []*game.Player, registry []*game.Player) {
	normals = make([]*game.Player, n)
	for i := range normals {
		normals[i] = game.NewNormal(network.NodeID(i), s)
	}
	csn = make([]*game.Player, maxCSN)
	for i := range csn {
		csn[i] = game.NewSelfish(network.NodeID(n + i))
	}
	registry = BuildRegistry(normals, csn)
	return
}

func evalConfig(size, plays, rounds int, envs []Environment) *EvalConfig {
	return &EvalConfig{
		TournamentSize: size,
		PlaysPerEnv:    plays,
		Environments:   envs,
		Tournament: Config{
			Rounds: rounds,
			Mode:   network.ShorterPaths(),
			Game:   game.DefaultConfig(),
		},
	}
}

type envCounter struct {
	begins []Environment
	games  int
}

func (e *envCounter) BeginEnvironment(_ int, env Environment) { e.begins = append(e.begins, env) }
func (e *envCounter) RecordGame(_ *game.Player, _ []*game.Player, _ int) {
	e.games++
}

func TestEvalConfigValidate(t *testing.T) {
	cfg := evalConfig(20, 1, 5, []Environment{{Name: "A", CSN: 5}})
	if err := cfg.Validate(30); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*EvalConfig)
		pop    int
	}{
		{"tiny size", func(c *EvalConfig) { c.TournamentSize = 1 }, 30},
		{"zero plays", func(c *EvalConfig) { c.PlaysPerEnv = 0 }, 30},
		{"no envs", func(c *EvalConfig) { c.Environments = nil }, 30},
		{"csn exceeds size", func(c *EvalConfig) { c.Environments[0].CSN = 20 }, 30},
		{"negative csn", func(c *EvalConfig) { c.Environments[0].CSN = -1 }, 30},
		{"population too small", func(*EvalConfig) {}, 10},
		{"zero rounds", func(c *EvalConfig) { c.Tournament.Rounds = 0 }, 30},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := evalConfig(20, 1, 5, []Environment{{Name: "A", CSN: 5}})
			tc.mutate(c)
			if err := c.Validate(tc.pop); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}

func TestEvaluateEveryPlayerPlaysAtLeastL(t *testing.T) {
	for _, L := range []int{1, 2} {
		normals, csn, registry := evalSetup(30, 6, strategy.AllForward())
		cfg := evalConfig(12, L, 4, []Environment{{Name: "A", CSN: 0}, {Name: "B", CSN: 6}})
		gen := network.NewGenerator(cfg.Tournament.Mode)
		if err := Evaluate(normals, csn, registry, cfg, gen, rng.New(5), nil); err != nil {
			t.Fatal(err)
		}
		// Every player sources Rounds packets per tournament appearance,
		// and must appear ≥ L times per environment → ≥ L·R·E sends.
		minSent := L * cfg.Tournament.Rounds * len(cfg.Environments)
		for _, p := range normals {
			if p.Acct.Sent < minSent {
				t.Errorf("L=%d: player %d sent %d packets, want ≥ %d", L, p.ID, p.Acct.Sent, minSent)
			}
		}
	}
}

func TestEvaluateTopUpKeepsTournamentsFull(t *testing.T) {
	// Population 25 with Pi=10: the third tournament per environment has
	// only 5 unplayed and must be topped up to 10.
	normals, csn, registry := evalSetup(25, 0, strategy.AllForward())
	cfg := evalConfig(10, 1, 2, []Environment{{Name: "A", CSN: 0}})
	gen := network.NewGenerator(cfg.Tournament.Mode)
	rec := &envCounter{}
	if err := Evaluate(normals, csn, registry, cfg, gen, rng.New(6), rec); err != nil {
		t.Fatal(err)
	}
	// ceil(25/10) = 3 tournaments × 10 players × 2 rounds = 60 games.
	if rec.games != 60 {
		t.Errorf("recorded %d games, want 60", rec.games)
	}
	totalSent := 0
	for _, p := range normals {
		if p.Acct.Sent == 0 {
			t.Errorf("player %d never played", p.ID)
		}
		totalSent += p.Acct.Sent
	}
	if totalSent != 60 {
		t.Errorf("total sent %d, want 60", totalSent)
	}
}

func TestEvaluateBeginsEnvironmentsInOrder(t *testing.T) {
	normals, csn, registry := evalSetup(20, 10, strategy.AllForward())
	envs := []Environment{{Name: "TE1", CSN: 0}, {Name: "TE2", CSN: 5}, {Name: "TE3", CSN: 8}}
	cfg := evalConfig(10, 1, 2, envs)
	gen := network.NewGenerator(cfg.Tournament.Mode)
	rec := &envCounter{}
	if err := Evaluate(normals, csn, registry, cfg, gen, rng.New(7), rec); err != nil {
		t.Fatal(err)
	}
	if len(rec.begins) != 3 {
		t.Fatalf("BeginEnvironment called %d times", len(rec.begins))
	}
	for i, env := range envs {
		if rec.begins[i] != env {
			t.Errorf("environment %d = %+v, want %+v", i, rec.begins[i], env)
		}
	}
}

func TestEvaluateClearsStateAtStart(t *testing.T) {
	normals, csn, registry := evalSetup(20, 0, strategy.AllForward())
	// Pollute state.
	normals[0].Rep.Observe(3, false)
	normals[0].Acct.Events = 99
	cfg := evalConfig(10, 1, 1, []Environment{{Name: "A", CSN: 0}})
	gen := network.NewGenerator(cfg.Tournament.Mode)
	if err := Evaluate(normals, csn, registry, cfg, gen, rng.New(8), nil); err != nil {
		t.Fatal(err)
	}
	// 99 fake events would survive if the account had not been reset; the
	// real count after one environment of 1-round tournaments is tiny.
	if normals[0].Acct.Events >= 99 {
		t.Errorf("account not reset: %d events", normals[0].Acct.Events)
	}
}

func TestEvaluateErrorOnTooFewCSN(t *testing.T) {
	normals, csn, registry := evalSetup(20, 2, strategy.AllForward())
	cfg := evalConfig(10, 1, 1, []Environment{{Name: "A", CSN: 5}})
	gen := network.NewGenerator(cfg.Tournament.Mode)
	if err := Evaluate(normals, csn, registry, cfg, gen, rng.New(9), nil); err == nil {
		t.Error("undersized CSN pool accepted")
	}
}

func TestEvaluateDeterministic(t *testing.T) {
	run := func() []int {
		normals, csn, registry := evalSetup(30, 10, strategy.MustParse("010 101 101 111 1"))
		cfg := evalConfig(15, 1, 5, []Environment{{Name: "A", CSN: 0}, {Name: "B", CSN: 10}})
		gen := network.NewGenerator(cfg.Tournament.Mode)
		if err := Evaluate(normals, csn, registry, cfg, gen, rng.New(11), nil); err != nil {
			t.Fatal(err)
		}
		out := make([]int, len(normals))
		for i, p := range normals {
			out[i] = p.Acct.Events
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic evaluation at player %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestEvaluatePaperShapeSmoke(t *testing.T) {
	// Paper shape at reduced rounds: N=100, T=50, TE1-TE4.
	if testing.Short() {
		t.Skip("short mode")
	}
	normals, csn, registry := evalSetup(100, 30, strategy.ForwardAtOrAbove(strategy.Trust1, strategy.Forward))
	cfg := &EvalConfig{
		TournamentSize: 50,
		PlaysPerEnv:    1,
		Environments:   PaperEnvironments(),
		Tournament: Config{
			Rounds: 20,
			Mode:   network.ShorterPaths(),
			Game:   game.DefaultConfig(),
		},
	}
	gen := network.NewGenerator(cfg.Tournament.Mode)
	if err := Evaluate(normals, csn, registry, cfg, gen, rng.New(12), nil); err != nil {
		t.Fatal(err)
	}
	for _, p := range normals {
		if p.Acct.Sent == 0 {
			t.Errorf("player %d never played", p.ID)
		}
		if p.Acct.Fitness() <= 0 {
			t.Errorf("player %d has non-positive fitness %v", p.ID, p.Acct.Fitness())
		}
	}
}

func BenchmarkEvaluatePaperEnvironments(b *testing.B) {
	normals, csn, registry := evalSetup(100, 30, strategy.MustParse("010 101 101 111 1"))
	cfg := &EvalConfig{
		TournamentSize: 50,
		PlaysPerEnv:    1,
		Environments:   PaperEnvironments(),
		Tournament: Config{
			Rounds: 10,
			Mode:   network.ShorterPaths(),
			Game:   game.DefaultConfig(),
		},
	}
	gen := network.NewGenerator(cfg.Tournament.Mode)
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Evaluate(normals, csn, registry, cfg, gen, r, nil); err != nil {
			b.Fatal(err)
		}
	}
}
