// Package ga implements the genetic algorithm of §5: a population of
// bit-string genomes evolved by pairwise selection, one-point crossover
// (keeping one random child), and uniform bit-flip mutation.
//
// The package is generic over genome length so the same machinery drives
// both the 13-bit ad hoc strategies and the 5-bit IPDRP strategies of the
// related-work model the paper builds on.
package ga

import (
	"fmt"
	"math"

	"adhocga/internal/bitstring"
	"adhocga/internal/rng"
)

// Individual pairs a genome with the fitness measured for it this
// generation (eq. 1: average payoff over the games played in the
// evaluation pass).
type Individual struct {
	Genome  bitstring.Bits
	Fitness float64
}

// Selector picks one parent index from a population — the selection
// operator slot of the §5 reproduction scheme.
type Selector interface {
	// Select returns the index of the selected individual. Implementations
	// must not modify the population.
	Select(pop []Individual, r *rng.Source) int
}

// TournamentSelector implements k-way tournament selection: draw Size
// individuals uniformly with replacement and keep the fittest. The paper
// uses tournament selection (§5) without giving k; binary (Size=2) is the
// conventional default.
type TournamentSelector struct {
	Size int
}

// Select returns the index of the best of Size uniform draws.
func (t TournamentSelector) Select(pop []Individual, r *rng.Source) int {
	size := t.Size
	if size < 1 {
		size = 2
	}
	best := r.Intn(len(pop))
	for i := 1; i < size; i++ {
		c := r.Intn(len(pop))
		if pop[c].Fitness > pop[best].Fitness {
			best = c
		}
	}
	return best
}

// RouletteSelector implements fitness-proportional selection, the operator
// used by the IPDRP paper [12] that this paper replaces with tournament
// selection. Fitnesses are shifted so the minimum maps to zero; if all
// fitnesses are equal the draw is uniform.
type RouletteSelector struct{}

// Select draws an index with probability proportional to shifted fitness.
func (RouletteSelector) Select(pop []Individual, r *rng.Source) int {
	min := math.Inf(1)
	for _, ind := range pop {
		if ind.Fitness < min {
			min = ind.Fitness
		}
	}
	total := 0.0
	for _, ind := range pop {
		total += ind.Fitness - min
	}
	if total <= 0 {
		return r.Intn(len(pop))
	}
	u := r.Float64() * total
	acc := 0.0
	for i, ind := range pop {
		acc += ind.Fitness - min
		if u < acc {
			return i
		}
	}
	return len(pop) - 1
}

// RankSelector implements linear-rank selection: the i-th fittest of n is
// drawn with weight n-i. More robust than roulette when fitness scales
// drift across generations; provided for ablations.
type RankSelector struct{}

// Select draws by linear rank weight.
func (RankSelector) Select(pop []Individual, r *rng.Source) int {
	n := len(pop)
	// Rank individuals: count how many are strictly fitter.
	// O(n²) but n=100 in all our experiments.
	u := r.Float64() * float64(n*(n+1)/2)
	// Draw a rank (0 = best) with weight n-rank, then find the individual
	// with that rank.
	acc := 0.0
	rank := 0
	for ; rank < n; rank++ {
		acc += float64(n - rank)
		if u < acc {
			break
		}
	}
	if rank >= n {
		rank = n - 1
	}
	// Order indexes by fitness descending (selection only needs the
	// rank-th element; a full sort keeps this simple and deterministic).
	idx := sortedByFitness(pop)
	return idx[rank]
}

func sortedByFitness(pop []Individual) []int {
	idx := make([]int, len(pop))
	for i := range idx {
		idx[i] = i
	}
	// Insertion sort by descending fitness, ties by index for determinism.
	for i := 1; i < len(idx); i++ {
		j := i
		for j > 0 && pop[idx[j]].Fitness > pop[idx[j-1]].Fitness {
			idx[j], idx[j-1] = idx[j-1], idx[j]
			j--
		}
	}
	return idx
}

// Crossover combines two parents into two children — the crossover
// operator slot of §5 (the paper uses one-point crossover; see
// bitstring.RandomOnePointCrossover).
type Crossover func(r *rng.Source, a, b bitstring.Bits) (bitstring.Bits, bitstring.Bits)

// CrossoverInto is the in-place form of Crossover: it writes the two
// children into the caller-owned vectors c and d instead of allocating
// them. An implementation must realize the same operator as the paired
// Crossover with the same draw contract, so that the allocating and the
// arena reproduction paths replay identical streams.
type CrossoverInto func(r *rng.Source, a, b, c, d bitstring.Bits)

// Config holds the reproduction parameters of §5.
type Config struct {
	Selector      Selector
	Crossover     Crossover
	CrossoverProb float64 // paper: 0.9
	MutationProb  float64 // per-bit flip probability; paper: 0.001

	// CrossoverInto, when non-nil, lets NextGenerationInto run the
	// crossover without allocating children. It must be the in-place form
	// of Crossover; when nil, the arena path falls back to Crossover and
	// copies the kept child (correct for any custom operator, two child
	// allocations per crossed slot).
	CrossoverInto CrossoverInto
	// Elitism copies the fittest Elitism individuals unchanged into the
	// next generation before filling the rest by selection. The paper
	// uses none (0); provided for ablations and extensions.
	Elitism int
}

// PaperConfig returns the GA configuration of §6.1: binary tournament
// selection, one-point crossover with probability 0.9, bit-flip mutation
// with probability 0.001.
func PaperConfig() Config {
	return Config{
		Selector:      TournamentSelector{Size: 2},
		Crossover:     bitstring.RandomOnePointCrossover,
		CrossoverInto: bitstring.RandomOnePointCrossoverInto,
		CrossoverProb: 0.9,
		MutationProb:  0.001,
	}
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if c.Selector == nil {
		return fmt.Errorf("ga: selector not set")
	}
	if c.Crossover == nil {
		return fmt.Errorf("ga: crossover not set")
	}
	if c.CrossoverProb < 0 || c.CrossoverProb > 1 {
		return fmt.Errorf("ga: crossover probability %v outside [0,1]", c.CrossoverProb)
	}
	if c.MutationProb < 0 || c.MutationProb > 1 {
		return fmt.Errorf("ga: mutation probability %v outside [0,1]", c.MutationProb)
	}
	if c.Elitism < 0 {
		return fmt.Errorf("ga: negative elitism %d", c.Elitism)
	}
	return nil
}

// Buffers is the reusable offspring arena of NextGenerationInto: the
// next-generation genome vectors plus the spare child of each crossover
// (the one the scheme discards). A warm Buffers makes reproduction
// allocation-free; the zero value is ready to use and warms up on the
// first call. Buffers must not be shared between concurrent reproducers,
// and its vectors must never alias the population being reproduced — the
// double-buffering caller (core.Engine) alternates two Buffers for exactly
// that reason.
type Buffers struct {
	next  []bitstring.Bits
	spare bitstring.Bits
}

// ensure shapes the arena for n offspring of the given genome length.
func (b *Buffers) ensure(n, length int) {
	if cap(b.next) < n {
		grown := make([]bitstring.Bits, n)
		copy(grown, b.next)
		b.next = grown
	}
	b.next = b.next[:n]
	for i := range b.next {
		if b.next[i].Len() != length {
			b.next[i] = bitstring.New(length)
		}
	}
	if b.spare.Len() != length {
		b.spare = bitstring.New(length)
	}
}

// NextGeneration produces len(pop) offspring genomes by the paper's §5
// scheme: for each slot, select a pair of parents, apply crossover with
// CrossoverProb (otherwise copy), keep one of the two children uniformly
// at random, then mutate it bit-wise. The returned genomes are freshly
// allocated and independent of the population.
func NextGeneration(pop []Individual, cfg *Config, r *rng.Source) ([]bitstring.Bits, error) {
	return NextGenerationInto(pop, cfg, r, &Buffers{})
}

// NextGenerationInto is NextGeneration writing the offspring into the
// given arena: it consumes the identical draw sequence and produces
// bit-identical genomes, but reuses buf's vectors, so a warm arena makes
// the whole reproduction step allocation-free (when cfg.CrossoverInto is
// set and Elitism is 0; elitism pays one index-slice allocation per call).
// The returned slice and its genomes are owned by buf and overwritten by
// the next call with the same arena; callers that retain them across calls
// must alternate two Buffers (double-buffering) or clone.
func NextGenerationInto(pop []Individual, cfg *Config, r *rng.Source, buf *Buffers) ([]bitstring.Bits, error) {
	if len(pop) == 0 {
		return nil, fmt.Errorf("ga: empty population")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	buf.ensure(len(pop), pop[0].Genome.Len())
	next := buf.next
	start := 0
	if cfg.Elitism > 0 {
		elite := cfg.Elitism
		if elite > len(pop) {
			elite = len(pop)
		}
		order := sortedByFitness(pop)
		for i := 0; i < elite; i++ {
			next[i].CopyFrom(pop[order[i]].Genome)
		}
		start = elite
	}
	for i := start; i < len(next); i++ {
		pa := pop[cfg.Selector.Select(pop, r)].Genome
		pb := pop[cfg.Selector.Select(pop, r)].Genome
		// Draw order is pinned: the crossover's cut draw (if any), then
		// the child coin, then the mutation scan — identical whether the
		// children land in the arena or in fresh vectors.
		if r.Bool(cfg.CrossoverProb) {
			if cfg.CrossoverInto != nil {
				cfg.CrossoverInto(r, pa, pb, next[i], buf.spare)
				if r.Bool(0.5) {
					// The second child is kept: swap the vector headers so
					// it sits in the slot and the first becomes the spare.
					next[i], buf.spare = buf.spare, next[i]
				}
			} else {
				c1, c2 := cfg.Crossover(r, pa, pb)
				if r.Bool(0.5) {
					c1 = c2
				}
				next[i].CopyFrom(c1)
			}
		} else {
			src := pa
			if r.Bool(0.5) {
				src = pb
			}
			next[i].CopyFrom(src)
		}
		next[i].MutateFlip(r, cfg.MutationProb)
	}
	return next, nil
}

// PopulationStats summarizes a generation's fitness distribution and
// genome diversity.
type PopulationStats struct {
	BestFitness  float64
	MeanFitness  float64
	WorstFitness float64
	BestIndex    int
	// Diversity is the mean pairwise Hamming distance divided by genome
	// length: 0 for a converged population, approaching 0.5 for a uniform
	// random one.
	Diversity float64
}

// Stats computes PopulationStats. It panics on an empty population.
func Stats(pop []Individual) PopulationStats {
	if len(pop) == 0 {
		panic("ga: Stats of empty population")
	}
	s := PopulationStats{
		BestFitness:  pop[0].Fitness,
		WorstFitness: pop[0].Fitness,
	}
	sum := 0.0
	for i, ind := range pop {
		sum += ind.Fitness
		if ind.Fitness > s.BestFitness {
			s.BestFitness = ind.Fitness
			s.BestIndex = i
		}
		if ind.Fitness < s.WorstFitness {
			s.WorstFitness = ind.Fitness
		}
	}
	s.MeanFitness = sum / float64(len(pop))

	if n := len(pop); n > 1 {
		length := pop[0].Genome.Len()
		if length > 0 {
			totalDist := 0
			pairs := 0
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					totalDist += pop[i].Genome.Hamming(pop[j].Genome)
					pairs++
				}
			}
			s.Diversity = float64(totalDist) / float64(pairs) / float64(length)
		}
	}
	return s
}
