package ga

import (
	"math"
	"testing"

	"adhocga/internal/bitstring"
	"adhocga/internal/rng"
)

func popOf(fitness ...float64) []Individual {
	pop := make([]Individual, len(fitness))
	r := rng.New(99)
	for i, f := range fitness {
		pop[i] = Individual{Genome: bitstring.Random(r, 13), Fitness: f}
	}
	return pop
}

func TestTournamentSelectorPrefersFitter(t *testing.T) {
	pop := popOf(0, 0, 0, 0, 10)
	r := rng.New(1)
	sel := TournamentSelector{Size: 3}
	wins := 0
	const draws = 10000
	for i := 0; i < draws; i++ {
		if sel.Select(pop, r) == 4 {
			wins++
		}
	}
	// P(best in 3 draws of 5) = 1 - (4/5)^3 = 0.488.
	got := float64(wins) / draws
	if math.Abs(got-0.488) > 0.02 {
		t.Errorf("best selected with frequency %v, want about 0.488", got)
	}
}

func TestTournamentSelectorDefaultSize(t *testing.T) {
	pop := popOf(1, 5)
	r := rng.New(2)
	sel := TournamentSelector{} // Size 0 → default 2
	wins := 0
	const draws = 10000
	for i := 0; i < draws; i++ {
		if sel.Select(pop, r) == 1 {
			wins++
		}
	}
	// Binary tournament over 2 individuals: best wins 3/4 of draws.
	got := float64(wins) / draws
	if math.Abs(got-0.75) > 0.02 {
		t.Errorf("best selected with frequency %v, want about 0.75", got)
	}
}

func TestRouletteSelectorProportional(t *testing.T) {
	// Shifted fitnesses: 0, 1, 3 → probabilities 0, 1/4, 3/4.
	pop := popOf(2, 3, 5)
	r := rng.New(3)
	counts := make([]int, 3)
	const draws = 40000
	for i := 0; i < draws; i++ {
		counts[RouletteSelector{}.Select(pop, r)]++
	}
	if counts[0] != 0 {
		t.Errorf("minimum-fitness individual selected %d times by roulette", counts[0])
	}
	got1 := float64(counts[1]) / draws
	if math.Abs(got1-0.25) > 0.02 {
		t.Errorf("middle selected with frequency %v, want 0.25", got1)
	}
}

func TestRouletteSelectorUniformWhenFlat(t *testing.T) {
	pop := popOf(4, 4, 4, 4)
	r := rng.New(4)
	counts := make([]int, 4)
	const draws = 40000
	for i := 0; i < draws; i++ {
		counts[RouletteSelector{}.Select(pop, r)]++
	}
	for i, c := range counts {
		got := float64(c) / draws
		if math.Abs(got-0.25) > 0.02 {
			t.Errorf("flat-fitness roulette picked %d with frequency %v", i, got)
		}
	}
}

func TestRankSelectorOrdering(t *testing.T) {
	pop := popOf(1, 2, 3, 4)
	r := rng.New(5)
	counts := make([]int, 4)
	const draws = 40000
	for i := 0; i < draws; i++ {
		counts[RankSelector{}.Select(pop, r)]++
	}
	// Weights for ranks best→worst are 4,3,2,1 over total 10; individual 3
	// is best.
	want := []float64{0.1, 0.2, 0.3, 0.4}
	for i, c := range counts {
		got := float64(c) / draws
		if math.Abs(got-want[i]) > 0.02 {
			t.Errorf("rank selection picked %d with frequency %v, want %v", i, got, want[i])
		}
	}
}

func TestPaperConfigValid(t *testing.T) {
	cfg := PaperConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("paper config invalid: %v", err)
	}
	if cfg.CrossoverProb != 0.9 || cfg.MutationProb != 0.001 {
		t.Errorf("paper parameters wrong: %+v", cfg)
	}
	if ts, ok := cfg.Selector.(TournamentSelector); !ok || ts.Size != 2 {
		t.Error("paper selector should be binary tournament")
	}
}

func TestConfigValidateErrors(t *testing.T) {
	base := PaperConfig()
	cases := []func(*Config){
		func(c *Config) { c.Selector = nil },
		func(c *Config) { c.Crossover = nil },
		func(c *Config) { c.CrossoverProb = -0.1 },
		func(c *Config) { c.CrossoverProb = 1.1 },
		func(c *Config) { c.MutationProb = 2 },
	}
	for i, mutate := range cases {
		cfg := base
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestNextGenerationSizeAndLength(t *testing.T) {
	r := rng.New(6)
	pop := popOf(1, 2, 3, 4, 5)
	cfg := PaperConfig()
	next, err := NextGeneration(pop, &cfg, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(next) != len(pop) {
		t.Fatalf("offspring count %d, want %d", len(next), len(pop))
	}
	for i, g := range next {
		if g.Len() != 13 {
			t.Errorf("offspring %d has %d bits", i, g.Len())
		}
	}
}

func TestNextGenerationEmptyPopulation(t *testing.T) {
	cfg := PaperConfig()
	if _, err := NextGeneration(nil, &cfg, rng.New(1)); err == nil {
		t.Error("empty population accepted")
	}
}

func TestNextGenerationSelectionPressure(t *testing.T) {
	// One genome is all ones and vastly fitter; with no mutation the next
	// generation should be dominated by its bits.
	r := rng.New(7)
	pop := make([]Individual, 20)
	for i := range pop {
		pop[i] = Individual{Genome: bitstring.New(13), Fitness: 0}
	}
	ones := bitstring.New(13)
	for i := 0; i < 13; i++ {
		ones.Set(i, true)
	}
	pop[7] = Individual{Genome: ones, Fitness: 100}
	cfg := PaperConfig()
	cfg.MutationProb = 0
	next, err := NextGeneration(pop, &cfg, r)
	if err != nil {
		t.Fatal(err)
	}
	totalOnes := 0
	for _, g := range next {
		totalOnes += g.OneCount()
	}
	// Binary tournament with 1 winner of 20: P(pick winner) ≈ 0.0975 per
	// parent draw. Expected ones fraction ≈ P(at least one parent is the
	// winner)·(mixing) — empirically well above the all-zero baseline.
	if totalOnes == 0 {
		t.Error("selection pressure produced no copies of the fit genome")
	}
}

func TestNextGenerationNoCrossoverNoMutationCopies(t *testing.T) {
	r := rng.New(8)
	pop := popOf(1, 1, 1, 1)
	cfg := PaperConfig()
	cfg.CrossoverProb = 0
	cfg.MutationProb = 0
	next, err := NextGeneration(pop, &cfg, r)
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range next {
		found := false
		for _, ind := range pop {
			if g.Equal(ind.Genome) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("offspring %d is not a copy of any parent", i)
		}
	}
}

func TestNextGenerationDeterministic(t *testing.T) {
	gen := func() []string {
		r := rng.New(9)
		pop := popOf(3, 1, 4, 1, 5)
		cfg := PaperConfig()
		next, err := NextGeneration(pop, &cfg, r)
		if err != nil {
			t.Fatal(err)
		}
		keys := make([]string, len(next))
		for i, g := range next {
			keys[i] = g.Compact()
		}
		return keys
	}
	a, b := gen(), gen()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic offspring at %d", i)
		}
	}
}

func TestElitismPreservesBest(t *testing.T) {
	r := rng.New(20)
	pop := make([]Individual, 10)
	for i := range pop {
		pop[i] = Individual{Genome: bitstring.New(13), Fitness: float64(i)}
	}
	best := bitstring.MustParse("1010101010101")
	pop[9] = Individual{Genome: best, Fitness: 100}
	cfg := PaperConfig()
	cfg.Elitism = 2
	cfg.MutationProb = 1 // maximal disruption for non-elite slots
	next, err := NextGeneration(pop, &cfg, r)
	if err != nil {
		t.Fatal(err)
	}
	if !next[0].Equal(best) {
		t.Errorf("elite slot 0 = %s, want the best genome", next[0])
	}
	// Second elite is the runner-up (fitness 8 → all-zero genome).
	if next[1].OneCount() != 0 {
		t.Errorf("elite slot 1 = %s, want the runner-up", next[1])
	}
}

func TestElitismOversizedClamps(t *testing.T) {
	r := rng.New(21)
	pop := popOf(1, 2)
	cfg := PaperConfig()
	cfg.Elitism = 10
	next, err := NextGeneration(pop, &cfg, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(next) != 2 {
		t.Errorf("%d offspring", len(next))
	}
}

func TestNegativeElitismRejected(t *testing.T) {
	cfg := PaperConfig()
	cfg.Elitism = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative elitism accepted")
	}
}

func TestStats(t *testing.T) {
	pop := popOf(1, 2, 3)
	s := Stats(pop)
	if s.BestFitness != 3 || s.WorstFitness != 1 || math.Abs(s.MeanFitness-2) > 1e-12 {
		t.Errorf("stats = %+v", s)
	}
	if s.BestIndex != 2 {
		t.Errorf("best index = %d", s.BestIndex)
	}
}

func TestStatsDiversity(t *testing.T) {
	// Converged population → diversity 0.
	g := bitstring.MustParse("1010101010101")
	pop := []Individual{{Genome: g.Clone()}, {Genome: g.Clone()}, {Genome: g.Clone()}}
	if d := Stats(pop).Diversity; d != 0 {
		t.Errorf("converged diversity = %v", d)
	}
	// Two complementary genomes → diversity 1.
	inv := g.Clone()
	for i := 0; i < inv.Len(); i++ {
		inv.Flip(i)
	}
	pop2 := []Individual{{Genome: g}, {Genome: inv}}
	if d := Stats(pop2).Diversity; math.Abs(d-1) > 1e-12 {
		t.Errorf("complementary diversity = %v", d)
	}
}

func TestStatsPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Stats(nil)
}

func BenchmarkNextGeneration100(b *testing.B) {
	r := rng.New(1)
	pop := make([]Individual, 100)
	for i := range pop {
		pop[i] = Individual{Genome: bitstring.Random(r, 13), Fitness: r.Float64()}
	}
	cfg := PaperConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NextGeneration(pop, &cfg, r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStats100(b *testing.B) {
	r := rng.New(1)
	pop := make([]Individual, 100)
	for i := range pop {
		pop[i] = Individual{Genome: bitstring.Random(r, 13), Fitness: r.Float64()}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Stats(pop)
	}
}
