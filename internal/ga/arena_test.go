package ga

import (
	"testing"

	"adhocga/internal/bitstring"
	"adhocga/internal/rng"
)

// TestNextGenerationIntoMatchesNextGeneration pins the arena reproduction
// path to the allocating one: same population, config, and seed must yield
// bit-identical offspring and leave the RNG in the same state, across the
// crossover-into, crossover-fallback, and elitism configurations.
func TestNextGenerationIntoMatchesNextGeneration(t *testing.T) {
	cases := []struct {
		name string
		mod  func(*Config)
	}{
		{"paper", func(*Config) {}},
		{"no-crossover-into", func(c *Config) { c.CrossoverInto = nil }},
		{"elitism", func(c *Config) { c.Elitism = 3 }},
		{"low-crossover", func(c *Config) { c.CrossoverProb = 0.3 }},
		{"heavy-mutation", func(c *Config) { c.MutationProb = 0.2 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pop := popOf(3, 1, 4, 1, 5, 9, 2, 6)
			cfg := PaperConfig()
			tc.mod(&cfg)

			rA := rng.New(77)
			want, err := NextGeneration(pop, &cfg, rA)
			if err != nil {
				t.Fatal(err)
			}

			rB := rng.New(77)
			var buf Buffers
			// Two rounds through the same arena so the second runs warm.
			for round := 0; round < 2; round++ {
				rB.Reseed(77)
				got, err := NextGenerationInto(pop, &cfg, rB, &buf)
				if err != nil {
					t.Fatal(err)
				}
				for i := range want {
					if !got[i].Equal(want[i]) {
						t.Fatalf("round %d: offspring %d = %s, want %s",
							round, i, got[i], want[i])
					}
				}
			}
			// Post-state check: one more draw from each stream must agree.
			if a, b := rA.Uint64(), rB.Uint64(); a != b {
				t.Fatalf("RNG streams diverged after reproduction: %x vs %x", a, b)
			}
		})
	}
}

// TestNextGenerationIntoZeroAllocs: with a warm arena and the paper
// configuration (CrossoverInto set, no elitism), reproduction must not
// allocate at all.
func TestNextGenerationIntoZeroAllocs(t *testing.T) {
	pop := popOf(3, 1, 4, 1, 5, 9, 2, 6)
	cfg := PaperConfig()
	r := rng.New(5)
	var buf Buffers
	if _, err := NextGenerationInto(pop, &cfg, r, &buf); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := NextGenerationInto(pop, &cfg, r, &buf); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("warm NextGenerationInto allocates %.1f times per run, want 0", allocs)
	}
}

// TestNextGenerationIntoDoubleBuffer reproduces from the arena's own
// previous output through a second arena — the engine's double-buffering
// pattern — and checks the offspring still match the allocating path,
// proving the buffers never alias the population they reproduce.
func TestNextGenerationIntoDoubleBuffer(t *testing.T) {
	const gens = 6
	cfg := PaperConfig()

	run := func(arena bool) []string {
		r := rng.New(31)
		pop := make([]Individual, 10)
		for i := range pop {
			pop[i] = Individual{Genome: bitstring.Random(r, 13), Fitness: float64(i % 4)}
		}
		var bufs [2]Buffers
		for g := 0; g < gens; g++ {
			var next []bitstring.Bits
			var err error
			if arena {
				next, err = NextGenerationInto(pop, &cfg, r, &bufs[g%2])
			} else {
				next, err = NextGeneration(pop, &cfg, r)
			}
			if err != nil {
				t.Fatal(err)
			}
			for i := range pop {
				pop[i] = Individual{Genome: next[i], Fitness: float64((i + g) % 5)}
			}
		}
		out := make([]string, len(pop))
		for i := range pop {
			out[i] = pop[i].Genome.Compact()
		}
		return out
	}

	want, got := run(false), run(true)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("generation-%d chain diverged at %d: %s vs %s", gens, i, got[i], want[i])
		}
	}
}
