package jobstore

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

func testRecord(id, state string) Record {
	return Record{
		ID:        id,
		Kind:      "scenarios",
		Spec:      json.RawMessage(`{"scenarios":{"name":"x"},"seed":7}`),
		Seed:      7,
		State:     state,
		Watermark: 3,
	}
}

func TestMemBasics(t *testing.T) {
	m := NewMem()
	if _, ok, _ := m.Get("job-1"); ok {
		t.Fatal("empty store has job-1")
	}
	if err := m.Put(Record{}); err == nil {
		t.Fatal("id-less record accepted")
	}
	for _, id := range []string{"job-1", "job-2", "job-3"} {
		if err := m.Put(testRecord(id, StateQueued)); err != nil {
			t.Fatal(err)
		}
	}
	r2 := testRecord("job-2", StateDone)
	r2.ResultDigest = "abc"
	if err := m.Put(r2); err != nil {
		t.Fatal(err)
	}
	got, ok, err := m.Get("job-2")
	if err != nil || !ok || got.State != StateDone || got.ResultDigest != "abc" {
		t.Fatalf("get job-2: %+v %v %v", got, ok, err)
	}
	if err := m.Delete("job-1"); err != nil {
		t.Fatal(err)
	}
	if err := m.Delete("job-404"); err != nil {
		t.Fatal(err)
	}
	list, err := m.List()
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for _, r := range list {
		ids = append(ids, r.ID)
	}
	if !reflect.DeepEqual(ids, []string{"job-2", "job-3"}) {
		t.Fatalf("list order %v", ids)
	}
	if m.Backend() != "mem" {
		t.Fatalf("backend %q", m.Backend())
	}
}

func TestMemPutDoesNotAliasCallerBuffers(t *testing.T) {
	m := NewMem()
	r := testRecord("job-1", StateQueued)
	if err := m.Put(r); err != nil {
		t.Fatal(err)
	}
	r.Spec[2] = 'X' // mutate the caller's buffer after Put
	got, _, _ := m.Get("job-1")
	if bytes.Contains(got.Spec, []byte{'X'}) {
		t.Fatal("store aliases the caller's spec buffer")
	}
	got.Spec[2] = 'Y' // mutate the returned buffer
	again, _, _ := m.Get("job-1")
	if bytes.Contains(again.Spec, []byte{'Y'}) {
		t.Fatal("Get returns the store's own buffer")
	}
}

func TestFileRoundTripAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	fs, err := OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if fs.Backend() != "file" {
		t.Fatalf("backend %q", fs.Backend())
	}
	done := testRecord("job-1", StateDone)
	done.Result = json.RawMessage(`[{"name":"x"}]`)
	done.ResultDigest = "deadbeef"
	done.EventLog = []byte("{\"seq\":0}\n{\"seq\":1}\n")
	done.LogDigest = "cafe"
	done.Deterministic = true
	for _, r := range []Record{done, testRecord("job-2", StateRunning), testRecord("job-3", StateQueued)} {
		if err := fs.Put(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.Delete("job-3"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close(); err != nil {
		t.Fatal("second Close not idempotent:", err)
	}
	if err := fs.Put(testRecord("job-9", StateQueued)); err == nil {
		t.Fatal("Put on closed store accepted")
	}

	re, err := OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Skipped() != 0 {
		t.Fatalf("clean WAL skipped %d entries", re.Skipped())
	}
	got, ok, err := re.Get("job-1")
	if err != nil || !ok {
		t.Fatalf("job-1 lost across reopen: %v %v", ok, err)
	}
	if !reflect.DeepEqual(got, done) {
		t.Fatalf("job-1 changed across reopen:\n got %+v\nwant %+v", got, done)
	}
	list, _ := re.List()
	if len(list) != 2 || list[0].ID != "job-1" || list[1].ID != "job-2" {
		t.Fatalf("list after reopen: %+v", list)
	}
	if _, ok, _ := re.Get("job-3"); ok {
		t.Fatal("deleted job-3 resurrected by reopen")
	}
}

// TestFileRecoverySkipsCorruptTail is the crash contract: a torn final
// write (SIGKILL mid-append) and a flipped byte mid-file both lose only
// the damaged entries, never the store.
func TestFileRecoverySkipsCorruptTail(t *testing.T) {
	dir := t.TempDir()
	fs, err := OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"job-1", "job-2"} {
		if err := fs.Put(testRecord(id, StateRunning)); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, walFileName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Append a torn half-line, as if the process died mid-write.
	torn, err := EncodeEntry(Entry{Op: "put", Rec: &Record{ID: "job-3", State: StateQueued}})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, torn[:len(torn)/2]...), 0o644); err != nil {
		t.Fatal(err)
	}
	re, err := OpenFile(dir)
	if err != nil {
		t.Fatalf("recovery failed on torn tail: %v", err)
	}
	if re.Skipped() != 1 {
		t.Fatalf("skipped %d, want 1", re.Skipped())
	}
	if _, ok, _ := re.Get("job-3"); ok {
		t.Fatal("torn record half-recovered")
	}
	if _, ok, _ := re.Get("job-2"); !ok {
		t.Fatal("intact record lost to tail corruption")
	}
	re.Close()

	// Flip one byte inside the first line's payload: its checksum fails,
	// it is skipped, and later entries still load.
	data, _ = os.ReadFile(path)
	lines := bytes.SplitAfter(data, []byte("\n"))
	idx := bytes.IndexByte(lines[0], '{')
	lines[0][idx+5] ^= 0x40
	if err := os.WriteFile(path, bytes.Join(lines, nil), 0o644); err != nil {
		t.Fatal(err)
	}
	re, err = OpenFile(dir)
	if err != nil {
		t.Fatalf("recovery failed on mid-file corruption: %v", err)
	}
	defer re.Close()
	if re.Skipped() == 0 {
		t.Fatal("corrupt line not counted as skipped")
	}
	if _, ok, _ := re.Get("job-2"); !ok {
		t.Fatal("entry after the corrupt line lost")
	}
}

// TestFileRepairsTornTailBeforeAppending is the double-crash contract: a
// torn final line must never swallow the next fsynced entry. Without the
// tail repair, the first append after reopening glued onto the fragment,
// forming one corrupt line that the next replay skipped — silently losing
// a successfully fsynced Put after a second restart.
func TestFileRepairsTornTailBeforeAppending(t *testing.T) {
	dir := t.TempDir()
	fs, err := OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Put(testRecord("job-1", StateRunning)); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, walFileName)
	torn, err := EncodeEntry(Entry{Op: "put", Rec: &Record{ID: "job-2", State: StateQueued}})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(torn[:len(torn)/2]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// First restart: the fragment is skipped and a new job lands.
	re, err := OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if re.Skipped() != 1 {
		t.Fatalf("skipped %d, want 1 (the torn fragment)", re.Skipped())
	}
	if err := re.Put(testRecord("job-3", StateQueued)); err != nil {
		t.Fatal(err)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}

	// Second restart: the fsynced job-3 Put must have survived on its own
	// line instead of gluing onto the torn fragment.
	re, err = OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if _, ok, _ := re.Get("job-3"); !ok {
		t.Fatal("fsynced Put after a torn tail lost on the second restart")
	}
	if _, ok, _ := re.Get("job-1"); !ok {
		t.Fatal("intact record lost")
	}
	if _, ok, _ := re.Get("job-2"); ok {
		t.Fatal("torn record half-recovered")
	}
}

// TestFileKeepsEntryMissingOnlyNewline: a crash that cut exactly the
// trailing '\n' leaves a complete, checksum-valid entry. Tail repair must
// terminate the line and keep the entry, not discard it.
func TestFileKeepsEntryMissingOnlyNewline(t *testing.T) {
	dir := t.TempDir()
	fs, err := OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Put(testRecord("job-1", StateDone)); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, walFileName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, bytes.TrimSuffix(data, []byte("\n")), 0o644); err != nil {
		t.Fatal(err)
	}
	re, err := OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if re.Skipped() != 0 {
		t.Fatalf("skipped %d, want 0: the entry is intact", re.Skipped())
	}
	if _, ok, _ := re.Get("job-1"); !ok {
		t.Fatal("entry missing only its newline was discarded")
	}
	if err := re.Put(testRecord("job-2", StateQueued)); err != nil {
		t.Fatal(err)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	re, err = OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Skipped() != 0 {
		t.Fatalf("skipped %d after repair, want 0", re.Skipped())
	}
	for _, id := range []string{"job-1", "job-2"} {
		if _, ok, _ := re.Get(id); !ok {
			t.Fatalf("%s lost", id)
		}
	}
}

func TestFileCompactionShrinksLogAndKeepsRecords(t *testing.T) {
	dir := t.TempDir()
	fs, err := openFile(dir, 512) // tiny threshold so churn triggers compaction
	if err != nil {
		t.Fatal(err)
	}
	// Many updates to the same two records: almost everything is garbage.
	for i := 0; i < 200; i++ {
		r := testRecord("job-1", StateRunning)
		r.Watermark = i
		if err := fs.Put(r); err != nil {
			t.Fatal(err)
		}
	}
	final := testRecord("job-1", StateDone)
	final.Watermark = 200
	if err := fs.Put(final); err != nil {
		t.Fatal(err)
	}
	if err := fs.Put(testRecord("job-2", StateQueued)); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(filepath.Join(dir, walFileName))
	if err != nil {
		t.Fatal(err)
	}
	// 202 appended entries at ~150 bytes each without compaction; the
	// compacted live set is 2 entries.
	if info.Size() > 2048 {
		t.Fatalf("WAL not compacted: %d bytes", info.Size())
	}
	re, err := OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	got, ok, _ := re.Get("job-1")
	if !ok || got.State != StateDone || got.Watermark != 200 {
		t.Fatalf("job-1 after compaction: %+v %v", got, ok)
	}
	if list, _ := re.List(); len(list) != 2 || list[0].ID != "job-1" {
		t.Fatalf("list after compaction: %+v", list)
	}
}

func TestEncodeDecodeEntryValidation(t *testing.T) {
	if _, err := EncodeEntry(Entry{Op: "put"}); err == nil {
		t.Error("put without record accepted")
	}
	if _, err := EncodeEntry(Entry{Op: "del"}); err == nil {
		t.Error("del without id accepted")
	}
	if _, err := EncodeEntry(Entry{Op: "frobnicate", ID: "x"}); err == nil {
		t.Error("unknown op accepted")
	}
	rec := testRecord("job-1", StateQueued)
	line, err := EncodeEntry(Entry{Op: "put", Rec: &rec})
	if err != nil {
		t.Fatal(err)
	}
	e, err := DecodeEntry(line)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*e.Rec, rec) {
		t.Fatalf("round trip changed the record: %+v", *e.Rec)
	}
	for name, mangled := range map[string][]byte{
		"wrong magic":  []byte("zz9 " + string(line[4:])),
		"short":        line[:8],
		"bad crc hex":  append([]byte(walMagic+" zzzzzzzz "), line[13:]...),
		"flipped byte": flipByte(line, len(line)/2),
		"empty":        {},
	} {
		if _, err := DecodeEntry(mangled); err == nil {
			t.Errorf("%s decoded without error", name)
		}
	}
	// A del tombstone round-trips too.
	line, err = EncodeEntry(Entry{Op: "del", ID: "job-1"})
	if err != nil {
		t.Fatal(err)
	}
	if e, err := DecodeEntry(line); err != nil || e.Op != "del" || e.ID != "job-1" {
		t.Fatalf("del round trip: %+v %v", e, err)
	}
}

func flipByte(b []byte, i int) []byte {
	out := append([]byte(nil), b...)
	out[i] ^= 0x01
	return out
}

func TestReplayMixedGoodAndBadLines(t *testing.T) {
	var buf bytes.Buffer
	for _, id := range []string{"job-1", "job-2"} {
		rec := testRecord(id, StateQueued)
		line, _ := EncodeEntry(Entry{Op: "put", Rec: &rec})
		buf.Write(line)
	}
	buf.WriteString("garbage line\n\n")
	rec := testRecord("job-3", StateQueued)
	line, _ := EncodeEntry(Entry{Op: "put", Rec: &rec})
	buf.Write(line)
	buf.WriteString(walMagic + " 00000000 {\"op\":") // torn tail

	entries, skipped := Replay(buf.Bytes())
	if len(entries) != 3 {
		t.Fatalf("replayed %d entries, want 3", len(entries))
	}
	if skipped != 2 {
		t.Fatalf("skipped %d, want 2 (garbage + torn tail; blank lines are free)", skipped)
	}
	var ids []string
	for _, e := range entries {
		ids = append(ids, e.Rec.ID)
	}
	if strings.Join(ids, ",") != "job-1,job-2,job-3" {
		t.Fatalf("entry order %v", ids)
	}
}

// TestStatsAndFsyncObserver pins the observability seam the daemon's
// metrics layer hangs off: File.Stats counts appends/fsyncs (and only
// state transitions fsync), the OnFsync observer sees each synchronous
// append's latency, Len tracks the live record census on both backends,
// and the counters survive the sizes being polled mid-write.
func TestStatsAndFsyncObserver(t *testing.T) {
	m := NewMem()
	if m.Len() != 0 {
		t.Fatalf("empty mem Len %d", m.Len())
	}
	if err := m.Put(testRecord("job-1", StateQueued)); err != nil {
		t.Fatal(err)
	}
	if m.Len() != 1 {
		t.Fatalf("mem Len %d, want 1", m.Len())
	}

	fs, err := OpenFile(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	var observed int
	fs.OnFsync(func(d time.Duration) {
		if d < 0 {
			t.Errorf("negative fsync latency %v", d)
		}
		observed++
	})
	if st := fs.Stats(); st.Appends != 0 || st.Fsyncs != 0 || st.Records != 0 {
		t.Fatalf("fresh store stats %+v", st)
	}

	// A state transition fsyncs; a watermark-only update appends without
	// one. Both count as appends, grow the file, and keep Records = live.
	if err := fs.Put(testRecord("job-1", StateQueued)); err != nil {
		t.Fatal(err)
	}
	progress := testRecord("job-1", StateQueued) // same state: watermark-only update
	progress.Watermark = 9
	if err := fs.Put(progress); err != nil {
		t.Fatal(err)
	}
	st := fs.Stats()
	if st.Appends != 2 {
		t.Errorf("appends %d, want 2", st.Appends)
	}
	if st.Fsyncs != 1 || observed != 1 {
		t.Errorf("fsyncs %d observed %d, want 1/1 (watermark updates must not fsync)", st.Fsyncs, observed)
	}
	if st.Records != 1 || fs.Len() != 1 {
		t.Errorf("records %d Len %d, want 1/1", st.Records, fs.Len())
	}
	if st.TotalBytes <= 0 || st.LiveBytes <= 0 || st.TotalBytes < st.LiveBytes {
		t.Errorf("sizes total %d live %d", st.TotalBytes, st.LiveBytes)
	}
	if st.TornSkipped != 0 || st.Compactions != 0 {
		t.Errorf("unexpected torn/compactions in %+v", st)
	}

	done := testRecord("job-1", StateDone)
	if err := fs.Put(done); err != nil { // state transition: fsync + observer
		t.Fatal(err)
	}
	if st := fs.Stats(); st.Fsyncs != 2 || observed != 2 {
		t.Errorf("after terminal put: fsyncs %d observed %d, want 2/2", st.Fsyncs, observed)
	}
}
