package jobstore

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
)

// FuzzJobRecordCodec fuzzes the WAL record codec from both ends: a record
// built from fuzzed fields must encode/decode to itself exactly, and any
// truncation or byte flip of the encoded line must be rejected by
// DecodeEntry and skipped by Replay — never panic, never half-decode —
// while intact neighbours survive. This is the recovery-safety property
// the crash/restart harness relies on: whatever a SIGKILL leaves at the
// WAL tail, reopening the store succeeds.
func FuzzJobRecordCodec(f *testing.F) {
	f.Add("job-1", "scenarios", []byte(`{"scenarios":{"name":"x"},"seed":7}`), uint64(7), StateDone, 12, uint(10), uint(3))
	f.Add("job-2", "", []byte(`[]`), uint64(0), StateQueued, 0, uint(0), uint(0))
	f.Add("j", "k", []byte("not json at all"), uint64(1<<63), StateRunning, -5, uint(9999), uint(1))
	f.Add("job-3", "scenarios", []byte("{\"a\":\"x\\n\"}"), uint64(42), "bogus-state", 1, uint(2), uint(80))

	f.Fuzz(func(t *testing.T, id, kind string, spec []byte, seed uint64, state string, watermark int, cut, flip uint) {
		rec := Record{ID: id, Kind: kind, Seed: seed, State: state, Watermark: watermark}
		if json.Valid(spec) && len(bytes.TrimSpace(spec)) > 0 {
			rec.Spec = json.RawMessage(spec)
		} else {
			rec.EventLog = spec // arbitrary bytes are fine here (base64 in JSON)
		}

		line, err := EncodeEntry(Entry{Op: "put", Rec: &rec})
		if id == "" {
			if err == nil {
				t.Fatal("encoded a record without an id")
			}
			// Still exercise Replay on the raw fuzz bytes: arbitrary input
			// must never panic it.
			Replay(spec)
			return
		}
		if err != nil {
			t.Fatalf("encode valid record: %v", err)
		}
		got, err := DecodeEntry(line)
		if err != nil {
			t.Fatalf("decode own encoding: %v", err)
		}
		if got.Op != "put" || !reflect.DeepEqual(normalize(*got.Rec), normalize(rec)) {
			t.Fatalf("round trip changed the record:\n got %+v\nwant %+v", *got.Rec, rec)
		}

		// Truncate the line at a fuzzed offset: DecodeEntry must reject it
		// (except at the full length, where only the newline is gone).
		if n := int(cut % uint(len(line))); n < len(line)-1 {
			if _, err := DecodeEntry(line[:n]); err == nil {
				t.Fatalf("truncation to %d bytes decoded without error", n)
			}
		}
		// Flip one byte: the checksum (or frame) must catch it. Flipping
		// can in principle collide, but CRC-32 over short lines makes that
		// astronomically unlikely for single-bit flips — and a flip inside
		// the trailing newline just reframes the same payload, so skip it.
		if i := int(flip % uint(len(line))); i < len(line)-1 {
			mangled := append([]byte(nil), line...)
			mangled[i] ^= 0x01
			if e, err := DecodeEntry(mangled); err == nil {
				// The only legal way a flip decodes is if it produced an
				// identical payload, which a single-bit flip cannot.
				t.Fatalf("flipped byte %d still decoded: %+v", i, e)
			}
		}

		// A WAL image of [intact, torn tail] must recover exactly the
		// intact entry, counting the tail as skipped.
		torn := append(append([]byte(nil), line...), line[:len(line)/2]...)
		entries, skipped := Replay(torn)
		if len(entries) != 1 || !reflect.DeepEqual(normalize(*entries[0].Rec), normalize(rec)) {
			t.Fatalf("replay of torn image recovered %d entries", len(entries))
		}
		if len(line)/2 > 0 && skipped != 1 {
			t.Fatalf("torn tail skipped %d times, want 1", skipped)
		}

		// And Replay must survive arbitrary garbage.
		Replay(spec)
		Replay(append([]byte(walMagic+" "), spec...))
	})
}

// normalize maps a record through its JSON round trip so nil-vs-empty
// slice differences (invisible to any Store user) don't fail DeepEqual.
func normalize(r Record) Record {
	b, _ := json.Marshal(r)
	var out Record
	_ = json.Unmarshal(b, &out)
	return out
}
