package jobstore

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// TestMemFileEquivalence drives the in-memory and file-backed stores
// through identical random op interleavings — put, get, list, update,
// delete, and (for the file store) a full close/reopen — and requires
// them to stay observationally equivalent at every step. The reopen op is
// the property that matters: durability must be invisible through the
// Store interface. The CI race job runs this package, so the file store's
// locking is exercised under the race detector too.
func TestMemFileEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			mem := NewMem()
			file, err := openFile(t.TempDir(), 2048) // small threshold: reopens cross compactions
			if err != nil {
				t.Fatal(err)
			}
			defer func() { file.Close() }()

			ids := []string{"job-1", "job-2", "job-3", "job-4", "job-5"}
			states := []string{StateQueued, StateRunning, StateDone, StateFailed, StateCancelled}
			randomRecord := func() Record {
				r := testRecord(ids[rng.Intn(len(ids))], states[rng.Intn(len(states))])
				r.Watermark = rng.Intn(1000)
				r.Seed = rng.Uint64()
				if rng.Intn(2) == 0 {
					r.ResultDigest = fmt.Sprintf("%016x", rng.Uint64())
				}
				if rng.Intn(3) == 0 {
					r.EventLog = []byte(fmt.Sprintf("{\"seq\":%d}\n", rng.Intn(50)))
				}
				return r
			}

			for op := 0; op < 400; op++ {
				switch rng.Intn(10) {
				case 0, 1, 2, 3: // put (insert or update)
					r := randomRecord()
					errM, errF := mem.Put(r), file.Put(r)
					if (errM == nil) != (errF == nil) {
						t.Fatalf("op %d: Put(%s) diverged: mem=%v file=%v", op, r.ID, errM, errF)
					}
				case 4, 5: // get
					id := ids[rng.Intn(len(ids))]
					rM, okM, errM := mem.Get(id)
					rF, okF, errF := file.Get(id)
					if okM != okF || (errM == nil) != (errF == nil) || !reflect.DeepEqual(rM, rF) {
						t.Fatalf("op %d: Get(%s) diverged:\n mem %v %+v\nfile %v %+v", op, id, okM, rM, okF, rF)
					}
				case 6: // delete
					id := ids[rng.Intn(len(ids))]
					errM, errF := mem.Delete(id), file.Delete(id)
					if (errM == nil) != (errF == nil) {
						t.Fatalf("op %d: Delete(%s) diverged: mem=%v file=%v", op, id, errM, errF)
					}
				case 7, 8: // list
					compareLists(t, op, mem, file)
				case 9: // reopen the durable store; mem is its own baseline
					if err := file.Close(); err != nil {
						t.Fatalf("op %d: close: %v", op, err)
					}
					file, err = openFile(file.dir, 2048)
					if err != nil {
						t.Fatalf("op %d: reopen: %v", op, err)
					}
					if file.Skipped() != 0 {
						t.Fatalf("op %d: clean reopen skipped %d entries", op, file.Skipped())
					}
					compareLists(t, op, mem, file)
				}
			}
			compareLists(t, -1, mem, file)
		})
	}
}

func compareLists(t *testing.T, op int, a, b Store) {
	t.Helper()
	la, errA := a.List()
	lb, errB := b.List()
	if (errA == nil) != (errB == nil) {
		t.Fatalf("op %d: List errors diverged: %v vs %v", op, errA, errB)
	}
	if len(la) == 0 && len(lb) == 0 {
		return
	}
	if !reflect.DeepEqual(la, lb) {
		t.Fatalf("op %d: List diverged:\n mem %+v\nfile %+v", op, la, lb)
	}
}
