// Package jobstore persists the adhocd service's job records so a restart
// does not lose them. A record is the durable identity of one job: its ID,
// the submitted spec JSON, the master seed, its lifecycle state, a
// progress watermark (the highest event sequence observed), and — once
// finished — the result summary, a result digest, and (for deterministic
// jobs within event-log retention) the full NDJSON event replay. Because
// every job in this codebase is bit-reproducible from (seed, spec), that
// record is enough to resume an interrupted job from scratch after a crash
// and to re-verify a finished one byte-for-byte at any later time.
//
// Two backends implement the Store interface:
//
//   - Mem: the in-memory map the pre-durability service effectively was —
//     fast, gone on exit. The default.
//   - File: an append-only write-ahead log of NDJSON-framed records
//     (one checksummed line per update, fsynced on state transitions,
//     compacted in place once garbage dominates) that survives SIGKILL.
//
// Both backends are observationally equivalent over the Store interface;
// a property test drives them through identical random op interleavings
// to prove it.
package jobstore

import (
	"encoding/json"
	"fmt"
	"sync"
)

// States a Record moves through. They mirror adhocga.JobState but are
// redeclared here so the storage layer does not import the engine: a
// record written by one build must be readable by the next.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// TerminalState reports whether state is final — a record in a terminal
// state is never resumed on recovery.
func TerminalState(state string) bool {
	return state == StateDone || state == StateFailed || state == StateCancelled
}

// Record is the durable form of one job. Spec is the canonical submit
// request (scenarios JSON plus the resolved scale, seed, and parallelism),
// which together with Seed fully determines the job's output under the
// determinism contract — resuming or verifying a job is re-running exactly
// this document.
type Record struct {
	// ID is the job's external identifier ("job-1", …). IDs are allocated
	// by the service from the store's own sequence so they stay unique
	// across restarts.
	ID string `json:"id"`
	// Kind tags the workload ("scenarios", …).
	Kind string `json:"kind"`
	// Spec is the canonical submit-request JSON the job was built from.
	Spec json.RawMessage `json:"spec,omitempty"`
	// Seed is the master seed the spec ran under (0 = layer defaults).
	Seed uint64 `json:"seed"`
	// State is the job's lifecycle state (State* constants).
	State string `json:"state"`
	// Watermark is the highest event sequence number observed before the
	// last persist — a progress indicator for monitoring, not a resume
	// point: recovery re-runs from generation 0 and determinism makes the
	// re-run bit-identical.
	Watermark int `json:"watermark"`
	// Deterministic records whether the job ran at parallelism 1, i.e.
	// whether its event ordering (not just its results) is reproducible
	// and the event log is eligible for byte-compare verification.
	Deterministic bool `json:"deterministic,omitempty"`
	// Events is the total number of events the job emitted, recorded at
	// completion (0 while the job is still running — Watermark tracks
	// live progress).
	Events int `json:"events,omitempty"`
	// Result is the service's result summary JSON for a done job.
	Result json.RawMessage `json:"result,omitempty"`
	// ResultDigest is the hex SHA-256 of Result — the digest verify
	// compares for every finished job, including ones whose event log
	// outgrew retention.
	ResultDigest string `json:"result_digest,omitempty"`
	// EventLog is the job's full NDJSON event replay, stored only when
	// the job is deterministic, its complete history was still retained
	// by the streaming hub at completion, and it fits the store cap.
	EventLog []byte `json:"event_log,omitempty"`
	// LogDigest is the hex SHA-256 of EventLog (kept even if EventLog
	// itself is dropped for size, so a replay can still be digest-checked).
	LogDigest string `json:"log_digest,omitempty"`
	// Error is the terminal error text for failed/cancelled jobs.
	Error string `json:"error,omitempty"`
}

// clone returns a deep copy so callers can't alias the store's buffers.
func (r Record) clone() Record {
	c := r
	c.Spec = append(json.RawMessage(nil), r.Spec...)
	c.Result = append(json.RawMessage(nil), r.Result...)
	c.EventLog = append([]byte(nil), r.EventLog...)
	return c
}

// Store is the pluggable job-record persistence interface. All methods are
// safe for concurrent use. Put inserts or replaces the record with the
// same ID; a durable implementation must make Puts that change a record's
// State survive a crash before returning (fsync on state transitions),
// while watermark-only updates may be buffered. List returns records in
// first-Put order, which is submission order across the store's lifetime.
type Store interface {
	Put(Record) error
	Get(id string) (Record, bool, error)
	List() ([]Record, error)
	Delete(id string) error
	// Backend names the implementation ("mem", "file") for health
	// reporting.
	Backend() string
	Close() error
}

// Mem is the in-memory Store: a map plus insertion order. The zero value
// is not usable; call NewMem.
type Mem struct {
	mu    sync.Mutex
	recs  map[string]Record
	order []string
}

// NewMem returns an empty in-memory store.
func NewMem() *Mem {
	return &Mem{recs: map[string]Record{}}
}

// Put inserts or replaces the record.
func (m *Mem) Put(r Record) error {
	if r.ID == "" {
		return fmt.Errorf("jobstore: record has no id")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.recs[r.ID]; !ok {
		m.order = append(m.order, r.ID)
	}
	m.recs[r.ID] = r.clone()
	return nil
}

// Get returns the record with the given id.
func (m *Mem) Get(id string) (Record, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, ok := m.recs[id]
	if !ok {
		return Record{}, false, nil
	}
	return r.clone(), true, nil
}

// List returns every record in first-Put order.
func (m *Mem) List() ([]Record, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Record, 0, len(m.recs))
	for _, id := range m.order {
		if r, ok := m.recs[id]; ok {
			out = append(out, r.clone())
		}
	}
	return out, nil
}

// Delete removes the record; deleting a missing id is a no-op.
func (m *Mem) Delete(id string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.recs[id]; !ok {
		return nil
	}
	delete(m.recs, id)
	for i, oid := range m.order {
		if oid == id {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
	return nil
}

// Len returns the number of stored records — a cheap census for metrics
// collectors, unlike List, which clones every record.
func (m *Mem) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.recs)
}

// Backend returns "mem".
func (m *Mem) Backend() string { return "mem" }

// Close is a no-op.
func (m *Mem) Close() error { return nil }
