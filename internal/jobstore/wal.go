package jobstore

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// The file backend is a single append-only write-ahead log: every Put or
// Delete appends one framed line, recovery replays the file front to back
// and keeps the last entry per job, and a compaction pass rewrites the
// live set through a temp file + rename once superseded entries dominate.
// Each line is independently checksummed, so a torn write from a crash —
// or a corrupted record anywhere in the file — is detected and skipped by
// recovery instead of taking the whole store down.
//
// Line format (one WAL entry):
//
//	jr1 <crc32-ieee, 8 hex digits> <entry JSON>\n
//
// The checksum covers exactly the JSON payload. JSON encoding never emits
// raw newlines (strings are escaped, []byte is base64), so lines are a
// safe framing unit.

// walMagic tags the record-codec version; a future incompatible format
// bumps it, and recovery skips lines it does not understand.
const walMagic = "jr1"

// DefaultCompactThreshold is the WAL size below which the file backend
// never bothers compacting.
const DefaultCompactThreshold = 1 << 20

// walFileName is the log's name inside the data directory.
const walFileName = "jobs.wal"

// Entry is one WAL line: a record upsert or a deletion tombstone.
type Entry struct {
	// Op is "put" (Rec holds the record) or "del" (ID names the target).
	Op  string  `json:"op"`
	ID  string  `json:"id,omitempty"`
	Rec *Record `json:"rec,omitempty"`
}

// EncodeEntry frames one entry as a checksummed WAL line, including the
// trailing newline.
func EncodeEntry(e Entry) ([]byte, error) {
	switch e.Op {
	case "put":
		if e.Rec == nil || e.Rec.ID == "" {
			return nil, fmt.Errorf("jobstore: put entry needs a record with an id")
		}
	case "del":
		if e.ID == "" {
			return nil, fmt.Errorf("jobstore: del entry needs an id")
		}
	default:
		return nil, fmt.Errorf("jobstore: unknown entry op %q", e.Op)
	}
	payload, err := json.Marshal(e)
	if err != nil {
		return nil, fmt.Errorf("jobstore: encode entry: %w", err)
	}
	var buf bytes.Buffer
	buf.Grow(len(walMagic) + 10 + len(payload) + 1)
	buf.WriteString(walMagic)
	buf.WriteByte(' ')
	fmt.Fprintf(&buf, "%08x", crc32.ChecksumIEEE(payload))
	buf.WriteByte(' ')
	buf.Write(payload)
	buf.WriteByte('\n')
	return buf.Bytes(), nil
}

// DecodeEntry parses one WAL line (with or without its trailing newline),
// verifying the frame and checksum. Any deviation — wrong magic, short
// line, checksum mismatch, malformed JSON, invalid op — is an error; the
// caller decides whether to skip or abort.
func DecodeEntry(line []byte) (Entry, error) {
	line = bytes.TrimSuffix(line, []byte("\n"))
	rest, ok := bytes.CutPrefix(line, []byte(walMagic+" "))
	if !ok {
		return Entry{}, fmt.Errorf("jobstore: not a %s line", walMagic)
	}
	if len(rest) < 9 || rest[8] != ' ' {
		return Entry{}, fmt.Errorf("jobstore: truncated frame header")
	}
	var crcBytes [4]byte
	if _, err := hex.Decode(crcBytes[:], rest[:8]); err != nil {
		return Entry{}, fmt.Errorf("jobstore: bad checksum field: %w", err)
	}
	want := uint32(crcBytes[0])<<24 | uint32(crcBytes[1])<<16 | uint32(crcBytes[2])<<8 | uint32(crcBytes[3])
	payload := rest[9:]
	if got := crc32.ChecksumIEEE(payload); got != want {
		return Entry{}, fmt.Errorf("jobstore: checksum mismatch (stored %08x, computed %08x)", want, got)
	}
	var e Entry
	if err := json.Unmarshal(payload, &e); err != nil {
		return Entry{}, fmt.Errorf("jobstore: entry JSON: %w", err)
	}
	switch e.Op {
	case "put":
		if e.Rec == nil || e.Rec.ID == "" {
			return Entry{}, fmt.Errorf("jobstore: put entry without record id")
		}
	case "del":
		if e.ID == "" {
			return Entry{}, fmt.Errorf("jobstore: del entry without id")
		}
	default:
		return Entry{}, fmt.Errorf("jobstore: unknown entry op %q", e.Op)
	}
	return e, nil
}

// Replay decodes a whole WAL image line by line. Corrupt or truncated
// lines — the torn tail a SIGKILL mid-append leaves behind, or bit rot
// anywhere else — are counted in skipped and otherwise ignored; recovery
// never fails on bad data, it just loses the damaged entries.
func Replay(data []byte) (entries []Entry, skipped int) {
	for len(data) > 0 {
		var line []byte
		if i := bytes.IndexByte(data, '\n'); i >= 0 {
			line, data = data[:i], data[i+1:]
		} else {
			line, data = data, nil // truncated final line
		}
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		e, err := DecodeEntry(line)
		if err != nil {
			skipped++
			continue
		}
		entries = append(entries, e)
	}
	return entries, skipped
}

// File is the durable WAL-backed Store. Create with OpenFile; the same
// directory reopened yields the same records (modulo skipped corruption).
type File struct {
	mu         sync.Mutex
	dir        string
	f          *os.File
	recs       map[string]Record
	order      []string
	entryBytes map[string]int64 // encoded size of each id's latest entry
	totalBytes int64            // bytes in the WAL file right now
	skipped    int
	compactMin int64
	closed     bool

	// Observability counters, kept under the same mutex the write path
	// already holds — polled by FileStats, they cost the hot path nothing.
	appends     uint64
	fsyncs      uint64
	compactions uint64
	onFsync     func(time.Duration) // optional fsync-latency observer
}

// FileStats is a point-in-time census of the WAL backend, polled by the
// daemon's metrics collectors.
type FileStats struct {
	// Appends counts WAL lines written since open; Fsyncs how many of
	// them were made durable synchronously; Compactions how many rewrite
	// passes ran.
	Appends, Fsyncs, Compactions uint64
	// TornSkipped is how many corrupt entries recovery skipped at open.
	TornSkipped int
	// TotalBytes is the WAL file's current size; LiveBytes the size a
	// fresh compaction would leave; Records the live record count.
	TotalBytes, LiveBytes int64
	Records               int
}

// Stats returns the store's counters and sizes.
func (fs *File) Stats() FileStats {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return FileStats{
		Appends:     fs.appends,
		Fsyncs:      fs.fsyncs,
		Compactions: fs.compactions,
		TornSkipped: fs.skipped,
		TotalBytes:  fs.totalBytes,
		LiveBytes:   fs.liveBytesLocked(),
		Records:     len(fs.recs),
	}
}

// Len reports the live record count without cloning records (List does).
func (fs *File) Len() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return len(fs.recs)
}

// OnFsync installs an observer called with each synchronous append's
// fsync latency — the hook the daemon's latency histogram hangs off
// without this package importing the metrics layer. Call before serving
// traffic; fn runs under the store mutex and must be fast.
func (fs *File) OnFsync(fn func(time.Duration)) {
	fs.mu.Lock()
	fs.onFsync = fn
	fs.mu.Unlock()
}

// OpenFile opens (creating if needed) the WAL-backed store in dir and
// replays it. Corrupt entries are skipped, not fatal — Skipped reports how
// many. If replay found enough garbage to warrant it, the store compacts
// immediately so crash loops can't grow the file without bound.
func OpenFile(dir string) (*File, error) {
	return openFile(dir, DefaultCompactThreshold)
}

func openFile(dir string, compactMin int64) (*File, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobstore: data dir: %w", err)
	}
	path := filepath.Join(dir, walFileName)
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("jobstore: read WAL: %w", err)
	}
	entries, skipped := Replay(data)
	fs := &File{
		dir:        dir,
		recs:       map[string]Record{},
		entryBytes: map[string]int64{},
		totalBytes: int64(len(data)),
		skipped:    skipped,
		compactMin: compactMin,
	}
	for _, e := range entries {
		fs.applyLocked(e)
	}
	fs.f, err = os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("jobstore: open WAL: %w", err)
	}
	// Repair a torn tail before appending anything: a SIGKILL mid-append
	// leaves the file ending without a newline, and a fresh entry written
	// straight after it would glue onto the fragment into one corrupt line
	// — silently losing a successfully fsynced Put on the next replay.
	// Terminating the tail with '\n' confines the damage to its own line
	// (which future replays skip) and keeps intact an entry that lost only
	// its trailing newline byte.
	if n := len(data); n > 0 && data[n-1] != '\n' {
		if _, err := fs.f.Write([]byte("\n")); err != nil {
			fs.f.Close()
			return nil, fmt.Errorf("jobstore: repair WAL tail: %w", err)
		}
		if err := fs.f.Sync(); err != nil {
			fs.f.Close()
			return nil, fmt.Errorf("jobstore: repair WAL tail: %w", err)
		}
		fs.totalBytes++
	}
	// The open may have created the file; fsync the directory so the WAL's
	// existence itself survives power loss.
	if err := syncDir(dir); err != nil {
		fs.f.Close()
		return nil, err
	}
	if err := fs.maybeCompactLocked(); err != nil {
		fs.f.Close()
		return nil, err
	}
	return fs, nil
}

// syncDir fsyncs a directory so a just-created or just-renamed file's
// directory entry is durable, not just its contents.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("jobstore: sync dir: %w", err)
	}
	serr := d.Sync()
	if cerr := d.Close(); serr == nil {
		serr = cerr
	}
	if serr != nil {
		return fmt.Errorf("jobstore: sync dir: %w", serr)
	}
	return nil
}

// applyLocked folds one replayed entry into the in-memory view.
func (fs *File) applyLocked(e Entry) {
	switch e.Op {
	case "put":
		r := *e.Rec
		if _, ok := fs.recs[r.ID]; !ok {
			fs.order = append(fs.order, r.ID)
		}
		fs.recs[r.ID] = r
		// Sizes are only tracked for compaction heuristics; recomputing
		// the exact encoding is not worth it, the JSON length is close.
		if b, err := EncodeEntry(Entry{Op: "put", Rec: &r}); err == nil {
			fs.entryBytes[r.ID] = int64(len(b))
		}
	case "del":
		fs.dropLocked(e.ID)
	}
}

func (fs *File) dropLocked(id string) {
	if _, ok := fs.recs[id]; !ok {
		return
	}
	delete(fs.recs, id)
	delete(fs.entryBytes, id)
	for i, oid := range fs.order {
		if oid == id {
			fs.order = append(fs.order[:i], fs.order[i+1:]...)
			break
		}
	}
}

// appendLocked writes one entry to the log, fsyncing when sync is set.
func (fs *File) appendLocked(e Entry, sync bool) error {
	b, err := EncodeEntry(e)
	if err != nil {
		return err
	}
	if _, err := fs.f.Write(b); err != nil {
		return fmt.Errorf("jobstore: append WAL: %w", err)
	}
	fs.appends++
	fs.totalBytes += int64(len(b))
	if e.Op == "put" {
		fs.entryBytes[e.Rec.ID] = int64(len(b))
	}
	if sync {
		start := time.Now()
		if err := fs.f.Sync(); err != nil {
			return fmt.Errorf("jobstore: fsync WAL: %w", err)
		}
		fs.fsyncs++
		if fs.onFsync != nil {
			fs.onFsync(time.Since(start))
		}
	}
	return nil
}

// Put appends the record to the log and updates the in-memory view. The
// append is fsynced when it creates the record or changes its State — the
// durability points that must survive a crash — while watermark-only
// updates ride on the OS cache and may be lost to a crash (recovery then
// just reports slightly older progress).
func (fs *File) Put(r Record) error {
	if r.ID == "" {
		return fmt.Errorf("jobstore: record has no id")
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return fmt.Errorf("jobstore: store is closed")
	}
	prev, existed := fs.recs[r.ID]
	sync := !existed || prev.State != r.State
	rec := r.clone()
	if err := fs.appendLocked(Entry{Op: "put", Rec: &rec}, sync); err != nil {
		return err
	}
	if !existed {
		fs.order = append(fs.order, r.ID)
	}
	fs.recs[r.ID] = rec
	return fs.maybeCompactLocked()
}

// Get returns the record with the given id.
func (fs *File) Get(id string) (Record, bool, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	r, ok := fs.recs[id]
	if !ok {
		return Record{}, false, nil
	}
	return r.clone(), true, nil
}

// List returns every record in first-Put order.
func (fs *File) List() ([]Record, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	out := make([]Record, 0, len(fs.recs))
	for _, id := range fs.order {
		if r, ok := fs.recs[id]; ok {
			out = append(out, r.clone())
		}
	}
	return out, nil
}

// Delete appends a tombstone (fsynced — a deletion is a state transition)
// and removes the record. Deleting a missing id is a no-op.
func (fs *File) Delete(id string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return fmt.Errorf("jobstore: store is closed")
	}
	if _, ok := fs.recs[id]; !ok {
		return nil
	}
	if err := fs.appendLocked(Entry{Op: "del", ID: id}, true); err != nil {
		return err
	}
	fs.dropLocked(id)
	return fs.maybeCompactLocked()
}

// Backend returns "file".
func (fs *File) Backend() string { return "file" }

// Skipped reports how many corrupt WAL entries recovery had to skip when
// the store was opened.
func (fs *File) Skipped() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.skipped
}

// Close fsyncs and closes the log. The store rejects writes afterwards.
func (fs *File) Close() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return nil
	}
	fs.closed = true
	if err := fs.f.Sync(); err != nil {
		fs.f.Close()
		return err
	}
	return fs.f.Close()
}

// liveBytesLocked is the encoded size of the live record set — what a
// freshly compacted WAL would occupy.
func (fs *File) liveBytesLocked() int64 {
	var n int64
	for _, b := range fs.entryBytes {
		n += b
	}
	return n
}

// maybeCompactLocked rewrites the log down to the live record set when the
// file is past the threshold and more than half garbage. The rewrite goes
// through a temp file + fsync + atomic rename, so a crash mid-compaction
// leaves either the old log or the new one, never a mix.
func (fs *File) maybeCompactLocked() error {
	live := fs.liveBytesLocked()
	if fs.totalBytes < fs.compactMin || fs.totalBytes <= 2*live {
		return nil
	}
	path := filepath.Join(fs.dir, walFileName)
	tmp, err := os.CreateTemp(fs.dir, walFileName+".compact-*")
	if err != nil {
		return fmt.Errorf("jobstore: compact: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	var written int64
	for _, id := range fs.order {
		rec := fs.recs[id]
		b, err := EncodeEntry(Entry{Op: "put", Rec: &rec})
		if err != nil {
			tmp.Close()
			return err
		}
		if _, err := tmp.Write(b); err != nil {
			tmp.Close()
			return fmt.Errorf("jobstore: compact write: %w", err)
		}
		written += int64(len(b))
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("jobstore: compact fsync: %w", err)
	}
	if err := tmp.Chmod(0o644); err != nil {
		tmp.Close()
		return fmt.Errorf("jobstore: compact chmod: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		tmp.Close()
		return fmt.Errorf("jobstore: compact rename: %w", err)
	}
	// The rename moved tmp's inode to the WAL path, and the open tmp handle
	// follows the inode — adopt it as the live WAL handle rather than
	// reopening by path, so there is no window where a failed reopen leaves
	// the store without a handle and permanently wedged. The handle's
	// offset already sits at end-of-file, which is all the (mutex-guarded)
	// append path needs.
	old := fs.f
	fs.f = tmp
	old.Close()
	fs.totalBytes = written
	fs.compactions++
	// Make the rename itself durable: without a directory fsync a power
	// loss may resurrect the pre-compaction log.
	return syncDir(fs.dir)
}
