package obs

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	return sb.String()
}

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "a counter")
	g := r.Gauge("test_gauge", "a gauge")
	c.Inc()
	c.Add(4)
	g.Set(2.5)
	g.Add(-1)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if g.Value() != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", g.Value())
	}
	out := render(t, r)
	for _, want := range []string{
		"# HELP test_total a counter\n# TYPE test_total counter\ntest_total 5\n",
		"# HELP test_gauge a gauge\n# TYPE test_gauge gauge\ntest_gauge 1.5\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestFamiliesSortedByName(t *testing.T) {
	r := NewRegistry()
	r.Counter("zzz_total", "")
	r.Counter("aaa_total", "")
	out := render(t, r)
	if strings.Index(out, "aaa_total") > strings.Index(out, "zzz_total") {
		t.Fatalf("families not sorted:\n%s", out)
	}
}

func TestDuplicateNamePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate registration")
		}
	}()
	r.Gauge("dup_total", "")
}

func TestInvalidNamePanics(t *testing.T) {
	for _, bad := range []string{"", "9starts_with_digit", "has-dash", "has space"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for name %q", bad)
				}
			}()
			NewRegistry().Counter(bad, "")
		}()
	}
}

func TestFuncCollectors(t *testing.T) {
	r := NewRegistry()
	n := 7.0
	r.CounterFunc("poll_total", "polled", func() float64 { return n })
	r.GaugeFunc("poll_gauge", "polled", func() float64 { return n / 2 })
	out := render(t, r)
	if !strings.Contains(out, "poll_total 7\n") || !strings.Contains(out, "poll_gauge 3.5\n") {
		t.Fatalf("func collectors wrong:\n%s", out)
	}
	n = 9
	if out := render(t, r); !strings.Contains(out, "poll_total 9\n") {
		t.Fatalf("collector not re-evaluated at scrape:\n%s", out)
	}
}

func TestGaugeVecFuncRetiresSeries(t *testing.T) {
	r := NewRegistry()
	live := []LabeledValue{
		{Labels: []string{"job-2"}, Value: 1},
		{Labels: []string{"job-1"}, Value: 3},
	}
	var mu sync.Mutex
	r.GaugeVecFunc("job_subs", "per-job", []string{"job"}, func() []LabeledValue {
		mu.Lock()
		defer mu.Unlock()
		return append([]LabeledValue(nil), live...)
	})
	out := render(t, r)
	if !strings.Contains(out, `job_subs{job="job-1"} 3`) || !strings.Contains(out, `job_subs{job="job-2"} 1`) {
		t.Fatalf("vec samples missing:\n%s", out)
	}
	if strings.Index(out, `job="job-1"`) > strings.Index(out, `job="job-2"`) {
		t.Fatalf("vec samples not sorted by label:\n%s", out)
	}
	mu.Lock()
	live = live[:1] // job-1 went terminal
	mu.Unlock()
	out = render(t, r)
	if strings.Contains(out, "job-1") {
		t.Fatalf("terminal series not retired:\n%s", out)
	}
	if !strings.Contains(out, "job-2") {
		t.Fatalf("live series lost:\n%s", out)
	}
}

func TestCounterVec(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("req_total", "requests", "route", "code")
	v.With("/v1/jobs", "200").Add(3)
	v.With("/v1/jobs", "404").Inc()
	v.With("/healthz", "200").Inc()
	out := render(t, r)
	for _, want := range []string{
		`req_total{route="/healthz",code="200"} 1`,
		`req_total{route="/v1/jobs",code="200"} 3`,
		`req_total{route="/v1/jobs",code="404"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "# TYPE req_total") != 1 {
		t.Errorf("family header repeated:\n%s", out)
	}
	v.Delete("/v1/jobs", "404")
	if out := render(t, r); strings.Contains(out, "404") {
		t.Errorf("deleted series still rendered:\n%s", out)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wrong label-value count")
		}
	}()
	v.With("only-one")
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	out := render(t, r)
	for _, want := range []string{
		`lat_seconds_bucket{le="0.01"} 1`,
		`lat_seconds_bucket{le="0.1"} 3`,
		`lat_seconds_bucket{le="1"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		`lat_seconds_sum 5.605`,
		`lat_seconds_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramBoundaryIsInclusive(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("b_seconds", "", []float64{1, 2})
	h.Observe(1) // le="1" is a cumulative upper bound: 1 <= 1
	out := render(t, r)
	if !strings.Contains(out, `b_seconds_bucket{le="1"} 1`) {
		t.Fatalf("boundary value not counted in its bucket:\n%s", out)
	}
}

func TestHistogramBadBucketsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on non-ascending buckets")
		}
	}()
	NewRegistry().Histogram("bad_seconds", "", []float64{2, 1})
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("esc_total", "", "k")
	v.With("a\"b\\c\nd").Inc()
	out := render(t, r)
	if !strings.Contains(out, `esc_total{k="a\"b\\c\nd"} 1`) {
		t.Fatalf("label not escaped:\n%s", out)
	}
}

func TestHandlerAndHealthy(t *testing.T) {
	r := NewRegistry()
	if err := r.Healthy(); err == nil {
		t.Fatal("empty registry should not be healthy")
	}
	r.Counter("up_total", "").Inc()
	if err := r.Healthy(); err != nil {
		t.Fatalf("Healthy: %v", err)
	}
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content-type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "up_total 1") {
		t.Fatalf("handler body:\n%s", rec.Body.String())
	}
}

func TestHealthyRejectsNaN(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("ratio", "", func() float64 { return 0.0 / divisor() })
	if err := r.Healthy(); err == nil {
		t.Fatal("NaN collector should fail the self-check")
	}
}

// divisor defeats the compiler's constant-folding of 0.0/0.0.
func divisor() float64 { return 0 }

func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("conc_total", "")
	h := r.Histogram("conc_seconds", "", []float64{0.5})
	var wg sync.WaitGroup
	for range 8 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range 1000 {
				c.Inc()
				h.Observe(0.25)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 || h.Count() != 8000 {
		t.Fatalf("lost updates: counter=%d hist=%d", c.Value(), h.Count())
	}
}
