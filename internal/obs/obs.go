// Package obs is the daemon's dependency-free observability core: a
// metrics registry of counters, gauges, and histograms with atomic hot
// paths, exposed in the Prometheus text format over an http.Handler.
//
// Two collection styles coexist, matching how the layers above keep their
// numbers:
//
//   - Push instruments (Counter, Gauge, Histogram, CounterVec) are
//     incremented inline where the event happens — an HTTP request
//     finishing, a WAL fsync returning. Their hot paths are single atomic
//     operations, cheap enough for paths the benchgate budget covers.
//   - Pull collectors (CounterFunc, GaugeFunc, GaugeVecFunc) read an
//     existing stats surface at scrape time — Session.Stats, Job
//     StreamStats, jobstore.File.Stats. The instrumented layer pays
//     nothing between scrapes, which is how the GA hot paths stay inside
//     their <5% observability budget: the counters they already kept in
//     private structs are simply polled.
//
// Cardinality rule: label values must come from a bounded set (routes,
// states, outcomes) — never from unbounded identifiers. The one exception
// is the per-job series, which are produced by a GaugeVecFunc enumerating
// only the live, non-terminal jobs, so a terminal job's series retire on
// the next scrape instead of accumulating forever.
//
// The exposition is deterministic: families render sorted by name, label
// sets sorted within a family, so scrapes diff cleanly and tests can
// assert on substrings.
package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// DefBuckets are general-purpose latency buckets in seconds, spanning
// 100µs to 2.5s — sized for fsync and request latencies.
var DefBuckets = []float64{0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5}

// Registry holds a set of uniquely-named metric families. Create with
// NewRegistry; all methods are safe for concurrent use. Registering two
// families under one name panics — duplicate metric names are a
// programming error the first scrape would otherwise hide.
type Registry struct {
	mu   sync.Mutex
	seen map[string]bool
	fams []family
}

// family is one named metric family: it renders its HELP/TYPE header and
// every sample it currently holds.
type family interface {
	name() string
	write(w *bufio.Writer)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{seen: map[string]bool{}}
}

func (r *Registry) add(f family) {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := f.name()
	if !validName(n) {
		panic(fmt.Sprintf("obs: invalid metric name %q", n))
	}
	if r.seen[n] {
		panic(fmt.Sprintf("obs: metric %q registered twice", n))
	}
	r.seen[n] = true
	r.fams = append(r.fams, f)
}

// validName checks the Prometheus metric/label name grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// WriteTo renders every family in the Prometheus text exposition format,
// sorted by family name. It implements io.WriterTo.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	fams := append([]family(nil), r.fams...)
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name() < fams[j].name() })
	cw := &countingWriter{w: w}
	bw := bufio.NewWriter(cw)
	for _, f := range fams {
		f.write(bw)
	}
	err := bw.Flush()
	if cw.err != nil {
		err = cw.err
	}
	return cw.n, err
}

type countingWriter struct {
	w   io.Writer
	n   int64
	err error
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	if err != nil && c.err == nil {
		c.err = err
	}
	return n, err
}

// Handler serves the registry as text/plain in the Prometheus exposition
// format — mount it at GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = r.WriteTo(w)
	})
}

// Healthy is the /healthz self-check: it renders the full exposition to a
// throwaway buffer and errors when the registry is empty or a collector
// produced an invalid sample (NaN from a polled ratio, typically).
func (r *Registry) Healthy() error {
	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		return err
	}
	out := sb.String()
	if !strings.Contains(out, "# TYPE ") {
		return fmt.Errorf("obs: registry rendered no metric families")
	}
	if strings.Contains(out, "NaN") {
		return fmt.Errorf("obs: a collector produced NaN")
	}
	return nil
}

// header writes one family's HELP/TYPE preamble.
func header(w *bufio.Writer, name, help, typ string) {
	if help != "" {
		w.WriteString("# HELP ")
		w.WriteString(name)
		w.WriteByte(' ')
		w.WriteString(strings.NewReplacer("\\", `\\`, "\n", `\n`).Replace(help))
		w.WriteByte('\n')
	}
	w.WriteString("# TYPE ")
	w.WriteString(name)
	w.WriteByte(' ')
	w.WriteString(typ)
	w.WriteByte('\n')
}

// formatValue renders a sample value; integral values print without an
// exponent so counters read naturally.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	return strings.NewReplacer("\\", `\\`, `"`, `\"`, "\n", `\n`).Replace(s)
}

// sample writes one `name{labels} value` line. keys and values are
// parallel; empty keys renders a bare sample.
func sample(w *bufio.Writer, name string, keys, values []string, v float64) {
	w.WriteString(name)
	if len(keys) > 0 {
		w.WriteByte('{')
		for i, k := range keys {
			if i > 0 {
				w.WriteByte(',')
			}
			w.WriteString(k)
			w.WriteString(`="`)
			w.WriteString(escapeLabel(values[i]))
			w.WriteByte('"')
		}
		w.WriteByte('}')
	}
	w.WriteByte(' ')
	w.WriteString(formatValue(v))
	w.WriteByte('\n')
}

// Counter is a monotonically-increasing value. Inc/Add are single atomic
// operations.
type Counter struct {
	nameStr, help string
	v             atomic.Uint64
}

// Counter registers and returns a new counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{nameStr: name, help: help}
	r.add(c)
	return c
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) name() string { return c.nameStr }
func (c *Counter) write(w *bufio.Writer) {
	header(w, c.nameStr, c.help, "counter")
	sample(w, c.nameStr, nil, nil, float64(c.v.Load()))
}

// Gauge is a value that can go up and down. Set/Add are atomic.
type Gauge struct {
	nameStr, help string
	bits          atomic.Uint64
}

// Gauge registers and returns a new gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{nameStr: name, help: help}
	r.add(g)
	return g
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d (CAS loop; gauges are not expected on contended hot paths).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) name() string { return g.nameStr }
func (g *Gauge) write(w *bufio.Writer) {
	header(w, g.nameStr, g.help, "gauge")
	sample(w, g.nameStr, nil, nil, g.Value())
}

// funcFamily is a pull collector: one unlabeled sample read at scrape
// time.
type funcFamily struct {
	nameStr, help, typ string
	fn                 func() float64
}

// CounterFunc registers a pull collector exposed as a counter — fn must
// be monotonic (a total read off an existing stats surface).
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.add(&funcFamily{nameStr: name, help: help, typ: "counter", fn: fn})
}

// GaugeFunc registers a pull collector exposed as a gauge.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.add(&funcFamily{nameStr: name, help: help, typ: "gauge", fn: fn})
}

func (f *funcFamily) name() string { return f.nameStr }
func (f *funcFamily) write(w *bufio.Writer) {
	header(w, f.nameStr, f.help, f.typ)
	sample(w, f.nameStr, nil, nil, f.fn())
}

// LabeledValue is one sample of a GaugeVecFunc: label values (parallel to
// the vec's keys) plus the value.
type LabeledValue struct {
	Labels []string
	Value  float64
}

// vecFuncFamily is a pull collector producing a whole labeled family per
// scrape. Series exist exactly as long as fn reports them — the
// cardinality-retirement mechanism for per-job metrics.
type vecFuncFamily struct {
	nameStr, help, typ string
	keys               []string
	fn                 func() []LabeledValue
}

// GaugeVecFunc registers a pull collector producing labeled gauge samples
// at scrape time. A series disappears as soon as fn stops reporting it,
// so callers enumerating live objects (jobs, connections) get retirement
// for free.
func (r *Registry) GaugeVecFunc(name, help string, keys []string, fn func() []LabeledValue) {
	r.add(&vecFuncFamily{nameStr: name, help: help, typ: "gauge", keys: keys, fn: fn})
}

func (f *vecFuncFamily) name() string { return f.nameStr }
func (f *vecFuncFamily) write(w *bufio.Writer) {
	header(w, f.nameStr, f.help, f.typ)
	vals := f.fn()
	sort.Slice(vals, func(i, j int) bool {
		return strings.Join(vals[i].Labels, "\x1f") < strings.Join(vals[j].Labels, "\x1f")
	})
	for _, lv := range vals {
		if len(lv.Labels) != len(f.keys) {
			continue
		}
		sample(w, f.nameStr, f.keys, lv.Labels, lv.Value)
	}
}

// CounterVec is a family of counters keyed by one or more label values
// (e.g. requests by route and status). With interns the child so hot
// callers can cache it and skip the map lookup.
type CounterVec struct {
	nameStr, help string
	keys          []string
	mu            sync.Mutex
	children      map[string]*Counter
}

// CounterVec registers and returns a labeled counter family.
func (r *Registry) CounterVec(name, help string, keys ...string) *CounterVec {
	for _, k := range keys {
		if !validName(k) {
			panic(fmt.Sprintf("obs: invalid label name %q", k))
		}
	}
	v := &CounterVec{nameStr: name, help: help, keys: keys, children: map[string]*Counter{}}
	r.add(v)
	return v
}

// With returns the child counter for the given label values (created on
// first use). The label-value count must match the vec's keys.
func (v *CounterVec) With(values ...string) *Counter {
	if len(values) != len(v.keys) {
		panic(fmt.Sprintf("obs: %s wants %d label values, got %d", v.nameStr, len(v.keys), len(values)))
	}
	key := strings.Join(values, "\x1f")
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.children[key]
	if !ok {
		c = &Counter{nameStr: v.nameStr}
		v.children[key] = c
	}
	return c
}

// Delete retires one child series (a bounded-cardinality escape hatch;
// prefer GaugeVecFunc for naturally-retiring series).
func (v *CounterVec) Delete(values ...string) {
	v.mu.Lock()
	defer v.mu.Unlock()
	delete(v.children, strings.Join(values, "\x1f"))
}

func (v *CounterVec) name() string { return v.nameStr }
func (v *CounterVec) write(w *bufio.Writer) {
	header(w, v.nameStr, v.help, "counter")
	v.mu.Lock()
	keys := make([]string, 0, len(v.children))
	for k := range v.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	type row struct {
		labels []string
		v      float64
	}
	rows := make([]row, 0, len(keys))
	for _, k := range keys {
		rows = append(rows, row{labels: strings.Split(k, "\x1f"), v: float64(v.children[k].Value())})
	}
	v.mu.Unlock()
	for _, r := range rows {
		sample(w, v.nameStr, v.keys, r.labels, r.v)
	}
}

// Histogram is a fixed-bucket distribution with atomic observation:
// Observe does one binary search, one bucket increment, and one CAS-added
// sum. Buckets are upper bounds in ascending order; +Inf is implicit.
type Histogram struct {
	nameStr, help string
	bounds        []float64
	counts        []atomic.Uint64 // one per bound, plus the +Inf overflow
	sumBits       atomic.Uint64
	count         atomic.Uint64
}

// Histogram registers and returns a histogram over the given bucket upper
// bounds (ascending; nil means DefBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %s buckets not ascending", name))
		}
	}
	h := &Histogram{
		nameStr: name,
		help:    help,
		bounds:  append([]float64(nil), bounds...),
		counts:  make([]atomic.Uint64, len(bounds)+1),
	}
	r.add(h)
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns how many values have been observed.
func (h *Histogram) Count() uint64 { return h.count.Load() }

func (h *Histogram) name() string { return h.nameStr }
func (h *Histogram) write(w *bufio.Writer) {
	header(w, h.nameStr, h.help, "histogram")
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		sample(w, h.nameStr+"_bucket", []string{"le"}, []string{formatValue(b)}, float64(cum))
	}
	cum += h.counts[len(h.bounds)].Load()
	sample(w, h.nameStr+"_bucket", []string{"le"}, []string{"+Inf"}, float64(cum))
	sample(w, h.nameStr+"_sum", nil, nil, math.Float64frombits(h.sumBits.Load()))
	sample(w, h.nameStr+"_count", nil, nil, float64(h.count.Load()))
}
