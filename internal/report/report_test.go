package report

import (
	"strings"
	"testing"
)

func TestRenderAlignment(t *testing.T) {
	tb := NewTable("Demo", "name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRow("b", "22222")
	out := tb.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("expected 5 lines, got %d:\n%s", len(lines), out)
	}
	if lines[0] != "Demo" {
		t.Errorf("title line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "name") {
		t.Errorf("header line = %q", lines[1])
	}
	// Column 2 should start at the same offset in all body rows.
	idx3 := strings.Index(lines[3], "1")
	idx4 := strings.Index(lines[4], "22222")
	if idx3 != idx4 {
		t.Errorf("column 2 misaligned: %d vs %d\n%s", idx3, idx4, out)
	}
}

func TestRenderNoTitleNoHeaders(t *testing.T) {
	tb := &Table{}
	tb.AddRow("x", "y")
	out := tb.Render()
	if strings.Contains(out, "---") {
		t.Errorf("separator printed without headers:\n%s", out)
	}
	if !strings.Contains(out, "x  y") {
		t.Errorf("row missing: %q", out)
	}
}

func TestRaggedRowsPadded(t *testing.T) {
	tb := NewTable("", "a", "b", "c")
	tb.AddRow("only")
	out := tb.Render()
	if !strings.Contains(out, "only") {
		t.Errorf("ragged row lost: %q", out)
	}
}

func TestAddRowfFormatsFloats(t *testing.T) {
	tb := NewTable("", "v")
	tb.AddRowf(5.0)
	tb.AddRowf(0.123456)
	tb.AddRowf(42)
	tb.AddRowf("str")
	if tb.Rows[0][0] != "5" {
		t.Errorf("integer float rendered as %q", tb.Rows[0][0])
	}
	if tb.Rows[1][0] != "0.123" {
		t.Errorf("fraction rendered as %q", tb.Rows[1][0])
	}
	if tb.Rows[2][0] != "42" {
		t.Errorf("int rendered as %q", tb.Rows[2][0])
	}
	if tb.Rows[3][0] != "str" {
		t.Errorf("string rendered as %q", tb.Rows[3][0])
	}
}

func TestFormatFloat(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{1, "1"}, {0.5, "0.5"}, {0.25, "0.25"}, {1.0 / 3, "0.333"}, {-2, "-2"}, {97.0, "97"},
	}
	for _, c := range cases {
		if got := FormatFloat(c.in); got != c.want {
			t.Errorf("FormatFloat(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestPercent(t *testing.T) {
	if got := Percent(0.5312); got != "53.1%" {
		t.Errorf("Percent = %q", got)
	}
	if got := Percent(1); got != "100.0%" {
		t.Errorf("Percent(1) = %q", got)
	}
}

func TestMarkdown(t *testing.T) {
	tb := NewTable("T", "h1", "h2")
	tb.AddRow("a", "b")
	md := tb.Markdown()
	if !strings.Contains(md, "**T**") {
		t.Errorf("markdown missing title: %q", md)
	}
	if !strings.Contains(md, "| h1 | h2 |") {
		t.Errorf("markdown missing header: %q", md)
	}
	if !strings.Contains(md, "|---|---|") {
		t.Errorf("markdown missing separator: %q", md)
	}
	if !strings.Contains(md, "| a | b |") {
		t.Errorf("markdown missing row: %q", md)
	}
}

func TestCSVQuoting(t *testing.T) {
	tb := NewTable("", "x", "y")
	tb.AddRow(`has,comma`, `has"quote`)
	csv := tb.CSV()
	if !strings.Contains(csv, `"has,comma"`) {
		t.Errorf("comma cell not quoted: %q", csv)
	}
	if !strings.Contains(csv, `"has""quote"`) {
		t.Errorf("quote cell not escaped: %q", csv)
	}
	if !strings.HasPrefix(csv, "x,y\n") {
		t.Errorf("csv header wrong: %q", csv)
	}
}
