// Package report renders experiment results as aligned text tables,
// Markdown, and CSV. The experiment harness uses it to print tables in the
// same row/column shape as the paper so paper-vs-measured comparison is a
// side-by-side read.
package report

import (
	"fmt"
	"strings"
)

// Table is a simple rectangular table with a title, a header row, and body
// rows. Ragged rows are padded with empty cells at render time.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a body row. Cells beyond the header width are kept and
// widen the table.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddRowf appends a row where each cell is rendered with fmt.Sprint.
func (t *Table) AddRowf(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// FormatFloat renders a float compactly: integers without a decimal point,
// otherwise up to three significant decimals.
func FormatFloat(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.3f", v), "0"), ".")
}

// Percent renders a fraction in [0,1] as a percentage with one decimal,
// e.g. 0.5312 → "53.1%".
func Percent(frac float64) string {
	return fmt.Sprintf("%.1f%%", frac*100)
}

func (t *Table) width() int {
	w := len(t.Headers)
	for _, r := range t.Rows {
		if len(r) > w {
			w = len(r)
		}
	}
	return w
}

func (t *Table) columnWidths() []int {
	n := t.width()
	widths := make([]int, n)
	for i, h := range t.Headers {
		if len(h) > widths[i] {
			widths[i] = len(h)
		}
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	return widths
}

// Render returns the table as aligned plain text.
func (t *Table) Render() string {
	var sb strings.Builder
	widths := t.columnWidths()
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i := 0; i < len(widths); i++ {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			sb.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
		}
		// Trim trailing padding for clean diffs.
		out := sb.String()
		trimmed := strings.TrimRight(out, " ")
		sb.Reset()
		sb.WriteString(trimmed)
		sb.WriteByte('\n')
	}
	if len(t.Headers) > 0 {
		writeRow(t.Headers)
		total := 0
		for i, w := range widths {
			if i > 0 {
				total += 2
			}
			total += w
		}
		sb.WriteString(strings.Repeat("-", total))
		sb.WriteByte('\n')
	}
	for _, r := range t.Rows {
		writeRow(r)
	}
	return sb.String()
}

// Markdown returns the table as a GitHub-flavored Markdown table.
func (t *Table) Markdown() string {
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "**%s**\n\n", t.Title)
	}
	n := t.width()
	row := func(cells []string) {
		sb.WriteByte('|')
		for i := 0; i < n; i++ {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			sb.WriteString(" " + cell + " |")
		}
		sb.WriteByte('\n')
	}
	row(t.Headers)
	sb.WriteByte('|')
	for i := 0; i < n; i++ {
		sb.WriteString("---|")
	}
	sb.WriteByte('\n')
	for _, r := range t.Rows {
		row(r)
	}
	return sb.String()
}

// CSV returns the table in RFC-4180-ish CSV (quotes applied only where
// needed). The title is not included.
func (t *Table) CSV() string {
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				sb.WriteString(`"` + strings.ReplaceAll(c, `"`, `""`) + `"`)
			} else {
				sb.WriteString(c)
			}
		}
		sb.WriteByte('\n')
	}
	if len(t.Headers) > 0 {
		writeRow(t.Headers)
	}
	for _, r := range t.Rows {
		writeRow(r)
	}
	return sb.String()
}
