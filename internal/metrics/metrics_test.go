package metrics

import (
	"math"
	"testing"

	"adhocga/internal/game"
	"adhocga/internal/network"
	"adhocga/internal/rng"
	"adhocga/internal/strategy"
	"adhocga/internal/tournament"
)

func players() (src *game.Player, normal *game.Player, selfish *game.Player) {
	return game.NewNormal(0, strategy.AllForward()),
		game.NewNormal(1, strategy.AllForward()),
		game.NewSelfish(2)
}

func TestRecordGameDelivered(t *testing.T) {
	c := NewCollector()
	src, n1, _ := players()
	c.RecordGame(src, []*game.Player{n1}, -1)
	envs := c.Environments()
	if len(envs) != 1 {
		t.Fatalf("%d environments", len(envs))
	}
	if envs[0].NormalGames != 1 || envs[0].NormalDelivered != 1 {
		t.Errorf("env stats %+v", envs[0])
	}
	if envs[0].CSNFreePaths != 1 {
		t.Errorf("CSN-free count %d, want 1", envs[0].CSNFreePaths)
	}
	if c.CooperationLevel() != 1 {
		t.Errorf("coop level %v", c.CooperationLevel())
	}
	if c.FromNormal.Accepted != 1 || c.FromNormal.Total() != 1 {
		t.Errorf("request counts %+v", c.FromNormal)
	}
}

func TestRecordGameDroppedBySelfish(t *testing.T) {
	c := NewCollector()
	src, n1, s1 := players()
	// Path: n1 forwards, s1 drops, (hypothetical third never receives).
	third := game.NewNormal(3, strategy.AllForward())
	c.RecordGame(src, []*game.Player{n1, s1, third}, 1)
	envs := c.Environments()
	if envs[0].NormalDelivered != 0 || envs[0].NormalGames != 1 {
		t.Errorf("env stats %+v", envs[0])
	}
	if envs[0].CSNFreePaths != 0 {
		t.Error("path with CSN counted as CSN-free")
	}
	// Requests: n1 accepted, s1 rejected; third never decided.
	if c.FromNormal.Accepted != 1 || c.FromNormal.RejectedBySelfish != 1 || c.FromNormal.RejectedByNormal != 0 {
		t.Errorf("request counts %+v", c.FromNormal)
	}
	if c.FromNormal.Total() != 2 {
		t.Errorf("total requests %d, want 2", c.FromNormal.Total())
	}
}

func TestRecordGameDroppedByNormal(t *testing.T) {
	c := NewCollector()
	src := game.NewNormal(0, strategy.AllForward())
	dropper := game.NewNormal(1, strategy.AllDiscard())
	c.RecordGame(src, []*game.Player{dropper}, 0)
	if c.FromNormal.RejectedByNormal != 1 {
		t.Errorf("request counts %+v", c.FromNormal)
	}
	if c.CooperationLevel() != 0 {
		t.Errorf("coop level %v", c.CooperationLevel())
	}
}

func TestRecordGameFromCSNSource(t *testing.T) {
	c := NewCollector()
	csnSrc := game.NewSelfish(9)
	n1 := game.NewNormal(1, strategy.AllForward())
	c.RecordGame(csnSrc, []*game.Player{n1}, -1)
	// CSN-sourced games do not contribute to the cooperation level.
	if c.Environments()[0].NormalGames != 0 {
		t.Error("CSN game counted as normal game")
	}
	if c.FromCSN.Accepted != 1 || c.FromNormal.Total() != 0 {
		t.Errorf("CSN request counts %+v / %+v", c.FromCSN, c.FromNormal)
	}
}

func TestPerEnvironmentSeparation(t *testing.T) {
	c := NewCollector()
	src, n1, _ := players()
	c.BeginEnvironment(0, tournament.Environment{Name: "TE1"})
	c.RecordGame(src, []*game.Player{n1}, -1)
	c.RecordGame(src, []*game.Player{n1}, -1)
	c.BeginEnvironment(1, tournament.Environment{Name: "TE2"})
	c.RecordGame(src, []*game.Player{n1}, 0)
	envs := c.Environments()
	if len(envs) != 2 {
		t.Fatalf("%d environments", len(envs))
	}
	if envs[0].Name != "TE1" || envs[1].Name != "TE2" {
		t.Errorf("names %q, %q", envs[0].Name, envs[1].Name)
	}
	if envs[0].CooperationLevel() != 1 {
		t.Errorf("TE1 coop %v", envs[0].CooperationLevel())
	}
	if envs[1].CooperationLevel() != 0 {
		t.Errorf("TE2 coop %v", envs[1].CooperationLevel())
	}
	// Overall: 2 of 3 delivered.
	if math.Abs(c.CooperationLevel()-2.0/3.0) > 1e-12 {
		t.Errorf("overall coop %v", c.CooperationLevel())
	}
	// Unweighted env mean: (1 + 0)/2.
	if math.Abs(c.MeanEnvCooperation()-0.5) > 1e-12 {
		t.Errorf("mean env coop %v", c.MeanEnvCooperation())
	}
	per := c.CooperationPerEnv()
	if len(per) != 2 || per[0] != 1 || per[1] != 0 {
		t.Errorf("per-env coop %v", per)
	}
}

func TestFractions(t *testing.T) {
	rc := ResponseCounts{Accepted: 6, RejectedByNormal: 3, RejectedBySelfish: 1}
	a, rn, rs := rc.Fractions()
	if math.Abs(a-0.6) > 1e-12 || math.Abs(rn-0.3) > 1e-12 || math.Abs(rs-0.1) > 1e-12 {
		t.Errorf("fractions %v %v %v", a, rn, rs)
	}
	var empty ResponseCounts
	a, rn, rs = empty.Fractions()
	if a != 0 || rn != 0 || rs != 0 {
		t.Error("empty fractions nonzero")
	}
}

func TestCollectorReset(t *testing.T) {
	c := NewCollector()
	src, n1, _ := players()
	c.BeginEnvironment(0, tournament.Environment{Name: "X"})
	c.RecordGame(src, []*game.Player{n1}, -1)
	c.Reset()
	if len(c.Environments()) != 0 || c.FromNormal.Total() != 0 {
		t.Error("Reset left data behind")
	}
	// Usable after reset.
	c.RecordGame(src, []*game.Player{n1}, -1)
	if c.CooperationLevel() != 1 {
		t.Error("collector unusable after Reset")
	}
}

func TestEmptyCollector(t *testing.T) {
	c := NewCollector()
	if c.CooperationLevel() != 0 || c.MeanEnvCooperation() != 0 {
		t.Error("empty collector should report 0")
	}
	var e EnvStats
	if e.CooperationLevel() != 0 || e.CSNFreeFraction() != 0 {
		t.Error("empty env stats should report 0")
	}
}

// Integration: run a real evaluation and check the collector's books
// balance against the players' accounts.
func TestCollectorAgainstEvaluation(t *testing.T) {
	normals := make([]*game.Player, 30)
	for i := range normals {
		normals[i] = game.NewNormal(network.NodeID(i), strategy.ForwardAtOrAbove(strategy.Trust1, strategy.Forward))
	}
	csn := []*game.Player{game.NewSelfish(30), game.NewSelfish(31), game.NewSelfish(32)}
	registry := tournament.BuildRegistry(normals, csn)
	cfg := &tournament.EvalConfig{
		TournamentSize: 15,
		PlaysPerEnv:    1,
		Environments:   []tournament.Environment{{Name: "A", CSN: 0}, {Name: "B", CSN: 3}},
		Tournament: tournament.Config{
			Rounds: 20,
			Mode:   network.ShorterPaths(),
			Game:   game.DefaultConfig(),
		},
	}
	c := NewCollector()
	gen := network.NewGenerator(cfg.Tournament.Mode)
	if err := tournament.Evaluate(normals, csn, registry, cfg, gen, rng.New(13), c); err != nil {
		t.Fatal(err)
	}
	// Books: collector's normal games == Σ normal players' Sent;
	// delivered likewise.
	var sent, delivered uint64
	for _, p := range normals {
		sent += uint64(p.Acct.Sent)
		delivered += uint64(p.Acct.Delivered)
	}
	var games, del uint64
	for _, e := range c.Environments() {
		games += e.NormalGames
		del += e.NormalDelivered
	}
	if games != sent || del != delivered {
		t.Errorf("collector books (%d games, %d delivered) disagree with accounts (%d, %d)",
			games, del, sent, delivered)
	}
	// Requests: total accepted == Σ forwards across all players.
	var forwards, discards uint64
	for _, p := range normals {
		forwards += uint64(p.Acct.Forwards)
		discards += uint64(p.Acct.Discards)
	}
	for _, p := range csn {
		forwards += uint64(p.Acct.Forwards)
		discards += uint64(p.Acct.Discards)
	}
	accepted := c.FromNormal.Accepted + c.FromCSN.Accepted
	rejected := c.FromNormal.RejectedByNormal + c.FromNormal.RejectedBySelfish +
		c.FromCSN.RejectedByNormal + c.FromCSN.RejectedBySelfish
	if accepted != forwards || rejected != discards {
		t.Errorf("request books (acc %d, rej %d) disagree with accounts (fwd %d, disc %d)",
			accepted, rejected, forwards, discards)
	}
}
