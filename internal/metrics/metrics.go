// Package metrics aggregates the observables the paper reports: the
// cooperation level (Fig 4, Table 5), CSN-free path fractions (Table 5),
// and the response to packet forwarding requests broken down by the type
// of the requesting and rejecting node (Table 6).
//
// A Collector implements the tournament.Recorder interface and is wired
// through one generation's evaluation pass.
package metrics

import (
	"adhocga/internal/game"
	"adhocga/internal/tournament"
)

// EnvStats aggregates per-environment observables.
type EnvStats struct {
	Name string
	// NormalGames counts games originated by normal nodes; Delivered
	// counts how many of those reached the destination. Their ratio is the
	// paper's cooperation level (§6.2).
	NormalGames     uint64
	NormalDelivered uint64
	// CSNFreePaths counts normal-originated games whose chosen route
	// contained no constantly selfish node (Table 5, last columns).
	CSNFreePaths uint64
}

// CooperationLevel returns the fraction of normal-originated packets that
// reached the destination, or 0 when no games were recorded.
func (e *EnvStats) CooperationLevel() float64 {
	if e.NormalGames == 0 {
		return 0
	}
	return float64(e.NormalDelivered) / float64(e.NormalGames)
}

// CSNFreeFraction returns the fraction of normal-originated games whose
// route avoided every CSN.
func (e *EnvStats) CSNFreeFraction() float64 {
	if e.NormalGames == 0 {
		return 0
	}
	return float64(e.CSNFreePaths) / float64(e.NormalGames)
}

// ResponseCounts tallies what happened to forwarding requests: accepted
// (forwarded), rejected by a normal player, or rejected by a CSN
// (Table 6's three rows). Drops by Byzantine adversaries (the dynamics
// extension) are tallied separately so Table 6's CSN attribution stays
// comparable with the paper.
type ResponseCounts struct {
	Accepted            uint64
	RejectedByNormal    uint64
	RejectedBySelfish   uint64
	RejectedByByzantine uint64
}

// Total returns the number of requests recorded.
func (r ResponseCounts) Total() uint64 {
	return r.Accepted + r.RejectedByNormal + r.RejectedBySelfish + r.RejectedByByzantine
}

// Fractions returns the shares of Total for the paper's three Table 6
// rows — accepted, rejected-by-normal, rejected-by-CSN — or zeros when
// empty. Byzantine rejections count toward Total but have no share here,
// so in dynamics runs the three values may sum below 1; compute
// RejectedByByzantine/Total for the fourth share.
func (r ResponseCounts) Fractions() (accepted, rejNormal, rejSelfish float64) {
	t := r.Total()
	if t == 0 {
		return 0, 0, 0
	}
	return float64(r.Accepted) / float64(t),
		float64(r.RejectedByNormal) / float64(t),
		float64(r.RejectedBySelfish) / float64(t)
}

// Collector implements tournament.Recorder and accumulates all paper
// observables over one evaluation pass (one generation). The zero value is
// NOT usable; call NewCollector.
type Collector struct {
	envs []EnvStats
	cur  *EnvStats

	// Requests from normal players and from CSN (Table 6 columns), plus
	// the requests Byzantine adversaries sourced (dynamics extension).
	FromNormal ResponseCounts
	FromCSN    ResponseCounts
	FromByz    ResponseCounts
}

// NewCollector returns an empty Collector.
func NewCollector() *Collector { return &Collector{} }

var _ tournament.Recorder = (*Collector)(nil)

// BeginEnvironment starts aggregation for the environment at the given
// index; part of tournament.Recorder.
func (c *Collector) BeginEnvironment(index int, env tournament.Environment) {
	for len(c.envs) <= index {
		c.envs = append(c.envs, EnvStats{})
	}
	c.envs[index].Name = env.Name
	c.cur = &c.envs[index]
}

// RecordGame ingests one completed game; part of game.Recorder. When no
// BeginEnvironment was seen, games land in an implicit environment 0.
func (c *Collector) RecordGame(src *game.Player, inters []*game.Player, firstDrop int) {
	if c.cur == nil {
		c.BeginEnvironment(0, tournament.Environment{Name: "default"})
	}
	delivered := firstDrop < 0

	if src.Type == game.Normal {
		c.cur.NormalGames++
		if delivered {
			c.cur.NormalDelivered++
		}
		hasCSN := false
		for _, p := range inters {
			if p.Type == game.Selfish {
				hasCSN = true
				break
			}
		}
		if !hasCSN {
			c.cur.CSNFreePaths++
		}
	}

	// Forwarding requests: every intermediate that received the packet
	// made a decision. On a drop at k, intermediates 0..k received it.
	received := len(inters)
	if !delivered {
		received = firstDrop + 1
	}
	counts := &c.FromNormal
	switch src.Type {
	case game.Selfish:
		counts = &c.FromCSN
	case game.Byzantine:
		counts = &c.FromByz
	}
	for i := 0; i < received; i++ {
		forwarded := delivered || i < firstDrop
		switch {
		case forwarded:
			counts.Accepted++
		case inters[i].Type == game.Selfish:
			counts.RejectedBySelfish++
		case inters[i].Type == game.Byzantine:
			counts.RejectedByByzantine++
		default:
			counts.RejectedByNormal++
		}
	}
}

// Environments returns the per-environment statistics in evaluation order.
func (c *Collector) Environments() []EnvStats { return c.envs }

// CooperationLevel returns the overall cooperation level: delivered /
// originated over all normal-sourced games in all environments.
func (c *Collector) CooperationLevel() float64 {
	var games, delivered uint64
	for i := range c.envs {
		games += c.envs[i].NormalGames
		delivered += c.envs[i].NormalDelivered
	}
	if games == 0 {
		return 0
	}
	return float64(delivered) / float64(games)
}

// CooperationPerEnv returns one cooperation level per environment.
func (c *Collector) CooperationPerEnv() []float64 {
	out := make([]float64, len(c.envs))
	for i := range c.envs {
		out[i] = c.envs[i].CooperationLevel()
	}
	return out
}

// MeanEnvCooperation returns the unweighted mean of the per-environment
// cooperation levels — the Fig 4 summary number for multi-environment
// cases (see DESIGN.md on the paper's swapped 38%/54% prose).
func (c *Collector) MeanEnvCooperation() float64 {
	if len(c.envs) == 0 {
		return 0
	}
	sum := 0.0
	for i := range c.envs {
		sum += c.envs[i].CooperationLevel()
	}
	return sum / float64(len(c.envs))
}

// Merge adds every count in o into c, aligning environments by index (all
// islands of a sharded run evaluate the same environment list, so index i
// means the same environment in both). The island engine uses it to build
// the run-wide view of one generation from the per-island collectors; for
// a single source it reproduces that collector's counts exactly.
func (c *Collector) Merge(o *Collector) {
	for i := range o.envs {
		for len(c.envs) <= i {
			c.envs = append(c.envs, EnvStats{})
		}
		e := &c.envs[i]
		if e.Name == "" {
			e.Name = o.envs[i].Name
		}
		e.NormalGames += o.envs[i].NormalGames
		e.NormalDelivered += o.envs[i].NormalDelivered
		e.CSNFreePaths += o.envs[i].CSNFreePaths
	}
	c.FromNormal.Add(o.FromNormal)
	c.FromCSN.Add(o.FromCSN)
	c.FromByz.Add(o.FromByz)
}

// Add accumulates every count of o into r.
func (r *ResponseCounts) Add(o ResponseCounts) {
	r.Accepted += o.Accepted
	r.RejectedByNormal += o.RejectedByNormal
	r.RejectedBySelfish += o.RejectedBySelfish
	r.RejectedByByzantine += o.RejectedByByzantine
}

// Reset clears the collector for reuse in the next generation.
func (c *Collector) Reset() {
	c.envs = c.envs[:0]
	c.cur = nil
	c.FromNormal = ResponseCounts{}
	c.FromCSN = ResponseCounts{}
	c.FromByz = ResponseCounts{}
}
