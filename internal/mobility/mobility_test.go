package mobility

import (
	"math"
	"testing"

	"adhocga/internal/rng"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig(50).Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	cases := []func(*Config){
		func(c *Config) { c.Nodes = 1 },
		func(c *Config) { c.Width = 0 },
		func(c *Config) { c.Height = -1 },
		func(c *Config) { c.Range = 0 },
		func(c *Config) { c.MinSpeed = 0 },
		func(c *Config) { c.MaxSpeed = c.MinSpeed - 1 },
		func(c *Config) { c.Pause = -1 },
	}
	for i, mutate := range cases {
		cfg := DefaultConfig(50)
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestModelStaysInBounds(t *testing.T) {
	cfg := DefaultConfig(30)
	m, err := NewModel(cfg, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 500; step++ {
		m.Step(5)
		for i := 0; i < m.Len(); i++ {
			p := m.Position(i)
			if p.X < 0 || p.X > cfg.Width || p.Y < 0 || p.Y > cfg.Height {
				t.Fatalf("node %d escaped to %+v at step %d", i, p, step)
			}
		}
	}
}

func TestModelActuallyMoves(t *testing.T) {
	m, err := NewModel(DefaultConfig(10), rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	before := make([]Point, m.Len())
	for i := range before {
		before[i] = m.Position(i)
	}
	m.Step(10)
	moved := 0
	for i := range before {
		if before[i].Dist(m.Position(i)) > 1e-9 {
			moved++
		}
	}
	if moved < m.Len()/2 {
		t.Errorf("only %d of %d nodes moved", moved, m.Len())
	}
}

func TestModelSpeedBound(t *testing.T) {
	cfg := DefaultConfig(20)
	m, err := NewModel(cfg, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 200; step++ {
		before := make([]Point, m.Len())
		for i := range before {
			before[i] = m.Position(i)
		}
		const dt = 2.0
		m.Step(dt)
		for i := range before {
			if d := before[i].Dist(m.Position(i)); d > cfg.MaxSpeed*dt+1e-9 {
				t.Fatalf("node %d moved %v in %v time (max speed %v)", i, d, dt, cfg.MaxSpeed)
			}
		}
	}
}

func TestPauseDelaysMovement(t *testing.T) {
	cfg := DefaultConfig(5)
	cfg.Pause = 1e9 // effectively forever once a waypoint is reached
	cfg.MinSpeed, cfg.MaxSpeed = 1e6, 1e6
	m, err := NewModel(cfg, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	// With enormous speed every node reaches its first waypoint within the
	// first step and then pauses forever.
	m.Step(1)
	frozen := make([]Point, m.Len())
	for i := range frozen {
		frozen[i] = m.Position(i)
	}
	m.Step(100)
	for i := range frozen {
		if frozen[i].Dist(m.Position(i)) > 1e-9 {
			t.Fatalf("node %d moved while pausing", i)
		}
	}
}

func TestInRangeSymmetricAndIrreflexive(t *testing.T) {
	m, err := NewModel(DefaultConfig(40), rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < m.Len(); i++ {
		if m.InRange(i, i) {
			t.Fatalf("node %d in range of itself", i)
		}
		for j := 0; j < m.Len(); j++ {
			if m.InRange(i, j) != m.InRange(j, i) {
				t.Fatalf("asymmetric range between %d and %d", i, j)
			}
		}
	}
}

func TestNeighborsMatchInRange(t *testing.T) {
	m, err := NewModel(DefaultConfig(30), rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < m.Len(); i++ {
		neigh := m.Neighbors(i, nil)
		seen := map[int]bool{}
		for _, j := range neigh {
			seen[j] = true
			if !m.InRange(i, j) {
				t.Fatalf("neighbor %d of %d out of range", j, i)
			}
		}
		for j := 0; j < m.Len(); j++ {
			if m.InRange(i, j) && !seen[j] {
				t.Fatalf("in-range node %d missing from neighbors of %d", j, i)
			}
		}
	}
}

func TestGraphSubsetExcludesOthers(t *testing.T) {
	cfg := DefaultConfig(10)
	cfg.Range = 1e9 // fully connected
	m, err := NewModel(cfg, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	g := m.Graph([]int{0, 1, 2})
	if g.Degree(0) != 2 || g.Degree(5) != 0 {
		t.Errorf("subset degrees wrong: %d, %d", g.Degree(0), g.Degree(5))
	}
	if !g.Adjacent(0, 1) || g.Adjacent(0, 5) {
		t.Error("subset adjacency wrong")
	}
}

func TestPointDist(t *testing.T) {
	a, b := Point{0, 0}, Point{3, 4}
	if d := a.Dist(b); math.Abs(d-5) > 1e-12 {
		t.Errorf("Dist = %v", d)
	}
}
