package mobility

// Graph is an undirected connectivity snapshot. Node IDs are model
// indexes; nodes excluded from the snapshot simply have no edges.
type Graph struct {
	n   int
	adj [][]int
}

// Len returns the number of node slots (including excluded ones).
func (g *Graph) Len() int { return g.n }

// Degree returns the number of neighbors of node i.
func (g *Graph) Degree(i int) int { return len(g.adj[i]) }

// Adjacent reports whether i and j share an edge.
func (g *Graph) Adjacent(i, j int) bool {
	for _, k := range g.adj[i] {
		if k == j {
			return true
		}
	}
	return false
}

// ShortestPath returns the minimum-hop path from src to dst (inclusive of
// both endpoints) via breadth-first search, or nil if dst is unreachable.
// blocked nodes (may be nil) are treated as absent; src and dst are never
// considered blocked.
func (g *Graph) ShortestPath(src, dst int, blocked []bool) []int {
	if src == dst {
		return []int{src}
	}
	prev := make([]int, g.n)
	for i := range prev {
		prev[i] = -1
	}
	prev[src] = src
	queue := []int{src}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, next := range g.adj[cur] {
			if prev[next] != -1 || (blocked != nil && blocked[next] && next != dst) {
				continue
			}
			prev[next] = cur
			if next == dst {
				// Reconstruct.
				var path []int
				for at := dst; at != src; at = prev[at] {
					path = append(path, at)
				}
				path = append(path, src)
				for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
					path[i], path[j] = path[j], path[i]
				}
				return path
			}
			queue = append(queue, next)
		}
	}
	return nil
}

// DisjointPaths returns up to k paths from src to dst whose intermediate
// nodes are pairwise disjoint, shortest first, by repeated BFS with the
// previous paths' intermediates removed. Returns nil if dst is
// unreachable.
func (g *Graph) DisjointPaths(src, dst, k int) [][]int {
	var paths [][]int
	blocked := make([]bool, g.n)
	for len(paths) < k {
		p := g.ShortestPath(src, dst, blocked)
		if p == nil {
			break
		}
		paths = append(paths, p)
		for _, node := range p[1 : len(p)-1] {
			blocked[node] = true
		}
		if len(p) == 2 {
			// Direct edge: no intermediates to remove, and any further
			// "path" would just repeat it.
			break
		}
	}
	return paths
}

// Reachable reports whether dst can be reached from src.
func (g *Graph) Reachable(src, dst int) bool {
	return g.ShortestPath(src, dst, nil) != nil
}

// ComponentSize returns the number of nodes in src's connected component
// (counting src).
func (g *Graph) ComponentSize(src int) int {
	seen := make([]bool, g.n)
	seen[src] = true
	queue := []int{src}
	count := 1
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, next := range g.adj[cur] {
			if !seen[next] {
				seen[next] = true
				count++
				queue = append(queue, next)
			}
		}
	}
	return count
}
