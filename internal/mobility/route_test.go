package mobility

import (
	"testing"

	"adhocga/internal/game"
	"adhocga/internal/network"
	"adhocga/internal/rng"
	"adhocga/internal/strategy"
	"adhocga/internal/tournament"
)

func participantIDs(n int) []network.NodeID {
	ids := make([]network.NodeID, n)
	for i := range ids {
		ids[i] = network.NodeID(i)
	}
	return ids
}

func TestRouteProviderInvariants(t *testing.T) {
	r := rng.New(1)
	m, err := NewModel(DefaultConfig(40), r)
	if err != nil {
		t.Fatal(err)
	}
	rp := NewRouteProvider(m, 1)
	ids := participantIDs(40)
	routesSeen := 0
	for trial := 0; trial < 500; trial++ {
		src := network.NodeID(r.Intn(40))
		paths := rp.Candidates(r, src, ids)
		if len(paths) == 0 {
			continue // partitioned this instant; allowed
		}
		routesSeen++
		dst := paths[0].Dst
		for _, p := range paths {
			if p.Src != src || p.Dst != dst {
				t.Fatalf("endpoints inconsistent: %+v", p)
			}
			if p.Dst == src {
				t.Fatal("destination equals source")
			}
			seen := map[network.NodeID]bool{src: true, p.Dst: true}
			for _, id := range p.Intermediates {
				if seen[id] {
					t.Fatalf("duplicate node in path %v", p)
				}
				seen[id] = true
			}
		}
		if len(paths) > rp.MaxAlternates {
			t.Fatalf("%d alternates exceed cap", len(paths))
		}
	}
	if routesSeen == 0 {
		t.Fatal("no routes found in 500 trials; world too sparse for the test")
	}
}

func TestRouteProviderRespectsParticipantSubset(t *testing.T) {
	r := rng.New(2)
	cfg := DefaultConfig(30)
	cfg.Range = 1e9 // fully connected so routing always succeeds
	m, err := NewModel(cfg, r)
	if err != nil {
		t.Fatal(err)
	}
	rp := NewRouteProvider(m, 1)
	subset := []network.NodeID{0, 5, 7, 9, 11}
	for trial := 0; trial < 200; trial++ {
		paths := rp.Candidates(r, 0, subset)
		if len(paths) == 0 {
			t.Fatal("no route in a fully connected world")
		}
		for _, p := range paths {
			members := map[network.NodeID]bool{}
			for _, id := range subset {
				members[id] = true
			}
			if !members[p.Dst] {
				t.Fatalf("destination %d outside participant subset", p.Dst)
			}
			for _, id := range p.Intermediates {
				if !members[id] {
					t.Fatalf("intermediate %d outside participant subset", id)
				}
			}
		}
	}
}

func TestRouteProviderPanicsOnForeignID(t *testing.T) {
	r := rng.New(3)
	m, err := NewModel(DefaultConfig(10), r)
	if err != nil {
		t.Fatal(err)
	}
	rp := NewRouteProvider(m, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for out-of-model participant")
		}
	}()
	rp.Candidates(r, 0, []network.NodeID{0, 99})
}

func TestRouteProviderPartitionReturnsEmpty(t *testing.T) {
	r := rng.New(4)
	cfg := DefaultConfig(10)
	cfg.Range = 1e-6 // nobody can hear anybody
	m, err := NewModel(cfg, r)
	if err != nil {
		t.Fatal(err)
	}
	rp := NewRouteProvider(m, 0) // no movement either
	if paths := rp.Candidates(r, 0, participantIDs(10)); len(paths) != 0 {
		t.Errorf("found %d paths in a silent world", len(paths))
	}
}

func TestHopHistogramDensityEffect(t *testing.T) {
	r := rng.New(5)
	ids := participantIDs(50)

	dense := DefaultConfig(50)
	dense.Range = 600
	md, err := NewModel(dense, r)
	if err != nil {
		t.Fatal(err)
	}
	histD, _ := NewRouteProvider(md, 1).HopHistogram(r, ids, 2000)

	sparse := DefaultConfig(50)
	sparse.Range = 220
	ms, err := NewModel(sparse, r)
	if err != nil {
		t.Fatal(err)
	}
	histS, _ := NewRouteProvider(ms, 1).HopHistogram(r, ids, 2000)

	meanHops := func(h map[int]int) float64 {
		total, sum := 0, 0
		for hops, count := range h {
			total += count
			sum += hops * count
		}
		if total == 0 {
			return 0
		}
		return float64(sum) / float64(total)
	}
	if meanHops(histD) >= meanHops(histS) {
		t.Errorf("denser radio range should shorten routes: dense %.2f vs sparse %.2f",
			meanHops(histD), meanHops(histS))
	}
}

// Integration: the full game stack running over a geometric topology. The
// reputation mechanism must still punish CSN even though routes now come
// from real connectivity.
func TestGeometricTournamentPunishesSelfish(t *testing.T) {
	r := rng.New(6)
	const nNormal, nCSN = 35, 10
	cfg := DefaultConfig(nNormal + nCSN)
	cfg.Range = 320
	m, err := NewModel(cfg, r)
	if err != nil {
		t.Fatal(err)
	}
	rp := NewRouteProvider(m, 0.5)

	normals := make([]*game.Player, nNormal)
	for i := range normals {
		normals[i] = game.NewNormal(network.NodeID(i), strategy.ForwardAtOrAbove(strategy.Trust1, strategy.Forward))
	}
	csn := make([]*game.Player, nCSN)
	for i := range csn {
		csn[i] = game.NewSelfish(network.NodeID(nNormal + i))
	}
	all := append(append([]*game.Player{}, normals...), csn...)
	registry := tournament.BuildRegistry(normals, csn)
	tcfg := &tournament.Config{
		Rounds: 200,
		Mode:   network.ShorterPaths(), // unused by the provider, but required by validation elsewhere
		Game:   game.DefaultConfig(),
	}
	tournament.Play(all, registry, tcfg, rp, r, nil)

	rate := func(ps []*game.Player) float64 {
		sent, delivered := 0, 0
		for _, p := range ps {
			sent += p.Acct.Sent
			delivered += p.Acct.Delivered
		}
		if sent == 0 {
			return 0
		}
		return float64(delivered) / float64(sent)
	}
	nr, cr := rate(normals), rate(csn)
	if nr <= cr {
		t.Errorf("normal delivery %.3f not above CSN delivery %.3f on geometric topology", nr, cr)
	}
	if nr < 0.3 {
		t.Errorf("normal delivery %.3f suspiciously low; routing may be broken", nr)
	}
}

func BenchmarkRouteProviderCandidates(b *testing.B) {
	r := rng.New(1)
	m, err := NewModel(DefaultConfig(50), r)
	if err != nil {
		b.Fatal(err)
	}
	rp := NewRouteProvider(m, 0.5)
	ids := participantIDs(50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = rp.Candidates(r, network.NodeID(i%50), ids)
	}
}
