package mobility

import (
	"fmt"

	"adhocga/internal/network"
	"adhocga/internal/rng"
)

// RouteProvider adapts a mobility Model to tournament.PathProvider: routes
// are discovered on the current geometric topology (source-routed
// min-hop, with node-disjoint alternates), and the model advances between
// route lookups so topology actually changes under the game.
//
// NodeIDs map identically onto model indexes; every participant ID must be
// below Model.Len(). A RouteProvider is not safe for concurrent use.
type RouteProvider struct {
	model *Model
	// StepPerGame is how much simulated time passes before each route
	// lookup; larger values mean faster topology churn per game.
	StepPerGame float64
	// MaxAlternates bounds the number of disjoint candidate routes
	// presented to the source (the abstract model's Table 3 allows up to
	// 3).
	MaxAlternates int
	// MaxDestinationTries bounds how many random destinations are probed
	// before concluding the source is partitioned this round.
	MaxDestinationTries int

	dstScratch []int
	subset     []int
	paths      []network.Path
}

// NewRouteProvider returns a provider with the given churn per game and up
// to 3 alternate routes.
func NewRouteProvider(m *Model, stepPerGame float64) *RouteProvider {
	return &RouteProvider{
		model:               m,
		StepPerGame:         stepPerGame,
		MaxAlternates:       network.MaxAlternatePaths,
		MaxDestinationTries: 8,
	}
}

// Candidates implements tournament.PathProvider. It advances the mobility
// model, snapshots connectivity restricted to the participants, picks a
// random reachable destination, and returns up to MaxAlternates
// node-disjoint routes to it. An empty slice means the source currently
// has no route to any probed destination.
//
// The returned paths and their intermediate slices are scratch buffers
// owned by the provider (like network.Generator.Candidates) and are valid
// until the next Candidates call; callers that retain paths must copy.
func (rp *RouteProvider) Candidates(r *rng.Source, src network.NodeID, participants []network.NodeID) []network.Path {
	if int(src) >= rp.model.Len() {
		panic(fmt.Sprintf("mobility: participant %d outside model of %d nodes", src, rp.model.Len()))
	}
	rp.model.Step(rp.StepPerGame)

	rp.subset = rp.subset[:0]
	rp.dstScratch = rp.dstScratch[:0]
	for _, id := range participants {
		if int(id) >= rp.model.Len() {
			panic(fmt.Sprintf("mobility: participant %d outside model of %d nodes", id, rp.model.Len()))
		}
		rp.subset = append(rp.subset, int(id))
		if id != src {
			rp.dstScratch = append(rp.dstScratch, int(id))
		}
	}
	g := rp.model.Graph(rp.subset)

	tries := rp.MaxDestinationTries
	if tries <= 0 || tries > len(rp.dstScratch) {
		tries = len(rp.dstScratch)
	}
	// Partial shuffle: probe destinations in random order without bias.
	for i := 0; i < tries; i++ {
		j := i + r.Intn(len(rp.dstScratch)-i)
		rp.dstScratch[i], rp.dstScratch[j] = rp.dstScratch[j], rp.dstScratch[i]
		dst := rp.dstScratch[i]
		raw := g.DisjointPaths(int(src), dst, rp.MaxAlternates)
		if len(raw) == 0 {
			continue
		}
		if cap(rp.paths) < len(raw) {
			rp.paths = make([]network.Path, len(raw))
		}
		out := rp.paths[:len(raw)]
		for k, p := range raw {
			inter := out[k].Intermediates
			if cap(inter) < len(p)-2 {
				inter = make([]network.NodeID, len(p)-2)
			}
			inter = inter[:len(p)-2]
			for x, node := range p[1 : len(p)-1] {
				inter[x] = network.NodeID(node)
			}
			out[k] = network.Path{Src: src, Dst: network.NodeID(dst), Intermediates: inter}
		}
		rp.paths = out
		return out
	}
	return nil
}

// HopHistogram samples n route lookups from random sources among the
// participants and returns the distribution of hop counts (index = hops;
// unreachable lookups are counted in the returned misses). It is a
// validation helper for comparing geometric topologies against the
// paper's abstract Table 2 distributions.
func (rp *RouteProvider) HopHistogram(r *rng.Source, participants []network.NodeID, n int) (hist map[int]int, misses int) {
	hist = make(map[int]int)
	for i := 0; i < n; i++ {
		src := participants[r.Intn(len(participants))]
		paths := rp.Candidates(r, src, participants)
		if len(paths) == 0 {
			misses++
			continue
		}
		hist[paths[0].Hops()]++
	}
	return hist, misses
}
