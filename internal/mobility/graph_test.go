package mobility

import (
	"testing"

	"adhocga/internal/rng"
)

// line builds a path graph 0-1-2-...-n-1.
func line(n int) *Graph {
	g := &Graph{n: n, adj: make([][]int, n)}
	for i := 0; i+1 < n; i++ {
		g.adj[i] = append(g.adj[i], i+1)
		g.adj[i+1] = append(g.adj[i+1], i)
	}
	return g
}

// diamond builds src=0, dst=3 with two disjoint 2-hop routes via 1 and 2.
func diamond() *Graph {
	g := &Graph{n: 4, adj: make([][]int, 4)}
	add := func(a, b int) {
		g.adj[a] = append(g.adj[a], b)
		g.adj[b] = append(g.adj[b], a)
	}
	add(0, 1)
	add(1, 3)
	add(0, 2)
	add(2, 3)
	return g
}

func TestShortestPathLine(t *testing.T) {
	g := line(5)
	p := g.ShortestPath(0, 4, nil)
	if len(p) != 5 {
		t.Fatalf("path %v", p)
	}
	for i, node := range p {
		if node != i {
			t.Fatalf("path %v not the line", p)
		}
	}
	if got := g.ShortestPath(2, 2, nil); len(got) != 1 || got[0] != 2 {
		t.Errorf("self path = %v", got)
	}
}

func TestShortestPathUnreachable(t *testing.T) {
	g := &Graph{n: 4, adj: make([][]int, 4)}
	g.adj[0] = []int{1}
	g.adj[1] = []int{0}
	if p := g.ShortestPath(0, 3, nil); p != nil {
		t.Errorf("found path %v across components", p)
	}
	if g.Reachable(0, 3) {
		t.Error("Reachable across components")
	}
	if !g.Reachable(0, 1) {
		t.Error("adjacent nodes unreachable")
	}
}

func TestShortestPathRespectsBlocked(t *testing.T) {
	g := diamond()
	blocked := make([]bool, 4)
	blocked[1] = true
	p := g.ShortestPath(0, 3, blocked)
	if len(p) != 3 || p[1] != 2 {
		t.Fatalf("blocked route not avoided: %v", p)
	}
	blocked[2] = true
	if p := g.ShortestPath(0, 3, blocked); p != nil {
		t.Errorf("path %v through fully blocked middle", p)
	}
}

func TestShortestPathPrefersFewestHops(t *testing.T) {
	// 0-1-3 (2 hops) and 0-2a-2b-3 (3 hops): BFS must take the short one.
	g := &Graph{n: 5, adj: make([][]int, 5)}
	add := func(a, b int) {
		g.adj[a] = append(g.adj[a], b)
		g.adj[b] = append(g.adj[b], a)
	}
	add(0, 1)
	add(1, 4)
	add(0, 2)
	add(2, 3)
	add(3, 4)
	p := g.ShortestPath(0, 4, nil)
	if len(p) != 3 {
		t.Fatalf("got %v, want the 2-hop route", p)
	}
}

func TestDisjointPathsDiamond(t *testing.T) {
	g := diamond()
	paths := g.DisjointPaths(0, 3, 3)
	if len(paths) != 2 {
		t.Fatalf("found %d disjoint paths, want 2: %v", len(paths), paths)
	}
	// Intermediates must not repeat across paths.
	seen := map[int]bool{}
	for _, p := range paths {
		for _, node := range p[1 : len(p)-1] {
			if seen[node] {
				t.Fatalf("intermediate %d reused: %v", node, paths)
			}
			seen[node] = true
		}
	}
}

func TestDisjointPathsDirectEdge(t *testing.T) {
	g := line(2)
	paths := g.DisjointPaths(0, 1, 3)
	if len(paths) != 1 || len(paths[0]) != 2 {
		t.Fatalf("direct-edge paths = %v", paths)
	}
}

func TestDisjointPathsUnreachable(t *testing.T) {
	g := &Graph{n: 3, adj: make([][]int, 3)}
	if paths := g.DisjointPaths(0, 2, 2); paths != nil {
		t.Errorf("paths %v in empty graph", paths)
	}
}

func TestComponentSize(t *testing.T) {
	g := line(4)
	if got := g.ComponentSize(0); got != 4 {
		t.Errorf("ComponentSize = %d", got)
	}
	lonely := &Graph{n: 3, adj: make([][]int, 3)}
	if got := lonely.ComponentSize(1); got != 1 {
		t.Errorf("lonely ComponentSize = %d", got)
	}
}

// Property-style sweep: on random geometric graphs, every shortest path is
// valid (consecutive adjacency, no cycles) and disjoint path sets are
// truly disjoint.
func TestPathValidityRandomGraphs(t *testing.T) {
	r := rng.New(8)
	for trial := 0; trial < 50; trial++ {
		cfg := DefaultConfig(25)
		m, err := NewModel(cfg, r)
		if err != nil {
			t.Fatal(err)
		}
		m.Step(r.Float64() * 100)
		g := m.Graph(nil)
		src, dst := r.Intn(25), r.Intn(25)
		if src == dst {
			continue
		}
		paths := g.DisjointPaths(src, dst, 3)
		inters := map[int]bool{}
		for _, p := range paths {
			if p[0] != src || p[len(p)-1] != dst {
				t.Fatalf("endpoints wrong: %v", p)
			}
			nodes := map[int]bool{}
			for i := 0; i+1 < len(p); i++ {
				if !g.Adjacent(p[i], p[i+1]) {
					t.Fatalf("non-adjacent step %d-%d in %v", p[i], p[i+1], p)
				}
				if nodes[p[i]] {
					t.Fatalf("cycle in path %v", p)
				}
				nodes[p[i]] = true
			}
			for _, node := range p[1 : len(p)-1] {
				if inters[node] {
					t.Fatalf("paths share intermediate %d", node)
				}
				inters[node] = true
			}
		}
	}
}

func BenchmarkGraphSnapshot50(b *testing.B) {
	m, err := NewModel(DefaultConfig(50), rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Step(1)
		_ = m.Graph(nil)
	}
}

func BenchmarkDisjointPaths(b *testing.B) {
	m, err := NewModel(DefaultConfig(50), rng.New(2))
	if err != nil {
		b.Fatal(err)
	}
	g := m.Graph(nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.DisjointPaths(i%50, (i+25)%50, 3)
	}
}
