// Package mobility implements a geometric mobile ad hoc network — nodes
// moving on a rectangle under the random-waypoint model, with radio-range
// connectivity and multi-hop route discovery.
//
// The paper deliberately abstracts topology away: "All intermediate nodes
// are chosen randomly. This simulates a network with a high mobility
// level" (§4.1). This package provides the thing being simulated, so the
// abstraction can be validated: the same game and strategies can be run
// over routes computed from an actual moving topology (see the tournament
// PathProvider adapter in route.go and examples/geometric), and the
// emerging hop-count distributions can be compared against Table 2.
package mobility

import (
	"fmt"
	"math"

	"adhocga/internal/rng"
)

// Point is a position on the plane.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance between two points.
func (p Point) Dist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Config parameterizes the world and the random-waypoint model.
type Config struct {
	Nodes  int
	Width  float64 // world width
	Height float64 // world height
	Range  float64 // radio range (omni-directional, identical for all nodes, as §3.1 assumes)

	// Random-waypoint parameters: each node repeatedly picks a uniform
	// destination, travels toward it at a uniform speed from
	// [MinSpeed, MaxSpeed], then pauses for Pause time units.
	MinSpeed float64
	MaxSpeed float64
	Pause    float64
}

// DefaultConfig returns a 50-node world sized so that typical routes span
// a few hops: a 1000×1000 field with 250-unit radio range, speeds 1–20
// (random-waypoint convention), no pause.
func DefaultConfig(nodes int) Config {
	return Config{
		Nodes:    nodes,
		Width:    1000,
		Height:   1000,
		Range:    250,
		MinSpeed: 1,
		MaxSpeed: 20,
		Pause:    0,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Nodes < 2 {
		return fmt.Errorf("mobility: need at least 2 nodes, got %d", c.Nodes)
	}
	if c.Width <= 0 || c.Height <= 0 {
		return fmt.Errorf("mobility: non-positive world dimensions %vx%v", c.Width, c.Height)
	}
	if c.Range <= 0 {
		return fmt.Errorf("mobility: non-positive radio range %v", c.Range)
	}
	if c.MinSpeed <= 0 || c.MaxSpeed < c.MinSpeed {
		return fmt.Errorf("mobility: speeds must satisfy 0 < min ≤ max, got [%v,%v]", c.MinSpeed, c.MaxSpeed)
	}
	if c.Pause < 0 {
		return fmt.Errorf("mobility: negative pause %v", c.Pause)
	}
	return nil
}

type nodeState struct {
	pos      Point
	waypoint Point
	speed    float64
	pausing  float64 // remaining pause time
}

// Model is a random-waypoint mobility simulation. Not safe for concurrent
// use.
type Model struct {
	cfg   Config
	r     *rng.Source
	nodes []nodeState
}

// NewModel creates a model with uniform initial positions and fresh
// waypoints.
func NewModel(cfg Config, r *rng.Source) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Model{cfg: cfg, r: r, nodes: make([]nodeState, cfg.Nodes)}
	for i := range m.nodes {
		m.nodes[i].pos = m.randomPoint()
		m.assignWaypoint(i)
	}
	return m, nil
}

func (m *Model) randomPoint() Point {
	return Point{X: m.r.Float64() * m.cfg.Width, Y: m.r.Float64() * m.cfg.Height}
}

func (m *Model) assignWaypoint(i int) {
	n := &m.nodes[i]
	n.waypoint = m.randomPoint()
	n.speed = m.cfg.MinSpeed + m.r.Float64()*(m.cfg.MaxSpeed-m.cfg.MinSpeed)
}

// Len returns the number of nodes.
func (m *Model) Len() int { return len(m.nodes) }

// Position returns node i's current position.
func (m *Model) Position(i int) Point { return m.nodes[i].pos }

// Step advances the simulation by dt time units: paused nodes count down,
// moving nodes travel toward their waypoints (picking fresh ones upon
// arrival, after the configured pause).
func (m *Model) Step(dt float64) {
	for i := range m.nodes {
		remaining := dt
		n := &m.nodes[i]
		for remaining > 0 {
			if n.pausing > 0 {
				if n.pausing >= remaining {
					n.pausing -= remaining
					remaining = 0
					break
				}
				remaining -= n.pausing
				n.pausing = 0
				m.assignWaypoint(i)
			}
			d := n.pos.Dist(n.waypoint)
			travel := n.speed * remaining
			if travel < d {
				frac := travel / d
				n.pos.X += (n.waypoint.X - n.pos.X) * frac
				n.pos.Y += (n.waypoint.Y - n.pos.Y) * frac
				remaining = 0
				break
			}
			// Reached the waypoint within this step.
			if d > 0 {
				remaining -= d / n.speed
			}
			n.pos = n.waypoint
			if m.cfg.Pause > 0 {
				n.pausing = m.cfg.Pause
			} else {
				m.assignWaypoint(i)
				if n.speed <= 0 { // unreachable, but guard the loop
					remaining = 0
				}
			}
		}
	}
}

// InRange reports whether nodes i and j can communicate directly.
func (m *Model) InRange(i, j int) bool {
	return i != j && m.nodes[i].pos.Dist(m.nodes[j].pos) <= m.cfg.Range
}

// Neighbors appends the IDs of all nodes within radio range of node i to
// dst and returns it.
func (m *Model) Neighbors(i int, dst []int) []int {
	for j := range m.nodes {
		if m.InRange(i, j) {
			dst = append(dst, j)
		}
	}
	return dst
}

// Graph snapshots the current connectivity as an adjacency structure
// restricted to the given node subset (nil means all nodes). The returned
// graph indexes nodes by their model ID.
func (m *Model) Graph(subset []int) *Graph {
	include := make([]bool, len(m.nodes))
	if subset == nil {
		for i := range include {
			include[i] = true
		}
	} else {
		for _, id := range subset {
			include[id] = true
		}
	}
	g := &Graph{n: len(m.nodes), adj: make([][]int, len(m.nodes))}
	for i := 0; i < len(m.nodes); i++ {
		if !include[i] {
			continue
		}
		for j := i + 1; j < len(m.nodes); j++ {
			if include[j] && m.InRange(i, j) {
				g.adj[i] = append(g.adj[i], j)
				g.adj[j] = append(g.adj[j], i)
			}
		}
	}
	return g
}
