package scenario

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"adhocga/internal/ga"
)

func testScale() Scale {
	return Scale{Name: "test", Generations: 5, Rounds: 30, Repetitions: 2}
}

func float64p(v float64) *float64 { return &v }

func TestJSONRoundTripSingle(t *testing.T) {
	in := []Spec{{
		ID:   7,
		Name: "round-trip",
		Environments: []EnvSpec{
			{Name: "TE1", CSN: 0},
			{CSN: 25},
		},
		PathMode:       "LP",
		TournamentSize: 40,
		Rounds:         120,
		PlaysPerEnv:    3,
		Population:     80,
		Generations:    200,
		Repetitions:    12,
		Seed:           99,
		GA: &GASpec{
			SelectionTournament: 4,
			CrossoverProb:       float64p(0.7),
			MutationProb:        float64p(0.01),
			Elitism:             2,
		},
	}}
	var buf bytes.Buffer
	if err := Save(&buf, in); err != nil {
		t.Fatal(err)
	}
	if strings.HasPrefix(strings.TrimSpace(buf.String()), "[") {
		t.Error("single spec saved as a list")
	}
	out, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip changed the spec:\nin:  %+v\nout: %+v", in[0], out[0])
	}
}

func TestJSONRoundTripList(t *testing.T) {
	in := CSNGrid()
	var buf bytes.Buffer
	if err := Save(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Error("list round trip changed the specs")
	}
}

func TestLoadRejectsUnknownFields(t *testing.T) {
	_, err := Load(strings.NewReader(`{"name":"x","environments":[{"csn":0}],"generation":5}`))
	if err == nil || !strings.Contains(err.Error(), "generation") {
		t.Errorf("typoed field accepted: %v", err)
	}
}

func TestLoadRejectsInvalidAndEmpty(t *testing.T) {
	if _, err := Load(strings.NewReader(`[]`)); err == nil {
		t.Error("empty list accepted")
	}
	if _, err := Load(strings.NewReader(`{"name":"x","environments":[]}`)); err == nil {
		t.Error("spec without environments accepted")
	}
	if _, err := Load(strings.NewReader(`not json`)); err == nil {
		t.Error("garbage accepted")
	}
	// Concatenated specs (instead of an array) must not silently drop
	// everything after the first value.
	concatenated := `{"name":"a","environments":[{"csn":0}]}
{"name":"b","environments":[{"csn":5}]}`
	if _, err := Load(strings.NewReader(concatenated)); err == nil {
		t.Error("trailing second spec accepted silently")
	}
}

func TestValidate(t *testing.T) {
	good := Spec{Name: "ok", Environments: []EnvSpec{{CSN: 10}}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	bad := []Spec{
		{Environments: []EnvSpec{{CSN: 0}}},                                                      // no name
		{Name: "x"},                                                                              // no envs
		{Name: "x", Environments: []EnvSpec{{CSN: -1}}},                                          // negative CSN
		{Name: "x", Environments: []EnvSpec{{CSN: 0}}, PathMode: "XP"},                           // bad mode
		{Name: "x", Environments: []EnvSpec{{CSN: 0}}, Rounds: -5},                               // negative scale field
		{Name: "x", Environments: []EnvSpec{{CSN: 0}}, GA: &GASpec{MutationProb: float64p(1.5)}}, // bad prob
		{Name: "x", Environments: []EnvSpec{{CSN: 0}}, GA: &GASpec{Elitism: -1}},                 // negative GA field
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d accepted: %+v", i, s)
		}
	}
}

func TestModeResolution(t *testing.T) {
	for spec, want := range map[string]string{"": "SP", "SP": "SP", "sp": "SP", "LP": "LP", "lp": "LP"} {
		s := Spec{Name: "x", PathMode: spec}
		mode, err := s.Mode()
		if err != nil || mode.Name != want {
			t.Errorf("PathMode %q → %q, %v; want %q", spec, mode.Name, err, want)
		}
	}
}

func TestEnvsDefaultNames(t *testing.T) {
	s := Spec{Name: "x", Environments: []EnvSpec{{Name: "TE1", CSN: 0}, {CSN: 25}}}
	envs := s.Envs()
	if envs[0].Name != "TE1" || envs[1].Name != "CSN25" || envs[1].CSN != 25 {
		t.Errorf("envs = %+v", envs)
	}
}

func TestResolvePrecedence(t *testing.T) {
	s := Spec{Name: "x", Environments: []EnvSpec{{CSN: 0}}, Generations: 42}
	r := s.Resolve(testScale())
	if r.Generations != 42 {
		t.Errorf("spec-pinned generations overridden: %d", r.Generations)
	}
	if r.Rounds != 30 || r.Repetitions != 2 {
		t.Errorf("scale defaults not applied: %+v", r)
	}
}

func TestMasterSeed(t *testing.T) {
	s := Spec{Name: "x"}
	if s.MasterSeed(5) != 5 {
		t.Error("fallback seed not used")
	}
	s.Seed = 11
	if s.MasterSeed(5) != 11 {
		t.Error("pinned seed not used")
	}
}

func TestConfigDefaultsMatchPaper(t *testing.T) {
	s := Spec{Name: "x", Environments: paperEnvs()}
	cfg, err := s.Resolve(testScale()).Config(123)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.PopulationSize != 100 || cfg.Eval.TournamentSize != 50 || cfg.Eval.PlaysPerEnv != 2 {
		t.Errorf("paper defaults not applied: %+v", cfg)
	}
	if cfg.Generations != 5 || cfg.Eval.Tournament.Rounds != 30 {
		t.Errorf("scale not applied: gens %d rounds %d", cfg.Generations, cfg.Eval.Tournament.Rounds)
	}
	if cfg.Seed != 123 {
		t.Errorf("seed %d", cfg.Seed)
	}
	if cfg.GA.CrossoverProb != 0.9 || cfg.GA.MutationProb != 0.001 || cfg.GA.Elitism != 0 {
		t.Errorf("paper GA not applied: %+v", cfg.GA)
	}
}

func TestConfigOverrides(t *testing.T) {
	s := Spec{
		Name:           "x",
		Environments:   []EnvSpec{{CSN: 5}},
		PathMode:       "LP",
		TournamentSize: 30,
		PlaysPerEnv:    1,
		Population:     60,
		GA: &GASpec{
			SelectionTournament: 5,
			CrossoverProb:       float64p(0), // explicit zero must stick
			MutationProb:        float64p(0.02),
			Elitism:             3,
		},
	}
	cfg, err := s.Resolve(testScale()).Config(1)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.PopulationSize != 60 || cfg.Eval.TournamentSize != 30 || cfg.Eval.PlaysPerEnv != 1 {
		t.Errorf("overrides not applied: %+v", cfg.Eval)
	}
	if cfg.Eval.Tournament.Mode.Name != "LP" {
		t.Errorf("mode %q", cfg.Eval.Tournament.Mode.Name)
	}
	if cfg.GA.CrossoverProb != 0 || cfg.GA.MutationProb != 0.02 || cfg.GA.Elitism != 3 {
		t.Errorf("GA overrides not applied: %+v", cfg.GA)
	}
	sel, ok := cfg.GA.Selector.(ga.TournamentSelector)
	if !ok || sel.Size != 5 {
		t.Errorf("selector = %#v", cfg.GA.Selector)
	}
}

func TestConfigRejectsImpossibleParameters(t *testing.T) {
	// Tournament of 80 normals from a population of 60 cannot be drawn.
	s := Spec{Name: "x", Environments: []EnvSpec{{CSN: 0}}, TournamentSize: 80, Population: 60}
	if _, err := s.Resolve(testScale()).Config(1); err == nil {
		t.Error("impossible spec accepted")
	}
}

func TestRegistryFamiliesAreValidAndBuildable(t *testing.T) {
	fams := Families()
	if len(fams) < 4 {
		t.Fatalf("%d families", len(fams))
	}
	sc := testScale()
	for _, f := range fams {
		specs := f.Specs()
		if len(specs) == 0 {
			t.Errorf("family %q is empty", f.Name)
		}
		seen := map[string]bool{}
		for _, s := range specs {
			if seen[s.Name] {
				t.Errorf("family %q has duplicate scenario %q", f.Name, s.Name)
			}
			seen[s.Name] = true
			if err := s.Validate(); err != nil {
				t.Errorf("family %q: %v", f.Name, err)
			}
			if _, err := s.Resolve(sc).Config(1); err != nil {
				t.Errorf("family %q scenario %q does not build: %v", f.Name, s.Name, err)
			}
			if _, err := s.Resolve(sc).IslandConfig(1); err != nil {
				t.Errorf("family %q scenario %q does not build an island config: %v", f.Name, s.Name, err)
			}
		}
	}
}

func TestRegistryLookups(t *testing.T) {
	f, err := FamilyByName("csn-grid")
	if err != nil || f.Name != "csn-grid" {
		t.Errorf("FamilyByName: %+v, %v", f, err)
	}
	if _, err := FamilyByName("nope"); err == nil {
		t.Error("unknown family accepted")
	}
	s, err := SpecByName("case 3 (TE1-4, SP)")
	if err != nil || s.ID != 3 {
		t.Errorf("SpecByName: %+v, %v", s, err)
	}
	if _, err := SpecByName("nope"); err == nil {
		t.Error("unknown scenario accepted")
	}
}

func TestTable4MirrorsPaperCases(t *testing.T) {
	specs := Table4()
	if len(specs) != 4 {
		t.Fatalf("%d specs", len(specs))
	}
	if len(specs[0].Environments) != 1 || specs[0].Environments[0].CSN != 0 {
		t.Errorf("case 1 = %+v", specs[0])
	}
	if specs[1].Environments[0].CSN != 30 {
		t.Errorf("case 2 = %+v", specs[1])
	}
	if len(specs[2].Environments) != 4 || specs[2].PathMode != "SP" {
		t.Errorf("case 3 = %+v", specs[2])
	}
	if specs[3].PathMode != "LP" {
		t.Errorf("case 4 = %+v", specs[3])
	}
	for i, s := range specs {
		if s.ID != i+1 {
			t.Errorf("case %d has ID %d", i+1, s.ID)
		}
	}
}
