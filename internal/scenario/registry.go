package scenario

import (
	"cmp"
	"fmt"
	"slices"

	"adhocga/internal/tournament"
)

// Family is a named generator of related scenarios: the paper's fixed
// evaluation plus the denser parameter sweeps the paper only samples.
type Family struct {
	Name        string
	Description string
	Specs       func() []Spec
}

// Families returns the registered scenario families, sorted by name.
func Families() []Family {
	fams := []Family{
		{
			Name:        "table4",
			Description: "the paper's four Table 4 evaluation cases",
			Specs:       Table4,
		},
		{
			Name:        "csn-grid",
			Description: "dense CSN × path-mode grid (0–45 selfish nodes, SP and LP)",
			Specs:       CSNGrid,
		},
		{
			Name:        "tournament-size",
			Description: "tournament-size sweep at a fixed 20% selfish share",
			Specs:       TournamentSizeSweep,
		},
		{
			Name:        "mixed-env",
			Description: "mixed-environment scenarios pairing benign and hostile conditions",
			Specs:       MixedEnvironments,
		},
		{
			Name:        "churn-sweep",
			Description: "node churn sweep: immigrant replacement rate 0–40% every 5 generations, with mobility rewiring",
			Specs:       ChurnSweep,
		},
		{
			Name:        "adversary-grid",
			Description: "Byzantine adversary grid: free-rider / liar / on-off cohorts of 2–10 nodes per 50-player tournament",
			Specs:       AdversaryGrid,
		},
		{
			Name:        "league",
			Description: "champion-harvest runs: the Table 4 cases with generation checkpoints archiving hall-of-fame champions for league play",
			Specs:       LeagueHarvest,
		},
		{
			Name:        "table4-islands",
			Description: "the four Table 4 cases on a 4-island ring (population 200, 2 migrants every 10 generations)",
			Specs:       Table4Islands,
		},
		{
			Name:        "island-topology-sweep",
			Description: "migration topology × replacement sweep on the TE2 environment (4 islands, population 200)",
			Specs:       IslandTopologySweep,
		},
	}
	slices.SortFunc(fams, func(a, b Family) int { return cmp.Compare(a.Name, b.Name) })
	return fams
}

// FamilyByName resolves a registered family.
func FamilyByName(name string) (Family, error) {
	for _, f := range Families() {
		if f.Name == name {
			return f, nil
		}
	}
	return Family{}, fmt.Errorf("scenario: unknown family %q (have %s)", name, familyNames())
}

// SpecByName searches every family for a scenario with the given name.
func SpecByName(name string) (Spec, error) {
	for _, f := range Families() {
		for _, s := range f.Specs() {
			if s.Name == name {
				return s, nil
			}
		}
	}
	return Spec{}, fmt.Errorf("scenario: no scenario named %q in any family (have %s)", name, familyNames())
}

func familyNames() string {
	names := ""
	for i, f := range Families() {
		if i > 0 {
			names += ", "
		}
		names += f.Name
	}
	return names
}

// paperEnvs are TE1–TE4 of Table 1 in spec form, derived from the
// tournament package's definition so there is one source of truth.
func paperEnvs() []EnvSpec {
	envs := tournament.PaperEnvironments()
	specs := make([]EnvSpec, len(envs))
	for i, e := range envs {
		specs[i] = EnvSpec{Name: e.Name, CSN: e.CSN}
	}
	return specs
}

// Table4 returns the paper's four evaluation cases as specs. Their
// resolved configurations are exactly what experiment.Cases() runs.
func Table4() []Spec {
	envs := paperEnvs()
	return []Spec{
		{ID: 1, Name: "case 1 (TE1, SP)", Environments: envs[:1], PathMode: "SP"},
		{ID: 2, Name: "case 2 (TE4/30 CSN, SP)", Environments: envs[3:4], PathMode: "SP"},
		{ID: 3, Name: "case 3 (TE1-4, SP)", Environments: envs, PathMode: "SP"},
		{ID: 4, Name: "case 4 (TE1-4, LP)", Environments: envs, PathMode: "LP"},
	}
}

// CSNGrid returns the dense selfish-node grid: every CSN count from 0 to
// 45 in steps of 5, crossed with both path modes. The paper samples this
// surface at four points; the grid locates where cooperation collapses
// and how the LP penalty grows with hostility.
func CSNGrid() []Spec {
	var specs []Spec
	for _, mode := range []string{"SP", "LP"} {
		for csn := 0; csn <= 45; csn += 5 {
			specs = append(specs, Spec{
				Name:         fmt.Sprintf("grid CSN=%d (%s)", csn, mode),
				Environments: []EnvSpec{{CSN: csn}},
				PathMode:     mode,
			})
		}
	}
	return specs
}

// TournamentSizeSweep varies the paper's T at a fixed 20% selfish share
// (the TE2 ratio), asking whether cooperation enforcement survives in
// smaller neighborhoods where reputations are sampled less often.
func TournamentSizeSweep() []Spec {
	var specs []Spec
	for _, size := range []int{20, 30, 40, 50, 60, 80, 100} {
		specs = append(specs, Spec{
			Name:           fmt.Sprintf("tsize T=%d CSN=%d", size, size/5),
			Environments:   []EnvSpec{{CSN: size / 5}},
			PathMode:       "SP",
			TournamentSize: size,
		})
	}
	return specs
}

// LeagueHarvest is Table4 with generation checkpoints turned on: every 10
// generations (and at the final one) the best strategy of the moment is
// archived as a hall-of-fame champion, so a single family run seeds the
// coevolution league with snapshots spanning the whole evolutionary
// trajectory — early naive strategies, mid-run transients, and the final
// converged winners — across all four paper environments.
func LeagueHarvest() []Spec {
	specs := Table4()
	for i := range specs {
		specs[i].Name += " league-harvest"
		specs[i].Checkpoints = 10
	}
	return specs
}

// Table4Islands is the paper's four evaluation cases on the island-model
// engine: the population is doubled to 200 so each of the 4 islands keeps
// a 50-strategy subpopulation — the smallest share that still fills a
// T=50 tournament in the CSN-free environment — evolved concurrently with
// 2 elite migrants circulating over a ring every 10 generations.
func Table4Islands() []Spec {
	specs := Table4()
	for i := range specs {
		specs[i].Name += " 4-island ring"
		specs[i].Population = 200
		specs[i].Islands = &IslandSpec{Count: 4, Topology: "ring", Interval: 10, Migrants: 2}
	}
	return specs
}

// IslandTopologySweep crosses the three migration topologies with both
// replacement policies on the TE2 environment (10 CSN, the paper's 20%
// selfish share), asking how mixing speed and eviction pressure trade off
// against evolved cooperation. Population 200 over 4 islands keeps every
// island tournament-feasible at T=50.
func IslandTopologySweep() []Spec {
	var specs []Spec
	for _, topo := range []string{"ring", "full", "random-pairs"} {
		for _, replace := range []string{"worst", "random"} {
			specs = append(specs, Spec{
				Name:         fmt.Sprintf("islands 4x%s/%s CSN=10", topo, replace),
				Environments: []EnvSpec{{Name: "TE2", CSN: 10}},
				PathMode:     "SP",
				Population:   200,
				Islands:      &IslandSpec{Count: 4, Topology: topo, Interval: 5, Migrants: 2, Replace: replace},
			})
		}
	}
	return specs
}

// ChurnSweep varies the per-barrier immigrant replacement rate on the TE2
// environment (10 CSN) with a mild mobility rewiring walk, asking how much
// population turnover the evolved cooperation survives and how quickly it
// recovers after each perturbation barrier (the recovery-after-churn
// tables of internal/experiment). Rate 0 is the static control.
func ChurnSweep() []Spec {
	var specs []Spec
	for _, rate := range []float64{0, 0.05, 0.1, 0.2, 0.4} {
		spec := Spec{
			Name:         fmt.Sprintf("churn %d%% every 5 gens", int(rate*100)),
			Environments: []EnvSpec{{Name: "TE2", CSN: 10}},
			PathMode:     "SP",
		}
		if rate > 0 {
			spec.Dynamics = &DynamicsSpec{
				Interval:   5,
				ChurnRate:  rate,
				RewireProb: 0.5,
				RewireStep: 0.2,
			}
		}
		specs = append(specs, spec)
	}
	return specs
}

// AdversaryGrid crosses the three Byzantine behaviors with cohort sizes 2,
// 5 and 10 per 50-player tournament on the otherwise CSN-free TE1
// environment, so the measured damage is attributable to the adversaries
// alone. Gossip runs in every cell (liars need a channel to lie on, and
// keeping it on everywhere makes the cells comparable); a clean no-
// adversary control anchors the cooperation-vs-adversary-fraction table.
func AdversaryGrid() []Spec {
	specs := []Spec{{
		Name:         "adversaries none (control)",
		Environments: []EnvSpec{{Name: "TE1", CSN: 0}},
		PathMode:     "SP",
		Gossip:       &GossipSpec{Interval: 10},
	}}
	for _, kind := range []string{"free-riders", "liars", "on-off"} {
		for _, count := range []int{2, 5, 10} {
			d := &DynamicsSpec{}
			switch kind {
			case "free-riders":
				d.FreeRiders = count
			case "liars":
				d.Liars = count
			case "on-off":
				d.OnOff = count
			}
			specs = append(specs, Spec{
				Name:         fmt.Sprintf("adversaries %s x%d", kind, count),
				Environments: []EnvSpec{{Name: "TE1", CSN: 0}},
				PathMode:     "SP",
				Dynamics:     d,
				Gossip:       &GossipSpec{Interval: 10},
			})
		}
	}
	return specs
}

// MixedEnvironments pairs benign and hostile conditions inside one
// evaluation pass — coarser mixes than the paper's TE1–TE4 ladder,
// including an extreme benign/hostile split the paper never tests.
func MixedEnvironments() []Spec {
	envs := paperEnvs()
	return []Spec{
		{Name: "mixed TE1+TE4 (SP)", Environments: []EnvSpec{envs[0], envs[3]}, PathMode: "SP"},
		{Name: "mixed TE1+TE4 (LP)", Environments: []EnvSpec{envs[0], envs[3]}, PathMode: "LP"},
		{Name: "mixed TE2+TE3 (SP)", Environments: []EnvSpec{envs[1], envs[2]}, PathMode: "SP"},
		{Name: "mixed extremes 0+40 (SP)", Environments: []EnvSpec{{CSN: 0}, {CSN: 40}}, PathMode: "SP"},
	}
}
