package scenario

import (
	"bytes"
	"strings"
	"testing"

	"adhocga/internal/island"
)

func islandSpec() Spec {
	return Spec{
		Name:         "isl",
		Environments: []EnvSpec{{CSN: 10}},
		Population:   200,
		Generations:  4,
		Rounds:       20,
		Repetitions:  2,
		Islands:      &IslandSpec{Count: 4, Topology: "full", Interval: 5, Migrants: 2, Replace: "random"},
	}
}

func TestIslandsJSONRoundTrip(t *testing.T) {
	in := islandSpec()
	var buf bytes.Buffer
	if err := Save(&buf, []Spec{in}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"islands"`) {
		t.Fatalf("saved spec has no islands block:\n%s", buf.String())
	}
	out, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got := out[0].Islands
	if got == nil || *got != *in.Islands {
		t.Errorf("islands block round-tripped to %+v, want %+v", got, in.Islands)
	}
}

func TestIslandsBlockOmittedWhenNil(t *testing.T) {
	s := islandSpec()
	s.Islands = nil
	var buf bytes.Buffer
	if err := Save(&buf, []Spec{s}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "islands") {
		t.Errorf("serial spec serialized an islands block:\n%s", buf.String())
	}
}

func TestIslandsValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Spec)
	}{
		{"zero-count", func(s *Spec) { s.Islands.Count = 0 }},
		{"bad-topology", func(s *Spec) { s.Islands.Topology = "mesh" }},
		{"bad-replace", func(s *Spec) { s.Islands.Replace = "best" }},
		{"negative-interval", func(s *Spec) { s.Islands.Interval = -1 }},
		{"negative-migrants", func(s *Spec) { s.Islands.Migrants = -1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := islandSpec()
			tc.mut(&s)
			if err := s.Validate(); err == nil {
				t.Errorf("Validate accepted %+v", s.Islands)
			}
		})
	}
	good := islandSpec()
	if err := good.Validate(); err != nil {
		t.Errorf("Validate rejected a good islands spec: %v", err)
	}
}

func TestIslandConfigBuilds(t *testing.T) {
	cfg, err := islandSpec().IslandConfig(7)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Count != 4 || cfg.Topology != island.FullyConnected ||
		cfg.Interval != 5 || cfg.Migrants != 2 || cfg.Replace != island.ReplaceRandom {
		t.Errorf("IslandConfig = %+v", cfg)
	}
	if cfg.Core.PopulationSize != 200 || cfg.Core.Seed != 7 {
		t.Errorf("core config = pop %d seed %d", cfg.Core.PopulationSize, cfg.Core.Seed)
	}
}

func TestIslandConfigDefaultsToOneIsland(t *testing.T) {
	s := islandSpec()
	s.Islands = nil
	cfg, err := s.IslandConfig(7)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Count != 1 {
		t.Errorf("count = %d, want 1", cfg.Count)
	}
}

// TestIslandConfigRejectsInfeasibleSharding pins the fail-fast contract:
// a division that starves island tournaments must fail at build time, not
// replicate-run time.
func TestIslandConfigRejectsInfeasibleSharding(t *testing.T) {
	s := islandSpec()
	s.Population = 100 // 25 per island < T=50 normals needed for CSN=10? 40 > 25 → infeasible
	if _, err := s.IslandConfig(7); err == nil {
		t.Error("IslandConfig accepted an infeasible island share")
	}
	s = islandSpec()
	s.Islands.Count = 3 // 200 % 3 != 0
	if _, err := s.IslandConfig(7); err == nil {
		t.Error("IslandConfig accepted an indivisible population")
	}
}
