// Package scenario defines the declarative, JSON-serializable description
// of an evolutionary experiment: which tournament environments to expose
// the population to, the path mode, tournament and GA parameters, the
// computational scale, and the seed policy. A Spec is the unit the shared
// work runner (internal/runner, via internal/experiment) schedules — every
// workload, from the paper's four Table 4 cases to user-authored JSON
// files, flattens to (Spec × replicate) work units.
//
// A Spec only pins what it cares about: zero-valued fields fall back to
// the paper's §6.1 parameterization and to the Scale the run was invoked
// at, so a minimal spec is just a name and an environment list. An
// optional islands block routes the scenario through the island-model
// engine (internal/island) instead of the serial one. The registry
// (registry.go) provides named families of ready-made specs beyond the
// paper's evaluation — dense CSN×path-mode grids, tournament-size
// sweeps, mixed-environment scenarios, and island-model variants.
package scenario

import (
	"fmt"

	"adhocga/internal/core"
	"adhocga/internal/dynamics"
	"adhocga/internal/ga"
	"adhocga/internal/island"
	"adhocga/internal/network"
	"adhocga/internal/tournament"
)

// Scale selects how much of the paper's computational budget to spend; it
// supplies the defaults for every Spec field it shares. The experiment
// package defines the standard presets (smoke, default, paper).
type Scale struct {
	Name        string
	Generations int
	Rounds      int
	Repetitions int
}

// EnvSpec is one tournament environment: a display name and the number of
// constantly selfish nodes among the participants. An empty name defaults
// to "CSN<n>".
type EnvSpec struct {
	Name string `json:"name,omitempty"`
	CSN  int    `json:"csn"`
}

// IslandSpec configures the island-model evolution engine
// (internal/island): the population is sharded into Count subpopulations
// evolved concurrently, with Migrants elite genomes exchanged over the
// Topology every Interval generations. Zero-valued fields keep the island
// defaults (ring topology, interval 10, 1 migrant, worst-replacement). The
// population must divide evenly by Count, and each island's share must
// still accommodate the tournament size.
type IslandSpec struct {
	// Count is the number of islands; 1 degenerates to the serial engine
	// bit for bit.
	Count int `json:"count"`
	// Topology is "ring" (default), "full", or "random-pairs".
	Topology string `json:"topology,omitempty"`
	// Interval is the number of generations between migration barriers
	// (default 10).
	Interval int `json:"interval,omitempty"`
	// Migrants is the number of elite genomes sent along each topology
	// edge per barrier (default 1).
	Migrants int `json:"migrants,omitempty"`
	// Replace is "worst" (default) or "random": which residents incoming
	// migrants evict.
	Replace string `json:"replace,omitempty"`
}

// DynamicsSpec configures the environment-perturbation layer
// (internal/dynamics): churn with random immigrants and identity
// turnover, route-length landscape drift under mobility, and a Byzantine
// adversary cohort. Zero-valued tuning fields keep the dynamics defaults
// (barriers every generation, 1.5× identity headroom, 0.25 rewire step,
// 20/10 on-off schedule); an absent block disables the layer entirely and
// keeps runs bit-identical to the static reproduction.
type DynamicsSpec struct {
	// Interval is the number of generations between perturbation barriers
	// (default 1).
	Interval int `json:"interval,omitempty"`
	// ChurnRate is the population fraction replaced by naive immigrants
	// with fresh identities per barrier, in [0,1].
	ChurnRate float64 `json:"churn_rate,omitempty"`
	// IDHeadroom bounds identity-space growth before IDs recycle
	// (default 1.5).
	IDHeadroom float64 `json:"id_headroom,omitempty"`
	// RewireProb and RewireStep drive the seeded SP↔LP route-length walk
	// modeling link rewiring under mobility.
	RewireProb float64 `json:"rewire_prob,omitempty"`
	RewireStep float64 `json:"rewire_step,omitempty"`
	// FreeRiders, Liars and OnOff size the Byzantine cohort seated in
	// every tournament.
	FreeRiders int `json:"free_riders,omitempty"`
	Liars      int `json:"liars,omitempty"`
	OnOff      int `json:"on_off,omitempty"`
	// OnRounds/OffRounds schedule the on-off attack (defaults 20/10).
	OnRounds  int `json:"on_rounds,omitempty"`
	OffRounds int `json:"off_rounds,omitempty"`
}

// Config converts the spec to the engine-level dynamics configuration.
func (d *DynamicsSpec) Config() *dynamics.Config {
	if d == nil {
		return nil
	}
	return &dynamics.Config{
		Interval:   d.Interval,
		ChurnRate:  d.ChurnRate,
		IDHeadroom: d.IDHeadroom,
		RewireProb: d.RewireProb,
		RewireStep: d.RewireStep,
		FreeRiders: d.FreeRiders,
		Liars:      d.Liars,
		OnOff:      d.OnOff,
		OnRounds:   d.OnRounds,
		OffRounds:  d.OffRounds,
	}
}

// AdversaryCount returns the total Byzantine cohort the spec seats.
func (d *DynamicsSpec) AdversaryCount() int {
	if d == nil {
		return 0
	}
	return d.FreeRiders + d.Liars + d.OnOff
}

// GossipSpec enables CORE-style second-hand reputation exchange in the
// tournaments: every Interval rounds each normal player imports one random
// peer's positive observations. It matters mostly for adversarial
// scenarios — gossip liars can only lie when gossip runs. Weight defaults
// to 0.25 and MinRate to 0.5 when left zero.
type GossipSpec struct {
	Interval int     `json:"interval"`
	Weight   float64 `json:"weight,omitempty"`
	MinRate  float64 `json:"min_rate,omitempty"`
}

// GASpec overrides genetic-algorithm parameters. Zero/nil fields keep the
// paper's §6.1 values (binary tournament selection, one-point crossover
// with probability 0.9, per-bit mutation 0.001, no elitism).
type GASpec struct {
	// SelectionTournament is the k of k-way tournament selection.
	SelectionTournament int `json:"selection_tournament,omitempty"`
	// CrossoverProb and MutationProb are pointers so an explicit zero is
	// distinguishable from "keep the paper's value".
	CrossoverProb *float64 `json:"crossover_prob,omitempty"`
	MutationProb  *float64 `json:"mutation_prob,omitempty"`
	Elitism       int      `json:"elitism,omitempty"`
}

// Spec declaratively describes one evolutionary experiment. The zero value
// of every field except Name and Environments means "use the default":
// path mode SP, the paper's tournament and GA parameters, and the scale of
// the enclosing run.
type Spec struct {
	// ID is an optional numeric tag carried through to reports (the
	// paper's Table 4 cases use 1–4).
	ID   int    `json:"id,omitempty"`
	Name string `json:"name"`
	// Environments lists the tournament environments each generation is
	// evaluated in (Fig 3 scheme).
	Environments []EnvSpec `json:"environments"`
	// PathMode is "SP" (shorter paths, the default) or "LP" (longer paths).
	PathMode string `json:"path_mode,omitempty"`
	// TournamentSize is the paper's T (default 50).
	TournamentSize int `json:"tournament_size,omitempty"`
	// Rounds is the paper's R, rounds per tournament (default: the scale's).
	Rounds int `json:"rounds,omitempty"`
	// PlaysPerEnv is the paper's L, plays per environment (default 2).
	PlaysPerEnv int `json:"plays_per_env,omitempty"`
	// Population is the paper's N, evolving strategies (default 100).
	Population int `json:"population,omitempty"`
	// Generations and Repetitions default to the scale's.
	Generations int `json:"generations,omitempty"`
	Repetitions int `json:"repetitions,omitempty"`
	// Seed, when nonzero, pins this scenario's master seed regardless of
	// the seed the run was invoked with; replicate seeds are always
	// derived from the master by splitting, never used directly.
	Seed uint64 `json:"seed,omitempty"`
	// Checkpoints, when positive, extracts a hall-of-fame champion every
	// Checkpoints generations (and at the final one) for the league
	// archive. Purely observational: it never changes results.
	Checkpoints int `json:"checkpoints,omitempty"`
	// GA overrides the genetic-algorithm parameters.
	GA *GASpec `json:"ga,omitempty"`
	// Islands, when set, runs the scenario on the island-model engine
	// instead of the serial one.
	Islands *IslandSpec `json:"islands,omitempty"`
	// Dynamics, when set, enables the environment-perturbation layer
	// (churn, landscape rewiring, Byzantine adversaries).
	Dynamics *DynamicsSpec `json:"dynamics,omitempty"`
	// Gossip, when set, enables second-hand reputation exchange.
	Gossip *GossipSpec `json:"gossip,omitempty"`
}

// Validate checks the spec's structural invariants. Parameter interactions
// (e.g. tournament size vs population) are checked when the spec is built
// into a core.Config.
func (s Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: spec has no name")
	}
	if len(s.Environments) == 0 {
		return fmt.Errorf("scenario %q: no environments", s.Name)
	}
	for _, env := range s.Environments {
		if env.CSN < 0 {
			return fmt.Errorf("scenario %q: environment %q has negative CSN", s.Name, env.Name)
		}
	}
	if _, err := s.Mode(); err != nil {
		return err
	}
	for _, f := range []struct {
		name string
		v    int
	}{
		{"tournament_size", s.TournamentSize},
		{"rounds", s.Rounds},
		{"plays_per_env", s.PlaysPerEnv},
		{"population", s.Population},
		{"generations", s.Generations},
		{"repetitions", s.Repetitions},
		{"checkpoints", s.Checkpoints},
	} {
		if f.v < 0 {
			return fmt.Errorf("scenario %q: negative %s", s.Name, f.name)
		}
	}
	if s.GA != nil {
		if p := s.GA.CrossoverProb; p != nil && (*p < 0 || *p > 1) {
			return fmt.Errorf("scenario %q: crossover_prob %v outside [0,1]", s.Name, *p)
		}
		if p := s.GA.MutationProb; p != nil && (*p < 0 || *p > 1) {
			return fmt.Errorf("scenario %q: mutation_prob %v outside [0,1]", s.Name, *p)
		}
		if s.GA.SelectionTournament < 0 || s.GA.Elitism < 0 {
			return fmt.Errorf("scenario %q: negative GA parameter", s.Name)
		}
	}
	if d := s.Dynamics; d != nil {
		if err := d.Config().Validate(); err != nil {
			return fmt.Errorf("scenario %q: %w", s.Name, err)
		}
		// Liars only misbehave through gossip (MergeInverted); without a
		// gossip channel they would sit in every tournament as extra
		// always-forwarders, silently *helping* cooperation while being
		// reported as adversaries.
		if d.Liars > 0 && (s.Gossip == nil || s.Gossip.Interval < 1) {
			return fmt.Errorf("scenario %q: %d gossip liars but gossip is disabled — add a gossip block (liars attack through it)", s.Name, d.Liars)
		}
	}
	if g := s.Gossip; g != nil {
		if g.Interval < 0 {
			return fmt.Errorf("scenario %q: negative gossip interval", s.Name)
		}
		if g.Weight < 0 || g.Weight > 1 {
			return fmt.Errorf("scenario %q: gossip weight %v outside [0,1]", s.Name, g.Weight)
		}
		if g.MinRate < 0 || g.MinRate > 1 {
			return fmt.Errorf("scenario %q: gossip min_rate %v outside [0,1]", s.Name, g.MinRate)
		}
	}
	if isl := s.Islands; isl != nil {
		if isl.Count < 1 {
			return fmt.Errorf("scenario %q: island count %d < 1", s.Name, isl.Count)
		}
		if _, err := island.ParseTopology(isl.Topology); err != nil {
			return fmt.Errorf("scenario %q: %w", s.Name, err)
		}
		if _, err := island.ParseReplacement(isl.Replace); err != nil {
			return fmt.Errorf("scenario %q: %w", s.Name, err)
		}
		if isl.Interval < 0 || isl.Migrants < 0 {
			return fmt.Errorf("scenario %q: negative island parameter", s.Name)
		}
	}
	return nil
}

// Mode resolves the spec's path mode; empty means shorter paths.
func (s Spec) Mode() (network.PathMode, error) {
	switch s.PathMode {
	case "", "SP", "sp":
		return network.ShorterPaths(), nil
	case "LP", "lp":
		return network.LongerPaths(), nil
	default:
		return network.PathMode{}, fmt.Errorf("scenario %q: unknown path mode %q (want SP or LP)", s.Name, s.PathMode)
	}
}

// Envs converts the environment list to the tournament package's form,
// filling in default names.
func (s Spec) Envs() []tournament.Environment {
	envs := make([]tournament.Environment, len(s.Environments))
	for i, e := range s.Environments {
		name := e.Name
		if name == "" {
			name = fmt.Sprintf("CSN%d", e.CSN)
		}
		envs[i] = tournament.Environment{Name: name, CSN: e.CSN}
	}
	return envs
}

// Resolve fills the spec's zero-valued scale fields from sc and returns
// the completed copy. The spec wins wherever it pins a value.
func (s Spec) Resolve(sc Scale) Spec {
	if s.Generations == 0 {
		s.Generations = sc.Generations
	}
	if s.Rounds == 0 {
		s.Rounds = sc.Rounds
	}
	if s.Repetitions == 0 {
		s.Repetitions = sc.Repetitions
	}
	return s
}

// MasterSeed resolves the scenario's master seed: its own pinned Seed if
// set, otherwise the fallback from the run invocation.
func (s Spec) MasterSeed(fallback uint64) uint64 {
	if s.Seed != 0 {
		return s.Seed
	}
	return fallback
}

// Config builds the core configuration for one replicate with the given
// replicate seed. It starts from the paper's §6.1 parameterization and
// applies only the overrides the spec pins, so a default spec replays the
// paper exactly. Call Resolve first if the spec leaves scale fields to the
// enclosing run.
func (s Spec) Config(seed uint64) (core.Config, error) {
	mode, err := s.Mode()
	if err != nil {
		return core.Config{}, err
	}
	cfg := core.PaperConfig(s.Envs(), mode, seed)
	cfg.Generations = s.Generations
	cfg.Eval.Tournament.Rounds = s.Rounds
	cfg.CheckpointInterval = s.Checkpoints
	if s.Population > 0 {
		cfg.PopulationSize = s.Population
	}
	if s.TournamentSize > 0 {
		cfg.Eval.TournamentSize = s.TournamentSize
	}
	if s.PlaysPerEnv > 0 {
		cfg.Eval.PlaysPerEnv = s.PlaysPerEnv
	}
	if s.GA != nil {
		if s.GA.SelectionTournament > 0 {
			cfg.GA.Selector = ga.TournamentSelector{Size: s.GA.SelectionTournament}
		}
		if s.GA.CrossoverProb != nil {
			cfg.GA.CrossoverProb = *s.GA.CrossoverProb
		}
		if s.GA.MutationProb != nil {
			cfg.GA.MutationProb = *s.GA.MutationProb
		}
		if s.GA.Elitism > 0 {
			cfg.GA.Elitism = s.GA.Elitism
		}
	}
	cfg.Dynamics = s.Dynamics.Config()
	if g := s.Gossip; g != nil && g.Interval > 0 {
		cfg.Eval.Tournament.GossipInterval = g.Interval
		cfg.Eval.Tournament.GossipWeight = g.Weight
		if g.Weight == 0 {
			cfg.Eval.Tournament.GossipWeight = 0.25
		}
		cfg.Eval.Tournament.GossipMinRate = g.MinRate
		if g.MinRate == 0 {
			cfg.Eval.Tournament.GossipMinRate = 0.5
		}
	}
	if err := cfg.Validate(); err != nil {
		return core.Config{}, fmt.Errorf("scenario %q: %w", s.Name, err)
	}
	return cfg, nil
}

// IslandConfig builds the island-model configuration for one replicate
// with the given replicate seed. A spec without an islands block resolves
// to a single island, which the engine runs bit-identically to the serial
// path. Population division and per-island tournament feasibility are
// checked here, so a bad islands block fails before any compute is spent.
func (s Spec) IslandConfig(seed uint64) (island.Config, error) {
	cfg, err := s.Config(seed)
	if err != nil {
		return island.Config{}, err
	}
	isl := s.Islands
	if isl == nil {
		isl = &IslandSpec{Count: 1}
	}
	icfg := island.Config{
		Core:     cfg,
		Count:    isl.Count,
		Topology: island.Topology(isl.Topology),
		Interval: isl.Interval,
		Migrants: isl.Migrants,
		Replace:  island.Replacement(isl.Replace),
	}
	if err := icfg.Validate(); err != nil {
		return island.Config{}, fmt.Errorf("scenario %q: %w", s.Name, err)
	}
	return icfg, nil
}
