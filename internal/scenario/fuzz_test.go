package scenario

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
)

// FuzzLoad drives the JSON spec decoder with arbitrary bytes: it must
// never panic, and everything it accepts must validate, survive a
// Save→Load round trip unchanged, and build (or cleanly refuse to build)
// an engine configuration. CI runs this with a short -fuzztime smoke on
// top of the checked-in corpus (testdata/fuzz); locally run e.g.
//
//	go test -fuzz FuzzLoad -fuzztime 30s ./internal/scenario/
func FuzzLoad(f *testing.F) {
	f.Add([]byte(`{"name":"x","environments":[{"csn":10}]}`))
	f.Add([]byte(`[{"name":"a","environments":[{"csn":0}]},{"name":"b","environments":[{"name":"TE4","csn":30}],"path_mode":"LP"}]`))
	f.Add([]byte(`{"name":"isl","environments":[{"csn":5}],"population":200,"islands":{"count":4,"topology":"ring","interval":10,"migrants":2}}`))
	f.Add([]byte(`{"name":"dyn","environments":[{"csn":10}],"dynamics":{"interval":5,"churn_rate":0.2,"rewire_prob":0.5,"free_riders":2,"liars":2,"on_off":2},"gossip":{"interval":10}}`))
	f.Add([]byte(`{"name":"ga","environments":[{"csn":0}],"ga":{"selection_tournament":4,"crossover_prob":0.7,"mutation_prob":0.01,"elitism":2}}`))
	f.Add([]byte(`{"name":"bad","environments":[{"csn":-3}]}`))
	f.Add([]byte(`{"nmae":"typo","environments":[{"csn":1}]}`))
	f.Add([]byte(`{"name":"trail","environments":[{"csn":1}]}{"name":"x"}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`not json at all`))
	f.Fuzz(func(t *testing.T, data []byte) {
		specs, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(specs) == 0 {
			t.Fatal("Load accepted input but returned no specs")
		}
		for _, s := range specs {
			// Load promises validated specs.
			if err := s.Validate(); err != nil {
				t.Fatalf("Load returned invalid spec %q: %v", s.Name, err)
			}
			// Building a config must never panic; errors are fine (the
			// structural Validate cannot see parameter interactions).
			if s.Islands != nil {
				_, _ = s.IslandConfig(1)
			} else {
				_, _ = s.Config(1)
			}
		}
		// Save→Load round trip: the serialized form decodes to the same
		// specs.
		var buf bytes.Buffer
		if err := Save(&buf, specs); err != nil {
			t.Fatalf("Save rejected loaded specs: %v", err)
		}
		again, err := Load(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("round trip failed to load: %v\nserialized: %s", err, buf.Bytes())
		}
		if !reflect.DeepEqual(specs, again) {
			a, _ := json.Marshal(specs)
			b, _ := json.Marshal(again)
			t.Fatalf("round trip changed the specs:\n before %s\n after  %s", a, b)
		}
	})
}
