package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Load reads one spec or a JSON array of specs and validates each. Both
// forms are accepted so a scenario file can grow from a single experiment
// into a batch without changing shape.
func Load(r io.Reader) ([]Spec, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("scenario: read: %w", err)
	}
	trimmed := bytes.TrimSpace(data)
	var specs []Spec
	if len(trimmed) > 0 && trimmed[0] == '[' {
		if err := strictUnmarshal(trimmed, &specs); err != nil {
			return nil, fmt.Errorf("scenario: parse list: %w", err)
		}
	} else {
		var s Spec
		if err := strictUnmarshal(trimmed, &s); err != nil {
			return nil, fmt.Errorf("scenario: parse: %w", err)
		}
		specs = []Spec{s}
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("scenario: empty spec list")
	}
	for i := range specs {
		if err := specs[i].Validate(); err != nil {
			return nil, err
		}
	}
	return specs, nil
}

// strictUnmarshal rejects unknown fields so a typo in a hand-written spec
// ("generation": 100) fails loudly instead of silently running defaults,
// and rejects trailing content so concatenated specs (instead of a JSON
// array) cannot silently drop every spec after the first.
func strictUnmarshal(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	var extra json.RawMessage
	if err := dec.Decode(&extra); err != io.EOF {
		return fmt.Errorf("trailing data after the JSON value (use an array for multiple specs)")
	}
	return nil
}

// LoadFile loads specs from a JSON file.
func LoadFile(path string) ([]Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	defer f.Close()
	specs, err := Load(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return specs, nil
}

// FromArg resolves a CLI scenario argument: a path to a JSON spec file if
// one exists there, otherwise a registered family name, otherwise a
// registered scenario name.
func FromArg(arg string) ([]Spec, error) {
	if info, err := os.Stat(arg); err == nil && !info.IsDir() {
		return LoadFile(arg)
	}
	if f, err := FamilyByName(arg); err == nil {
		return f.Specs(), nil
	}
	if s, err := SpecByName(arg); err == nil {
		return []Spec{s}, nil
	}
	return nil, fmt.Errorf("scenario: %q is neither a spec file, a family, nor a scenario name (families: %s)",
		arg, familyNames())
}

// Save writes specs as indented JSON: a bare object for a single spec, an
// array otherwise — the same shapes Load accepts.
func Save(w io.Writer, specs []Spec) error {
	if len(specs) == 0 {
		return fmt.Errorf("scenario: no specs to save")
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if len(specs) == 1 {
		return enc.Encode(specs[0])
	}
	return enc.Encode(specs)
}
