// Package stats provides the descriptive statistics used to aggregate the
// paper's experiments: every reported number is "repeated 60 times and the
// average value is taken as a result" (§6.1), and the reproduction records
// dispersion alongside each mean so readers can judge how tight the bands
// are.
package stats

import (
	"fmt"
	"math"
	"slices"
)

// Mean returns the arithmetic mean of xs, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance (n-1 denominator), or NaN
// when fewer than two samples are given.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// MinMax returns the smallest and largest values. It panics on an empty
// slice.
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		panic("stats: MinMax of empty slice")
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) using linear interpolation
// between order statistics. It panics on an empty slice or q outside [0,1].
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty slice")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %v outside [0,1]", q))
	}
	sorted := append([]float64(nil), xs...)
	slices.Sort(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 0.5-quantile.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// CI95HalfWidth returns the half-width of a normal-approximation 95%
// confidence interval for the mean (1.96·s/√n), or 0 for fewer than two
// samples.
func CI95HalfWidth(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	return 1.96 * StdDev(xs) / math.Sqrt(float64(len(xs)))
}

// Summary is a one-pass description of a sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
}

// Summarize computes a Summary. An empty sample yields a zero Summary with
// NaN moments.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{Mean: math.NaN(), StdDev: math.NaN(), Min: math.NaN(), Max: math.NaN()}
	}
	lo, hi := MinMax(xs)
	s := Summary{N: len(xs), Mean: Mean(xs), Min: lo, Max: hi}
	if len(xs) > 1 {
		s.StdDev = StdDev(xs)
	}
	return s
}

// String renders the summary compactly, e.g. "0.531 ± 0.012 [0.50,0.55] n=60".
func (s Summary) String() string {
	return fmt.Sprintf("%.4g ± %.2g [%.4g,%.4g] n=%d", s.Mean, s.StdDev, s.Min, s.Max, s.N)
}
