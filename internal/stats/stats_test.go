package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %v, want 2.5", got)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) is not NaN")
	}
	if got := Mean([]float64{7}); got != 7 {
		t.Errorf("Mean single = %v", got)
	}
}

func TestVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !approx(got, 32.0/7.0, 1e-12) {
		t.Errorf("Variance = %v, want %v", got, 32.0/7.0)
	}
	if got := StdDev(xs); !approx(got, math.Sqrt(32.0/7.0), 1e-12) {
		t.Errorf("StdDev = %v", got)
	}
	if !math.IsNaN(Variance([]float64{1})) {
		t.Error("Variance of one sample is not NaN")
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7, 2})
	if lo != -1 || hi != 7 {
		t.Errorf("MinMax = %v,%v", lo, hi)
	}
	defer func() {
		if recover() == nil {
			t.Error("MinMax(empty) did not panic")
		}
	}()
	MinMax(nil)
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !approx(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// Interpolation between order statistics.
	if got := Quantile([]float64{0, 10}, 0.5); !approx(got, 5, 1e-12) {
		t.Errorf("interpolated median = %v, want 5", got)
	}
	// Input must not be reordered.
	orig := []float64{5, 1, 3}
	Quantile(orig, 0.5)
	if orig[0] != 5 || orig[1] != 1 || orig[2] != 3 {
		t.Error("Quantile reordered its input")
	}
}

func TestQuantilePanics(t *testing.T) {
	for _, q := range []float64{-0.1, 1.1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Quantile(%v) did not panic", q)
				}
			}()
			Quantile([]float64{1}, q)
		}()
	}
}

func TestMedian(t *testing.T) {
	if got := Median([]float64{9, 1, 5}); got != 5 {
		t.Errorf("Median = %v, want 5", got)
	}
}

func TestCI95(t *testing.T) {
	if got := CI95HalfWidth([]float64{5}); got != 0 {
		t.Errorf("CI of single sample = %v, want 0", got)
	}
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	want := 1.96 * StdDev(xs) / math.Sqrt(10)
	if got := CI95HalfWidth(xs); !approx(got, want, 1e-12) {
		t.Errorf("CI95 = %v, want %v", got, want)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if s.N != 3 || s.Mean != 2 || s.Min != 1 || s.Max != 3 {
		t.Errorf("Summary = %+v", s)
	}
	if s.String() == "" {
		t.Error("Summary.String is empty")
	}
	empty := Summarize(nil)
	if empty.N != 0 || !math.IsNaN(empty.Mean) {
		t.Errorf("empty Summary = %+v", empty)
	}
}

func TestRunningMatchesBatch(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3}
	var r Running
	for _, x := range xs {
		r.Add(x)
	}
	if !approx(r.Mean(), Mean(xs), 1e-12) {
		t.Errorf("running mean %v != batch %v", r.Mean(), Mean(xs))
	}
	if !approx(r.Variance(), Variance(xs), 1e-9) {
		t.Errorf("running variance %v != batch %v", r.Variance(), Variance(xs))
	}
	lo, hi := MinMax(xs)
	if r.Min() != lo || r.Max() != hi {
		t.Errorf("running min/max %v/%v != %v/%v", r.Min(), r.Max(), lo, hi)
	}
	if r.N() != len(xs) {
		t.Errorf("N = %d", r.N())
	}
}

func TestRunningEmpty(t *testing.T) {
	var r Running
	if !math.IsNaN(r.Mean()) || !math.IsNaN(r.Variance()) || !math.IsNaN(r.Min()) {
		t.Error("empty Running should return NaN moments")
	}
}

// Property: Running agrees with the batch mean for arbitrary samples.
func TestRunningProperty(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		var r Running
		for i, v := range raw {
			xs[i] = float64(v)
			r.Add(xs[i])
		}
		if !approx(r.Mean(), Mean(xs), 1e-6) {
			return false
		}
		if len(xs) > 1 && !approx(r.Variance(), Variance(xs), 1e-4) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSeriesAccumulator(t *testing.T) {
	var a SeriesAccumulator
	a.AddSeries([]float64{1, 2, 3})
	a.AddSeries([]float64{3, 4, 5})
	mean := a.Mean()
	want := []float64{2, 3, 4}
	for i := range want {
		if mean[i] != want[i] {
			t.Errorf("mean[%d] = %v, want %v", i, mean[i], want[i])
		}
	}
	if a.Len() != 3 {
		t.Errorf("Len = %d", a.Len())
	}
	sd := a.StdDev()
	if !approx(sd[0], math.Sqrt(2), 1e-12) {
		t.Errorf("sd[0] = %v", sd[0])
	}
}

func TestSeriesAccumulatorRagged(t *testing.T) {
	var a SeriesAccumulator
	a.AddSeries([]float64{1, 1})
	a.AddSeries([]float64{3, 3, 3})
	mean := a.Mean()
	if len(mean) != 3 {
		t.Fatalf("ragged accumulator length %d, want 3", len(mean))
	}
	if mean[0] != 2 || mean[1] != 2 || mean[2] != 3 {
		t.Errorf("ragged mean = %v", mean)
	}
}

func BenchmarkRunningAdd(b *testing.B) {
	var r Running
	for i := 0; i < b.N; i++ {
		r.Add(float64(i % 100))
	}
}
