package stats

import "math"

// Running accumulates a sample one value at a time using Welford's
// algorithm, so long evolution runs can track fitness moments without
// retaining every observation. The zero value is ready to use.
type Running struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add feeds one observation.
func (r *Running) Add(x float64) {
	r.n++
	if r.n == 1 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	delta := x - r.mean
	r.mean += delta / float64(r.n)
	r.m2 += delta * (x - r.mean)
}

// N returns the number of observations so far.
func (r *Running) N() int { return r.n }

// Mean returns the running mean, or NaN before any observation.
func (r *Running) Mean() float64 {
	if r.n == 0 {
		return math.NaN()
	}
	return r.mean
}

// Variance returns the unbiased running variance, or NaN before two
// observations.
func (r *Running) Variance() float64 {
	if r.n < 2 {
		return math.NaN()
	}
	return r.m2 / float64(r.n-1)
}

// StdDev returns the running standard deviation.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Variance()) }

// Min returns the smallest observation, or NaN before any observation.
func (r *Running) Min() float64 {
	if r.n == 0 {
		return math.NaN()
	}
	return r.min
}

// Max returns the largest observation, or NaN before any observation.
func (r *Running) Max() float64 {
	if r.n == 0 {
		return math.NaN()
	}
	return r.max
}

// Summary converts the accumulator to a Summary snapshot.
func (r *Running) Summary() Summary {
	s := Summary{N: r.n, Mean: r.Mean(), Min: r.Min(), Max: r.Max()}
	if r.n > 1 {
		s.StdDev = r.StdDev()
	}
	return s
}

// SeriesAccumulator averages several equal-length series point by point:
// the Fig 4 curves are means over 60 replicate series. Series of different
// lengths may be added; each index is averaged over the series that
// reached it.
type SeriesAccumulator struct {
	points []Running
}

// AddSeries feeds one replicate's series.
func (a *SeriesAccumulator) AddSeries(ys []float64) {
	for len(a.points) < len(ys) {
		a.points = append(a.points, Running{})
	}
	for i, y := range ys {
		a.points[i].Add(y)
	}
}

// Len returns the length of the longest series added.
func (a *SeriesAccumulator) Len() int { return len(a.points) }

// Mean returns the point-wise mean series.
func (a *SeriesAccumulator) Mean() []float64 {
	out := make([]float64, len(a.points))
	for i := range a.points {
		out[i] = a.points[i].Mean()
	}
	return out
}

// StdDev returns the point-wise sample standard deviation series (NaN
// where fewer than two replicates contributed).
func (a *SeriesAccumulator) StdDev() []float64 {
	out := make([]float64, len(a.points))
	for i := range a.points {
		out[i] = a.points[i].StdDev()
	}
	return out
}
