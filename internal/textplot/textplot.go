// Package textplot draws simple ASCII line charts. It exists to render the
// paper's Figure 4 (evolution of the cooperation level over generations)
// directly in a terminal, with one mark per series and a shared y-axis.
package textplot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named curve. Y values are plotted against their index
// (scaled to the chart width), which matches generation-indexed data.
type Series struct {
	Name string
	Y    []float64
}

// Chart collects series and layout options. The zero value plus AddSeries
// is usable; Width/Height default when non-positive.
type Chart struct {
	Title  string
	Width  int // plot area columns (default 70)
	Height int // plot area rows (default 16)
	YMin   float64
	YMax   float64
	FixedY bool // when true, use YMin/YMax instead of autoscaling
	series []Series
}

// Marks used for successive series, in order.
var marks = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// AddSeries appends a curve to the chart.
func (c *Chart) AddSeries(name string, y []float64) {
	c.series = append(c.series, Series{Name: name, Y: y})
}

func (c *Chart) bounds() (lo, hi float64) {
	if c.FixedY {
		return c.YMin, c.YMax
	}
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, s := range c.series {
		for _, v := range s.Y {
			if math.IsNaN(v) {
				continue
			}
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	if math.IsInf(lo, 1) { // no data
		return 0, 1
	}
	if lo == hi {
		lo -= 0.5
		hi += 0.5
	}
	return lo, hi
}

// Render draws the chart. Each series is resampled onto the plot width by
// nearest-index lookup; later series overdraw earlier ones where they
// collide.
func (c *Chart) Render() string {
	width, height := c.Width, c.Height
	if width <= 0 {
		width = 70
	}
	if height <= 0 {
		height = 16
	}
	lo, hi := c.bounds()
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range c.series {
		mark := marks[si%len(marks)]
		n := len(s.Y)
		if n == 0 {
			continue
		}
		for col := 0; col < width; col++ {
			var idx int
			if width == 1 {
				idx = 0
			} else {
				idx = int(math.Round(float64(col) / float64(width-1) * float64(n-1)))
			}
			v := s.Y[idx]
			if math.IsNaN(v) {
				continue
			}
			frac := (v - lo) / (hi - lo)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			row := int(math.Round((1 - frac) * float64(height-1)))
			grid[row][col] = mark
		}
	}
	var sb strings.Builder
	if c.Title != "" {
		sb.WriteString(c.Title)
		sb.WriteByte('\n')
	}
	for i, row := range grid {
		var label string
		switch i {
		case 0:
			label = fmt.Sprintf("%8.3g", hi)
		case height - 1:
			label = fmt.Sprintf("%8.3g", lo)
		default:
			label = strings.Repeat(" ", 8)
		}
		sb.WriteString(label)
		sb.WriteString(" |")
		sb.WriteString(strings.TrimRight(string(row), " "))
		sb.WriteByte('\n')
	}
	sb.WriteString(strings.Repeat(" ", 8))
	sb.WriteString(" +")
	sb.WriteString(strings.Repeat("-", width))
	sb.WriteByte('\n')
	// Legend.
	for si, s := range c.series {
		fmt.Fprintf(&sb, "%s %c %s", strings.Repeat(" ", 8), marks[si%len(marks)], s.Name)
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Sparkline renders a single series as one line of block characters, for
// compact progress logging.
func Sparkline(y []float64) string {
	if len(y) == 0 {
		return ""
	}
	blocks := []rune("▁▂▃▄▅▆▇█")
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range y {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if lo == hi {
		hi = lo + 1
	}
	var sb strings.Builder
	for _, v := range y {
		frac := (v - lo) / (hi - lo)
		idx := int(frac * float64(len(blocks)-1))
		if idx < 0 {
			idx = 0
		}
		if idx >= len(blocks) {
			idx = len(blocks) - 1
		}
		sb.WriteRune(blocks[idx])
	}
	return sb.String()
}
