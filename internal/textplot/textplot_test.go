package textplot

import (
	"math"
	"strings"
	"testing"
	"unicode/utf8"
)

func TestRenderBasic(t *testing.T) {
	var c Chart
	c.Title = "coop"
	c.AddSeries("case 1", []float64{0, 0.5, 1})
	out := c.Render()
	if !strings.HasPrefix(out, "coop\n") {
		t.Errorf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "*") {
		t.Errorf("missing series mark:\n%s", out)
	}
	if !strings.Contains(out, "case 1") {
		t.Errorf("missing legend:\n%s", out)
	}
}

func TestRenderMultipleSeriesDistinctMarks(t *testing.T) {
	var c Chart
	c.AddSeries("a", []float64{0, 0, 0})
	c.AddSeries("b", []float64{1, 1, 1})
	out := c.Render()
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Errorf("expected two distinct marks:\n%s", out)
	}
}

func TestRenderEmptyChart(t *testing.T) {
	var c Chart
	out := c.Render()
	if out == "" {
		t.Error("empty chart rendered nothing")
	}
}

func TestRenderConstantSeries(t *testing.T) {
	var c Chart
	c.AddSeries("flat", []float64{2, 2, 2, 2})
	out := c.Render()
	if !strings.Contains(out, "*") {
		t.Errorf("flat series not drawn:\n%s", out)
	}
}

func TestRenderFixedBounds(t *testing.T) {
	c := Chart{YMin: 0, YMax: 1, FixedY: true, Height: 5, Width: 10}
	c.AddSeries("s", []float64{0.5})
	out := c.Render()
	if !strings.Contains(out, "1") {
		t.Errorf("fixed upper bound not labeled:\n%s", out)
	}
	if !strings.Contains(out, "0") {
		t.Errorf("fixed lower bound not labeled:\n%s", out)
	}
}

func TestRenderHandlesNaN(t *testing.T) {
	var c Chart
	c.AddSeries("gap", []float64{0, math.NaN(), 1})
	out := c.Render() // must not panic
	if out == "" {
		t.Error("NaN series rendered nothing")
	}
}

func TestRenderRespectsDimensions(t *testing.T) {
	c := Chart{Width: 20, Height: 4}
	c.AddSeries("s", []float64{0, 1, 2, 3})
	out := c.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// 4 plot rows + 1 axis + 1 legend = 6.
	if len(lines) != 6 {
		t.Errorf("expected 6 lines, got %d:\n%s", len(lines), out)
	}
}

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{0, 1, 2, 3})
	if utf8.RuneCountInString(s) != 4 {
		t.Errorf("sparkline length = %d, want 4", utf8.RuneCountInString(s))
	}
	if Sparkline(nil) != "" {
		t.Error("empty sparkline should be empty string")
	}
	flat := Sparkline([]float64{5, 5})
	if utf8.RuneCountInString(flat) != 2 {
		t.Errorf("flat sparkline length = %d", utf8.RuneCountInString(flat))
	}
	// Monotone data should produce a monotone non-decreasing sparkline.
	mono := []rune(Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7}))
	for i := 1; i < len(mono); i++ {
		if mono[i] < mono[i-1] {
			t.Errorf("sparkline not monotone: %s", string(mono))
		}
	}
}
