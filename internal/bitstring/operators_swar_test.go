package bitstring

import (
	"testing"

	"adhocga/internal/rng"
)

// The SWAR operators are pinned bit-identical to the scalar *Ref
// implementations — and, for the randomized ones, draw-identical: after
// running both from equally seeded sources, a sentinel draw from each
// source must agree, proving the operators consumed the same number of
// values. Lengths 1–256 cover every tail shape: sub-word, word-aligned,
// and multi-word with ragged tails.

// swarLengths is the sweep used by the equivalence tests: every length in
// 1–70 (all small/tail shapes around the first word boundary) plus
// representatives up to 256 including the aligned and ±1 cases.
func swarLengths() []int {
	var ls []int
	for n := 1; n <= 70; n++ {
		ls = append(ls, n)
	}
	ls = append(ls, 96, 127, 128, 129, 130, 191, 192, 193, 200, 255, 256)
	return ls
}

func TestOnePointCrossoverMatchesRefAllLengths(t *testing.T) {
	r := rng.New(41)
	for _, n := range swarLengths() {
		a, b := Random(r, n), Random(r, n)
		// Every cut, including the degenerate out-of-range ones.
		for cut := -1; cut <= n+1; cut++ {
			c1, d1 := OnePointCrossover(a, b, cut)
			c2, d2 := OnePointCrossoverRef(a, b, cut)
			if !c1.Equal(c2) || !d1.Equal(d2) {
				t.Fatalf("n=%d cut=%d: SWAR differs from scalar reference", n, cut)
			}
		}
	}
}

func TestTwoPointCrossoverMatchesRefAllLengths(t *testing.T) {
	r := rng.New(42)
	for _, n := range swarLengths() {
		a, b := Random(r, n), Random(r, n)
		cuts := []int{-3, 0, 1, n / 3, n / 2, n - 1, n, n + 5}
		for _, lo := range cuts {
			for _, hi := range cuts {
				c1, d1 := TwoPointCrossover(a, b, lo, hi)
				c2, d2 := TwoPointCrossoverRef(a, b, lo, hi)
				if !c1.Equal(c2) || !d1.Equal(d2) {
					t.Fatalf("n=%d [%d,%d): SWAR differs from scalar reference", n, lo, hi)
				}
			}
		}
	}
}

func TestUniformCrossoverMatchesRefAllLengths(t *testing.T) {
	r := rng.New(43)
	for _, n := range swarLengths() {
		a, b := Random(r, n), Random(r, n)
		r1, r2 := rng.New(uint64(n)), rng.New(uint64(n))
		c1, d1 := UniformCrossover(r1, a, b)
		c2, d2 := UniformCrossoverRef(r2, a, b)
		if !c1.Equal(c2) || !d1.Equal(d2) {
			t.Fatalf("n=%d: SWAR differs from scalar reference", n)
		}
		if r1.Uint64() != r2.Uint64() {
			t.Fatalf("n=%d: SWAR consumed a different number of draws", n)
		}
	}
}

func TestMutateFlipMatchesRefAllLengths(t *testing.T) {
	r := rng.New(44)
	for _, n := range swarLengths() {
		for _, p := range []float64{0, 0.001, 0.1, 0.5, 0.9375, 1, 1.5, -2} {
			g := Random(r, n)
			m1, m2 := g.Clone(), g.Clone()
			r1, r2 := rng.New(uint64(n)*31+1), rng.New(uint64(n)*31+1)
			f1 := m1.MutateFlip(r1, p)
			f2 := m2.MutateFlipRef(r2, p)
			if f1 != f2 || !m1.Equal(m2) {
				t.Fatalf("n=%d p=%v: SWAR differs from scalar reference (%d vs %d flips)", n, p, f1, f2)
			}
			if r1.Uint64() != r2.Uint64() {
				t.Fatalf("n=%d p=%v: SWAR consumed a different number of draws", n, p)
			}
		}
	}
}

// The Into variants must reproduce the allocating forms exactly, including
// the RNG draw sequence, on every length and tail shape.
func TestIntoVariantsMatchAllocatingForms(t *testing.T) {
	r := rng.New(45)
	for _, n := range swarLengths() {
		a, b := Random(r, n), Random(r, n)
		c, d := New(n), New(n)

		r1, r2 := rng.New(uint64(n)+7), rng.New(uint64(n)+7)
		wc, wd := RandomOnePointCrossover(r1, a, b)
		RandomOnePointCrossoverInto(r2, a, b, c, d)
		if !c.Equal(wc) || !d.Equal(wd) || r1.Uint64() != r2.Uint64() {
			t.Fatalf("n=%d: RandomOnePointCrossoverInto diverges", n)
		}

		r1, r2 = rng.New(uint64(n)+8), rng.New(uint64(n)+8)
		wc, wd = RandomTwoPointCrossover(r1, a, b)
		RandomTwoPointCrossoverInto(r2, a, b, c, d)
		if !c.Equal(wc) || !d.Equal(wd) || r1.Uint64() != r2.Uint64() {
			t.Fatalf("n=%d: RandomTwoPointCrossoverInto diverges", n)
		}

		r1, r2 = rng.New(uint64(n)+9), rng.New(uint64(n)+9)
		wc, wd = UniformCrossover(r1, a, b)
		UniformCrossoverInto(r2, a, b, c, d)
		if !c.Equal(wc) || !d.Equal(wd) || r1.Uint64() != r2.Uint64() {
			t.Fatalf("n=%d: UniformCrossoverInto diverges", n)
		}
	}
}

func TestCopyFrom(t *testing.T) {
	r := rng.New(46)
	src := Random(r, 77)
	dst := Random(r, 77)
	dst.CopyFrom(src)
	if !dst.Equal(src) {
		t.Fatal("CopyFrom did not copy")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("CopyFrom with mismatched lengths must panic")
		}
	}()
	New(10).CopyFrom(src)
}

// MutateFlipGeom has a different draw sequence but the same marginals:
// each bit flips independently with probability p. Check the aggregate
// flip rate and the count == Hamming-distance invariant.
func TestMutateFlipGeomRate(t *testing.T) {
	r := rng.New(47)
	const trials = 20000
	const p = 0.1
	flips := 0
	for i := 0; i < trials; i++ {
		b := New(13)
		n := b.MutateFlipGeom(r, p)
		if n != b.OneCount() {
			t.Fatalf("reported %d flips, genome has %d ones", n, b.OneCount())
		}
		flips += n
	}
	got := float64(flips) / float64(trials*13)
	if got < 0.09 || got > 0.11 {
		t.Errorf("observed flip rate %v, want about %v", got, p)
	}
}

func TestMutateFlipGeomEdgeCases(t *testing.T) {
	r := rng.New(48)
	b := Random(r, 13)
	orig := b.Clone()
	if f := b.MutateFlipGeom(r, 0); f != 0 || !b.Equal(orig) {
		t.Error("MutateFlipGeom(0) changed the genome")
	}
	if f := b.MutateFlipGeom(r, 1); f != 13 || b.Hamming(orig) != 13 {
		t.Error("MutateFlipGeom(1) did not invert every bit")
	}
	// Tiny p on a long genome: flips stay sparse and in range (no panic,
	// no bias pile-up at word boundaries).
	long := New(256)
	long.MutateFlipGeom(r, 1e-9)
}

// Operator microbenches at the paper's genome length (13), one full word
// (64) and four words (256): the before/after rows of README's
// performance table. The *Ref rows keep the scalar baseline measurable in
// the same binary.

func benchCrossoverPair(b *testing.B, n int, f func(r *rng.Source, x, y Bits) (Bits, Bits)) {
	r := rng.New(1)
	x, y := Random(r, n), Random(r, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = f(r, x, y)
	}
}

func BenchmarkOnePointCrossover64(b *testing.B) {
	benchCrossoverPair(b, 64, RandomOnePointCrossover)
}

func BenchmarkOnePointCrossover256(b *testing.B) {
	benchCrossoverPair(b, 256, RandomOnePointCrossover)
}

func BenchmarkOnePointCrossoverRef(b *testing.B) {
	benchCrossoverPair(b, 13, func(r *rng.Source, x, y Bits) (Bits, Bits) {
		return OnePointCrossoverRef(x, y, r.IntRange(1, x.Len()-1))
	})
}

func BenchmarkUniformCrossover(b *testing.B) {
	benchCrossoverPair(b, 13, UniformCrossover)
}

func BenchmarkUniformCrossover256(b *testing.B) {
	benchCrossoverPair(b, 256, UniformCrossover)
}

func benchMutate(b *testing.B, n int, p float64, geom bool) {
	r := rng.New(1)
	x := Random(r, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if geom {
			x.MutateFlipGeom(r, p)
		} else {
			x.MutateFlip(r, p)
		}
	}
}

func BenchmarkMutateFlip64(b *testing.B)      { benchMutate(b, 64, 0.001, false) }
func BenchmarkMutateFlip256(b *testing.B)     { benchMutate(b, 256, 0.001, false) }
func BenchmarkMutateFlipGeom(b *testing.B)    { benchMutate(b, 13, 0.001, true) }
func BenchmarkMutateFlipGeom256(b *testing.B) { benchMutate(b, 256, 0.001, true) }

func BenchmarkMutateFlipRef(b *testing.B) {
	r := rng.New(1)
	x := Random(r, 13)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.MutateFlipRef(r, 0.001)
	}
}
