package bitstring

import (
	"strings"
	"testing"
	"testing/quick"

	"adhocga/internal/rng"
)

func TestNewZero(t *testing.T) {
	b := New(13)
	if b.Len() != 13 {
		t.Fatalf("Len = %d, want 13", b.Len())
	}
	for i := 0; i < 13; i++ {
		if b.Get(i) {
			t.Fatalf("bit %d of fresh string is set", i)
		}
	}
	if b.OneCount() != 0 {
		t.Fatalf("OneCount = %d, want 0", b.OneCount())
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestSetGetFlip(t *testing.T) {
	b := New(70) // spans two words
	b.Set(0, true)
	b.Set(69, true)
	b.Set(64, true)
	if !b.Get(0) || !b.Get(69) || !b.Get(64) {
		t.Fatal("Set bits not readable")
	}
	if b.OneCount() != 3 {
		t.Fatalf("OneCount = %d, want 3", b.OneCount())
	}
	b.Flip(64)
	if b.Get(64) {
		t.Fatal("Flip did not clear bit 64")
	}
	b.Set(0, false)
	if b.Get(0) {
		t.Fatal("Set(0,false) did not clear")
	}
}

func TestIndexPanics(t *testing.T) {
	b := New(5)
	for _, i := range []int{-1, 5, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Get(%d) did not panic", i)
				}
			}()
			b.Get(i)
		}()
	}
}

func TestParseRoundtrip(t *testing.T) {
	cases := []string{"", "0", "1", "0101101101111", "1111111111111", "0000000000000"}
	for _, s := range cases {
		b, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if got := b.String(); got != s {
			t.Errorf("roundtrip of %q gave %q", s, got)
		}
	}
}

func TestParseGrouped(t *testing.T) {
	b, err := Parse("010 101 101 111 1")
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 13 {
		t.Fatalf("grouped parse length = %d, want 13", b.Len())
	}
	if b.String() != "0101011011111" {
		t.Errorf("grouped parse = %q", b.String())
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	for _, s := range []string{"012", "abc", "0101x"} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", s)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse did not panic")
		}
	}()
	MustParse("2")
}

func TestGroupString(t *testing.T) {
	b := MustParse("0101011011111")
	if got := b.GroupString(3, 3, 3, 3, 1); got != "010 101 101 111 1" {
		t.Errorf("GroupString = %q", got)
	}
	// Remaining bits form a trailing group.
	if got := b.GroupString(3, 3); got != "010 101 1011111" {
		t.Errorf("GroupString(3,3) = %q", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := MustParse("1010")
	b := a.Clone()
	b.Flip(0)
	if !a.Get(0) {
		t.Fatal("mutating a clone changed the original")
	}
	if a.Equal(b) {
		t.Fatal("clone should differ after flip")
	}
}

func TestEqual(t *testing.T) {
	a := MustParse("101")
	b := MustParse("101")
	c := MustParse("100")
	d := MustParse("1010")
	if !a.Equal(b) {
		t.Error("identical strings not Equal")
	}
	if a.Equal(c) {
		t.Error("different strings Equal")
	}
	if a.Equal(d) {
		t.Error("different lengths Equal")
	}
}

func TestHamming(t *testing.T) {
	a := MustParse("10101")
	b := MustParse("00111")
	if got := a.Hamming(b); got != 2 {
		t.Errorf("Hamming = %d, want 2", got)
	}
	if got := a.Hamming(a); got != 0 {
		t.Errorf("self Hamming = %d", got)
	}
}

func TestHammingPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	MustParse("10").Hamming(MustParse("101"))
}

func TestRandomMasksTail(t *testing.T) {
	r := rng.New(1)
	for trial := 0; trial < 50; trial++ {
		b := Random(r, 13)
		// The canonical string must have exactly 13 chars and the Compact
		// keys of equal strings must collide.
		if len(b.String()) != 13 {
			t.Fatalf("Random(13) string length %d", len(b.String()))
		}
		c := b.Clone()
		if b.Compact() != c.Compact() {
			t.Fatal("clone has different Compact key")
		}
	}
}

func TestRandomCoversBothValues(t *testing.T) {
	r := rng.New(2)
	ones := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		ones += Random(r, 13).OneCount()
	}
	total := trials * 13
	if ones < total/3 || ones > 2*total/3 {
		t.Errorf("Random produced %d ones of %d bits; distribution looks broken", ones, total)
	}
}

// Property: Parse(String(b)) == b for random bit strings.
func TestStringParseProperty(t *testing.T) {
	r := rng.New(3)
	f := func(n uint8) bool {
		b := Random(r, int(n)%100)
		p, err := Parse(b.String())
		return err == nil && p.Equal(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: OneCount(b) + OneCount(^b) == Len.
func TestOneCountComplementProperty(t *testing.T) {
	r := rng.New(4)
	f := func(n uint8) bool {
		b := Random(r, int(n)%100+1)
		inv := b.Clone()
		for i := 0; i < inv.Len(); i++ {
			inv.Flip(i)
		}
		return b.OneCount()+inv.OneCount() == b.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCompactDistinguishes(t *testing.T) {
	seen := map[string]bool{}
	r := rng.New(5)
	for i := 0; i < 100; i++ {
		seen[Random(r, 13).Compact()] = true
	}
	if len(seen) < 50 {
		t.Errorf("only %d distinct Compact keys from 100 random 13-bit strings", len(seen))
	}
	if strings.ContainsAny(Random(r, 13).Compact(), " \t") {
		t.Error("Compact contains whitespace")
	}
}

func BenchmarkRandom13(b *testing.B) {
	r := rng.New(1)
	for i := 0; i < b.N; i++ {
		_ = Random(r, 13)
	}
}

func BenchmarkHamming(b *testing.B) {
	r := rng.New(1)
	x := Random(r, 13)
	y := Random(r, 13)
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink = x.Hamming(y)
	}
	_ = sink
}
