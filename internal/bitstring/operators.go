package bitstring

import "adhocga/internal/rng"

// Genetic operators on bit strings. These are the mechanical pieces of §5:
// standard one-point crossover and uniform bit-flip mutation, plus the
// two-point and uniform variants used by the ablation benchmarks.

// OnePointCrossover cuts both parents at the same point cut ∈ [1, len-1]
// and exchanges the tails, returning two fresh children. With cut outside
// that range the children are plain copies. Parents are not modified.
func OnePointCrossover(a, b Bits, cut int) (Bits, Bits) {
	if a.n != b.n {
		panic("bitstring: crossover of unequal lengths")
	}
	c, d := a.Clone(), b.Clone()
	if cut < 1 || cut >= a.n {
		return c, d
	}
	for i := cut; i < a.n; i++ {
		c.Set(i, b.Get(i))
		d.Set(i, a.Get(i))
	}
	return c, d
}

// RandomOnePointCrossover performs OnePointCrossover at a uniformly random
// cut point in [1, len-1]. Strings shorter than 2 bits are returned as
// copies.
func RandomOnePointCrossover(r *rng.Source, a, b Bits) (Bits, Bits) {
	if a.n < 2 {
		return a.Clone(), b.Clone()
	}
	return OnePointCrossover(a, b, r.IntRange(1, a.n-1))
}

// TwoPointCrossover exchanges the segment [lo, hi) between the parents.
// Out-of-order or out-of-range bounds are clamped.
func TwoPointCrossover(a, b Bits, lo, hi int) (Bits, Bits) {
	if a.n != b.n {
		panic("bitstring: crossover of unequal lengths")
	}
	if lo < 0 {
		lo = 0
	}
	if hi > a.n {
		hi = a.n
	}
	c, d := a.Clone(), b.Clone()
	for i := lo; i < hi; i++ {
		c.Set(i, b.Get(i))
		d.Set(i, a.Get(i))
	}
	return c, d
}

// RandomTwoPointCrossover picks two random cut points and exchanges the
// middle segment.
func RandomTwoPointCrossover(r *rng.Source, a, b Bits) (Bits, Bits) {
	if a.n < 2 {
		return a.Clone(), b.Clone()
	}
	lo := r.Intn(a.n)
	hi := r.Intn(a.n + 1)
	if lo > hi {
		lo, hi = hi, lo
	}
	return TwoPointCrossover(a, b, lo, hi)
}

// UniformCrossover swaps each position independently with probability 0.5.
func UniformCrossover(r *rng.Source, a, b Bits) (Bits, Bits) {
	if a.n != b.n {
		panic("bitstring: crossover of unequal lengths")
	}
	c, d := a.Clone(), b.Clone()
	for i := 0; i < a.n; i++ {
		if r.Bool(0.5) {
			c.Set(i, b.Get(i))
			d.Set(i, a.Get(i))
		}
	}
	return c, d
}

// MutateFlip flips each bit independently with probability p, in place,
// and returns the number of flipped bits.
func (b Bits) MutateFlip(r *rng.Source, p float64) int {
	flips := 0
	for i := 0; i < b.n; i++ {
		if r.Bool(p) {
			b.Flip(i)
			flips++
		}
	}
	return flips
}
