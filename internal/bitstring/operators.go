package bitstring

import (
	"math"
	"math/bits"

	"adhocga/internal/rng"
)

// Genetic operators on bit strings. These are the mechanical pieces of §5:
// standard one-point crossover and uniform bit-flip mutation, plus the
// two-point and uniform variants used by the ablation benchmarks.
//
// All operators work on whole uint64 words with mask-based splicing (SWAR)
// rather than per-bit loops; scalar per-bit reference implementations are
// retained below (*Ref) and pinned bit-identical by the property and fuzz
// tests. The RNG draw-order contract of every randomized operator is
// documented in DESIGN.md §"RNG draw-order contract": MutateFlip keeps the
// historical one-draw-per-bit sequence (every engine golden pins it), while
// UniformCrossover consumes one word-sized mask per 64 bits.

// OnePointCrossover cuts both parents at the same point cut ∈ [1, len-1]
// and exchanges the tails, returning two fresh children. With cut outside
// that range the children are plain copies. Parents are not modified.
func OnePointCrossover(a, b Bits, cut int) (Bits, Bits) {
	c, d := a.Clone(), b.Clone()
	OnePointCrossoverInto(a, b, c, d, cut)
	return c, d
}

// OnePointCrossoverInto is OnePointCrossover writing the children into the
// caller-owned vectors c and d — the zero-allocation form the arena-reusing
// reproduction path uses. c and d must have the parents' length and may not
// alias a or b. It consumes no randomness.
func OnePointCrossoverInto(a, b, c, d Bits, cut int) {
	if a.n != b.n {
		panic("bitstring: crossover of unequal lengths")
	}
	c.copyFrom(a)
	d.copyFrom(b)
	if cut < 1 || cut >= a.n {
		return
	}
	swapBitRange(c.w, d.w, cut, a.n)
}

// RandomOnePointCrossover performs OnePointCrossover at a uniformly random
// cut point in [1, len-1]. Strings shorter than 2 bits are returned as
// copies. Draw contract: exactly one IntRange draw for strings of ≥ 2 bits,
// none otherwise.
func RandomOnePointCrossover(r *rng.Source, a, b Bits) (Bits, Bits) {
	if a.n < 2 {
		return a.Clone(), b.Clone()
	}
	return OnePointCrossover(a, b, r.IntRange(1, a.n-1))
}

// RandomOnePointCrossoverInto is RandomOnePointCrossover into caller-owned
// children, consuming the identical draw sequence.
func RandomOnePointCrossoverInto(r *rng.Source, a, b, c, d Bits) {
	if a.n < 2 {
		c.copyFrom(a)
		d.copyFrom(b)
		return
	}
	OnePointCrossoverInto(a, b, c, d, r.IntRange(1, a.n-1))
}

// TwoPointCrossover exchanges the segment [lo, hi) between the parents.
// Out-of-order or out-of-range bounds are clamped.
func TwoPointCrossover(a, b Bits, lo, hi int) (Bits, Bits) {
	c, d := a.Clone(), b.Clone()
	TwoPointCrossoverInto(a, b, c, d, lo, hi)
	return c, d
}

// TwoPointCrossoverInto is TwoPointCrossover into caller-owned children.
func TwoPointCrossoverInto(a, b, c, d Bits, lo, hi int) {
	if a.n != b.n {
		panic("bitstring: crossover of unequal lengths")
	}
	c.copyFrom(a)
	d.copyFrom(b)
	if lo < 0 {
		lo = 0
	}
	if hi > a.n {
		hi = a.n
	}
	if lo < hi {
		swapBitRange(c.w, d.w, lo, hi)
	}
}

// RandomTwoPointCrossover picks two random cut points and exchanges the
// middle segment. Draw contract: two Intn draws for strings of ≥ 2 bits,
// none otherwise.
func RandomTwoPointCrossover(r *rng.Source, a, b Bits) (Bits, Bits) {
	if a.n < 2 {
		return a.Clone(), b.Clone()
	}
	lo := r.Intn(a.n)
	hi := r.Intn(a.n + 1)
	if lo > hi {
		lo, hi = hi, lo
	}
	return TwoPointCrossover(a, b, lo, hi)
}

// RandomTwoPointCrossoverInto is RandomTwoPointCrossover into caller-owned
// children, consuming the identical draw sequence.
func RandomTwoPointCrossoverInto(r *rng.Source, a, b, c, d Bits) {
	if a.n < 2 {
		c.copyFrom(a)
		d.copyFrom(b)
		return
	}
	lo := r.Intn(a.n)
	hi := r.Intn(a.n + 1)
	if lo > hi {
		lo, hi = hi, lo
	}
	TwoPointCrossoverInto(a, b, c, d, lo, hi)
}

// UniformCrossover swaps each position independently with probability 0.5.
// Draw contract: one Uint64 mask per 64-bit word (⌈len/64⌉ draws); bit
// i%64 of mask i/64 decides position i. (Re-pinned from the historical
// one-Bool-per-bit sequence — no golden depended on it; see DESIGN.md.)
func UniformCrossover(r *rng.Source, a, b Bits) (Bits, Bits) {
	c, d := a.Clone(), b.Clone()
	UniformCrossoverInto(r, a, b, c, d)
	return c, d
}

// UniformCrossoverInto is UniformCrossover into caller-owned children,
// consuming the identical draw sequence.
func UniformCrossoverInto(r *rng.Source, a, b, c, d Bits) {
	if a.n != b.n {
		panic("bitstring: crossover of unequal lengths")
	}
	c.copyFrom(a)
	d.copyFrom(b)
	for wi := range c.w {
		// Tail bits beyond n are zero in both children (maskTail
		// invariant), so swapping them under an unmasked draw is a no-op.
		x := (c.w[wi] ^ d.w[wi]) & r.Uint64()
		c.w[wi] ^= x
		d.w[wi] ^= x
	}
}

// MutateFlip flips each bit independently with probability p, in place,
// and returns the number of flipped bits.
//
// Draw contract (pinned by every engine golden): for 0 < p < 1 exactly one
// Uint64 draw per bit, in bit order; p ≤ 0 and p ≥ 1 consume no draws.
// The implementation accumulates flips into a per-word XOR mask and decides
// each draw with an exact integer threshold: u>>11 < ceil(p·2⁵³) holds iff
// Float64() < p, because float64(u>>11)·2⁻⁵³ and p·2⁵³ are both exact.
func (b Bits) MutateFlip(r *rng.Source, p float64) int {
	if p <= 0 || b.n == 0 {
		return 0
	}
	if p >= 1 {
		for wi := range b.w {
			b.w[wi] = ^b.w[wi]
		}
		b.maskTail()
		return b.n
	}
	threshold := uint64(math.Ceil(p * (1 << 53)))
	flips := 0
	rem := b.n
	for wi := range b.w {
		width := 64
		if rem < 64 {
			width = rem
		}
		rem -= width
		if mask := r.BitMask(width, threshold); mask != 0 {
			b.w[wi] ^= mask
			flips += bits.OnesCount64(mask)
		}
	}
	return flips
}

// MutateFlipGeom is a geometric-skip variant of MutateFlip: instead of one
// draw per bit it draws the gap to the next flipped bit directly from the
// geometric distribution, so the expected cost is O(p·len) draws instead of
// O(len). The flip marginals are identical to MutateFlip's (each bit flips
// independently with probability p) but the draw sequence is different —
// one Float64 per flip plus one terminating draw — so results for a fixed
// seed differ from MutateFlip and the engine keeps MutateFlip wherever
// goldens pin the stream. See DESIGN.md §"RNG draw-order contract".
func (b Bits) MutateFlipGeom(r *rng.Source, p float64) int {
	if p <= 0 || b.n == 0 {
		return 0
	}
	if p >= 1 {
		return b.MutateFlip(r, p)
	}
	logq := math.Log1p(-p) // log(1-p) < 0
	flips := 0
	for i := 0; ; i++ {
		// Gap to the next flip: floor(log(1-u)/log(1-p)) with u ∈ [0,1) is
		// Geometric(p) on {0,1,2,…}; 1-u ∈ (0,1] keeps the log finite.
		skip := math.Log1p(-r.Float64()) / logq
		if skip >= float64(b.n-i) { // also catches +Inf
			break
		}
		i += int(skip)
		b.w[i/64] ^= 1 << (uint(i) % 64)
		flips++
	}
	return flips
}

// swapBitRange exchanges bits [lo, hi) between the equal-length word
// vectors x and y with mask-based word splicing. Callers guarantee
// 0 ≤ lo < hi ≤ 64·len(x).
func swapBitRange(x, y []uint64, lo, hi int) {
	loW, hiW := lo>>6, (hi-1)>>6
	loMask := ^uint64(0) << (uint(lo) % 64)
	hiMask := ^uint64(0) >> (63 - (uint(hi-1) % 64))
	if loW == hiW {
		swapMasked(x, y, loW, loMask&hiMask)
		return
	}
	swapMasked(x, y, loW, loMask)
	for wi := loW + 1; wi < hiW; wi++ {
		x[wi], y[wi] = y[wi], x[wi]
	}
	swapMasked(x, y, hiW, hiMask)
}

// swapMasked exchanges the masked bits of words x[wi] and y[wi].
func swapMasked(x, y []uint64, wi int, mask uint64) {
	d := (x[wi] ^ y[wi]) & mask
	x[wi] ^= d
	y[wi] ^= d
}

// copyFrom overwrites b with src's bits. Lengths must match.
func (b Bits) copyFrom(src Bits) {
	if b.n != src.n {
		panic("bitstring: copy between unequal lengths")
	}
	copy(b.w, src.w)
}

// CopyFrom overwrites b with src's bits in place, the reuse primitive of
// the arena reproduction path. Lengths must match; it panics otherwise.
func (b Bits) CopyFrom(src Bits) { b.copyFrom(src) }

// Scalar per-bit reference implementations. These are the semantics the
// SWAR operators above are pinned against (operators_test.go property
// tests, FuzzOperators): same inputs and — for the randomized ones — the
// same draw contract, bit-identical outputs. They are exported for the
// benchmarks' before/after comparison but carry no compatibility promise.

// OnePointCrossoverRef is the per-bit reference for OnePointCrossover.
func OnePointCrossoverRef(a, b Bits, cut int) (Bits, Bits) {
	if a.n != b.n {
		panic("bitstring: crossover of unequal lengths")
	}
	c, d := a.Clone(), b.Clone()
	if cut < 1 || cut >= a.n {
		return c, d
	}
	for i := cut; i < a.n; i++ {
		c.Set(i, b.Get(i))
		d.Set(i, a.Get(i))
	}
	return c, d
}

// TwoPointCrossoverRef is the per-bit reference for TwoPointCrossover.
func TwoPointCrossoverRef(a, b Bits, lo, hi int) (Bits, Bits) {
	if a.n != b.n {
		panic("bitstring: crossover of unequal lengths")
	}
	if lo < 0 {
		lo = 0
	}
	if hi > a.n {
		hi = a.n
	}
	c, d := a.Clone(), b.Clone()
	for i := lo; i < hi; i++ {
		c.Set(i, b.Get(i))
		d.Set(i, a.Get(i))
	}
	return c, d
}

// UniformCrossoverRef is the per-bit reference for UniformCrossover under
// the same word-mask draw contract: one Uint64 per word, bit i%64 decides
// position i.
func UniformCrossoverRef(r *rng.Source, a, b Bits) (Bits, Bits) {
	if a.n != b.n {
		panic("bitstring: crossover of unequal lengths")
	}
	c, d := a.Clone(), b.Clone()
	for wi := 0; wi < len(c.w); wi++ {
		mask := r.Uint64()
		for j := 0; j < 64; j++ {
			i := wi*64 + j
			if i >= a.n {
				break
			}
			if mask>>uint(j)&1 == 1 {
				c.Set(i, b.Get(i))
				d.Set(i, a.Get(i))
			}
		}
	}
	return c, d
}

// MutateFlipRef is the per-bit reference for MutateFlip: the historical
// one-Bool-per-bit loop, draw-identical to MutateFlip.
func (b Bits) MutateFlipRef(r *rng.Source, p float64) int {
	flips := 0
	for i := 0; i < b.n; i++ {
		if r.Bool(p) {
			b.Flip(i)
			flips++
		}
	}
	return flips
}
