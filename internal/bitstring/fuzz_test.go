package bitstring

import (
	"math"
	"strings"
	"testing"

	"adhocga/internal/rng"
)

// Native fuzz targets for the genetic operators: whatever the inputs, the
// operators must preserve genome length, conserve per-position bit
// multisets across crossover, leave parents untouched, and report
// mutation flip counts that match the actual Hamming distance. CI runs
// these with a short -fuzztime smoke on top of the checked-in corpus
// (testdata/fuzz); locally run e.g.
//
//	go test -fuzz FuzzOperators -fuzztime 30s ./internal/bitstring/
func FuzzOperators(f *testing.F) {
	f.Add(uint16(13), uint64(1), uint64(2), uint64(3), 5, 0.001)
	f.Add(uint16(1), uint64(0), uint64(0), uint64(0), 0, 0.0)
	f.Add(uint16(64), uint64(7), uint64(8), uint64(9), 64, 1.0)
	f.Add(uint16(65), uint64(10), uint64(11), uint64(12), -3, 0.5)
	f.Add(uint16(200), uint64(999), uint64(998), uint64(997), 1000, 2.5)
	f.Fuzz(func(t *testing.T, n uint16, seedA, seedB, seedOp uint64, cut int, p float64) {
		length := 1 + int(n)%256
		a := Random(rng.New(seedA), length)
		b := Random(rng.New(seedB), length)
		aOrig, bOrig := a.Clone(), b.Clone()

		checkPair := func(name string, c, d Bits) {
			t.Helper()
			if c.Len() != length || d.Len() != length {
				t.Fatalf("%s: child lengths %d/%d, want %d", name, c.Len(), d.Len(), length)
			}
			for i := 0; i < length; i++ {
				// Per-position bit conservation: crossover only exchanges,
				// never invents material.
				if (c.Get(i) != a.Get(i) || d.Get(i) != b.Get(i)) &&
					(c.Get(i) != b.Get(i) || d.Get(i) != a.Get(i)) {
					t.Fatalf("%s: position %d not conserved", name, i)
				}
			}
			if !a.Equal(aOrig) || !b.Equal(bOrig) {
				t.Fatalf("%s: parents modified", name)
			}
		}

		c, d := OnePointCrossover(a, b, cut)
		checkPair("OnePointCrossover", c, d)
		// SWAR vs scalar reference: bit-identical on every input shape.
		if rc, rd := OnePointCrossoverRef(a, b, cut); !c.Equal(rc) || !d.Equal(rd) {
			t.Fatal("OnePointCrossover differs from scalar reference")
		}
		if cut < 1 || cut >= length {
			if !c.Equal(a) || !d.Equal(b) {
				t.Fatal("out-of-range cut must copy the parents")
			}
		} else {
			for i := 0; i < length; i++ {
				wantC, wantD := a.Get(i), b.Get(i)
				if i >= cut {
					wantC, wantD = wantD, wantC
				}
				if c.Get(i) != wantC || d.Get(i) != wantD {
					t.Fatalf("one-point semantics violated at bit %d (cut %d)", i, cut)
				}
			}
		}

		r := rng.New(seedOp)
		c, d = RandomOnePointCrossover(r, a, b)
		checkPair("RandomOnePointCrossover", c, d)
		c, d = RandomTwoPointCrossover(r, a, b)
		checkPair("RandomTwoPointCrossover", c, d)
		uc1, uc2 := rng.New(seedOp+1), rng.New(seedOp+1)
		c, d = UniformCrossover(uc1, a, b)
		checkPair("UniformCrossover", c, d)
		if rc, rd := UniformCrossoverRef(uc2, a, b); !c.Equal(rc) || !d.Equal(rd) || uc1.Uint64() != uc2.Uint64() {
			t.Fatal("UniformCrossover differs from scalar reference (bits or draw count)")
		}

		lo, hi := cut, cut+int(n)%7
		c, d = TwoPointCrossover(a, b, lo, hi)
		checkPair("TwoPointCrossover", c, d)
		if rc, rd := TwoPointCrossoverRef(a, b, lo, hi); !c.Equal(rc) || !d.Equal(rd) {
			t.Fatal("TwoPointCrossover differs from scalar reference")
		}

		// Mutation: the reported flip count is the Hamming distance to the
		// pre-mutation genome, and identical seeds replay identically.
		mp := math.Abs(p)
		mp -= math.Floor(mp) // fold into [0,1)
		m1 := a.Clone()
		flips := m1.MutateFlip(rng.New(seedOp), mp)
		if got := m1.Hamming(a); got != flips {
			t.Fatalf("MutateFlip reported %d flips, Hamming says %d", flips, got)
		}
		m2 := a.Clone()
		m2.MutateFlip(rng.New(seedOp), mp)
		if !m1.Equal(m2) {
			t.Fatal("MutateFlip not deterministic for a fixed seed")
		}
		// SWAR vs the historical per-bit loop: identical bits, flip count
		// and draw count (the engine goldens pin this sequence).
		m3 := a.Clone()
		mr1, mr2 := rng.New(seedOp), rng.New(seedOp)
		m1 = a.Clone()
		f1 := m1.MutateFlip(mr1, mp)
		f2 := m3.MutateFlipRef(mr2, mp)
		if f1 != f2 || !m1.Equal(m3) || mr1.Uint64() != mr2.Uint64() {
			t.Fatal("MutateFlip differs from scalar reference (bits, count, or draws)")
		}

		// Geometric-skip mutation: different draw contract, same
		// count-equals-Hamming invariant and determinism.
		g1, g2 := a.Clone(), a.Clone()
		gf := g1.MutateFlipGeom(rng.New(seedOp+2), mp)
		if got := g1.Hamming(a); got != gf {
			t.Fatalf("MutateFlipGeom reported %d flips, Hamming says %d", gf, got)
		}
		g2.MutateFlipGeom(rng.New(seedOp+2), mp)
		if !g1.Equal(g2) {
			t.Fatal("MutateFlipGeom not deterministic for a fixed seed")
		}
	})
}

// FuzzParse checks the parser against arbitrary input: it must never
// panic, must reject anything containing a non-binary, non-space rune, and
// must round-trip through String for everything it accepts.
func FuzzParse(f *testing.F) {
	f.Add("010 101 101 111 1")
	f.Add("0101011011111")
	f.Add("")
	f.Add("012")
	f.Add("1 0 1")
	f.Add(strings.Repeat("10", 300))
	f.Fuzz(func(t *testing.T, s string) {
		b, err := Parse(s)
		cleaned := strings.ReplaceAll(s, " ", "")
		valid := true
		for _, c := range cleaned {
			if c != '0' && c != '1' {
				valid = false
				break
			}
		}
		if valid != (err == nil) {
			t.Fatalf("Parse(%q) err=%v, want validity %v", s, err, valid)
		}
		if err != nil {
			return
		}
		if b.Len() != len(cleaned) {
			t.Fatalf("parsed %d bits from %d characters", b.Len(), len(cleaned))
		}
		if b.String() != cleaned {
			t.Fatalf("round trip: %q -> %q", cleaned, b.String())
		}
		if b.OneCount() != strings.Count(cleaned, "1") {
			t.Fatalf("OneCount %d, want %d", b.OneCount(), strings.Count(cleaned, "1"))
		}
	})
}
