// Package bitstring implements the fixed-length binary genomes evolved by
// the genetic algorithm: the paper's 13-bit forwarding strategies (§3.3)
// and the 5-bit IPDRP strategies of Namikawa and Ishibuchi that the model
// generalizes.
//
// Genomes are small (≤ 64 bits throughout this repository) but the package
// supports arbitrary lengths so the genetic operators can be tested
// property-style on random widths.
package bitstring

import (
	"fmt"
	"math/bits"
	"strings"

	"adhocga/internal/rng"
)

// Bits is a fixed-length bit vector. Index 0 is the first bit, matching the
// paper's bit numbering ("bit no. 0-11", Fig 1c). The zero value is the
// empty bit string.
//
// Bits values share no state after Clone and the genetic operators always
// return fresh vectors, so a Bits can be used as a map key via Compact().
type Bits struct {
	n int
	w []uint64
}

// New returns an all-zero bit string of length n. It panics if n < 0.
func New(n int) Bits {
	if n < 0 {
		panic("bitstring: negative length")
	}
	return Bits{n: n, w: make([]uint64, (n+63)/64)}
}

// Random returns a uniformly random bit string of length n.
func Random(r *rng.Source, n int) Bits {
	b := New(n)
	b.FillRandom(r)
	return b
}

// FillRandom overwrites b with uniformly random bits in place, drawing
// exactly as Random(r, b.Len()) does — one Uint64 per word. It is the
// reuse primitive for re-randomizing a population without reallocating
// its genomes.
func (b Bits) FillRandom(r *rng.Source) {
	for i := range b.w {
		b.w[i] = r.Uint64()
	}
	b.maskTail()
}

// Parse decodes a string of '0' and '1' characters; spaces are ignored so
// the paper's grouped notation ("010 101 101 111 1") parses directly.
func Parse(s string) (Bits, error) {
	cleaned := strings.ReplaceAll(s, " ", "")
	b := New(len(cleaned))
	for i, c := range cleaned {
		switch c {
		case '0':
		case '1':
			b.Set(i, true)
		default:
			return Bits{}, fmt.Errorf("bitstring: invalid character %q at position %d", c, i)
		}
	}
	return b, nil
}

// MustParse is Parse that panics on malformed input; for literals in tests
// and tables.
func MustParse(s string) Bits {
	b, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return b
}

// maskTail clears the unused bits of the last word so that Equal and
// Compact can compare words directly.
func (b *Bits) maskTail() {
	if b.n%64 != 0 && len(b.w) > 0 {
		b.w[len(b.w)-1] &= (uint64(1) << (uint64(b.n) % 64)) - 1
	}
}

// Len returns the number of bits.
func (b Bits) Len() int { return b.n }

// Get reports whether bit i is set. It panics if i is out of range.
func (b Bits) Get(i int) bool {
	b.check(i)
	return b.w[i/64]&(1<<(uint64(i)%64)) != 0
}

// Set assigns bit i. It panics if i is out of range.
func (b Bits) Set(i int, v bool) {
	b.check(i)
	if v {
		b.w[i/64] |= 1 << (uint64(i) % 64)
	} else {
		b.w[i/64] &^= 1 << (uint64(i) % 64)
	}
}

// Flip inverts bit i. It panics if i is out of range.
func (b Bits) Flip(i int) {
	b.check(i)
	b.w[i/64] ^= 1 << (uint64(i) % 64)
}

func (b Bits) check(i int) {
	if i < 0 || i >= b.n {
		panic(fmt.Sprintf("bitstring: index %d out of range [0,%d)", i, b.n))
	}
}

// Clone returns an independent copy.
func (b Bits) Clone() Bits {
	c := Bits{n: b.n, w: make([]uint64, len(b.w))}
	copy(c.w, b.w)
	return c
}

// Equal reports whether two bit strings have the same length and contents.
func (b Bits) Equal(o Bits) bool {
	if b.n != o.n {
		return false
	}
	for i := range b.w {
		if b.w[i] != o.w[i] {
			return false
		}
	}
	return true
}

// OneCount returns the number of set bits.
func (b Bits) OneCount() int {
	total := 0
	for _, w := range b.w {
		total += bits.OnesCount64(w)
	}
	return total
}

// Hamming returns the number of positions at which b and o differ. It
// panics if the lengths differ.
func (b Bits) Hamming(o Bits) int {
	if b.n != o.n {
		panic("bitstring: Hamming distance of unequal lengths")
	}
	d := 0
	for i := range b.w {
		d += bits.OnesCount64(b.w[i] ^ o.w[i])
	}
	return d
}

// String renders the bits as a '0'/'1' string, bit 0 first.
func (b Bits) String() string {
	var sb strings.Builder
	sb.Grow(b.n)
	for i := 0; i < b.n; i++ {
		if b.Get(i) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// Compact returns a canonical comparable key for the bit string. Two Bits
// have equal Compact values iff Equal reports true.
func (b Bits) Compact() string { return b.String() }

// GroupString renders the bits in space-separated groups of the given
// sizes, e.g. GroupString(3,3,3,3,1) reproduces the paper's strategy
// notation. Remaining bits after the listed groups form a final group.
func (b Bits) GroupString(sizes ...int) string {
	var sb strings.Builder
	i := 0
	for _, size := range sizes {
		if i >= b.n {
			break
		}
		if i > 0 {
			sb.WriteByte(' ')
		}
		for j := 0; j < size && i < b.n; j++ {
			if b.Get(i) {
				sb.WriteByte('1')
			} else {
				sb.WriteByte('0')
			}
			i++
		}
	}
	if i < b.n {
		if i > 0 {
			sb.WriteByte(' ')
		}
		for ; i < b.n; i++ {
			if b.Get(i) {
				sb.WriteByte('1')
			} else {
				sb.WriteByte('0')
			}
		}
	}
	return sb.String()
}
