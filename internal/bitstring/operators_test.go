package bitstring

import (
	"testing"
	"testing/quick"

	"adhocga/internal/rng"
)

func TestOnePointCrossoverExact(t *testing.T) {
	a := MustParse("11111")
	b := MustParse("00000")
	c, d := OnePointCrossover(a, b, 2)
	if c.String() != "11000" {
		t.Errorf("child c = %s, want 11000", c)
	}
	if d.String() != "00111" {
		t.Errorf("child d = %s, want 00111", d)
	}
	// Parents untouched.
	if a.String() != "11111" || b.String() != "00000" {
		t.Error("crossover modified a parent")
	}
}

func TestOnePointCrossoverDegenerateCut(t *testing.T) {
	a := MustParse("101")
	b := MustParse("010")
	for _, cut := range []int{0, 3, -5, 100} {
		c, d := OnePointCrossover(a, b, cut)
		if !c.Equal(a) || !d.Equal(b) {
			t.Errorf("cut %d: children are not parent copies", cut)
		}
	}
}

func TestCrossoverLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	OnePointCrossover(MustParse("10"), MustParse("101"), 1)
}

func TestTwoPointCrossoverExact(t *testing.T) {
	a := MustParse("111111")
	b := MustParse("000000")
	c, d := TwoPointCrossover(a, b, 2, 4)
	if c.String() != "110011" {
		t.Errorf("c = %s, want 110011", c)
	}
	if d.String() != "001100" {
		t.Errorf("d = %s, want 001100", d)
	}
}

func TestTwoPointCrossoverClamps(t *testing.T) {
	a := MustParse("1111")
	b := MustParse("0000")
	c, d := TwoPointCrossover(a, b, -3, 99)
	if !c.Equal(b) || !d.Equal(a) {
		t.Error("full-range two-point crossover should swap entire strings")
	}
}

// Property: each child position carries one of the two parent alleles, and
// the two children are complementary (child1[i]==a[i] iff child2[i]==b[i]).
func TestCrossoverAlleleProperty(t *testing.T) {
	r := rng.New(10)
	f := func(n uint8, seed uint64) bool {
		length := int(n)%60 + 2
		rr := rng.New(seed)
		a := Random(rr, length)
		b := Random(rr, length)
		for _, op := range []func() (Bits, Bits){
			func() (Bits, Bits) { return RandomOnePointCrossover(r, a, b) },
			func() (Bits, Bits) { return RandomTwoPointCrossover(r, a, b) },
			func() (Bits, Bits) { return UniformCrossover(r, a, b) },
		} {
			c, d := op()
			for i := 0; i < length; i++ {
				fromA := c.Get(i) == a.Get(i)
				fromB := c.Get(i) == b.Get(i)
				if !fromA && !fromB {
					return false
				}
				// Complementarity: what c took from a, d must take from b.
				if (c.Get(i) == a.Get(i)) != (d.Get(i) == b.Get(i)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: one-point crossover conserves the total number of ones across
// the pair.
func TestCrossoverConservesOnesProperty(t *testing.T) {
	r := rng.New(11)
	f := func(seed uint64) bool {
		rr := rng.New(seed)
		a := Random(rr, 13)
		b := Random(rr, 13)
		c, d := RandomOnePointCrossover(r, a, b)
		return a.OneCount()+b.OneCount() == c.OneCount()+d.OneCount()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMutateFlipZeroProbability(t *testing.T) {
	r := rng.New(12)
	b := Random(r, 13)
	orig := b.Clone()
	if flips := b.MutateFlip(r, 0); flips != 0 || !b.Equal(orig) {
		t.Error("MutateFlip(0) changed the genome")
	}
}

func TestMutateFlipCertainProbability(t *testing.T) {
	r := rng.New(13)
	b := Random(r, 13)
	orig := b.Clone()
	if flips := b.MutateFlip(r, 1); flips != 13 {
		t.Errorf("MutateFlip(1) flipped %d bits, want 13", flips)
	}
	if b.Hamming(orig) != 13 {
		t.Error("MutateFlip(1) did not invert every bit")
	}
}

func TestMutateFlipRate(t *testing.T) {
	r := rng.New(14)
	const trials = 20000
	const p = 0.1
	flips := 0
	for i := 0; i < trials; i++ {
		b := New(13)
		flips += b.MutateFlip(r, p)
	}
	got := float64(flips) / float64(trials*13)
	if got < 0.09 || got > 0.11 {
		t.Errorf("observed flip rate %v, want about %v", got, p)
	}
}

// Property: MutateFlip returns exactly the Hamming distance to the
// pre-mutation genome.
func TestMutateFlipCountProperty(t *testing.T) {
	r := rng.New(15)
	f := func(seed uint64) bool {
		rr := rng.New(seed)
		b := Random(rr, 29)
		before := b.Clone()
		flips := b.MutateFlip(r, 0.3)
		return flips == b.Hamming(before)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkOnePointCrossover(b *testing.B) {
	r := rng.New(1)
	x := Random(r, 13)
	y := Random(r, 13)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = RandomOnePointCrossover(r, x, y)
	}
}

func BenchmarkMutateFlip(b *testing.B) {
	r := rng.New(1)
	x := Random(r, 13)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.MutateFlip(r, 0.001)
	}
}
