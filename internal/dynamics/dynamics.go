// Package dynamics implements the environment-perturbation layer: a
// deterministic model that mutates the network and the node population at
// generation barriers, turning the paper's static evaluation into the
// dynamic, hostile MANET setting of the related work (GAs under routing
// attacks, arXiv:1202.4628; immigrant schemes for dynamic environments,
// arXiv:1107.1943).
//
// The model has two halves:
//
//   - Churn & mobility. At every barrier a seeded fraction of the evolving
//     population departs and is replaced by naive immigrants: fresh random
//     genomes under fresh node identities. Identity turnover exercises the
//     dense storage layer in place — new NodeIDs extend the registry until
//     a bounded headroom is reached (trust.Store.EnsureSize resizes every
//     dense store and rate view), after which departed IDs are recycled
//     FIFO (trust.Store.Forget remaps the recycled slot without
//     reallocation). Link rewiring under mobility is modeled as a seeded
//     random walk of the route-length landscape between the paper's SP and
//     LP regimes (network.MixedPaths): as links rewire, routes get longer
//     or shorter for everyone, shifting the fitness landscape mid-run.
//
//   - Adversarial behaviors. A fixed cohort of non-evolving Byzantine
//     players joins every tournament (but never reproduction): free-riders
//     that source packets and never forward, gossip liars that inject
//     inverted reputation reports (trust.MergeInverted), and on-off
//     attackers that alternate between trust-building forwarding phases
//     and discard bursts, driven through the tournament's RoundDriver
//     perturbation hook.
//
// # Determinism contract
//
// All perturbation randomness comes from one dedicated stream split from
// the engine's root seed at construction, consumed only at generation
// barriers in a fixed order (churn slots, immigrant genomes, rewire step).
// The evaluation stream is never touched: a run with a nil or disabled
// dynamics configuration is bit-identical to a build without the dynamics
// layer, and a dynamics-enabled run is bit-identical across GOMAXPROCS
// settings and fully reproducible from the root seed (pinned by golden
// tests in internal/experiment).
package dynamics

import (
	"fmt"
	"math"

	"adhocga/internal/bitstring"
	"adhocga/internal/ga"
	"adhocga/internal/game"
	"adhocga/internal/network"
	"adhocga/internal/rng"
	"adhocga/internal/strategy"
)

// Defaults filled in for zero-valued Config fields.
const (
	DefaultInterval   = 1
	DefaultIDHeadroom = 1.5
	DefaultOnRounds   = 20
	DefaultOffRounds  = 10
)

// Config parameterizes the perturbation model. The zero value disables
// every perturbation; zero-valued tuning fields keep the documented
// defaults (the repo-wide "zero keeps the default" spec convention).
type Config struct {
	// Interval is the number of generations between perturbation
	// barriers; 0 means DefaultInterval (every generation).
	Interval int
	// ChurnRate is the fraction of the evolving population replaced by
	// random immigrants with fresh identities at each barrier, in [0,1].
	ChurnRate float64
	// IDHeadroom bounds identity-space growth: fresh NodeIDs are handed
	// out until the registry reaches IDHeadroom × its initial size, after
	// which departed IDs are recycled FIFO. 0 means DefaultIDHeadroom;
	// 1 recycles immediately (no growth).
	IDHeadroom float64
	// RewireProb is the per-barrier probability that mobility rewires
	// enough links to shift the route-length landscape, in [0,1].
	RewireProb float64
	// RewireStep is the maximum drift of the SP↔LP mix parameter per
	// rewiring event; 0 keeps 0.25. The mix performs a seeded random walk
	// clamped to [0,1].
	RewireStep float64
	// FreeRiders, Liars and OnOff size the Byzantine cohort present in
	// every tournament.
	FreeRiders int
	Liars      int
	OnOff      int
	// OnRounds and OffRounds schedule the on-off attack: forward for
	// OnRounds rounds, discard for OffRounds, repeat. Zeros keep the
	// defaults (20/10).
	OnRounds  int
	OffRounds int
}

// withDefaults returns a copy with zero-valued tuning fields filled.
func (c Config) withDefaults() Config {
	if c.Interval == 0 {
		c.Interval = DefaultInterval
	}
	if c.IDHeadroom == 0 {
		c.IDHeadroom = DefaultIDHeadroom
	}
	if c.RewireStep == 0 {
		c.RewireStep = 0.25
	}
	if c.OnRounds == 0 {
		c.OnRounds = DefaultOnRounds
	}
	if c.OffRounds == 0 {
		c.OffRounds = DefaultOffRounds
	}
	return c
}

// Validate checks the configuration's structural invariants.
func (c Config) Validate() error {
	if c.Interval < 0 {
		return fmt.Errorf("dynamics: negative interval %d", c.Interval)
	}
	if c.ChurnRate < 0 || c.ChurnRate > 1 {
		return fmt.Errorf("dynamics: churn rate %v outside [0,1]", c.ChurnRate)
	}
	if c.IDHeadroom != 0 && c.IDHeadroom < 1 {
		return fmt.Errorf("dynamics: id headroom %v below 1", c.IDHeadroom)
	}
	if c.RewireProb < 0 || c.RewireProb > 1 {
		return fmt.Errorf("dynamics: rewire probability %v outside [0,1]", c.RewireProb)
	}
	if c.RewireStep < 0 || c.RewireStep > 1 {
		return fmt.Errorf("dynamics: rewire step %v outside [0,1]", c.RewireStep)
	}
	if c.FreeRiders < 0 || c.Liars < 0 || c.OnOff < 0 {
		return fmt.Errorf("dynamics: negative adversary count (free-riders %d, liars %d, on-off %d)",
			c.FreeRiders, c.Liars, c.OnOff)
	}
	if c.OnRounds < 0 || c.OffRounds < 0 {
		return fmt.Errorf("dynamics: negative on/off schedule (%d/%d)", c.OnRounds, c.OffRounds)
	}
	return nil
}

// Enabled reports whether the configuration perturbs anything at all; a
// disabled configuration must leave the engine bit-identical to having no
// dynamics layer.
func (c Config) Enabled() bool {
	return c.ChurnRate > 0 || c.RewireProb > 0 || c.AdversaryCount() > 0
}

// AdversaryCount returns the total Byzantine cohort size.
func (c Config) AdversaryCount() int { return c.FreeRiders + c.Liars + c.OnOff }

// Model is the per-engine perturbation state. Each core.Engine owns at
// most one Model; it is not safe for concurrent use (islands each build
// their own from their own seed).
type Model struct {
	cfg Config
	r   *rng.Source

	allForward, allDiscard strategy.Strategy

	// Identity management: fresh IDs grow the registry up to maxID, then
	// departed IDs are recycled FIFO from free.
	nextID, maxID int
	free          []network.NodeID

	// alpha is the current SP↔LP route-length mix.
	alpha float64

	// Perturbation counters for reporting.
	ChurnEvents   int // barriers at which at least one node was replaced
	Replaced      int // total immigrants introduced
	RewireEvents  int // barriers at which the landscape drifted
	IDSpaceGrowth int // fresh IDs handed out beyond the initial registry

	slots, idx, scratch []int
	touched             []network.NodeID
}

// NewModel validates cfg and builds a perturbation model drawing from r —
// a stream the caller must split from the engine's root seed before any
// evaluation randomness is consumed. initialIDs is the registry size at
// construction (normals + CSN + adversaries); initialAlpha seats the
// route-length mix at the scenario's base mode (0 for SP, 1 for LP).
func NewModel(cfg Config, r *rng.Source, initialIDs int, initialAlpha float64) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	maxID := int(math.Ceil(cfg.IDHeadroom * float64(initialIDs)))
	if maxID < initialIDs {
		maxID = initialIDs
	}
	if initialAlpha < 0 {
		initialAlpha = 0
	}
	if initialAlpha > 1 {
		initialAlpha = 1
	}
	return &Model{
		cfg:        cfg,
		r:          r,
		allForward: strategy.AllForward(),
		allDiscard: strategy.AllDiscard(),
		nextID:     initialIDs,
		maxID:      maxID,
		alpha:      initialAlpha,
	}, nil
}

// Config returns the model's configuration with defaults applied.
func (m *Model) Config() Config { return m.cfg }

// Alpha returns the current SP↔LP route-length mix parameter.
func (m *Model) Alpha() float64 { return m.alpha }

// NewAdversaries builds the Byzantine cohort with consecutive NodeIDs
// starting at base: free-riders (pinned to AllDiscard), then gossip liars
// (AllForward — they keep their own reputation spotless), then on-off
// attackers (starting in their forwarding phase). The returned players
// participate in tournaments but must never enter selection.
func (m *Model) NewAdversaries(base network.NodeID) []*game.Player {
	out := make([]*game.Player, 0, m.cfg.AdversaryCount())
	id := base
	for i := 0; i < m.cfg.FreeRiders; i++ {
		out = append(out, game.NewByzantine(id, game.AdvFreeRider, m.allDiscard))
		id++
	}
	for i := 0; i < m.cfg.Liars; i++ {
		out = append(out, game.NewByzantine(id, game.AdvLiar, m.allForward))
		id++
	}
	for i := 0; i < m.cfg.OnOff; i++ {
		out = append(out, game.NewByzantine(id, game.AdvOnOff, m.allForward))
		id++
	}
	return out
}

// BeginRound implements tournament.RoundDriver: on-off attackers forward
// for OnRounds rounds, then discard for OffRounds, synchronized across the
// cohort (the classic coordinated on-off attack). It consumes no
// randomness, preserving the tournament stream.
func (m *Model) BeginRound(round int, participants []*game.Player) {
	if m.cfg.OnOff == 0 {
		return
	}
	st := m.allDiscard
	if round%(m.cfg.OnRounds+m.cfg.OffRounds) < m.cfg.OnRounds {
		st = m.allForward
	}
	for _, p := range participants {
		if p.Adv == game.AdvOnOff {
			p.Strategy = st
		}
	}
}

// Barrier reports whether perturbations fire after reproducing generation
// gen (0-based): with interval i, barriers follow generations i-1, 2i-1, …
// — the same phase convention as island migration.
func (m *Model) Barrier(gen int) bool {
	return (gen+1)%m.cfg.Interval == 0
}

// Churn replaces a seeded ChurnRate fraction of the population with naive
// immigrants: each selected slot gets a fresh random genome (constraint
// applied when non-nil) and a fresh node identity. registry is updated in
// place (grown while the ID space has headroom, nil-ing the departed slot
// otherwise), and every live reputation store forgets both the departed
// and the newly issued ID so no stale trust survives the identity change.
// Returns the number of immigrants introduced.
func (m *Model) Churn(pop []ga.Individual, players []*game.Player, registry *[]*game.Player, constraint func(bitstring.Bits)) int {
	if m.cfg.ChurnRate <= 0 || len(players) == 0 {
		return 0
	}
	k := int(math.Round(m.cfg.ChurnRate * float64(len(players))))
	if k <= 0 {
		return 0
	}
	if k > len(players) {
		k = len(players)
	}
	if cap(m.idx) < len(players) {
		m.idx = make([]int, len(players))
		for i := range m.idx {
			m.idx[i] = i
		}
	}
	if cap(m.slots) < k {
		m.slots = make([]int, k)
	}
	slots := m.slots[:k]
	m.scratch = m.r.SampleWithoutReplacement(slots, m.idx[:len(players)], m.scratch)
	touched := m.touched[:0]
	for _, slot := range slots {
		p := players[slot]
		g := strategy.Random(m.r).Genome()
		if constraint != nil {
			constraint(g)
		}
		pop[slot] = ga.Individual{Genome: g}

		oldID := p.ID
		newID := m.allocID(oldID)
		if newID != oldID {
			reg := *registry
			reg[oldID] = nil
			if int(newID) >= len(reg) {
				reg = append(reg, make([]*game.Player, int(newID)+1-len(reg))...)
				*registry = reg
			}
			reg[newID] = p
			p.ID = newID
			m.free = append(m.free, oldID)
			touched = append(touched, oldID)
		}
		touched = append(touched, newID)
		// The immigrant itself starts with a blank memory.
		p.Rep.Reset()
	}
	m.touched = touched
	// In-place remap, one pass over the registry: every live dense store
	// (and its rate view) drops whatever it knew under any touched
	// identity. The generational evaluation happens to reset all stores
	// anyway, but that is the evaluation scheme's policy, not this
	// layer's: the churn contract is that a replaced identity carries no
	// stale trust the moment the barrier completes, whatever the caller
	// runs next.
	for _, q := range *registry {
		if q == nil {
			continue
		}
		for _, id := range touched {
			q.Rep.Forget(id)
		}
	}
	m.ChurnEvents++
	m.Replaced += k
	return k
}

// allocID issues the identity for a joining node: a fresh ID while the
// space has headroom, then the oldest departed ID, and — only if neither
// exists — the departing node's own ID (an in-place identity refresh).
func (m *Model) allocID(old network.NodeID) network.NodeID {
	if m.nextID < m.maxID {
		id := network.NodeID(m.nextID)
		m.nextID++
		m.IDSpaceGrowth++
		return id
	}
	if len(m.free) == 0 {
		return old
	}
	id := m.free[0]
	m.free = m.free[1:]
	return id
}

// Rewire advances the mobility random walk: with probability RewireProb
// the SP↔LP mix drifts by a uniform step in [−RewireStep, +RewireStep],
// clamped to [0,1]. Returns whether the landscape moved (callers then
// install PathMode on their generator).
func (m *Model) Rewire() bool {
	if m.cfg.RewireProb <= 0 || !m.r.Bool(m.cfg.RewireProb) {
		return false
	}
	m.alpha += (m.r.Float64()*2 - 1) * m.cfg.RewireStep
	if m.alpha < 0 {
		m.alpha = 0
	}
	if m.alpha > 1 {
		m.alpha = 1
	}
	m.RewireEvents++
	return true
}

// PathMode returns the blended route-length mode for the current mix.
func (m *Model) PathMode() network.PathMode { return network.MixedPaths(m.alpha) }
