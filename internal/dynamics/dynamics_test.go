package dynamics

import (
	"testing"

	"adhocga/internal/bitstring"
	"adhocga/internal/ga"
	"adhocga/internal/game"
	"adhocga/internal/network"
	"adhocga/internal/rng"
	"adhocga/internal/strategy"
)

func TestConfigValidate(t *testing.T) {
	good := []Config{
		{},
		{ChurnRate: 0.5, Interval: 3},
		{ChurnRate: 1, IDHeadroom: 1},
		{RewireProb: 1, RewireStep: 1},
		{FreeRiders: 3, Liars: 2, OnOff: 1, OnRounds: 5, OffRounds: 5},
	}
	for i, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("good config %d rejected: %v", i, err)
		}
	}
	bad := []Config{
		{Interval: -1},
		{ChurnRate: -0.1},
		{ChurnRate: 1.1},
		{IDHeadroom: 0.5},
		{RewireProb: -1},
		{RewireProb: 2},
		{RewireStep: -0.1},
		{RewireStep: 1.5},
		{FreeRiders: -1},
		{Liars: -2},
		{OnOff: -3},
		{OnRounds: -1},
		{OffRounds: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, c)
		}
	}
}

func TestConfigEnabled(t *testing.T) {
	if (Config{}).Enabled() {
		t.Error("zero config reports enabled")
	}
	for _, c := range []Config{{ChurnRate: 0.1}, {RewireProb: 0.5}, {Liars: 1}} {
		if !c.Enabled() {
			t.Errorf("config %+v reports disabled", c)
		}
	}
}

func TestBarrierPhase(t *testing.T) {
	m, err := NewModel(Config{ChurnRate: 0.1, Interval: 3}, rng.New(1), 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Interval 3: barriers after generations 2, 5, 8, … (same phase
	// convention as island migration).
	want := map[int]bool{2: true, 5: true, 8: true}
	for gen := 0; gen < 9; gen++ {
		if got := m.Barrier(gen); got != want[gen] {
			t.Errorf("Barrier(%d) = %v", gen, got)
		}
	}
}

func TestNewAdversariesComposition(t *testing.T) {
	m, err := NewModel(Config{FreeRiders: 2, Liars: 3, OnOff: 1}, rng.New(1), 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	byz := m.NewAdversaries(50)
	if len(byz) != 6 {
		t.Fatalf("cohort size %d, want 6", len(byz))
	}
	wantAdv := []game.Adversary{game.AdvFreeRider, game.AdvFreeRider,
		game.AdvLiar, game.AdvLiar, game.AdvLiar, game.AdvOnOff}
	for i, p := range byz {
		if p.ID != network.NodeID(50+i) {
			t.Errorf("byz[%d].ID = %d, want %d", i, p.ID, 50+i)
		}
		if p.Type != game.Byzantine || p.Adv != wantAdv[i] {
			t.Errorf("byz[%d] = %v/%v, want byzantine/%v", i, p.Type, p.Adv, wantAdv[i])
		}
	}
	// Free-riders never forward; liars and on-off (initially) always do.
	if byz[0].Strategy.DecideUnknown() != strategy.Discard {
		t.Error("free-rider forwards")
	}
	if byz[2].Strategy.DecideUnknown() != strategy.Forward {
		t.Error("liar discards")
	}
	if byz[5].Strategy.DecideUnknown() != strategy.Forward {
		t.Error("on-off attacker starts discarding")
	}
}

func TestBeginRoundOnOffSchedule(t *testing.T) {
	m, err := NewModel(Config{OnOff: 1, OnRounds: 3, OffRounds: 2}, rng.New(1), 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	byz := m.NewAdversaries(0)
	p := byz[0]
	wantForward := []bool{true, true, true, false, false, true, true, true, false, false}
	for round, want := range wantForward {
		m.BeginRound(round, byz)
		got := p.Strategy.DecideUnknown() == strategy.Forward
		if got != want {
			t.Errorf("round %d: forwarding=%v, want %v", round, got, want)
		}
	}
}

// buildPopulation returns n normal players with dense IDs, their genome
// slice, and the registry.
func buildPopulation(t *testing.T, n int) ([]ga.Individual, []*game.Player, []*game.Player) {
	t.Helper()
	r := rng.New(99)
	pop := make([]ga.Individual, n)
	players := make([]*game.Player, n)
	registry := make([]*game.Player, n)
	for i := range players {
		g := strategy.Random(r).Genome()
		pop[i] = ga.Individual{Genome: g}
		players[i] = game.NewNormal(network.NodeID(i), strategy.New(g.Clone()))
		players[i].Rep.EnsureSize(n)
		registry[i] = players[i]
	}
	return pop, players, registry
}

func TestChurnReplacesGenomesAndIdentities(t *testing.T) {
	const n = 10
	pop, players, registry := buildPopulation(t, n)
	before := make([]bitstring.Bits, n)
	for i := range pop {
		before[i] = pop[i].Genome.Clone()
	}
	m, err := NewModel(Config{ChurnRate: 0.3, IDHeadroom: 2}, rng.New(7), n, 0)
	if err != nil {
		t.Fatal(err)
	}
	replaced := m.Churn(pop, players, &registry, nil)
	if replaced != 3 {
		t.Fatalf("replaced %d, want 3 (30%% of %d)", replaced, n)
	}
	changedGenomes, changedIDs := 0, 0
	for i := range pop {
		if !pop[i].Genome.Equal(before[i]) {
			changedGenomes++
		}
		if players[i].ID != network.NodeID(i) {
			changedIDs++
		}
	}
	if changedGenomes != 3 {
		t.Errorf("%d genomes changed, want 3", changedGenomes)
	}
	// With headroom 2 every immigrant gets a fresh ID beyond the initial
	// space.
	if changedIDs != 3 {
		t.Errorf("%d identities changed, want 3", changedIDs)
	}
	// Registry must map every live player's (possibly new) ID and nil the
	// departed slots.
	live := 0
	for id, p := range registry {
		if p == nil {
			continue
		}
		live++
		if p.ID != network.NodeID(id) {
			t.Errorf("registry[%d] holds player with ID %d", id, p.ID)
		}
	}
	if live != n {
		t.Errorf("%d live registry entries, want %d", live, n)
	}
	if len(registry) <= n {
		t.Errorf("registry did not grow (len %d)", len(registry))
	}
}

func TestChurnConstraintAppliesToImmigrants(t *testing.T) {
	const n = 8
	pop, players, registry := buildPopulation(t, n)
	allOnes := func(b bitstring.Bits) {
		for i := 0; i < b.Len(); i++ {
			b.Set(i, true)
		}
	}
	m, err := NewModel(Config{ChurnRate: 1}, rng.New(3), n, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Churn(pop, players, &registry, allOnes); got != n {
		t.Fatalf("replaced %d, want %d", got, n)
	}
	for i := range pop {
		if pop[i].Genome.OneCount() != pop[i].Genome.Len() {
			t.Errorf("immigrant %d escaped the constraint: %s", i, pop[i].Genome)
		}
	}
}

func TestChurnForgetsReputationBothWays(t *testing.T) {
	const n = 6
	pop, players, registry := buildPopulation(t, n)
	// Everyone has observed everyone.
	for _, p := range players {
		for _, q := range players {
			if p != q {
				p.Rep.Observe(q.ID, true)
			}
		}
	}
	m, err := NewModel(Config{ChurnRate: 0.34, IDHeadroom: 1}, rng.New(11), n, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Headroom 1: identities recycle in place (no fresh IDs, empty free
	// list → the departing node's own ID is reissued).
	if got := m.Churn(pop, players, &registry, nil); got != 2 {
		t.Fatalf("replaced %d, want 2", got)
	}
	if len(registry) != n {
		t.Fatalf("registry grew to %d with headroom 1", len(registry))
	}
	fresh := 0
	for _, p := range players {
		if p.Rep.KnownCount() == 0 {
			fresh++
			// No peer may remember the replaced identity.
			for _, q := range players {
				if q != p && q.Rep.Known(p.ID) {
					t.Errorf("player %d still remembers churned identity %d", q.ID, p.ID)
				}
			}
		}
	}
	if fresh != 2 {
		t.Errorf("%d players with blank memory, want 2", fresh)
	}
}

func TestChurnIDRecyclingAfterHeadroom(t *testing.T) {
	const n = 4
	pop, players, registry := buildPopulation(t, n)
	m, err := NewModel(Config{ChurnRate: 0.5, IDHeadroom: 1.5}, rng.New(5), n, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Headroom 1.5 over 4 IDs caps the space at 6. Churn enough times to
	// exhaust the fresh IDs and force FIFO recycling.
	for i := 0; i < 5; i++ {
		m.Churn(pop, players, &registry, nil)
	}
	if len(registry) > 6 {
		t.Fatalf("registry grew past the headroom cap: %d", len(registry))
	}
	if m.IDSpaceGrowth != 2 {
		t.Errorf("IDSpaceGrowth = %d, want 2", m.IDSpaceGrowth)
	}
	seen := map[network.NodeID]bool{}
	for _, p := range players {
		if seen[p.ID] {
			t.Fatalf("duplicate live ID %d", p.ID)
		}
		seen[p.ID] = true
		if registry[p.ID] != p {
			t.Fatalf("registry[%d] does not hold its player", p.ID)
		}
	}
}

func TestRewireWalkStaysClamped(t *testing.T) {
	m, err := NewModel(Config{RewireProb: 1, RewireStep: 0.5}, rng.New(17), 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for i := 0; i < 200; i++ {
		if m.Rewire() {
			moved++
		}
		if a := m.Alpha(); a < 0 || a > 1 {
			t.Fatalf("alpha %v escaped [0,1]", a)
		}
	}
	if moved != 200 {
		t.Errorf("rewire fired %d/200 times at probability 1", moved)
	}
	if m.RewireEvents != moved {
		t.Errorf("RewireEvents = %d, want %d", m.RewireEvents, moved)
	}
	if m.PathMode().Name == "" {
		t.Error("blended path mode has no name")
	}
}

func TestRewireStartsAtBaseMode(t *testing.T) {
	m, _ := NewModel(Config{RewireProb: 0.5}, rng.New(1), 10, 1)
	if m.Alpha() != 1 {
		t.Errorf("LP-seeded alpha = %v, want 1", m.Alpha())
	}
}

func TestModelDeterminism(t *testing.T) {
	runOnce := func() ([]network.NodeID, []string) {
		pop, players, registry := buildPopulation(t, 12)
		m, err := NewModel(Config{ChurnRate: 0.25, RewireProb: 0.7, RewireStep: 0.3}, rng.New(42), 12, 0)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10; i++ {
			m.Churn(pop, players, &registry, nil)
			m.Rewire()
		}
		ids := make([]network.NodeID, len(players))
		genomes := make([]string, len(players))
		for i, p := range players {
			ids[i] = p.ID
			genomes[i] = pop[i].Genome.Compact()
		}
		return ids, genomes
	}
	ids1, g1 := runOnce()
	ids2, g2 := runOnce()
	for i := range ids1 {
		if ids1[i] != ids2[i] || g1[i] != g2[i] {
			t.Fatalf("replay diverged at slot %d: %d/%s vs %d/%s", i, ids1[i], g1[i], ids2[i], g2[i])
		}
	}
}
