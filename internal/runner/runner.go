// Package runner provides the single bounded worker pool every experiment
// workload fans out over. Callers flatten their work — typically the cross
// product of (scenario × replicate) — into one indexed queue of tasks;
// workers pull the next unit from the shared queue as they free up, so
// there is no barrier between scenarios: a worker that finishes the last
// replicate of one sweep point immediately steals the first replicate of
// the next.
//
// The pool makes no scheduling guarantees beyond boundedness, so tasks
// must not depend on execution order. Determinism is the caller's job and
// is cheap to provide: derive every task's random seed up front (before
// submitting), have each task write only to its own index, and aggregate
// after Run returns. The experiment package follows exactly that pattern
// for the paper's 60-repetition averages (§6.1), which is why its results
// are bit-identical at any parallelism level; the island engine
// (internal/island) follows it again one level down for per-generation
// island evaluation.
package runner

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Task is one unit of work. The argument is the task's index in the
// flattened queue; implementations write results to caller-owned storage
// at that index.
type Task func(i int) error

// Options tune a Run invocation.
type Options struct {
	// Parallelism is the worker count; ≤0 means GOMAXPROCS. It is capped
	// at the number of tasks.
	Parallelism int
	// OnDone, when non-nil, is called as each task finishes (possibly
	// from multiple goroutines) with the number completed so far and the
	// total queue length.
	OnDone func(done, total int)
}

// Workers resolves the effective worker count for n tasks.
func (o Options) Workers(n int) int {
	p := o.Parallelism
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p > n {
		p = n
	}
	if p < 1 {
		p = 1
	}
	return p
}

// Run executes n tasks over a bounded worker pool and blocks until all
// have finished. Every task runs even when some fail; the returned error
// is the lowest-indexed failure, so error reporting is deterministic
// regardless of scheduling.
func Run(n int, task Task, opts Options) error {
	if n <= 0 {
		return nil
	}
	workers := opts.Workers(n)
	errs := make([]error, n)
	var next atomic.Int64 // next unclaimed queue index
	var done atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = safeRun(task, i)
				if opts.OnDone != nil {
					opts.OnDone(int(done.Add(1)), n)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// safeRun converts a task panic into an error so one bad work unit cannot
// take down the whole pool (and with it every other unit's result).
func safeRun(task Task, i int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("runner: task %d panicked: %v", i, r)
		}
	}()
	return task(i)
}
