// Package runner provides the bounded worker machinery every experiment
// workload fans out over. Callers flatten their work — typically the cross
// product of (scenario × replicate) — into one indexed queue of tasks;
// workers pull the next unit from the shared queue as they free up, so
// there is no barrier between scenarios: a worker that finishes the last
// replicate of one sweep point immediately steals the first replicate of
// the next.
//
// Two entry points share that queue discipline. Run/RunContext execute one
// batch over transient per-call workers. Pool is the session-scoped form:
// a fixed capacity of execution slots that every batch submitted to it —
// from any number of concurrently running jobs — draws on, so a Session
// (package adhocga) can multiplex many jobs without oversubscribing the
// machine. Either way the pool makes no scheduling guarantees beyond
// boundedness, so tasks must not depend on execution order. Determinism is
// the caller's job and is cheap to provide: derive every task's random
// seed up front (before submitting), have each task write only to its own
// index, and aggregate after Run returns. The experiment package follows
// exactly that pattern for the paper's 60-repetition averages (§6.1),
// which is why its results are bit-identical at any parallelism level; the
// island engine (internal/island) follows it again one level down for
// per-generation island evaluation.
//
// # Error contract
//
// Every task runs even when some fail (cancellation excepted). The
// returned error joins every task failure via errors.Join in ascending
// task-index order — never in completion order — so error reporting is
// deterministic regardless of scheduling. When the context is cancelled
// before all tasks ran, the context's error is joined after the task
// errors; callers detect cancellation with errors.Is(err, context.Canceled).
package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Task is one unit of work. The argument is the task's index in the
// flattened queue; implementations write results to caller-owned storage
// at that index.
type Task func(i int) error

// Options tune a Run invocation.
type Options struct {
	// Parallelism is the worker count; ≤0 means GOMAXPROCS. It is capped
	// at the number of tasks.
	Parallelism int
	// OnDone, when non-nil, is called as each task finishes (possibly
	// from multiple goroutines) with the number completed so far and the
	// total queue length.
	OnDone func(done, total int)
}

// Workers resolves the effective worker count for n tasks.
func (o Options) Workers(n int) int {
	p := o.Parallelism
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p > n {
		p = n
	}
	if p < 1 {
		p = 1
	}
	return p
}

// Run executes n tasks over a bounded worker pool and blocks until all
// have finished. See RunContext for the error contract.
func Run(n int, task Task, opts Options) error {
	return RunContext(context.Background(), n, task, opts)
}

// RunContext executes n tasks over a bounded worker pool and blocks until
// all have finished or the context is cancelled. Cancellation is
// cooperative and task-granular: tasks already running are not interrupted
// (long tasks should watch ctx themselves), but no new task is claimed
// after ctx is done. The returned error follows the package error
// contract: all task errors joined in task-index order, with ctx.Err()
// appended when cancellation prevented tasks from running.
func RunContext(ctx context.Context, n int, task Task, opts Options) error {
	if n <= 0 {
		return ctx.Err()
	}
	b := newBatch(ctx, n, task, opts)
	workers := opts.Workers(n)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for b.runNext() {
			}
		}()
	}
	wg.Wait()
	return b.err()
}

// batch tracks one Run/Pool.Run invocation: the claim counter, the
// per-task error slots, and the completion callback.
type batch struct {
	ctx  context.Context
	n    int
	task Task
	opts Options
	errs []error
	next atomic.Int64 // next unclaimed queue index
	done atomic.Int64
}

func newBatch(ctx context.Context, n int, task Task, opts Options) *batch {
	return &batch{ctx: ctx, n: n, task: task, opts: opts, errs: make([]error, n)}
}

// runNext claims and runs the next task. It returns false when the queue
// is drained or the context is cancelled.
func (b *batch) runNext() bool {
	if b.ctx.Err() != nil {
		return false
	}
	i := int(b.next.Add(1)) - 1
	if i >= b.n {
		return false
	}
	b.errs[i] = safeRun(b.task, i)
	// done counts completions for err()'s cancellation check, so it must
	// advance whether or not anyone is watching progress.
	done := int(b.done.Add(1))
	if b.opts.OnDone != nil {
		b.opts.OnDone(done, b.n)
	}
	return true
}

// err folds the batch outcome per the package error contract.
func (b *batch) err() error {
	joined := errors.Join(b.errs...)
	if int(b.done.Load()) < b.n {
		// Some tasks never ran; the only way that happens is cancellation.
		return errors.Join(joined, b.ctx.Err())
	}
	return joined
}

// safeRun converts a task panic into an error so one bad work unit cannot
// take down the whole pool (and with it every other unit's result).
func safeRun(task Task, i int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("runner: task %d panicked: %v", i, r)
		}
	}()
	return task(i)
}

// Pool is a shared, session-lifetime execution capacity: a fixed number of
// slots that every batch submitted through it competes for. Concurrent
// Pool.Run calls — e.g. several jobs of one Session — interleave their
// tasks on the same slots, so total CPU use stays bounded by the pool size
// no matter how many jobs are in flight, and a finishing batch immediately
// frees capacity for the others. The zero Pool is not usable; create with
// NewPool.
//
// Scheduling, error, and determinism contracts are identical to
// RunContext; sharing slots changes wall-clock interleaving only, never
// results.
type Pool struct {
	slots chan struct{}
}

// NewPool returns a pool with the given number of execution slots; size
// ≤ 0 means GOMAXPROCS.
func NewPool(size int) *Pool {
	if size <= 0 {
		size = runtime.GOMAXPROCS(0)
	}
	return &Pool{slots: make(chan struct{}, size)}
}

// Size returns the pool's slot count.
func (p *Pool) Size() int { return cap(p.slots) }

// InUse returns how many slots are currently held by running tasks — the
// pool-occupancy reading behind the daemon's gauge. It is a point-in-time
// sample, exact only in quiescence.
func (p *Pool) InUse() int { return len(p.slots) }

// Run executes n tasks on the pool's shared slots and blocks until all
// have finished or the context is cancelled. Options.Parallelism
// additionally caps this batch's share of the pool. The error contract is
// RunContext's.
func (p *Pool) Run(ctx context.Context, n int, task Task, opts Options) error {
	if n <= 0 {
		return ctx.Err()
	}
	b := newBatch(ctx, n, task, opts)
	workers := opts.Workers(n)
	if workers > p.Size() {
		workers = p.Size()
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				// Acquire a shared slot per task, not per worker, so a
				// batch that is momentarily idle cannot starve concurrent
				// batches of capacity.
				select {
				case p.slots <- struct{}{}:
				case <-ctx.Done():
					return
				}
				ok := b.runNext()
				<-p.slots
				if !ok {
					return
				}
			}
		}()
	}
	wg.Wait()
	return b.err()
}
