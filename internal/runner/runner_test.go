package runner

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestRunExecutesEveryTask(t *testing.T) {
	const n = 100
	var ran [n]atomic.Int32
	err := Run(n, func(i int) error {
		ran[i].Add(1)
		return nil
	}, Options{Parallelism: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ran {
		if got := ran[i].Load(); got != 1 {
			t.Errorf("task %d ran %d times", i, got)
		}
	}
}

func TestRunBoundsParallelism(t *testing.T) {
	const n, workers = 64, 4
	var active, peak atomic.Int32
	err := Run(n, func(int) error {
		if a := active.Add(1); a > peak.Load() {
			peak.Store(a)
		}
		defer active.Add(-1)
		return nil
	}, Options{Parallelism: workers})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Errorf("observed %d concurrent tasks, bound is %d", p, workers)
	}
}

func TestRunJoinsAllErrorsInIndexOrder(t *testing.T) {
	err3 := errors.New("boom 3")
	err7 := errors.New("boom 7")
	err := Run(10, func(i int) error {
		switch i {
		case 3:
			return err3
		case 7:
			return err7
		}
		return nil
	}, Options{Parallelism: 10})
	if !errors.Is(err, err3) || !errors.Is(err, err7) {
		t.Fatalf("joined error %v is missing a task error", err)
	}
	// The ordering contract: task errors appear in ascending task-index
	// order regardless of which finished first.
	msg := err.Error()
	if i3, i7 := strings.Index(msg, "boom 3"), strings.Index(msg, "boom 7"); i3 < 0 || i7 < 0 || i3 > i7 {
		t.Errorf("error %q not in task-index order", msg)
	}
}

func TestRunKeepsGoingAfterError(t *testing.T) {
	var ran atomic.Int32
	err := Run(20, func(i int) error {
		ran.Add(1)
		if i == 0 {
			return errors.New("early failure")
		}
		return nil
	}, Options{Parallelism: 2})
	if err == nil {
		t.Fatal("error swallowed")
	}
	if got := ran.Load(); got != 20 {
		t.Errorf("%d tasks ran after early failure, want all 20", got)
	}
}

func TestRunRecoversPanics(t *testing.T) {
	err := Run(4, func(i int) error {
		if i == 2 {
			panic("kaboom")
		}
		return nil
	}, Options{Parallelism: 4})
	if err == nil {
		t.Fatal("panic not converted to error")
	}
	if want := "task 2 panicked"; !strings.Contains(err.Error(), want) {
		t.Errorf("error %q does not mention %q", err, want)
	}
}

func TestRunProgressCallback(t *testing.T) {
	const n = 9
	var mu sync.Mutex
	seen := map[int]bool{}
	var last int
	err := Run(n, func(int) error { return nil }, Options{
		Parallelism: 3,
		OnDone: func(done, total int) {
			if total != n {
				t.Errorf("total = %d", total)
			}
			mu.Lock()
			seen[done] = true
			if done > last {
				last = done
			}
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != n || last != n {
		t.Errorf("progress values %v, want 1..%d", seen, n)
	}
}

func TestRunZeroTasks(t *testing.T) {
	if err := Run(0, func(int) error { return errors.New("never") }, Options{}); err != nil {
		t.Fatal(err)
	}
}

func TestWorkersResolution(t *testing.T) {
	if w := (Options{Parallelism: 8}).Workers(3); w != 3 {
		t.Errorf("workers capped to %d, want 3", w)
	}
	if w := (Options{Parallelism: 2}).Workers(100); w != 2 {
		t.Errorf("workers = %d, want 2", w)
	}
	if w := (Options{}).Workers(1000); w < 1 {
		t.Errorf("default workers = %d", w)
	}
}

func TestRunNoBarrierBetweenGroups(t *testing.T) {
	// Two "scenarios" flattened into one queue: tasks 0–1 are group A,
	// task 2 is group B. Task 0 blocks until group B has started, so the
	// run can only finish if the worker that completes task 1 steals the
	// group-B unit while a group-A unit is still in flight — impossible
	// under a per-group barrier.
	release := make(chan struct{})
	var bRan atomic.Bool
	err := Run(3, func(i int) error {
		switch i {
		case 0:
			<-release
		case 2:
			bRan.Store(true)
			close(release)
		}
		return nil
	}, Options{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !bRan.Load() {
		t.Error("group-B unit never ran")
	}
}

func TestRunContextCancellationStopsClaiming(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	err := RunContext(ctx, 100, func(i int) error {
		if ran.Add(1) == 3 {
			cancel()
		}
		return nil
	}, Options{Parallelism: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := ran.Load(); got >= 100 {
		t.Errorf("all %d tasks ran despite cancellation", got)
	}
}

func TestRunContextJoinsTaskErrorsWithCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	taskErr := errors.New("task failed")
	err := RunContext(ctx, 50, func(i int) error {
		if i == 0 {
			cancel()
			return taskErr
		}
		return nil
	}, Options{Parallelism: 1})
	if !errors.Is(err, taskErr) || !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want both the task error and context.Canceled", err)
	}
}

func TestRunContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int32
	err := RunContext(ctx, 10, func(int) error { ran.Add(1); return nil }, Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran.Load() != 0 {
		t.Errorf("%d tasks ran on a pre-cancelled context", ran.Load())
	}
}

func TestPoolBoundsConcurrencyAcrossBatches(t *testing.T) {
	const slots = 3
	p := NewPool(slots)
	if p.Size() != slots {
		t.Fatalf("pool size %d, want %d", p.Size(), slots)
	}
	var active, peak atomic.Int32
	task := func(int) error {
		if a := active.Add(1); a > peak.Load() {
			peak.Store(a)
		}
		defer active.Add(-1)
		return nil
	}
	// Two concurrent batches, each asking for more workers than the pool
	// has slots: the shared bound must still hold.
	var wg sync.WaitGroup
	for b := 0; b < 2; b++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := p.Run(context.Background(), 64, task, Options{Parallelism: 8}); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if got := peak.Load(); got > slots {
		t.Errorf("observed %d concurrent tasks across batches, pool bound is %d", got, slots)
	}
}

func TestPoolRunsEveryTaskAndJoinsErrors(t *testing.T) {
	p := NewPool(2)
	const n = 40
	var ran [n]atomic.Int32
	wantErr := errors.New("slot 5")
	err := p.Run(context.Background(), n, func(i int) error {
		ran[i].Add(1)
		if i == 5 {
			return wantErr
		}
		return nil
	}, Options{})
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want the task error", err)
	}
	for i := range ran {
		if got := ran[i].Load(); got != 1 {
			t.Errorf("task %d ran %d times", i, got)
		}
	}
}

func TestPoolCancellation(t *testing.T) {
	p := NewPool(1)
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	err := p.Run(ctx, 100, func(i int) error {
		if ran.Add(1) == 2 {
			cancel()
		}
		return nil
	}, Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := ran.Load(); got >= 100 {
		t.Errorf("all tasks ran despite cancellation")
	}
}

func TestPoolDefaultSize(t *testing.T) {
	if NewPool(0).Size() < 1 {
		t.Error("default pool has no slots")
	}
}

func BenchmarkRunOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = Run(256, func(int) error { return nil }, Options{Parallelism: 8})
	}
}

// TestRunContextCompletedBatchIgnoresLateCancellation pins the err()
// contract when no progress callback is installed: a batch whose every
// task completed must return nil even if the context is cancelled after
// the last task finished.
func TestRunContextCompletedBatchIgnoresLateCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	err := RunContext(ctx, 8, func(i int) error {
		if ran.Add(1) == 8 {
			cancel() // fires after the final task's body, before err()
		}
		return nil
	}, Options{Parallelism: 1}) // OnDone deliberately nil
	if err != nil {
		t.Fatalf("completed batch reported %v", err)
	}
}
