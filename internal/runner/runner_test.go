package runner

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestRunExecutesEveryTask(t *testing.T) {
	const n = 100
	var ran [n]atomic.Int32
	err := Run(n, func(i int) error {
		ran[i].Add(1)
		return nil
	}, Options{Parallelism: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ran {
		if got := ran[i].Load(); got != 1 {
			t.Errorf("task %d ran %d times", i, got)
		}
	}
}

func TestRunBoundsParallelism(t *testing.T) {
	const n, workers = 64, 4
	var active, peak atomic.Int32
	err := Run(n, func(int) error {
		if a := active.Add(1); a > peak.Load() {
			peak.Store(a)
		}
		defer active.Add(-1)
		return nil
	}, Options{Parallelism: workers})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Errorf("observed %d concurrent tasks, bound is %d", p, workers)
	}
}

func TestRunReturnsLowestIndexedError(t *testing.T) {
	wantErr := errors.New("boom 3")
	err := Run(10, func(i int) error {
		if i == 3 {
			return wantErr
		}
		if i == 7 {
			return errors.New("boom 7")
		}
		return nil
	}, Options{Parallelism: 10})
	if err != wantErr {
		t.Errorf("got %v, want the index-3 error", err)
	}
}

func TestRunKeepsGoingAfterError(t *testing.T) {
	var ran atomic.Int32
	err := Run(20, func(i int) error {
		ran.Add(1)
		if i == 0 {
			return errors.New("early failure")
		}
		return nil
	}, Options{Parallelism: 2})
	if err == nil {
		t.Fatal("error swallowed")
	}
	if got := ran.Load(); got != 20 {
		t.Errorf("%d tasks ran after early failure, want all 20", got)
	}
}

func TestRunRecoversPanics(t *testing.T) {
	err := Run(4, func(i int) error {
		if i == 2 {
			panic("kaboom")
		}
		return nil
	}, Options{Parallelism: 4})
	if err == nil {
		t.Fatal("panic not converted to error")
	}
	if want := "task 2 panicked"; !strings.Contains(err.Error(), want) {
		t.Errorf("error %q does not mention %q", err, want)
	}
}

func TestRunProgressCallback(t *testing.T) {
	const n = 9
	var mu sync.Mutex
	seen := map[int]bool{}
	var last int
	err := Run(n, func(int) error { return nil }, Options{
		Parallelism: 3,
		OnDone: func(done, total int) {
			if total != n {
				t.Errorf("total = %d", total)
			}
			mu.Lock()
			seen[done] = true
			if done > last {
				last = done
			}
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != n || last != n {
		t.Errorf("progress values %v, want 1..%d", seen, n)
	}
}

func TestRunZeroTasks(t *testing.T) {
	if err := Run(0, func(int) error { return errors.New("never") }, Options{}); err != nil {
		t.Fatal(err)
	}
}

func TestWorkersResolution(t *testing.T) {
	if w := (Options{Parallelism: 8}).Workers(3); w != 3 {
		t.Errorf("workers capped to %d, want 3", w)
	}
	if w := (Options{Parallelism: 2}).Workers(100); w != 2 {
		t.Errorf("workers = %d, want 2", w)
	}
	if w := (Options{}).Workers(1000); w < 1 {
		t.Errorf("default workers = %d", w)
	}
}

func TestRunNoBarrierBetweenGroups(t *testing.T) {
	// Two "scenarios" flattened into one queue: tasks 0–1 are group A,
	// task 2 is group B. Task 0 blocks until group B has started, so the
	// run can only finish if the worker that completes task 1 steals the
	// group-B unit while a group-A unit is still in flight — impossible
	// under a per-group barrier.
	release := make(chan struct{})
	var bRan atomic.Bool
	err := Run(3, func(i int) error {
		switch i {
		case 0:
			<-release
		case 2:
			bRan.Store(true)
			close(release)
		}
		return nil
	}, Options{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !bRan.Load() {
		t.Error("group-B unit never ran")
	}
}

func BenchmarkRunOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = Run(256, func(int) error { return nil }, Options{Parallelism: 8})
	}
}
