package baselines

import (
	"testing"

	"adhocga/internal/game"
	"adhocga/internal/network"
	"adhocga/internal/tournament"
)

func mix(groups []Group, csn, rounds int, seed uint64) MixConfig {
	return MixConfig{
		Groups: groups,
		CSN:    csn,
		Rounds: rounds,
		Mode:   network.ShorterPaths(),
		Game:   game.DefaultConfig(),
		Seed:   seed,
	}
}

func TestStandardProfiles(t *testing.T) {
	ps := StandardProfiles()
	if len(ps) != 4 {
		t.Fatalf("%d profiles", len(ps))
	}
	for _, p := range ps {
		got, err := ProfileByName(p.Name)
		if err != nil || !got.Strategy.Equal(p.Strategy) {
			t.Errorf("ProfileByName(%q) mismatch: %v", p.Name, err)
		}
	}
	if _, err := ProfileByName("nope"); err == nil {
		t.Error("unknown profile accepted")
	}
	if AllCooperate.Strategy.Cooperativeness() != 1 || AllDefect.Strategy.Cooperativeness() != 0 {
		t.Error("extreme profiles wrong")
	}
}

func TestValidate(t *testing.T) {
	good := mix([]Group{{AllCooperate, 10}}, 0, 10, 1)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid mix rejected: %v", err)
	}
	bad := mix([]Group{{AllCooperate, -1}}, 0, 10, 1)
	if err := bad.Validate(); err == nil {
		t.Error("negative count accepted")
	}
	bad = mix([]Group{{AllCooperate, 1}}, 0, 10, 1)
	if err := bad.Validate(); err == nil {
		t.Error("single-player mix accepted")
	}
	bad = mix([]Group{{AllCooperate, 10}}, 0, 0, 1)
	if err := bad.Validate(); err == nil {
		t.Error("zero rounds accepted")
	}
}

func TestAllCooperateMixDeliversEverything(t *testing.T) {
	res, err := RunMix(mix([]Group{{AllCooperate, 20}}, 0, 20, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Cooperation != 1 {
		t.Errorf("all-cooperate cooperation = %v, want 1", res.Cooperation)
	}
	if res.Groups[0].DeliveryRate != 1 || res.Groups[0].ForwardShare != 1 {
		t.Errorf("group stats %+v", res.Groups[0])
	}
}

func TestAllDefectMixDeliversNothing(t *testing.T) {
	res, err := RunMix(mix([]Group{{AllDefect, 20}}, 0, 20, 2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Cooperation != 0 {
		t.Errorf("all-defect cooperation = %v, want 0", res.Cooperation)
	}
	if res.Groups[0].ForwardShare != 0 {
		t.Errorf("all-defect forwarded: %+v", res.Groups[0])
	}
}

func TestDefectorsExploitUnconditionalCooperators(t *testing.T) {
	// Without trust-conditioned behavior, defectors still get their
	// packets delivered by the all-cooperate majority while contributing
	// nothing — the free-rider problem the paper opens with.
	res, err := RunMix(mix([]Group{{AllCooperate, 30}, {AllDefect, 5}}, 0, 50, 3))
	if err != nil {
		t.Fatal(err)
	}
	coop, defect := res.Groups[0], res.Groups[1]
	// Unconditional cooperators never condition on trust, so defectors'
	// packets flow as freely as anyone's (limited only by other defectors
	// happening to sit on the path).
	if defect.DeliveryRate < coop.DeliveryRate-0.1 {
		t.Errorf("defectors should deliver about as well as cooperators here: %v vs %v",
			defect.DeliveryRate, coop.DeliveryRate)
	}
	if defect.Fitness <= coop.Fitness {
		t.Errorf("free riders should out-earn unconditional cooperators: %v vs %v",
			defect.Fitness, coop.Fitness)
	}
}

func TestTrustThresholdPunishesDefectors(t *testing.T) {
	// With trust-conditioned responders, defectors' delivery collapses.
	res, err := RunMix(mix([]Group{{TrustThreshold1, 30}, {AllDefect, 5}}, 0, 150, 4))
	if err != nil {
		t.Fatal(err)
	}
	resp, defect := res.Groups[0], res.Groups[1]
	if defect.DeliveryRate > 0.3 {
		t.Errorf("threshold responders should cut defector delivery, got %v", defect.DeliveryRate)
	}
	// Responders' own packets still occasionally die on unavoidable
	// defector hops (most games offer a single route), but must stay far
	// above the defectors' delivery.
	if resp.DeliveryRate < 0.6 {
		t.Errorf("responders' own delivery too low: %v", resp.DeliveryRate)
	}
	if resp.DeliveryRate < defect.DeliveryRate+0.3 {
		t.Errorf("responders should clearly out-deliver defectors: %v vs %v",
			resp.DeliveryRate, defect.DeliveryRate)
	}
}

func TestCSNDeliveryTracked(t *testing.T) {
	res, err := RunMix(mix([]Group{{TrustThreshold1, 30}}, 10, 100, 5))
	if err != nil {
		t.Fatal(err)
	}
	if res.CSNDelivery >= res.Cooperation {
		t.Errorf("CSN delivery %v should fall below normal cooperation %v",
			res.CSNDelivery, res.Cooperation)
	}
}

func TestRunMixDeterministic(t *testing.T) {
	cfg := mix([]Group{{TrustThreshold1, 15}, {AllDefect, 5}}, 5, 50, 9)
	a, err := RunMix(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunMix(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cooperation != b.Cooperation || a.CSNDelivery != b.CSNDelivery {
		t.Error("RunMix not deterministic")
	}
}

func TestPathraterComparison(t *testing.T) {
	// Route avoidance alone (all-forward population, reputation-rated
	// paths vs random paths) must improve cooperation in the presence of
	// CSN — the Marti et al. effect the paper cites (§2).
	withRating, withoutRating, err := PathraterComparison(30, 12, 200, network.ShorterPaths(), 6)
	if err != nil {
		t.Fatal(err)
	}
	if withRating <= withoutRating {
		t.Errorf("path rating should improve cooperation: %v vs %v", withRating, withoutRating)
	}
	improvement := withRating - withoutRating
	if improvement < 0.05 {
		t.Errorf("improvement %v too small to be the pathrater effect", improvement)
	}
}

func TestRandomPathChoiceAblation(t *testing.T) {
	// Under RandomPath, the chosen path ignores reputation, so with heavy
	// CSN presence cooperation drops toward the unavoidable collision
	// rate.
	base := mix([]Group{{AllCooperate, 25}}, 25, 100, 7)
	rated, err := RunMix(base)
	if err != nil {
		t.Fatal(err)
	}
	base.PathChoice = tournament.RandomPath
	random, err := RunMix(base)
	if err != nil {
		t.Fatal(err)
	}
	if rated.Cooperation <= random.Cooperation {
		t.Errorf("rating should beat random choice: %v vs %v", rated.Cooperation, random.Cooperation)
	}
}

func BenchmarkRunMix(b *testing.B) {
	cfg := mix([]Group{{TrustThreshold1, 40}}, 10, 20, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunMix(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
