// Package baselines provides fixed (non-evolved) node behaviors and the
// machinery to run mixed populations of them through the tournament model.
//
// The paper's related work (§2) motivates two comparison points that the
// ablation benchmarks exercise:
//
//   - watchdog/pathrater [9]: selfish nodes are routed around but not
//     punished — modeled here as an all-forward population with CSN, with
//     and without reputation-based path choice;
//   - reputation-threshold response (CORE/CONFIDANT style [2][10]):
//     forward only for sufficiently trusted sources — modeled as the
//     trust-threshold profiles.
package baselines

import (
	"fmt"

	"adhocga/internal/game"
	"adhocga/internal/network"
	"adhocga/internal/rng"
	"adhocga/internal/strategy"
	"adhocga/internal/tournament"
)

// Profile is a named fixed strategy.
type Profile struct {
	Name     string
	Strategy strategy.Strategy
}

// Standard profiles.
var (
	// AllCooperate forwards everything: the unconditionally altruistic
	// node, and the whole population under plain watchdog/pathrater.
	AllCooperate = Profile{Name: "all-cooperate", Strategy: strategy.AllForward()}
	// AllDefect discards everything: behaviorally identical to a CSN but
	// participating as a normal node.
	AllDefect = Profile{Name: "all-defect", Strategy: strategy.AllDiscard()}
	// TrustThreshold1 forwards for sources of trust ≥ 1 and for unknowns —
	// a forgiving CONFIDANT-style responder.
	TrustThreshold1 = Profile{Name: "trust>=1", Strategy: strategy.ForwardAtOrAbove(strategy.Trust1, strategy.Forward)}
	// TrustThreshold2 forwards only for trust ≥ 2, discarding unknowns — a
	// strict CORE-style responder.
	TrustThreshold2 = Profile{Name: "trust>=2", Strategy: strategy.ForwardAtOrAbove(strategy.Trust2, strategy.Discard)}
)

// StandardProfiles returns the built-in profiles.
func StandardProfiles() []Profile {
	return []Profile{AllCooperate, AllDefect, TrustThreshold1, TrustThreshold2}
}

// ProfileByName resolves a standard profile.
func ProfileByName(name string) (Profile, error) {
	for _, p := range StandardProfiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("baselines: unknown profile %q", name)
}

// Group is a count of players sharing a profile.
type Group struct {
	Profile Profile
	Count   int
}

// MixConfig describes a fixed-population tournament.
type MixConfig struct {
	Groups     []Group
	CSN        int // constantly selfish nodes added to the tournament
	Rounds     int
	Mode       network.PathMode
	PathChoice tournament.PathChoice
	Game       game.Config
	Seed       uint64
	// Recorder, when non-nil, observes every game (and rounds, if it
	// implements tournament.RoundObserver) — e.g. an energy.Meter.
	Recorder game.Recorder
	// GossipInterval enables second-hand reputation exchange every N
	// rounds (0 = off). Weight and minimum rate default to 0.25 and 0.5
	// when unset.
	GossipInterval int
	GossipWeight   float64
	GossipMinRate  float64
}

// Validate checks the mix.
func (c *MixConfig) Validate() error {
	total := c.CSN
	for _, g := range c.Groups {
		if g.Count < 0 {
			return fmt.Errorf("baselines: negative group count for %q", g.Profile.Name)
		}
		total += g.Count
	}
	if total < 2 {
		return fmt.Errorf("baselines: mix has %d players, need at least 2", total)
	}
	if c.Rounds < 1 {
		return fmt.Errorf("baselines: rounds must be positive")
	}
	return c.Game.Validate()
}

// GroupStats reports per-group outcomes of a mix run.
type GroupStats struct {
	Name string
	// DeliveryRate is the fraction of the group's own packets delivered.
	DeliveryRate float64
	// Fitness is the group's mean eq. 1 fitness.
	Fitness float64
	// ForwardShare is the fraction of the group's forwarding requests it
	// accepted.
	ForwardShare float64
}

// MixResult aggregates a mix run.
type MixResult struct {
	// Cooperation is the delivery rate over packets originated by
	// non-CSN players.
	Cooperation float64
	// CSNDelivery is the delivery rate of CSN-originated packets.
	CSNDelivery float64
	Groups      []GroupStats
}

// RunMix plays one tournament with the given fixed population and reports
// the outcome. Deterministic for a given config.
func RunMix(cfg MixConfig) (*MixResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := rng.New(cfg.Seed)

	var players []*game.Player
	groupOf := make(map[network.NodeID]int)
	id := network.NodeID(0)
	for gi, g := range cfg.Groups {
		for i := 0; i < g.Count; i++ {
			players = append(players, game.NewNormal(id, g.Profile.Strategy))
			groupOf[id] = gi
			id++
		}
	}
	var csn []*game.Player
	for i := 0; i < cfg.CSN; i++ {
		p := game.NewSelfish(id)
		csn = append(csn, p)
		id++
	}
	all := append(append([]*game.Player{}, players...), csn...)
	registry := tournament.BuildRegistry(players, csn)
	for _, p := range all {
		p.Rep.EnsureSize(len(registry))
		p.Rep.SetTable(cfg.Game.TrustTable)
	}

	gossipWeight := cfg.GossipWeight
	if cfg.GossipInterval > 0 && gossipWeight == 0 {
		gossipWeight = 0.25
	}
	gossipMinRate := cfg.GossipMinRate
	if cfg.GossipInterval > 0 && gossipMinRate == 0 {
		gossipMinRate = 0.5
	}
	tcfg := &tournament.Config{
		Rounds:         cfg.Rounds,
		Mode:           cfg.Mode,
		PathChoice:     cfg.PathChoice,
		Game:           cfg.Game,
		GossipInterval: cfg.GossipInterval,
		GossipWeight:   gossipWeight,
		GossipMinRate:  gossipMinRate,
	}
	gen := network.NewGenerator(cfg.Mode)
	tournament.Play(all, registry, tcfg, gen, r, cfg.Recorder)

	res := &MixResult{Groups: make([]GroupStats, len(cfg.Groups))}
	var normalSent, normalDelivered, csnSent, csnDelivered int
	type acc struct {
		sent, delivered, forwards, discards int
		fitness                             float64
		n                                   int
	}
	accs := make([]acc, len(cfg.Groups))
	for _, p := range players {
		gi := groupOf[p.ID]
		a := &accs[gi]
		a.sent += p.Acct.Sent
		a.delivered += p.Acct.Delivered
		a.forwards += p.Acct.Forwards
		a.discards += p.Acct.Discards
		a.fitness += p.Acct.Fitness()
		a.n++
		normalSent += p.Acct.Sent
		normalDelivered += p.Acct.Delivered
	}
	for _, p := range csn {
		csnSent += p.Acct.Sent
		csnDelivered += p.Acct.Delivered
	}
	for gi, g := range cfg.Groups {
		a := accs[gi]
		gs := GroupStats{Name: g.Profile.Name}
		if a.sent > 0 {
			gs.DeliveryRate = float64(a.delivered) / float64(a.sent)
		}
		if a.n > 0 {
			gs.Fitness = a.fitness / float64(a.n)
		}
		if req := a.forwards + a.discards; req > 0 {
			gs.ForwardShare = float64(a.forwards) / float64(req)
		}
		res.Groups[gi] = gs
	}
	if normalSent > 0 {
		res.Cooperation = float64(normalDelivered) / float64(normalSent)
	}
	if csnSent > 0 {
		res.CSNDelivery = float64(csnDelivered) / float64(csnSent)
	}
	return res, nil
}

// PathraterComparison runs the §2 watchdog/pathrater scenario: an
// all-forward population with the given number of CSN, once with
// reputation-based path choice and once with random path choice. The
// reported pair of cooperation levels quantifies the throughput gain from
// route avoidance alone (Marti et al. report +17% with 20 selfish of 50).
func PathraterComparison(normal, csnCount, rounds int, mode network.PathMode, seed uint64) (withRating, withoutRating float64, err error) {
	base := MixConfig{
		Groups: []Group{{Profile: AllCooperate, Count: normal}},
		CSN:    csnCount,
		Rounds: rounds,
		Mode:   mode,
		Game:   game.DefaultConfig(),
		Seed:   seed,
	}
	rated, err := RunMix(base)
	if err != nil {
		return 0, 0, err
	}
	base.PathChoice = tournament.RandomPath
	unrated, err := RunMix(base)
	if err != nil {
		return 0, 0, err
	}
	return rated.Cooperation, unrated.Cooperation, nil
}
