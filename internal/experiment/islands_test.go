package experiment

import (
	"strings"
	"testing"

	"adhocga/internal/scenario"
)

// islandRun returns a small island scenario: population 40 over 4 islands
// of 10, with a tournament small enough for each island's share.
func islandRun(count int) ScenarioRun {
	return ScenarioRun{Spec: scenario.Spec{
		Name:           "exp islands",
		Environments:   []scenario.EnvSpec{{CSN: 2}},
		Population:     40,
		TournamentSize: 8,
		Islands:        &scenario.IslandSpec{Count: count, Topology: "ring", Interval: 1, Migrants: 1},
	}}
}

func TestRunScenariosIslandSummary(t *testing.T) {
	res, err := RunScenarios([]ScenarioRun{islandRun(4)}, tinyScale(), Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	sum := res[0].Islands
	if sum == nil {
		t.Fatal("island scenario produced no IslandSummary")
	}
	if sum.Count != 4 || len(sum.FinalBest) != 4 || len(sum.FinalDiversity) != 4 {
		t.Errorf("summary = %+v", sum)
	}
	// interval 1 over 2 generations → 1 barrier × 4 edges × 1 migrant × 2 reps.
	if sum.MigrationEvents != 2 || sum.MigrantsMoved != 8 {
		t.Errorf("migration totals = %d events, %d moved; want 2, 8", sum.MigrationEvents, sum.MigrantsMoved)
	}
	if sum.ChampionFitness.N != 2 {
		t.Errorf("champion summary over %d reps, want 2", sum.ChampionFitness.N)
	}
	// The serial-shaped aggregate must be fully populated too.
	if len(res[0].CoopMean) != 2 || res[0].Census.Total() != 80 {
		t.Errorf("aggregate: %d coop points, census %d", len(res[0].CoopMean), res[0].Census.Total())
	}

	table := IslandTable(res[0])
	if table == nil {
		t.Fatal("IslandTable returned nil for an island result")
	}
	if out := table.Render(); !strings.Contains(out, "4×ring/worst") {
		t.Errorf("island table header missing parameters:\n%s", out)
	}
}

func TestRunScenariosIslandsDeterministicAcrossParallelism(t *testing.T) {
	run := func(par int) string {
		res, err := RunScenarios([]ScenarioRun{islandRun(4)}, tinyScale(), Options{Seed: 11, Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		return caseResultFingerprint(t, res[0])
	}
	want := run(1)
	for _, par := range []int{2, 8} {
		if got := run(par); got != want {
			t.Errorf("parallelism %d diverged from serial", par)
		}
	}
}

// TestOneIslandScenarioMatchesSerialScenario pins the cross-layer
// degenerate case: the same spec with and without a 1-island block must
// produce bit-identical CaseResults.
func TestOneIslandScenarioMatchesSerialScenario(t *testing.T) {
	serial := islandRun(1)
	serial.Spec.Islands = nil
	want, err := RunScenarios([]ScenarioRun{serial}, tinyScale(), Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunScenarios([]ScenarioRun{islandRun(1)}, tinyScale(), Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if g, w := caseResultFingerprint(t, got[0]), caseResultFingerprint(t, want[0]); g != w {
		t.Errorf("1-island scenario diverged from serial:\n got %s\nwant %s", g, w)
	}
	if got[0].Islands == nil || want[0].Islands != nil {
		t.Error("IslandSummary presence should follow the islands block")
	}
}

func TestRunScenariosRejectsBadIslandSpecUpFront(t *testing.T) {
	bad := islandRun(3) // 40 % 3 != 0
	if _, err := RunScenarios([]ScenarioRun{bad}, tinyScale(), Options{Seed: 1}); err == nil {
		t.Error("indivisible island sharding was not rejected")
	}
}

func TestSummarizeIslandsSkipsNilAndAppliesDefaults(t *testing.T) {
	spec := &scenario.IslandSpec{Count: 2}
	sum := SummarizeIslands(spec, nil)
	if sum.Interval != 10 || sum.Migrants != 1 {
		t.Errorf("defaults not applied: %+v", sum)
	}
	if sum.Topology != "ring" || sum.Replace != "worst" {
		t.Errorf("names not resolved: %+v", sum)
	}
}
