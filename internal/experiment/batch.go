package experiment

import (
	"context"
	"fmt"

	"adhocga/internal/core"
	"adhocga/internal/island"
	"adhocga/internal/rng"
	"adhocga/internal/runner"
	"adhocga/internal/scenario"
)

// job is one scenario resolved to a concrete workload. The shared worker
// pool schedules its repetitions as individual work units; every workload
// in the package — RunCase, CSNSweep, RunScenarios — flattens to jobs.
type job struct {
	c    Case
	sc   Scale
	seed uint64
	// config builds one replicate's configuration from its derived seed.
	config func(repSeed uint64) (core.Config, error)
	// islands, when non-nil, routes replicates through the island-model
	// engine; iconfig builds the replicate's island configuration.
	islands *scenario.IslandSpec
	iconfig func(repSeed uint64) (island.Config, error)
	// dyn is the scenario's resolved dynamics block (nil when static);
	// tsize the resolved tournament size. Both ride through to the
	// CaseResult for the churn/adversary reporting.
	dyn   *scenario.DynamicsSpec
	tsize int
}

// caseJob wraps a Table 4-style Case in a job. The configuration is the
// paper's §6.1 parameterization with the scale's generation and round
// budget — kept byte-for-byte compatible with the pre-runner RunCase so
// fixed-seed results are unchanged.
func caseJob(c Case, sc Scale, seed uint64) job {
	return job{c: c, sc: sc, seed: seed, config: func(repSeed uint64) (core.Config, error) {
		cfg := core.PaperConfig(c.Environments, c.Mode, repSeed)
		cfg.Generations = sc.Generations
		cfg.Eval.Tournament.Rounds = sc.Rounds
		return cfg, nil
	}}
}

// specJob resolves a declarative scenario against the run's default scale
// and fallback seed.
func specJob(spec scenario.Spec, defaults Scale, fallbackSeed uint64) (job, error) {
	if err := spec.Validate(); err != nil {
		return job{}, err
	}
	resolved := spec.Resolve(defaults)
	mode, err := resolved.Mode()
	if err != nil {
		return job{}, err
	}
	// Fail fast on parameter interactions (e.g. tournament size vs
	// population, or an islands block that does not divide the
	// population) the structural Validate cannot see: one bad spec must
	// reject the whole batch up front, not waste every other scenario's
	// compute before erroring. The seed is irrelevant to validation.
	if resolved.Islands != nil {
		if _, err := resolved.IslandConfig(1); err != nil {
			return job{}, err
		}
	} else if _, err := resolved.Config(1); err != nil {
		return job{}, err
	}
	return job{
		c: Case{ID: resolved.ID, Name: resolved.Name, Environments: resolved.Envs(), Mode: mode},
		sc: Scale{
			Name:        defaults.Name,
			Generations: resolved.Generations,
			Rounds:      resolved.Rounds,
			Repetitions: resolved.Repetitions,
		},
		seed:    resolved.MasterSeed(fallbackSeed),
		config:  resolved.Config,
		islands: resolved.Islands,
		iconfig: resolved.IslandConfig,
		dyn:     resolved.Dynamics,
		tsize:   resolved.TournamentSize,
	}, nil
}

// runJobs executes a batch of jobs over one shared bounded worker pool:
// every (job × replicate) pair becomes one work unit in a single queue, so
// workers cross job boundaries freely and no cores idle between sweep
// points. Per-replicate seeds are derived up front, in (job, replicate)
// order, from each job's own master seed — results are therefore
// bit-identical at any parallelism level, and identical to running each
// job alone. Cancellation is cooperative: running replicates stop at their
// next generation barrier, queued ones never start, and the returned error
// joins every replicate failure (task-index order) with ctx.Err().
func runJobs(ctx context.Context, jobs []job, opts Options) ([]*CaseResult, error) {
	type unit struct {
		job, rep int
		seed     uint64
	}
	var units []unit
	results := make([][]*core.Result, len(jobs))
	islandResults := make([][]*island.Result, len(jobs))
	for ji, j := range jobs {
		if j.sc.Repetitions < 1 {
			return nil, fmt.Errorf("experiment: scale %q has %d repetitions", j.sc.Name, j.sc.Repetitions)
		}
		master := rng.New(j.seed)
		results[ji] = make([]*core.Result, j.sc.Repetitions)
		if j.islands != nil {
			islandResults[ji] = make([]*island.Result, j.sc.Repetitions)
		}
		for rep := 0; rep < j.sc.Repetitions; rep++ {
			units = append(units, unit{job: ji, rep: rep, seed: master.Uint64()})
		}
	}
	task := func(i int) error {
		u := units[i]
		j := &jobs[u.job]
		if j.islands != nil {
			// Island replicate: the island engine fans its per-generation
			// evaluation out over its own transient workers. Workers may
			// briefly oversubscribe the CPU when many replicates run at
			// once; that affects wall-clock only — results are
			// deterministic at any parallelism level.
			icfg, err := j.iconfig(u.seed)
			if err != nil {
				return err
			}
			icfg.Parallelism = opts.Parallelism
			if opts.OnIslandGeneration != nil {
				icfg.OnGeneration = func(gs island.GenerationStats) {
					opts.OnIslandGeneration(u.job, u.rep, gs)
				}
			}
			if opts.OnChurn != nil {
				icfg.Core.OnChurn = func(gen int) { opts.OnChurn(u.job, u.rep, gen) }
			}
			if opts.OnCheckpoint != nil {
				icfg.OnCheckpoint = func(cp core.Checkpoint) {
					opts.OnCheckpoint(u.job, u.rep, u.seed, cp)
				}
			}
			engine, err := island.New(icfg)
			if err != nil {
				return err
			}
			ires, err := engine.RunContext(ctx)
			if err != nil {
				return err
			}
			results[u.job][u.rep] = ires.Aggregate
			islandResults[u.job][u.rep] = ires
			return nil
		}
		cfg, err := j.config(u.seed)
		if err != nil {
			return err
		}
		if opts.OnGeneration != nil {
			cfg.OnGeneration = func(gs core.GenerationStats) {
				opts.OnGeneration(u.job, u.rep, gs)
			}
		}
		if opts.OnChurn != nil {
			cfg.OnChurn = func(gen int) { opts.OnChurn(u.job, u.rep, gen) }
		}
		if opts.OnCheckpoint != nil {
			cfg.OnCheckpoint = func(cp core.Checkpoint) {
				opts.OnCheckpoint(u.job, u.rep, u.seed, cp)
			}
		}
		engine, err := core.New(cfg)
		if err != nil {
			return err
		}
		res, err := engine.RunContext(ctx)
		if err != nil {
			return err
		}
		results[u.job][u.rep] = res
		return nil
	}
	ropts := runner.Options{Parallelism: opts.Parallelism, OnDone: opts.OnReplicate}
	var err error
	if opts.Pool != nil {
		err = opts.Pool.Run(ctx, len(units), task, ropts)
	} else {
		err = runner.RunContext(ctx, len(units), task, ropts)
	}
	if err != nil {
		return nil, err
	}
	out := make([]*CaseResult, len(jobs))
	for ji, j := range jobs {
		out[ji] = Aggregate(j.c, j.sc, results[ji])
		if j.islands != nil {
			out[ji].Islands = SummarizeIslands(j.islands, islandResults[ji])
		}
		out[ji].TournamentSize = j.tsize
		if out[ji].TournamentSize <= 0 {
			out[ji].TournamentSize = 50
		}
		out[ji].Dynamics = j.dyn
		if d := j.dyn; d != nil && d.ChurnRate > 0 {
			out[ji].Recovery = SummarizeRecovery(out[ji].CoopMean, d.Interval, 0)
		}
	}
	return out, nil
}

// ScenarioRun pairs a scenario with the fallback master seed for its
// replicate streams (the spec's own pinned Seed wins when set). Zero is
// the "unset" sentinel — like Spec.Seed — and means "derive this
// scenario's stream from Options.Seed"; master seed 0 itself cannot be
// pinned, only derived.
type ScenarioRun struct {
	Spec scenario.Spec
	Seed uint64
}

// RunScenarios runs a batch of declarative scenarios over one shared
// worker pool and aggregates each into a CaseResult, in input order.
// Scenario fields left at zero fall back to the paper's parameterization
// and to the defaults scale.
//
// Each scenario's master seed is, in order of precedence: the spec's own
// pinned Seed, the ScenarioRun's Seed, or a per-scenario stream derived
// from Options.Seed (so unpinned scenarios in one batch never share
// replicate streams). Deterministic for fixed seeds regardless of
// parallelism.
func RunScenarios(runs []ScenarioRun, defaults Scale, opts Options) ([]*CaseResult, error) {
	return RunScenariosContext(context.Background(), runs, defaults, opts)
}

// RunScenariosContext is RunScenarios with cooperative cancellation (see
// RunCaseContext for the contract).
func RunScenariosContext(ctx context.Context, runs []ScenarioRun, defaults Scale, opts Options) ([]*CaseResult, error) {
	// One derived fallback per run, consumed unconditionally so that
	// pinning one scenario's seed never shifts its neighbors' streams.
	master := rng.New(opts.Seed)
	jobs := make([]job, len(runs))
	for i, r := range runs {
		fallback := master.Uint64()
		if r.Seed != 0 {
			fallback = r.Seed
		}
		j, err := specJob(r.Spec, defaults, fallback)
		if err != nil {
			return nil, err
		}
		jobs[i] = j
	}
	return runJobs(ctx, jobs, opts)
}
