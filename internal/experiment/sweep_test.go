package experiment

import (
	"testing"

	"adhocga/internal/network"
)

func TestCSNSweepShape(t *testing.T) {
	sc := Scale{Name: "tiny", Generations: 2, Rounds: 10, Repetitions: 2}
	points, err := CSNSweep([]int{0, 10, 30}, network.ShorterPaths(), sc, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("%d points", len(points))
	}
	for i, want := range []int{0, 10, 30} {
		if points[i].CSN != want {
			t.Errorf("point %d CSN = %d, want %d", i, points[i].CSN, want)
		}
		if points[i].Cooperation.N != 2 {
			t.Errorf("point %d has %d reps", i, points[i].Cooperation.N)
		}
		if points[i].Cooperation.Mean < 0 || points[i].Cooperation.Mean > 1 {
			t.Errorf("point %d cooperation %v", i, points[i].Cooperation.Mean)
		}
	}
	csn, coop := SweepToSeries(points)
	if len(csn) != 3 || len(coop) != 3 || csn[2] != 30 {
		t.Errorf("series conversion wrong: %v %v", csn, coop)
	}
}

func TestCSNSweepValidatesRange(t *testing.T) {
	sc := Scale{Name: "tiny", Generations: 1, Rounds: 5, Repetitions: 1}
	if _, err := CSNSweep([]int{50}, network.ShorterPaths(), sc, Options{}); err == nil {
		t.Error("CSN=50 of 50 accepted")
	}
	if _, err := CSNSweep([]int{-1}, network.ShorterPaths(), sc, Options{}); err == nil {
		t.Error("negative CSN accepted")
	}
}

// The headline shape at meaningful scale: cooperation decreases
// monotonically in the selfish fraction (the paper's case 1 → case 2
// contrast, densified).
func TestCSNSweepMonotone(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	sc := Scale{Name: "sweep", Generations: 20, Rounds: 300, Repetitions: 1}
	points, err := CSNSweep([]int{0, 15, 30}, network.ShorterPaths(), sc, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(points); i++ {
		if points[i].Cooperation.Mean >= points[i-1].Cooperation.Mean {
			t.Errorf("cooperation not decreasing: CSN %d → %.3f, CSN %d → %.3f",
				points[i-1].CSN, points[i-1].Cooperation.Mean,
				points[i].CSN, points[i].Cooperation.Mean)
		}
	}
}
