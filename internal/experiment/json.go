package experiment

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"adhocga/internal/stats"
)

// Serialized result schema. CaseResult holds live objects (census,
// distributions); the JSON form flattens them into plain data so runs can
// be archived, diffed, and post-processed without the library.

// CaseJSON is the serializable form of a CaseResult.
type CaseJSON struct {
	CaseID           int            `json:"case_id"`
	CaseName         string         `json:"case_name"`
	PathMode         string         `json:"path_mode"`
	Scale            ScaleJSON      `json:"scale"`
	CoopMean         []float64      `json:"coop_mean"`
	CoopStd          []float64      `json:"coop_std"`
	MeanEnvCoop      []float64      `json:"mean_env_coop"`
	FinalCoop        SummaryJSON    `json:"final_coop"`
	FinalMeanEnvCoop SummaryJSON    `json:"final_mean_env_coop"`
	PerEnv           []EnvJSON      `json:"per_env"`
	FromNormal       ResponseJSON   `json:"requests_from_normal"`
	FromCSN          ResponseJSON   `json:"requests_from_csn"`
	TopStrategies    []StrategyJSON `json:"top_strategies"`
}

// ScaleJSON mirrors Scale.
type ScaleJSON struct {
	Name        string `json:"name"`
	Generations int    `json:"generations"`
	Rounds      int    `json:"rounds"`
	Repetitions int    `json:"repetitions"`
}

// SummaryJSON mirrors stats.Summary.
type SummaryJSON struct {
	N      int     `json:"n"`
	Mean   float64 `json:"mean"`
	StdDev float64 `json:"std_dev"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
}

func summaryJSON(s stats.Summary) SummaryJSON {
	return SummaryJSON{N: s.N, Mean: s.Mean, StdDev: jsonFloat(s.StdDev), Min: s.Min, Max: s.Max}
}

// jsonFloat maps the stats package's NaN sentinel (dispersion of fewer
// than two samples) to 0, which JSON can encode; a single-repetition run
// reports zero spread rather than failing to serialize.
func jsonFloat(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

func jsonFloats(vs []float64) []float64 {
	out := make([]float64, len(vs))
	for i, v := range vs {
		out[i] = jsonFloat(v)
	}
	return out
}

// EnvJSON is one environment's final-generation summary.
type EnvJSON struct {
	Name        string      `json:"name"`
	Cooperation SummaryJSON `json:"cooperation"`
	CSNFree     SummaryJSON `json:"csn_free_paths"`
}

// ResponseJSON mirrors metrics.ResponseCounts plus derived fractions.
type ResponseJSON struct {
	Accepted          uint64  `json:"accepted"`
	RejectedByNormal  uint64  `json:"rejected_by_normal"`
	RejectedBySelfish uint64  `json:"rejected_by_selfish"`
	AcceptedFrac      float64 `json:"accepted_frac"`
}

// StrategyJSON is one census row.
type StrategyJSON struct {
	Strategy string  `json:"strategy"`
	Fraction float64 `json:"fraction"`
}

// ToJSON converts a CaseResult to its serializable form, including the
// topK most frequent strategies.
func (r *CaseResult) ToJSON(topK int) CaseJSON {
	out := CaseJSON{
		CaseID:   r.Case.ID,
		CaseName: r.Case.Name,
		PathMode: r.Case.Mode.Name,
		Scale: ScaleJSON{
			Name:        r.Scale.Name,
			Generations: r.Scale.Generations,
			Rounds:      r.Scale.Rounds,
			Repetitions: r.Scale.Repetitions,
		},
		CoopMean:         r.CoopMean,
		CoopStd:          jsonFloats(r.CoopStd),
		MeanEnvCoop:      r.MeanEnvCoopMean,
		FinalCoop:        summaryJSON(r.FinalCoop),
		FinalMeanEnvCoop: summaryJSON(r.FinalMeanEnvCoop),
	}
	for _, env := range r.PerEnv {
		out.PerEnv = append(out.PerEnv, EnvJSON{
			Name:        env.Name,
			Cooperation: summaryJSON(env.Cooperation),
			CSNFree:     summaryJSON(env.CSNFree),
		})
	}
	accN, _, _ := r.FromNormal.Fractions()
	out.FromNormal = ResponseJSON{
		Accepted:          r.FromNormal.Accepted,
		RejectedByNormal:  r.FromNormal.RejectedByNormal,
		RejectedBySelfish: r.FromNormal.RejectedBySelfish,
		AcceptedFrac:      accN,
	}
	accC, _, _ := r.FromCSN.Fractions()
	out.FromCSN = ResponseJSON{
		Accepted:          r.FromCSN.Accepted,
		RejectedByNormal:  r.FromCSN.RejectedByNormal,
		RejectedBySelfish: r.FromCSN.RejectedBySelfish,
		AcceptedFrac:      accC,
	}
	for _, e := range r.Census.Top(topK) {
		out.TopStrategies = append(out.TopStrategies, StrategyJSON{
			Strategy: e.Strategy.String(),
			Fraction: e.Fraction,
		})
	}
	return out
}

// WriteJSON writes a map of case results as one indented JSON document,
// keyed "case1".."case4" in ascending order.
func WriteJSON(w io.Writer, results map[int]*CaseResult, topK int) error {
	doc := make(map[string]CaseJSON, len(results))
	for id, res := range results {
		doc[fmt.Sprintf("case%d", id)] = res.ToJSON(topK)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
