package experiment

import (
	"fmt"

	"adhocga/internal/dynamics"
	"adhocga/internal/report"
	"adhocga/internal/scenario"
)

// Reporting for the environment-perturbation layer (internal/dynamics):
// how hard each churn barrier knocks cooperation down and how many
// generations the population needs to climb back (the recovery-after-
// churn view), and how evolved cooperation degrades with the Byzantine
// adversary fraction (the cooperation-vs-adversary view).

// DefaultRecoveryTolerance is the absolute cooperation shortfall from the
// pre-barrier level within which a generation counts as recovered.
const DefaultRecoveryTolerance = 0.02

// ChurnBarrier describes one perturbation barrier's effect on the
// cooperation series.
type ChurnBarrier struct {
	// Generation is the first generation evaluated after the barrier.
	Generation int
	// Pre is the cooperation level of the last generation before the
	// barrier; Dip is how far below Pre the first perturbed generation
	// fell (negative when cooperation did not drop at all).
	Pre, Dip float64
	// RecoveryGens is the number of generations after the barrier until
	// cooperation was back within the tolerance of Pre (0 = the very
	// first perturbed generation already was); −1 when it never recovered
	// before the next barrier or the end of the run.
	RecoveryGens int
}

// RecoverySummary aggregates the per-barrier recovery view of one
// scenario.
type RecoverySummary struct {
	Interval  int
	Tolerance float64
	Barriers  []ChurnBarrier
	// MeanDip averages the dip over all barriers; MeanRecovery averages
	// RecoveryGens over the recovered ones.
	MeanDip      float64
	MeanRecovery float64
	Recovered    int
	Unrecovered  int
}

// SummarizeRecovery scans a per-generation cooperation series for the
// effect of perturbation barriers at the given interval (barriers fire
// after generations interval−1, 2·interval−1, …, matching the dynamics
// layer's phase) and summarizes dip depth and recovery time per barrier.
// tol ≤ 0 uses DefaultRecoveryTolerance. Returns nil when the series is
// too short to contain a barrier.
func SummarizeRecovery(series []float64, interval int, tol float64) *RecoverySummary {
	if interval < 1 {
		interval = dynamics.DefaultInterval
	}
	if tol <= 0 {
		tol = DefaultRecoveryTolerance
	}
	sum := &RecoverySummary{Interval: interval, Tolerance: tol}
	dipTotal, recTotal := 0.0, 0
	for g0 := interval; g0 < len(series); g0 += interval {
		pre := series[g0-1]
		b := ChurnBarrier{Generation: g0, Pre: pre, Dip: pre - series[g0], RecoveryGens: -1}
		next := g0 + interval
		if next > len(series) {
			next = len(series)
		}
		for t := g0; t < next; t++ {
			if series[t] >= pre-tol {
				b.RecoveryGens = t - g0
				break
			}
		}
		if b.RecoveryGens >= 0 {
			sum.Recovered++
			recTotal += b.RecoveryGens
		} else {
			sum.Unrecovered++
		}
		dipTotal += b.Dip
		sum.Barriers = append(sum.Barriers, b)
	}
	if len(sum.Barriers) == 0 {
		return nil
	}
	sum.MeanDip = dipTotal / float64(len(sum.Barriers))
	if sum.Recovered > 0 {
		sum.MeanRecovery = float64(recTotal) / float64(sum.Recovered)
	}
	return sum
}

// RecoveryTable renders one scenario's per-barrier recovery view. Returns
// nil when the result has no recovery summary (static scenario).
func RecoveryTable(res *CaseResult) *report.Table {
	sum := res.Recovery
	if sum == nil {
		return nil
	}
	t := report.NewTable(
		fmt.Sprintf("recovery after churn — %s (barriers every %d generations, tolerance %.2f)",
			res.Case.Name, sum.Interval, sum.Tolerance),
		"generation", "pre-churn coop", "dip", "recovery gens")
	for _, b := range sum.Barriers {
		rec := "not recovered"
		if b.RecoveryGens >= 0 {
			rec = fmt.Sprint(b.RecoveryGens)
		}
		t.AddRow(fmt.Sprint(b.Generation), report.FormatFloat(b.Pre), report.FormatFloat(b.Dip), rec)
	}
	return t
}

// ChurnSweepTable renders the cross-scenario recovery summary: one row per
// result, static controls included (their recovery columns stay empty).
func ChurnSweepTable(results []*CaseResult) *report.Table {
	t := report.NewTable("cooperation under churn (means over replications)",
		"scenario", "churn", "interval", "final coop", "mean dip", "mean recovery", "unrecovered")
	for _, res := range results {
		churn, interval := "0%", "-"
		dip, rec, unrec := "-", "-", "-"
		if d := res.Dynamics; d != nil && d.ChurnRate > 0 {
			churn = report.Percent(d.ChurnRate)
			intv := d.Interval
			if intv < 1 {
				intv = dynamics.DefaultInterval
			}
			interval = fmt.Sprint(intv)
		}
		if sum := res.Recovery; sum != nil {
			dip = report.FormatFloat(sum.MeanDip)
			rec = fmt.Sprintf("%.1f", sum.MeanRecovery)
			unrec = fmt.Sprintf("%d/%d", sum.Unrecovered, len(sum.Barriers))
		}
		t.AddRow(res.Case.Name, churn, interval, report.FormatFloat(res.FinalCoop.Mean), dip, rec, unrec)
	}
	return t
}

// AdversaryTable renders the cooperation-vs-adversary-fraction view over a
// batch of results (the adversary-grid family): one row per scenario with
// the cohort composition, its share of the tournament seats, and the
// final evolved cooperation.
func AdversaryTable(results []*CaseResult) *report.Table {
	t := report.NewTable("cooperation vs Byzantine adversary fraction (means over replications)",
		"scenario", "free-riders", "liars", "on-off", "adversary share", "final coop", "accepted from byz")
	for _, res := range results {
		var d scenario.DynamicsSpec
		if res.Dynamics != nil {
			d = *res.Dynamics
		}
		size := res.TournamentSize
		if size <= 0 {
			size = 50
		}
		share := float64(d.AdversaryCount()) / float64(size)
		acc, _, _ := res.FromByz.Fractions()
		accepted := "-"
		if res.FromByz.Total() > 0 {
			accepted = report.Percent(acc)
		}
		t.AddRow(res.Case.Name,
			fmt.Sprint(d.FreeRiders), fmt.Sprint(d.Liars), fmt.Sprint(d.OnOff),
			report.Percent(share), report.FormatFloat(res.FinalCoop.Mean), accepted)
	}
	return t
}
