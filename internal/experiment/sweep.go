package experiment

import (
	"fmt"

	"adhocga/internal/network"
	"adhocga/internal/rng"
	"adhocga/internal/stats"
	"adhocga/internal/tournament"
)

// CSNSweep generalizes the paper's four fixed environments into a curve:
// evolved cooperation as a function of the number of constantly selfish
// nodes in a 50-player tournament. The paper samples this curve at 0, 10,
// 25 and 30 (Tab 1); sweeping it densely locates where cooperation
// collapses.

// SweepPoint is one sweep sample.
type SweepPoint struct {
	CSN         int
	Cooperation stats.Summary // final-generation cooperation across reps
}

// CSNSweep runs one single-environment evolution per CSN count and
// returns the evolved cooperation level at each. Runs are sequential in
// csnCounts but parallel across repetitions (via the same worker pattern
// as RunCase). Deterministic for a fixed seed.
func CSNSweep(csnCounts []int, mode network.PathMode, sc Scale, opts Options) ([]SweepPoint, error) {
	out := make([]SweepPoint, 0, len(csnCounts))
	master := rng.New(opts.Seed)
	for _, csn := range csnCounts {
		if csn < 0 || csn >= 50 {
			return nil, fmt.Errorf("experiment: CSN count %d outside [0,50)", csn)
		}
		c := Case{
			ID:           0,
			Name:         fmt.Sprintf("sweep CSN=%d", csn),
			Environments: []tournament.Environment{{Name: fmt.Sprintf("CSN%d", csn), CSN: csn}},
			Mode:         mode,
		}
		res, err := RunCase(c, sc, Options{
			Seed:        master.Uint64(),
			Parallelism: opts.Parallelism,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, SweepPoint{CSN: csn, Cooperation: res.FinalCoop})
	}
	return out, nil
}

// SweepToSeries converts sweep points to an (x, y) pair of slices for
// plotting or CSV output.
func SweepToSeries(points []SweepPoint) (csn []float64, coop []float64) {
	csn = make([]float64, len(points))
	coop = make([]float64, len(points))
	for i, p := range points {
		csn[i] = float64(p.CSN)
		coop[i] = p.Cooperation.Mean
	}
	return csn, coop
}
