package experiment

import (
	"context"
	"fmt"

	"adhocga/internal/network"
	"adhocga/internal/rng"
	"adhocga/internal/stats"
	"adhocga/internal/tournament"
)

// CSNSweep generalizes the paper's four fixed environments into a curve:
// evolved cooperation as a function of the number of constantly selfish
// nodes in a 50-player tournament. The paper samples this curve at 0, 10,
// 25 and 30 (Tab 1); sweeping it densely locates where cooperation
// collapses.

// SweepPoint is one sweep sample.
type SweepPoint struct {
	CSN         int
	Cooperation stats.Summary // final-generation cooperation across reps
}

// CSNSweep runs one single-environment evolution per CSN count and
// returns the evolved cooperation level at each. All (point × replicate)
// pairs are flattened into one shared worker pool, so workers cross sweep
// points without a barrier and stay busy even when repetitions are fewer
// than cores. Deterministic for a fixed seed — each point's master seed is
// derived in csnCounts order, so results are bit-identical to running the
// points one by one.
func CSNSweep(csnCounts []int, mode network.PathMode, sc Scale, opts Options) ([]SweepPoint, error) {
	return CSNSweepContext(context.Background(), csnCounts, mode, sc, opts)
}

// CSNSweepContext is CSNSweep with cooperative cancellation (see
// RunCaseContext for the contract).
func CSNSweepContext(ctx context.Context, csnCounts []int, mode network.PathMode, sc Scale, opts Options) ([]SweepPoint, error) {
	master := rng.New(opts.Seed)
	jobs := make([]job, 0, len(csnCounts))
	for _, csn := range csnCounts {
		if csn < 0 || csn >= 50 {
			return nil, fmt.Errorf("experiment: CSN count %d outside [0,50)", csn)
		}
		c := Case{
			ID:           0,
			Name:         fmt.Sprintf("sweep CSN=%d", csn),
			Environments: []tournament.Environment{{Name: fmt.Sprintf("CSN%d", csn), CSN: csn}},
			Mode:         mode,
		}
		jobs = append(jobs, caseJob(c, sc, master.Uint64()))
	}
	results, err := runJobs(ctx, jobs, opts)
	if err != nil {
		return nil, err
	}
	out := make([]SweepPoint, len(csnCounts))
	for i, res := range results {
		out[i] = SweepPoint{CSN: csnCounts[i], Cooperation: res.FinalCoop}
	}
	return out, nil
}

// SweepToSeries converts sweep points to an (x, y) pair of slices for
// plotting or CSV output.
func SweepToSeries(points []SweepPoint) (csn []float64, coop []float64) {
	csn = make([]float64, len(points))
	coop = make([]float64, len(points))
	for i, p := range points {
		csn[i] = float64(p.CSN)
		coop[i] = p.Cooperation.Mean
	}
	return csn, coop
}
