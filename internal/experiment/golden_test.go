package experiment

import (
	"strconv"
	"testing"

	"adhocga/internal/network"
)

// Golden values recorded from the pre-runner, per-case serial execution
// (case 3, Generations 3, Rounds 30, Repetitions 3, seed 42). The shared
// work-stealing pool must reproduce them bit-for-bit: any drift means the
// seed derivation or config construction changed, not just scheduling.

func hexf(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("bad golden literal %q: %v", s, err)
	}
	return v
}

func checkSeries(t *testing.T, name string, got []float64, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s has %d entries, want %d", name, len(got), len(want))
	}
	for i, w := range want {
		if got[i] != hexf(t, w) {
			t.Errorf("%s[%d] = %x, want %s", name, i, got[i], w)
		}
	}
}

func goldenScale() Scale {
	return Scale{Name: "golden", Generations: 3, Rounds: 30, Repetitions: 3}
}

func TestRunCaseGoldenBitIdentical(t *testing.T) {
	c, err := CaseByID(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{1, 4} {
		res, err := RunCase(c, goldenScale(), Options{Seed: 42, Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		checkSeries(t, "CoopMean", res.CoopMean, []string{
			"0x1.087ff76ee65dep-03", "0x1.8a50e8f55edfbp-04", "0x1.92bca0b35192cp-05",
		})
		checkSeries(t, "CoopStd", res.CoopStd, []string{
			"0x1.c017d02708e8ap-07", "0x1.56113a351e5c4p-06", "0x1.bdab0ccba1bdcp-06",
		})
		checkSeries(t, "MeanEnvCoopMean", res.MeanEnvCoopMean, []string{
			"0x1.02f72106dd65p-03", "0x1.82a39a143a637p-04", "0x1.8b584466a17a6p-05",
		})
		if res.FinalCoop.N != 3 ||
			res.FinalCoop.Mean != hexf(t, "0x1.92bca0b35192cp-05") ||
			res.FinalCoop.StdDev != hexf(t, "0x1.bdab0ccba1bdcp-06") ||
			res.FinalCoop.Min != hexf(t, "0x1.67ce349b0167dp-06") ||
			res.FinalCoop.Max != hexf(t, "0x1.38c9138c9138dp-04") {
			t.Errorf("FinalCoop = %+v", res.FinalCoop)
		}
		if res.FinalMeanEnvCoop.Mean != hexf(t, "0x1.8b584466a17a5p-05") {
			t.Errorf("FinalMeanEnvCoop.Mean = %x", res.FinalMeanEnvCoop.Mean)
		}
		wantEnv := []struct{ coop, free string }{
			{"0x1.2975eb5684415p-04", "0x1p+00"},
			{"0x1.d4629b7f0d463p-05", "0x1.1e573ac901e57p-01"},
			{"0x1.2008e66329e54p-05", "0x1.b2ae82840864fp-03"},
			{"0x1.cc1372168c76dp-06", "0x1.30334daddf859p-03"},
		}
		for ei, w := range wantEnv {
			if res.PerEnv[ei].Cooperation.Mean != hexf(t, w.coop) {
				t.Errorf("PerEnv[%d].Cooperation.Mean = %x, want %s", ei, res.PerEnv[ei].Cooperation.Mean, w.coop)
			}
			if res.PerEnv[ei].CSNFree.Mean != hexf(t, w.free) {
				t.Errorf("PerEnv[%d].CSNFree.Mean = %x, want %s", ei, res.PerEnv[ei].CSNFree.Mean, w.free)
			}
		}
		if res.FromNormal.Accepted != 15213 || res.FromNormal.RejectedByNormal != 51216 ||
			res.FromNormal.RejectedBySelfish != 28797 {
			t.Errorf("FromNormal = %+v", res.FromNormal)
		}
		if res.FromCSN.Accepted != 3524 || res.FromCSN.RejectedByNormal != 25386 ||
			res.FromCSN.RejectedBySelfish != 29022 {
			t.Errorf("FromCSN = %+v", res.FromCSN)
		}
		if res.Census.Total() != 300 {
			t.Errorf("census total %d", res.Census.Total())
		}
		top := res.Census.Top(1)
		if len(top) != 1 || top[0].Strategy.Key() != "0000101001000" ||
			top[0].Fraction != hexf(t, "0x1.1111111111111p-06") {
			t.Errorf("top strategy = %+v", top)
		}
	}
}

func TestCSNSweepGoldenBitIdentical(t *testing.T) {
	// Golden values recorded from the pre-runner sweep, which barriered
	// between points; the flattened single-queue sweep must match exactly.
	for _, par := range []int{1, 8} {
		points, err := CSNSweep([]int{0, 10, 25}, network.ShorterPaths(), goldenScale(),
			Options{Seed: 7, Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		want := []struct{ mean, std, min, max string }{
			{"0x1.374bc6a7ef9dbp-04", "0x1.6c99e5fe0c4a4p-07", "0x1.0cb295e9e1b09p-04", "0x1.675b1156f8c38p-04"},
			{"0x1.f3dd1baf98d77p-06", "0x1.b2a82c2885bb2p-08", "0x1.8e38e38e38e39p-06", "0x1.3333333333333p-05"},
			{"0x1.4540b39dffd93p-06", "0x1.83e02f919d3dp-09", "0x1.1bfd44f307826p-06", "0x1.7aa706995f588p-06"},
		}
		for i, w := range want {
			s := points[i].Cooperation
			if s.N != 3 || s.Mean != hexf(t, w.mean) || s.StdDev != hexf(t, w.std) ||
				s.Min != hexf(t, w.min) || s.Max != hexf(t, w.max) {
				t.Errorf("parallelism %d point %d = %+v, want %+v", par, i, s, w)
			}
		}
	}
}
