package experiment

import (
	"fmt"

	"adhocga/internal/report"
	"adhocga/internal/strategy"
	"adhocga/internal/textplot"
)

// PaperReference holds the paper's published values so every generated
// table can print paper-vs-measured side by side.
var paperFig4Final = map[int]float64{1: 0.97, 2: 0.19, 3: 0.53, 4: 0.38}

// Paper Table 5 values (cases 3 and 4, per environment).
var paperTable5 = struct {
	coop3, coop4, free3, free4 [4]float64
}{
	coop3: [4]float64{0.99, 0.66, 0.28, 0.19},
	coop4: [4]float64{0.99, 0.41, 0.07, 0.05},
	free3: [4]float64{1.00, 0.66, 0.29, 0.20},
	free4: [4]float64{1.00, 0.41, 0.12, 0.08},
}

// Fig4Table renders the Fig 4 endpoints: the evolved cooperation level per
// evaluation case, paper versus measured. Missing cases are skipped.
func Fig4Table(results map[int]*CaseResult) *report.Table {
	t := report.NewTable("Figure 4 — evolved cooperation level (final generation)",
		"case", "paper", "measured", "±std", "scale")
	for id := 1; id <= 4; id++ {
		res, ok := results[id]
		if !ok {
			continue
		}
		// For multi-environment cases the paper's number is the unweighted
		// environment mean (see DESIGN.md on the swapped prose).
		measured := res.FinalCoop
		if len(res.Case.Environments) > 1 {
			measured = res.FinalMeanEnvCoop
		}
		t.AddRow(
			fmt.Sprintf("case %d", id),
			report.Percent(paperFig4Final[id]),
			report.Percent(measured.Mean),
			report.Percent(measured.StdDev),
			res.Scale.Name,
		)
	}
	return t
}

// Fig4Chart renders the cooperation-vs-generation curves as an ASCII chart.
func Fig4Chart(results map[int]*CaseResult) string {
	chart := textplot.Chart{
		Title:  "Figure 4 — evolution of cooperation (mean over repetitions)",
		YMin:   0,
		YMax:   1,
		FixedY: true,
		Width:  72,
		Height: 18,
	}
	for id := 1; id <= 4; id++ {
		res, ok := results[id]
		if !ok {
			continue
		}
		series := res.CoopMean
		if len(res.Case.Environments) > 1 {
			series = res.MeanEnvCoopMean
		}
		chart.AddSeries(fmt.Sprintf("case %d (final %.0f%%)", id, series[len(series)-1]*100), series)
	}
	return chart.Render()
}

// Table5 renders the per-environment cooperation levels and CSN-free path
// fractions for cases 3 and 4, paper versus measured.
func Table5(case3, case4 *CaseResult) *report.Table {
	t := report.NewTable("Table 5 — cooperation level and CSN-free paths per environment (cases 3 and 4)",
		"env",
		"coop c3 paper", "coop c3", "coop c4 paper", "coop c4",
		"free c3 paper", "free c3", "free c4 paper", "free c4")
	for ei := 0; ei < 4; ei++ {
		row := []string{fmt.Sprintf("TE%d", ei+1)}
		row = append(row, report.Percent(paperTable5.coop3[ei]))
		row = append(row, cellEnvCoop(case3, ei))
		row = append(row, report.Percent(paperTable5.coop4[ei]))
		row = append(row, cellEnvCoop(case4, ei))
		row = append(row, report.Percent(paperTable5.free3[ei]))
		row = append(row, cellEnvFree(case3, ei))
		row = append(row, report.Percent(paperTable5.free4[ei]))
		row = append(row, cellEnvFree(case4, ei))
		t.AddRow(row...)
	}
	return t
}

func cellEnvCoop(res *CaseResult, ei int) string {
	if res == nil || ei >= len(res.PerEnv) {
		return "-"
	}
	return report.Percent(res.PerEnv[ei].Cooperation.Mean)
}

func cellEnvFree(res *CaseResult, ei int) string {
	if res == nil || ei >= len(res.PerEnv) {
		return "-"
	}
	return report.Percent(res.PerEnv[ei].CSNFree.Mean)
}

// Paper Table 6 values.
var paperTable6 = struct {
	normal3, normal4, csn3, csn4 [3]float64 // accepted, rejected by NP, rejected by CSN
}{
	normal3: [3]float64{0.77, 0.0023, 0.22},
	normal4: [3]float64{0.78, 0.035, 0.18},
	csn3:    [3]float64{0.04, 0.53, 0.43},
	csn4:    [3]float64{0.03, 0.49, 0.47},
}

// Table6 renders the response to packet forwarding requests for cases 3
// and 4, split by the type of the requesting node.
func Table6(case3, case4 *CaseResult) *report.Table {
	t := report.NewTable("Table 6 — response to forwarding requests (final generation)",
		"response", "from NP c3 paper", "from NP c3", "from NP c4 paper", "from NP c4",
		"from CSN c3 paper", "from CSN c3", "from CSN c4 paper", "from CSN c4")
	labels := []string{"accepted", "rejected by NP", "rejected by CSN"}
	var n3, n4, c3, c4 [3]float64
	if case3 != nil {
		n3[0], n3[1], n3[2] = case3.FromNormal.Fractions()
		c3[0], c3[1], c3[2] = case3.FromCSN.Fractions()
	}
	if case4 != nil {
		n4[0], n4[1], n4[2] = case4.FromNormal.Fractions()
		c4[0], c4[1], c4[2] = case4.FromCSN.Fractions()
	}
	for i, label := range labels {
		t.AddRow(label,
			report.Percent(paperTable6.normal3[i]), report.Percent(n3[i]),
			report.Percent(paperTable6.normal4[i]), report.Percent(n4[i]),
			report.Percent(paperTable6.csn3[i]), report.Percent(c3[i]),
			report.Percent(paperTable6.csn4[i]), report.Percent(c4[i]))
	}
	return t
}

// Table7 renders the five most popular evolved strategies for cases 3
// and 4 (the paper's Table 7).
func Table7(case3, case4 *CaseResult) *report.Table {
	t := report.NewTable("Table 7 — most popular evolved strategies",
		"rank", "case 3 (SP)", "freq", "case 4 (LP)", "freq")
	var top3, top4 []strategy.Entry
	if case3 != nil {
		top3 = case3.Census.Top(5)
	}
	if case4 != nil {
		top4 = case4.Census.Top(5)
	}
	for i := 0; i < 5; i++ {
		row := []string{fmt.Sprintf("%d", i+1)}
		if i < len(top3) {
			row = append(row, top3[i].Strategy.String(), report.Percent(top3[i].Fraction))
		} else {
			row = append(row, "-", "-")
		}
		if i < len(top4) {
			row = append(row, top4[i].Strategy.String(), report.Percent(top4[i].Fraction))
		} else {
			row = append(row, "-", "-")
		}
		t.AddRow(row...)
	}
	return t
}

// SubStrategyTable renders a Table 8/9-style sub-strategy distribution for
// one case: the 3-bit pattern per trust level with its frequency, filtered
// at the paper's 3% threshold.
func SubStrategyTable(title string, res *CaseResult) *report.Table {
	t := report.NewTable(title, "trust 0", "trust 1", "trust 2", "trust 3")
	if res == nil {
		return t
	}
	const minFraction = 0.03
	var cols [strategy.NumTrustLevels][]strategy.SubEntry
	maxRows := 0
	for tl := 0; tl < strategy.NumTrustLevels; tl++ {
		cols[tl] = res.Census.SubStrategies(strategy.TrustLevel(tl), minFraction)
		if len(cols[tl]) > maxRows {
			maxRows = len(cols[tl])
		}
	}
	for r := 0; r < maxRows; r++ {
		row := make([]string, strategy.NumTrustLevels)
		for tl := 0; tl < strategy.NumTrustLevels; tl++ {
			if r < len(cols[tl]) {
				e := cols[tl][r]
				row[tl] = fmt.Sprintf("%s (%s)", e.Pattern, report.Percent(e.Fraction))
			}
		}
		t.AddRow(row...)
	}
	return t
}

// Table8 renders the case-3 sub-strategy distribution (short paths).
func Table8(case3 *CaseResult) *report.Table {
	return SubStrategyTable("Table 8 — evolved sub-strategies, case 3 (short paths)", case3)
}

// Table9 renders the case-4 sub-strategy distribution (long paths).
func Table9(case4 *CaseResult) *report.Table {
	return SubStrategyTable("Table 9 — evolved sub-strategies, case 4 (long paths)", case4)
}

// PaperFig4Final exposes the paper's Fig 4 endpoints for tests and docs.
func PaperFig4Final() map[int]float64 {
	out := make(map[int]float64, len(paperFig4Final))
	for k, v := range paperFig4Final {
		out[k] = v
	}
	return out
}
