package experiment

import (
	"fmt"

	"adhocga/internal/island"
	"adhocga/internal/report"
	"adhocga/internal/scenario"
	"adhocga/internal/stats"
)

// IslandSummary aggregates the island-model view of one scenario across
// replications: how each island converged, how the cross-island champion
// fared, and how much genetic material migration actually moved. It rides
// along the serial-shaped CaseResult so the existing tables keep working
// unchanged.
type IslandSummary struct {
	Count    int
	Topology island.Topology
	Replace  island.Replacement
	Interval int
	Migrants int

	// FinalBest, FinalMean and FinalDiversity hold island i's
	// final-generation best fitness, mean fitness and genome diversity,
	// each averaged over replications.
	FinalBest      []float64
	FinalMean      []float64
	FinalDiversity []float64

	// ChampionFitness summarizes the cross-island champion's fitness over
	// replications.
	ChampionFitness stats.Summary

	// MigrationEvents and MigrantsMoved are totals over all replications.
	MigrationEvents int
	MigrantsMoved   int
}

// SummarizeIslands folds per-replicate island results into an
// IslandSummary. The spec provides the sharding parameters (with the
// engine's documented defaults applied for display); results supply the
// measured traces.
func SummarizeIslands(spec *scenario.IslandSpec, results []*island.Result) *IslandSummary {
	topo, _ := island.ParseTopology(spec.Topology)
	replace, _ := island.ParseReplacement(spec.Replace)
	sum := &IslandSummary{
		Count:    spec.Count,
		Topology: topo,
		Replace:  replace,
		Interval: spec.Interval,
		Migrants: spec.Migrants,

		FinalBest:      make([]float64, spec.Count),
		FinalMean:      make([]float64, spec.Count),
		FinalDiversity: make([]float64, spec.Count),
	}
	if sum.Interval == 0 {
		sum.Interval = island.DefaultInterval
	}
	if sum.Migrants == 0 {
		sum.Migrants = island.DefaultMigrants
	}
	champs := make([]float64, 0, len(results))
	reps := 0
	for _, res := range results {
		if res == nil {
			continue
		}
		reps++
		champs = append(champs, res.Champion.Fitness)
		sum.MigrationEvents += res.MigrationEvents
		sum.MigrantsMoved += res.MigrantsMoved
		for i, tr := range res.PerIsland {
			if i >= sum.Count || len(tr.Best) == 0 {
				continue
			}
			last := len(tr.Best) - 1
			sum.FinalBest[i] += tr.Best[last]
			sum.FinalMean[i] += tr.Mean[last]
			sum.FinalDiversity[i] += tr.Diversity[last]
		}
	}
	if reps > 0 {
		for i := range sum.FinalBest {
			sum.FinalBest[i] /= float64(reps)
			sum.FinalMean[i] /= float64(reps)
			sum.FinalDiversity[i] /= float64(reps)
		}
	}
	sum.ChampionFitness = stats.Summarize(champs)
	return sum
}

// IslandTable renders the per-island convergence/diversity view of an
// island-model scenario: one row per island with its final-generation best
// and mean fitness and genome diversity, averaged over replications.
// Returns nil when the result has no island view (serial scenario).
func IslandTable(res *CaseResult) *report.Table {
	sum := res.Islands
	if sum == nil {
		return nil
	}
	t := report.NewTable(
		fmt.Sprintf("islands — %d×%s/%s, %d migrants every %d generations (means over %d reps)",
			sum.Count, sum.Topology, sum.Replace, sum.Migrants, sum.Interval, res.Scale.Repetitions),
		"island", "best fitness", "mean fitness", "diversity")
	for i := 0; i < sum.Count; i++ {
		t.AddRowf(i, sum.FinalBest[i], sum.FinalMean[i], sum.FinalDiversity[i])
	}
	return t
}
