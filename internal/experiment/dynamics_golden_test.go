package experiment

import (
	"runtime"
	"testing"

	"adhocga/internal/scenario"
)

// The dynamics determinism contract, golden-pinned: a dynamics-enabled run
// (churn + rewiring + the full Byzantine cohort + gossip) is bit-identical
// across GOMAXPROCS and worker-pool sizes, and fully reproducible from the
// root seed. The hex literals were recorded at parallelism 1; any drift
// means the perturbation stream derivation or the barrier phasing changed,
// not just scheduling. (Dynamics-DISABLED bit-identity to the static
// reproduction is pinned separately by TestRunCaseGoldenBitIdentical and
// the reproduction suite, which this PR leaves untouched.)

func dynGoldenSpec() scenario.Spec {
	return scenario.Spec{
		Name:         "dyn golden",
		Environments: []scenario.EnvSpec{{Name: "TE2", CSN: 10}},
		PathMode:     "SP",
		Dynamics: &scenario.DynamicsSpec{
			Interval: 2, ChurnRate: 0.2, RewireProb: 0.5, RewireStep: 0.25,
			FreeRiders: 2, Liars: 2, OnOff: 2,
		},
		Gossip: &scenario.GossipSpec{Interval: 10},
	}
}

func TestDynamicsGoldenBitIdenticalAcrossGOMAXPROCS(t *testing.T) {
	sc := Scale{Name: "golden", Generations: 5, Rounds: 30, Repetitions: 2}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, procs := range []int{1, 2, 8} {
		runtime.GOMAXPROCS(procs)
		res, err := RunScenarios([]ScenarioRun{{Spec: dynGoldenSpec(), Seed: 42}}, sc,
			Options{Seed: 42, Parallelism: procs})
		if err != nil {
			t.Fatal(err)
		}
		r := res[0]
		checkSeries(t, "CoopMean", r.CoopMean, []string{
			"0x1.4c71034c71035p-03", "0x1.f284cdf284cep-04", "0x1.7a0c557a0c558p-04",
			"0x1.aacf61aacf61ap-05", "0x1.f1f1f1f1f1f2p-05",
		})
		if r.FinalCoop.Mean != hexf(t, "0x1.f1f1f1f1f1f2p-05") ||
			r.FinalCoop.StdDev != hexf(t, "0x1.6b755bc3b7743p-10") {
			t.Errorf("GOMAXPROCS %d: FinalCoop = %+v", procs, r.FinalCoop)
		}
		if r.FromByz.Accepted != 1057 || r.FromByz.RejectedByNormal != 1497 ||
			r.FromByz.RejectedBySelfish != 579 || r.FromByz.RejectedByByzantine != 159 {
			t.Errorf("GOMAXPROCS %d: FromByz = %+v", procs, r.FromByz)
		}
		if r.Recovery == nil || len(r.Recovery.Barriers) != 2 ||
			r.Recovery.MeanDip != hexf(t, "0x1.539cc1539cc14p-07") {
			t.Errorf("GOMAXPROCS %d: Recovery = %+v", procs, r.Recovery)
		}
		if r.Census.Total() != 200 {
			t.Errorf("GOMAXPROCS %d: census total %d", procs, r.Census.Total())
		}
		top := r.Census.Top(1)
		if len(top) != 1 || top[0].Strategy.Key() != "0000100101110" ||
			top[0].Fraction != hexf(t, "0x1.eb851eb851eb8p-07") {
			t.Errorf("GOMAXPROCS %d: top strategy = %+v", procs, top)
		}
	}
}

// TestDynamicsDisabledSpecMatchesPlainRun pins that attaching an all-zero
// dynamics block (and no gossip) is the SAME run as no block at all: the
// perturbation stream may only be split when something actually perturbs.
func TestDynamicsDisabledSpecMatchesPlainRun(t *testing.T) {
	sc := Scale{Name: "golden", Generations: 3, Rounds: 30, Repetitions: 2}
	base := scenario.Spec{
		Name:         "static control",
		Environments: []scenario.EnvSpec{{Name: "TE2", CSN: 10}},
		PathMode:     "SP",
	}
	withBlock := base
	withBlock.Dynamics = &scenario.DynamicsSpec{}
	plain, err := RunScenarios([]ScenarioRun{{Spec: base, Seed: 9}}, sc, Options{Seed: 9, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	blocked, err := RunScenarios([]ScenarioRun{{Spec: withBlock, Seed: 9}}, sc, Options{Seed: 9, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	a, b := plain[0], blocked[0]
	if len(a.CoopMean) != len(b.CoopMean) {
		t.Fatalf("series lengths differ: %d vs %d", len(a.CoopMean), len(b.CoopMean))
	}
	for i := range a.CoopMean {
		if a.CoopMean[i] != b.CoopMean[i] {
			t.Errorf("CoopMean[%d]: %x (plain) vs %x (zero dynamics block)", i, a.CoopMean[i], b.CoopMean[i])
		}
	}
	if a.FinalCoop != b.FinalCoop {
		t.Errorf("FinalCoop: %+v vs %+v", a.FinalCoop, b.FinalCoop)
	}
}

// TestDynamicsFamiliesEndToEnd runs every churn-sweep and adversary-grid
// scenario at a tiny budget through the same path cmd/experiments uses and
// checks the reporting artifacts come out populated.
func TestDynamicsFamiliesEndToEnd(t *testing.T) {
	sc := Scale{Name: "tiny", Generations: 6, Rounds: 10, Repetitions: 1}
	for _, fam := range []string{"churn-sweep", "adversary-grid"} {
		f, err := scenario.FamilyByName(fam)
		if err != nil {
			t.Fatal(err)
		}
		var runs []ScenarioRun
		for _, spec := range f.Specs() {
			runs = append(runs, ScenarioRun{Spec: spec})
		}
		results, err := RunScenarios(runs, sc, Options{Seed: 3})
		if err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		if len(results) != len(runs) {
			t.Fatalf("%s: %d results for %d scenarios", fam, len(results), len(runs))
		}
		switch fam {
		case "churn-sweep":
			table := ChurnSweepTable(results)
			if table == nil {
				t.Fatal("nil churn sweep table")
			}
			churning := 0
			for _, res := range results {
				if res.Dynamics != nil && res.Dynamics.ChurnRate > 0 {
					churning++
					if res.Recovery == nil {
						t.Errorf("%s: churning scenario %q has no recovery summary", fam, res.Case.Name)
					} else if got := len(res.Recovery.Barriers); got != 1 {
						// 6 generations at interval 5 contain exactly one barrier.
						t.Errorf("%s: %q has %d barriers, want 1", fam, res.Case.Name, got)
					}
				}
			}
			if churning == 0 {
				t.Errorf("%s: no churning scenarios in the family", fam)
			}
		case "adversary-grid":
			table := AdversaryTable(results)
			if table == nil {
				t.Fatal("nil adversary table")
			}
			for _, res := range results {
				adv := res.Dynamics.AdversaryCount()
				if adv > 0 && res.FromByz.Total() == 0 {
					t.Errorf("%q seats %d adversaries but recorded no byzantine-sourced requests",
						res.Case.Name, adv)
				}
				if adv == 0 && res.FromByz.Total() != 0 {
					t.Errorf("control %q recorded byzantine requests", res.Case.Name)
				}
			}
		}
	}
}
