package experiment

import (
	"strings"
	"testing"
)

func TestCasesMatchTable4(t *testing.T) {
	cases := Cases()
	if len(cases) != 4 {
		t.Fatalf("%d cases", len(cases))
	}
	// Case 1: only TE1 (0 CSN), SP.
	if len(cases[0].Environments) != 1 || cases[0].Environments[0].CSN != 0 || cases[0].Mode.Name != "SP" {
		t.Errorf("case 1 = %+v", cases[0])
	}
	// Case 2: only the 30-CSN environment, SP.
	if len(cases[1].Environments) != 1 || cases[1].Environments[0].CSN != 30 || cases[1].Mode.Name != "SP" {
		t.Errorf("case 2 = %+v", cases[1])
	}
	// Cases 3 and 4: all four environments; SP vs LP.
	if len(cases[2].Environments) != 4 || cases[2].Mode.Name != "SP" {
		t.Errorf("case 3 = %+v", cases[2])
	}
	if len(cases[3].Environments) != 4 || cases[3].Mode.Name != "LP" {
		t.Errorf("case 4 = %+v", cases[3])
	}
}

func TestCaseByID(t *testing.T) {
	for id := 1; id <= 4; id++ {
		c, err := CaseByID(id)
		if err != nil || c.ID != id {
			t.Errorf("CaseByID(%d) = %+v, %v", id, c, err)
		}
	}
	if _, err := CaseByID(5); err == nil {
		t.Error("CaseByID(5) succeeded")
	}
}

func TestScaleByName(t *testing.T) {
	for _, name := range []string{"smoke", "default", "paper"} {
		sc, err := ScaleByName(name)
		if err != nil || sc.Name != name {
			t.Errorf("ScaleByName(%q) = %+v, %v", name, sc, err)
		}
	}
	if _, err := ScaleByName("huge"); err == nil {
		t.Error("unknown scale accepted")
	}
}

func TestPaperScaleMatchesSection61(t *testing.T) {
	if PaperScale.Generations != 500 || PaperScale.Rounds != 300 || PaperScale.Repetitions != 60 {
		t.Errorf("paper scale = %+v", PaperScale)
	}
}

func TestRunCaseSmoke(t *testing.T) {
	c, err := CaseByID(1)
	if err != nil {
		t.Fatal(err)
	}
	sc := Scale{Name: "tiny", Generations: 3, Rounds: 20, Repetitions: 3}
	res, err := RunCase(c, sc, Options{Seed: 1, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CoopMean) != 3 {
		t.Errorf("coop series length %d", len(res.CoopMean))
	}
	if res.FinalCoop.N != 3 {
		t.Errorf("final coop sample size %d", res.FinalCoop.N)
	}
	if res.Census.Total() != 3*100 {
		t.Errorf("census total %d, want 300", res.Census.Total())
	}
	if len(res.PerEnv) != 1 || res.PerEnv[0].Name != "TE1" {
		t.Errorf("per-env = %+v", res.PerEnv)
	}
	for g, v := range res.CoopMean {
		if v < 0 || v > 1 {
			t.Errorf("coop[%d] = %v", g, v)
		}
	}
	// Case 1 has no CSN: every path is CSN-free and no request can be
	// rejected by a CSN.
	if res.PerEnv[0].CSNFree.Mean != 1 {
		t.Errorf("CSN-free fraction %v in CSN-free case", res.PerEnv[0].CSNFree.Mean)
	}
	if res.FromNormal.RejectedBySelfish != 0 || res.FromCSN.Total() != 0 {
		t.Errorf("impossible request counts: %+v / %+v", res.FromNormal, res.FromCSN)
	}
}

func TestRunCaseDeterministicAcrossParallelism(t *testing.T) {
	c, err := CaseByID(2)
	if err != nil {
		t.Fatal(err)
	}
	sc := Scale{Name: "tiny", Generations: 2, Rounds: 15, Repetitions: 4}
	seq, err := RunCase(c, sc, Options{Seed: 9, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunCase(c, sc, Options{Seed: 9, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	for g := range seq.CoopMean {
		if seq.CoopMean[g] != par.CoopMean[g] {
			t.Fatalf("parallelism changed results at generation %d: %v vs %v",
				g, seq.CoopMean[g], par.CoopMean[g])
		}
	}
	if seq.FromNormal != par.FromNormal || seq.FromCSN != par.FromCSN {
		t.Error("parallelism changed request counts")
	}
}

func TestRunCaseProgressCallback(t *testing.T) {
	c, _ := CaseByID(1)
	sc := Scale{Name: "tiny", Generations: 2, Rounds: 10, Repetitions: 3}
	var calls int
	var last int
	_, err := RunCase(c, sc, Options{Seed: 3, Parallelism: 1, OnReplicate: func(done, total int) {
		calls++
		last = done
		if total != 3 {
			t.Errorf("total = %d", total)
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 3 || last != 3 {
		t.Errorf("callback calls=%d last=%d", calls, last)
	}
}

func TestRunCaseRejectsZeroReps(t *testing.T) {
	c, _ := CaseByID(1)
	if _, err := RunCase(c, Scale{Name: "bad"}, Options{}); err == nil {
		t.Error("zero repetitions accepted")
	}
}

func smokeResults(t *testing.T) map[int]*CaseResult {
	t.Helper()
	sc := Scale{Name: "tiny", Generations: 2, Rounds: 15, Repetitions: 2}
	out := make(map[int]*CaseResult)
	for id := 1; id <= 4; id++ {
		c, err := CaseByID(id)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunCase(c, sc, Options{Seed: uint64(id)})
		if err != nil {
			t.Fatal(err)
		}
		out[id] = res
	}
	return out
}

func TestTableRendering(t *testing.T) {
	results := smokeResults(t)
	fig4 := Fig4Table(results).Render()
	for _, want := range []string{"case 1", "case 4", "97.0%", "19.0%"} {
		if !strings.Contains(fig4, want) {
			t.Errorf("Fig4 table missing %q:\n%s", want, fig4)
		}
	}
	chart := Fig4Chart(results)
	if !strings.Contains(chart, "case 1") || !strings.Contains(chart, "case 4") {
		t.Errorf("Fig4 chart missing series:\n%s", chart)
	}
	t5 := Table5(results[3], results[4]).Render()
	for _, want := range []string{"TE1", "TE4", "99.0%", "66.0%"} {
		if !strings.Contains(t5, want) {
			t.Errorf("Table 5 missing %q:\n%s", want, t5)
		}
	}
	t6 := Table6(results[3], results[4]).Render()
	for _, want := range []string{"accepted", "rejected by NP", "rejected by CSN", "77.0%"} {
		if !strings.Contains(t6, want) {
			t.Errorf("Table 6 missing %q:\n%s", want, t6)
		}
	}
	t7 := Table7(results[3], results[4]).Render()
	if !strings.Contains(t7, "1") || len(strings.Split(t7, "\n")) < 7 {
		t.Errorf("Table 7 too small:\n%s", t7)
	}
	t8 := Table8(results[3]).Render()
	if !strings.Contains(t8, "trust 3") {
		t.Errorf("Table 8 missing trust columns:\n%s", t8)
	}
	t9 := Table9(results[4]).Render()
	if !strings.Contains(t9, "trust 0") {
		t.Errorf("Table 9 missing trust columns:\n%s", t9)
	}
}

func TestTablesHandleNilResults(t *testing.T) {
	// Partial runs must not panic.
	_ = Table5(nil, nil).Render()
	_ = Table6(nil, nil).Render()
	_ = Table7(nil, nil).Render()
	_ = Table8(nil).Render()
	_ = Table9(nil).Render()
	_ = Fig4Table(map[int]*CaseResult{}).Render()
	_ = Fig4Chart(map[int]*CaseResult{})
}

func TestPaperFig4FinalIsCopy(t *testing.T) {
	m := PaperFig4Final()
	m[1] = 0
	if PaperFig4Final()[1] != 0.97 {
		t.Error("PaperFig4Final exposed internal map")
	}
}
