// Package experiment reproduces the paper's evaluation (§6): the four
// evaluation cases of Table 4, run over repeated replications with
// independent seeds, aggregated into the numbers behind Fig 4 and
// Tables 5–9 — and generalizes it to arbitrary batches of declarative
// scenarios (internal/scenario) via RunScenarios.
//
// Every workload flattens to (scenario × replicate) work units on one
// shared bounded worker pool (internal/runner); each replicate owns an
// engine and a seed derived up front from its scenario's master seed, so
// results are deterministic for given seeds regardless of the parallelism
// level, and identical whether scenarios run alone or batched.
package experiment

import (
	"context"
	"fmt"

	"adhocga/internal/core"
	"adhocga/internal/island"
	"adhocga/internal/metrics"
	"adhocga/internal/network"
	"adhocga/internal/runner"
	"adhocga/internal/scenario"
	"adhocga/internal/stats"
	"adhocga/internal/strategy"
	"adhocga/internal/tournament"
)

// Scale selects how much of the paper's computational budget to spend. It
// doubles as the default provider for scenario specs that leave their
// generation, round, or repetition counts unset.
type Scale = scenario.Scale

// The three standard scales. Paper is the full §6.1 parameterization
// (500 generations, 300 rounds, 60 repetitions); Default reproduces the
// qualitative shape in minutes; Smoke is for tests and benchmarks.
var (
	Smoke      = Scale{Name: "smoke", Generations: 25, Rounds: 300, Repetitions: 2}
	Default    = Scale{Name: "default", Generations: 120, Rounds: 300, Repetitions: 10}
	PaperScale = Scale{Name: "paper", Generations: 500, Rounds: 300, Repetitions: 60}
)

// ScaleByName resolves a scale preset.
func ScaleByName(name string) (Scale, error) {
	switch name {
	case "smoke":
		return Smoke, nil
	case "default":
		return Default, nil
	case "paper":
		return PaperScale, nil
	default:
		return Scale{}, fmt.Errorf("experiment: unknown scale %q (want smoke, default, or paper)", name)
	}
}

// Case is one evaluation case of Table 4.
type Case struct {
	ID           int
	Name         string
	Environments []tournament.Environment
	Mode         network.PathMode
}

// Cases returns the four evaluation cases of Table 4:
//
//	case 1: the CSN-free environment TE1, shorter paths
//	case 2: the 30-CSN environment TE4 ("60% of the population"), shorter paths
//	case 3: all environments TE1–TE4, shorter paths
//	case 4: all environments TE1–TE4, longer paths
//
// The definitions live in the scenario registry (scenario.Table4) so the
// spec and Case forms cannot drift apart.
func Cases() []Case {
	specs := scenario.Table4()
	cases := make([]Case, len(specs))
	for i, s := range specs {
		mode, err := s.Mode()
		if err != nil {
			panic(fmt.Sprintf("experiment: registry spec %q: %v", s.Name, err))
		}
		cases[i] = Case{ID: s.ID, Name: s.Name, Environments: s.Envs(), Mode: mode}
	}
	return cases
}

// CaseByID returns the Table 4 case with the given id (1–4).
func CaseByID(id int) (Case, error) {
	for _, c := range Cases() {
		if c.ID == id {
			return c, nil
		}
	}
	return Case{}, fmt.Errorf("experiment: no evaluation case %d", id)
}

// EnvSummary aggregates one environment's final-generation observables
// across replications.
type EnvSummary struct {
	Name        string
	Cooperation stats.Summary
	CSNFree     stats.Summary
}

// CaseResult aggregates one case over all replications.
type CaseResult struct {
	Case  Case
	Scale Scale

	// CoopMean/CoopStd: the Fig 4 curve — overall cooperation level per
	// generation, mean and sample standard deviation across replications.
	CoopMean []float64
	CoopStd  []float64
	// MeanEnvCoopMean is the per-generation unweighted environment mean
	// (identical to CoopMean for single-environment cases).
	MeanEnvCoopMean []float64

	// FinalCoop summarizes the last generation's overall cooperation.
	FinalCoop stats.Summary
	// FinalMeanEnvCoop summarizes the last generation's unweighted
	// environment-mean cooperation (the paper's Fig 4 endpoint for the
	// multi-environment cases).
	FinalMeanEnvCoop stats.Summary

	// PerEnv holds final-generation per-environment summaries (Table 5).
	PerEnv []EnvSummary

	// FromNormal/FromCSN are final-generation request-response counts
	// summed over replications (Table 6); FromByz covers requests sourced
	// by Byzantine adversaries when the dynamics layer seats any.
	FromNormal metrics.ResponseCounts
	FromCSN    metrics.ResponseCounts
	FromByz    metrics.ResponseCounts

	// Census pools the final strategy populations of all replications
	// (Tables 7–9).
	Census *strategy.Census

	// Islands summarizes per-island convergence and migration when the
	// scenario ran on the island-model engine; nil for serial scenarios.
	Islands *IslandSummary

	// TournamentSize is the resolved tournament size the scenario ran at
	// (the paper's T; 50 unless the spec overrode it).
	TournamentSize int
	// Dynamics carries the scenario's resolved dynamics block; nil for
	// static scenarios.
	Dynamics *scenario.DynamicsSpec
	// Recovery summarizes cooperation dips and recovery after churn
	// barriers; nil unless the scenario churns.
	Recovery *RecoverySummary
}

// Options tune a RunCase invocation.
type Options struct {
	Seed        uint64
	Parallelism int // worker pool size; ≤0 means GOMAXPROCS
	// OnReplicate, when non-nil, is called as each replicate finishes
	// (from multiple goroutines) with the number completed so far.
	OnReplicate func(done, total int)

	// Pool, when non-nil, runs the batch's replicate units on the given
	// shared execution capacity instead of transient per-call workers, so
	// concurrent batches — e.g. several jobs of one Session — stay jointly
	// bounded by the pool size. Parallelism still caps this batch's share.
	// Scheduling only; results are identical either way.
	Pool *runner.Pool

	// The observation hooks below stream per-replicate progress out of a
	// running batch (the Session/Job event layer is their only intended
	// consumer). Each may be called concurrently from pool workers; none
	// consumes engine randomness, so setting them never changes results.
	// scenario is the index of the scenario/sweep point in the batch, rep
	// the replicate index within it.

	// OnGeneration receives every serial replicate's per-generation
	// snapshot right after evaluation.
	OnGeneration func(scenario, rep int, stats core.GenerationStats)
	// OnIslandGeneration receives every island-model replicate's
	// per-generation aggregate and per-island snapshot.
	OnIslandGeneration func(scenario, rep int, stats island.GenerationStats)
	// OnChurn fires after each dynamics barrier that perturbed a
	// replicate, with the generation whose reproduction it followed.
	OnChurn func(scenario, rep, generation int)
	// OnCheckpoint fires at every champion checkpoint of a replicate
	// (serial or island) when the scenario enables them
	// (scenario.Spec.Checkpoints > 0), with the replicate's master seed —
	// the provenance a hall-of-fame archive records.
	OnCheckpoint func(scenario, rep int, seed uint64, cp core.Checkpoint)
}

// RunCase runs one evaluation case at the given scale and aggregates the
// results. Deterministic for a fixed (case, scale, seed) regardless of
// parallelism, and bit-identical to the pre-runner per-case execution.
func RunCase(c Case, sc Scale, opts Options) (*CaseResult, error) {
	return RunCaseContext(context.Background(), c, sc, opts)
}

// RunCaseContext is RunCase with cooperative cancellation: replicates stop
// at their next generation barrier and no new replicate starts once ctx is
// done. On cancellation it returns a nil result and an error satisfying
// errors.Is(err, ctx.Err()); stream partial progress through the Options
// hooks (or the Session event layer) if you need it.
func RunCaseContext(ctx context.Context, c Case, sc Scale, opts Options) (*CaseResult, error) {
	out, err := runJobs(ctx, []job{caseJob(c, sc, opts.Seed)}, opts)
	if err != nil {
		return nil, err
	}
	return out[0], nil
}

// Aggregate folds one scenario's replicate results into a CaseResult: the
// Fig 4 series, final-generation summaries, per-environment views, request
// counts, and the pooled strategy census.
func Aggregate(c Case, sc Scale, results []*core.Result) *CaseResult {
	out := &CaseResult{Case: c, Scale: sc, Census: strategy.NewCensus()}

	var coopAcc, envMeanAcc stats.SeriesAccumulator
	finalCoop := make([]float64, 0, len(results))
	finalEnvMean := make([]float64, 0, len(results))
	perEnvCoop := make([][]float64, len(c.Environments))
	perEnvCSNFree := make([][]float64, len(c.Environments))

	for _, res := range results {
		coopAcc.AddSeries(res.CoopSeries)
		envMeanAcc.AddSeries(res.MeanEnvCoopSeries)
		finalCoop = append(finalCoop, res.CoopSeries[len(res.CoopSeries)-1])
		finalEnvMean = append(finalEnvMean, res.MeanEnvCoopSeries[len(res.MeanEnvCoopSeries)-1])
		for ei := range res.FinalCollector.Environments() {
			if ei >= len(perEnvCoop) {
				break
			}
			env := &res.FinalCollector.Environments()[ei]
			perEnvCoop[ei] = append(perEnvCoop[ei], env.CooperationLevel())
			perEnvCSNFree[ei] = append(perEnvCSNFree[ei], env.CSNFreeFraction())
		}
		out.FromNormal.Add(res.FinalCollector.FromNormal)
		out.FromCSN.Add(res.FinalCollector.FromCSN)
		out.FromByz.Add(res.FinalCollector.FromByz)
		out.Census.AddAll(res.FinalStrategies)
	}

	out.CoopMean = coopAcc.Mean()
	out.CoopStd = coopAcc.StdDev()
	out.MeanEnvCoopMean = envMeanAcc.Mean()
	out.FinalCoop = stats.Summarize(finalCoop)
	out.FinalMeanEnvCoop = stats.Summarize(finalEnvMean)
	out.PerEnv = make([]EnvSummary, len(c.Environments))
	for ei, env := range c.Environments {
		out.PerEnv[ei] = EnvSummary{
			Name:        env.Name,
			Cooperation: stats.Summarize(perEnvCoop[ei]),
			CSNFree:     stats.Summarize(perEnvCSNFree[ei]),
		}
	}
	return out
}
