package experiment

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestToJSONRoundtrip(t *testing.T) {
	c, err := CaseByID(2)
	if err != nil {
		t.Fatal(err)
	}
	sc := Scale{Name: "tiny", Generations: 2, Rounds: 15, Repetitions: 2}
	res, err := RunCase(c, sc, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, map[int]*CaseResult{2: res}, 3); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]CaseJSON
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	got, ok := decoded["case2"]
	if !ok {
		t.Fatalf("case2 key missing; keys: %v", keys(decoded))
	}
	if got.CaseID != 2 || got.PathMode != "SP" {
		t.Errorf("case metadata wrong: %+v", got)
	}
	if len(got.CoopMean) != 2 {
		t.Errorf("coop series length %d", len(got.CoopMean))
	}
	if got.Scale.Repetitions != 2 || got.Scale.Name != "tiny" {
		t.Errorf("scale wrong: %+v", got.Scale)
	}
	if len(got.PerEnv) != 1 || got.PerEnv[0].Name != "TE4" {
		t.Errorf("per-env wrong: %+v", got.PerEnv)
	}
	if len(got.TopStrategies) == 0 || len(got.TopStrategies) > 3 {
		t.Errorf("%d top strategies", len(got.TopStrategies))
	}
	// Strategies serialize in the paper's grouped notation.
	if !strings.Contains(got.TopStrategies[0].Strategy, " ") {
		t.Errorf("strategy %q not grouped", got.TopStrategies[0].Strategy)
	}
	// Request books survive the roundtrip.
	total := got.FromNormal.Accepted + got.FromNormal.RejectedByNormal + got.FromNormal.RejectedBySelfish
	if total == 0 {
		t.Error("request counts empty")
	}
}

func keys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
