package experiment

import (
	"encoding/json"
	"reflect"
	"testing"

	"adhocga/internal/scenario"
)

func tinyScale() Scale {
	return Scale{Name: "tiny", Generations: 2, Rounds: 15, Repetitions: 2}
}

// caseResultFingerprint reduces a CaseResult to comparable plain data (the
// census and collector hold maps/pointers, so compare their JSON form).
func caseResultFingerprint(t *testing.T, res *CaseResult) string {
	t.Helper()
	type fp struct {
		CoopMean, CoopStd, MeanEnvCoopMean []float64
		Final, FinalEnv                    any
		PerEnv                             []EnvSummary
		FromNormal, FromCSN                any
		Top                                any
	}
	b, err := json.Marshal(fp{
		CoopMean: res.CoopMean, CoopStd: res.CoopStd, MeanEnvCoopMean: res.MeanEnvCoopMean,
		Final: res.FinalCoop, FinalEnv: res.FinalMeanEnvCoop,
		PerEnv:     res.PerEnv,
		FromNormal: res.FromNormal, FromCSN: res.FromCSN,
		Top: res.Census.Top(1 << 30),
	})
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestRunScenariosMatchesRunCase(t *testing.T) {
	// A batched Table 4 scenario must equal the equivalent standalone
	// RunCase bit-for-bit: batching is pure scheduling.
	specs := scenario.Table4()
	runs := []ScenarioRun{
		{Spec: specs[0], Seed: 11},
		{Spec: specs[2], Seed: 13},
	}
	batched, err := RunScenarios(runs, tinyScale(), Options{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i, caseID := range []int{1, 3} {
		c, err := CaseByID(caseID)
		if err != nil {
			t.Fatal(err)
		}
		alone, err := RunCase(c, tinyScale(), Options{Seed: runs[i].Seed, Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		if got, want := caseResultFingerprint(t, batched[i]), caseResultFingerprint(t, alone); got != want {
			t.Errorf("case %d: batched result differs from standalone RunCase", caseID)
		}
		if batched[i].Case.ID != caseID || batched[i].Case.Name != c.Name {
			t.Errorf("case identity lost: %+v", batched[i].Case)
		}
	}
}

func TestRunScenariosDeterministicAcrossParallelism(t *testing.T) {
	runs := []ScenarioRun{
		{Spec: scenario.Spec{Name: "a", Environments: []scenario.EnvSpec{{CSN: 0}}}, Seed: 3},
		{Spec: scenario.Spec{Name: "b", Environments: []scenario.EnvSpec{{CSN: 10}}, PathMode: "LP"}, Seed: 4},
		{Spec: scenario.Spec{Name: "c", Environments: []scenario.EnvSpec{{CSN: 30}}, Repetitions: 3}, Seed: 5},
	}
	seq, err := RunScenarios(runs, tinyScale(), Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunScenarios(runs, tinyScale(), Options{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := range runs {
		if caseResultFingerprint(t, seq[i]) != caseResultFingerprint(t, par[i]) {
			t.Errorf("scenario %q: parallelism changed the result", runs[i].Spec.Name)
		}
	}
	if seq[2].FinalCoop.N != 3 {
		t.Errorf("spec-pinned repetitions ignored: N = %d", seq[2].FinalCoop.N)
	}
}

func TestRunScenariosSpecOverridesReachEngine(t *testing.T) {
	spec := scenario.Spec{
		Name:           "small world",
		Environments:   []scenario.EnvSpec{{CSN: 4}},
		Population:     30,
		TournamentSize: 20,
		Generations:    2,
		Rounds:         10,
		Repetitions:    2,
	}
	res, err := RunScenarios([]ScenarioRun{{Spec: spec, Seed: 9}}, tinyScale(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res[0].Census.Total(); got != 2*30 {
		t.Errorf("census total %d, want 60 (population override lost)", got)
	}
	if len(res[0].CoopMean) != 2 {
		t.Errorf("%d generations", len(res[0].CoopMean))
	}
	if res[0].Case.Name != "small world" || res[0].PerEnv[0].Name != "CSN4" {
		t.Errorf("presentation fields wrong: %+v", res[0].Case)
	}
}

func TestRunScenariosPinnedSeedWins(t *testing.T) {
	spec := scenario.Spec{Name: "pinned", Environments: []scenario.EnvSpec{{CSN: 0}}, Seed: 77}
	a, err := RunScenarios([]ScenarioRun{{Spec: spec, Seed: 1}}, tinyScale(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunScenarios([]ScenarioRun{{Spec: spec, Seed: 2}}, tinyScale(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if caseResultFingerprint(t, a[0]) != caseResultFingerprint(t, b[0]) {
		t.Error("pinned scenario seed did not override the fallback seed")
	}
}

func TestRunScenariosOptionsSeedIsBatchFallback(t *testing.T) {
	spec := func(name string) scenario.Spec {
		return scenario.Spec{Name: name, Environments: []scenario.EnvSpec{{CSN: 0}}}
	}
	runs := []ScenarioRun{{Spec: spec("a")}, {Spec: spec("b")}}
	first, err := RunScenarios(runs, tinyScale(), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Unpinned scenarios in one batch must not share replicate streams.
	if caseResultFingerprint(t, first[0]) == caseResultFingerprint(t, first[1]) {
		t.Error("two unpinned scenarios produced identical results")
	}
	// The batch seed must matter...
	other, err := RunScenarios(runs, tinyScale(), Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if caseResultFingerprint(t, first[0]) == caseResultFingerprint(t, other[0]) {
		t.Error("changing Options.Seed did not change unpinned scenario results")
	}
	// ...and be reproducible.
	again, err := RunScenarios(runs, tinyScale(), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range runs {
		if caseResultFingerprint(t, first[i]) != caseResultFingerprint(t, again[i]) {
			t.Errorf("scenario %d not reproducible for a fixed batch seed", i)
		}
	}
	// Pinning one run's seed must not shift its neighbor's stream.
	pinned := []ScenarioRun{{Spec: spec("a"), Seed: 999}, {Spec: spec("b")}}
	mixed, err := RunScenarios(pinned, tinyScale(), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if caseResultFingerprint(t, mixed[1]) != caseResultFingerprint(t, first[1]) {
		t.Error("pinning scenario 0's seed changed scenario 1's results")
	}
}

func TestRunScenariosRejectsBadSpecs(t *testing.T) {
	bad := []ScenarioRun{{Spec: scenario.Spec{Name: "no envs"}}}
	if _, err := RunScenarios(bad, tinyScale(), Options{}); err == nil {
		t.Error("invalid spec accepted")
	}
	impossible := []ScenarioRun{{Spec: scenario.Spec{
		Name:         "csn over tournament size",
		Environments: []scenario.EnvSpec{{CSN: 60}},
	}}}
	if _, err := RunScenarios(impossible, tinyScale(), Options{}); err == nil {
		t.Error("impossible spec accepted")
	}
}

func TestRunScenariosProgressSpansBatch(t *testing.T) {
	runs := []ScenarioRun{
		{Spec: scenario.Spec{Name: "a", Environments: []scenario.EnvSpec{{CSN: 0}}}, Seed: 1},
		{Spec: scenario.Spec{Name: "b", Environments: []scenario.EnvSpec{{CSN: 0}}, Repetitions: 3}, Seed: 2},
	}
	var calls, last int
	_, err := RunScenarios(runs, tinyScale(), Options{Parallelism: 1, OnReplicate: func(done, total int) {
		calls++
		last = done
		if total != 5 { // 2 + 3 replicates flattened into one queue
			t.Errorf("total = %d, want 5", total)
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 5 || last != 5 {
		t.Errorf("calls=%d last=%d", calls, last)
	}
}

func TestRunScenariosEmptyBatch(t *testing.T) {
	out, err := RunScenarios(nil, tinyScale(), Options{})
	if err != nil || len(out) != 0 {
		t.Errorf("empty batch: %v, %v", out, err)
	}
}

func TestDeepEqualAcrossParallelismFullStructure(t *testing.T) {
	// Beyond the fingerprint: the raw series slices must be deeply equal.
	c, err := CaseByID(2)
	if err != nil {
		t.Fatal(err)
	}
	sc := tinyScale()
	a, err := RunCase(c, sc, Options{Seed: 21, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCase(c, sc, Options{Seed: 21, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.CoopMean, b.CoopMean) || !reflect.DeepEqual(a.CoopStd, b.CoopStd) ||
		!reflect.DeepEqual(a.MeanEnvCoopMean, b.MeanEnvCoopMean) || !reflect.DeepEqual(a.PerEnv, b.PerEnv) {
		t.Error("parallelism changed aggregate series")
	}
}
