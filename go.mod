module adhocga

go 1.24
