package adhocga

import (
	"context"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"adhocga/internal/core"
	"adhocga/internal/league"
	"adhocga/internal/runner"
)

// Session is the context-aware front door to every long-running workload.
// It owns one shared execution pool (internal/runner.Pool) for its whole
// lifetime: every job submitted to the session — concurrently or not —
// draws its replicate work from the same bounded capacity, so an adhocd
// service (or any embedding program) can multiplex many experiments
// without oversubscribing the machine. Jobs are submitted as typed
// JobSpecs via Submit and observed through their Job handles: a unified
// event stream, Wait, and cooperative cancellation checked at generation
// barriers (so determinism and golden bit-identity are untouched for
// uncancelled runs — a job's numbers are exactly the legacy facade's).
//
// A Session is safe for concurrent use. Close cancels everything still
// running and waits for it to stop; a closed session rejects new
// submissions.
type Session struct {
	pool     *runner.Pool
	scale    Scale
	seed     uint64
	jobSlots chan struct{}
	retain   int // max terminal jobs kept; ≤0 = unlimited
	hubCfg   HubConfig
	logger   *slog.Logger
	// champions, when non-nil, receives a hall-of-fame record for every
	// KindCheckpoint event any job emits (observed on the emit path, so
	// archiving can never perturb engine randomness or job results).
	champions *league.Archive

	mu        sync.Mutex
	jobs      map[string]*Job
	order     []*Job
	nextID    int
	submitted int
	retired   StreamTotals // stream counters of jobs pruned from the map
	closed    bool
	wg        sync.WaitGroup

	// Engine arena: finished evolve jobs park their engine here and later
	// submissions reinitialize it in place (core.Engine.Reinit), so a
	// session's steady state reuses one working set — population, dense
	// reputation stores, evaluation scratch — per concurrent job instead
	// of rebuilding ~1 MB of structure per Submit. Bounded by the pool
	// size; reuse is bit-invisible (Reinit replays New exactly).
	engMu        sync.Mutex
	engines      []*core.Engine
	engineReuses int
}

// SessionOption configures NewSession.
type SessionOption func(*Session)

// WithPoolSize sets the session execution pool's slot count — the maximum
// number of replicate units running at once across all jobs. n ≤ 0 (the
// default) means GOMAXPROCS.
func WithPoolSize(n int) SessionOption {
	return func(s *Session) { s.pool = runner.NewPool(n) }
}

// WithDefaultScale sets the Scale used by batch jobs whose spec leaves it
// zero. The default is ScaleDefault.
func WithDefaultScale(sc Scale) SessionOption {
	return func(s *Session) { s.scale = sc }
}

// WithDefaultSeed sets the master seed used by batch jobs whose options
// leave Seed zero — the session's seed policy. The default keeps zero
// (the layers below derive their streams from it as documented).
func WithDefaultSeed(seed uint64) SessionOption {
	return func(s *Session) { s.seed = seed }
}

// WithMaxConcurrentJobs bounds how many jobs run at once; later
// submissions queue (state JobQueued) until a slot frees. A cancelled or
// finished job releases its slot immediately — at the generation barrier
// it stopped at, not at the end of the workload it abandoned. n ≤ 0 (the
// default) means no bound beyond the shared pool itself.
func WithMaxConcurrentJobs(n int) SessionOption {
	return func(s *Session) {
		if n > 0 {
			s.jobSlots = make(chan struct{}, n)
		} else {
			s.jobSlots = nil
		}
	}
}

// WithJobRetention bounds how many terminal jobs the session keeps
// reachable: once more than n jobs have finished, the oldest terminal
// ones (and their event logs) are evicted from Job/Jobs lookup so a
// long-lived session — the adhocd daemon — does not grow without bound.
// Running and queued jobs are never evicted, and held *Job handles stay
// valid after eviction. n ≤ 0 (the default) keeps every job forever.
func WithJobRetention(n int) SessionOption {
	return func(s *Session) { s.retain = n }
}

// WithHubConfig sizes every job's streaming hub: ring capacity (event
// retention and replay depth), per-subscriber send-channel buffer, and the
// producer's block-with-deadline budget for archival subscribers. Zero
// fields keep their defaults (DefaultRingSize, DefaultSubscriberBuffer,
// DefaultBlockDeadline). Together with WithJobRetention this bounds a
// long-lived session's memory: at most retention × (ring + snapshot)
// events ever stay reachable.
func WithHubConfig(cfg HubConfig) SessionOption {
	return func(s *Session) { s.hubCfg = cfg }
}

// WithLogger sets the structured logger for session lifecycle events —
// job submissions, state transitions with job IDs, and hub backpressure
// evictions. The default discards everything, so embedding programs pay
// nothing unless they opt in.
func WithLogger(l *slog.Logger) SessionOption {
	return func(s *Session) { s.logger = l }
}

// WithChampionArchive attaches a hall-of-fame archive: every champion
// checkpoint any job emits (scenarios with "checkpoints" set, or engine
// configs with CheckpointInterval > 0) is recorded into it. Archiving is
// a pure observer of the event stream — results and event bytes are
// identical with or without it; Put failures are logged, never fatal to
// the job.
func WithChampionArchive(a *league.Archive) SessionOption {
	return func(s *Session) { s.champions = a }
}

// NewSession builds a Session from its functional options.
func NewSession(opts ...SessionOption) *Session {
	s := &Session{
		scale: ScaleDefault,
		jobs:  map[string]*Job{},
	}
	for _, o := range opts {
		o(s)
	}
	if s.pool == nil {
		s.pool = runner.NewPool(0)
	}
	if s.logger == nil {
		s.logger = slog.New(slog.DiscardHandler)
	}
	return s
}

// PoolSize returns the session execution pool's slot count.
func (s *Session) PoolSize() int { return s.pool.Size() }

// DefaultScale returns the session's default scale.
func (s *Session) DefaultScale() Scale { return s.scale }

// scaleOr resolves a spec-level scale against the session default.
func (s *Session) scaleOr(sc Scale) Scale {
	if sc == (Scale{}) {
		return s.scale
	}
	return sc
}

// Submit starts spec as a new job and returns its handle immediately. The
// job's lifetime context derives from ctx: cancelling ctx (or calling
// Job.Cancel, or closing the session) stops the job cooperatively at its
// next generation barrier. Submit itself never blocks on capacity — a job
// past the session's concurrent-job bound waits in state JobQueued.
func (s *Session) Submit(ctx context.Context, spec JobSpec) (*Job, error) {
	return s.SubmitNamed(ctx, "", spec)
}

// SubmitNamed is Submit with a caller-chosen job ID instead of the
// session's sequential "job-N" (an empty id falls back to that default).
// The ID appears verbatim in every event the job emits, which is what
// makes replays comparable across processes: a durable service resuming a
// persisted job after a restart — or re-running one to verify it —
// submits under the original ID and gets a byte-identical event stream,
// not one reindexed by a fresh session's counter. Submitting an ID the
// session already knows (including a retained terminal job) is an error.
func (s *Session) SubmitNamed(ctx context.Context, id string, spec JobSpec) (*Job, error) {
	if spec == nil {
		return nil, fmt.Errorf("adhocga: nil job spec")
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, fmt.Errorf("adhocga: session is closed")
	}
	if id == "" {
		// Auto IDs skip over any names already taken by SubmitNamed.
		for {
			s.nextID++
			id = fmt.Sprintf("job-%d", s.nextID)
			if _, taken := s.jobs[id]; !taken {
				break
			}
		}
	} else if _, taken := s.jobs[id]; taken {
		s.mu.Unlock()
		return nil, fmt.Errorf("adhocga: job id %q already exists", id)
	}
	j := newJob(id, spec.Kind(), s.hubCfg, s.logger)
	jctx, cancel := context.WithCancel(ctx)
	j.cancel = cancel
	s.jobs[j.id] = j
	s.order = append(s.order, j)
	s.submitted++
	s.wg.Add(1)
	s.mu.Unlock()
	s.logger.Info("job submitted", "job", j.id, "kind", j.kind)

	go func() {
		defer s.wg.Done()
		if s.jobSlots != nil {
			select {
			case s.jobSlots <- struct{}{}:
				defer func() { <-s.jobSlots }()
			case <-jctx.Done():
				j.finish(nil, fmt.Errorf("adhocga: job %s cancelled while queued: %w", j.id, jctx.Err()))
				s.logger.Info("job cancelled while queued", "job", j.id)
				s.prune()
				return
			}
		}
		j.setRunning()
		s.logger.Info("job running", "job", j.id, "kind", j.kind)
		emit := j.emit
		if s.champions != nil {
			emit = func(ev Event) {
				j.emit(ev)
				if ev.Kind == KindCheckpoint {
					s.archiveCheckpoint(j.id, spec, ev.Checkpoint)
				}
			}
		}
		res, err := spec.run(jctx, s, emit)
		j.finish(res, err)
		if err != nil {
			s.logger.Warn("job finished", "job", j.id, "state", string(j.State()), "error", err)
		} else {
			s.logger.Info("job finished", "job", j.id, "state", string(j.State()), "events", j.EventCount())
		}
		s.prune()
	}()
	return j, nil
}

// Champions returns the session's champion archive (nil when none is
// attached).
func (s *Session) Champions() *league.Archive { return s.champions }

// archiveCheckpoint records one checkpoint event into the champion
// archive. Failures are logged and swallowed: archiving is observational
// and must never fail the job that emitted the checkpoint.
func (s *Session) archiveCheckpoint(jobID string, spec JobSpec, cp *CheckpointEvent) {
	scen := checkpointScenarioName(spec, cp.Scenario)
	c := league.Champion{
		ID:          league.ChampionID(jobID, scen, cp.Rep, cp.Gen),
		Job:         jobID,
		Scenario:    scen,
		Rep:         cp.Rep,
		Generation:  cp.Gen,
		Genome:      cp.Genome,
		Seed:        cp.Seed,
		Fitness:     cp.Fitness,
		MeanFitness: cp.MeanFit,
		Cooperation: cp.Coop,
	}
	if err := c.Fill(); err != nil {
		s.logger.Warn("champion checkpoint dropped", "job", jobID, "error", err)
		return
	}
	if err := s.champions.Put(c); err != nil {
		s.logger.Warn("champion archive put failed", "job", jobID, "champion", c.ID, "error", err)
		return
	}
	s.logger.Debug("champion archived", "job", jobID, "champion", c.ID, "gen", cp.Gen)
}

// checkpointScenarioName resolves the scenario label a checkpoint's
// Scenario index refers to within the emitting spec.
func checkpointScenarioName(spec JobSpec, idx int) string {
	switch sp := spec.(type) {
	case ScenariosSpec:
		if idx >= 0 && idx < len(sp.Runs) {
			return sp.Runs[idx].Spec.Name
		}
	case CaseSpec:
		return sp.Case.Name
	}
	return spec.Kind()
}

// prune evicts the oldest terminal jobs beyond the retention bound so the
// job map and event logs stay bounded in long-lived sessions. Every
// terminal transition happens in the Submit goroutine, which calls prune
// right after finish.
func (s *Session) prune() {
	if s.retain <= 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	terminal := 0
	for _, j := range s.order {
		if j.State().Terminal() {
			terminal++
		}
	}
	if terminal <= s.retain {
		return
	}
	kept := s.order[:0]
	for _, j := range s.order {
		if terminal > s.retain && j.State().Terminal() {
			delete(s.jobs, j.id)
			terminal--
			// Fold the evicted hub's counters into the retired accumulator
			// so StreamTotals stays monotonic across evictions.
			st := j.StreamStats()
			s.retired.Emitted += st.Emitted
			s.retired.Overwritten += st.Overwritten
			s.retired.Resyncs += st.Resyncs
			s.retired.Evictions += st.Evictions
			if st.MaxStall > s.retired.MaxStall {
				s.retired.MaxStall = st.MaxStall
			}
			s.logger.Debug("job evicted by retention", "job", j.id, "state", string(j.State()))
			continue
		}
		kept = append(kept, j)
	}
	s.order = kept
}

// SessionStats is a point-in-time census of the session's jobs and
// execution capacity — the poll surface behind the daemon's session
// metrics. Counts by state cover only jobs still reachable (retention may
// have evicted older terminal ones); Submitted is lifetime-monotonic.
type SessionStats struct {
	// Submitted counts every accepted submission over the session's
	// lifetime, including jobs since evicted by retention.
	Submitted int
	// Per-state counts of the currently reachable jobs.
	Queued, Running, Done, Failed, Cancelled int
	// Retained is the number of reachable jobs (the sum of the above).
	Retained int
	// EngineReuses counts jobs that ran on a recycled engine arena.
	EngineReuses int
	// PoolSize and PoolBusy are the shared execution pool's slot count
	// and a point-in-time sample of slots currently held.
	PoolSize, PoolBusy int
}

// Stats returns the session's job and capacity census.
func (s *Session) Stats() SessionStats {
	s.mu.Lock()
	st := SessionStats{
		Submitted: s.submitted,
		Retained:  len(s.order),
	}
	for _, j := range s.order {
		switch j.State() {
		case JobQueued:
			st.Queued++
		case JobRunning:
			st.Running++
		case JobDone:
			st.Done++
		case JobFailed:
			st.Failed++
		case JobCancelled:
			st.Cancelled++
		}
	}
	s.mu.Unlock()
	st.EngineReuses = s.EngineReuses()
	st.PoolSize = s.pool.Size()
	st.PoolBusy = s.pool.InUse()
	return st
}

// StreamTotals aggregates StreamStats across every job the session has
// ever run: live hubs summed at call time plus an accumulator folded in
// as retention evicts terminal jobs. All counters are lifetime-monotonic
// except Subscribers, which counts currently-attached subscriptions.
type StreamTotals struct {
	Emitted     int
	Overwritten int
	Subscribers int
	Resyncs     int
	Evictions   int
	MaxStall    time.Duration
}

// StreamTotals returns session-wide streaming counters.
func (s *Session) StreamTotals() StreamTotals {
	s.mu.Lock()
	tot := s.retired
	jobs := append([]*Job(nil), s.order...)
	s.mu.Unlock()
	for _, j := range jobs {
		st := j.StreamStats()
		tot.Emitted += st.Emitted
		tot.Overwritten += st.Overwritten
		tot.Subscribers += st.Subscribers
		tot.Resyncs += st.Resyncs
		tot.Evictions += st.Evictions
		if st.MaxStall > tot.MaxStall {
			tot.MaxStall = st.MaxStall
		}
	}
	return tot
}

// acquireEngine returns an engine initialized for cfg, reusing a parked
// one when available. The boolean reports whether a parked engine was
// reused (exposed for observability via EngineReuses; results are
// identical either way).
func (s *Session) acquireEngine(cfg core.Config) (*core.Engine, error) {
	s.engMu.Lock()
	var eng *core.Engine
	if n := len(s.engines); n > 0 {
		eng = s.engines[n-1]
		s.engines[n-1] = nil
		s.engines = s.engines[:n-1]
	}
	s.engMu.Unlock()
	if eng != nil {
		if err := eng.Reinit(cfg); err != nil {
			// Invalid config: surface it exactly as core.New would, and
			// don't re-park the half-reset engine.
			return nil, err
		}
		s.engMu.Lock()
		s.engineReuses++
		s.engMu.Unlock()
		return eng, nil
	}
	return core.New(cfg)
}

// releaseEngine parks a finished job's engine for reuse, keeping at most
// one per pool slot.
func (s *Session) releaseEngine(eng *core.Engine) {
	if eng == nil {
		return
	}
	s.engMu.Lock()
	if len(s.engines) < s.pool.Size() {
		s.engines = append(s.engines, eng)
	}
	s.engMu.Unlock()
}

// EngineReuses returns how many submitted jobs ran on a reused engine
// arena instead of building a fresh one — an observability counter for
// tests and capacity tuning.
func (s *Session) EngineReuses() int {
	s.engMu.Lock()
	defer s.engMu.Unlock()
	return s.engineReuses
}

// Job returns the handle of a previously submitted job by ID.
func (s *Session) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs returns every job submitted to the session, in submission order.
func (s *Session) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Job(nil), s.order...)
}

// Close cancels every non-terminal job, waits for all of them to stop,
// and marks the session closed. Safe to call more than once.
func (s *Session) Close() {
	s.mu.Lock()
	s.closed = true
	jobs := append([]*Job(nil), s.order...)
	s.mu.Unlock()
	for _, j := range jobs {
		j.Cancel()
	}
	s.wg.Wait()
}

// Typed convenience wrappers: submit one spec and wait for it. Each
// returns the job's typed result; on cancellation the error wraps
// context.Canceled and engine-level results are the documented partial
// ones.

// Evolve runs one serial evolutionary experiment on the session.
func (s *Session) Evolve(ctx context.Context, cfg EvolutionConfig) (*EvolutionResult, error) {
	res, err := s.submitAndWait(ctx, EvolveSpec{Config: cfg})
	out, _ := res.(*EvolutionResult)
	return out, err
}

// EvolveIslands runs one island-model experiment on the session.
func (s *Session) EvolveIslands(ctx context.Context, cfg IslandConfig) (*IslandResult, error) {
	res, err := s.submitAndWait(ctx, IslandsSpec{Config: cfg})
	out, _ := res.(*IslandResult)
	return out, err
}

// RunCase reproduces one Table 4 evaluation case on the session.
func (s *Session) RunCase(ctx context.Context, c Case, sc Scale, opts RunOptions) (*CaseResult, error) {
	res, err := s.submitAndWait(ctx, CaseSpec{Case: c, Scale: sc, Opts: opts})
	out, _ := res.(*CaseResult)
	return out, err
}

// RunScenarios runs a batch of declarative scenarios on the session.
func (s *Session) RunScenarios(ctx context.Context, runs []ScenarioRun, defaults Scale, opts RunOptions) ([]*CaseResult, error) {
	res, err := s.submitAndWait(ctx, ScenariosSpec{Runs: runs, Defaults: defaults, Opts: opts})
	out, _ := res.([]*CaseResult)
	return out, err
}

// CSNSweep traces evolved cooperation against the CSN count on the
// session.
func (s *Session) CSNSweep(ctx context.Context, csnCounts []int, mode PathMode, sc Scale, opts RunOptions) ([]SweepPoint, error) {
	res, err := s.submitAndWait(ctx, SweepSpec{CSNCounts: csnCounts, Mode: mode, Scale: sc, Opts: opts})
	out, _ := res.([]SweepPoint)
	return out, err
}

// RunMix plays one fixed-population baseline tournament on the session.
func (s *Session) RunMix(ctx context.Context, cfg MixConfig) (*MixResult, error) {
	res, err := s.submitAndWait(ctx, MixSpec{Config: cfg})
	out, _ := res.(*MixResult)
	return out, err
}

// RunIPDRP evolves the IPDRP substrate on the session.
func (s *Session) RunIPDRP(ctx context.Context, cfg IPDRPConfig) (*IPDRPResult, error) {
	res, err := s.submitAndWait(ctx, IPDRPSpec{Config: cfg})
	out, _ := res.(*IPDRPResult)
	return out, err
}

func (s *Session) submitAndWait(ctx context.Context, spec JobSpec) (any, error) {
	j, err := s.Submit(ctx, spec)
	if err != nil {
		return nil, err
	}
	// Wait on the job's own completion, not ctx: when ctx fires the job
	// stops at its next barrier and finish() delivers the partial result;
	// abandoning the wait early would lose it.
	if err := j.Wait(context.Background()); err != nil {
		return j.Result(), err
	}
	return j.Result(), nil
}

// The default session behind the deprecated package-level wrappers: one
// process-wide Session with all defaults, created on first use.
var (
	defaultSessionOnce sync.Once
	defaultSession     *Session
)

// DefaultSession returns the process-wide Session the deprecated
// package-level wrappers (Evolve, RunCase, RunScenarios, …) delegate to.
// Programs that want explicit pool sizing, seed policy, job bounds, or a
// clean shutdown should create their own with NewSession instead.
func DefaultSession() *Session {
	defaultSessionOnce.Do(func() {
		defaultSession = NewSession()
	})
	return defaultSession
}

// compile-time interface checks for the spec set.
var (
	_ JobSpec = EvolveSpec{}
	_ JobSpec = IslandsSpec{}
	_ JobSpec = CaseSpec{}
	_ JobSpec = ScenariosSpec{}
	_ JobSpec = SweepSpec{}
	_ JobSpec = MixSpec{}
	_ JobSpec = IPDRPSpec{}
	_ JobSpec = LeagueJobSpec{}
)
