package adhocga

// One benchmark per paper table and figure (DESIGN.md §4), plus the
// ablation benches for the design choices the paper motivates but does not
// sweep. Each bench runs the full reproduction pipeline at smoke scale and
// reports the headline measurement as a custom metric, so `go test
// -bench=.` both times the harness and shows the reproduced shape.
//
// Paper-fidelity expectations (documented in EXPERIMENTS.md):
//
//	Fig 4:  case 1 → ~0.97+, case 2 → ~0.19, case 3 → ~0.53, case 4 → ~0.40
//	Table 5 per-env (case 3): ~0.99/0.66/0.29/0.20

import (
	"context"
	"fmt"
	"testing"

	"adhocga/internal/baselines"
	"adhocga/internal/bitstring"
	"adhocga/internal/core"
	"adhocga/internal/experiment"
	"adhocga/internal/ga"
	"adhocga/internal/game"
	"adhocga/internal/ipdrp"
	"adhocga/internal/scenario"
	"adhocga/internal/strategy"
	"adhocga/internal/tournament"
)

// benchScale is the per-iteration budget of the reproduction benches:
// enough generations at the paper's R=300 for every case to reach its
// quasi-equilibrium, with a single replicate.
var benchScale = experiment.Scale{Name: "bench", Generations: 25, Rounds: 300, Repetitions: 1}

func benchCase(b *testing.B, id int) *experiment.CaseResult {
	b.Helper()
	c, err := experiment.CaseByID(id)
	if err != nil {
		b.Fatal(err)
	}
	var res *experiment.CaseResult
	for i := 0; i < b.N; i++ {
		res, err = experiment.RunCase(c, benchScale, experiment.Options{Seed: uint64(40 + id), Parallelism: 1})
		if err != nil {
			b.Fatal(err)
		}
	}
	return res
}

func reportCoop(b *testing.B, res *experiment.CaseResult) {
	b.Helper()
	final := res.FinalCoop.Mean
	if len(res.Case.Environments) > 1 {
		final = res.FinalMeanEnvCoop.Mean
	}
	b.ReportMetric(final*100, "coop%")
}

// BenchmarkFig4Case1 regenerates the case-1 curve of Figure 4 (CSN-free,
// shorter paths; paper endpoint ≈ 97%).
func BenchmarkFig4Case1(b *testing.B) { reportCoop(b, benchCase(b, 1)) }

// BenchmarkFig4Case2 regenerates the case-2 curve (30 CSN; paper ≈ 19%).
func BenchmarkFig4Case2(b *testing.B) { reportCoop(b, benchCase(b, 2)) }

// BenchmarkFig4Case3 regenerates the case-3 curve (TE1–4, shorter paths;
// paper endpoint ≈ 53% as the environment mean).
func BenchmarkFig4Case3(b *testing.B) { reportCoop(b, benchCase(b, 3)) }

// BenchmarkFig4Case4 regenerates the case-4 curve (TE1–4, longer paths;
// paper endpoint ≈ 38%).
func BenchmarkFig4Case4(b *testing.B) { reportCoop(b, benchCase(b, 4)) }

// BenchmarkTable5 regenerates the per-environment cooperation and CSN-free
// path table for case 3 and reports the four environment levels.
func BenchmarkTable5(b *testing.B) {
	res := benchCase(b, 3)
	_ = experiment.Table5(res, nil).Render()
	for i, env := range res.PerEnv {
		b.ReportMetric(env.Cooperation.Mean*100, []string{"TE1%", "TE2%", "TE3%", "TE4%"}[i])
	}
}

// BenchmarkTable6 regenerates the forwarding-request response table for
// case 3 and reports the acceptance rates by source type.
func BenchmarkTable6(b *testing.B) {
	res := benchCase(b, 3)
	_ = experiment.Table6(res, nil).Render()
	accN, _, _ := res.FromNormal.Fractions()
	accC, _, _ := res.FromCSN.Fractions()
	b.ReportMetric(accN*100, "acceptNP%")
	b.ReportMetric(accC*100, "acceptCSN%")
}

// BenchmarkTable7 regenerates the most-popular-strategies census for
// case 3 and reports the share of strategies that forward for unknowns —
// the §6.3 observation.
func BenchmarkTable7(b *testing.B) {
	res := benchCase(b, 3)
	_ = experiment.Table7(res, nil).Render()
	b.ReportMetric(res.Census.UnknownForwardFraction()*100, "unknownF%")
}

// BenchmarkTable8 regenerates the case-3 sub-strategy distribution and
// reports the frequency of the "111" pattern at trust 3 (paper: 99%).
func BenchmarkTable8(b *testing.B) {
	res := benchCase(b, 3)
	_ = experiment.Table8(res).Render()
	for _, e := range res.Census.SubStrategies(strategy.Trust3, 0) {
		if e.Pattern == "111" {
			b.ReportMetric(e.Fraction*100, "trust3-111%")
		}
	}
}

// BenchmarkTable9 regenerates the case-4 sub-strategy distribution and
// reports the trust-3 "111" frequency.
func BenchmarkTable9(b *testing.B) {
	res := benchCase(b, 4)
	_ = experiment.Table9(res).Render()
	for _, e := range res.Census.SubStrategies(strategy.Trust3, 0) {
		if e.Pattern == "111" {
			b.ReportMetric(e.Fraction*100, "trust3-111%")
		}
	}
}

// runAblation evolves a case-3-shaped experiment with the given config
// mutation and returns the final environment-mean cooperation.
func runAblation(b *testing.B, seed uint64, mutate func(*core.Config)) float64 {
	b.Helper()
	var final float64
	for i := 0; i < b.N; i++ {
		cfg := core.PaperConfig(tournament.PaperEnvironments(), ShorterPaths(), seed)
		cfg.Generations = benchScale.Generations
		cfg.Eval.Tournament.Rounds = benchScale.Rounds
		if mutate != nil {
			mutate(&cfg)
		}
		engine, err := core.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res, err := engine.Run()
		if err != nil {
			b.Fatal(err)
		}
		final = res.MeanEnvCoopSeries[len(res.MeanEnvCoopSeries)-1]
	}
	return final
}

// BenchmarkAblationNoReputationSystem (A1) is the paper's §4.2
// counterfactual: selfishness goes unnoticed — decisions cannot see
// reputation (only the unknown-node bit applies) and routes are chosen at
// random. Cooperation collapses because "it would be always better to save
// energy by not participating to the packet forwarding".
func BenchmarkAblationNoReputationSystem(b *testing.B) {
	coop := runAblation(b, 51, func(cfg *core.Config) {
		cfg.Eval.Tournament.Game.BlindDecisions = true
		cfg.Eval.Tournament.PathChoice = tournament.RandomPath
	})
	b.ReportMetric(coop*100, "coop%")
}

// BenchmarkAblationFlatDiscardPayoffs (A1b) keeps the reputation system
// but removes the trust-dependent discard pricing (discard always pays the
// maximum). Measures how much of the cooperation is carried by the
// strategic channel (trust-conditioned forwarding and route avoidance)
// rather than by the payoff shaping itself.
func BenchmarkAblationFlatDiscardPayoffs(b *testing.B) {
	coop := runAblation(b, 51, func(cfg *core.Config) {
		cfg.Eval.Tournament.Game.Payoffs = game.NoReputationPayoffs()
	})
	b.ReportMetric(coop*100, "coop%")
}

// BenchmarkAblationTrustOnlyStrategy (A2) collapses the activity dimension
// (5-bit trust-only strategies) to measure what §3.2 contributes.
func BenchmarkAblationTrustOnlyStrategy(b *testing.B) {
	coop := runAblation(b, 52, func(cfg *core.Config) {
		cfg.Constraint = core.TrustOnlyConstraint
	})
	b.ReportMetric(coop*100, "coop%")
}

// BenchmarkAblationRandomPathChoice (A3) replaces best-reputation route
// selection with uniform choice, removing the avoidance channel of §3.1.
func BenchmarkAblationRandomPathChoice(b *testing.B) {
	coop := runAblation(b, 53, func(cfg *core.Config) {
		cfg.Eval.Tournament.PathChoice = tournament.RandomPath
	})
	b.ReportMetric(coop*100, "coop%")
}

// BenchmarkAblationRouletteSelection (A4) swaps the paper's tournament
// selection for the roulette selection of [12].
func BenchmarkAblationRouletteSelection(b *testing.B) {
	coop := runAblation(b, 54, func(cfg *core.Config) {
		cfg.GA.Selector = ga.RouletteSelector{}
	})
	b.ReportMetric(coop*100, "coop%")
}

// BenchmarkAblationUnknownTrust0 (A5) prices decisions about unknown
// sources at trust 0 instead of the paper's trust 1.
func BenchmarkAblationUnknownTrust0(b *testing.B) {
	coop := runAblation(b, 55, func(cfg *core.Config) {
		cfg.Eval.Tournament.Game.UnknownTrust = strategy.Trust0
	})
	b.ReportMetric(coop*100, "coop%")
}

// BenchmarkAblationBaseline (A0) is the unmodified case-3 pipeline at the
// same seed family, the reference point for A1–A5.
func BenchmarkAblationBaseline(b *testing.B) {
	coop := runAblation(b, 56, nil)
	b.ReportMetric(coop*100, "coop%")
}

// BenchmarkAblationUniformCrossover (A7) swaps the paper's one-point
// crossover for uniform crossover.
func BenchmarkAblationUniformCrossover(b *testing.B) {
	coop := runAblation(b, 56, func(cfg *core.Config) {
		cfg.GA.Crossover = bitstring.UniformCrossover
	})
	b.ReportMetric(coop*100, "coop%")
}

// BenchmarkAblationTwoPointCrossover (A7b) swaps in two-point crossover.
func BenchmarkAblationTwoPointCrossover(b *testing.B) {
	coop := runAblation(b, 56, func(cfg *core.Config) {
		cfg.GA.Crossover = bitstring.RandomTwoPointCrossover
	})
	b.ReportMetric(coop*100, "coop%")
}

// BenchmarkAblationGossip (A6) enables CORE-style second-hand reputation
// exchange (an extension beyond the paper's first-hand-only mechanism) and
// measures its effect on the evolved cooperation level.
func BenchmarkAblationGossip(b *testing.B) {
	coop := runAblation(b, 56, func(cfg *core.Config) {
		cfg.Eval.Tournament.GossipInterval = 10
		cfg.Eval.Tournament.GossipWeight = 0.25
		cfg.Eval.Tournament.GossipMinRate = 0.5
	})
	b.ReportMetric(coop*100, "coop%")
}

// BenchmarkAblationElitism (A8) adds 2-elite preservation to the paper's
// elitism-free GA.
func BenchmarkAblationElitism(b *testing.B) {
	coop := runAblation(b, 56, func(cfg *core.Config) {
		cfg.GA.Elitism = 2
	})
	b.ReportMetric(coop*100, "coop%")
}

// BenchmarkCSNSweep traces evolved cooperation against the selfish-node
// count — the curve the paper samples at 0/10/25/30 (extension).
func BenchmarkCSNSweep(b *testing.B) {
	sc := experiment.Scale{Name: "bench", Generations: 20, Rounds: 300, Repetitions: 1}
	var points []experiment.SweepPoint
	for i := 0; i < b.N; i++ {
		var err error
		points, err = experiment.CSNSweep([]int{0, 10, 20, 30, 40}, ShorterPaths(), sc, experiment.Options{Seed: 59})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range points {
		b.ReportMetric(p.Cooperation.Mean*100, fmt.Sprintf("csn%d%%", p.CSN))
	}
}

// sweepThroughputScale keeps replicates well below the core count so the
// difference between barriered and shared scheduling is visible: with a
// per-point pool, at most Repetitions workers are ever busy.
var sweepThroughputScale = experiment.Scale{Name: "bench-sweep", Generations: 4, Rounds: 100, Repetitions: 2}

var sweepThroughputCounts = []int{0, 5, 10, 15, 20, 25, 30, 35}

// BenchmarkSweepThroughput measures a multi-point CSN sweep on the shared
// work-stealing pool: all (point × replicate) units sit in one queue, so
// workers cross point boundaries and every core stays busy for the whole
// sweep. Compare units/s against BenchmarkSweepThroughputBarrier.
func BenchmarkSweepThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.CSNSweep(sweepThroughputCounts, ShorterPaths(),
			sweepThroughputScale, experiment.Options{Seed: 60}); err != nil {
			b.Fatal(err)
		}
	}
	units := float64(b.N * len(sweepThroughputCounts) * sweepThroughputScale.Repetitions)
	b.ReportMetric(units/b.Elapsed().Seconds(), "units/s")
}

// BenchmarkSweepThroughputBarrier replays the pre-runner sweep schedule:
// one worker pool per sweep point with a barrier in between, so only
// Repetitions cores are busy at a time and the rest idle.
func BenchmarkSweepThroughputBarrier(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for pi, csn := range sweepThroughputCounts {
			c := experiment.Case{
				Name:         fmt.Sprintf("barrier CSN=%d", csn),
				Environments: []tournament.Environment{{Name: "E", CSN: csn}},
				Mode:         ShorterPaths(),
			}
			if _, err := experiment.RunCase(c, sweepThroughputScale,
				experiment.Options{Seed: uint64(60 + pi)}); err != nil {
				b.Fatal(err)
			}
		}
	}
	units := float64(b.N * len(sweepThroughputCounts) * sweepThroughputScale.Repetitions)
	b.ReportMetric(units/b.Elapsed().Seconds(), "units/s")
}

// sessionThroughputRuns is the workload of the Session-overhead pair: a
// small scenario batch whose replicate units dominate the wall-clock, so
// any Submit/event/pool overhead shows directly in units/s.
func sessionThroughputRuns() []experiment.ScenarioRun {
	runs := make([]experiment.ScenarioRun, len(sweepThroughputCounts))
	for i, csn := range sweepThroughputCounts {
		runs[i] = experiment.ScenarioRun{Spec: scenario.Spec{
			Name:         fmt.Sprintf("bench CSN=%d", csn),
			Environments: []scenario.EnvSpec{{CSN: csn}},
		}}
	}
	return runs
}

// BenchmarkSessionThroughput compares the same scenario batch through the
// Session/Job API (Submit + event stream drained) and the legacy
// RunScenarios facade. The two run identical work over the same worker
// discipline, so the submit/legacy units/s gap is exactly the API's
// overhead: job bookkeeping plus one event per generation and replicate.
// Measured locally the gap is under 2% (the event path is append +
// channel signal, far off the tournament hot path); CI records both
// series in BENCH_api.json so the trajectory accumulates over PRs.
func BenchmarkSessionThroughput(b *testing.B) {
	units := float64(len(sweepThroughputCounts) * sweepThroughputScale.Repetitions)
	b.Run("submit", func(b *testing.B) {
		session := NewSession()
		defer session.Close()
		for i := 0; i < b.N; i++ {
			job, err := session.Submit(context.Background(), ScenariosSpec{
				Runs:     sessionThroughputRuns(),
				Defaults: sweepThroughputScale,
				Opts:     RunOptions{Seed: 61},
			})
			if err != nil {
				b.Fatal(err)
			}
			for range job.Events() { // drain the full stream, as a client would
			}
			if err := job.Wait(context.Background()); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.N)*units/b.Elapsed().Seconds(), "units/s")
	})
	b.Run("legacy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := experiment.RunScenarios(sessionThroughputRuns(),
				sweepThroughputScale, experiment.Options{Seed: 61}); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.N)*units/b.Elapsed().Seconds(), "units/s")
	})
}

// BenchmarkIPDRP evolves the IPDRP substrate [12] and reports the late
// cooperation rate (defection dominates under random pairing).
func BenchmarkIPDRP(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		cfg := ipdrp.DefaultConfig(57)
		cfg.Generations = 50
		res, err := ipdrp.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res.CoopSeries[len(res.CoopSeries)-1]
	}
	b.ReportMetric(last*100, "coop%")
}

// BenchmarkPathraterComparison reproduces the §2 watchdog/pathrater
// observation: reputation-rated route choice alone (no punishment) lifts
// throughput in a population with selfish nodes.
func BenchmarkPathraterComparison(b *testing.B) {
	var with, without float64
	for i := 0; i < b.N; i++ {
		var err error
		with, without, err = benchPathrater()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(with*100, "rated%")
	b.ReportMetric(without*100, "random%")
}

func benchPathrater() (float64, float64, error) {
	return baselines.PathraterComparison(30, 12, 300, ShorterPaths(), 58)
}
