package adhocga

import (
	"strings"
	"testing"
)

func TestFacadeStrategyRoundtrip(t *testing.T) {
	s, err := ParseStrategy("010 101 101 111 1")
	if err != nil {
		t.Fatal(err)
	}
	if s.Decide(Trust3, ActivityLow) != Forward {
		t.Error("facade Decide wrong")
	}
	if s.DecideUnknown() != Forward {
		t.Error("facade DecideUnknown wrong")
	}
	if AllForward().Cooperativeness() != 1 || AllDiscard().Cooperativeness() != 0 {
		t.Error("facade extremes wrong")
	}
	a, b := RandomStrategy(5), RandomStrategy(5)
	if !a.Equal(b) {
		t.Error("RandomStrategy not deterministic per seed")
	}
}

func TestFacadeEnvironmentsAndCases(t *testing.T) {
	if len(PaperEnvironments()) != 4 {
		t.Error("PaperEnvironments wrong")
	}
	if len(Cases()) != 4 {
		t.Error("Cases wrong")
	}
	c, err := CaseByID(2)
	if err != nil || c.ID != 2 {
		t.Errorf("CaseByID: %v, %v", c, err)
	}
	if ShorterPaths().Name != "SP" || LongerPaths().Name != "LP" {
		t.Error("path modes wrong")
	}
	if ScalePaper.Generations != 500 || ScaleSmoke.Generations <= 0 {
		t.Error("scales wrong")
	}
}

func TestFacadeEvolveSmoke(t *testing.T) {
	cfg := DefaultEvolutionConfig(PaperEnvironments()[:1], ShorterPaths(), 3)
	cfg.PopulationSize = 20
	cfg.Eval.TournamentSize = 10
	cfg.Eval.Tournament.Rounds = 10
	cfg.Generations = 3
	var hooks int
	cfg.OnGeneration = func(GenerationStats) { hooks++ }
	res, err := Evolve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CoopSeries) != 3 || hooks != 3 {
		t.Errorf("series %d, hooks %d", len(res.CoopSeries), hooks)
	}
	if len(res.FinalStrategies) != 20 {
		t.Errorf("%d final strategies", len(res.FinalStrategies))
	}
}

func TestFacadeRunMixSmoke(t *testing.T) {
	res, err := RunMix(MixConfig{
		Groups: []MixGroup{{Profile: ProfileAllCooperate, Count: 10}},
		CSN:    2,
		Rounds: 10,
		Mode:   ShorterPaths(),
		Game:   DefaultGameConfig(),
		Seed:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cooperation <= 0 || res.Cooperation > 1 {
		t.Errorf("cooperation %v", res.Cooperation)
	}
	if len(res.Groups) != 1 || res.Groups[0].Name != ProfileAllCooperate.Name {
		t.Errorf("groups %+v", res.Groups)
	}
}

func TestFacadeScenarioSmoke(t *testing.T) {
	if len(ScenarioFamilies()) < 4 {
		t.Error("scenario families missing")
	}
	fam, err := ScenarioFamilyByName("table4")
	if err != nil || len(fam.Specs()) != 4 {
		t.Errorf("table4 family: %+v, %v", fam, err)
	}
	specs, err := LoadScenarios(strings.NewReader(
		`{"name":"facade","environments":[{"csn":3}],"repetitions":2}`))
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := SaveScenarios(&buf, specs); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"facade"`) {
		t.Errorf("saved spec missing name: %s", buf.String())
	}
	sc := Scale{Name: "tiny", Generations: 2, Rounds: 10, Repetitions: 2}
	results, err := RunScenarios([]ScenarioRun{{Spec: specs[0], Seed: 8}}, sc, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || len(results[0].CoopMean) != 2 || results[0].FinalCoop.N != 2 {
		t.Errorf("scenario result shape wrong: %+v", results[0])
	}
}

func TestFacadeRunCaseSmoke(t *testing.T) {
	c, err := CaseByID(1)
	if err != nil {
		t.Fatal(err)
	}
	sc := Scale{Name: "tiny", Generations: 2, Rounds: 10, Repetitions: 2}
	res, err := RunCase(c, sc, RunOptions{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CoopMean) != 2 || res.Census.Total() != 200 {
		t.Errorf("result shape wrong: %d gens, census %d", len(res.CoopMean), res.Census.Total())
	}
}
