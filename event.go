package adhocga

import (
	"fmt"
	"io"

	"adhocga/internal/textplot"
)

// The unified job event model. Every long-running workload — serial and
// island evolution, case reproduction, scenario batches, CSN sweeps,
// baseline mixes, IPDRP — reports mid-flight progress as a stream of Event
// values on its Job handle, replacing the three incompatible OnGeneration
// callback shapes the pre-Session facade exposed (core.Config.OnGeneration,
// island.Config.OnGeneration, ipdrp.Config.OnGeneration) plus the
// experiment layer's OnReplicate. An Event is a tagged union: Kind says
// which of the payload pointers is set. Events are JSON-serializable with a
// deterministic encoding (no timestamps, stable field order), which is what
// lets the adhocd service stream NDJSON that byte-compares at a fixed seed.
// Delivery runs through the job's streaming hub (hub.go): a bounded ring
// plus compacted snapshot fanned out per subscriber, not an unbounded log.

// EventKind tags which payload an Event carries.
type EventKind string

// The event kinds.
const (
	// KindGeneration: one serial-engine generation finished evaluating
	// (Event.Generation is set).
	KindGeneration EventKind = "generation"
	// KindIslands: one island-model generation finished evaluating
	// (Event.Islands is set).
	KindIslands EventKind = "islands"
	// KindReplicate: one replicate of a multi-replicate workload finished
	// (Event.Replicate is set).
	KindReplicate EventKind = "replicate"
	// KindChurn: a dynamics barrier perturbed a replicate (Event.Churn is
	// set).
	KindChurn EventKind = "churn"
	// KindCheckpoint: a champion checkpoint fired in a replicate
	// (Event.Checkpoint is set). Emitted only by scenarios that enable
	// checkpoints; the session's champion archive consumes these.
	KindCheckpoint EventKind = "checkpoint"
	// KindDone: terminal event, always exactly one and always last
	// (Event.Done is set).
	KindDone EventKind = "done"
)

// Event is one observation from a running Job. Seq numbers events from 0
// in emission order within the job; Job is the emitting job's ID. Exactly
// one payload pointer is non-nil, selected by Kind.
type Event struct {
	Seq  int       `json:"seq"`
	Job  string    `json:"job"`
	Kind EventKind `json:"kind"`

	Generation *GenerationEvent `json:"generation,omitempty"`
	Islands    *IslandsEvent    `json:"islands,omitempty"`
	Replicate  *ReplicateEvent  `json:"replicate,omitempty"`
	Churn      *ChurnEvent      `json:"churn,omitempty"`
	Checkpoint *CheckpointEvent `json:"checkpoint,omitempty"`
	Done       *DoneEvent       `json:"done,omitempty"`
}

// GenerationEvent is the per-generation snapshot of one serial replicate:
// the §6.2 cooperation observables and the population's fitness moments.
// Scenario is the index of the scenario (or sweep point) within the job's
// batch and Rep the replicate within it; both are 0 for single-run jobs
// (Session.Evolve, Session.RunIPDRP).
type GenerationEvent struct {
	Scenario    int     `json:"scenario"`
	Rep         int     `json:"rep"`
	Gen         int     `json:"gen"`
	Coop        float64 `json:"coop"`
	MeanEnvCoop float64 `json:"mean_env_coop"`
	BestFit     float64 `json:"best_fit"`
	MeanFit     float64 `json:"mean_fit"`
	Diversity   float64 `json:"diversity"`
}

// IslandsEvent is the per-generation snapshot of one island-model
// replicate: run-wide cooperation plus each island's convergence point, in
// island order.
type IslandsEvent struct {
	Scenario    int           `json:"scenario"`
	Rep         int           `json:"rep"`
	Gen         int           `json:"gen"`
	Coop        float64       `json:"coop"`
	MeanEnvCoop float64       `json:"mean_env_coop"`
	PerIsland   []IslandPoint `json:"per_island"`
}

// IslandPoint is one island's fitness/diversity snapshot inside an
// IslandsEvent.
type IslandPoint struct {
	BestFit   float64 `json:"best_fit"`
	MeanFit   float64 `json:"mean_fit"`
	Diversity float64 `json:"diversity"`
}

// ReplicateEvent reports replicate completion: Done of Total replicate
// units of the whole batch have finished.
type ReplicateEvent struct {
	Done  int `json:"done"`
	Total int `json:"total"`
}

// ChurnEvent reports that a dynamics barrier perturbed a replicate after
// reproducing generation Gen (population churn and/or landscape rewiring).
type ChurnEvent struct {
	Scenario int `json:"scenario"`
	Rep      int `json:"rep"`
	Gen      int `json:"gen"`
}

// CheckpointEvent reports a champion checkpoint: the best genome of
// generation Gen in one replicate, with its fitness context and the
// replicate's master seed (the replay provenance a hall-of-fame archive
// stores). Emitted only when the workload enables checkpoints.
type CheckpointEvent struct {
	Scenario int     `json:"scenario"`
	Rep      int     `json:"rep"`
	Gen      int     `json:"gen"`
	Seed     uint64  `json:"seed"`
	Genome   string  `json:"genome"`
	Fitness  float64 `json:"fitness"`
	MeanFit  float64 `json:"mean_fit"`
	Coop     float64 `json:"coop"`
}

// DoneEvent is the terminal event of every job: the final state and, for
// failed jobs, the error text.
type DoneEvent struct {
	State JobState `json:"state"`
	Error string   `json:"error,omitempty"`
}

// PartialSeries folds a job's generation events into per-scenario mean
// cooperation series — the tool for emitting a meaningful partial result
// when a job is cancelled mid-flight (SIGINT in the CLIs): feed it every
// event as it streams, then render Series for whatever generations
// completed. Not safe for concurrent use; feed it from a single event
// consumer.
type PartialSeries struct {
	// per scenario: per generation: sum and count of cooperation levels
	// over the replicates observed so far.
	sums    map[int]map[int]meanCell
	lastGen int
}

type meanCell struct {
	coop, envCoop float64
	n             int
}

// Add folds one event; non-generation events are ignored.
func (p *PartialSeries) Add(e Event) {
	var scen, gen int
	var coop, envCoop float64
	switch e.Kind {
	case KindGeneration:
		scen, gen, coop, envCoop = e.Generation.Scenario, e.Generation.Gen, e.Generation.Coop, e.Generation.MeanEnvCoop
	case KindIslands:
		scen, gen, coop, envCoop = e.Islands.Scenario, e.Islands.Gen, e.Islands.Coop, e.Islands.MeanEnvCoop
	default:
		return
	}
	if p.sums == nil {
		p.sums = map[int]map[int]meanCell{}
	}
	m := p.sums[scen]
	if m == nil {
		m = map[int]meanCell{}
		p.sums[scen] = m
	}
	c := m[gen]
	c.coop += coop
	c.envCoop += envCoop
	c.n++
	m[gen] = c
	if gen > p.lastGen {
		p.lastGen = gen
	}
}

// LastGeneration returns the highest generation index observed across all
// scenarios (0 when no generation event arrived).
func (p *PartialSeries) LastGeneration() int { return p.lastGen }

// Empty reports whether no generation events were folded.
func (p *PartialSeries) Empty() bool { return len(p.sums) == 0 }

// RenderInterrupted writes the standard interruption report for a
// cancelled job: an "interrupted at generation N" marker followed by one
// clearly-marked partial cooperation chart per named scenario that
// completed at least one generation. names[i] labels scenario index i of
// the job's batch. Both CLIs call this on SIGINT so a cancelled run
// still emits the series streamed so far instead of dying mid-write.
func RenderInterrupted(w io.Writer, p *PartialSeries, names []string) {
	if p.Empty() {
		fmt.Fprintln(w, "interrupted before any generation completed — no partial series to report")
		return
	}
	fmt.Fprintf(w, "interrupted at generation %d — partial cooperation series (mean over replicates observed so far):\n", p.LastGeneration())
	for i, name := range names {
		series := p.Series(i, false)
		if series == nil {
			fmt.Fprintf(w, "%s: no completed generations\n", name)
			continue
		}
		chart := textplot.Chart{
			Title: fmt.Sprintf("%s — PARTIAL cooperation, interrupted at generation %d", name, len(series)-1),
			YMin:  0, YMax: 1, FixedY: true,
		}
		chart.AddSeries("cooperation", series)
		fmt.Fprintln(w, chart.Render())
	}
}

// Series returns scenario scen's per-generation mean cooperation over the
// replicates observed, from generation 0 through the last generation any
// of them reached. envMean selects the unweighted per-environment mean
// (the multi-environment Fig 4 number) instead of the overall level. Gaps
// (generations no replicate reported) carry the previous value forward so
// the series is renderable.
func (p *PartialSeries) Series(scen int, envMean bool) []float64 {
	m := p.sums[scen]
	if len(m) == 0 {
		return nil
	}
	last := 0
	for g := range m {
		if g > last {
			last = g
		}
	}
	out := make([]float64, last+1)
	prev := 0.0
	for g := 0; g <= last; g++ {
		if c, ok := m[g]; ok && c.n > 0 {
			if envMean {
				prev = c.envCoop / float64(c.n)
			} else {
				prev = c.coop / float64(c.n)
			}
		}
		out[g] = prev
	}
	return out
}
