// Command league manages hall-of-fame champion archives and plays
// cross-generation round-robin leagues over them.
//
// A champion archive collects the best strategy of selected generations
// ("checkpoints") from evolutionary runs: who was winning at generation
// 10, 20, ... of each replicate, with full provenance (job, scenario,
// replicate seed, classification). A league then seats any selection of
// those frozen champions — optionally alongside the scripted baselines
// (all-forward, never-forward, and the paper's Table 7 reciprocal
// winner) — and plays every pair against each other in tournament
// matches, producing a standings table with win rates, mean payoffs, and
// the full head-to-head matrix. Because every champion is a snapshot of
// a different generation, the table answers a question a single run
// cannot: does evolution actually produce monotonically stronger
// strategies, or do late winners lose to their own ancestors?
//
// Usage:
//
//	league -archive hof -harvest -case 1 -generations 40 -reps 2 -seed 1
//	league -archive hof -list
//	league -archive hof -baselines -seed 7
//	league -archive hof -ids "job-1/case 1 (TE1, SP)/r0/g39" -baselines
//	league -baselines -seed 7     # scripted baselines only, no archive
//	league -harvest -case 1 -generations 20 -reps 1 -baselines -seed 7 -json
//
// -harvest runs the selected Table 4 case (or all four with -case 0)
// with generation checkpoints enabled, archiving champions as it goes;
// without -list it then plays the league over what it just harvested, so
// the last example is a self-contained one-shot demo. -archive names a
// directory persisted through the same WAL machinery as adhocd's file
// store (omit it for a throwaway in-memory archive). The league table is
// deterministic for a fixed -seed at any -par, and -json emits it as the
// same JSON document GET /v1/jobs/{id} returns for a daemon league job.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"adhocga"
	"adhocga/internal/league"
	"adhocga/internal/network"
	"adhocga/internal/report"
	"adhocga/internal/scenario"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole CLI behind a testable seam: flags parsed from args,
// output to explicit writers, lifetime bound to ctx.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("league", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		archiveDir  = fs.String("archive", "", "champion archive directory (WAL-backed, restart-safe); empty = in-memory for this invocation")
		list        = fs.Bool("list", false, "list the archive's champions and exit (after -harvest, if given)")
		harvest     = fs.Bool("harvest", false, "run a checkpointed Table 4 evolution first, archiving champions")
		caseID      = fs.Int("case", 1, "harvest: evaluation case 1-4, or 0 for all four")
		generations = fs.Int("generations", 40, "harvest: generations per replication")
		reps        = fs.Int("reps", 2, "harvest: independent replications per case")
		checkpoints = fs.Int("checkpoints", 10, "harvest: archive a champion every this many generations (the final generation is always archived)")
		ids         = fs.String("ids", "", "comma-separated champion IDs to seat (empty = the whole archive)")
		baselines   = fs.Bool("baselines", false, "seat the scripted baselines: all-forward, never-forward, and the paper's reciprocal winner")
		perSide     = fs.Int("per-side", 10, "evolving players fielded per seat in each match")
		matches     = fs.Int("matches", 2, "matches per seat pair")
		rounds      = fs.Int("rounds", 100, "rounds per tournament (harvest matches too)")
		csn         = fs.Int("csn", 0, "constantly-selfish nodes seated in every league match")
		pathMode    = fs.String("path", "SP", "path selection mode: SP (shorter) or LP (longer)")
		seed        = fs.Uint64("seed", 1, "master seed (harvest and league derive independent streams)")
		par         = fs.Int("par", 0, "worker pool size (0 = all cores)")
		jsonOut     = fs.Bool("json", false, "emit the league table as JSON instead of text")
	)
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}

	var mode network.PathMode
	switch strings.ToUpper(*pathMode) {
	case "SP":
		mode = network.ShorterPaths()
	case "LP":
		mode = network.LongerPaths()
	default:
		fmt.Fprintf(stderr, "league: -path must be SP or LP, got %q\n", *pathMode)
		return 2
	}

	var archive *league.Archive
	var err error
	if *archiveDir != "" {
		archive, err = league.OpenDir(*archiveDir)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		if n := archive.Skipped(); n > 0 {
			fmt.Fprintf(stderr, "league: skipped %d corrupt champion records in %s\n", n, *archiveDir)
		}
	} else {
		archive = league.NewMemArchive()
	}
	defer archive.Close()

	if *harvest {
		if err := runHarvest(ctx, archive, *caseID, *generations, *rounds, *reps, *checkpoints, *seed, *par, stdout); err != nil {
			fmt.Fprintln(stderr, err)
			if ctx.Err() != nil {
				return 130
			}
			return 1
		}
	}

	if *list {
		t := report.NewTable(fmt.Sprintf("champion archive (%s, %d champions)", archive.Backend(), archive.Len()),
			"id", "gen", "category", "coop", "fitness", "genome")
		for _, c := range archive.List() {
			t.AddRow(c.ID, fmt.Sprint(c.Generation), c.Category,
				fmt.Sprintf("%.3f", c.Cooperativeness), fmt.Sprintf("%.3f", c.Fitness), c.Genome)
		}
		fmt.Fprint(stdout, t.Render())
		return 0
	}

	var idList []string
	if *ids != "" {
		for _, id := range strings.Split(*ids, ",") {
			if id = strings.TrimSpace(id); id != "" {
				idList = append(idList, id)
			}
		}
	}
	champs, err := archive.Select(idList)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	var seats []league.Seat
	for _, c := range champs {
		seat, err := league.ChampionSeat(c)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		seats = append(seats, seat)
	}
	if *baselines {
		seats = append(seats, league.BaselineSeats()...)
	}
	if len(seats) < 2 {
		fmt.Fprintf(stderr, "league: only %d seats (archive has %d champions; add -baselines or -harvest)\n", len(seats), archive.Len())
		return 2
	}

	table, err := league.RunContext(ctx, league.Config{
		Seats:          seats,
		PerSide:        *perSide,
		CSN:            *csn,
		MatchesPerPair: *matches,
		Rounds:         *rounds,
		Mode:           mode,
		Seed:           *seed,
		Parallelism:    *par,
	})
	if err != nil {
		fmt.Fprintln(stderr, err)
		if ctx.Err() != nil {
			return 130
		}
		return 1
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(table); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		return 0
	}
	printTable(stdout, table)
	return 0
}

// runHarvest runs the selected checkpointed Table 4 case(s) on a session
// wired to the archive, so every checkpoint generation's best strategy
// lands in the hall of fame.
func runHarvest(ctx context.Context, archive *league.Archive, caseID, generations, rounds, reps, checkpoints int, seed uint64, par int, stdout io.Writer) error {
	if caseID < 0 || caseID > 4 {
		return fmt.Errorf("league: -case must be 0 (all) or 1-4, got %d", caseID)
	}
	if generations < 1 || rounds < 1 || reps < 1 || checkpoints < 1 {
		return fmt.Errorf("league: -generations, -rounds, -reps, and -checkpoints must be >= 1")
	}
	var runs []adhocga.ScenarioRun
	for _, spec := range scenario.Table4() {
		if caseID != 0 && spec.ID != caseID {
			continue
		}
		spec.Checkpoints = checkpoints
		runs = append(runs, adhocga.ScenarioRun{Spec: spec})
	}
	before := archive.Len()
	session := adhocga.NewSession(
		adhocga.WithPoolSize(par),
		adhocga.WithChampionArchive(archive),
	)
	defer session.Close()
	job, err := session.Submit(ctx, adhocga.ScenariosSpec{
		Runs:     runs,
		Defaults: adhocga.Scale{Name: "harvest", Generations: generations, Rounds: rounds, Repetitions: reps},
		Opts:     adhocga.RunOptions{Seed: seed, Parallelism: par},
	})
	if err != nil {
		return err
	}
	if err := job.Wait(ctx); err != nil {
		return fmt.Errorf("league: harvest: %w", err)
	}
	fmt.Fprintf(stdout, "harvested %d champions into %s archive (%d total)\n",
		archive.Len()-before, archive.Backend(), archive.Len())
	return nil
}

// printTable renders the standings and the head-to-head matrix as text.
func printTable(w io.Writer, table *league.Table) {
	t := report.NewTable(fmt.Sprintf("league table (%d seats, %d matches, seed %d)", len(table.Seats), table.Matches, table.Seed),
		"rank", "seat", "kind", "P", "W", "D", "L", "pts", "win rate", "mean payoff")
	for i, s := range table.Standings {
		t.AddRow(fmt.Sprint(i+1), s.Name, s.Kind,
			fmt.Sprint(s.Played), fmt.Sprint(s.Wins), fmt.Sprint(s.Draws), fmt.Sprint(s.Losses),
			fmt.Sprintf("%.1f", s.Points), fmt.Sprintf("%.3f", s.WinRate), fmt.Sprintf("%.3f", s.MeanPayoff))
	}
	fmt.Fprint(w, t.Render())
	if len(table.Standings) > 0 {
		winner := table.Standings[0]
		fmt.Fprintf(w, "\nwinner: %s (%s) genome %s\n", winner.Name, winner.Kind, winner.Genome)
	}

	// The head-to-head matrix, row beats column: H[i][j] is the match
	// points seat i took off seat j.
	h := report.NewTable("head-to-head (points row took off column)", append([]string{""}, shortNames(table.Seats)...)...)
	for i, name := range shortNames(table.Seats) {
		row := []string{name}
		for j := range table.Seats {
			if i == j {
				row = append(row, "-")
				continue
			}
			row = append(row, fmt.Sprintf("%.1f", table.HeadToHead[i][j]))
		}
		h.AddRow(row...)
	}
	fmt.Fprint(w, "\n"+h.Render())
}

// shortNames trims seat names to their last two path segments so the
// head-to-head matrix stays readable for slash-heavy champion IDs.
func shortNames(names []string) []string {
	out := make([]string, len(names))
	for i, n := range names {
		parts := strings.Split(n, "/")
		if len(parts) > 2 {
			parts = parts[len(parts)-2:]
		}
		out[i] = strings.Join(parts, "/")
	}
	return out
}
