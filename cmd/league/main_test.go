package main

import (
	"bytes"
	"context"
	"path/filepath"
	"strings"
	"testing"
)

// runCLI invokes the CLI seam and returns (exit code, stdout, stderr).
func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(context.Background(), args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestBaselinesOnlyLeague(t *testing.T) {
	code, out, errOut := runCLI(t,
		"-baselines", "-per-side", "2", "-rounds", "10", "-matches", "1", "-seed", "7")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	for _, want := range []string{"league table (3 seats, 3 matches, seed 7)", "winner:", "head-to-head"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestJSONOutputDeterministic(t *testing.T) {
	args := []string{"-baselines", "-per-side", "2", "-rounds", "10", "-matches", "1", "-seed", "7", "-json"}
	_, first, _ := runCLI(t, args...)
	code, second, errOut := runCLI(t, args...)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	if first != second {
		t.Fatalf("JSON output not deterministic:\n%s\n%s", first, second)
	}
	if !strings.Contains(first, `"standings"`) || !strings.Contains(first, `"head_to_head"`) {
		t.Fatalf("JSON output missing table fields:\n%s", first)
	}
}

// TestHarvestListLeague drives the full pipeline against a file-backed
// archive: harvest champions from a tiny checkpointed run, list them from
// a fresh process (restart), and play the league over the reopened
// archive.
func TestHarvestListLeague(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "hof")
	code, out, errOut := runCLI(t,
		"-archive", dir, "-harvest", "-case", "1",
		"-generations", "4", "-reps", "1", "-checkpoints", "2",
		"-rounds", "10", "-list", "-seed", "1")
	if code != 0 {
		t.Fatalf("harvest exit %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(out, "champion archive (file") {
		t.Fatalf("list output missing archive header:\n%s", out)
	}
	if !strings.Contains(out, "/case 1 (TE1, SP)/r0/g0") {
		t.Fatalf("list output missing generation-0 champion:\n%s", out)
	}

	code, out, errOut = runCLI(t,
		"-archive", dir, "-baselines", "-per-side", "2", "-rounds", "10", "-matches", "1", "-seed", "7")
	if code != 0 {
		t.Fatalf("league exit %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(out, "winner:") || !strings.Contains(out, "champion/") {
		t.Fatalf("league output missing champions:\n%s", out)
	}
}

func TestBadInvocations(t *testing.T) {
	for name, args := range map[string][]string{
		"bad path mode":     {"-baselines", "-path", "XX"},
		"no seats":          {"-per-side", "2"},
		"unknown champion":  {"-baselines", "-ids", "no/such/champion"},
		"bad harvest case":  {"-harvest", "-case", "9", "-baselines"},
		"zero harvest gens": {"-harvest", "-generations", "0", "-baselines"},
	} {
		code, _, _ := runCLI(t, args...)
		if code == 0 {
			t.Errorf("%s: exit 0, want nonzero", name)
		}
	}
}
