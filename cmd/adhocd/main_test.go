package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer lets the test read the daemon's stdout while run() is still
// writing it from its own goroutine.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestDaemonEndToEnd boots adhocd on a free port, submits a smoke job over
// real HTTP, streams its events, and shuts the daemon down via context
// cancellation (the SIGINT path).
func TestDaemonEndToEnd(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var stdout, stderr syncBuffer
	done := make(chan int, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-scale", "smoke", "-max-jobs", "2"}, &stdout, &stderr)
	}()

	// Wait for the listen line and extract the bound address.
	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for addr == "" {
		if time.Now().After(deadline) {
			t.Fatalf("daemon never announced its address; stdout %q stderr %q", stdout.String(), stderr.String())
		}
		out := stdout.String()
		if i := strings.Index(out, "listening on "); i >= 0 {
			rest := out[i+len("listening on "):]
			addr = strings.Fields(rest)[0]
		} else {
			time.Sleep(5 * time.Millisecond)
		}
	}
	base := "http://" + addr

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	spec := `{"scenarios": {"name": "d", "environments": [{"csn": 0}], "population": 20,
	          "tournament_size": 10, "generations": 2, "rounds": 10, "repetitions": 1, "seed": 3},
	          "parallelism": 1}`
	resp, err = http.Post(base+"/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var info struct {
		ID        string `json:"id"`
		EventsURL string `json:"events_url"`
	}
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}

	// The stream follows the job live and ends after the done event.
	resp, err = http.Get(base + info.EventsURL)
	if err != nil {
		t.Fatal(err)
	}
	stream, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(stream), `"kind":"done"`) {
		t.Errorf("stream missing done event:\n%s", stream)
	}

	cancel()
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("daemon exited %d; stderr %q", code, stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not shut down")
	}
	if out := stdout.String(); !strings.Contains(out, "stopped") {
		t.Errorf("shutdown message missing:\n%s", out)
	}
}

func TestDaemonFlagValidation(t *testing.T) {
	ctx := context.Background()
	var stdout, stderr syncBuffer
	if code := run(ctx, []string{"-scale", "galactic"}, &stdout, &stderr); code != 2 {
		t.Errorf("bad scale: exit %d", code)
	}
	if !strings.Contains(stderr.String(), "unknown scale") {
		t.Errorf("stderr %q", stderr.String())
	}
	stderr = syncBuffer{}
	if code := run(ctx, []string{"-max-jobs", "-1"}, &stdout, &stderr); code != 2 {
		t.Errorf("bad max-jobs: exit %d", code)
	}
	stderr = syncBuffer{}
	if code := run(ctx, []string{"-log-level", "loud"}, &stdout, &stderr); code != 2 {
		t.Errorf("bad log-level: exit %d", code)
	}
	if !strings.Contains(stderr.String(), "-log-level") {
		t.Errorf("stderr %q", stderr.String())
	}
	stderr = syncBuffer{}
	if code := run(ctx, []string{"-log-format", "xml"}, &stdout, &stderr); code != 2 {
		t.Errorf("bad log-format: exit %d", code)
	}
	if !strings.Contains(stderr.String(), "-log-format") {
		t.Errorf("stderr %q", stderr.String())
	}
	stderr = syncBuffer{}
	if code := run(ctx, []string{"-addr", "256.0.0.1:bad"}, &stdout, &stderr); code != 1 {
		t.Errorf("bad addr: exit %d", code)
	}
	stderr = syncBuffer{}
	if code := run(ctx, []string{"-h"}, &stdout, &stderr); code != 0 {
		t.Errorf("-h: exit %d", code)
	}
}

// TestDaemonObservabilityFlags boots the daemon with the full
// observability surface on — JSON debug logs, pprof, file store — and
// scrapes it: /metrics must serve Prometheus text with the WAL family,
// /healthz must vouch for the registry, /debug/pprof/ must answer, and
// stderr must carry structured JSON log lines.
func TestDaemonObservabilityFlags(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var stdout, stderr syncBuffer
	done := make(chan int, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-scale", "smoke",
			"-log-level", "debug", "-log-format", "json", "-pprof",
			"-store", "file", "-data-dir", t.TempDir()}, &stdout, &stderr)
	}()

	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for addr == "" {
		if time.Now().After(deadline) {
			t.Fatalf("daemon never announced its address; stdout %q stderr %q", stdout.String(), stderr.String())
		}
		out := stdout.String()
		if i := strings.Index(out, "listening on "); i >= 0 {
			addr = strings.Fields(out[i+len("listening on "):])[0]
		} else {
			time.Sleep(5 * time.Millisecond)
		}
	}
	base := "http://" + addr

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/healthz"); code != http.StatusOK || !strings.Contains(body, `"metrics_ok": true`) {
		t.Errorf("healthz: %d %s", code, body)
	}
	code, metrics := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	for _, want := range []string{
		"adhocd_jobs_submitted_total 0",
		"# TYPE adhocd_wal_fsync_seconds histogram",
		`adhocd_jobs{state="running"} 0`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if code, _ := get("/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("pprof cmdline: %d", code)
	}

	// The recovery pass logs through the JSON handler before the listen
	// line is printed, so stderr already carries structured lines.
	if logs := stderr.String(); !strings.Contains(logs, `"msg":"recovery complete"`) {
		t.Errorf("no structured JSON log lines on stderr: %q", logs)
	}

	cancel()
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("daemon exited %d; stderr %q", code, stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not shut down")
	}
}

// TestDaemonHelpListsEndpoints keeps the usage text honest about the API.
func TestDaemonHelpListsEndpoints(t *testing.T) {
	var stdout, stderr syncBuffer
	run(context.Background(), []string{"-h"}, &stdout, &stderr)
	for _, flagName := range []string{"-addr", "-pool", "-max-jobs", "-scale"} {
		if !strings.Contains(stderr.String(), strings.TrimPrefix(flagName, "-")) {
			t.Errorf("help missing %s", flagName)
		}
	}
}

// startInProcDaemon boots run() with the given extra flags on a free port and
// returns the base URL plus a shutdown func that asserts a clean exit.
func startInProcDaemon(t *testing.T, extra ...string) (string, func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	var stdout, stderr syncBuffer
	done := make(chan int, 1)
	args := append([]string{"-addr", "127.0.0.1:0", "-scale", "smoke"}, extra...)
	go func() { done <- run(ctx, args, &stdout, &stderr) }()

	deadline := time.Now().Add(10 * time.Second)
	for {
		if time.Now().After(deadline) {
			cancel()
			t.Fatalf("daemon never announced its address; stdout %q stderr %q", stdout.String(), stderr.String())
		}
		out := stdout.String()
		if i := strings.Index(out, "listening on "); i >= 0 {
			addr := strings.Fields(out[i+len("listening on "):])[0]
			return "http://" + addr, func() {
				cancel()
				select {
				case code := <-done:
					if code != 0 {
						t.Errorf("daemon exited %d; stderr %q", code, stderr.String())
					}
				case <-time.After(30 * time.Second):
					t.Error("daemon did not shut down")
				}
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestDaemonChampionsFlag covers the -champions wiring end to end: a
// checkpointed job harvests champions into the file-backed archive, a
// league job plays them, and a restart on the same data dir serves the
// same hall of fame — while a daemon without the flag 503s the surface.
func TestDaemonChampionsFlag(t *testing.T) {
	get := func(base, path string) (int, []byte) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, body
	}

	// Without the flag the league surface is explicitly unavailable.
	base, stop := startInProcDaemon(t)
	if code, body := get(base, "/v1/champions"); code != http.StatusServiceUnavailable {
		t.Fatalf("champions without -champions: %d %s", code, body)
	}
	stop()

	dataDir := t.TempDir()
	base, stop = startInProcDaemon(t, "-champions", "-store", "file", "-data-dir", dataDir)
	spec := `{"scenarios": {"name": "d", "environments": [{"csn": 0}], "population": 20,
	          "tournament_size": 10, "generations": 2, "rounds": 10, "repetitions": 1,
	          "seed": 3, "checkpoints": 1},
	          "parallelism": 1}`
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}

	// Champions appear once the job's checkpoints land.
	var champs struct {
		Count   int    `json:"count"`
		Archive string `json:"archive"`
	}
	deadline := time.Now().Add(30 * time.Second)
	for champs.Count == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no champions harvested")
		}
		code, body := get(base, "/v1/champions")
		if code != http.StatusOK {
			t.Fatalf("champions: %d %s", code, body)
		}
		if err := json.Unmarshal(body, &champs); err != nil {
			t.Fatal(err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if champs.Archive != "file" {
		t.Fatalf("archive backend %q, want file", champs.Archive)
	}
	harvested := champs.Count

	resp, err = http.Post(base+"/v1/league", "application/json",
		strings.NewReader(`{"baselines": true, "per_side": 2, "matches_per_pair": 1, "rounds": 10, "seed": 7}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("league submit: %d %s", resp.StatusCode, body)
	}
	var league struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &league); err != nil {
		t.Fatal(err)
	}
	var job struct {
		State  string `json:"state"`
		League *struct {
			Seats []string `json:"seats"`
		} `json:"league"`
	}
	for job.State != "done" && job.State != "failed" {
		if time.Now().After(deadline) {
			t.Fatalf("league job stuck in %q", job.State)
		}
		if code, body := get(base, "/v1/jobs/"+league.ID); code == http.StatusOK {
			if err := json.Unmarshal(body, &job); err != nil {
				t.Fatal(err)
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	if job.State != "done" || job.League == nil {
		t.Fatalf("league job state %q, table %v", job.State, job.League != nil)
	}
	if want := harvested + 3; len(job.League.Seats) != want {
		t.Fatalf("league seated %d, want %d champions + 3 baselines", len(job.League.Seats), want)
	}
	stop()

	// Restart on the same data dir: the hall of fame survives.
	base, stop = startInProcDaemon(t, "-champions", "-store", "file", "-data-dir", dataDir)
	defer stop()
	code, body := get(base, "/v1/champions")
	if code != http.StatusOK {
		t.Fatalf("champions after restart: %d %s", code, body)
	}
	champs.Count = 0
	if err := json.Unmarshal(body, &champs); err != nil {
		t.Fatal(err)
	}
	if champs.Count != harvested {
		t.Fatalf("restarted archive has %d champions, want %d", champs.Count, harvested)
	}
}
