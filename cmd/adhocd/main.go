// Command adhocd serves the evolutionary-experiment job API over HTTP: a
// long-lived Session with a bounded execution pool, fronted by the
// internal/service layer. Clients POST the same declarative scenario-spec
// JSON the CLIs' -scenario flag accepts, poll job status, and stream
// per-generation events as NDJSON or SSE while the GA runs.
//
// Usage:
//
//	adhocd                                  # listen on :8547, pool = all cores
//	adhocd -addr 127.0.0.1:9000 -pool 8 -max-jobs 4 -scale smoke
//	adhocd -ring 4096 -sub-buffer 128 -block-deadline 2s -keepalive 30s
//
// Submit, watch, and cancel with curl:
//
//	curl -s localhost:8547/v1/jobs -d '{"scenarios": {"name": "demo",
//	      "environments": [{"csn": 10}], "seed": 1}, "scale": "smoke"}'
//	curl -s localhost:8547/v1/jobs/job-1
//	curl -N localhost:8547/v1/jobs/job-1/events
//	curl -s -X DELETE localhost:8547/v1/jobs/job-1
//
// Events also stream over WebSocket (live fan-out for many viewers) at
// /v1/jobs/{id}/ws; see the README quickstart. The -ring, -sub-buffer,
// and -block-deadline flags size each job's streaming hub; -keepalive
// sets the idle SSE/WebSocket ping interval.
//
// With -store file, every job is persisted to a write-ahead log under
// -data-dir and the daemon is restart-safe: on boot it reloads the log,
// serves finished jobs (status, results, archived event replays) without
// recompute, and re-runs jobs a crash interrupted from their recorded
// (seed, spec) — bit-identical, by the determinism contract. Any finished
// job can later be re-checked with POST /v1/jobs/{id}/verify:
//
//	adhocd -store file -data-dir /var/lib/adhocd
//	curl -s -X POST localhost:8547/v1/jobs/job-1/verify
//
// The daemon is observable without extra dependencies: GET /metrics
// serves Prometheus text exposition (HTTP, jobs, streaming, pool, and —
// with -store file — WAL internals), /healthz reports metrics_ok
// alongside the store and recovery census, -log-level and -log-format
// control the structured slog output on stderr (correlated by job ID),
// and -pprof mounts net/http/pprof under /debug/pprof/:
//
//	adhocd -log-level debug -log-format json -pprof
//	curl -s localhost:8547/metrics
//
// With -champions, the daemon keeps a hall-of-fame champion archive: any
// job whose scenarios set "checkpoints" archives its best strategy at
// each checkpoint generation, GET /v1/champions lists the archive, and
// POST /v1/league seats selected champions (plus scripted baselines) in a
// cross-generation round-robin league. Under -store file the archive is
// its own WAL at <data-dir>/champions and survives restarts:
//
//	adhocd -champions -store file -data-dir /var/lib/adhocd
//	curl -s localhost:8547/v1/champions
//	curl -s localhost:8547/v1/league -d '{"baselines": true, "seed": 7}'
//
// SIGINT/SIGTERM shut the daemon down gracefully: the listener drains,
// open event streams are closed first (WebSocket viewers get close frame
// 1011 "going away"), every running job is cancelled at its next
// generation barrier, and the process exits once all jobs have stopped.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"adhocga"
	"adhocga/internal/experiment"
	"adhocga/internal/jobstore"
	"adhocga/internal/service"
)

// version is the build identifier /healthz reports; override at link time
// with -ldflags "-X main.version=v1.2.3".
var version = "dev"

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole daemon behind a testable seam: flags from args, output
// to explicit writers, lifetime bound to ctx. It blocks until ctx is
// cancelled (or the listener fails), then shuts down gracefully.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("adhocd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr      = fs.String("addr", ":8547", "listen address (host:port; port 0 picks a free one)")
		pool      = fs.Int("pool", 0, "execution pool slots shared by all jobs (0 = all cores)")
		maxJobs   = fs.Int("max-jobs", 4, "jobs running concurrently; further submissions queue (0 = unbounded)")
		retain    = fs.Int("retain", 256, "finished jobs kept queryable; older ones are evicted (0 = keep all)")
		scaleName = fs.String("scale", "default", "default scale for submissions that pin none: smoke, default, or paper")
		drain     = fs.Duration("drain", 10*time.Second, "graceful-shutdown budget for in-flight HTTP requests")
		ring      = fs.Int("ring", adhocga.DefaultRingSize, "events each job retains for replay/catch-up (its ring buffer size)")
		subBuffer = fs.Int("sub-buffer", adhocga.DefaultSubscriberBuffer, "per-subscriber send-channel capacity")
		blockDL   = fs.Duration("block-deadline", adhocga.DefaultBlockDeadline, "longest a job's producer waits for a slow archival (NDJSON) subscriber before evicting it")
		keepalive = fs.Duration("keepalive", 15*time.Second, "idle SSE/WebSocket keepalive ping interval")
		storeKind = fs.String("store", "mem", "job persistence backend: mem (gone on exit) or file (WAL under -data-dir, restart-safe)")
		dataDir   = fs.String("data-dir", "adhocd-data", "directory for the file store's write-ahead log")
		champions = fs.Bool("champions", false, "keep a hall-of-fame champion archive and serve /v1/champions and /v1/league (persisted under <data-dir>/champions with -store file)")
		logLevel  = fs.String("log-level", "info", "structured log threshold: debug, info, warn, or error")
		logFormat = fs.String("log-format", "text", "structured log encoding on stderr: text or json")
		pprofOn   = fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (profiles expose internals; enable deliberately)")
	)
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}
	sc, err := experiment.ScaleByName(*scaleName)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if *maxJobs < 0 {
		fmt.Fprintln(stderr, "adhocd: -max-jobs must be >= 0")
		return 2
	}
	if *ring < 0 || *subBuffer < 0 || *blockDL < 0 || *keepalive < 0 {
		fmt.Fprintln(stderr, "adhocd: -ring, -sub-buffer, -block-deadline, and -keepalive must be >= 0")
		return 2
	}
	var level slog.Level
	switch *logLevel {
	case "debug":
		level = slog.LevelDebug
	case "info":
		level = slog.LevelInfo
	case "warn":
		level = slog.LevelWarn
	case "error":
		level = slog.LevelError
	default:
		fmt.Fprintf(stderr, "adhocd: -log-level must be debug, info, warn, or error, got %q\n", *logLevel)
		return 2
	}
	var handler slog.Handler
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(stderr, &slog.HandlerOptions{Level: level})
	case "json":
		handler = slog.NewJSONHandler(stderr, &slog.HandlerOptions{Level: level})
	default:
		fmt.Fprintf(stderr, "adhocd: -log-format must be text or json, got %q\n", *logFormat)
		return 2
	}
	logger := slog.New(handler)

	var store jobstore.Store
	switch *storeKind {
	case "mem":
		store = jobstore.NewMem()
	case "file":
		fileStore, err := jobstore.OpenFile(*dataDir)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		if n := fileStore.Skipped(); n > 0 {
			fmt.Fprintf(stderr, "adhocd: skipped %d corrupt WAL entries in %s\n", n, *dataDir)
		}
		store = fileStore
	default:
		fmt.Fprintf(stderr, "adhocd: -store must be mem or file, got %q\n", *storeKind)
		return 2
	}
	defer store.Close()

	// The champion archive shares the store's durability story: its own
	// WAL directory next to the job log under -store file, memory-only
	// otherwise.
	var archive *adhocga.ChampionArchive
	if *champions {
		if *storeKind == "file" {
			archive, err = adhocga.OpenChampionArchive(filepath.Join(*dataDir, "champions"))
			if err != nil {
				fmt.Fprintln(stderr, err)
				return 1
			}
			if n := archive.Skipped(); n > 0 {
				fmt.Fprintf(stderr, "adhocd: skipped %d corrupt champion records in %s\n", n, filepath.Join(*dataDir, "champions"))
			}
		} else {
			archive = adhocga.NewChampionArchive()
		}
		defer archive.Close()
	}

	sessionOpts := []adhocga.SessionOption{
		adhocga.WithPoolSize(*pool),
		adhocga.WithMaxConcurrentJobs(*maxJobs),
		adhocga.WithDefaultScale(sc),
		adhocga.WithJobRetention(*retain),
		adhocga.WithHubConfig(adhocga.HubConfig{
			RingSize:         *ring,
			SubscriberBuffer: *subBuffer,
			BlockDeadline:    *blockDL,
		}),
		adhocga.WithLogger(logger),
	}
	if archive != nil {
		sessionOpts = append(sessionOpts, adhocga.WithChampionArchive(archive))
	}
	session := adhocga.NewSession(sessionOpts...)
	defer session.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	svc := service.New(session, service.Options{
		DefaultScale:      sc,
		KeepaliveInterval: *keepalive,
		Store:             store,
		Champions:         archive,
		Version:           version,
		Logger:            logger,
		EnablePprof:       *pprofOn,
	})
	// Reload persisted jobs before the first request can race them:
	// finished records serve from the store, interrupted ones re-run from
	// their recorded (seed, spec).
	recovered, resumed, err := svc.Recover(ctx)
	if err != nil {
		fmt.Fprintln(stderr, err)
		ln.Close()
		return 1
	}
	server := &http.Server{Handler: svc}
	fmt.Fprintf(stdout, "adhocd listening on %s (pool %d, max jobs %d, scale %s, store %s)\n",
		ln.Addr(), session.PoolSize(), *maxJobs, sc.Name, store.Backend())
	if recovered > 0 {
		fmt.Fprintf(stdout, "adhocd: recovered %d persisted jobs, resumed %d unfinished\n", recovered, resumed)
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- server.Serve(ln) }()

	select {
	case err := <-serveErr:
		fmt.Fprintln(stderr, err)
		return 1
	case <-ctx.Done():
	}

	fmt.Fprintln(stdout, "adhocd: shutting down — draining requests, cancelling jobs at their next generation barrier")
	// Streams first: hijacked WebSocket connections get their 1011 close
	// frame and SSE/NDJSON handlers return, so the drain below only waits
	// on plain request/response work.
	svc.Shutdown()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := server.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(stderr, err)
	}
	session.Close() // cancels and waits for every job
	fmt.Fprintln(stdout, "adhocd: stopped")
	return 0
}
